module finemoe

go 1.24
