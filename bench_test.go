package finemoe

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6), as indexed in DESIGN.md §3. Each benchmark runs
// the corresponding experiment and reports its headline quantity through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates every
// artifact's data.
//
// Benchmarks run at Small scale by default so the full sweep completes in
// minutes; set -bench-scale=full (or run cmd/finemoe-bench -scale full) for
// the paper-scale workloads.

import (
	"flag"
	"strconv"
	"strings"
	"sync"
	"testing"

	"finemoe/internal/experiments"
)

var benchScale = flag.String("bench-scale", "small", "experiment scale for benchmarks: small|full")

// benchCtx shares simulation state (models, traces, stores) across
// benchmarks, mirroring how the CLI amortizes it.
var (
	benchCtxOnce sync.Once
	benchCtxVal  *experiments.Context
)

func benchContext() *experiments.Context {
	benchCtxOnce.Do(func() {
		sc := experiments.Small
		if *benchScale == "full" {
			sc = experiments.Full
		}
		benchCtxVal = experiments.NewContext(sc, 42)
	})
	return benchCtxVal
}

// metricCell extracts a numeric metric from a table cell for reporting.
func metricCell(s string) (float64, bool) {
	s = strings.TrimSpace(strings.TrimSuffix(s, " (async)"))
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// runExperimentBench executes an experiment b.N times and reports the value
// of the named column of the first row matching the filter (nil = first
// row).
func runExperimentBench(b *testing.B, id, metricCol, metricName string, match func(row []string) bool) {
	b.Helper()
	ctx := benchContext()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(ctx, id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if metricCol == "" {
			continue
		}
		header := out.Table.Header()
		col := -1
		for j, h := range header {
			if h == metricCol {
				col = j
			}
		}
		if col < 0 {
			b.Fatalf("%s: column %q missing from %v", id, metricCol, header)
		}
		for _, row := range out.Table.Rows() {
			if match != nil && !match(row) {
				continue
			}
			if v, ok := metricCell(row[col]); ok {
				b.ReportMetric(v, metricName)
			}
			break
		}
	}
}

func fineMoERow(row []string) bool {
	for _, c := range row {
		if c == "FineMoE" {
			return true
		}
	}
	return false
}

// BenchmarkTable1 regenerates Table 1 (model characteristics).
func BenchmarkTable1(b *testing.B) {
	runExperimentBench(b, "tab1", "params_total_B", "mixtral_total_B", nil)
}

// BenchmarkFig1b regenerates Fig. 1b (latency-memory trade-off scatter).
func BenchmarkFig1b(b *testing.B) {
	runExperimentBench(b, "fig1b", "tpot_s", "finemoe_tpot_s", fineMoERow)
}

// BenchmarkFig3a regenerates Fig. 3a (activation heatmaps).
func BenchmarkFig3a(b *testing.B) { runExperimentBench(b, "fig3a", "", "", nil) }

// BenchmarkFig3b regenerates Fig. 3b (coarse vs fine entropy).
func BenchmarkFig3b(b *testing.B) {
	runExperimentBench(b, "fig3b", "coarse_entropy", "mixtral_coarse_entropy", nil)
}

// BenchmarkFig3c regenerates Fig. 3c (entropy vs aggregated iterations).
func BenchmarkFig3c(b *testing.B) { runExperimentBench(b, "fig3c", "", "", nil) }

// BenchmarkFig4 regenerates Fig. 4 (hit rate vs prefetch distance).
func BenchmarkFig4(b *testing.B) { runExperimentBench(b, "fig4", "", "", nil) }

// BenchmarkFig8 regenerates Fig. 8 (hit rate vs similarity score).
func BenchmarkFig8(b *testing.B) { runExperimentBench(b, "fig8", "", "", nil) }

// BenchmarkFig9 regenerates Fig. 9 (Pearson correlations).
func BenchmarkFig9(b *testing.B) {
	runExperimentBench(b, "fig9", "pearson_semantic", "mixtral_pearson_sem", nil)
}

// BenchmarkFig10 regenerates Fig. 10 (offline serving comparison).
func BenchmarkFig10(b *testing.B) {
	runExperimentBench(b, "fig10", "hit_rate", "finemoe_hit_rate", fineMoERow)
}

// BenchmarkFig11 regenerates Fig. 11 (online request-latency CDF).
func BenchmarkFig11(b *testing.B) {
	runExperimentBench(b, "fig11", "p50_s", "finemoe_p50_s", fineMoERow)
}

// BenchmarkFig12 regenerates Fig. 12 (TPOT vs cache limits).
func BenchmarkFig12(b *testing.B) {
	runExperimentBench(b, "fig12", "tpot_s@6GB", "finemoe_tpot6gb_s", fineMoERow)
}

// BenchmarkFig13 regenerates Fig. 13 (A100 testbed).
func BenchmarkFig13(b *testing.B) {
	runExperimentBench(b, "fig13", "tpot_s", "finemoe_a100_tpot_s", fineMoERow)
}

// BenchmarkFig14a regenerates Fig. 14a (pattern-tracking ablation).
func BenchmarkFig14a(b *testing.B) {
	runExperimentBench(b, "fig14a", "Map(T+S+d)", "mixtral_full_hit", nil)
}

// BenchmarkFig14b regenerates Fig. 14b (caching ablation).
func BenchmarkFig14b(b *testing.B) {
	runExperimentBench(b, "fig14b", "FineMoE", "mixtral_finemoe_hit", nil)
}

// BenchmarkFig15 regenerates Fig. 15 (prefetch-distance sweep).
func BenchmarkFig15(b *testing.B) { runExperimentBench(b, "fig15", "", "", nil) }

// BenchmarkFig16a regenerates Fig. 16a (similarity vs store capacity).
func BenchmarkFig16a(b *testing.B) { runExperimentBench(b, "fig16a", "", "", nil) }

// BenchmarkFig16b regenerates Fig. 16b (batch-size sweep).
func BenchmarkFig16b(b *testing.B) {
	runExperimentBench(b, "fig16b", "B=1", "finemoe_b1", fineMoERow)
}

// BenchmarkFig17 regenerates Fig. 17 (latency breakdown).
func BenchmarkFig17(b *testing.B) {
	runExperimentBench(b, "fig17", "total_iter_ms", "mixtral_iter_ms", nil)
}

// BenchmarkFig18 regenerates Fig. 18 (store memory footprint).
func BenchmarkFig18(b *testing.B) {
	runExperimentBench(b, "fig18", "32K_maps_MB", "mixtral_32k_MB", nil)
}

// BenchmarkAblationSync regenerates the sync-vs-async search ablation.
func BenchmarkAblationSync(b *testing.B) { runExperimentBench(b, "abl-sync", "", "", nil) }

// BenchmarkAblationEP regenerates the expert-parallelism ablation.
func BenchmarkAblationEP(b *testing.B) { runExperimentBench(b, "abl-ep", "", "", nil) }

// BenchmarkAblationDedup regenerates the store-dedup ablation.
func BenchmarkAblationDedup(b *testing.B) { runExperimentBench(b, "abl-dedup", "", "", nil) }

// --- micro-benchmarks of the core data path ---------------------------------

// BenchmarkExpertMapSearch measures one semantic search over a populated
// store (the per-iteration cost §6.8 claims is negligible).
func BenchmarkExpertMapSearch(b *testing.B) {
	cfg := TinyModel()
	model := NewModel(cfg, 1)
	ds := LMSYSChat1M()
	ds.Topics = 8
	reqs := ds.Sample(WorkloadOptions{Dim: cfg.SemDim, N: 24, Seed: 1, FixedLengths: true})
	for i := range reqs {
		reqs[i].InputTokens, reqs[i].OutputTokens = 6, 12
	}
	store := BuildStoreFromRequests(model, reqs, 250)
	pol := NewFineMoE(store, FineMoEOptions{})
	_ = pol
	query := model.Trace(reqs[0].PromptSpec)[1]
	searcher := NewSearcher(store, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		searcher.SemanticSearch(query.Semantic)
	}
}

// benchScenarioMatrix is a small heterogeneous gauntlet for the RunMatrix
// benchmarks: enough independent cells that the worker pool has work to
// steal.
func benchScenarioMatrix() []Scenario {
	ds := LMSYSChat1M()
	ds.Topics = 8
	var out []Scenario
	for _, ap := range []ArrivalProcess{
		PoissonArrivals{RatePerSec: 20}, BurstyMMPP(20), DiurnalSwing(20), FlashSpike(20),
	} {
		out = append(out,
			Scenario{Name: ap.Name(), Workload: ScenarioWorkload{
				Dataset: ds, Arrivals: ap, Requests: 12},
				Fleet: ScenarioFleet{Instances: 2, Router: "round-robin"}},
			Scenario{Name: ap.Name() + "-auto", Workload: ScenarioWorkload{
				Dataset: ds, Arrivals: ap, Requests: 12},
				Fleet: ScenarioFleet{Instances: 1, Autoscale: true,
					MaxInstances: 3, TickMS: 10, SustainMS: 20, CooldownMS: 20}})
	}
	return out
}

func benchRunMatrix(b *testing.B, workers int) {
	b.Helper()
	matrix := benchScenarioMatrix()
	for i := 0; i < b.N; i++ {
		r := NewScenarioRunner(ScenarioOptions{
			Model: TinyModel(), NumGPUs: 2, StoreCapacity: 100,
			MaxInput: 8, MaxOutput: 8, Seed: 7,
			Workers: workers,
		})
		if _, err := r.RunMatrix(matrix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunMatrixSerial sweeps the benchmark gauntlet on one worker —
// the seed's sequential behavior.
func BenchmarkRunMatrixSerial(b *testing.B) { benchRunMatrix(b, 1) }

// BenchmarkRunMatrixParallel sweeps the same gauntlet on a GOMAXPROCS
// worker pool; reports are byte-identical to the serial sweep (pinned by
// TestRunMatrixParallelMatchesSerial), so the delta is pure wall-clock.
func BenchmarkRunMatrixParallel(b *testing.B) { benchRunMatrix(b, 0) }

// BenchmarkOfflineServing measures end-to-end engine throughput on the tiny
// model (iterations simulated per second).
func BenchmarkOfflineServing(b *testing.B) {
	cfg := TinyModel()
	model := NewModel(cfg, 1)
	ds := LMSYSChat1M()
	ds.Topics = 8
	reqs := ds.Sample(WorkloadOptions{Dim: cfg.SemDim, N: 4, Seed: 2, FixedLengths: true})
	for i := range reqs {
		reqs[i].InputTokens, reqs[i].OutputTokens = 6, 12
	}
	store := BuildStoreFromRequests(model, reqs[:2], 100)
	traces := make(map[uint64][]*Iteration)
	for _, q := range reqs[2:] {
		traces[q.ID] = model.Trace(q.PromptSpec)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol := NewFineMoE(store.Clone(), FineMoEOptions{})
		eng := NewEngine(EngineOptions{
			Model: model, GPU: RTX3090(), NumGPUs: 2,
			CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2,
			Policy:     pol,
		})
		eng.RunOffline(reqs[2:], traces)
	}
}
