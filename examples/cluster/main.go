// Cluster serving quickstart: compose four FineMoE serving instances
// behind the admission → routing → instance pipeline and replay an
// Azure-style arrival trace through the fleet under one shared virtual
// clock. Compares the round-robin and semantic-affinity routers: affinity
// concentrates each semantic topic on one instance, so that instance's
// Expert Map Store has already seen similar prompts and the fleet hit
// rate rises.
//
// The final run swaps the fixed fleet for queue-pressure autoscaling:
// one cold instance grows to the fixed fleet's size under the burst and
// drains back down in the quiet tail, tracking the fixed round-robin
// fleet's latency while provisioning fewer instance-hours — despite
// starting from a single cold replica. (The fixed semantic-affinity
// fleet stays ahead on latency: topic affinity is a routing win the
// elastic fleet here does not use.)
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"

	"finemoe"
)

// newFleet builds n cold FineMoE serving instances (empty stores, the
// paper's online protocol). Engines are single-run, so each cluster needs
// a fresh fleet.
func newFleet(model *finemoe.Model, n int) []*finemoe.Engine {
	cfg := model.Cfg
	engines := make([]*finemoe.Engine, n)
	for i := range engines {
		pol := finemoe.NewFineMoE(finemoe.NewStore(cfg, 1000, 0), finemoe.FineMoEOptions{})
		engines[i] = finemoe.NewEngine(finemoe.EngineOptions{
			Model: model, GPU: finemoe.RTX3090(), NumGPUs: 6,
			Policy: pol, MaxBatch: 8,
		})
	}
	return engines
}

func main() {
	cfg := finemoe.Qwen15MoE()
	model := finemoe.NewModel(cfg, 11)
	ds := finemoe.LMSYSChat1M()

	trace := finemoe.AzureTrace(ds, cfg.SemDim, finemoe.TraceConfig{
		RatePerSec: 8, // push a 4-instance fleet harder than one replica
		N:          64,
		Seed:       5,
	})
	// A sparse cool-down tail after the burst: the fixed fleet idles
	// through it, the autoscaled fleet shrinks into it.
	tail := finemoe.AzureTrace(ds, cfg.SemDim, finemoe.TraceConfig{
		RatePerSec: 1,
		N:          8,
		Seed:       6,
		IDBase:     1 << 33,
	})
	for i := range tail {
		tail[i].ArrivalMS += trace[len(trace)-1].ArrivalMS
	}
	trace = append(trace, tail...)
	for i := range trace {
		if trace[i].OutputTokens > 24 {
			trace[i].OutputTokens = 24
		}
	}

	routers := []finemoe.Router{
		finemoe.NewRoundRobin(),
		finemoe.NewSemanticAffinity(finemoe.SemanticAffinityOptions{}),
	}
	for _, router := range routers {
		cl := finemoe.NewCluster(finemoe.ClusterOptions{
			Engines: newFleet(model, 4),
			// Shed arrivals beyond a 32-deep burst at 16 req/s; the trace
			// averages half that, so only pathological bursts reject.
			Admission: finemoe.NewTokenBucket(32, 16),
			Router:    router,
		})
		res := cl.RunTrace(trace)

		fmt.Println(res)
		fmt.Printf("  fleet: TTFT p50/p99 %.2f/%.2f s, E2E p99 %.2f s, makespan %.1f s\n",
			res.TTFT.P50/1000, res.TTFT.P99/1000, res.E2E.P99/1000, res.WallClockMS/1000)
		for _, ir := range res.Instances {
			fmt.Printf("  instance %d: %d routed, %d served, hit rate %.3f\n",
				ir.ID, ir.Submitted, len(ir.Result.Requests), ir.Result.HitRate)
		}
		fmt.Printf("  provisioned: %.5f instance-hours\n\n", res.InstanceHours)
	}

	// The same trace through an elastic fleet: start with one cold
	// instance and let queue pressure size the fleet. The EngineFactory
	// supplies fresh cold-store instances as the autoscaler grows.
	// Compare the printed instance-hours against the fixed round-robin
	// fleet above: similar latency, less provisioned capacity.
	cl := finemoe.NewCluster(finemoe.ClusterOptions{
		Engines:   newFleet(model, 1),
		Admission: finemoe.NewTokenBucket(32, 16),
		Router:    finemoe.NewLeastLoaded(),
		Autoscaler: finemoe.NewQueuePressure(finemoe.QueuePressureOptions{
			HighWatermark: 1.5, LowWatermark: 1.0,
			SustainMS: 50, CooldownMS: 50,
		}),
		EngineFactory: func(id int) *finemoe.Engine {
			return newFleet(model, 1)[0]
		},
		MinInstances:        1,
		MaxInstances:        4,
		AutoscaleIntervalMS: 25,
	})
	res := cl.RunTrace(trace)
	fmt.Println(res)
	fmt.Printf("  fleet: TTFT p50/p99 %.2f/%.2f s, provisioned %.5f instance-hours\n",
		res.TTFT.P50/1000, res.TTFT.P99/1000, res.InstanceHours)
	for _, ev := range res.ScaleEvents {
		fmt.Printf("  t=%6.0f ms  %-6s instance %d (fleet -> %d)\n",
			ev.TimeMS, ev.Kind, ev.Instance, ev.ActiveAfter)
	}
}
