// Cluster serving quickstart: compose four FineMoE serving instances
// behind the admission → routing → instance pipeline and replay an
// Azure-style arrival trace through the fleet under one shared virtual
// clock. Compares the round-robin and semantic-affinity routers: affinity
// concentrates each semantic topic on one instance, so that instance's
// Expert Map Store has already seen similar prompts and the fleet hit
// rate rises.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"

	"finemoe"
)

// newFleet builds n cold FineMoE serving instances (empty stores, the
// paper's online protocol). Engines are single-run, so each cluster needs
// a fresh fleet.
func newFleet(model *finemoe.Model, n int) []*finemoe.Engine {
	cfg := model.Cfg
	engines := make([]*finemoe.Engine, n)
	for i := range engines {
		pol := finemoe.NewFineMoE(finemoe.NewStore(cfg, 1000, 0), finemoe.FineMoEOptions{})
		engines[i] = finemoe.NewEngine(finemoe.EngineOptions{
			Model: model, GPU: finemoe.RTX3090(), NumGPUs: 6,
			Policy: pol, MaxBatch: 8,
		})
	}
	return engines
}

func main() {
	cfg := finemoe.Qwen15MoE()
	model := finemoe.NewModel(cfg, 11)
	ds := finemoe.LMSYSChat1M()

	trace := finemoe.AzureTrace(ds, cfg.SemDim, finemoe.TraceConfig{
		RatePerSec: 8, // push a 4-instance fleet harder than one replica
		N:          64,
		Seed:       5,
	})
	for i := range trace {
		if trace[i].OutputTokens > 24 {
			trace[i].OutputTokens = 24
		}
	}

	routers := []finemoe.Router{
		finemoe.NewRoundRobin(),
		finemoe.NewSemanticAffinity(finemoe.SemanticAffinityOptions{}),
	}
	for _, router := range routers {
		cl := finemoe.NewCluster(finemoe.ClusterOptions{
			Engines: newFleet(model, 4),
			// Shed arrivals beyond a 32-deep burst at 16 req/s; the trace
			// averages half that, so only pathological bursts reject.
			Admission: finemoe.NewTokenBucket(32, 16),
			Router:    router,
		})
		res := cl.RunTrace(trace)

		fmt.Println(res)
		fmt.Printf("  fleet: TTFT p50/p99 %.2f/%.2f s, E2E p99 %.2f s, makespan %.1f s\n",
			res.TTFT.P50/1000, res.TTFT.P99/1000, res.E2E.P99/1000, res.WallClockMS/1000)
		for _, ir := range res.Instances {
			fmt.Printf("  instance %d: %d routed, %d served, hit rate %.3f\n",
				ir.ID, ir.Submitted, len(ir.Result.Requests), ir.Result.HitRate)
		}
		fmt.Println()
	}
}
