// Scenario gauntlet quickstart: declare workload shapes (steady Poisson,
// bursty MMPP, closed-loop multi-turn sessions, a two-tenant mix) and
// fleet configurations as data, then sweep the matrix through the
// admission → routing → instance pipeline into comparable reports.
//
// The bursty pairing is the headline: a fixed round-robin fleet both
// scatters semantic topics across instances and cannot add capacity when
// an MMPP burst hits, so its tail latency degrades; the autoscaled
// semantic-affinity fleet grows through the burst and keeps each topic's
// Expert Map Store warm on one instance, holding p99 TTFT.
//
// Run with: go run ./examples/scenarios
package main

import (
	"fmt"
	"sort"

	"finemoe"
)

func main() {
	cfg := finemoe.TinyModel() // small model so the example runs in seconds
	rate := 8.0                // mean req/s for every workload shape

	runner := finemoe.NewScenarioRunner(finemoe.ScenarioOptions{
		Model: cfg, NumGPUs: 2, Seed: 7,
		MaxInput: 12, MaxOutput: 16, // clamp token counts for speed
	})

	ds := finemoe.LMSYSChat1M()
	fleets := []finemoe.ScenarioFleet{
		{Instances: 2, Router: "round-robin"},
		// Aggressive queue-pressure tuning so scale-up keeps pace with
		// the example's second-scale bursts (zero values would take the
		// production defaults: 500 ms ticks, 300 ms sustain).
		{Instances: 2, Router: "semantic-affinity", Autoscale: true,
			MinInstances: 1, MaxInstances: 4,
			HighWatermark: 1.5, LowWatermark: 1.0,
			SustainMS: 50, CooldownMS: 50, TickMS: 25},
	}

	var matrix []finemoe.Scenario
	for _, fleet := range fleets {
		matrix = append(matrix,
			finemoe.Scenario{
				Name: "steady",
				Workload: finemoe.ScenarioWorkload{
					Dataset:  ds,
					Arrivals: finemoe.PoissonArrivals{RatePerSec: rate},
					Requests: 48,
				},
				Fleet: fleet,
			},
			finemoe.Scenario{
				Name: "bursty",
				Workload: finemoe.ScenarioWorkload{
					Dataset:  ds,
					Arrivals: finemoe.BurstyMMPP(rate),
					Requests: 48,
				},
				Fleet: fleet,
			},
			// Closed-loop sessions: each completed turn may spawn a
			// semantically close follow-up after a think time, so the
			// fleet serves conversations, not isolated prompts.
			finemoe.Scenario{
				Name: "sessions",
				Workload: finemoe.ScenarioWorkload{
					Dataset:  ds,
					Arrivals: finemoe.PoissonArrivals{RatePerSec: rate / 2},
					Requests: 24,
					Sessions: &finemoe.SessionConfig{
						MeanTurns: 3, ThinkTimeS: 0.5, Drift: 0.05,
					},
				},
				Fleet: fleet,
			},
			// Two tenants share the fleet: a steady LMSYS tenant and a
			// bursty ShareGPT tenant; the report partitions latency per
			// tenant.
			finemoe.Scenario{
				Name: "two-tenant",
				Workload: finemoe.ScenarioWorkload{
					Tenants: []finemoe.TenantSpec{
						{Name: "steady", Dataset: ds,
							Arrivals: finemoe.PoissonArrivals{RatePerSec: rate / 2}, N: 24},
						{Name: "bursty", Dataset: finemoe.ShareGPT(),
							Arrivals: finemoe.BurstyMMPP(rate / 2), N: 24},
					},
				},
				Fleet: fleet,
			},
		)
	}

	reports, err := runner.RunMatrix(matrix)
	if err != nil {
		panic(err)
	}
	for _, rep := range reports {
		fmt.Println(rep)
		names := make([]string, 0, len(rep.Tenants))
		for name := range rep.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			t := rep.Tenants[name]
			fmt.Printf("  tenant %-8s %d served, TTFT %.0f ms (p99 %.0f)\n",
				name, t.Served, t.MeanTTFT, t.P99TTFT)
		}
	}
}
