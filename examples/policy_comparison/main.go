// Policy comparison: serve the same chatbot workload under FineMoE and the
// paper's four baselines (§6.2's experiment in miniature) and print the
// latency/hit-rate table.
//
// Run with: go run ./examples/policy_comparison
package main

import (
	"fmt"

	"finemoe"
)

func main() {
	cfg := finemoe.Phi35MoE()
	model := finemoe.NewModel(cfg, 7)
	ds := finemoe.LMSYSChat1M()

	reqs := ds.Sample(finemoe.WorkloadOptions{
		Dim: cfg.SemDim, N: 36, Seed: 3, FixedLengths: true,
	})
	for i := range reqs {
		reqs[i].OutputTokens = 24
	}
	storeReqs, testReqs := finemoe.SplitRequests(reqs, 0.7)
	store := finemoe.BuildStoreFromRequests(model, storeReqs, 1000)

	// Every system gets the same expert-cache budget: 30% of the expert
	// weights, the lean operating point of the paper's comparison.
	cacheBytes := int64(float64(cfg.TotalExpertBytes()) * 0.3)

	systems := []struct {
		name  string
		build func() finemoe.Policy
	}{
		{"FineMoE", func() finemoe.Policy {
			return finemoe.NewFineMoE(store.Clone(), finemoe.FineMoEOptions{})
		}},
		{"MoE-Infinity", func() finemoe.Policy { return finemoe.NewMoEInfinity(cfg) }},
		{"ProMoE", func() finemoe.Policy { return finemoe.NewProMoE(model) }},
		{"Mixtral-Offload", func() finemoe.Policy { return finemoe.NewMixtralOffload(model) }},
		{"DeepSpeed", func() finemoe.Policy { return finemoe.NewDeepSpeed() }},
	}

	fmt.Printf("%-16s %10s %10s %10s\n", "system", "ttft(ms)", "tpot(ms)", "hit rate")
	for _, sys := range systems {
		eng := finemoe.NewEngine(finemoe.EngineOptions{
			Model: model, GPU: finemoe.RTX3090(), NumGPUs: 6,
			CacheBytes: cacheBytes, Policy: sys.build(),
		})
		res := eng.RunOffline(testReqs, nil)
		fmt.Printf("%-16s %10.1f %10.1f %10.3f\n",
			sys.name, res.MeanTTFT, res.MeanTPOT, res.HitRate)
	}
	fmt.Println("\nExpected shape (paper Fig. 10): FineMoE lowest latency;")
	fmt.Println("DeepSpeed hit rate 1.0 but worst latency; MoE-Infinity lowest hit rate.")
}
