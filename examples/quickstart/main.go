// Quickstart: serve a small LMSYS-style workload on simulated Mixtral-8x7B
// with FineMoE and print the paper's headline metrics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"finemoe"
)

func main() {
	cfg := finemoe.Mixtral8x7B()
	model := finemoe.NewModel(cfg, 42)

	// Sample a prompt population and split it 70/30: the 70% builds the
	// Expert Map Store (historical context data), the 30% is served.
	ds := finemoe.LMSYSChat1M()
	reqs := ds.Sample(finemoe.WorkloadOptions{
		Dim: cfg.SemDim, N: 40, Seed: 1, FixedLengths: true,
	})
	for i := range reqs {
		reqs[i].OutputTokens = 32 // shorten generation for a fast demo
	}
	storeReqs, testReqs := finemoe.SplitRequests(reqs, 0.7)

	store := finemoe.BuildStoreFromRequests(model, storeReqs, 1000)
	fmt.Printf("Expert Map Store: %d maps, %.1f MB CPU memory\n",
		store.Len(), float64(store.MemoryBytes())/(1<<20))

	pol := finemoe.NewFineMoE(store, finemoe.FineMoEOptions{})
	eng := finemoe.NewEngine(finemoe.EngineOptions{
		Model:   model,
		GPU:     finemoe.RTX3090(),
		NumGPUs: 6, // the paper's six-GPU testbed
		Policy:  pol,
	})

	res := eng.RunOffline(testReqs, nil)
	fmt.Printf("\nServed %d requests on %s (6x RTX 3090, expert parallelism)\n",
		len(res.Requests), cfg.Name)
	fmt.Printf("  TTFT  %7.1f ms  (time to first token)\n", res.MeanTTFT)
	fmt.Printf("  TPOT  %7.1f ms  (time per output token)\n", res.MeanTPOT)
	fmt.Printf("  expert hit rate %.3f\n", res.HitRate)
	fmt.Printf("  GPU memory footprint %.1f GB (dense weights + expert cache)\n",
		float64(res.GPUMemoryBytes)/1e9)
}
