// Custom model: define your own MoE architecture (here a DeepSeek-MoE-style
// configuration with many small experts plus shared experts), plug it into
// the simulator, and compare FineMoE against on-demand loading.
//
// Run with: go run ./examples/custom_model
package main

import (
	"fmt"

	"finemoe"
)

func main() {
	// Start from a paper model to inherit calibrated gate statistics,
	// then reshape the architecture. DeepSeek-MoE-16B-style: 28 layers,
	// 64 routed experts (top-6), 2 shared experts.
	cfg := finemoe.Qwen15MoE()
	cfg.Name = "DeepSeekMoE-16B-ish"
	cfg.Layers = 28
	cfg.RoutedExperts = 64
	cfg.TopK = 6
	cfg.SharedExperts = 2
	cfg.HiddenSize = 2048
	cfg.ExpertIntermediate = 1408
	cfg.SharedIntermediate = 2816
	cfg.DenseParams = 900_000_000
	cfg.OptimalPrefetchDistance = 5

	fmt.Printf("%s: %.1fB params (%.1fB active), %d x %d routed experts, expert %d MB\n",
		cfg.Name,
		float64(cfg.TotalParams())/1e9, float64(cfg.ActiveParams())/1e9,
		cfg.Layers, cfg.RoutedExperts, cfg.ExpertBytes()/1_000_000)

	model := finemoe.NewModel(cfg, 33)
	ds := finemoe.LMSYSChat1M()
	reqs := ds.Sample(finemoe.WorkloadOptions{
		Dim: cfg.SemDim, N: 24, Seed: 13, FixedLengths: true,
	})
	for i := range reqs {
		reqs[i].OutputTokens = 20
	}
	storeReqs, testReqs := finemoe.SplitRequests(reqs, 0.7)
	store := finemoe.BuildStoreFromRequests(model, storeReqs, 800)
	cache := int64(float64(cfg.TotalExpertBytes()) * 0.3)

	for _, sys := range []struct {
		name  string
		build func() finemoe.Policy
	}{
		{"FineMoE", func() finemoe.Policy {
			return finemoe.NewFineMoE(store.Clone(), finemoe.FineMoEOptions{})
		}},
		{"DeepSpeed (on-demand)", func() finemoe.Policy { return finemoe.NewDeepSpeed() }},
	} {
		eng := finemoe.NewEngine(finemoe.EngineOptions{
			Model: model, GPU: finemoe.RTX3090(), NumGPUs: 4,
			CacheBytes: cache, Policy: sys.build(),
		})
		res := eng.RunOffline(testReqs, nil)
		fmt.Printf("  %-22s ttft %7.1f ms  tpot %6.1f ms  hit %.3f\n",
			sys.name, res.MeanTTFT, res.MeanTPOT, res.HitRate)
	}
}
