// Cache tuning: sweep the expert-cache budget and observe the
// latency-memory trade-off (§6.4's experiment in miniature). This is the
// tool an operator would use to size GPU memory for a target TPOT.
//
// Run with: go run ./examples/cache_tuning
package main

import (
	"fmt"

	"finemoe"
)

func main() {
	cfg := finemoe.Mixtral8x7B()
	model := finemoe.NewModel(cfg, 21)
	ds := finemoe.ShareGPT()

	reqs := ds.Sample(finemoe.WorkloadOptions{
		Dim: cfg.SemDim, N: 28, Seed: 9, FixedLengths: true,
	})
	for i := range reqs {
		reqs[i].OutputTokens = 24
	}
	storeReqs, testReqs := finemoe.SplitRequests(reqs, 0.7)
	store := finemoe.BuildStoreFromRequests(model, storeReqs, 1000)

	fmt.Printf("Expert-cache sweep for %s (total expert weights %.0f GB)\n\n",
		cfg.Name, float64(cfg.TotalExpertBytes())/1e9)
	fmt.Printf("%12s %12s %12s %12s\n", "cache(GB)", "tpot(ms)", "hit rate", "gpu mem(GB)")
	for _, gb := range []int64{6, 12, 24, 48, 96} {
		budget := gb << 30
		if budget > cfg.TotalExpertBytes() {
			budget = cfg.TotalExpertBytes()
		}
		pol := finemoe.NewFineMoE(store.Clone(), finemoe.FineMoEOptions{})
		eng := finemoe.NewEngine(finemoe.EngineOptions{
			Model: model, GPU: finemoe.RTX3090(), NumGPUs: 6,
			CacheBytes: budget, Policy: pol,
		})
		res := eng.RunOffline(testReqs, nil)
		fmt.Printf("%12d %12.1f %12.3f %12.1f\n",
			gb, res.MeanTPOT, res.HitRate, float64(res.GPUMemoryBytes)/1e9)
	}
	fmt.Println("\nExpected shape (paper Fig. 12): TPOT falls steeply at small budgets,")
	fmt.Println("then flattens — the latency-memory trade-off FineMoE is designed to tame.")
}
