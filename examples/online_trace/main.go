// Online serving: replay an Azure-style arrival trace against a cold
// FineMoE deployment (§6.3's experiment in miniature). The Expert Map Store
// starts empty and warms up as requests complete — watch the hit rate climb
// across the trace.
//
// Run with: go run ./examples/online_trace
package main

import (
	"fmt"
	"sort"

	"finemoe"
)

func main() {
	cfg := finemoe.Qwen15MoE()
	model := finemoe.NewModel(cfg, 11)
	ds := finemoe.LMSYSChat1M()

	trace := finemoe.AzureTrace(ds, cfg.SemDim, finemoe.TraceConfig{
		RatePerSec: 2.91, // the paper's Azure-trace arrival rate
		N:          48,
		Seed:       5,
	})
	for i := range trace {
		if trace[i].OutputTokens > 32 {
			trace[i].OutputTokens = 32
		}
	}

	// Cold start: empty store, per the paper's online protocol.
	pol := finemoe.NewFineMoE(finemoe.NewStore(cfg, 1000, 0), finemoe.FineMoEOptions{})
	eng := finemoe.NewEngine(finemoe.EngineOptions{
		Model: model, GPU: finemoe.RTX3090(), NumGPUs: 6,
		Policy: pol, MaxBatch: 8,
	})
	res := eng.RunOnline(trace, nil)

	// Hit-rate warmup: compare the first and last third of completions.
	reqs := append([]finemoe.RequestMetrics(nil), res.Requests...)
	sort.Slice(reqs, func(a, b int) bool { return reqs[a].EndMS < reqs[b].EndMS })
	third := len(reqs) / 3
	hitRate := func(rs []finemoe.RequestMetrics) float64 {
		var h, m int
		for _, r := range rs {
			h += r.Hits
			m += r.Misses
		}
		return float64(h) / float64(h+m)
	}
	fmt.Printf("Online serving on %s: %d requests @ 2.91 req/s, cold store\n",
		cfg.Name, len(reqs))
	fmt.Printf("  hit rate, first third of completions: %.3f\n", hitRate(reqs[:third]))
	fmt.Printf("  hit rate, last third of completions:  %.3f\n", hitRate(reqs[len(reqs)-third:]))
	fmt.Printf("  store grew to %d maps\n", pol.Store().Len())

	// End-to-end latency CDF (Fig. 11's quantity).
	lat := make([]float64, len(reqs))
	for i, r := range reqs {
		lat[i] = r.E2Ems / 1000
	}
	sort.Float64s(lat)
	fmt.Printf("\n  request latency: p25 %.2fs  p50 %.2fs  p75 %.2fs  p99 %.2fs\n",
		lat[len(lat)/4], lat[len(lat)/2], lat[3*len(lat)/4], lat[len(lat)*99/100])
}
