package finemoe

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"finemoe/internal/metrics"
)

// updateResultParity rewrites the committed serve.Result goldens. Run
// after an intentional engine change:
//
//	go test . -run ResultParityGolden -update-result-parity
var updateResultParity = flag.Bool("update-result-parity", false,
	"rewrite testdata/parity result goldens")

// f formats a float at full precision so any arithmetic drift — even one
// ULP — breaks the golden.
func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func summaryLine(name string, s metrics.Summary) string {
	return fmt.Sprintf("%s n=%d mean=%s min=%s max=%s p50=%s p90=%s p99=%s std=%s",
		name, s.N, f(s.Mean), f(s.Min), f(s.Max), f(s.P50), f(s.P90), f(s.P99), f(s.Std))
}

// serializeResult renders every pre-refactor field of a serve.Result,
// including per-request metrics, in a stable full-precision text form.
func serializeResult(res *Result) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("policy=%s model=%s", res.Policy, res.Model)
	w("mean_ttft=%s mean_tpot=%s", f(res.MeanTTFT), f(res.MeanTPOT))
	w("%s", summaryLine("ttft", res.TTFT))
	w("%s", summaryLine("tpot", res.TPOT))
	w("%s", summaryLine("e2e", res.E2E))
	w("hits=%d misses=%d hit_rate=%s iterations=%d", res.Hits, res.Misses, f(res.HitRate), res.Iterations)
	w("gpu_mem=%d policy_overhead=%d wall_clock=%s", res.GPUMemoryBytes, res.PolicyOverheadBytes, f(res.WallClockMS))
	cs := res.CacheStats
	w("cache hits=%d misses=%d ins=%d ev=%d pinned_ev=%d rej=%d peak=%d cur=%d",
		cs.Hits, cs.Misses, cs.Insertions, cs.Evictions, cs.PinnedEvictions,
		cs.RejectedInserts, cs.PeakResidentExp, cs.CurrentResident)
	ls := res.LinkStats
	w("link prefetch=%d on_demand=%d busy=%s", ls.Prefetches, ls.OnDemands, f(ls.BusyMS))
	comps := make([]string, 0, len(res.Breakdown))
	for k := range res.Breakdown {
		comps = append(comps, k)
	}
	sort.Strings(comps)
	for _, k := range comps {
		w("breakdown.%s=%s", k, f(res.Breakdown[k]))
	}
	for _, q := range res.Requests {
		w("req id=%d arr=%s start=%s first=%s end=%s ttft=%s tpot=%s e2e=%s hits=%d misses=%d out=%d",
			q.ID, f(q.ArrivalMS), f(q.StartMS), f(q.FirstTokenMS), f(q.EndMS),
			f(q.TTFTms), f(q.TPOTms), f(q.E2Ems), q.Hits, q.Misses, q.OutputTokens)
	}
	return b.String()
}

// paritySystems builds the five policies over the tiny model, mirroring
// the experiment harness's lineup at a small fixed cache budget.
func paritySystems(m *Model, storeReqs []Request) []struct {
	name    string
	policy  func() Policy
	preload bool
} {
	cfg := m.Cfg
	return []struct {
		name    string
		policy  func() Policy
		preload bool
	}{
		{"finemoe", func() Policy {
			return NewFineMoE(BuildStoreFromRequests(m, storeReqs, 200), FineMoEOptions{})
		}, false},
		{"moe-infinity", func() Policy { return NewMoEInfinity(cfg) }, false},
		{"promoe", func() Policy { return NewProMoE(m) }, false},
		{"mixtral-offload", func() Policy { return NewMixtralOffload(m) }, false},
		{"deepspeed", func() Policy { return NewDeepSpeed() }, false},
	}
}

// TestResultParityGolden pins the full serve.Result — every aggregate and
// every per-request metric at full float precision — for offline and
// online runs of all five systems, against goldens recorded before the
// tiered-memory refactor. The default (degenerate two-tier) memory
// configuration must keep these bytes identical.
func TestResultParityGolden(t *testing.T) {
	cfg := TinyModel()
	model := NewModel(cfg, 7)
	ds := LMSYSChat1M()
	reqs := ds.Sample(WorkloadOptions{Dim: cfg.SemDim, N: 24, Seed: 3, FixedLengths: true})
	storeReqs, testReqs := SplitRequests(reqs, 0.5)
	trace := AzureTrace(ds, cfg.SemDim, TraceConfig{RatePerSec: 6, N: 16, Seed: 4})

	var b strings.Builder
	for _, sys := range paritySystems(model, storeReqs) {
		off := NewEngine(EngineOptions{
			Model: model, GPU: RTX3090(), NumGPUs: 2,
			CacheBytes: 6 * cfg.ExpertBytes(), Policy: sys.policy(),
		}).RunOffline(testReqs, nil)
		fmt.Fprintf(&b, "== offline/%s ==\n%s", sys.name, serializeResult(off))
		on := NewEngine(EngineOptions{
			Model: model, GPU: RTX3090(), NumGPUs: 2,
			CacheBytes: 6 * cfg.ExpertBytes(), Policy: sys.policy(), MaxBatch: 4,
		}).RunOnline(trace, nil)
		fmt.Fprintf(&b, "== online/%s ==\n%s", sys.name, serializeResult(on))
	}
	got := b.String()

	path := filepath.Join("testdata", "parity", "serve_result.txt")
	if *updateResultParity {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-result-parity): %v", err)
	}
	if got != string(want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		lo, hi := i-120, i+120
		if lo < 0 {
			lo = 0
		}
		clip := func(s string) string {
			h := hi
			if h > len(s) {
				h = len(s)
			}
			if lo >= h {
				return ""
			}
			return s[lo:h]
		}
		t.Fatalf("serve.Result drifted from pre-refactor golden at byte %d:\n--- want\n%s\n--- got\n%s",
			i, clip(string(want)), clip(got))
	}
}
