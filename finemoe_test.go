package finemoe

import (
	"strings"
	"testing"
)

// TestQuickstartFlow exercises the documented public-API path end to end.
func TestQuickstartFlow(t *testing.T) {
	cfg := TinyModel()
	model := NewModel(cfg, 42)
	ds := LMSYSChat1M()
	ds.Topics = 6
	reqs := ds.Sample(WorkloadOptions{Dim: cfg.SemDim, N: 20, Seed: 1, FixedLengths: true})
	for i := range reqs {
		reqs[i].InputTokens, reqs[i].OutputTokens = 6, 8
	}
	storeReqs, testReqs := SplitRequests(reqs, 0.7)
	if len(storeReqs) != 14 || len(testReqs) != 6 {
		t.Fatalf("split %d/%d", len(storeReqs), len(testReqs))
	}

	store := BuildStoreFromRequests(model, storeReqs, 200)
	if store.Len() == 0 {
		t.Fatal("store empty after build")
	}
	pol := NewFineMoE(store, FineMoEOptions{})
	eng := NewEngine(EngineOptions{
		Model: model, GPU: RTX3090(), NumGPUs: 2,
		CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2,
		Policy:     pol,
	})
	res := eng.RunOffline(testReqs, nil)
	if res.MeanTTFT <= 0 || res.MeanTPOT <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.HitRate <= 0.3 {
		t.Fatalf("hit rate %.3f implausibly low", res.HitRate)
	}
	if res.Policy != "FineMoE" {
		t.Fatalf("policy name %q", res.Policy)
	}
}

func TestBaselineConstructors(t *testing.T) {
	cfg := TinyModel()
	m := NewModel(cfg, 1)
	pols := []Policy{
		NewDeepSpeed(), NewMixtralOffload(m), NewProMoE(m),
		NewMoEInfinity(cfg), NewNoOffload(),
	}
	names := map[string]bool{}
	for _, p := range pols {
		names[p.Name()] = true
	}
	for _, want := range []string{"DeepSpeed", "Mixtral-Offload", "ProMoE", "MoE-Infinity", "No-offload"} {
		if !names[want] {
			t.Errorf("missing baseline %s", want)
		}
	}
}

func TestPaperModelAccessors(t *testing.T) {
	if Mixtral8x7B().Name != "Mixtral-8x7B" || Qwen15MoE().Name != "Qwen1.5-MoE" || Phi35MoE().Name != "Phi-3.5-MoE" {
		t.Fatal("model names wrong")
	}
	if len(PaperModels()) != 3 {
		t.Fatal("paper models count")
	}
	if RTX3090().MemBytes != 24<<30 || A100().MemBytes != 80<<30 {
		t.Fatal("GPU specs wrong")
	}
}

func TestExperimentFacade(t *testing.T) {
	entries := ListExperiments()
	if len(entries) < 19 {
		t.Fatalf("experiments registered: %d", len(entries))
	}
	out, err := RunExperiment(SmallScale(), 7, "tab1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Mixtral") {
		t.Fatal("tab1 output missing model rows")
	}
	outs, err := RunExperiments(SmallScale(), 7, "tab1", "fig18")
	if err != nil || len(outs) != 2 {
		t.Fatalf("RunExperiments: %v (%d)", err, len(outs))
	}
	if _, err := RunExperiment(SmallScale(), 7, "not-an-experiment"); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestOnlineFacade(t *testing.T) {
	cfg := TinyModel()
	model := NewModel(cfg, 9)
	ds := ShareGPT()
	ds.Topics = 6
	trace := AzureTrace(ds, cfg.SemDim, TraceConfig{RatePerSec: 50, N: 6, Seed: 2})
	for i := range trace {
		trace[i].InputTokens, trace[i].OutputTokens = 5, 6
	}
	pol := NewFineMoE(NewStore(cfg, 100, 2), FineMoEOptions{})
	eng := NewEngine(EngineOptions{
		Model: model, GPU: RTX3090(), NumGPUs: 2,
		CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2,
		Policy:     pol, MaxBatch: 4,
	})
	res := eng.RunOnline(trace, nil)
	if len(res.Requests) != 6 {
		t.Fatalf("served %d", len(res.Requests))
	}
}
