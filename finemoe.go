// Package finemoe is a research-grade reproduction of "Taming
// Latency-Memory Trade-Off in MoE-Based LLM Serving via Fine-Grained Expert
// Offloading" (FineMoE, EuroSys '26).
//
// The package exposes the system's public surface:
//
//   - MoE model configurations matching the paper's Table 1 and a
//     statistically calibrated gate-network simulator (the substitute for a
//     GPU inference stack — see DESIGN.md for the substitution argument);
//   - the FineMoE policy: expert maps, the Expert Map Store with
//     redundancy-scored deduplication, semantic+trajectory search through
//     a centroid-clustered index (exact probe-all mode is byte-identical
//     to a brute-force scan; FineMoEOptions.SearchNProbe opts into
//     approximate search — see the searchfig experiment), zero-copy
//     generation-counted store snapshots, similarity-aware δ-threshold
//     prefetching, and priority-driven caching/eviction;
//   - the four baselines the paper compares against (DeepSpeed-Inference,
//     Mixtral-Offloading, ProMoE, MoE-Infinity) plus No-Offload;
//   - a virtual-time serving engine over a simulated multi-GPU cluster with
//     offline and online (trace-driven) runners, plus a steppable
//     event-driven surface (Submit / NextEventTime / Step / Drain) for
//     external orchestration;
//   - a tiered host-memory hierarchy under the engine: a per-expert
//     residency state machine over GPU HBM -> bounded CPU DRAM -> NVMe,
//     with staging transfers routed through intermediate tiers on distinct
//     contended links, eviction-as-demotion under pluggable per-tier
//     scorers, and memory-pressure signals feeding the cluster's routing
//     and autoscaling (the degenerate two-tier configuration reproduces the
//     pre-tiering engine byte-identically — see the memfig experiment for
//     the latency-memory curve);
//   - a cluster serving layer composing N engines behind an admission →
//     routing → instance pipeline: pluggable admission (always-admit,
//     token-bucket, reject-all) and routing (round-robin, least-loaded,
//     FineMoE-aware semantic-affinity) policies under one shared virtual
//     clock, with queue-pressure autoscaling (grow fresh cold-store
//     instances under sustained load, drain-then-retire idle ones) and
//     fleet-wide metric aggregation;
//   - workload generators standing in for LMSYS-Chat-1M, ShareGPT and the
//     Azure inference traces;
//   - the experiment harness reproducing every table and figure of the
//     paper's evaluation (§6).
//
// Quick start:
//
//	cfg := finemoe.Mixtral8x7B()
//	model := finemoe.NewModel(cfg, 42)
//	ds := finemoe.LMSYSChat1M()
//	reqs := ds.Sample(finemoe.WorkloadOptions{Dim: cfg.SemDim, N: 96, Seed: 1, FixedLengths: true})
//	storeReqs, testReqs := finemoe.SplitRequests(reqs, 0.7)
//
//	store := finemoe.BuildStoreFromRequests(model, storeReqs, 1000)
//	pol := finemoe.NewFineMoE(store, finemoe.FineMoEOptions{})
//	eng := finemoe.NewEngine(finemoe.EngineOptions{
//		Model: model, GPU: finemoe.RTX3090(), NumGPUs: 6, Policy: pol,
//	})
//	res := eng.RunOffline(testReqs, nil)
//	fmt.Printf("TTFT %.0f ms, TPOT %.0f ms, hit rate %.3f\n",
//		res.MeanTTFT, res.MeanTPOT, res.HitRate)
//
// Cluster serving (see examples/cluster for the full walkthrough):
//
//	engines := make([]*finemoe.Engine, 4)
//	for i := range engines {
//		pol := finemoe.NewFineMoE(finemoe.NewStore(cfg, 1000, 0), finemoe.FineMoEOptions{})
//		engines[i] = finemoe.NewEngine(finemoe.EngineOptions{
//			Model: model, GPU: finemoe.RTX3090(), NumGPUs: 6, Policy: pol,
//		})
//	}
//	cl := finemoe.NewCluster(finemoe.ClusterOptions{
//		Engines:   engines,
//		Admission: finemoe.NewTokenBucket(32, 8),
//		Router:    finemoe.NewSemanticAffinity(finemoe.SemanticAffinityOptions{}),
//	})
//	cres := cl.RunTrace(finemoe.AzureTrace(ds, cfg.SemDim, finemoe.TraceConfig{RatePerSec: 2.91, N: 256, Seed: 1}))
//	fmt.Println(cres)
package finemoe

import (
	"finemoe/internal/baselines"
	"finemoe/internal/cache"
	"finemoe/internal/cluster"
	"finemoe/internal/core"
	"finemoe/internal/experiments"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/scenarios"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// --- Models -----------------------------------------------------------------

// ModelConfig describes an MoE model architecture and its simulated gate
// statistics.
type ModelConfig = moe.Config

// Model is a simulated MoE gate network.
type Model = moe.Model

// Iteration is the observable outcome of one inference iteration.
type Iteration = moe.Iteration

// ExpertRef addresses one offloadable expert (layer, index).
type ExpertRef = moe.ExpertRef

// Mixtral8x7B returns the Mixtral-8x7B configuration (Table 1).
func Mixtral8x7B() ModelConfig { return moe.Mixtral8x7B() }

// Qwen15MoE returns the Qwen1.5-MoE-A2.7B configuration (Table 1).
func Qwen15MoE() ModelConfig { return moe.Qwen15MoE() }

// Phi35MoE returns the Phi-3.5-MoE configuration (Table 1).
func Phi35MoE() ModelConfig { return moe.Phi35MoE() }

// TinyModel returns a small configuration for tests and demos.
func TinyModel() ModelConfig { return moe.Tiny() }

// PaperModels returns the three models of the paper's evaluation.
func PaperModels() []ModelConfig { return moe.PaperModels() }

// NewModel builds a deterministic simulated gate network.
func NewModel(cfg ModelConfig, seed uint64) *Model { return moe.NewModel(cfg, seed) }

// --- Workloads ----------------------------------------------------------------

// Dataset is a synthetic prompt population.
type Dataset = workload.Dataset

// Request is one serving request.
type Request = workload.Request

// WorkloadOptions controls request sampling.
type WorkloadOptions = workload.Options

// TraceConfig parameterizes an online arrival trace.
type TraceConfig = workload.TraceConfig

// LMSYSChat1M returns the synthetic LMSYS-Chat-1M stand-in.
func LMSYSChat1M() Dataset { return workload.LMSYSChat1M() }

// ShareGPT returns the synthetic ShareGPT stand-in.
func ShareGPT() Dataset { return workload.ShareGPT() }

// SplitRequests partitions requests store-building/test by fraction (the
// paper's 70/30 protocol).
func SplitRequests(reqs []Request, storeFrac float64) (store, test []Request) {
	return workload.Split(reqs, storeFrac)
}

// AzureTrace samples an online trace with Poisson arrivals.
func AzureTrace(d Dataset, dim int, tc TraceConfig) []Request {
	return workload.AzureTrace(d, dim, tc)
}

// ArrivalProcess generates an online trace's arrival timeline; PoissonArrivals,
// MMPPArrivals, DiurnalArrivals and FlashCrowdArrivals implement it.
type ArrivalProcess = workload.ArrivalProcess

// PoissonArrivals is the constant-rate memoryless process (the paper's §6.3).
type PoissonArrivals = workload.Poisson

// MMPPArrivals is the two-state bursty Markov-modulated Poisson process.
type MMPPArrivals = workload.MMPP

// DiurnalArrivals is the sinusoidally rate-modulated process.
type DiurnalArrivals = workload.Diurnal

// FlashCrowdArrivals is the step-spike-with-decay process.
type FlashCrowdArrivals = workload.FlashCrowd

// BurstyMMPP returns the bursty preset with mean rate ratePerSec.
func BurstyMMPP(ratePerSec float64) MMPPArrivals { return workload.BurstyMMPP(ratePerSec) }

// DiurnalSwing returns the diurnal preset with mean rate ratePerSec.
func DiurnalSwing(ratePerSec float64) DiurnalArrivals { return workload.DiurnalSwing(ratePerSec) }

// FlashSpike returns the flash-crowd preset with background rate ratePerSec.
func FlashSpike(ratePerSec float64) FlashCrowdArrivals { return workload.FlashSpike(ratePerSec) }

// OnlineTraceOptions parameterizes trace generation over any arrival process.
type OnlineTraceOptions = workload.OnlineOptions

// OnlineTrace samples an online trace on the configured arrival process.
func OnlineTrace(d Dataset, dim int, opt OnlineTraceOptions) []Request {
	return workload.OnlineTrace(d, dim, opt)
}

// SessionConfig shapes closed-loop multi-turn session workloads.
type SessionConfig = workload.SessionConfig

// Sessions generates multi-turn session workloads: opening turns on an
// arrival process, semantically close follow-ups after each completion
// (drive them through ClusterOptions.FollowUp).
type Sessions = workload.Sessions

// NewSessions builds a session generator over a dataset.
func NewSessions(d Dataset, dim int, cfg SessionConfig, seed uint64) *Sessions {
	return workload.NewSessions(d, dim, cfg, seed)
}

// TenantSpec describes one tenant of a multi-tenant trace mix.
type TenantSpec = workload.TenantSpec

// MultiTenantTrace merges per-tenant traces into one arrival-ordered stream.
func MultiTenantTrace(dim int, seed uint64, tenants []TenantSpec) []Request {
	return workload.MultiTenantTrace(dim, seed, tenants)
}

// --- Hardware -----------------------------------------------------------------

// GPUSpec describes a simulated device.
type GPUSpec = memsim.GPUSpec

// RTX3090 returns the paper's six-GPU testbed device.
func RTX3090() GPUSpec { return memsim.RTX3090() }

// A100 returns the §6.5 high-end device.
func A100() GPUSpec { return memsim.A100() }

// --- Tiered memory hierarchy --------------------------------------------------

// MemoryTierSpec describes one host-side memory tier: capacity plus the
// bandwidth and fixed per-copy latency of the staging link that feeds
// the tier above it.
type MemoryTierSpec = memsim.TierSpec

// MemoryHierarchy is the ordered host-side tier list below the GPU
// expert cache (DRAM first, slower tiers after). Pass it through
// EngineOptions.Memory; the zero value is the degenerate two-tier
// configuration, byte-identical to the pre-tiering engine.
type MemoryHierarchy = memsim.Hierarchy

// TwoTierMemory returns the degenerate hierarchy: unbounded DRAM, no
// staging tiers (the seed's memory model).
func TwoTierMemory() MemoryHierarchy { return memsim.TwoTier() }

// ThreeTierMemory bounds host DRAM at dramBytes and backs it with an
// unbounded NVMe tier behind a shared staging link: experts beyond the
// DRAM budget pay NVMe->DRAM->HBM routing on distinct contended links.
func ThreeTierMemory(dramBytes int64) MemoryHierarchy { return memsim.ThreeTier(dramBytes) }

// TierStat reports one memory tier's residency and transfer activity in
// a Result (topmost tier — the GPU expert cache — first).
type TierStat = serve.TierStat

// CacheScorer ranks cache/tier residents for eviction and demotion; the
// highest score goes first. LRUScorer and LFUScorer are the classic
// policies; FineMoE's own similarity-aware priority is used when
// EngineOptions.HostScorer is nil.
type CacheScorer = cache.Scorer

// LRUScorer evicts the least-recently-used expert.
type LRUScorer = cache.LRU

// LFUScorer evicts the least-frequently-used expert (use-rate aged).
type LFUScorer = cache.LFU

// --- FineMoE core ---------------------------------------------------------------

// ExpertMap records one iteration's gate distributions plus its semantic
// embedding (§4.1).
type ExpertMap = core.ExpertMap

// Store is the Expert Map Store (§4.4).
type Store = core.Store

// FineMoEOptions configures the FineMoE policy.
type FineMoEOptions = core.Options

// FineMoE is the paper's fine-grained expert offloading policy.
type FineMoE = core.FineMoE

// NewStore builds an empty Expert Map Store (capacity <= 0 uses the paper's
// 1K default).
func NewStore(cfg ModelConfig, capacity, prefetchDistance int) *Store {
	return core.NewStore(cfg, capacity, prefetchDistance)
}

// BuildStoreFromRequests populates a store by simulating the given requests
// (the offline 70% split). The prefetch distance defaults to the model's
// profiled optimum.
func BuildStoreFromRequests(m *Model, reqs []Request, capacity int) *Store {
	traces := make(map[uint64][]*Iteration, len(reqs))
	for _, q := range reqs {
		traces[q.ID] = m.Trace(q.PromptSpec)
	}
	return core.BuildStore(m.Cfg, capacity, m.Cfg.OptimalPrefetchDistance, traces)
}

// NewFineMoE builds the FineMoE policy around a store.
func NewFineMoE(store *Store, opts FineMoEOptions) *FineMoE {
	return core.NewFineMoE(store, opts)
}

// Searcher performs semantic and trajectory expert-map search (§4.2)
// through the store's centroid-clustered index. The default probe-all
// mode returns byte-identical results to a brute-force linear scan;
// Searcher.SetNProbe (or FineMoEOptions.SearchNProbe) opts into
// approximate search over the top-n query-similar clusters.
type Searcher = core.Searcher

// SearchQuery is a prepared (pooled) search query: one float32 conversion
// of an embedding serves both Searcher.SemanticSearchQ and
// Searcher.NewCursorQ; Release recycles it.
type SearchQuery = core.Query

// SearchResult is a searched map with its similarity score.
type SearchResult = core.SearchResult

// NewSearcher builds a searcher over a store; prefilter bounds trajectory
// candidates to the semantic top-N (<=0 searches the full store).
func NewSearcher(store *Store, prefilter int) *Searcher {
	return core.NewSearcher(store, prefilter)
}

// --- Baselines ------------------------------------------------------------------

// Policy is the engine-facing offloading policy interface.
type Policy = policy.Policy

// NewDeepSpeed returns the DeepSpeed-Inference baseline (§6.1).
func NewDeepSpeed() Policy { return baselines.NewDeepSpeed() }

// NewMixtralOffload returns the Mixtral-Offloading baseline (§6.1).
func NewMixtralOffload(m *Model) Policy { return baselines.NewMixtralOffload(m) }

// NewProMoE returns the ProMoE baseline (§6.1).
func NewProMoE(m *Model) Policy { return baselines.NewProMoE(m) }

// NewMoEInfinity returns the MoE-Infinity baseline with an empty matrix
// collection (§6.1).
func NewMoEInfinity(cfg ModelConfig) Policy {
	return baselines.NewMoEInfinity(baselines.NewEAMCollection(cfg))
}

// NewNoOffload returns the no-offloading upper bound (pair with
// EngineOptions.PreloadAll).
func NewNoOffload() Policy { return baselines.NewNoOffload() }

// --- Serving engine --------------------------------------------------------------

// EngineOptions configures a serving run.
type EngineOptions = serve.Options

// Engine executes serving runs on the simulated cluster.
type Engine = serve.Engine

// Result aggregates a serving run's metrics.
type Result = serve.Result

// RequestMetrics records one served request.
type RequestMetrics = serve.RequestMetrics

// NewEngine builds an engine; construct a fresh engine (and policy) per run.
// Beyond RunOffline/RunOnline, the engine exposes the steppable surface
// (Submit, NextEventTime, Step, Drain, Finalize) that Cluster orchestrates.
func NewEngine(opts EngineOptions) *Engine { return serve.New(opts) }

// --- Cluster serving --------------------------------------------------------

// Cluster orchestrates N serving engines behind the admission → routing →
// instance → aggregation pipeline under one shared virtual clock.
type Cluster = cluster.Cluster

// ClusterOptions assembles a cluster: per-instance engines plus admission
// and routing policies.
type ClusterOptions = cluster.Options

// ClusterResult aggregates a cluster run: per-instance results, admission
// accounting, and fleet-wide latency/hit-rate summaries.
type ClusterResult = cluster.Result

// InstanceResult is one replica's aggregated run within a ClusterResult.
type InstanceResult = cluster.InstanceResult

// InstanceState is the admission/routing-visible load view of an instance.
type InstanceState = cluster.InstanceState

// Admission gates arrivals into the fleet.
type Admission = cluster.Admission

// Router places admitted requests onto instances.
type Router = cluster.Router

// SemanticAffinityOptions tunes the FineMoE-aware affinity router.
type SemanticAffinityOptions = cluster.SemanticAffinityOptions

// Autoscaler resizes the fleet under the shared-clock loop: it observes
// the routable instances at fixed virtual-time intervals and may grow
// the fleet (via ClusterOptions.EngineFactory) or drain-then-retire an
// instance.
type Autoscaler = cluster.Autoscaler

// ScaleDecision is an autoscaler's verdict for one tick.
type ScaleDecision = cluster.Decision

// AutoscalerFeedback is an optional Autoscaler extension: orchestrators
// report whether a non-hold decision was applied or refused at the
// fleet-size bounds, so pacing state charges only for applied resizes.
type AutoscalerFeedback = cluster.DecisionFeedback

// Autoscaler verdicts.
const (
	ScaleHold   ScaleDecision = cluster.Hold
	ScaleGrow   ScaleDecision = cluster.Grow
	ScaleShrink ScaleDecision = cluster.Shrink
)

// ScaleEvent records one autoscaler-driven fleet resize in a
// ClusterResult.
type ScaleEvent = cluster.ScaleEvent

// QueuePressureOptions tunes the hysteresis-banded queue-pressure
// autoscaler.
type QueuePressureOptions = cluster.QueuePressureOptions

// NewQueuePressure returns the queue-pressure autoscaler: grow when mean
// queued+in-flight per instance stays above the high watermark, shrink
// when it stays below the low watermark, hold inside the band.
func NewQueuePressure(opts QueuePressureOptions) Autoscaler {
	return cluster.NewQueuePressure(opts)
}

// NewCluster builds a cluster over freshly constructed engines.
func NewCluster(opts ClusterOptions) *Cluster { return cluster.New(opts) }

// NewAlwaysAdmit returns the accept-everything admission policy.
func NewAlwaysAdmit() Admission { return cluster.NewAlwaysAdmit() }

// NewRejectAll returns the shed-everything admission policy.
func NewRejectAll() Admission { return cluster.NewRejectAll() }

// NewTokenBucket returns a token-bucket admission policy: capacity tokens,
// refilled at refillPerSec, one token per admitted request.
func NewTokenBucket(capacity, refillPerSec float64) Admission {
	return cluster.NewTokenBucket(capacity, refillPerSec)
}

// NewRoundRobin returns the round-robin router.
func NewRoundRobin() Router { return cluster.NewRoundRobin() }

// NewLeastLoaded returns the join-shortest-queue router.
func NewLeastLoaded() Router { return cluster.NewLeastLoaded() }

// NewMemoryAware returns the memory-pressure-aware router: shortest
// queue first, load ties broken toward the instance with the most host
// DRAM headroom (identical to least-loaded on a degenerate fleet).
func NewMemoryAware() Router { return cluster.NewMemoryAware() }

// NewSemanticAffinity returns the FineMoE-aware router: semantically
// similar prompts are routed to the instance whose Expert Map Store has
// already seen them, raising the fleet's expert hit rate.
func NewSemanticAffinity(opts SemanticAffinityOptions) Router {
	return cluster.NewSemanticAffinity(opts)
}

// --- Scenarios ---------------------------------------------------------------

// Scenario is one cell of the scenario gauntlet: a named workload shape ×
// fleet configuration pairing.
type Scenario = scenarios.Scenario

// ScenarioWorkload declares a scenario's traffic: arrival process,
// closed-loop sessions, or a multi-tenant mix.
type ScenarioWorkload = scenarios.WorkloadSpec

// ScenarioFleet declares a scenario's serving side by policy name.
type ScenarioFleet = scenarios.FleetSpec

// ScenarioOptions configures a ScenarioRunner's model and testbed.
type ScenarioOptions = scenarios.Options

// ScenarioRunner sweeps scenarios through the cluster pipeline.
type ScenarioRunner = scenarios.Runner

// ScenarioReport is one scenario's comparable, deterministically
// serializable outcome.
type ScenarioReport = scenarios.Report

// NewScenarioRunner builds a runner; every scenario it runs shares the
// same model and testbed, so reports are comparable. RunMatrix sweeps
// scenarios on a bounded worker pool (ScenarioOptions.Workers; 0 =
// GOMAXPROCS) with reports byte-identical to a serial sweep regardless of
// worker count.
func NewScenarioRunner(opts ScenarioOptions) *ScenarioRunner { return scenarios.NewRunner(opts) }

// --- Experiment harness ------------------------------------------------------------

// ExperimentScale sizes experiment workloads.
type ExperimentScale = experiments.Scale

// ExperimentOutput is a reproduced table/figure.
type ExperimentOutput = experiments.Output

// ExperimentEntry names a registered experiment.
type ExperimentEntry = experiments.Entry

// FullScale reproduces the paper's workload parameters.
func FullScale() ExperimentScale { return experiments.Full }

// SmallScale is a fast configuration for tests and demos.
func SmallScale() ExperimentScale { return experiments.Small }

// ListExperiments enumerates every reproducible table and figure.
func ListExperiments() []ExperimentEntry { return experiments.List() }

// RunExperiment executes one experiment by ID ("fig10", "tab1", ...).
func RunExperiment(scale ExperimentScale, seed uint64, id string) (*ExperimentOutput, error) {
	return experiments.Run(experiments.NewContext(scale, seed), id)
}

// RunExperiments executes several experiments sharing simulation state
// (models, gate traces, prototype stores), which is much cheaper than
// running them independently.
func RunExperiments(scale ExperimentScale, seed uint64, ids ...string) ([]*ExperimentOutput, error) {
	ctx := experiments.NewContext(scale, seed)
	out := make([]*ExperimentOutput, 0, len(ids))
	for _, id := range ids {
		o, err := experiments.Run(ctx, id)
		if err != nil {
			return out, err
		}
		out = append(out, o)
	}
	return out, nil
}
