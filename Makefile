GO ?= go

.PHONY: build test test-short lint vet-lint fmt clusterbench faultfig

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The repo's determinism/hot-path contract checker (internal/analysis);
# see the "Determinism contract" section of ARCHITECTURE.md. -stats also
# inventories every //finemoe: directive and fails on stale suppressions.
lint:
	$(GO) run ./cmd/finemoe-lint -stats ./...

# Same analyzers driven through cmd/go's vet cache (incremental re-runs).
vet-lint:
	$(GO) build -o $(CURDIR)/bin/finemoe-lint ./cmd/finemoe-lint
	$(GO) vet -vettool=$(CURDIR)/bin/finemoe-lint ./...

fmt:
	gofmt -w .

# Regenerate the committed sharded cluster-loop baseline: a 32-instance
# 1M-request bursty trace through the serial, sharded (workers
# 1/2/4/NumCPU) and streaming loops, byte-parity checked, with honest
# wall-clock ratios and memory columns (peak heap, GC cycles,
# allocs/request) — plus the 10M-request streaming-only horizon run.
clusterbench:
	$(GO) run ./cmd/finemoe-bench -clusterbench BENCH_cluster.json -clusterbench-horizon 10000000

# The fault gauntlet at small scale: crash/brownout/stall scenarios with
# resilience off vs on (see internal/experiments/faults.go).
faultfig:
	$(GO) run ./cmd/finemoe-bench -exp faultfig -scale small
