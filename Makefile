GO ?= go

.PHONY: build test test-short lint vet-lint fmt clusterbench faultfig

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The repo's determinism/hot-path contract checker (internal/analysis);
# see the "Determinism contract" section of ARCHITECTURE.md. -stats also
# inventories every //finemoe: directive and fails on stale suppressions.
lint:
	$(GO) run ./cmd/finemoe-lint -stats ./...

# Same analyzers driven through cmd/go's vet cache (incremental re-runs).
vet-lint:
	$(GO) build -o $(CURDIR)/bin/finemoe-lint ./cmd/finemoe-lint
	$(GO) vet -vettool=$(CURDIR)/bin/finemoe-lint ./...

fmt:
	gofmt -w .

# Regenerate the committed sharded cluster-loop baseline: a 32-instance
# 1M-request bursty trace through the serial loop and the sharded loop at
# workers 1/2/4/NumCPU, byte-parity checked, honest wall-clock ratios.
clusterbench:
	$(GO) run ./cmd/finemoe-bench -clusterbench BENCH_cluster.json

# The fault gauntlet at small scale: crash/brownout/stall scenarios with
# resilience off vs on (see internal/experiments/faults.go).
faultfig:
	$(GO) run ./cmd/finemoe-bench -exp faultfig -scale small
