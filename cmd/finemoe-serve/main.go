// Command finemoe-serve exposes the FineMoE serving simulator as an HTTP
// service, demonstrating the system's online behaviour: the Expert Map
// Store starts empty and warms up as requests flow, improving hit rates and
// latency over time.
//
// Endpoints:
//
//	POST /v1/generate  {"prompt_topic": 3, "input_tokens": 37, "output_tokens": 32}
//	  -> per-request metrics (simulated TTFT/TPOT/E2E, expert hits/misses)
//	GET  /v1/stats
//	  -> cumulative serving statistics and store state
//	GET  /v1/config
//	  -> model, testbed and policy configuration
//
// Usage:
//
//	finemoe-serve -model mixtral -addr :8080 -gpus 6 -cache-gb 27
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"finemoe/internal/httpserve"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
)

func modelByName(name string) (moe.Config, error) {
	switch strings.ToLower(name) {
	case "mixtral":
		return moe.Mixtral8x7B(), nil
	case "qwen":
		return moe.Qwen15MoE(), nil
	case "phi":
		return moe.Phi35MoE(), nil
	case "tiny":
		return moe.Tiny(), nil
	}
	return moe.Config{}, fmt.Errorf("unknown model %q (mixtral|qwen|phi|tiny)", name)
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		modelArg = flag.String("model", "mixtral", "model: mixtral|qwen|phi|tiny")
		gpus     = flag.Int("gpus", 6, "expert-parallel GPU count")
		cacheGB  = flag.Float64("cache-gb", 0, "expert cache budget in GiB (0 = 30% of expert weights)")
		seed     = flag.Uint64("seed", 42, "simulation seed")
	)
	flag.Parse()

	cfg, err := modelByName(*modelArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var cacheBytes int64
	if *cacheGB > 0 {
		cacheBytes = int64(*cacheGB * float64(int64(1)<<30))
	}
	srv := httpserve.New(httpserve.Config{
		Model: cfg, Seed: *seed,
		GPU: memsim.RTX3090(), NumGPUs: *gpus,
		CacheBytes: cacheBytes,
	})

	log.Printf("finemoe-serve: %s on %d GPU(s), listening on %s", cfg.Name, *gpus, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
