// Command finemoe-serve exposes the FineMoE serving simulator as an HTTP
// service over a cluster of serving instances. Each request flows through
// the admission → routing → instance pipeline; every instance's Expert Map
// Store starts empty and warms up as requests flow, improving hit rates
// and latency over time.
//
// Endpoints:
//
//	POST /v1/generate  {"prompt_topic": 3, "input_tokens": 37, "output_tokens": 32}
//	  -> per-request metrics (simulated TTFT/TPOT/E2E, expert hits/misses,
//	     serving instance); 429 when the admission policy sheds the request
//	GET  /v1/stats
//	  -> fleet-wide and per-instance serving statistics: queue depth,
//	     admission rejections, hit rates, store state
//	GET  /v1/config
//	  -> model, testbed, fleet and policy configuration
//	GET  /healthz
//	  -> liveness
//
// Usage:
//
//	finemoe-serve -model mixtral -addr :8080 -gpus 6 -cache-gb 27 \
//	  -instances 4 -admission token-bucket -admit-rate 8 -router semantic
//
// With -dram-gb each instance's host DRAM is bounded: experts beyond the
// budget live on a simulated NVMe tier and pay NVMe->DRAM->HBM staging
// on distinct contended links when fetched. /v1/stats then reports
// per-tier residency and transfer activity plus each instance's memory
// pressure, and the memory-aware router (-router memory-aware) breaks
// load ties toward instances with DRAM headroom:
//
//	finemoe-serve -model mixtral -instances 4 -dram-gb 24 -router memory-aware
//
// With -autoscale the fleet resizes itself on queue pressure, evaluated
// at each admitted arrival: sustained load above the high watermark adds
// an instance (up to -max-instances, reusing drained retired replicas
// first), and sustained low load retires the least-loaded replica (down
// to -min-instances) as subsequent arrivals are admitted — a fully idle
// server holds its size until traffic resumes. Retired instances finish
// in-flight work but receive no further routes:
//
//	finemoe-serve -model mixtral -instances 1 -autoscale -min-instances 1 -max-instances 8
//
// With -replay N the server does not listen at all: it generates N
// synthetic requests on the arrival process named by -arrival (poisson,
// mmpp, diurnal, flash — see internal/workload presets) at -arrival-rate
// req/s, replays them through the same admission → routing → instance
// pipeline the HTTP path uses, prints the scenario report, and exits —
// a one-command load rehearsal for a fleet configuration:
//
//	finemoe-serve -model tiny -instances 2 -router semantic -autoscale \
//	  -replay 64 -arrival mmpp -arrival-rate 8
//
// Replay can also rehearse failures: -faults injects a deterministic
// fault schedule (compact syntax, see internal/faults.ParsePlan) and the
// resilience flags arm request-level fault tolerance — crash re-queue +
// cold replacement, bounded retries with deterministic backoff, optional
// per-request timeouts and hedged re-dispatch. The report then carries
// availability accounting (failed/lost/retries/goodput):
//
//	finemoe-serve -model tiny -instances 3 -replay 64 \
//	  -faults "crash@2000:i1:d400,brownout@1000+2000:pcie:x0.25:i2" \
//	  -resilience -retries 3 -hedge-ms 1500
//
// The live HTTP server exposes the same failure vocabulary operationally:
// POST /v1/faults {"instance": 1, "action": "crash"} fails a replica in
// place (restore replaces it cold), /healthz reports per-replica
// healthy/degraded/crashed/draining states, and crashed replicas leave
// the routable set until restored.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"finemoe/internal/cluster"
	"finemoe/internal/faults"
	"finemoe/internal/httpserve"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/scenarios"
	"finemoe/internal/workload"
)

func modelByName(name string) (moe.Config, error) {
	switch strings.ToLower(name) {
	case "mixtral":
		return moe.Mixtral8x7B(), nil
	case "qwen":
		return moe.Qwen15MoE(), nil
	case "phi":
		return moe.Phi35MoE(), nil
	case "tiny":
		return moe.Tiny(), nil
	}
	return moe.Config{}, fmt.Errorf("unknown model %q (mixtral|qwen|phi|tiny)", name)
}

// admissionByName and routerByName delegate to the scenarios resolvers so
// the HTTP path and -replay mode share one name-to-policy table.
func admissionByName(name string, burst, rate float64) (cluster.Admission, error) {
	return scenarios.NewAdmission(strings.ToLower(name), burst, rate)
}

func routerByName(name string) (cluster.Router, error) {
	return scenarios.NewRouter(strings.ToLower(name))
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		modelArg   = flag.String("model", "mixtral", "model: mixtral|qwen|phi|tiny")
		gpus       = flag.Int("gpus", 6, "expert-parallel GPU count per instance")
		cacheGB    = flag.Float64("cache-gb", 0, "expert cache budget per instance in GiB (0 = 30% of expert weights)")
		dramGB     = flag.Float64("dram-gb", 0, "host DRAM budget per instance in GiB; experts beyond it spill to a simulated NVMe tier (0 = unbounded DRAM)")
		seed       = flag.Uint64("seed", 42, "simulation seed")
		instances  = flag.Int("instances", 1, "number of serving instances")
		admitArg   = flag.String("admission", "always", "admission policy: always|token-bucket|reject-all")
		admitBurst = flag.Float64("admit-burst", 32, "token-bucket capacity (with -admission token-bucket)")
		admitRate  = flag.Float64("admit-rate", 8, "token-bucket refill per second (with -admission token-bucket)")
		routerArg  = flag.String("router", "least-loaded", "router policy: round-robin|least-loaded|memory-aware|semantic")
		autoscale  = flag.Bool("autoscale", false, "resize the fleet on queue pressure (grow under load, retire idle instances)")
		minInst    = flag.Int("min-instances", 1, "autoscaling floor (with -autoscale)")
		maxInst    = flag.Int("max-instances", 8, "autoscaling ceiling (with -autoscale)")
		replayN    = flag.Int("replay", 0, "replay N synthetic requests through the pipeline and exit instead of serving")
		arrival    = flag.String("arrival", "poisson", "replay arrival process: poisson|mmpp|diurnal|flash (with -replay)")
		arrRate    = flag.Float64("arrival-rate", 2.91, "replay mean arrival rate in req/s (with -replay)")
		faultsArg  = flag.String("faults", "", `replay fault plan, e.g. "crash@2000:i1:d400,brownout@1000+2000:pcie:x0.25" (with -replay)`)
		resilient  = flag.Bool("resilience", false, "arm request-level fault tolerance in replay: crash re-queue + cold replacement")
		retries    = flag.Int("retries", 3, "max retry attempts per request (with -resilience)")
		timeoutMS  = flag.Float64("timeout-ms", 0, "per-request timeout before retry, ms (with -resilience; 0 = none)")
		hedgeMS    = flag.Float64("hedge-ms", 0, "hedged re-dispatch delay, ms (with -resilience; 0 = no hedging)")
		retryFrac  = flag.Float64("retry-budget", 0, "per-tenant retry budget as a fraction of offered requests (with -resilience; 0 = unbounded)")
	)
	flag.Parse()

	cfg, err := modelByName(*modelArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	adm, err := admissionByName(*admitArg, *admitBurst, *admitRate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rt, err := routerByName(*routerArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var cacheBytes int64
	if *cacheGB > 0 {
		cacheBytes = int64(*cacheGB * float64(int64(1)<<30))
	}
	dramBytes := int64(*dramGB * float64(int64(1)<<30)) // 0 = unbounded DRAM
	if *replayN > 0 {
		ap, err := workload.ArrivalByName(strings.ToLower(*arrival), *arrRate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var fspec *scenarios.FaultSpec
		if *faultsArg != "" || *resilient {
			fspec = &scenarios.FaultSpec{}
			if *faultsArg != "" {
				plan, err := faults.ParsePlan(*faultsArg)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				fspec.Crashes = plan.Crashes
				fspec.Brownouts = plan.Brownouts
				fspec.Stalls = plan.Stalls
			}
			if *resilient {
				fspec.Resilience = cluster.ResilienceOptions{
					Enabled:         true,
					MaxRetries:      *retries,
					TimeoutMS:       *timeoutMS,
					HedgeAfterMS:    *hedgeMS,
					RetryBudgetFrac: *retryFrac,
					RequeueOnCrash:  true,
					ReplaceOnCrash:  true,
					Seed:            *seed,
				}
			}
		}
		runner := scenarios.NewRunner(scenarios.Options{
			Model: cfg, GPU: memsim.RTX3090(), NumGPUs: *gpus, Seed: *seed,
			CacheBytes: cacheBytes,
			DRAMBytes:  dramBytes,
		})
		rep, err := runner.Run(scenarios.Scenario{
			Name: "replay",
			Workload: scenarios.WorkloadSpec{
				Dataset:  workload.LMSYSChat1M(),
				Arrivals: ap,
				Requests: *replayN,
			},
			Fleet: scenarios.FleetSpec{
				Instances:  *instances,
				Router:     strings.ToLower(*routerArg),
				Admission:  strings.ToLower(*admitArg),
				AdmitBurst: *admitBurst, AdmitRate: *admitRate,
				Autoscale:    *autoscale,
				MinInstances: *minInst, MaxInstances: *maxInst,
			},
			Faults: fspec,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		if rep.Faulted {
			fmt.Printf("faults: crashes=%d failed=%d lost_in_flight=%d retries=%d hedged_wins=%d degraded=%.0fms goodput=%.4f\n",
				rep.Crashes, rep.Failed, rep.Lost, rep.Retries, rep.HedgedWins,
				rep.DegradedMS, rep.Goodput)
		}
		return
	}

	var scaler cluster.Autoscaler
	if *autoscale {
		scaler = cluster.NewQueuePressure(cluster.QueuePressureOptions{})
	}
	srv := httpserve.New(httpserve.Config{
		Model: cfg, Seed: *seed,
		GPU: memsim.RTX3090(), NumGPUs: *gpus,
		CacheBytes:   cacheBytes,
		DRAMBytes:    dramBytes,
		Instances:    *instances,
		Admission:    adm,
		Router:       rt,
		Autoscaler:   scaler,
		MinInstances: *minInst,
		MaxInstances: *maxInst,
	})

	scaleInfo := ""
	if *autoscale {
		scaleInfo = fmt.Sprintf(" autoscale=[%d,%d]", *minInst, *maxInst)
	}
	log.Printf("finemoe-serve: %s, %d instance(s) × %d GPU(s), admission=%s router=%s%s, listening on %s",
		cfg.Name, *instances, *gpus, adm.Name(), rt.Name(), scaleInfo, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
