// Command finemoe-bench runs the paper-reproduction experiments and prints
// their tables.
//
// Usage:
//
//	finemoe-bench -list
//	finemoe-bench -exp fig10
//	finemoe-bench -exp fig10,fig12 -scale full -seed 42
//	finemoe-bench -all -scale small
//	finemoe-bench -exp fig18 -csv
//
// Experiment IDs match DESIGN.md §3 (tab1, fig1b, fig3a–fig4, fig8–fig18,
// abl-sync, abl-ep, abl-dedup), plus extensions beyond the paper:
// clusterfig (the cluster router comparison under an Azure-trace load
// sweep), autoscalefig (fixed fleets vs queue-pressure autoscaling),
// scenariofig (the scenario gauntlet: Poisson/MMPP/diurnal/flash-crowd
// arrivals, closed-loop multi-turn sessions, and a two-tenant mix across
// fixed round-robin and autoscaled semantic-affinity fleets), searchfig
// (approximate expert-map search), and memfig (the latency-memory
// trade-off: p99 TTFT vs provisioned host DRAM under the three-tier
// HBM/DRAM/NVMe hierarchy). The "full" scale uses the paper's workload
// parameters; "small" is a fast smoke configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"finemoe/internal/experiments"
	"finemoe/internal/walltime"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments and exit")
		exp   = flag.String("exp", "", "comma-separated experiment IDs to run")
		all   = flag.Bool("all", false, "run every registered experiment")
		scale = flag.String("scale", "full", `workload scale: "full" (paper parameters) or "small"`)
		seed  = flag.Uint64("seed", 42, "simulation seed")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		quiet = flag.Bool("q", false, "suppress progress timing")

		workers = flag.Int("workers", 0,
			"worker pool for the cluster-sweep experiments (0 = GOMAXPROCS, 1 = serial); tables are identical either way")
		searchBench = flag.String("searchbench", "",
			"run the expert-map search micro-benchmarks and write the JSON baseline (BENCH_search.json) to this path, then exit")
		clusterBench = flag.String("clusterbench", "",
			"run the sharded cluster-loop benchmark (serial vs workers 1/2/4/NumCPU, byte-parity checked) and write the JSON baseline (BENCH_cluster.json) to this path, then exit")
		clusterBenchN = flag.Int("clusterbench-n", 1_000_000,
			"request count for -clusterbench (the committed baseline uses 1M; CI smoke uses a small value)")
		clusterBenchInstances = flag.Int("clusterbench-instances", 32,
			"fleet size for -clusterbench")
		clusterBenchHorizon = flag.Int("clusterbench-horizon", 0,
			"additional streaming-only long-horizon request count for -clusterbench (0 = skip; the committed baseline uses 10M)")
		cpuProfile = flag.String("cpuprofile", "",
			"write a pprof CPU profile of the experiment runs to this file")
		memProfile = flag.String("memprofile", "",
			"write a pprof heap profile to this file after the runs")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.List() {
			fmt.Printf("%-8s  %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	writeMemProfile := func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}

	if *searchBench != "" {
		if err := runSearchBench(*searchBench); err != nil {
			fmt.Fprintf(os.Stderr, "searchbench: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("wrote search benchmark baseline to %s\n", *searchBench)
		}
		writeMemProfile()
		return
	}

	if *clusterBench != "" {
		if err := runClusterBench(*clusterBench, *clusterBenchN, *clusterBenchInstances, *clusterBenchHorizon); err != nil {
			fmt.Fprintf(os.Stderr, "clusterbench: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("wrote cluster benchmark baseline to %s\n", *clusterBench)
		}
		writeMemProfile()
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "full":
		sc = experiments.Full
	case "small":
		sc = experiments.Small
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (use full or small)\n", *scale)
		os.Exit(2)
	}

	var ids []string
	switch {
	case *all:
		for _, e := range experiments.List() {
			ids = append(ids, e.ID)
		}
	case *exp != "":
		for _, id := range strings.Split(*exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -exp <ids>, -all, or -list")
		os.Exit(2)
	}

	ctx := experiments.NewContext(sc, *seed)
	ctx.Workers = *workers
	for _, id := range ids {
		watch := walltime.Start()
		out, err := experiments.Run(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s: %s\n%s", out.ID, out.Title, out.Table.CSV())
		} else {
			fmt.Println(out.String())
		}
		if !*quiet {
			fmt.Printf("-- %s completed in %v --\n\n", id, watch.ElapsedRounded(time.Millisecond))
		}
	}
	writeMemProfile()
}
