package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"finemoe/internal/cluster"
	"finemoe/internal/core"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/serve"
	"finemoe/internal/walltime"
	"finemoe/internal/workload"
)

// clusterBenchRun is one loop configuration's measurement in the
// committed BENCH_cluster.json baseline. Workers 0 is the serial
// shared-clock loop every sharded run is compared against.
type clusterBenchRun struct {
	Workers         int     `json:"workers"`
	WallMS          float64 `json:"wall_ms"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	ByteParity      bool    `json:"byte_parity_vs_serial"`
}

// clusterBenchBaseline is the artifact's top-level schema. Speedups are
// honest measurements on the generating machine — NumCPU and GOMAXPROCS
// are recorded precisely because a single-core runner cannot show the
// multi-core scaling the sharded loop exists for.
type clusterBenchBaseline struct {
	GeneratedBy string            `json:"generated_by"`
	GoVersion   string            `json:"go_version"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	NumCPU      int               `json:"num_cpu"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Model       string            `json:"model"`
	Instances   int               `json:"instances"`
	Requests    int               `json:"requests"`
	Arrival     string            `json:"arrival"`
	Served      int               `json:"served"`
	FollowUps   int               `json:"follow_ups"`
	SimulatedMS float64           `json:"simulated_wall_ms"`
	Runs        []clusterBenchRun `json:"runs"`
}

// clusterBenchFleet builds one fresh fleet for a bench run: Tiny-model
// FineMoE instances on the paper's testbed GPU, least-loaded routing.
func clusterBenchFleet(m *moe.Model, instances, workers int) *cluster.Cluster {
	cfg := m.Cfg
	engines := make([]*serve.Engine, instances)
	for i := range engines {
		pol := core.NewFineMoE(core.NewStore(cfg, 50, cfg.OptimalPrefetchDistance), core.Options{})
		engines[i] = serve.New(serve.Options{
			Model: m, GPU: memsim.RTX3090(), NumGPUs: 1, Policy: pol,
		})
	}
	return cluster.New(cluster.Options{
		Engines: engines,
		Router:  cluster.NewLeastLoaded(),
		Workers: workers,
	})
}

// runClusterBench drives the sharded cluster loop benchmark: one bursty
// MMPP trace of n requests over a fixed fleet, run through the serial
// loop and then the sharded loop at several worker counts. Every sharded
// run's full ClusterResult must be byte-identical to the serial loop's —
// a parity failure aborts the benchmark — and the honest wall-clock
// ratios land in the JSON baseline at path.
func runClusterBench(path string, n, instances int) error {
	if n <= 0 || instances <= 0 {
		return fmt.Errorf("need positive request count and fleet size (got %d, %d)", n, instances)
	}
	m := moe.NewModel(moe.Tiny(), 42)
	arrivals := workload.BurstyMMPP(8 * float64(instances))
	trace := workload.OnlineTrace(workload.Dataset{
		Name: "clusterbench", Topics: 8, TopicSpread: 0.05,
		MeanInput: 5, MeanOutput: 4, LenSigma: 0.3, Seed: 11,
	}, m.Cfg.SemDim, workload.OnlineOptions{
		Arrivals: arrivals, N: n, Seed: 42,
	})

	out := &clusterBenchBaseline{
		GeneratedBy: "finemoe-bench -clusterbench",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Model:       m.Cfg.Name,
		Instances:   instances,
		Requests:    n,
		Arrival:     arrivals.Name(),
	}

	measure := func(workers int) ([]byte, float64, *cluster.Result, error) {
		c := clusterBenchFleet(m, instances, workers)
		watch := walltime.Start()
		res := c.RunTrace(trace)
		wall := float64(watch.Elapsed().Microseconds()) / 1000
		b, err := json.Marshal(res)
		return b, wall, res, err
	}

	serialBytes, serialWall, serialRes, err := measure(0)
	if err != nil {
		return err
	}
	out.Served = serialRes.Served
	out.FollowUps = serialRes.FollowUps
	out.SimulatedMS = serialRes.WallClockMS
	out.Runs = append(out.Runs, clusterBenchRun{Workers: 0, WallMS: serialWall, SpeedupVsSerial: 1, ByteParity: true})

	counts := []int{1, 2, 4}
	if nc := runtime.NumCPU(); nc != 1 && nc != 2 && nc != 4 {
		counts = append(counts, nc)
	}
	for _, w := range counts {
		b, wall, _, err := measure(w)
		if err != nil {
			return err
		}
		parity := bytes.Equal(b, serialBytes)
		out.Runs = append(out.Runs, clusterBenchRun{
			Workers:         w,
			WallMS:          wall,
			SpeedupVsSerial: serialWall / wall,
			ByteParity:      parity,
		})
		if !parity {
			return fmt.Errorf("workers=%d: sharded loop diverged from the serial loop (%d vs %d result bytes)",
				w, len(b), len(serialBytes))
		}
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
