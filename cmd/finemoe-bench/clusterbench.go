package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"finemoe/internal/cluster"
	"finemoe/internal/core"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/serve"
	"finemoe/internal/walltime"
	"finemoe/internal/workload"
)

// clusterBenchRun is one loop configuration's measurement in the
// committed BENCH_cluster.json baseline. Workers 0 is the serial
// shared-clock loop every other run is compared against. Mode "trace"
// consumes a fully materialized request slice; mode "stream" consumes
// the same workload through a generator-backed workload.Source —
// byte-identical results, streaming memory footprint.
type clusterBenchRun struct {
	Workers         int     `json:"workers"`
	Mode            string  `json:"mode"`
	WallMS          float64 `json:"wall_ms"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	ByteParity      bool    `json:"byte_parity_vs_serial"`
	// PeakHeapBytes is the largest HeapAlloc a background sampler saw
	// during the run; GCCycles and AllocsPerRequest are the run's GC
	// count and heap-object allocation deltas (steady-state allocation
	// discipline shows up here, not in wall time alone).
	PeakHeapBytes    uint64  `json:"peak_heap_bytes"`
	GCCycles         uint32  `json:"gc_cycles"`
	AllocsPerRequest float64 `json:"allocs_per_request"`
}

// clusterBenchHorizon records the long-horizon streaming run: a request
// count far past what a materialized trace comfortably holds, driven
// end-to-end through the generator path on the serial loop.
type clusterBenchHorizon struct {
	Requests         int     `json:"requests"`
	Served           int     `json:"served"`
	WallMS           float64 `json:"wall_ms"`
	SimulatedMS      float64 `json:"simulated_wall_ms"`
	PeakHeapBytes    uint64  `json:"peak_heap_bytes"`
	GCCycles         uint32  `json:"gc_cycles"`
	AllocsPerRequest float64 `json:"allocs_per_request"`
}

// clusterBenchBaseline is the artifact's top-level schema. Speedups are
// honest measurements on the generating machine — NumCPU and GOMAXPROCS
// are recorded precisely because a single-core runner cannot show the
// multi-core scaling the sharded loop exists for.
type clusterBenchBaseline struct {
	GeneratedBy   string               `json:"generated_by"`
	GoVersion     string               `json:"go_version"`
	GOOS          string               `json:"goos"`
	GOARCH        string               `json:"goarch"`
	NumCPU        int                  `json:"num_cpu"`
	GOMAXPROCS    int                  `json:"gomaxprocs"`
	Model         string               `json:"model"`
	Instances     int                  `json:"instances"`
	Requests      int                  `json:"requests"`
	Arrival       string               `json:"arrival"`
	Served        int                  `json:"served"`
	FollowUps     int                  `json:"follow_ups"`
	SimulatedMS   float64              `json:"simulated_wall_ms"`
	Runs          []clusterBenchRun    `json:"runs"`
	StreamHorizon *clusterBenchHorizon `json:"stream_horizon,omitempty"`
}

// clusterBenchFleet builds one fresh fleet for a bench run: Tiny-model
// FineMoE instances on the paper's testbed GPU, least-loaded routing.
func clusterBenchFleet(m *moe.Model, instances, workers int) *cluster.Cluster {
	cfg := m.Cfg
	engines := make([]*serve.Engine, instances)
	for i := range engines {
		pol := core.NewFineMoE(core.NewStore(cfg, 50, cfg.OptimalPrefetchDistance), core.Options{})
		engines[i] = serve.New(serve.Options{
			Model: m, GPU: memsim.RTX3090(), NumGPUs: 1, Policy: pol,
		})
	}
	return cluster.New(cluster.Options{
		Engines: engines,
		Router:  cluster.NewLeastLoaded(),
		Workers: workers,
	})
}

// clusterBenchDataset is the fixed bench workload shape.
func clusterBenchDataset() workload.Dataset {
	return workload.Dataset{
		Name: "clusterbench", Topics: 8, TopicSpread: 0.05,
		MeanInput: 5, MeanOutput: 4, LenSigma: 0.3, Seed: 11,
	}
}

// memProbe captures the allocation counters a bench run is charged for.
type memProbe struct {
	watch   *walltime.HeapWatch
	mallocs uint64
	numGC   uint32
}

func startMemProbe() *memProbe {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &memProbe{
		watch:   walltime.WatchHeap(50 * time.Millisecond),
		mallocs: ms.Mallocs,
		numGC:   ms.NumGC,
	}
}

// stop charges the run's deltas into dst, amortized over n requests.
func (p *memProbe) stop(dst *clusterBenchRun, n int) {
	peak := p.watch.Stop()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	dst.PeakHeapBytes = peak
	dst.GCCycles = ms.NumGC - p.numGC
	dst.AllocsPerRequest = float64(ms.Mallocs-p.mallocs) / float64(n)
}

// runClusterBench drives the cluster loop benchmark: one bursty MMPP
// workload of n requests over a fixed fleet, run through the serial
// loop, the sharded loop at several worker counts, and the streaming
// (generator-source) path. Every run's full ClusterResult must be
// byte-identical to the serial materialized loop's — a parity failure
// aborts the benchmark — and the honest wall-clock ratios plus memory
// columns land in the JSON baseline at path. A positive horizon adds a
// streaming-only long-horizon run of that many requests (never
// materialized: at 10M requests the trace alone would hold ~10⁷ request
// records plus embeddings, which is the case the streaming path exists
// for).
func runClusterBench(path string, n, instances, horizon int) error {
	if n <= 0 || instances <= 0 {
		return fmt.Errorf("need positive request count and fleet size (got %d, %d)", n, instances)
	}
	m := moe.NewModel(moe.Tiny(), 42)
	arrivals := workload.BurstyMMPP(8 * float64(instances))
	d := clusterBenchDataset()
	opt := workload.OnlineOptions{Arrivals: arrivals, N: n, Seed: 42}
	trace := workload.OnlineTrace(d, m.Cfg.SemDim, opt)

	out := &clusterBenchBaseline{
		GeneratedBy: "finemoe-bench -clusterbench",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Model:       m.Cfg.Name,
		Instances:   instances,
		Requests:    n,
		Arrival:     arrivals.Name(),
	}

	measure := func(workers int, src workload.Source) ([]byte, clusterBenchRun, *cluster.Result, error) {
		c := clusterBenchFleet(m, instances, workers)
		run := clusterBenchRun{Workers: workers, Mode: "trace"}
		probe := startMemProbe()
		watch := walltime.Start()
		var res *cluster.Result
		if src != nil {
			run.Mode = "stream"
			res = c.RunStream(src)
		} else {
			res = c.RunTrace(trace)
		}
		run.WallMS = float64(watch.Elapsed().Microseconds()) / 1000
		probe.stop(&run, n)
		b, err := json.Marshal(res)
		return b, run, res, err
	}

	serialBytes, serialRun, serialRes, err := measure(0, nil)
	if err != nil {
		return err
	}
	out.Served = serialRes.Served
	out.FollowUps = serialRes.FollowUps
	out.SimulatedMS = serialRes.WallClockMS
	serialRun.SpeedupVsSerial = 1
	serialRun.ByteParity = true
	out.Runs = append(out.Runs, serialRun)

	type benchCase struct {
		workers int
		stream  bool
	}
	cases := []benchCase{{1, false}, {2, false}, {4, false}}
	if nc := runtime.NumCPU(); nc != 1 && nc != 2 && nc != 4 {
		cases = append(cases, benchCase{nc, false})
	}
	// Streaming rows: the serial generator path (the memory-footprint
	// headline) and the widest sharded run over the same source.
	cases = append(cases, benchCase{0, true}, benchCase{4, true})
	for _, bc := range cases {
		var src workload.Source
		if bc.stream {
			src = workload.StreamOnline(d, m.Cfg.SemDim, opt)
		}
		b, run, _, err := measure(bc.workers, src)
		if err != nil {
			return err
		}
		run.SpeedupVsSerial = serialRun.WallMS / run.WallMS
		run.ByteParity = bytes.Equal(b, serialBytes)
		out.Runs = append(out.Runs, run)
		if !run.ByteParity {
			return fmt.Errorf("workers=%d mode=%s: run diverged from the serial loop (%d vs %d result bytes)",
				bc.workers, run.Mode, len(b), len(serialBytes))
		}
	}

	if horizon > 0 {
		h, err := runClusterBenchHorizon(m, d, arrivals, instances, horizon)
		if err != nil {
			return err
		}
		out.StreamHorizon = h
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// progressSource wraps a Source and reports generator progress to
// stderr every interval requests — a 10M-request horizon run is tens of
// minutes of otherwise silent wall time, and the per-segment rates make
// throughput drift (machine thermal state, backlog effects) visible.
type progressSource struct {
	src      workload.Source
	n        int
	interval int
	watch    walltime.Stopwatch
	lastMS   float64
}

func (p *progressSource) Next() (workload.Request, bool) {
	q, ok := p.src.Next()
	if ok {
		p.n++
		if p.interval > 0 && p.n%p.interval == 0 {
			now := float64(p.watch.Elapsed().Microseconds()) / 1000
			fmt.Fprintf(os.Stderr, "clusterbench: horizon %d requests drawn (segment %.1f us/req)\n",
				p.n, (now-p.lastMS)*1000/float64(p.interval))
			p.lastMS = now
		}
	}
	return q, ok
}

// runClusterBenchHorizon runs the streaming-only long-horizon case on
// the serial loop and reports throughput plus memory discipline.
func runClusterBenchHorizon(m *moe.Model, d workload.Dataset, arrivals workload.ArrivalProcess, instances, horizon int) (*clusterBenchHorizon, error) {
	c := clusterBenchFleet(m, instances, 0)
	var src workload.Source = workload.StreamOnline(d, m.Cfg.SemDim, workload.OnlineOptions{
		Arrivals: arrivals, N: horizon, Seed: 42,
	})
	if horizon >= 1_000_000 {
		src = &progressSource{src: src, interval: horizon / 10, watch: walltime.Start()}
	}
	var run clusterBenchRun
	probe := startMemProbe()
	watch := walltime.Start()
	res := c.RunStream(src)
	wall := float64(watch.Elapsed().Microseconds()) / 1000
	probe.stop(&run, horizon)
	if res.Served != horizon {
		return nil, fmt.Errorf("stream horizon served %d of %d requests", res.Served, horizon)
	}
	return &clusterBenchHorizon{
		Requests:         horizon,
		Served:           res.Served,
		WallMS:           wall,
		SimulatedMS:      res.WallClockMS,
		PeakHeapBytes:    run.PeakHeapBytes,
		GCCycles:         run.GCCycles,
		AllocsPerRequest: run.AllocsPerRequest,
	}, nil
}
