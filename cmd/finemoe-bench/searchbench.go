package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"finemoe/internal/core"
	"finemoe/internal/moe"
	"finemoe/internal/rng"
)

// searchBenchResult is one micro-benchmark's measurement in the committed
// BENCH_search.json baseline.
type searchBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// searchBenchBaseline is the artifact's top-level schema. SpeedupVsBrute
// maps store size to exact-mode indexed speedup over the seed's
// brute-force scan — the acceptance headline (≥5× at 10K maps).
type searchBenchBaseline struct {
	GeneratedBy    string              `json:"generated_by"`
	GoVersion      string              `json:"go_version"`
	GOOS           string              `json:"goos"`
	GOARCH         string              `json:"goarch"`
	Model          string              `json:"model"`
	SemDim         int                 `json:"sem_dim"`
	StoreSizes     []int               `json:"store_sizes"`
	Benchmarks     []searchBenchResult `json:"benchmarks"`
	SpeedupVsBrute map[string]float64  `json:"speedup_exact_vs_brute"`
}

func record(out *searchBenchBaseline, name string, r testing.BenchmarkResult) float64 {
	out.Benchmarks = append(out.Benchmarks, searchBenchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	})
	return float64(r.NsPerOp())
}

// runSearchBench measures the expert-map search hot path — indexed exact,
// approximate (nprobe=4), the seed's brute force, cursor construction and
// observation, and steady-state Store.Add — and writes the JSON baseline
// future perf PRs diff against.
func runSearchBench(path string) error {
	cfg := moe.Mixtral8x7B()
	out := &searchBenchBaseline{
		GeneratedBy:    "finemoe-bench -searchbench",
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Model:          cfg.Name,
		SemDim:         cfg.SemDim,
		StoreSizes:     []int{1000, 10000},
		SpeedupVsBrute: map[string]float64{},
	}
	for _, n := range out.StoreSizes {
		s, sem := core.SearchBenchStore(cfg, n)
		searcher := core.NewSearcher(s, 0)
		approx := core.NewSearcher(s, 0)
		approx.SetNProbe(4)
		q := searcher.Prepare(sem)
		exactNs := record(out, fmt.Sprintf("SemanticSearch/exact/store=%d", n),
			testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					searcher.SemanticSearchQ(q)
				}
			}))
		record(out, fmt.Sprintf("SemanticSearch/nprobe=4/store=%d", n),
			testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					approx.SemanticSearchQ(q)
				}
			}))
		bruteNs := record(out, fmt.Sprintf("SemanticSearch/brute/store=%d", n),
			testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					searcher.BruteForceSemanticSearch(sem)
				}
			}))
		q.Release()
		if exactNs > 0 {
			out.SpeedupVsBrute[fmt.Sprintf("%d", n)] = bruteNs / exactNs
		}
	}

	// Cursor and store-churn micro-benchmarks on the paper's 1K store.
	s, sem := core.SearchBenchStore(cfg, 1000)
	pre := core.NewSearcher(s, 128)
	record(out, "NewCursor/prefilter=128/store=1000",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			q := pre.Prepare(sem)
			defer q.Release()
			for i := 0; i < b.N; i++ {
				pre.NewCursorQ(q).Release()
			}
		}))
	record(out, "CursorObserve/prefilter=128",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			probs := make([]float64, cfg.RoutedExperts)
			r := rng.New(5)
			for j := range probs {
				probs[j] = r.Float64()
			}
			cur := pre.NewCursor(sem)
			used := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if used == cfg.Layers {
					b.StopTimer()
					cur.Release()
					cur = pre.NewCursor(sem)
					used = 0
					b.StartTimer()
				}
				cur.Observe(probs)
				used++
			}
		}))
	record(out, "StoreAdd/steady-state/capacity=1000",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			maps := make([]*core.ExpertMap, 2000)
			for i := range maps {
				maps[i] = core.RandomExpertMap(cfg, uint64(i), 31)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Add(maps[i%len(maps)])
			}
		}))

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
