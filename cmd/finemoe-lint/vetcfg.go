package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"go/types"

	"finemoe/internal/analysis"
	"finemoe/internal/analysis/checker"
)

// vetConfig mirrors the JSON config cmd/go hands a -vettool per package
// (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes the single package described by a vet cfg file and
// returns the process exit code. Cross-package facts ride cmd/go's own
// dependency machinery: each dependency's .vetx file (PackageVetx) is
// decoded into the fact store before analysis, and the merged store —
// inherited facts plus this package's exports — is written to VetxOutput
// so indirect importers see the whole transitive fact set. VetxOnly
// packages (dependencies vet loads only for their facts) are analyzed
// with diagnostics suppressed: the facts must still be computed.
func vetUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finemoe-lint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "finemoe-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			analysis.RegisterFactType(f)
		}
	}
	store := analysis.NewFactStore()
	for path, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "finemoe-lint: reading facts for %s: %v\n", path, err)
			return 2
		}
		if err := store.Decode(data); err != nil {
			fmt.Fprintf(os.Stderr, "finemoe-lint: facts for %s: %v\n", path, err)
			return 2
		}
	}

	// The standalone driver analyzes non-test files only; keep the vet
	// path consistent so `go vet -vettool` and `go run ./cmd/finemoe-lint`
	// agree on what clean means.
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return writeVetx(&cfg, store)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "finemoe-lint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(&cfg, store)
		}
		fmt.Fprintf(os.Stderr, "finemoe-lint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	diags, err := checker.AnalyzeWith(pkg, analyzers, store, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finemoe-lint: %v\n", err)
		return 2
	}
	if code := writeVetx(&cfg, store); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printVersion answers the go vet -V=full handshake. The format is the
// one cmd/go's toolID parser accepts for "devel" tools: the last field
// must be buildID=<content-id>, and hashing the executable makes the id
// track the tool's actual build.
func printVersion() {
	name := "finemoe-lint"
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err2 := os.ReadFile(exe); err2 == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x/%x", sum[:12], sum[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

// writeVetx serializes the merged fact store (inherited + newly
// exported) to the path cmd/go asked for, returning a process exit code.
func writeVetx(cfg *vetConfig, store *analysis.FactStore) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	data, err := store.Encode()
	if err != nil {
		fmt.Fprintf(os.Stderr, "finemoe-lint: encoding facts for %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "finemoe-lint: %v\n", err)
		return 2
	}
	return 0
}
