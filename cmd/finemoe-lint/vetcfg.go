package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"go/types"

	"finemoe/internal/analysis"
	"finemoe/internal/analysis/checker"
)

// vetConfig mirrors the JSON config cmd/go hands a -vettool per package
// (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes the single package described by a vet cfg file and
// returns the process exit code. The finemoe analyzers carry no
// cross-package facts, so the facts (.vetx) output is just a placeholder
// for cmd/go's cache.
func vetUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finemoe-lint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "finemoe-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	writeVetx(&cfg)
	if cfg.VetxOnly {
		return 0
	}

	// The standalone driver analyzes non-test files only; keep the vet
	// path consistent so `go vet -vettool` and `go run ./cmd/finemoe-lint`
	// agree on what clean means.
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "finemoe-lint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "finemoe-lint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	diags, err := checker.Analyze(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finemoe-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printVersion answers the go vet -V=full handshake. The format is the
// one cmd/go's toolID parser accepts for "devel" tools: the last field
// must be buildID=<content-id>, and hashing the executable makes the id
// track the tool's actual build.
func printVersion() {
	name := "finemoe-lint"
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err2 := os.ReadFile(exe); err2 == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x/%x", sum[:12], sum[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

func writeVetx(cfg *vetConfig) {
	if cfg.VetxOutput == "" {
		return
	}
	// No cross-package facts: an empty file satisfies cmd/go's cache.
	_ = os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
}
