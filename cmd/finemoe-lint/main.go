// finemoe-lint is the repo's determinism and hot-path contract checker: a
// multichecker driver over the analyzers in internal/analysis — the five
// intraprocedural checks (detrange, noclock, hotalloc, unitmix,
// mustrelease) and the four interprocedural, fact-carrying ones
// (callalloc, sharedstate, floatorder, puritycheck). It loads packages
// offline through the local build cache, so it runs anywhere `go build`
// does:
//
//	go run ./cmd/finemoe-lint ./...
//	go run ./cmd/finemoe-lint -only detrange,noclock ./internal/serve
//	go run ./cmd/finemoe-lint -stats ./...   # directive inventory + stale suppressions
//	go run ./cmd/finemoe-lint -json ./...    # machine-readable report
//
// Invoked as a vet tool (go vet -vettool=$(which finemoe-lint) ./...) it
// speaks the cmd/go unitchecker protocol instead: responds to -V=full,
// analyzes the single *.cfg package vet hands it, and propagates
// cross-package facts through the .vetx files vet threads between units.
//
// Exit status: 0 clean, 1 diagnostics found, 2 driver error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"finemoe/internal/analysis"
	"finemoe/internal/analysis/checker"
	"finemoe/internal/analysis/suite"
)

var all = suite.All

func main() {
	versionFlag := flag.Bool("V", false, "")
	jsonOut := flag.Bool("json", false, "emit the report as JSON (findings, and with -stats the directive inventory)")
	stats := flag.Bool("stats", false, "inventory every //finemoe: directive and flag stale suppressions (forces all analyzers)")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all; ignored with -stats)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: finemoe-lint [-only a,b] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	// go vet probes the tool twice before handing it cfg files: -V=full
	// for a cache-keying version line, -flags for a JSON description of
	// vet flags the tool accepts (none beyond the protocol itself).
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], "-V") {
		// cmd/go keys its vet cache on a buildID parsed from this line;
		// hashing our own executable gives it a content identity.
		printVersion()
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	flag.Parse()
	_ = versionFlag

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	// Staleness is judged against the full directive vocabulary: running a
	// subset would mark the other analyzers' suppressions stale.
	if *only != "" && !*stats {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "finemoe-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	// Vet-tool mode: a single argument ending in .cfg is the unitchecker
	// protocol (see vetcfg.go).
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0], analyzers))
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	rep, err := checker.RunPackages(".", args, analyzers, *stats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finemoe-lint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "finemoe-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range rep.Findings {
			fmt.Println(f)
		}
		if *stats {
			fmt.Printf("%-24s %6s %6s\n", "directive", "count", "stale")
			for _, c := range rep.Inventory {
				fmt.Printf("%-24s %6d %6d\n", c.Name, c.Count, c.Stale)
			}
		}
	}
	if n := len(rep.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "finemoe-lint: %d problem(s)\n", n)
		os.Exit(1)
	}
}
