// finemoe-lint is the repo's determinism and hot-path contract checker: a
// multichecker driver over the five analyzers in internal/analysis
// (detrange, noclock, hotalloc, unitmix, mustrelease). It loads packages
// offline through the local build cache, so it runs anywhere `go build`
// does:
//
//	go run ./cmd/finemoe-lint ./...
//	go run ./cmd/finemoe-lint -only detrange,noclock ./internal/serve
//
// Invoked as a vet tool (go vet -vettool=$(which finemoe-lint) ./...) it
// speaks the cmd/go unitchecker protocol instead: responds to -V=full and
// analyzes the single *.cfg package vet hands it.
//
// Exit status: 0 clean, 1 diagnostics found, 2 driver error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"finemoe/internal/analysis"
	"finemoe/internal/analysis/checker"
	"finemoe/internal/analysis/detrange"
	"finemoe/internal/analysis/hotalloc"
	"finemoe/internal/analysis/mustrelease"
	"finemoe/internal/analysis/noclock"
	"finemoe/internal/analysis/unitmix"
)

var all = []*analysis.Analyzer{
	detrange.Analyzer,
	noclock.Analyzer,
	hotalloc.Analyzer,
	unitmix.Analyzer,
	mustrelease.Analyzer,
}

func main() {
	versionFlag := flag.Bool("V", false, "")
	flag.Bool("json", false, "accepted for vet compatibility (ignored)")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: finemoe-lint [-only a,b] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	// go vet probes the tool twice before handing it cfg files: -V=full
	// for a cache-keying version line, -flags for a JSON description of
	// vet flags the tool accepts (none beyond the protocol itself).
	if len(os.Args) > 1 && strings.HasPrefix(os.Args[1], "-V") {
		// cmd/go keys its vet cache on a buildID parsed from this line;
		// hashing our own executable gives it a content identity.
		printVersion()
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	flag.Parse()
	_ = versionFlag

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "finemoe-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	// Vet-tool mode: a single argument ending in .cfg is the unitchecker
	// protocol (see vetcfg.go).
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0], analyzers))
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	n, err := checker.Run(os.Stdout, ".", args, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finemoe-lint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "finemoe-lint: %d problem(s)\n", n)
		os.Exit(1)
	}
}
