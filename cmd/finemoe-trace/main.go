// Command finemoe-trace generates and inspects serving workloads: offline
// prompt populations (synthetic LMSYS-Chat-1M / ShareGPT) and Azure-style
// online arrival traces.
//
// Usage:
//
//	finemoe-trace -dataset lmsys -n 256 -summary
//	finemoe-trace -dataset sharegpt -n 256 -online -rate 2.91 -csv
//	finemoe-trace -dataset lmsys -online -n 256 -out trace.json
//	finemoe-trace -in trace.json -summary
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"finemoe/internal/metrics"
	"finemoe/internal/workload"
)

func main() {
	var (
		dsArg   = flag.String("dataset", "lmsys", "dataset: lmsys|sharegpt")
		n       = flag.Int("n", 256, "number of requests")
		seed    = flag.Uint64("seed", 42, "sampling seed")
		dim     = flag.Int("dim", 64, "semantic embedding dimension")
		online  = flag.Bool("online", false, "attach Poisson arrival times")
		rate    = flag.Float64("rate", 2.91, "online arrival rate (req/s)")
		fixed   = flag.Bool("fixed", false, "pin lengths to dataset means")
		summary = flag.Bool("summary", false, "print population summary only")
		csv     = flag.Bool("csv", false, "emit per-request CSV")
		out     = flag.String("out", "", "write the trace as JSON to this file")
		in      = flag.String("in", "", "read a JSON trace instead of sampling")
	)
	flag.Parse()

	var ds workload.Dataset
	switch strings.ToLower(*dsArg) {
	case "lmsys":
		ds = workload.LMSYSChat1M()
	case "sharegpt":
		ds = workload.ShareGPT()
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dsArg)
		os.Exit(2)
	}

	var reqs []workload.Request
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		loadedDS, loaded, err := workload.ReadTrace(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ds, reqs = loadedDS, loaded
	} else if *online {
		reqs = workload.AzureTrace(ds, *dim, workload.TraceConfig{RatePerSec: *rate, N: *n, Seed: *seed})
	} else {
		reqs = ds.Sample(workload.Options{Dim: *dim, N: *n, Seed: *seed, FixedLengths: *fixed})
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := workload.WriteTrace(f, ds, *dim, reqs); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d requests to %s\n", len(reqs), *out)
	}

	if *summary || !*csv {
		s := workload.Summarize(reqs)
		t := metrics.NewTable("dataset", "requests", "topics", "mean_in", "mean_out", "rate_rps")
		t.Row(ds.Name, s.N, s.Topics, s.MeanInput, s.MeanOut, s.RateRPS)
		fmt.Print(t.String())
		if *summary {
			return
		}
		fmt.Println()
	}
	if *csv {
		t := metrics.NewTable("id", "topic", "input_tokens", "output_tokens", "arrival_ms")
		for _, q := range reqs {
			t.Row(q.ID, q.Topic, q.InputTokens, q.OutputTokens, q.ArrivalMS)
		}
		fmt.Print(t.CSV())
	}
}
