package core

import (
	"testing"

	"finemoe/internal/cache"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
)

// fakeRT records prefetch calls for policy unit tests.
type fakeRT struct {
	cfg       moe.Config
	prefetch  []moe.ExpertRef
	issueAt   []float64
	prio      []float64
	resident  map[moe.ExpertRef]bool
	syncCalls int
}

func newFakeRT(cfg moe.Config) *fakeRT {
	return &fakeRT{cfg: cfg, resident: map[moe.ExpertRef]bool{}}
}

func (f *fakeRT) Config() moe.Config { return f.cfg }
func (f *fakeRT) Prefetch(ref moe.ExpertRef, priority, issueTime float64) bool {
	f.prefetch = append(f.prefetch, ref)
	f.prio = append(f.prio, priority)
	f.issueAt = append(f.issueAt, issueTime)
	return true
}
func (f *fakeRT) SyncLoad(refs []moe.ExpertRef, now float64) float64 {
	f.syncCalls++
	return now
}
func (f *fakeRT) Resident(ref moe.ExpertRef) bool { return f.resident[ref] }
func (f *fakeRT) Tracked(moe.ExpertRef) bool      { return false }
func (f *fakeRT) Tier(ref moe.ExpertRef) int {
	if f.resident[ref] {
		return 0
	}
	return 1
}
func (f *fakeRT) Promote(ref moe.ExpertRef, priority, issueTime float64) bool {
	return f.Prefetch(ref, priority, issueTime)
}
func (f *fakeRT) Demote(moe.ExpertRef, float64) bool { return false }
func (f *fakeRT) MemoryPressure() float64            { return 0 }

func newTestFineMoE(t *testing.T, opts Options) (*FineMoE, *fakeRT, *moe.Model) {
	t.Helper()
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 21)
	s := buildTestStore(t, cfg, m, 16, 200)
	f := NewFineMoE(s, opts)
	rt := newFakeRT(cfg)
	f.Attach(rt)
	return f, rt, m
}

func iterViewOf(it *moe.Iteration, reqID uint64) policy.IterView {
	return policy.IterView{ReqID: reqID, Iter: it.Index, Semantic: it.Semantic, IsPrefill: it.Index == 0, Tokens: it.Tokens}
}

func TestFineMoEPrefetchesInitialLayers(t *testing.T) {
	f, rt, m := newTestFineMoE(t, Options{PrefetchDistance: 2})
	it := m.Trace(testPrompt(f.cfg, 900, 1, 4, 2))[0]
	delay := f.StartIteration([]policy.IterView{iterViewOf(it, 900)}, 10)
	if delay != 0 {
		t.Fatalf("FineMoE must be fully asynchronous; sync delay %v", delay)
	}
	if len(rt.prefetch) == 0 {
		t.Fatal("no semantic prefetches issued")
	}
	layers := map[int]bool{}
	for i, ref := range rt.prefetch {
		layers[ref.Layer] = true
		if rt.issueAt[i] <= 10 {
			t.Fatalf("prefetch issue time %v does not include search latency", rt.issueAt[i])
		}
	}
	// Semantic guidance must cover the initial window [0,d) and extend
	// early low-priority guidance across the iteration for overlap.
	if !layers[0] || !layers[1] {
		t.Fatalf("initial layers not covered: %v", layers)
	}
	// Near layers must carry higher priority than far layers.
	var nearP, farP float64
	for i, ref := range rt.prefetch {
		if ref.Layer == 0 && nearP == 0 {
			nearP = rt.prio[i]
		}
		if ref.Layer == f.cfg.Layers-1 && farP == 0 {
			farP = rt.prio[i]
		}
	}
	if farP >= nearP && farP != 0 {
		t.Fatalf("priority not decaying with distance: near %v far %v", nearP, farP)
	}
}

func TestFineMoETrajectoryPrefetchTargetsLPlusD(t *testing.T) {
	f, rt, m := newTestFineMoE(t, Options{PrefetchDistance: 2})
	iters := m.Trace(testPrompt(f.cfg, 901, 2, 4, 3))
	it := iters[1]
	f.StartIteration([]policy.IterView{iterViewOf(it, 901)}, 0)
	n0 := len(rt.prefetch)
	lv := []policy.LayerView{{ReqID: 901, Iter: 1, Probs: it.Probs[0], Hidden: it.Hidden[0]}}
	if d := f.OnGate(0, lv, 5); d != 0 {
		t.Fatalf("OnGate sync delay %v", d)
	}
	if len(rt.prefetch) == n0 {
		t.Fatal("no trajectory prefetch issued")
	}
	for _, ref := range rt.prefetch[n0:] {
		if ref.Layer != 2 {
			t.Fatalf("trajectory prefetch for layer %d, want l+d = 2", ref.Layer)
		}
	}
	// Last layers: no prefetch beyond L.
	n1 := len(rt.prefetch)
	lvLast := []policy.LayerView{{ReqID: 901, Iter: 1, Probs: it.Probs[2], Hidden: it.Hidden[2]}}
	f.OnGate(f.cfg.Layers-1, lvLast, 6)
	if len(rt.prefetch) != n1 {
		t.Fatal("prefetch issued beyond last layer")
	}
}

func TestFineMoEResidentExpertsNotPrefetched(t *testing.T) {
	f, rt, m := newTestFineMoE(t, Options{PrefetchDistance: 2})
	// Mark everything resident: no prefetches should be issued.
	for l := 0; l < f.cfg.Layers; l++ {
		for j := 0; j < f.cfg.RoutedExperts; j++ {
			rt.resident[moe.ExpertRef{Layer: l, Expert: j}] = true
		}
	}
	it := m.Trace(testPrompt(f.cfg, 902, 0, 4, 2))[0]
	f.StartIteration([]policy.IterView{iterViewOf(it, 902)}, 0)
	if len(rt.prefetch) != 0 {
		t.Fatalf("prefetched %d resident experts", len(rt.prefetch))
	}
}

func TestFineMoEStoreUpdate(t *testing.T) {
	f, _, m := newTestFineMoE(t, Options{})
	before := f.Store().Stats().Adds
	it := m.Trace(testPrompt(f.cfg, 903, 0, 4, 2))[1]
	f.EndIteration(903, it, 0)
	if f.Store().Stats().Adds != before+1 {
		t.Fatal("EndIteration did not publish the map")
	}
	// Disabled update must freeze the store.
	f2, _, m2 := newTestFineMoE(t, Options{DisableStoreUpdate: true})
	b2 := f2.Store().Stats().Adds
	f2.EndIteration(1, m2.Trace(testPrompt(f2.cfg, 904, 0, 4, 2))[1], 0)
	if f2.Store().Stats().Adds != b2 {
		t.Fatal("frozen store was updated")
	}
}

func TestFineMoEEmptyStoreColdStart(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 22)
	f := NewFineMoE(NewStore(cfg, 10, 2), Options{})
	rt := newFakeRT(cfg)
	f.Attach(rt)
	it := m.Trace(testPrompt(cfg, 905, 0, 4, 2))[0]
	// Must not panic nor prefetch on an empty store.
	f.StartIteration([]policy.IterView{iterViewOf(it, 905)}, 0)
	f.OnGate(0, []policy.LayerView{{ReqID: 905, Iter: 0, Probs: it.Probs[0], Hidden: it.Hidden[0]}}, 1)
	if len(rt.prefetch) != 0 {
		t.Fatal("cold store should not prefetch")
	}
	// After observing iterations, the store warms and search activates.
	f.EndIteration(905, it, 2)
	it2 := m.Trace(testPrompt(cfg, 906, 0, 4, 2))[0]
	f.StartIteration([]policy.IterView{iterViewOf(it2, 906)}, 3)
	if len(rt.prefetch) == 0 {
		t.Fatal("warmed store issued no prefetches")
	}
}

func TestFineMoEEvictionScorer(t *testing.T) {
	f, rt, m := newTestFineMoE(t, Options{PrefetchDistance: 2})
	it := m.Trace(testPrompt(f.cfg, 907, 1, 4, 2))[0]
	f.StartIteration([]policy.IterView{iterViewOf(it, 907)}, 0)
	if len(rt.prefetch) == 0 {
		t.Skip("no prefetches to compare against")
	}
	predicted := rt.prefetch[0]
	unseen := moe.ExpertRef{Layer: f.cfg.Layers - 1, Expert: f.cfg.RoutedExperts - 1}
	meta := cache.Meta{Freq: 1}
	if f.Score(unseen, meta, 0) <= f.Score(predicted, meta, 0) {
		t.Fatal("unpredicted expert must have higher eviction priority")
	}
}

func TestFineMoEAblationFlags(t *testing.T) {
	// Semantic disabled: StartIteration issues nothing.
	f, rt, m := newTestFineMoE(t, Options{DisableSemantic: true, PrefetchDistance: 2})
	it := m.Trace(testPrompt(f.cfg, 908, 1, 4, 2))[0]
	f.StartIteration([]policy.IterView{iterViewOf(it, 908)}, 0)
	if len(rt.prefetch) != 0 {
		t.Fatal("Map(T) ablation still prefetched semantically")
	}
	// Static threshold: per-layer selection size is exactly TopK.
	// (Use a decode iteration — prefill intentionally widens selection
	// to cover the token union.)
	f2, rt2, m2 := newTestFineMoE(t, Options{DisableDynamicThreshold: true, PrefetchDistance: 1})
	it2 := m2.Trace(testPrompt(f2.cfg, 909, 1, 4, 2))[1]
	f2.StartIteration([]policy.IterView{iterViewOf(it2, 909)}, 0)
	perLayer := map[int]int{}
	for _, ref := range rt2.prefetch {
		perLayer[ref.Layer]++
	}
	for l, n := range perLayer {
		if n > f2.cfg.TopK {
			t.Fatalf("static ablation selected %d experts at layer %d", n, l)
		}
	}
}

func TestFineMoEBreakdownAndOverhead(t *testing.T) {
	f, _, m := newTestFineMoE(t, Options{})
	it := m.Trace(testPrompt(f.cfg, 910, 0, 4, 2))[0]
	f.StartIteration([]policy.IterView{iterViewOf(it, 910)}, 0)
	f.EndIteration(910, it, 1)
	bd := f.Breakdown()
	for _, k := range []string{policy.CompCollect, policy.CompMapMatch, policy.CompUpdate} {
		if bd[k] <= 0 {
			t.Fatalf("breakdown component %q missing: %v", k, bd)
		}
	}
	if f.MemoryOverheadBytes() != f.Store().MemoryBytes() {
		t.Fatal("memory overhead mismatch")
	}
	f.EndRequest(910, 2)
}

func TestFineMoEDefaults(t *testing.T) {
	cfg := moe.Tiny()
	s := NewStore(cfg, 10, 3)
	f := NewFineMoE(s, Options{})
	if f.PrefetchDistance() != cfg.OptimalPrefetchDistance {
		t.Fatalf("default d = %d, want model optimum %d", f.PrefetchDistance(), cfg.OptimalPrefetchDistance)
	}
	if f.Name() != "FineMoE" {
		t.Fatal("name wrong")
	}
	if f.Scorer() != cache.Scorer(f) {
		t.Fatal("FineMoE must be its own eviction scorer")
	}
}
