// Package core implements the paper's primary contribution: the expert map
// data structure (§4.1), the Expert Map Store with redundancy-scored
// deduplication (§4.4), the semantic/trajectory Expert Map Searcher (§4.2),
// similarity-aware expert selection with the dynamic threshold δ (§4.3),
// the prefetch/eviction priorities (§4.5), and the FineMoE serving policy
// that ties them together.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"finemoe/internal/moe"
	"finemoe/internal/rng"
	"finemoe/internal/tensor"
)

// ExpertMap records one inference iteration in fine granularity: the gate
// network's probability distribution over experts at every layer, plus the
// iteration's semantic embedding (§4.1). Maps are immutable once stored;
// probabilities are kept in float32, matching the paper's PyTorch/NumPy
// ndarray storage and its Fig. 18 memory accounting.
type ExpertMap struct {
	// ReqID and Iter identify the iteration that produced the map.
	ReqID uint64
	Iter  int
	// Sem is the iteration's semantic embedding (SemDim floats).
	Sem []float32
	// Traj is the L×J row-major matrix of per-layer gate distributions.
	Traj []float32
	// prefixNorm2[l] caches ||Traj[0 : (l+1)·J]||² so trajectory-prefix
	// cosine search is O(J) per layer instead of O(l·J).
	prefixNorm2 []float64
	// semNorm2 caches ||Sem||², accumulated in CosineF32's element order,
	// so redundancy scoring pays one fused dot per cosine instead of
	// three accumulations (see tensor.DotF32's bit-identity contract).
	semNorm2 float64
}

// NewExpertMap builds a map from an observed iteration.
func NewExpertMap(cfg moe.Config, reqID uint64, it *moe.Iteration) *ExpertMap {
	if len(it.Probs) != cfg.Layers {
		panic(fmt.Sprintf("core: iteration has %d layers, model %d", len(it.Probs), cfg.Layers))
	}
	m := &ExpertMap{
		ReqID: reqID,
		Iter:  it.Index,
		Sem:   tensor.Float32s(it.Semantic),
		Traj:  make([]float32, cfg.Layers*cfg.RoutedExperts),
	}
	for l, p := range it.Probs {
		if len(p) != cfg.RoutedExperts {
			panic(fmt.Sprintf("core: layer %d has %d experts, model %d", l, len(p), cfg.RoutedExperts))
		}
		for j, v := range p {
			m.Traj[l*cfg.RoutedExperts+j] = float32(v)
		}
	}
	m.buildPrefixNorms(cfg.RoutedExperts)
	m.semNorm2 = tensor.Norm2F32(m.Sem)
	return m
}

// RandomExpertMap synthesizes a structurally valid expert map from a seed:
// a random unit semantic embedding and per-layer random gate distributions.
// It skips the gate-network simulation entirely, so large stores (the 10K
// population of the search benchmarks, the parity property tests' seeded
// random stores) can be built in microseconds per map.
func RandomExpertMap(cfg moe.Config, reqID uint64, seed uint64) *ExpertMap {
	r := rng.New(rng.Mix(0x5e4c, seed, reqID))
	sem := make([]float64, cfg.SemDim)
	r.UnitVec(sem)
	m := &ExpertMap{
		ReqID: reqID,
		Sem:   tensor.Float32s(sem),
		Traj:  make([]float32, cfg.Layers*cfg.RoutedExperts),
	}
	probs := make([]float64, cfg.RoutedExperts)
	for l := 0; l < cfg.Layers; l++ {
		for j := range probs {
			probs[j] = r.Float64()
		}
		tensor.Normalize1(probs)
		for j, v := range probs {
			m.Traj[l*cfg.RoutedExperts+j] = float32(v)
		}
	}
	m.buildPrefixNorms(cfg.RoutedExperts)
	m.semNorm2 = tensor.Norm2F32(m.Sem)
	return m
}

func (m *ExpertMap) buildPrefixNorms(j int) {
	layers := len(m.Traj) / j
	m.prefixNorm2 = make([]float64, layers)
	var acc float64
	for l := 0; l < layers; l++ {
		for _, v := range m.Traj[l*j : (l+1)*j] {
			acc += float64(v) * float64(v)
		}
		m.prefixNorm2[l] = acc
	}
}

// LayerProbs returns layer l's stored distribution as float64.
func (m *ExpertMap) LayerProbs(l, j int) []float64 {
	return tensor.Float64s(m.Traj[l*j : (l+1)*j])
}

// LayerProbsInto widens layer l's stored distribution into dst (length j)
// without allocating — the hot-path form of LayerProbs.
//
//finemoe:hotpath
func (m *ExpertMap) LayerProbsInto(l, j int, dst []float64) {
	tensor.Float64sInto(m.Traj[l*j:(l+1)*j], dst)
}

// Bytes returns the paper-accounted storage size of this map: trajectory
// plus embedding at 4 bytes per value (Fig. 18).
func (m *ExpertMap) Bytes() int64 { return int64(len(m.Traj)+len(m.Sem)) * 4 }

// Store is the Expert Map Store (§3.2): a capacity-bounded collection of
// expert maps acting as the message broker between the inference process
// (publisher of new iteration contexts) and the Expert Map Searcher
// (subscriber). When full, redundancy-scored deduplication replaces the
// stored map most similar to the incoming one, preserving diversity (§4.4).
//
// Store is safe for concurrent use; returned snapshots are immutable.
type Store struct {
	mu       sync.RWMutex
	cfg      moe.Config
	capacity int
	// d is the prefetch distance used to weight semantic vs trajectory
	// redundancy: RDY = d/L·sem + (L−d)/L·traj (§4.4). semW caches
	// d/L — Redundancy runs once per stored map per insertion, so the
	// division is hoisted out of the dedup scan.
	semW float64
	d    int
	maps []*ExpertMap

	// index clusters the population's semantic embeddings so searches are
	// sublinear (see index.go); maintained incrementally on every
	// insertion and replacement.
	index *semIndex

	// gen counts population mutations; snap caches the population slice
	// handed out by Snapshot so repeated snapshots of an unchanged store
	// are zero-copy (one copy per generation, not per call).
	gen     uint64
	snap    []*ExpertMap
	snapGen uint64

	// dedupSample bounds how many stored maps each insertion is compared
	// against once the store is full (sampled uniformly); 0 compares
	// against everything, reproducing §4.4 exactly at higher cost.
	dedupSample int
	sampleRNG   *rng.RNG
	// dedupOff replaces redundancy-scored dedup with FIFO replacement
	// (ablation).
	dedupOff bool
	fifoNext int

	adds, replaced int
}

// NewStore builds a store with the paper's default capacity of 1K maps
// (§6.7) when capacity <= 0.
func NewStore(cfg moe.Config, capacity, prefetchDistance int) *Store {
	if capacity <= 0 {
		capacity = 1000
	}
	if prefetchDistance <= 0 {
		prefetchDistance = 1
	}
	return &Store{
		cfg:         cfg,
		capacity:    capacity,
		d:           prefetchDistance,
		semW:        float64(prefetchDistance) / float64(cfg.Layers),
		index:       newSemIndex(cfg.SemDim, capacity),
		dedupSample: 96,
		sampleRNG:   rng.New(rng.Mix(0x57, uint64(capacity))),
	}
}

// SetDedupSample overrides the dedup comparison sample size (0 = full
// pairwise comparison, the paper's exact formulation).
func (s *Store) SetDedupSample(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dedupSample = n
}

// Capacity returns the configured map capacity.
func (s *Store) Capacity() int { return s.capacity }

// Len returns the number of stored maps.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.maps)
}

// MemoryBytes returns the CPU-memory footprint of the stored maps — the
// quantity of the paper's Fig. 18.
func (s *Store) MemoryBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.maps) == 0 {
		return 0
	}
	return int64(len(s.maps)) * s.maps[0].Bytes()
}

// Add inserts a map, deduplicating against the incumbent population when at
// capacity: the stored map with the highest redundancy score against the
// newcomer is replaced (§4.4).
func (s *Store) Add(m *ExpertMap) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adds++
	s.gen++
	if len(s.maps) < s.capacity {
		s.maps = append(s.maps, m)
		s.index.insert(len(s.maps)-1, m.Sem)
		return
	}
	var idx int
	if s.dedupOff {
		idx = s.fifoNext % len(s.maps)
		s.fifoNext++
	} else {
		idx = s.mostRedundantLocked(m)
	}
	s.index.remove(idx)
	s.maps[idx] = m
	s.index.insert(idx, m.Sem)
	s.replaced++
}

// AddIteration records an observed iteration (the paper's Step 5).
func (s *Store) AddIteration(reqID uint64, it *moe.Iteration) {
	s.Add(NewExpertMap(s.cfg, reqID, it))
}

// Redundancy returns RDY(a,b) = d/L·cos(sem) + (L−d)/L·cos(traj) (§4.4).
// Both cosines run as one fused dot against norms cached at map
// construction (semNorm2, the full-trajectory prefixNorm2 entry), which
// tensor.DotF32/CosineWithNorms document as bit-identical to CosineF32 —
// the dot and each norm are independent accumulator chains over the same
// element order.
//
//finemoe:hotpath
func (s *Store) Redundancy(a, b *ExpertMap) float64 {
	w := s.semW
	sem := tensor.CosineWithNorms(tensor.DotF32(a.Sem, b.Sem), a.semNorm2, b.semNorm2)
	traj := tensor.CosineWithNorms(tensor.DotF32(a.Traj, b.Traj),
		a.prefixNorm2[len(a.prefixNorm2)-1], b.prefixNorm2[len(b.prefixNorm2)-1])
	return w*sem + (1-w)*traj
}

// trajCosBound is a sound upper bound on any CosineWithNorms result: the
// true cosine is ≤ 1 and the fused dot/norm evaluation perturbs it by at
// most a few ULPs, orders of magnitude under this slack. redundancyAbove
// uses it to skip trajectory dots that provably cannot affect the
// dedup argmax.
const trajCosBound = 1 + 1e-9

// redundancyAbove returns Redundancy(a, b) when it can exceed bestScore,
// and (anything ≤ bestScore, false) when it provably cannot. The dedup
// scan replaces on strict r > bestScore, so skipping entries whose upper
// bound w·sem + (1−w)·trajCosBound is ≤ bestScore selects exactly the
// index the full scan would: FP multiplication by the nonnegative (1−w)
// and the final addition are both monotone, so the bound dominates the
// true score, and a NaN bound falls through to the full evaluation,
// which loses the strict comparison just as it does unpruned.
//
//finemoe:hotpath
func (s *Store) redundancyAbove(a, b *ExpertMap, bestScore float64) (float64, bool) {
	w := s.semW
	sem := tensor.CosineWithNorms(tensor.DotF32(a.Sem, b.Sem), a.semNorm2, b.semNorm2)
	if w <= 1 && w*sem+(1-w)*trajCosBound <= bestScore {
		return bestScore, false
	}
	traj := tensor.CosineWithNorms(tensor.DotF32(a.Traj, b.Traj),
		a.prefixNorm2[len(a.prefixNorm2)-1], b.prefixNorm2[len(b.prefixNorm2)-1])
	return w*sem + (1-w)*traj, true
}

func (s *Store) mostRedundantLocked(m *ExpertMap) int {
	n := len(s.maps)
	bestIdx, bestScore := 0, math.Inf(-1)
	if s.dedupSample > 0 && s.dedupSample < n {
		for k := 0; k < s.dedupSample; k++ {
			i := s.sampleRNG.Intn(n)
			if r, ok := s.redundancyAbove(m, s.maps[i], bestScore); ok && r > bestScore {
				bestIdx, bestScore = i, r
			}
		}
		return bestIdx
	}
	for i, old := range s.maps {
		if r, ok := s.redundancyAbove(m, old, bestScore); ok && r > bestScore {
			bestIdx, bestScore = i, r
		}
	}
	return bestIdx
}

// Clone returns an independent store with the same configuration and the
// current map population. Maps are immutable and shared; subsequent Adds to
// either store do not affect the other. The experiment harness clones one
// prototype store per (model, dataset) so each serving run mutates its own
// copy.
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := NewStore(s.cfg, s.capacity, s.d)
	c.dedupSample = s.dedupSample
	c.dedupOff = s.dedupOff
	c.maps = make([]*ExpertMap, len(s.maps))
	copy(c.maps, s.maps)
	// Rebuild the clone's index from the copied population in slot order —
	// deterministic, and independent of the original's insertion history.
	for i, m := range c.maps {
		c.index.insert(i, m.Sem)
	}
	return c
}

// SetDedupDisabled switches the at-capacity replacement rule from
// redundancy-scored dedup (§4.4) to plain FIFO ring replacement — the
// store-management ablation.
func (s *Store) SetDedupDisabled(off bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dedupOff = off
}

// Snapshot returns the current map population. The slice is immutable —
// callers must not modify it — and generation-counted: repeated snapshots
// of an unchanged store return the same cached slice with zero copying,
// and a mutation only invalidates the cache (the next Snapshot pays one
// copy). The maps are shared immutable records, so concurrent searches
// over a snapshot are race-free while inserts continue.
func (s *Store) Snapshot() []*ExpertMap {
	s.mu.RLock()
	if s.snap != nil && s.snapGen == s.gen {
		out := s.snap
		s.mu.RUnlock()
		return out
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap == nil || s.snapGen != s.gen {
		s.snap = append(make([]*ExpertMap, 0, len(s.maps)), s.maps...)
		s.snapGen = s.gen
	}
	return s.snap
}

// Generation returns the store's mutation counter: two equal generations
// bracket an unchanged population (the zero-copy snapshot contract).
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// semSearch runs one indexed semantic search under the store lock and
// resolves the winning slot to its map. nprobe <= 0 probes every bucket
// (exact mode, byte-identical to the brute-force scan).
func (s *Store) semSearch(q *Query, nprobe int) (SearchResult, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.maps) == 0 {
		return SearchResult{}, false
	}
	slot, score := s.index.search(q, nprobe, len(s.maps))
	if slot < 0 {
		return SearchResult{}, false
	}
	return SearchResult{Map: s.maps[slot], Score: score}, true
}

// semTopN appends the semantic top-n maps under (score desc, slot asc) —
// the trajectory prefilter's comparator — to dst and returns it. scratch
// is the caller's pooled slotScore buffer (returned for reuse).
func (s *Store) semTopN(q *Query, nprobe, n int, dst []*ExpertMap, scratch []slotScore) ([]*ExpertMap, []slotScore) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	top := s.index.topN(q, nprobe, n, len(s.maps), scratch[:0])
	for _, t := range top {
		dst = append(dst, s.maps[t.slot])
	}
	return dst, top[:0]
}

// probeStats reports the index's search shape for the latency model: the
// number of non-empty clusters the probe ordering scores, and the expected
// candidate count a search with the given nprobe scans (the full
// population in exact mode, ~population·nprobe/clusters when probing).
func (s *Store) probeStats(nprobe int) (clusters, candidates int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	clusters = s.index.active()
	candidates = len(s.maps)
	if nprobe > 0 && nprobe < clusters {
		candidates = (candidates*nprobe + clusters - 1) / clusters
	}
	return clusters, candidates
}

// StoreStats summarizes store churn.
type StoreStats struct {
	Len, Capacity  int
	Adds, Replaced int
	MemoryBytes    int64
	PrefetchDist   int
}

// Stats returns store statistics.
func (s *Store) Stats() StoreStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var mem int64
	if len(s.maps) > 0 {
		mem = int64(len(s.maps)) * s.maps[0].Bytes()
	}
	return StoreStats{
		Len: len(s.maps), Capacity: s.capacity,
		Adds: s.adds, Replaced: s.replaced,
		MemoryBytes: mem, PrefetchDist: s.d,
	}
}

// Config returns the model configuration the store was built for.
func (s *Store) Config() moe.Config { return s.cfg }

// PrefetchDistance returns the distance weighting dedup and search.
func (s *Store) PrefetchDistance() int { return s.d }

// BuildStore populates a store from full request traces — the offline
// evaluation's "70% of the prompts' context data" preparation (§6.1).
// Traces are inserted in ascending request-ID order so the store content is
// deterministic.
func BuildStore(cfg moe.Config, capacity, prefetchDistance int, traces map[uint64][]*moe.Iteration) *Store {
	s := NewStore(cfg, capacity, prefetchDistance)
	ids := make([]uint64, 0, len(traces))
	for reqID := range traces {
		ids = append(ids, reqID)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, reqID := range ids {
		for _, it := range traces[reqID] {
			s.AddIteration(reqID, it)
		}
	}
	return s
}
