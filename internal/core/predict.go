package core

import (
	"finemoe/internal/moe"
)

// PredictOptions configures engine-free prediction evaluation, used by the
// motivation and ablation experiments (Figs. 4, 8, 14a, 16a) that measure
// prediction hit rates directly rather than end-to-end latency.
type PredictOptions struct {
	// D is the prefetch distance: layer l's prediction may only use
	// trajectory observations from layers [0, l-d].
	D int
	// TopK is the per-layer activation count (minimum selection size).
	TopK int
	// Dynamic enables the δ-threshold selection (§4.3); false selects a
	// static top-K — the Map(T+S) ablation.
	Dynamic bool
	// UseSemantic guides layers [0, D) with semantic search; false
	// leaves them unguided — the Map(T) ablation.
	UseSemantic bool
	// UseTrajectory guides layers [D, L) with trajectory-prefix search;
	// false falls back to the semantic match for all layers.
	UseTrajectory bool
}

// Prediction is the outcome of simulating the search protocol over one
// iteration.
type Prediction struct {
	// Sets[l] is the predicted expert set for layer l (nil = unguided).
	Sets [][]int
	// SemScore is the semantic search score (NaN-free; -1 if unused or
	// store empty).
	SemScore float64
	// TrajScores holds the trajectory search scores for layers [D, L).
	TrajScores []float64
}

// PredictIteration replays the paper's §4.2 protocol for a single iteration
// against a searcher: semantic search guides layers [0, D), and for each
// layer l >= D a trajectory-prefix search over layers [0, l-D] guides
// layer l. It returns per-layer predicted expert sets.
func PredictIteration(s *Searcher, it *moe.Iteration, opt PredictOptions) Prediction {
	cfg := s.cfg
	if opt.D < 1 {
		opt.D = 1
	}
	if opt.TopK <= 0 {
		opt.TopK = cfg.TopK
	}
	pred := Prediction{Sets: make([][]int, cfg.Layers), SemScore: -1}

	selectFrom := func(res SearchResult, layer int) []int {
		probs := res.Map.LayerProbs(layer, cfg.RoutedExperts)
		if opt.Dynamic {
			return SelectExperts(probs, res.Score, opt.TopK)
		}
		return SelectExpertsStatic(probs, opt.TopK)
	}

	// One prepared query serves the semantic search and the cursor.
	q := s.Prepare(it.Semantic)
	var sem SearchResult
	var semOK bool
	if opt.UseSemantic {
		sem, semOK = s.SemanticSearchQ(q)
		if semOK {
			pred.SemScore = sem.Score
			for l := 0; l < opt.D && l < cfg.Layers; l++ {
				pred.Sets[l] = selectFrom(sem, l)
			}
		}
	}

	cur := s.NewCursorQ(q)
	q.Release()
	defer cur.Release()
	for lNow := 0; lNow < cfg.Layers; lNow++ {
		if cur != nil {
			cur.Observe(it.Probs[lNow])
		}
		target := lNow + opt.D
		if target >= cfg.Layers {
			continue
		}
		if opt.UseTrajectory && cur != nil {
			if res, ok := cur.Best(); ok {
				pred.Sets[target] = selectFrom(res, target)
				pred.TrajScores = append(pred.TrajScores, res.Score)
				continue
			}
		}
		if semOK {
			pred.Sets[target] = selectFrom(sem, target)
		}
	}
	return pred
}

// HitRate scores the prediction against the iteration's true activations.
func (p Prediction) HitRate(it *moe.Iteration) float64 {
	return moe.IterationHitRate(it, p.Sets)
}
