package core

import (
	"sync"
	"testing"

	"finemoe/internal/moe"
)

func TestStoreCloneIndependence(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 61)
	s := NewStore(cfg, 50, 2)
	for _, it := range m.Trace(testPrompt(cfg, 1, 0, 4, 5)) {
		s.AddIteration(1, it)
	}
	clone := s.Clone()
	if clone.Len() != s.Len() || clone.Capacity() != s.Capacity() {
		t.Fatalf("clone shape: %d/%d vs %d/%d", clone.Len(), clone.Capacity(), s.Len(), s.Capacity())
	}
	// Mutating the clone must not touch the original.
	for _, it := range m.Trace(testPrompt(cfg, 2, 1, 4, 5)) {
		clone.AddIteration(2, it)
	}
	if s.Len() == clone.Len() {
		t.Fatal("clone shares mutable state with the original")
	}
	// Shared maps are identical pointers (cheap clone).
	if s.Snapshot()[0] != clone.Snapshot()[0] {
		t.Fatal("clone copied immutable maps needlessly")
	}
}

func TestDedupDisabledFIFO(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 62)
	s := NewStore(cfg, 3, 2)
	s.SetDedupDisabled(true)
	iters := m.Trace(testPrompt(cfg, 1, 0, 4, 6))
	for i, it := range iters {
		s.AddIteration(uint64(i), it)
	}
	// FIFO: after 6 adds into capacity 3, the replacement cursor wrapped
	// once; survivors must be the most recent window in ring order.
	snap := s.Snapshot()
	seen := map[int]bool{}
	for _, em := range snap {
		seen[em.Iter] = true
	}
	for _, want := range []int{3, 4, 5} {
		if !seen[want] {
			t.Fatalf("FIFO survivors wrong: %v", seen)
		}
	}
}

func TestStoreConcurrentAddAndSearch(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 63)
	s := NewStore(cfg, 100, 2)
	searcher := NewSearcher(s, 0)
	base := m.Trace(testPrompt(cfg, 1, 0, 4, 4))
	for _, it := range base {
		s.AddIteration(1, it)
	}
	var wg sync.WaitGroup
	// Writers publish new maps while readers search snapshots — the
	// §4.3 publisher/subscriber pattern must be race-free (run under
	// -race in CI).
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			iters := m.Trace(testPrompt(cfg, seed, seed%3, 4, 6))
			for _, it := range iters {
				s.AddIteration(seed, it)
			}
		}(uint64(w + 10))
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, ok := searcher.SemanticSearch(base[0].Semantic); !ok {
					t.Error("search failed on non-empty store")
					return
				}
				cur := searcher.NewCursor(base[0].Semantic)
				for l := 0; l < cfg.Layers; l++ {
					cur.Observe(base[0].Probs[l])
				}
				if _, ok := cur.Best(); !ok {
					t.Error("cursor found nothing")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPredictIterationAblationMonotone(t *testing.T) {
	// More features should not reduce prediction quality on average.
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 64)
	s := buildTestStore(t, cfg, m, 20, 300)
	searcher := NewSearcher(s, 0)
	var tOnly, ts, tsd float64
	var n int
	for q := uint64(200); q < 206; q++ {
		iters := m.Trace(testPrompt(cfg, q, q%8, 4, 6))
		for _, it := range iters[1:] {
			tOnly += PredictIteration(searcher, it, PredictOptions{D: 2, UseTrajectory: true}).HitRate(it)
			ts += PredictIteration(searcher, it, PredictOptions{D: 2, UseTrajectory: true, UseSemantic: true}).HitRate(it)
			tsd += PredictIteration(searcher, it, PredictOptions{D: 2, UseTrajectory: true, UseSemantic: true, Dynamic: true}).HitRate(it)
			n++
		}
	}
	f := float64(n)
	if ts/f < tOnly/f {
		t.Fatalf("semantic guidance reduced hit rate: %.3f -> %.3f", tOnly/f, ts/f)
	}
	if tsd/f < ts/f-0.01 {
		t.Fatalf("dynamic threshold reduced hit rate: %.3f -> %.3f", ts/f, tsd/f)
	}
}

func TestPredictIterationDefaults(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 65)
	s := buildTestStore(t, cfg, m, 8, 100)
	searcher := NewSearcher(s, 0)
	it := m.Trace(testPrompt(cfg, 300, 0, 4, 2))[1]
	// Zero-value options: D and TopK default sensibly.
	pred := PredictIteration(searcher, it, PredictOptions{UseSemantic: true, UseTrajectory: true})
	if len(pred.Sets) != cfg.Layers {
		t.Fatalf("sets length %d", len(pred.Sets))
	}
	nonNil := 0
	for _, s := range pred.Sets {
		if s != nil {
			nonNil++
		}
	}
	if nonNil != cfg.Layers {
		t.Fatalf("guided layers %d, want all %d", nonNil, cfg.Layers)
	}
}

func TestSearchLatencyModelsScale(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 66)
	small := buildTestStore(t, cfg, m, 4, 40)
	big := buildTestStore(t, cfg, m, 20, 400)
	sSmall := NewSearcher(small, 0)
	sBig := NewSearcher(big, 0)
	if sSmall.SemanticLatencyMS() >= sBig.SemanticLatencyMS() {
		t.Fatal("semantic search latency must grow with store size")
	}
	if sSmall.TrajectoryLatencyMS() >= sBig.TrajectoryLatencyMS() {
		t.Fatal("trajectory search latency must grow with store size")
	}
	// Prefilter caps the trajectory latency.
	sCapped := NewSearcher(big, 8)
	if sCapped.TrajectoryLatencyMS() >= sBig.TrajectoryLatencyMS() {
		t.Fatal("prefilter did not cap trajectory search latency")
	}
}
