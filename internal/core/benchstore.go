package core

import (
	"finemoe/internal/moe"
	"finemoe/internal/rng"
)

// SearchBenchStore builds the canonical search-benchmark population: n
// synthetic maps (RandomExpertMap, fixed seed 77) in a store of capacity
// n — steady state at the fill boundary — plus the fixed unit query the
// benchmarks search for. It is the single source of the benchmark
// workload, shared by internal/core's `go test -bench` benchmarks and
// `finemoe-bench -searchbench` (the BENCH_search.json generator), so the
// committed baseline always measures exactly what the test benchmarks
// measure.
func SearchBenchStore(cfg moe.Config, n int) (*Store, []float64) {
	s := NewStore(cfg, n, cfg.OptimalPrefetchDistance)
	for i := 0; i < n; i++ {
		s.Add(RandomExpertMap(cfg, uint64(i), 77))
	}
	q := make([]float64, cfg.SemDim)
	rng.New(123).UnitVec(q)
	return s, q
}
