package core

import (
	"math"
	"testing"
	"testing/quick"

	"finemoe/internal/moe"
	"finemoe/internal/rng"
	"finemoe/internal/tensor"
)

func testPrompt(cfg moe.Config, id, topic uint64, in, out int) moe.PromptSpec {
	dir := rng.UnitVecFor(cfg.SemDim, 777, topic)
	emb := tensor.Copy(dir)
	noise := make([]float64, cfg.SemDim)
	rng.New(rng.Mix(888, id)).UnitVec(noise)
	tensor.Axpy(0.12, noise, emb)
	tensor.Normalize(emb)
	return moe.PromptSpec{ID: id, Embedding: emb, InputTokens: in, OutputTokens: out, Seed: rng.Mix(999, id)}
}

func buildTestStore(t *testing.T, cfg moe.Config, m *moe.Model, nPrompts int, capacity int) *Store {
	t.Helper()
	traces := map[uint64][]*moe.Iteration{}
	for i := uint64(0); i < uint64(nPrompts); i++ {
		traces[i] = m.Trace(testPrompt(cfg, i, i%8, 6, 8))
	}
	return BuildStore(cfg, capacity, 2, traces)
}

func TestExpertMapConstruction(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 1)
	it := m.Trace(testPrompt(cfg, 1, 0, 4, 2))[1]
	em := NewExpertMap(cfg, 1, it)
	if len(em.Traj) != cfg.Layers*cfg.RoutedExperts {
		t.Fatalf("traj length %d", len(em.Traj))
	}
	if len(em.Sem) != cfg.SemDim {
		t.Fatalf("sem length %d", len(em.Sem))
	}
	// LayerProbs round trip.
	p := em.LayerProbs(1, cfg.RoutedExperts)
	for j, v := range p {
		if math.Abs(v-it.Probs[1][j]) > 1e-6 {
			t.Fatalf("layer probs mismatch at %d", j)
		}
	}
	// Bytes matches the Fig. 18 accounting.
	if em.Bytes() != cfg.MapBytes() {
		t.Fatalf("map bytes %d != config %d", em.Bytes(), cfg.MapBytes())
	}
}

func TestExpertMapPanicsOnShapeMismatch(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 1)
	it := m.Trace(testPrompt(cfg, 1, 0, 4, 2))[0]
	bad := cfg
	bad.Layers++
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExpertMap(bad, 1, it)
}

func TestStoreCapacityAndDedup(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 2)
	s := NewStore(cfg, 10, 2)
	for i := uint64(0); i < 5; i++ {
		for _, it := range m.Trace(testPrompt(cfg, i, i, 4, 4)) {
			s.AddIteration(i, it)
		}
	}
	if s.Len() != 10 {
		t.Fatalf("store len %d, want capacity 10", s.Len())
	}
	st := s.Stats()
	if st.Adds != 20 || st.Replaced != 10 {
		t.Fatalf("stats %+v", st)
	}
	if s.MemoryBytes() != 10*cfg.MapBytes() {
		t.Fatalf("memory %d", s.MemoryBytes())
	}
}

// TestDedupPreservesDiversity: with a full store, adding a near-duplicate
// map should replace a similar incumbent, not a dissimilar one.
func TestDedupPreservesDiversity(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 3)
	s := NewStore(cfg, 4, 2)
	s.SetDedupSample(0) // exact §4.4 dedup
	// Two distinct topics, two maps each.
	tA := m.Trace(testPrompt(cfg, 1, 0, 4, 3))
	tB := m.Trace(testPrompt(cfg, 2, 5, 4, 3))
	s.AddIteration(1, tA[0])
	s.AddIteration(1, tA[1])
	s.AddIteration(2, tB[0])
	s.AddIteration(2, tB[1])
	// New map from topic 0 should evict a topic-0 incumbent.
	extra := m.Trace(testPrompt(cfg, 3, 0, 4, 2))
	s.AddIteration(3, extra[1])
	var topicB int
	for _, em := range s.Snapshot() {
		if em.ReqID == 2 {
			topicB++
		}
	}
	if topicB != 2 {
		t.Fatalf("dedup evicted a diverse map: topic-B survivors = %d, want 2", topicB)
	}
}

func TestRedundancySelfIsMax(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 4)
	s := NewStore(cfg, 4, 2)
	iters := m.Trace(testPrompt(cfg, 1, 0, 4, 3))
	a := NewExpertMap(cfg, 1, iters[0])
	b := NewExpertMap(cfg, 1, iters[2])
	if got := s.Redundancy(a, a); math.Abs(got-1) > 1e-6 {
		t.Fatalf("self redundancy %v, want 1", got)
	}
	if s.Redundancy(a, b) >= s.Redundancy(a, a) {
		t.Fatal("distinct map as redundant as self")
	}
}

func TestSemanticSearchFindsSameTopic(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 5)
	s := buildTestStore(t, cfg, m, 16, 200)
	searcher := NewSearcher(s, 0)
	// Query with a fresh prompt from topic 3.
	q := m.Trace(testPrompt(cfg, 100, 3, 4, 2))
	res, ok := searcher.SemanticSearch(q[0].Semantic)
	if !ok {
		t.Fatal("search failed on populated store")
	}
	if res.Score < 0.7 {
		t.Fatalf("same-topic semantic score %.3f too low", res.Score)
	}
	// The matched map should come from a topic-3 request (IDs 3, 11 mod 8 == 3).
	if res.Map.ReqID%8 != 3 {
		t.Fatalf("matched request %d, not from topic 3", res.Map.ReqID)
	}
}

func TestSemanticSearchEmptyStore(t *testing.T) {
	cfg := moe.Tiny()
	s := NewStore(cfg, 10, 2)
	searcher := NewSearcher(s, 0)
	if _, ok := searcher.SemanticSearch(make([]float64, cfg.SemDim)); ok {
		t.Fatal("search on empty store returned a result")
	}
	if searcher.NewCursor(make([]float64, cfg.SemDim)) != nil {
		t.Fatal("cursor on empty store")
	}
}

func TestCursorMatchesExactTrajectory(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 6)
	s := buildTestStore(t, cfg, m, 12, 300)
	// Insert a known iteration and query with its own prefix: the cursor
	// must find it with score ~1.
	target := m.Trace(testPrompt(cfg, 500, 2, 4, 3))[1]
	s.AddIteration(500, target)
	searcher := NewSearcher(s, 0)
	cur := searcher.NewCursor(target.Semantic)
	for l := 0; l < cfg.Layers; l++ {
		cur.Observe(target.Probs[l])
	}
	res, ok := cur.Best()
	if !ok {
		t.Fatal("cursor found nothing")
	}
	if res.Map.ReqID != 500 || res.Score < 0.9999 {
		t.Fatalf("self-match failed: req %d score %.5f", res.Map.ReqID, res.Score)
	}
}

// TestCursorIncrementalEqualsDirect: the incremental prefix cosine must
// equal a direct cosine over the flattened prefix.
func TestCursorIncrementalEqualsDirect(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 7)
	s := buildTestStore(t, cfg, m, 6, 100)
	searcher := NewSearcher(s, 0)
	q := m.Trace(testPrompt(cfg, 600, 1, 4, 3))[1]
	cur := searcher.NewCursor(q.Semantic)
	for l := 0; l < 3; l++ {
		cur.Observe(q.Probs[l])
	}
	res, ok := cur.Best()
	if !ok {
		t.Fatal("no result")
	}
	// Direct recomputation over every stored map.
	prefix := moe.FlattenProbs(q, 3)
	bestScore := -2.0
	for _, em := range s.Snapshot() {
		stored := tensor.Float64s(em.Traj[:3*cfg.RoutedExperts])
		if c := tensor.Cosine(prefix, stored); c > bestScore {
			bestScore = c
		}
	}
	if math.Abs(res.Score-bestScore) > 1e-6 {
		t.Fatalf("incremental %.6f != direct %.6f", res.Score, bestScore)
	}
}

func TestCursorPanics(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 8)
	s := buildTestStore(t, cfg, m, 4, 50)
	searcher := NewSearcher(s, 0)
	q := m.Trace(testPrompt(cfg, 700, 0, 4, 2))[1]
	cur := searcher.NewCursor(q.Semantic)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong expert count")
		}
	}()
	cur.Observe(make([]float64, cfg.RoutedExperts+1))
}

func TestPrefilterSubsetsCandidates(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 9)
	s := buildTestStore(t, cfg, m, 16, 300)
	q := m.Trace(testPrompt(cfg, 800, 2, 4, 2))[1]
	full := NewSearcher(s, 0).NewCursor(q.Semantic)
	pre := NewSearcher(s, 8).NewCursor(q.Semantic)
	if len(pre.cands) != 8 {
		t.Fatalf("prefilter candidates %d, want 8", len(pre.cands))
	}
	if len(full.cands) != s.Len() {
		t.Fatalf("full candidates %d, want %d", len(full.cands), s.Len())
	}
}

func TestThreshold(t *testing.T) {
	if Threshold(1) != 0 || Threshold(0) != 1 || Threshold(-0.5) != 1 {
		t.Fatal("threshold endpoints wrong")
	}
	if got := Threshold(0.8); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("threshold(0.8) = %v", got)
	}
}

// TestSelectExpertsAdaptive: low scores must select at least as many experts
// as high scores (the δ mechanism's entire point, §4.3).
func TestSelectExpertsAdaptive(t *testing.T) {
	probs := []float64{0.4, 0.3, 0.15, 0.1, 0.05}
	high := SelectExperts(probs, 0.95, 2)
	low := SelectExperts(probs, 0.1, 2)
	if len(high) > len(low) {
		t.Fatalf("high score selected %d > low score %d", len(high), len(low))
	}
	if len(high) < 2 {
		t.Fatalf("minimum top-K violated: %v", high)
	}
	// Perfect score: exactly K experts.
	perfect := SelectExperts(probs, 1.0, 2)
	if len(perfect) != 2 {
		t.Fatalf("perfect-score selection %v, want 2 experts", perfect)
	}
	// Zero score: must cover cumulative 1.0 => all experts.
	zero := SelectExperts(probs, 0.0, 2)
	if len(zero) != 5 {
		t.Fatalf("zero-score selection %v, want all", zero)
	}
}

func TestSelectExpertsProperty(t *testing.T) {
	r := rng.New(10)
	f := func(seed uint64) bool {
		rr := r.Derive(seed)
		n := 3 + rr.Intn(12)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rr.Float64()
		}
		tensor.Normalize1(probs)
		score := rr.Float64()*2 - 0.5 // include out-of-range scores
		k := 1 + rr.Intn(3)
		sel := SelectExperts(probs, score, k)
		if len(sel) < min(k, n) || len(sel) > n {
			return false
		}
		var cum float64
		for _, j := range sel {
			cum += probs[j]
		}
		return cum >= Threshold(score)-1e-9 || len(sel) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorities(t *testing.T) {
	// Closer layers and higher probabilities first.
	if PrefetchPriority(0.5, 5, 4) <= PrefetchPriority(0.5, 8, 4) {
		t.Fatal("closer layer must have higher prefetch priority")
	}
	if PrefetchPriority(0.9, 5, 4) <= PrefetchPriority(0.1, 5, 4) {
		t.Fatal("higher probability must have higher prefetch priority")
	}
	if PrefetchPriority(0.5, 4, 4) != 0.5 {
		t.Fatal("distance clamps at 1")
	}
	// Eviction: low probability and low frequency evict first.
	if EvictPriority(0.1, 1) <= EvictPriority(0.9, 1) {
		t.Fatal("low-probability experts must evict first")
	}
	if EvictPriority(0.5, 1) <= EvictPriority(0.5, 10) {
		t.Fatal("low-frequency experts must evict first")
	}
	if math.IsInf(EvictPriority(0, 0), 0) || math.IsNaN(EvictPriority(0, 0)) {
		t.Fatal("eviction priority must be finite")
	}
}

// TestSearchGuidedPredictionBeatsChance: predicted expert sets from searched
// maps must overlap the true activations far better than random selection.
func TestSearchGuidedPredictionBeatsChance(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 11)
	s := buildTestStore(t, cfg, m, 24, 500)
	searcher := NewSearcher(s, 0)
	var hit, n float64
	for q := uint64(300); q < 306; q++ {
		iters := m.Trace(testPrompt(cfg, q, q%8, 4, 6))
		for _, it := range iters[1:] {
			res, ok := searcher.SemanticSearch(it.Semantic)
			if !ok {
				t.Fatal("no semantic result")
			}
			for l := 0; l < cfg.Layers; l++ {
				pred := SelectExperts(res.Map.LayerProbs(l, cfg.RoutedExperts), res.Score, cfg.TopK)
				hit += tensor.OverlapRatio(it.Active[l], pred)
				n++
			}
		}
	}
	rate := hit / n
	chance := float64(cfg.TopK) / float64(cfg.RoutedExperts)
	if rate < chance+0.25 {
		t.Fatalf("search-guided hit rate %.3f not clearly above chance %.3f", rate, chance)
	}
}

func TestStoreStatsAndAccessors(t *testing.T) {
	cfg := moe.Tiny()
	s := NewStore(cfg, 0, 0) // defaults
	if s.Capacity() != 1000 || s.PrefetchDistance() != 1 {
		t.Fatalf("defaults wrong: %d, %d", s.Capacity(), s.PrefetchDistance())
	}
	if s.Config().Name != cfg.Name {
		t.Fatal("config accessor wrong")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
