package core

import (
	"finemoe/internal/cache"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/tensor"
)

// Options configures the FineMoE policy. The zero value plus a store is a
// valid full-featured configuration.
type Options struct {
	// PrefetchDistance d (§4.2); 0 uses the model's profiled optimum.
	PrefetchDistance int
	// SemanticPrefilter bounds trajectory-search candidates (0 = default
	// 128; negative = full store).
	SemanticPrefilter int
	// SearchNProbe opts into approximate semantic search: the clustered
	// index probes only the n most query-similar centroid buckets per
	// search (0 = probe all, exact mode — byte-identical to the seed's
	// brute force). The searchfig experiment quantifies the hit-rate loss
	// vs. search speedup across nprobe.
	SearchNProbe int
	// DisableSemantic turns off semantic-based search, leaving the first
	// d layers unguided — the Map(T) ablation of Fig. 14a.
	DisableSemantic bool
	// DisableDynamicThreshold selects a static top-K instead of the
	// δ-driven set — the Map(T+S) ablation of Fig. 14a.
	DisableDynamicThreshold bool
	// DisableStoreUpdate freezes the store during serving (offline
	// evaluations measure a pre-built store; online serving updates it).
	DisableStoreUpdate bool
	// SynchronousSearch blocks inference on map search instead of
	// overlapping it — the sync-vs-async design ablation. FineMoE proper
	// keeps this false (§4.3).
	SynchronousSearch bool
	// PrefillMassFloor is the minimum cumulative probability the prefill
	// selection must cover. Prefill activates the per-layer union of all
	// prompt tokens' experts, and the stored prefill maps' token-mean
	// distributions spread across that union, so the selection threshold
	// is floored instead of trusting δ alone. 0 uses the default 0.96.
	PrefillMassFloor float64
	// EvictionScorer overrides FineMoE's 1/(p·freq) cache scorer (the
	// Fig. 14b ablation swaps in LRU and LFU).
	EvictionScorer cache.Scorer
}

// FineMoE is the paper's policy: asynchronous expert-map search guides
// prefetching (semantic for layers [1,d], trajectory for [d+1,L]), the
// dynamic threshold δ sizes each layer's prefetch set, priorities order
// transfers and evictions, and completed iterations update the store.
type FineMoE struct {
	policy.Base
	store    *Store
	searcher *Searcher
	opts     Options
	cfg      moe.Config
	d        int

	// All mutable policy state below is guarded by the engine's
	// single-threaded hook discipline, not a lock: an Engine steps its
	// policy from one goroutine at a time (httpserve serializes each
	// instance behind its own mutex; the sharded cluster hands engines
	// between workers through channels, which order the accesses), and
	// the cache calls Score back on the same hook path. A FineMoE
	// instance is never shared across engines.
	//
	// reqs tracks per-request iteration state (trajectory cursors).
	reqs map[uint64]*reqState
	// stFree recycles reqState records: StartIteration builds one per
	// batch member per iteration, so without reuse the policy would
	// allocate on every decode step.
	stFree []*reqState
	// predProb is the eviction signal: the probability the most recent
	// searched maps assigned to each expert (§4.5 eviction priority),
	// indexed densely by Config.RefID. A missing map entry read as 0;
	// the dense slot's zero value preserves that exactly.
	predProb []float64
	// curLayer tracks the inference pipeline's layer phase so eviction
	// can respect the layer-sequential access pattern §4.5 calls out:
	// experts of just-computed layers are farthest from their next use.
	curLayer int
	// Per-call selection scratch: the widened layer distribution, the
	// TopKInto order, and the selected set.
	probsBuf []float64
	orderBuf []int
	selBuf   []int
}

type reqState struct {
	cursor    *Cursor
	sem       SearchResult
	semOK     bool
	isPrefill bool
}

var _ policy.Policy = (*FineMoE)(nil)
var _ cache.Scorer = (*FineMoE)(nil)

// NewFineMoE builds the policy around an Expert Map Store (pre-populated
// for offline serving, empty for online serving).
func NewFineMoE(store *Store, opts Options) *FineMoE {
	cfg := store.Config()
	d := opts.PrefetchDistance
	if d <= 0 {
		d = cfg.OptimalPrefetchDistance
	}
	if d <= 0 {
		d = 1
	}
	prefilter := opts.SemanticPrefilter
	if prefilter == 0 {
		prefilter = 128
	}
	if prefilter < 0 {
		prefilter = 0
	}
	searcher := NewSearcher(store, prefilter)
	searcher.SetNProbe(opts.SearchNProbe)
	return &FineMoE{
		store:    store,
		searcher: searcher,
		opts:     opts,
		cfg:      cfg,
		d:        d,
		reqs:     map[uint64]*reqState{},
		predProb: make([]float64, cfg.Layers*cfg.RoutedExperts),
		probsBuf: make([]float64, cfg.RoutedExperts),
		orderBuf: make([]int, 0, cfg.RoutedExperts),
		selBuf:   make([]int, 0, cfg.RoutedExperts),
	}
}

// Name implements policy.Policy.
func (f *FineMoE) Name() string { return "FineMoE" }

// Store returns the policy's Expert Map Store.
func (f *FineMoE) Store() *Store { return f.store }

// PrefetchDistance returns the configured d.
func (f *FineMoE) PrefetchDistance() int { return f.d }

// Scorer implements policy.Policy: FineMoE itself scores evictions unless
// an ablation overrides it.
func (f *FineMoE) Scorer() cache.Scorer {
	if f.opts.EvictionScorer != nil {
		return f.opts.EvictionScorer
	}
	return f
}

// Score implements cache.Scorer with the paper's 1/(p·freq) priority,
// weighted by the expert's distance from its next sequential use. §4.5
// observes that expert usage is layer-wise sequential — an expert whose
// layer has just executed will not be needed again until the next
// iteration, so it is the best victim; an expert a few layers ahead is the
// worst.
func (f *FineMoE) Score(ref moe.ExpertRef, m cache.Meta, _ float64) float64 {
	p := f.predProb[f.cfg.RefID(ref)]
	cur := f.curLayer
	distToUse := ref.Layer - cur
	if distToUse < 0 {
		distToUse += f.cfg.Layers
	}
	return EvictPriority(p, m.Freq) * float64(1+distToUse)
}

// MemoryOverheadBytes reports the store footprint (Fig. 18).
func (f *FineMoE) MemoryOverheadBytes() int64 { return f.store.MemoryBytes() }

// selectAndPrefetch picks the experts for one target layer from a searched
// map and enqueues transfers. prefill widens the selection to cover the
// token union. Selection runs entirely in policy-owned scratch — the
// widened distribution, ordering, and selected set reuse the same three
// buffers every call — via the Into kernels, whose results element-equal
// the allocating originals.
//
//finemoe:hotpath
func (f *FineMoE) selectAndPrefetch(res SearchResult, targetLayer, lNow int, issueAt float64, prefill bool) {
	probs := f.probsBuf
	res.Map.LayerProbsInto(targetLayer, f.cfg.RoutedExperts, probs)
	var sel []int
	switch {
	case prefill:
		floor := f.opts.PrefillMassFloor
		if floor <= 0 {
			floor = 0.96
		}
		thr := Threshold(res.Score)
		if thr < floor {
			thr = floor
		}
		sel = tensor.CumulativeTopSetInto(probs, thr, f.cfg.TopK, f.orderBuf[:cap(f.orderBuf)], f.selBuf[:cap(f.selBuf)])
	case f.opts.DisableDynamicThreshold:
		sel = tensor.TopKInto(probs, f.cfg.TopK, f.orderBuf[:cap(f.orderBuf)])
	default:
		sel = tensor.CumulativeTopSetInto(probs, Threshold(res.Score), f.cfg.TopK, f.orderBuf[:cap(f.orderBuf)], f.selBuf[:cap(f.selBuf)])
	}
	for _, j := range sel {
		f.predProb[f.cfg.ExpertID(targetLayer, j)] = probs[j]
	}
	for _, j := range sel {
		ref := moe.ExpertRef{Layer: targetLayer, Expert: j}
		if f.RT.Resident(ref) || f.RT.Tracked(ref) {
			continue
		}
		pri := PrefetchPriority(probs[j], targetLayer, lNow)
		// Tier-aware routing: an expert predicted for a layer beyond the
		// near window [lNow, lNow+d] that still lives below DRAM is
		// pre-staged one hop (into DRAM) instead of chained all the way
		// up — far-ahead predictions should warm the big host tier, not
		// churn the small GPU cache; the near-window guidance or the
		// trajectory search issues the final upload once the layer
		// approaches. Under the degenerate two-tier hierarchy Tier never
		// exceeds 1, so this path cannot fire and the transfer schedule
		// is byte-identical to the pre-tiering policy.
		if targetLayer-lNow > f.d && f.RT.Tier(ref) > 1 {
			f.RT.Promote(ref, pri, issueAt)
			continue
		}
		f.RT.Prefetch(ref, pri, issueAt)
	}
}

// StartIteration implements Step 1–3 for the iteration head: collect the
// semantic context, search the store, and prefetch layers [0, d) from the
// semantic match. Everything is asynchronous — the returned sync delay is
// zero and search latency is modeled through transfer issue times.
func (f *FineMoE) StartIteration(views []policy.IterView, now float64) float64 {
	var syncDelay float64
	for _, v := range views {
		f.Account(policy.CompCollect, 0.05)
		st := f.newReqState()
		st.isPrefill = v.IsPrefill
		// One float32 conversion serves the semantic search and the
		// trajectory cursor (the seed converted the embedding twice).
		q := f.searcher.Prepare(v.Semantic)
		if !f.opts.DisableSemantic {
			semLat := f.searcher.SemanticLatencyMS()
			f.Account(policy.CompMapMatch, semLat)
			if res, ok := f.searcher.SemanticSearchQ(q); ok {
				st.sem, st.semOK = res, true
				issueAt := now + semLat
				if f.opts.SynchronousSearch {
					syncDelay += semLat
					issueAt = now + syncDelay
				}
				// Semantic guidance covers layers [0,d), where no
				// trajectory has been observed yet (§4.2.1). The
				// prefill iteration extends it across every layer:
				// prefill moves whole token-union working sets, so
				// transfers must be issued early to overlap the
				// compute-bound prompt pass. Decode leaves layers
				// [d,L) to the trajectory search — duplicating the
				// guidance there would churn the expert cache with
				// near-miss predictions.
				depth := f.d
				if v.IsPrefill {
					depth = f.cfg.Layers
				}
				for l := 0; l < depth && l < f.cfg.Layers; l++ {
					f.selectAndPrefetch(res, l, 0, issueAt, v.IsPrefill)
				}
			}
		}
		st.cursor = f.searcher.NewCursorQ(q)
		q.Release()
		if old := f.reqs[v.ReqID]; old != nil {
			if old.cursor != nil {
				old.cursor.Release()
			}
			f.freeReqState(old)
		}
		f.reqs[v.ReqID] = st
	}
	return syncDelay
}

// newReqState pops the reqState free list, allocating only while it warms.
//
//finemoe:allocok grows the reqState free list only until it covers the peak batch; steady-state iterations recycle the previous iteration's record
func (f *FineMoE) newReqState() *reqState {
	if n := len(f.stFree); n > 0 {
		st := f.stFree[n-1]
		f.stFree[n-1] = nil
		f.stFree = f.stFree[:n-1]
		return st
	}
	return &reqState{}
}

// freeReqState recycles a record no longer reachable from f.reqs.
func (f *FineMoE) freeReqState(st *reqState) {
	*st = reqState{}
	f.stFree = append(f.stFree, st)
}

// OnGate implements trajectory-based search (§4.2.2): the observed gate
// distribution extends the request's trajectory prefix and the best-match
// map guides prefetching for layer l+d.
func (f *FineMoE) OnGate(layer int, views []policy.LayerView, now float64) float64 {
	f.curLayer = layer
	// Fold the observed gate distribution into the eviction signal: the
	// probability p in 1/(p·freq) is the gate's preference for the
	// expert (§4.5), and the freshest estimate for the current layer is
	// the gate output itself. Without this, activated-but-unpredicted
	// experts would keep the floor probability and be evicted before the
	// cache's temporal locality could help them.
	for _, v := range views {
		for j, p := range v.Probs {
			id := f.cfg.ExpertID(layer, j)
			if decayed := f.predProb[id] * 0.7; p > decayed {
				f.predProb[id] = p
			} else {
				f.predProb[id] = decayed
			}
		}
	}
	var syncDelay float64
	for _, v := range views {
		st := f.reqs[v.ReqID]
		if st == nil || st.cursor == nil {
			continue
		}
		st.cursor.Observe(v.Probs)
		target := layer + f.d
		if target >= f.cfg.Layers {
			continue
		}
		trajLat := f.searcher.TrajectoryLatencyMS()
		f.Account(policy.CompMapMatch, trajLat)
		issueAt := now + trajLat
		if f.opts.SynchronousSearch {
			syncDelay += trajLat
			issueAt = now + syncDelay
		}
		if res, ok := st.cursor.Best(); ok {
			f.selectAndPrefetch(res, target, layer, issueAt, st.isPrefill)
		} else if st.semOK {
			// Cold trajectory (shouldn't happen after layer 0) —
			// fall back to the semantic match.
			f.selectAndPrefetch(st.sem, target, layer, issueAt, st.isPrefill)
		}
	}
	return syncDelay
}

// EndIteration publishes the completed iteration's expert map to the store
// (Step 5). The update is asynchronous and does not block inference.
func (f *FineMoE) EndIteration(reqID uint64, it *moe.Iteration, _ float64) float64 {
	if !f.opts.DisableStoreUpdate {
		f.store.AddIteration(reqID, it)
		// Dedup cost model: one pass over the sampled incumbents.
		f.Account(policy.CompUpdate, 0.1+0.3*f.searcher.TrajectoryLatencyMS())
	}
	return 0
}

// EndRequest drops per-request state, recycling the trajectory cursor's
// pooled score buffers.
func (f *FineMoE) EndRequest(reqID uint64, _ float64) {
	if st := f.reqs[reqID]; st != nil {
		if st.cursor != nil {
			st.cursor.Release()
		}
		f.freeReqState(st)
	}
	delete(f.reqs, reqID)
}
