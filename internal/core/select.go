package core

import (
	"finemoe/internal/tensor"
)

// Threshold computes the dynamic expert-selection threshold
// δ = Clip(1 − score, 0, 1) (§4.3): low-confidence searches prefetch more
// experts to absorb mispredictions, high-confidence searches prefetch fewer
// to save memory and bandwidth.
func Threshold(score float64) float64 {
	return tensor.Clip(1-score, 0, 1)
}

// SelectExperts returns the experts to prefetch for one layer given the
// searched map's distribution and the search score: the smallest
// highest-probability set whose cumulative probability reaches δ(score),
// but never fewer than topK experts (Eq. 6–8).
func SelectExperts(probs []float64, score float64, topK int) []int {
	return tensor.CumulativeTopSet(probs, Threshold(score), topK)
}

// SelectExpertsStatic returns a fixed top-K selection, the Map(T+S) ablation
// of Fig. 14a that disables the dynamic threshold.
func SelectExpertsStatic(probs []float64, topK int) []int {
	return tensor.TopK(probs, topK)
}

// PrefetchPriority returns the paper's prefetching priority
// p/(l − l_now) (§4.5): higher-probability experts closer to the current
// layer transfer first.
func PrefetchPriority(p float64, layer, lNow int) float64 {
	dist := layer - lNow
	if dist < 1 {
		dist = 1
	}
	return p / float64(dist)
}

// EvictPriority returns the paper's eviction priority 1/(p·freq) (§4.5):
// experts that are unlikely under the searched map and rarely hit evict
// first. p is floored to keep never-predicted experts finite but maximally
// evictable.
func EvictPriority(p float64, freq int) float64 {
	const pFloor = 1e-3
	if p < pFloor {
		p = pFloor
	}
	if freq < 1 {
		freq = 1
	}
	return 1 / (p * float64(freq))
}
