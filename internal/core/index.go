package core

import (
	"math"
	"slices"
	"sync"

	"finemoe/internal/tensor"
)

// semIndex is an IVF-style centroid-clustered inverted index over the
// store's semantic embeddings, making expert-map search sublinear in the
// store population. Stored maps are bucketed under k centroids maintained
// as exact running means (a sequential k-means): the first k insertions
// seed the centroids, later insertions join the nearest centroid, and
// evictions subtract their contribution — so membership changes keep every
// centroid at the exact mean of its current members with O(k·dim) work per
// mutation and no global re-clustering pass.
//
// A search ranks centroids by similarity to the query and scans the top
// nprobe buckets; nprobe <= 0 probes everything (exact mode), which the
// scan specializes into a sequential sweep of the contiguous embedding
// arena — the store's slot space is dense, so every slot below the
// population count is live.
//
// Scans are two-phase. The fast phase streams the float32 arena with
// tensor.FastDotF32 (SIMD on amd64, pairwise-tree scalar elsewhere) and a
// sqrt/division-free ranking key, keeping every candidate within a
// conservative margin of the running best.
// The exact phase re-scores those few candidates with the brute-force
// arithmetic — float64(float32) products accumulated in strict element
// order against cached squared norms — and picks the winner under
// (score desc, slot asc), the ordering a linear scan's ">" induces. A
// float32 dot over dim elements differs from the float64 cosine by at
// most ~dim·2⁻²⁴ ≈ 4e-6 (norm-independent: Σ|aᵢbᵢ| ≤ |a||b|), so with
// scanEps = 1e-3 the fast phase can never exclude the true winner, and
// exact mode returns byte-identical results to the seed's brute force —
// the contract pinned by the parity tests in index_test.go.
//
// The index is owned by Store and guarded by the store's lock; it has no
// locking of its own.
type semIndex struct {
	dim int
	k   int

	// Cluster state. sums[c] is the un-normalized vector sum of bucket c's
	// member embeddings (float64, so the mean is exact under adds and
	// removes); counts[c] is the membership; buckets[c] lists member slots.
	sums    [][]float64
	counts  []int
	buckets [][]int32

	// Per-slot state, indexed by store slot. slotCluster is -1 for slots
	// not yet populated; slotPos is the slot's position inside its bucket
	// (for O(1) swap-removal). sems is the capacity×dim contiguous float32
	// embedding arena both scan phases read; norm2 caches ||sem||² per
	// slot in float64 (accumulated exactly as CosineF32 would).
	slotCluster []int32
	slotPos     []int32
	sems        []float32
	norm2       []float64
	invNorm2    []float64
}

// scanScratch is one search's reusable buffers. Searches run under the
// store's read lock and may therefore be concurrent, so scratch cannot
// live on the index — it is pooled per call instead.
type scanScratch struct {
	near []slotScore
	ids  []int32
	sims []float64
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

// scanEps is the fast-phase retention margin on cosine scores. It must
// exceed twice the float32 scan's worst-case absolute error (~4e-6 for
// dim ≤ 1024); 1e-3 leaves two orders of magnitude of slack.
const scanEps = 1e-3

// IndexClusters reports the cluster count the semantic index uses for a
// store capacity: ~√capacity, clamped to [1, 256] — 32 clusters for the
// paper's 1K store. Exported so experiments can translate an nprobe knob
// into a probed fraction.
func IndexClusters(capacity int) int { return indexClusters(capacity) }

// indexClusters picks the cluster count for a store capacity.
func indexClusters(capacity int) int {
	k := int(math.Ceil(math.Sqrt(float64(capacity))))
	if k < 1 {
		k = 1
	}
	if k > 256 {
		k = 256
	}
	return k
}

func newSemIndex(dim, capacity int) *semIndex {
	k := indexClusters(capacity)
	ix := &semIndex{
		dim:         dim,
		k:           k,
		sums:        make([][]float64, k),
		counts:      make([]int, k),
		buckets:     make([][]int32, k),
		slotCluster: make([]int32, capacity),
		slotPos:     make([]int32, capacity),
		sems:        make([]float32, capacity*dim),
		norm2:       make([]float64, capacity),
		invNorm2:    make([]float64, capacity),
	}
	for c := range ix.sums {
		ix.sums[c] = make([]float64, dim)
	}
	for i := range ix.slotCluster {
		ix.slotCluster[i] = -1
	}
	return ix
}

// sem returns slot's embedding view into the arena.
//
//finemoe:hotpath
func (ix *semIndex) sem(slot int32) []float32 {
	return ix.sems[int(slot)*ix.dim : (int(slot)+1)*ix.dim]
}

// insert places sem at slot: the embedding is copied into the arena, its
// norm cached, and the slot joins an empty centroid (seeding) or the
// nearest one. The slot must be empty (fresh or just removed).
func (ix *semIndex) insert(slot int, sem []float32) {
	copy(ix.sem(int32(slot)), sem)
	n2 := tensor.Norm2F32(sem)
	ix.norm2[slot] = n2
	if n2 > 0 {
		ix.invNorm2[slot] = 1 / n2
	} else {
		ix.invNorm2[slot] = 0
	}
	c := ix.chooseCluster(slot)
	ix.slotCluster[slot] = int32(c)
	ix.slotPos[slot] = int32(len(ix.buckets[c]))
	ix.buckets[c] = append(ix.buckets[c], int32(slot))
	ix.counts[c]++
	sum := ix.sums[c]
	for i, x := range sem {
		sum[i] += float64(x)
	}
}

// remove detaches slot from its bucket (swap-removal) and subtracts its
// embedding from the centroid sum. No-op for empty slots.
func (ix *semIndex) remove(slot int) {
	c := ix.slotCluster[slot]
	if c < 0 {
		return
	}
	b := ix.buckets[c]
	pos := ix.slotPos[slot]
	last := int32(len(b) - 1)
	moved := b[last]
	b[pos] = moved
	ix.slotPos[moved] = pos
	ix.buckets[c] = b[:last]
	ix.counts[c]--
	sum := ix.sums[c]
	for i, x := range ix.sem(int32(slot)) {
		sum[i] -= float64(x)
	}
	ix.slotCluster[slot] = -1
}

// chooseCluster returns the cluster a fresh slot joins: the lowest-id
// empty cluster when one exists (this both seeds the index over the first
// k insertions and re-seeds buckets drained by evictions), otherwise the
// centroid with the highest cosine similarity (ties toward the lower id,
// for determinism).
//
//finemoe:hotpath
func (ix *semIndex) chooseCluster(slot int) int {
	best, bestSim := -1, math.Inf(-1)
	s := ix.sem(int32(slot))
	for c := 0; c < ix.k; c++ {
		if ix.counts[c] == 0 {
			return c
		}
		if sim := ix.centroidSimF32(c, s); sim > bestSim {
			best, bestSim = c, sim
		}
	}
	return best
}

// centroidSimF32 scores cluster c's centroid against a stored embedding.
// The centroid is sums[c]/counts[c]; the count cancels out of the cosine,
// so the un-normalized sum is used directly.
//
//finemoe:hotpath
func (ix *semIndex) centroidSimF32(c int, s []float32) float64 {
	var dot, n2 float64
	sum := ix.sums[c]
	for i, x := range sum {
		dot += x * float64(s[i])
		n2 += x * x
	}
	if n2 == 0 {
		return 0
	}
	return dot / math.Sqrt(n2)
}

// centroidSim scores cluster c's centroid against a float64 query (probe
// ordering).
//
//finemoe:hotpath
func (ix *semIndex) centroidSim(c int, q []float64) float64 {
	var dot, n2 float64
	sum := ix.sums[c]
	for i, x := range sum {
		dot += x * q[i]
		n2 += x * x
	}
	if n2 == 0 {
		return 0
	}
	return dot / math.Sqrt(n2)
}

// active returns the number of non-empty clusters.
func (ix *semIndex) active() int {
	n := 0
	for _, c := range ix.counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// probeOrder fills the scratch probe list with the non-empty clusters
// ranked by centroid similarity to the query (ties toward the lower id)
// and returns the ranked ids truncated to nprobe.
//
//finemoe:hotpath
func (ix *semIndex) probeOrder(sc *scanScratch, q []float64, nprobe int) []int32 {
	ids := sc.ids[:0]
	sims := sc.sims[:0]
	for c := 0; c < ix.k; c++ {
		if ix.counts[c] == 0 {
			continue
		}
		ids = append(ids, int32(c))
		sims = append(sims, ix.centroidSim(c, q))
	}
	sc.ids, sc.sims = ids, sims
	// Insertion sort by (similarity desc, id asc): k is small (≤256) and
	// the inline sort keeps probe ordering allocation-free.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && (sims[j] > sims[j-1] ||
			(sims[j] == sims[j-1] && ids[j] < ids[j-1])); j-- {
			sims[j], sims[j-1] = sims[j-1], sims[j]
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids[:nprobe]
}

// exactScore recomputes slot's cosine against the query with the
// brute-force arithmetic: float64(float32) products accumulated in strict
// element order, combined with the cached norms — bit-identical to
// tensor.CosineF32 on the same vectors.
//
//finemoe:hotpath
func (ix *semIndex) exactScore(q *Query, slot int32) float64 {
	s := ix.sem(slot)
	q64 := q.sem64[:len(s)]
	var d float64
	for k, qk := range q64 {
		d += qk * float64(s[k])
	}
	return tensor.CosineWithNorms(d, q.norm2, ix.norm2[slot])
}

// fastKey maps a float32 fast dot to a sqrt- and division-free ranking
// key: sign(dot)·dot²·(1/||sem||²). For a fixed query, the key orders
// candidates exactly as the cosine does (sign·cos² is monotone in cos and
// the query norm is a shared positive factor), so the fast phase never
// pays the per-candidate sqrt a cosine would. Zero-norm embeddings key to
// 0, matching CosineF32's zero-norm convention.
//
//finemoe:hotpath
func (ix *semIndex) fastKey(dot float32, slot int32) float64 {
	d := float64(dot)
	key := d * d * ix.invNorm2[slot]
	if d < 0 {
		return -key
	}
	return key
}

// keyEps converts the scanEps cosine margin into key space for a query:
// |d(key)/d(cos)| = 2·|cos|·qn2 ≤ 2·qn2, so a key margin of 2·qn2·scanEps
// retains every candidate within scanEps cosine of the best.
func keyEps(qn2 float64) float64 { return 2 * qn2 * scanEps }

// keepNear folds one fast-phase candidate into the near-best scratch:
// candidates within eps (key space) of the running best are retained for
// exact re-scoring; a new best lazily invalidates stale entries (filtered
// in resolve).
//
//finemoe:hotpath
func (ix *semIndex) keepNear(sc *scanScratch, slot int32, key, best, eps float64) float64 {
	if key >= best-eps {
		sc.near = append(sc.near, slotScore{slot, key})
		if key > best {
			best = key
		}
	}
	return best
}

// resolve exact-rescores the retained near-best candidates and returns
// the winner under (score desc, slot asc). Returns slot -1 when the fast
// phase retained nothing (empty probe set).
//
//finemoe:hotpath
func (ix *semIndex) resolve(sc *scanScratch, q *Query, best, eps float64) (int32, float64) {
	bestSlot, bestScore := int32(-1), math.Inf(-1)
	for _, c := range sc.near {
		if c.score < best-eps {
			continue // stale: superseded by a later, better fast key
		}
		score := ix.exactScore(q, c.slot)
		if score > bestScore || (score == bestScore && c.slot < bestSlot) {
			bestSlot, bestScore = c.slot, score
		}
	}
	return bestSlot, bestScore
}

// scanAllFast sweeps slots [0, n) in arena order — the exact-mode fast
// phase. The kernel blocks eight slots per pass with one float32
// accumulator chain each; the sweep streams the arena sequentially, which
// the hardware prefetcher follows. Returns the running fast best after
// folding every candidate into the near-best scratch.
//
//finemoe:hotpath
func (ix *semIndex) scanAllFast(sc *scanScratch, q *Query, n int, best float64) float64 {
	dim := ix.dim
	qf := q.semF[:dim]
	eps := keyEps(q.norm2)
	slot := 0
	for ; slot+4 <= n; slot += 4 {
		d0, d1, d2, d3 := tensor.FastDot4F32(qf, ix.sems[slot*dim:(slot+4)*dim], dim)
		best = ix.keepNear(sc, int32(slot), ix.fastKey(d0, int32(slot)), best, eps)
		best = ix.keepNear(sc, int32(slot+1), ix.fastKey(d1, int32(slot+1)), best, eps)
		best = ix.keepNear(sc, int32(slot+2), ix.fastKey(d2, int32(slot+2)), best, eps)
		best = ix.keepNear(sc, int32(slot+3), ix.fastKey(d3, int32(slot+3)), best, eps)
	}
	for ; slot < n; slot++ {
		best = ix.keepNear(sc, int32(slot),
			ix.fastKey(tensor.FastDotF32(qf, ix.sems[slot*dim:][:dim]), int32(slot)), best, eps)
	}
	return best
}

// scanBucketFast runs the fast phase over one bucket's (scattered) slots.
//
//finemoe:hotpath
func (ix *semIndex) scanBucketFast(sc *scanScratch, q *Query, b []int32, best float64) float64 {
	dim := ix.dim
	qf := q.semF[:dim]
	eps := keyEps(q.norm2)
	for _, slot := range b {
		d := tensor.FastDotF32(qf, ix.sems[int(slot)*dim:][:dim])
		best = ix.keepNear(sc, slot, ix.fastKey(d, slot), best, eps)
	}
	return best
}

// search returns the best slot over the probed candidates under
// (score desc, slot asc) with the exact brute-force score. Probe-all mode
// (nprobe <= 0, or nprobe covering every active cluster) scans the n live
// slots via the sequential arena sweep and returns byte-identical results
// to the seed's linear scan. Returns slot -1 on an empty index.
//
//finemoe:hotpath
func (ix *semIndex) search(q *Query, nprobe, n int) (int32, float64) {
	sc := scanScratchPool.Get().(*scanScratch)
	sc.near = sc.near[:0]
	best := math.Inf(-1)
	if nprobe <= 0 || nprobe >= ix.active() {
		best = ix.scanAllFast(sc, q, n, best)
	} else {
		for _, c := range ix.probeOrder(sc, q.Sem, nprobe) {
			best = ix.scanBucketFast(sc, q, ix.buckets[c], best)
		}
	}
	slot, score := ix.resolve(sc, q, best, keyEps(q.norm2))
	scanScratchPool.Put(sc)
	return slot, score
}

// slotScore pairs a store slot with its semantic score for top-N
// selection.
type slotScore struct {
	slot  int32
	score float64
}

// topN computes the probed candidates' top keep under the exact
// (score desc, slot asc) order — the brute-force prefilter's comparator.
// The fast phase scores every probed slot into dst; the boundary region
// (fast score within scanEps of the keep-th best) is re-scored exactly, so
// the selection and its ordering match a full exact sort. n is the live
// population; dst is a caller-owned scratch (pooled by the searcher); the
// returned slice aliases it.
func (ix *semIndex) topN(q *Query, nprobe, keep, n int, dst []slotScore) []slotScore {
	dim := ix.dim
	qf := q.semF[:dim]
	if nprobe <= 0 || nprobe >= ix.active() {
		slot := 0
		for ; slot+4 <= n; slot += 4 {
			d0, d1, d2, d3 := tensor.FastDot4F32(qf, ix.sems[slot*dim:(slot+4)*dim], dim)
			dst = append(dst,
				slotScore{int32(slot), ix.fastKey(d0, int32(slot))},
				slotScore{int32(slot + 1), ix.fastKey(d1, int32(slot+1))},
				slotScore{int32(slot + 2), ix.fastKey(d2, int32(slot+2))},
				slotScore{int32(slot + 3), ix.fastKey(d3, int32(slot+3))})
		}
		for ; slot < n; slot++ {
			d := tensor.FastDotF32(qf, ix.sems[slot*dim:][:dim])
			dst = append(dst, slotScore{int32(slot), ix.fastKey(d, int32(slot))})
		}
	} else {
		sc := scanScratchPool.Get().(*scanScratch)
		for _, c := range ix.probeOrder(sc, q.Sem, nprobe) {
			for _, slot := range ix.buckets[c] {
				d := tensor.FastDotF32(qf, ix.sems[int(slot)*dim:][:dim])
				dst = append(dst, slotScore{slot, ix.fastKey(d, slot)})
			}
		}
		scanScratchPool.Put(sc)
	}
	sortSlotScores(dst)
	if keep <= 0 || keep >= len(dst) {
		// Everything survives: re-score exactly and order by the exact
		// comparator.
		for i := range dst {
			dst[i].score = ix.exactScore(q, dst[i].slot)
		}
		sortSlotScores(dst)
		return dst
	}
	// Exact re-score of the boundary region: every candidate whose fast
	// score could still belong in the exact top keep.
	cut := dst[keep-1].score - keyEps(q.norm2)
	m := keep
	for m < len(dst) && dst[m].score >= cut {
		m++
	}
	region := dst[:m]
	for i := range region {
		region[i].score = ix.exactScore(q, region[i].slot)
	}
	sortSlotScores(region)
	return region[:keep]
}

// sortSlotScores orders by (score desc, slot asc) — a strict total order,
// so the result is deterministic.
func sortSlotScores(ss []slotScore) {
	slices.SortFunc(ss, func(a, b slotScore) int {
		switch {
		case a.score > b.score:
			return -1
		case a.score < b.score:
			return 1
		case a.slot < b.slot:
			return -1
		case a.slot > b.slot:
			return 1
		}
		return 0
	})
}
