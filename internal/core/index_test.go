package core

import (
	"testing"

	"finemoe/internal/moe"
	"finemoe/internal/rng"
	"finemoe/internal/tensor"
)

// randomStore builds a store of n synthetic maps over capacity cap,
// exercising both the fill phase and the dedup-eviction phase when
// n > cap.
func randomStore(cfg moe.Config, capacity, n int, seed uint64) *Store {
	s := NewStore(cfg, capacity, 2)
	for i := 0; i < n; i++ {
		s.Add(RandomExpertMap(cfg, uint64(i), seed))
	}
	return s
}

// checkIndexInvariants asserts the clustered index's structural contract:
// every live slot sits in exactly one bucket at its recorded position,
// bucket counts match, and every centroid sum equals the exact vector sum
// of its members.
func checkIndexInvariants(t *testing.T, s *Store) {
	t.Helper()
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix := s.index
	seen := map[int32]bool{}
	total := 0
	for c, b := range ix.buckets {
		if len(b) != ix.counts[c] {
			t.Fatalf("cluster %d: bucket len %d != count %d", c, len(b), ix.counts[c])
		}
		total += len(b)
		sum := make([]float64, ix.dim)
		for pos, slot := range b {
			if seen[slot] {
				t.Fatalf("slot %d in more than one bucket", slot)
			}
			seen[slot] = true
			if int(slot) >= len(s.maps) {
				t.Fatalf("cluster %d holds dead slot %d (population %d)", c, slot, len(s.maps))
			}
			if ix.slotCluster[slot] != int32(c) || ix.slotPos[slot] != int32(pos) {
				t.Fatalf("slot %d: recorded (cluster=%d pos=%d), actual (%d, %d)",
					slot, ix.slotCluster[slot], ix.slotPos[slot], c, pos)
			}
			// The arena embedding must be the live map's embedding.
			sem := ix.sem(slot)
			for i, x := range s.maps[slot].Sem {
				if sem[i] != x {
					t.Fatalf("slot %d: arena embedding diverged at %d", slot, i)
				}
				sum[i] += float64(x)
			}
			if got, want := ix.norm2[slot], tensor.Norm2F32(s.maps[slot].Sem); got != want {
				t.Fatalf("slot %d: cached norm² %v != %v", slot, got, want)
			}
		}
		for i, x := range sum {
			if diff := ix.sums[c][i] - x; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("cluster %d: centroid sum drifted by %v at dim %d", c, diff, i)
			}
		}
	}
	if total != len(s.maps) {
		t.Fatalf("index covers %d slots, population is %d", total, len(s.maps))
	}
}

// TestIndexedSearchParity is the exact-mode contract: across seeded random
// stores — growing, at capacity, and churned past capacity by dedup
// eviction — the indexed probe-all search must return the identical
// SearchResult (same *ExpertMap pointer, bit-identical score) as the
// seed's brute-force linear scan.
func TestIndexedSearchParity(t *testing.T) {
	cfg := moe.Tiny()
	for _, tc := range []struct{ capacity, n int }{
		{50, 1}, {50, 7}, {50, 50}, {50, 180}, {200, 500},
	} {
		for seed := uint64(0); seed < 4; seed++ {
			s := randomStore(cfg, tc.capacity, tc.n, 1000+seed)
			checkIndexInvariants(t, s)
			searcher := NewSearcher(s, 0)
			r := rng.New(rng.Mix(7, seed))
			for trial := 0; trial < 25; trial++ {
				q := make([]float64, cfg.SemDim)
				r.UnitVec(q)
				got, okGot := searcher.SemanticSearch(q)
				want, okWant := searcher.BruteForceSemanticSearch(q)
				if okGot != okWant {
					t.Fatalf("cap=%d n=%d: ok mismatch", tc.capacity, tc.n)
				}
				if got.Map != want.Map || got.Score != want.Score {
					t.Fatalf("cap=%d n=%d seed=%d: indexed (%p, %v) != brute (%p, %v)",
						tc.capacity, tc.n, seed, got.Map, got.Score, want.Map, want.Score)
				}
			}
		}
	}
}

// TestIndexedCursorParity pins the prefiltered trajectory candidate set:
// exact-mode top-N selection through the index must produce the same
// candidates in the same order as the seed's sort over a full snapshot,
// and therefore bit-identical Best results layer by layer.
func TestIndexedCursorParity(t *testing.T) {
	cfg := moe.Tiny()
	s := randomStore(cfg, 120, 300, 42)
	const prefilter = 16
	searcher := NewSearcher(s, prefilter)
	r := rng.New(99)
	probs := make([]float64, cfg.RoutedExperts)
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, cfg.SemDim)
		r.UnitVec(q)

		// Seed reference: score every snapshot entry, sort by
		// (score desc, index asc), take the top prefilter.
		snap := s.Snapshot()
		qf := tensor.Float32s(q)
		type scored struct {
			i int
			c float64
		}
		ss := make([]scored, len(snap))
		for i, m := range snap {
			ss[i] = scored{i, tensor.CosineF32(qf, m.Sem)}
		}
		for i := 1; i < len(ss); i++ { // insertion sort: stable total order
			for j := i; j > 0; j-- {
				a, b := ss[j-1], ss[j]
				if a.c > b.c || (a.c == b.c && a.i < b.i) {
					break
				}
				ss[j-1], ss[j] = b, a
			}
		}

		cur := searcher.NewCursor(q)
		if len(cur.cands) != prefilter {
			t.Fatalf("prefilter candidates %d, want %d", len(cur.cands), prefilter)
		}
		for i, m := range cur.cands {
			if m != snap[ss[i].i] {
				t.Fatalf("trial %d: candidate %d is %p, want %p", trial, i, m, snap[ss[i].i])
			}
		}
		for l := 0; l < cfg.Layers; l++ {
			for j := range probs {
				probs[j] = r.Float64()
			}
			tensor.Normalize1(probs)
			cur.Observe(probs)
		}
		res, ok := cur.Best()
		if !ok {
			t.Fatal("cursor found nothing")
		}
		if res.Map == nil {
			t.Fatal("nil best map")
		}
		cur.Release()
	}
}

// TestIndexEvictionInvariants churns a small store far past capacity under
// both replacement rules and re-checks the structural invariants, then
// verifies search parity still holds on the churned population.
func TestIndexEvictionInvariants(t *testing.T) {
	cfg := moe.Tiny()
	for _, fifo := range []bool{false, true} {
		s := NewStore(cfg, 30, 2)
		s.SetDedupDisabled(fifo)
		for i := 0; i < 400; i++ {
			s.Add(RandomExpertMap(cfg, uint64(i), 5))
			if i%97 == 0 {
				checkIndexInvariants(t, s)
			}
		}
		checkIndexInvariants(t, s)
		searcher := NewSearcher(s, 0)
		r := rng.New(11)
		for trial := 0; trial < 10; trial++ {
			q := make([]float64, cfg.SemDim)
			r.UnitVec(q)
			got, _ := searcher.SemanticSearch(q)
			want, _ := searcher.BruteForceSemanticSearch(q)
			if got.Map != want.Map || got.Score != want.Score {
				t.Fatalf("fifo=%v: post-churn parity broken", fifo)
			}
		}
	}
}

// TestIndexCloneParity: a cloned store rebuilds its index from the copied
// population and must search identically to brute force.
func TestIndexCloneParity(t *testing.T) {
	cfg := moe.Tiny()
	s := randomStore(cfg, 60, 150, 9)
	c := s.Clone()
	checkIndexInvariants(t, c)
	searcher := NewSearcher(c, 0)
	r := rng.New(13)
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, cfg.SemDim)
		r.UnitVec(q)
		got, _ := searcher.SemanticSearch(q)
		want, _ := searcher.BruteForceSemanticSearch(q)
		if got.Map != want.Map || got.Score != want.Score {
			t.Fatal("clone parity broken")
		}
	}
	// Post-clone churn on the clone must not disturb the original's index.
	for i := 0; i < 100; i++ {
		c.Add(RandomExpertMap(cfg, uint64(1000+i), 9))
	}
	checkIndexInvariants(t, s)
	checkIndexInvariants(t, c)
}

// TestApproximateSearchSubset: with nprobe=1 the approximate search must
// return a real stored map whose score never exceeds the exact best, and
// snapshots must stay zero-copy between mutations.
func TestApproximateSearch(t *testing.T) {
	cfg := moe.Tiny()
	s := randomStore(cfg, 100, 250, 21)
	exact := NewSearcher(s, 0)
	approx := NewSearcher(s, 0)
	approx.SetNProbe(1)
	if approx.NProbe() != 1 || exact.NProbe() != 0 {
		t.Fatal("nprobe accessors wrong")
	}
	if approx.SemanticLatencyMS() >= exact.SemanticLatencyMS() {
		t.Fatal("approximate search must model lower latency than exact")
	}
	r := rng.New(17)
	agreed := 0
	for trial := 0; trial < 50; trial++ {
		q := make([]float64, cfg.SemDim)
		r.UnitVec(q)
		ga, okA := approx.SemanticSearch(q)
		ge, okE := exact.SemanticSearch(q)
		if !okA || !okE {
			t.Fatal("search failed on populated store")
		}
		if ga.Score > ge.Score {
			t.Fatalf("approximate score %v beats exact %v", ga.Score, ge.Score)
		}
		if ga.Map == ge.Map {
			agreed++
		}
	}
	// Sanity floor only: these embeddings are uniform random (no topic
	// structure), the worst case for a clustered index. The searchfig
	// experiment measures recall on topic-structured workloads.
	if agreed < 10 {
		t.Fatalf("nprobe=1 recall %d/50 implausibly low", agreed)
	}
}

// TestSnapshotZeroCopy pins the generation contract: unchanged stores hand
// out the same backing slice; a mutation invalidates it exactly once.
func TestSnapshotZeroCopy(t *testing.T) {
	cfg := moe.Tiny()
	s := randomStore(cfg, 50, 10, 3)
	a, b := s.Snapshot(), s.Snapshot()
	if &a[0] != &b[0] || len(a) != len(b) {
		t.Fatal("repeated snapshots of an unchanged store must share backing")
	}
	gen := s.Generation()
	s.Add(RandomExpertMap(cfg, 99, 3))
	if s.Generation() == gen {
		t.Fatal("Add did not bump the generation")
	}
	c := s.Snapshot()
	if len(c) != 11 {
		t.Fatalf("post-add snapshot length %d", len(c))
	}
	// The pre-mutation snapshot is untouched.
	if len(a) != 10 {
		t.Fatalf("old snapshot length changed: %d", len(a))
	}
}
