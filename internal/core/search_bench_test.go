package core

import (
	"fmt"
	"testing"

	"finemoe/internal/moe"
	"finemoe/internal/rng"
)

// benchStore builds the canonical benchmark population on the
// Mixtral-dimension semantic space (shared with finemoe-bench
// -searchbench via SearchBenchStore).
func benchStore(n int) (*Store, []float64) {
	return SearchBenchStore(moe.Mixtral8x7B(), n)
}

// BenchmarkSemanticSearch measures exact-mode indexed semantic search —
// the per-iteration hot path — at several store sizes. Compare against
// BenchmarkSemanticSearchBrute for the indexed speedup (the acceptance
// target: ≥5× at 10K maps, ~0 allocs/op in steady state).
func BenchmarkSemanticSearch(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("store=%d", n), func(b *testing.B) {
			s, sem := benchStore(n)
			searcher := NewSearcher(s, 0)
			q := searcher.Prepare(sem)
			defer q.Release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				searcher.SemanticSearchQ(q)
			}
		})
	}
}

// BenchmarkSemanticSearchApprox measures the opt-in approximate mode
// (nprobe=4 of ~√n clusters).
func BenchmarkSemanticSearchApprox(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("store=%d", n), func(b *testing.B) {
			s, sem := benchStore(n)
			searcher := NewSearcher(s, 0)
			searcher.SetNProbe(4)
			q := searcher.Prepare(sem)
			defer q.Release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				searcher.SemanticSearchQ(q)
			}
		})
	}
}

// BenchmarkSemanticSearchBrute is the seed's linear scan (snapshot copy +
// full cosine per candidate), kept as the speedup baseline.
func BenchmarkSemanticSearchBrute(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("store=%d", n), func(b *testing.B) {
			s, sem := benchStore(n)
			searcher := NewSearcher(s, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				searcher.BruteForceSemanticSearch(sem)
			}
		})
	}
}

// BenchmarkCursorObserve measures one trajectory-prefix extension over the
// default 128-candidate prefilter.
func BenchmarkCursorObserve(b *testing.B) {
	s, sem := benchStore(1000)
	cfg := s.Config()
	searcher := NewSearcher(s, 128)
	probs := make([]float64, cfg.RoutedExperts)
	r := rng.New(5)
	for j := range probs {
		probs[j] = r.Float64()
	}
	cur := searcher.NewCursor(sem)
	used := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if used == cfg.Layers {
			b.StopTimer()
			cur.Release()
			cur = searcher.NewCursor(sem)
			used = 0
			b.StartTimer()
		}
		cur.Observe(probs)
		used++
	}
}

// BenchmarkNewCursor measures prefiltered cursor construction (indexed
// top-N selection) on a 1K store.
func BenchmarkNewCursor(b *testing.B) {
	s, sem := benchStore(1000)
	searcher := NewSearcher(s, 128)
	q := searcher.Prepare(sem)
	defer q.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		searcher.NewCursorQ(q).Release()
	}
}

// BenchmarkStoreAdd measures steady-state insertion at capacity: one
// redundancy-scored dedup eviction plus the incremental index update.
func BenchmarkStoreAdd(b *testing.B) {
	cfg := moe.Mixtral8x7B()
	n := 1000
	s := NewStore(cfg, n, cfg.OptimalPrefetchDistance)
	maps := make([]*ExpertMap, 2*n)
	for i := range maps {
		maps[i] = RandomExpertMap(cfg, uint64(i), 31)
	}
	for i := 0; i < n; i++ {
		s.Add(maps[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(maps[i%len(maps)])
	}
}
