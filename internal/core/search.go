package core

import (
	"math"
	"sync"

	"finemoe/internal/moe"
	"finemoe/internal/tensor"
)

// SearchResult is a searched expert map with its similarity score — the
// score drives the dynamic selection threshold δ (§4.3).
type SearchResult struct {
	Map   *ExpertMap
	Score float64
}

// Searcher implements the Expert Map Searcher (§4.2): semantic-based search
// guides prefetching for layers [1, d] where no trajectory has been observed
// yet, and trajectory-based prefix search guides layers [d+1, L].
//
// Searches run against the store's centroid-clustered index (index.go).
// The default probe-all mode returns byte-identical results to the seed's
// brute-force linear scan; SetNProbe opts into approximate search that
// scans only the nprobe most similar clusters — the hit-rate/latency
// trade-off the searchfig experiment quantifies.
type Searcher struct {
	store *Store
	cfg   moe.Config
	// prefilter bounds trajectory-search candidates to the top-N maps by
	// semantic similarity (0 = search the whole store, the paper's exact
	// formulation; the prefilter is a performance optimization recorded
	// in DESIGN.md §6).
	prefilter int
	// nprobe bounds the semantic index probe (<= 0 = probe every cluster:
	// exact mode).
	nprobe int
}

// NewSearcher builds a searcher over the store. prefilter <= 0 searches the
// full store for trajectories.
func NewSearcher(store *Store, prefilter int) *Searcher {
	return &Searcher{store: store, cfg: store.Config(), prefilter: prefilter}
}

// SetNProbe bounds the clustered index probe to the n most query-similar
// buckets per search. n <= 0 restores exact (probe-all) mode.
func (s *Searcher) SetNProbe(n int) { s.nprobe = n }

// NProbe returns the configured probe bound (0 = exact).
func (s *Searcher) NProbe() int {
	if s.nprobe <= 0 {
		return 0
	}
	return s.nprobe
}

// Query is a prepared search query: the semantic embedding converted to
// the store's float32 precision exactly once, with its squared norm
// cached. One Query serves both the semantic search and the trajectory
// cursor of an iteration (the seed converted twice per iteration).
// Queries come from an internal pool — Release recycles one after its
// last use.
type Query struct {
	// Sem is the original float64 embedding (probe ordering reads it).
	Sem  []float64
	semF []float32
	// sem64 is float64(semF[i]) — the float32-rounded embedding widened
	// back once, so the scan kernel skips one conversion per element per
	// candidate while reproducing CosineF32's float64 arithmetic exactly.
	sem64 []float64
	norm2 float64
}

var queryPool = sync.Pool{New: func() any { return new(Query) }}

// Prepare converts a semantic embedding into a pooled Query. The Query
// borrows sem (no copy); it is valid until Release.
//
//finemoe:hotpath
func (s *Searcher) Prepare(sem []float64) *Query {
	q := queryPool.Get().(*Query)
	if cap(q.semF) < len(sem) {
		q.semF = make([]float32, len(sem))
		q.sem64 = make([]float64, len(sem))
	}
	q.semF = q.semF[:len(sem)]
	q.sem64 = q.sem64[:len(sem)]
	for i, x := range sem {
		f := float32(x)
		q.semF[i] = f
		q.sem64[i] = float64(f)
	}
	q.Sem = sem
	q.norm2 = tensor.Norm2F32(q.semF)
	return q
}

// Release returns the query to the pool. The query must not be used after.
func (q *Query) Release() {
	if q == nil {
		return
	}
	q.Sem = nil
	queryPool.Put(q)
}

// SemanticSearch returns the stored map with the highest cosine similarity
// between semantic embeddings (Eq. 4), or ok=false on an empty store.
// It prepares a throwaway query; callers also starting a cursor should
// Prepare once and use SemanticSearchQ + NewCursorQ.
func (s *Searcher) SemanticSearch(sem []float64) (SearchResult, bool) {
	q := s.Prepare(sem)
	res, ok := s.SemanticSearchQ(q)
	q.Release()
	return res, ok
}

// SemanticSearchQ runs the semantic search for a prepared query through
// the store's clustered index.
//
//finemoe:hotpath
func (s *Searcher) SemanticSearchQ(q *Query) (SearchResult, bool) {
	return s.store.semSearch(q, s.nprobe)
}

// BruteForceSemanticSearch is the seed's linear scan over a full store
// snapshot, kept as the reference implementation: the parity tests pin
// exact-mode indexed search to its byte-identical result, and the search
// benchmarks report the indexed speedup against it.
func (s *Searcher) BruteForceSemanticSearch(sem []float64) (SearchResult, bool) {
	snap := s.store.Snapshot()
	if len(snap) == 0 {
		return SearchResult{}, false
	}
	semF := tensor.Float32s(sem)
	best, bestScore := -1, -2.0
	for i, m := range snap {
		if c := tensor.CosineF32(semF, m.Sem); c > bestScore {
			best, bestScore = i, c
		}
	}
	return SearchResult{Map: snap[best], Score: bestScore}, true
}

// Search-latency model constants. The seed charged semCosineCostMS per
// stored embedding float — a full three-accumulator cosine per candidate.
// The clustered index scans with cached norms and one fused dot per
// candidate, recalibrated to semScanCostMS (5× cheaper per float, matching
// the measured speedup in BENCH_search.json); centroid ranking still pays
// a full cosine per non-empty cluster.
const (
	searchBaseMS    = 0.05
	semCosineCostMS = 1.5e-6
	semScanCostMS   = 0.3e-6
	trajStepCostMS  = 1.5e-6
)

// SemanticLatencyMS models the wall-clock cost of one semantic search
// over the store, mirroring the implemented search phases: the cached-
// norm dot scan over the probed candidates — the full population in
// exact mode, ~population·nprobe/clusters when probing — plus, only when
// actually probing, the centroid-ranking pass (a full cosine per
// non-empty cluster; exact mode skips straight to the arena sweep and is
// charged nothing for centroids). The constants keep a 1K-map store at a
// fraction of a millisecond, matching the paper's negligible-overhead
// claim (§6.8), and the candidate count makes simulated TTFT reflect the
// index.
func (s *Searcher) SemanticLatencyMS() float64 {
	clusters, cands := s.store.probeStats(s.nprobe)
	dim := float64(s.cfg.SemDim)
	lat := searchBaseMS + semScanCostMS*float64(cands)*dim
	if s.nprobe > 0 && s.nprobe < clusters {
		lat += semCosineCostMS * float64(clusters) * dim
	}
	return lat
}

// TrajectoryLatencyMS models one trajectory-prefix search step over the
// cursor's candidate set: the semantic prefilter bound, further capped by
// the probed population in approximate mode.
func (s *Searcher) TrajectoryLatencyMS() float64 {
	_, cands := s.store.probeStats(s.nprobe)
	if s.prefilter > 0 && s.prefilter < cands {
		cands = s.prefilter
	}
	return searchBaseMS + trajStepCostMS*float64(cands)*float64(s.cfg.RoutedExperts)
}

// Cursor performs incremental trajectory-prefix search for one request
// iteration: each observed layer's gate distribution extends the prefix,
// and Best returns the most similar stored map under Eq. 5 over the
// observed prefix. Dot products and norms are maintained incrementally so
// each layer costs O(candidates × J). Cursors and their score buffers are
// pooled — Release one when its request completes.
type Cursor struct {
	cands    []*ExpertMap
	dots     []float64
	selfNorm float64
	layers   int
	j        int
	maxLayer int
	// ownsCands marks cands as pool-owned scratch (the prefiltered case);
	// false means cands aliases a shared store snapshot and must not be
	// recycled.
	ownsCands bool
	released  bool
	// scores is the pooled slotScore scratch the prefilter used, retained
	// for the next cursor.
	scores []slotScore
}

var cursorPool = sync.Pool{New: func() any { return new(Cursor) }}

// NewCursor starts a trajectory search for an iteration, preparing a
// throwaway query (see NewCursorQ). Returns nil if the store is empty.
func (s *Searcher) NewCursor(sem []float64) *Cursor {
	q := s.Prepare(sem)
	c := s.NewCursorQ(q)
	q.Release()
	return c
}

// NewCursorQ starts a trajectory search for a prepared query. The
// candidate set is the semantic top-N prefilter when configured (selected
// through the clustered index), otherwise the full store via a zero-copy
// snapshot. Returns nil if the store is empty.
//
//finemoe:hotpath
func (s *Searcher) NewCursorQ(q *Query) *Cursor {
	c := cursorPool.Get().(*Cursor)
	c.selfNorm, c.layers = 0, 0
	c.j, c.maxLayer = s.cfg.RoutedExperts, s.cfg.Layers
	c.released = false
	n := s.store.Len()
	if s.prefilter > 0 && s.prefilter < n {
		c.cands, c.scores = s.store.semTopN(q, s.nprobe, s.prefilter, c.cands[:0], c.scores)
		c.ownsCands = true
	} else {
		c.cands = s.store.Snapshot()
		c.ownsCands = false
	}
	if len(c.cands) == 0 {
		c.recycle()
		return nil
	}
	if cap(c.dots) < len(c.cands) {
		c.dots = make([]float64, len(c.cands))
	} else {
		c.dots = c.dots[:len(c.cands)]
		for i := range c.dots {
			c.dots[i] = 0
		}
	}
	return c
}

// Release recycles the cursor and its score buffers. Safe on nil; the
// cursor must not be used afterwards.
func (c *Cursor) Release() {
	if c == nil || c.released {
		return
	}
	c.recycle()
}

func (c *Cursor) recycle() {
	if !c.ownsCands {
		// cands aliases a shared snapshot — drop the reference instead of
		// recycling its backing array.
		c.cands = nil
	}
	c.released = true
	cursorPool.Put(c)
}

// Observe extends the prefix with the gate distribution of the next layer.
//
//finemoe:hotpath
func (c *Cursor) Observe(probs []float64) {
	if c == nil {
		return
	}
	if c.released {
		panic("core: Observe on a released cursor")
	}
	if c.layers >= c.maxLayer {
		panic("core: cursor observed more layers than the model has")
	}
	if len(probs) != c.j {
		panic("core: cursor observed wrong expert count")
	}
	base := c.layers * c.j
	// probs[:j] pins the loop bound to the row length the slice expression
	// below constructs, so the compiler drops the row[k] bounds checks in
	// the dot kernel (the length equality was asserted above).
	j := c.j
	probs = probs[:j]
	for i, m := range c.cands {
		row := m.Traj[base : base+j]
		var d float64
		for k, p := range probs {
			d += p * float64(row[k])
		}
		c.dots[i] += d
	}
	var n float64
	for _, p := range probs {
		n += p * p
	}
	c.selfNorm += n
	c.layers++
}

// Layers returns how many layers the cursor has observed.
func (c *Cursor) Layers() int {
	if c == nil {
		return 0
	}
	return c.layers
}

// Best returns the most similar stored map over the observed prefix
// (Eq. 5), or ok=false before any layer has been observed.
//
//finemoe:hotpath
func (c *Cursor) Best() (SearchResult, bool) {
	if c == nil || c.layers == 0 || c.selfNorm == 0 {
		return SearchResult{}, false
	}
	if c.released {
		panic("core: Best on a released cursor")
	}
	bestIdx, bestScore := -1, -2.0
	for i, m := range c.cands {
		pn := m.prefixNorm2[c.layers-1]
		if pn == 0 {
			continue
		}
		score := c.dots[i] / math.Sqrt(c.selfNorm*pn)
		if score > bestScore {
			bestIdx, bestScore = i, score
		}
	}
	if bestIdx < 0 {
		return SearchResult{}, false
	}
	return SearchResult{Map: c.cands[bestIdx], Score: tensor.Clip(bestScore, -1, 1)}, true
}
