package core

import (
	"math"
	"sort"

	"finemoe/internal/moe"
	"finemoe/internal/tensor"
)

// SearchResult is a searched expert map with its similarity score — the
// score drives the dynamic selection threshold δ (§4.3).
type SearchResult struct {
	Map   *ExpertMap
	Score float64
}

// Searcher implements the Expert Map Searcher (§4.2): semantic-based search
// guides prefetching for layers [1, d] where no trajectory has been observed
// yet, and trajectory-based prefix search guides layers [d+1, L].
type Searcher struct {
	store *Store
	cfg   moe.Config
	// prefilter bounds trajectory-search candidates to the top-N maps by
	// semantic similarity (0 = search the whole store, the paper's exact
	// formulation; the prefilter is a performance optimization recorded
	// in DESIGN.md §6).
	prefilter int
}

// NewSearcher builds a searcher over the store. prefilter <= 0 searches the
// full store for trajectories.
func NewSearcher(store *Store, prefilter int) *Searcher {
	return &Searcher{store: store, cfg: store.Config(), prefilter: prefilter}
}

// SemanticSearch returns the stored map with the highest cosine similarity
// between semantic embeddings (Eq. 4), or ok=false on an empty store.
func (s *Searcher) SemanticSearch(sem []float64) (SearchResult, bool) {
	snap := s.store.Snapshot()
	if len(snap) == 0 {
		return SearchResult{}, false
	}
	semF := tensor.Float32s(sem)
	best, bestScore := -1, -2.0
	for i, m := range snap {
		if c := tensor.CosineF32(semF, m.Sem); c > bestScore {
			best, bestScore = i, c
		}
	}
	return SearchResult{Map: snap[best], Score: bestScore}, true
}

// SemanticLatencyMS models the wall-clock cost of one semantic search over
// the store: a pairwise cosine against C stored embeddings. The constants
// are calibrated so a 1K-map store costs a fraction of a millisecond,
// matching the paper's negligible-overhead claim (§6.8).
func (s *Searcher) SemanticLatencyMS() float64 {
	return 0.05 + 1.5e-6*float64(s.store.Len())*float64(s.cfg.SemDim)
}

// TrajectoryLatencyMS models one trajectory-prefix search step.
func (s *Searcher) TrajectoryLatencyMS() float64 {
	n := s.store.Len()
	if s.prefilter > 0 && s.prefilter < n {
		n = s.prefilter
	}
	return 0.05 + 1.5e-6*float64(n)*float64(s.cfg.RoutedExperts)
}

// Cursor performs incremental trajectory-prefix search for one request
// iteration: each observed layer's gate distribution extends the prefix,
// and Best returns the most similar stored map under Eq. 5 over the
// observed prefix. Dot products and norms are maintained incrementally so
// each layer costs O(candidates × J).
type Cursor struct {
	cands    []*ExpertMap
	dots     []float64
	selfNorm float64
	layers   int
	j        int
	maxLayer int
}

// NewCursor starts a trajectory search for an iteration. The candidate set
// is the semantic top-N prefilter when configured, otherwise the full
// store. Returns nil if the store is empty.
func (s *Searcher) NewCursor(sem []float64) *Cursor {
	snap := s.store.Snapshot()
	if len(snap) == 0 {
		return nil
	}
	cands := snap
	if s.prefilter > 0 && s.prefilter < len(snap) {
		semF := tensor.Float32s(sem)
		type scored struct {
			i int
			c float64
		}
		ss := make([]scored, len(snap))
		for i, m := range snap {
			ss[i] = scored{i, tensor.CosineF32(semF, m.Sem)}
		}
		sort.Slice(ss, func(a, b int) bool {
			if ss[a].c != ss[b].c {
				return ss[a].c > ss[b].c
			}
			return ss[a].i < ss[b].i
		})
		cands = make([]*ExpertMap, s.prefilter)
		for i := 0; i < s.prefilter; i++ {
			cands[i] = snap[ss[i].i]
		}
	}
	return &Cursor{
		cands:    cands,
		dots:     make([]float64, len(cands)),
		j:        s.cfg.RoutedExperts,
		maxLayer: s.cfg.Layers,
	}
}

// Observe extends the prefix with the gate distribution of the next layer.
func (c *Cursor) Observe(probs []float64) {
	if c == nil {
		return
	}
	if c.layers >= c.maxLayer {
		panic("core: cursor observed more layers than the model has")
	}
	if len(probs) != c.j {
		panic("core: cursor observed wrong expert count")
	}
	base := c.layers * c.j
	for i, m := range c.cands {
		row := m.Traj[base : base+c.j]
		var d float64
		for k, p := range probs {
			d += p * float64(row[k])
		}
		c.dots[i] += d
	}
	var n float64
	for _, p := range probs {
		n += p * p
	}
	c.selfNorm += n
	c.layers++
}

// Layers returns how many layers the cursor has observed.
func (c *Cursor) Layers() int {
	if c == nil {
		return 0
	}
	return c.layers
}

// Best returns the most similar stored map over the observed prefix
// (Eq. 5), or ok=false before any layer has been observed.
func (c *Cursor) Best() (SearchResult, bool) {
	if c == nil || c.layers == 0 || c.selfNorm == 0 {
		return SearchResult{}, false
	}
	bestIdx, bestScore := -1, -2.0
	for i, m := range c.cands {
		pn := m.prefixNorm2[c.layers-1]
		if pn == 0 {
			continue
		}
		score := c.dots[i] / math.Sqrt(c.selfNorm*pn)
		if score > bestScore {
			bestIdx, bestScore = i, score
		}
	}
	if bestIdx < 0 {
		return SearchResult{}, false
	}
	return SearchResult{Map: c.cands[bestIdx], Score: tensor.Clip(bestScore, -1, 1)}, true
}
