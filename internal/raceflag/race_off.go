//go:build !race

// Package raceflag reports whether the binary was built with the race
// detector. Allocation-count guards skip under -race: instrumentation
// can add heap allocations that have nothing to do with the code under
// test, and the race job's purpose is concurrency coverage, not
// allocation discipline (CI runs the alloc guards in a non-race job).
package raceflag

// Enabled is true when the race detector is compiled in.
const Enabled = false
