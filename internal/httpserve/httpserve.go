// Package httpserve exposes the FineMoE serving simulator over HTTP — the
// demo surface of cmd/finemoe-serve. The Expert Map Store starts empty and
// warms up as requests flow, so successive requests see improving hit rates
// and latency, mirroring the paper's online-serving behaviour (§6.3).
package httpserve

import (
	"encoding/json"
	"log"
	"net/http"
	"sync"

	"finemoe/internal/core"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/rng"
	"finemoe/internal/serve"
	"finemoe/internal/tensor"
	"finemoe/internal/workload"
)

// Config assembles a serving deployment.
type Config struct {
	// Model is the MoE architecture to serve.
	Model moe.Config
	// Seed drives the simulated gate network and prompt noise.
	Seed uint64
	// GPU and NumGPUs define the simulated testbed.
	GPU     memsim.GPUSpec
	NumGPUs int
	// CacheBytes is the expert-cache budget (0 = 30% of expert weights).
	CacheBytes int64
	// StoreCapacity sizes the Expert Map Store (0 = the paper's 1K).
	StoreCapacity int
	// Dataset provides the topic space for synthetic prompts.
	Dataset workload.Dataset
}

// Server simulates serving over one engine; the virtual clock is shared
// across requests, so it must serialize runs.
type Server struct {
	mu      sync.Mutex
	cfg     moe.Config
	model   *moe.Model
	dataset workload.Dataset
	engine  *serve.Engine
	policy  *core.FineMoE
	nextID  uint64
	now     float64

	served           int
	totalHits        int
	totalMisses      int
	sumTTFT, sumTPOT float64
}

// New builds a server from the configuration.
func New(c Config) *Server {
	if c.Model.Layers == 0 {
		c.Model = moe.Mixtral8x7B()
	}
	if c.GPU.Name == "" {
		c.GPU = memsim.RTX3090()
	}
	if c.NumGPUs <= 0 {
		c.NumGPUs = 6
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = int64(float64(c.Model.TotalExpertBytes()) * 0.3)
	}
	if c.Dataset.Name == "" {
		c.Dataset = workload.LMSYSChat1M()
	}
	model := moe.NewModel(c.Model, c.Seed)
	pol := core.NewFineMoE(core.NewStore(c.Model, c.StoreCapacity, c.Model.OptimalPrefetchDistance), core.Options{})
	eng := serve.New(serve.Options{
		Model: model, GPU: c.GPU, NumGPUs: c.NumGPUs,
		CacheBytes: c.CacheBytes, Policy: pol,
	})
	return &Server{
		cfg: c.Model, model: model, dataset: c.Dataset,
		engine: eng, policy: pol,
	}
}

// GenerateRequest is the POST /v1/generate body.
type GenerateRequest struct {
	// PromptTopic selects a topic cluster (-1 or out of range = derived
	// from the request ID).
	PromptTopic int `json:"prompt_topic"`
	// InputTokens / OutputTokens control lengths (defaults 37/32).
	InputTokens  int `json:"input_tokens"`
	OutputTokens int `json:"output_tokens"`
}

// GenerateResponse reports one simulated request.
type GenerateResponse struct {
	RequestID   uint64  `json:"request_id"`
	Topic       int     `json:"topic"`
	TTFTms      float64 `json:"ttft_ms"`
	TPOTms      float64 `json:"tpot_ms"`
	E2Ems       float64 `json:"e2e_ms"`
	Hits        int     `json:"expert_hits"`
	Misses      int     `json:"expert_misses"`
	HitRate     float64 `json:"hit_rate"`
	StoreSize   int     `json:"store_size"`
	VirtualTime float64 `json:"virtual_time_ms"`
}

// StatsResponse reports cumulative serving statistics.
type StatsResponse struct {
	Served      int     `json:"served_requests"`
	MeanTTFTms  float64 `json:"mean_ttft_ms"`
	MeanTPOTms  float64 `json:"mean_tpot_ms"`
	HitRate     float64 `json:"hit_rate"`
	StoreSize   int     `json:"store_size"`
	StoreBytes  int64   `json:"store_bytes"`
	VirtualTime float64 `json:"virtual_time_ms"`
}

// Generate simulates one request and updates serving state.
func (s *Server) Generate(req GenerateRequest) GenerateResponse {
	if req.InputTokens <= 0 {
		req.InputTokens = 37
	}
	if req.OutputTokens <= 0 {
		req.OutputTokens = 32
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	id := s.nextID
	s.nextID++
	topic := req.PromptTopic
	if topic < 0 || topic >= s.dataset.Topics {
		topic = int(rng.Mix(id, 0xF00D) % uint64(s.dataset.Topics))
	}
	emb := tensor.Copy(s.dataset.TopicDirection(s.cfg.SemDim, topic))
	noise := make([]float64, s.cfg.SemDim)
	rng.New(rng.Mix(0xBEEF, id)).UnitVec(noise)
	tensor.Axpy(s.dataset.TopicSpread, noise, emb)
	tensor.Normalize(emb)

	wreq := workload.Request{
		PromptSpec: moe.PromptSpec{
			ID: id, Embedding: emb,
			InputTokens: req.InputTokens, OutputTokens: req.OutputTokens,
			Seed: rng.Mix(0xCAFE, id),
		},
		Topic:   topic,
		Dataset: s.dataset.Name,
	}
	res := s.engine.RunOffline([]workload.Request{wreq}, nil)
	m := res.Requests[0]
	s.served++
	s.totalHits += m.Hits
	s.totalMisses += m.Misses
	s.sumTTFT += m.TTFTms
	s.sumTPOT += m.TPOTms
	s.now = res.WallClockMS

	return GenerateResponse{
		RequestID: id, Topic: topic,
		TTFTms: m.TTFTms, TPOTms: m.TPOTms, E2Ems: m.E2Ems,
		Hits: m.Hits, Misses: m.Misses, HitRate: m.HitRate(),
		StoreSize: s.policy.Store().Len(), VirtualTime: s.now,
	}
}

// Stats returns cumulative statistics.
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StatsResponse{
		Served: s.served, StoreSize: s.policy.Store().Len(),
		StoreBytes: s.policy.Store().MemoryBytes(), VirtualTime: s.now,
	}
	if s.served > 0 {
		st.MeanTTFTms = s.sumTTFT / float64(s.served)
		st.MeanTPOTms = s.sumTPOT / float64(s.served)
	}
	if s.totalHits+s.totalMisses > 0 {
		st.HitRate = float64(s.totalHits) / float64(s.totalHits+s.totalMisses)
	}
	return st
}

// ConfigInfo describes the deployment for GET /v1/config.
func (s *Server) ConfigInfo() map[string]any {
	return map[string]any{
		"model":             s.cfg.Name,
		"layers":            s.cfg.Layers,
		"experts_per_layer": s.cfg.RoutedExperts,
		"top_k":             s.cfg.TopK,
		"prefetch_distance": s.policy.PrefetchDistance(),
		"store_capacity":    s.policy.Store().Capacity(),
		"dataset":           s.dataset.Name,
	}
}

// Handler returns the HTTP mux serving the /v1 API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/config", s.handleConfig)
	return mux
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.InputTokens > 2048 || req.OutputTokens > 1024 || req.InputTokens < 0 || req.OutputTokens < 0 {
		http.Error(w, "token counts out of range", http.StatusBadRequest)
		return
	}
	writeJSON(w, s.Generate(req))
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handleConfig(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.ConfigInfo())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("httpserve: encode response: %v", err)
	}
}
