// Package httpserve exposes the FineMoE serving simulator over HTTP — the
// demo surface of cmd/finemoe-serve. Requests flow through the cluster
// pipeline: an admission policy gates each arrival, a router places it on
// one of N serving instances, and each instance's Expert Map Store starts
// empty and warms up as requests flow, so successive requests see
// improving hit rates and latency, mirroring the paper's online-serving
// behaviour (§6.3). An optional autoscaler resizes the fleet on queue
// pressure: grown instances join the routable set immediately, retired
// ones finish their in-flight work but receive no further routes.
//
// The server also exposes a fault surface mirroring the cluster
// simulator's failure model: POST /v1/faults crashes or restores a
// replica, /healthz and /v1/stats report each replica's health state
// (healthy | degraded | crashed | draining), and crashed replicas leave
// the routable set until restored with a cold cache.
//
// Locking is two-level: a short-held server mutex covers the admission and
// routing decision plus cumulative statistics, and each instance has its
// own mutex serializing its engine. Requests routed to different instances
// therefore simulate concurrently — the server no longer holds one global
// lock across entire simulated runs.
package httpserve

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"

	"finemoe/internal/cluster"
	"finemoe/internal/core"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/rng"
	"finemoe/internal/serve"
	"finemoe/internal/tensor"
	"finemoe/internal/workload"
)

// Config assembles a serving deployment.
type Config struct {
	// Model is the MoE architecture to serve.
	Model moe.Config
	// Seed drives the simulated gate network and prompt noise.
	Seed uint64
	// GPU and NumGPUs define the simulated testbed per instance.
	GPU     memsim.GPUSpec
	NumGPUs int
	// CacheBytes is each instance's expert-cache budget (0 = 30% of
	// expert weights).
	CacheBytes int64
	// DRAMBytes bounds each instance's host DRAM tier; experts beyond
	// the budget spill to an NVMe backing tier behind a shared staging
	// link (0 = unbounded DRAM, the degenerate two-tier hierarchy).
	DRAMBytes int64
	// StoreCapacity sizes each instance's Expert Map Store (0 = the
	// paper's 1K).
	StoreCapacity int
	// Instances is the number of serving replicas (0 = 1).
	Instances int
	// Admission gates arrivals (nil = always-admit).
	Admission cluster.Admission
	// Router places admitted requests (nil = least-loaded).
	Router cluster.Router
	// Autoscaler, when non-nil, resizes the fleet on queue pressure:
	// it is evaluated at each admitted arrival (the serving analogue of
	// the cluster's shared-clock tick) and may add a fresh instance or
	// retire one. Retired instances finish their in-flight work but
	// receive no further routes.
	Autoscaler cluster.Autoscaler
	// MinInstances / MaxInstances bound the autoscaled fleet
	// (defaults: 1 and 4× Instances).
	MinInstances, MaxInstances int
	// Dataset provides the topic space for synthetic prompts.
	Dataset workload.Dataset
}

// instance is one serving replica: an engine plus its own lock and
// cumulative statistics.
type instance struct {
	mu     sync.Mutex
	engine *serve.Engine
	policy *core.FineMoE

	served           int
	hits, misses     int
	sumTTFT, sumTPOT float64
	now              float64
	// memPressure caches the engine's thrash signal as of the last
	// request served; the full tier snapshot is fetched lazily by
	// Stats() so the serving path pays nothing for it.
	memPressure float64
}

// Server simulates serving over a fleet of instances behind the
// admission → routing pipeline.
type Server struct {
	cfg     moe.Config
	conf    Config // defaults applied; the template for scale-up instances
	dataset workload.Dataset

	// mu guards the pipeline decision, the fleet shape (instances /
	// retired / inflight / completed grow together), and the cumulative
	// counters below; it is never held across a simulated run.
	mu        sync.Mutex
	instances []*instance
	retired   []bool
	crashed   []bool
	// memPressure caches each instance's host-DRAM thrash level as of
	// its last completed request, so the routing view (fleetStates) can
	// carry the memory signal without taking instance locks.
	memPressure []float64
	admission   cluster.Admission
	router      cluster.Router
	scaler      cluster.Autoscaler
	nextID      uint64
	inflight    []int
	completed   []int
	admitted    int
	rejected    int
	vnow        float64 // latest instance virtual clock seen
}

// New builds a server from the configuration.
func New(c Config) *Server {
	if c.Model.Layers == 0 {
		c.Model = moe.Mixtral8x7B()
	}
	if c.GPU.Name == "" {
		c.GPU = memsim.RTX3090()
	}
	if c.NumGPUs <= 0 {
		c.NumGPUs = 6
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = int64(float64(c.Model.TotalExpertBytes()) * 0.3)
	}
	if c.Instances <= 0 {
		c.Instances = 1
	}
	if c.Admission == nil {
		c.Admission = cluster.NewAlwaysAdmit()
	}
	if c.Router == nil {
		c.Router = cluster.NewLeastLoaded()
	}
	if c.MinInstances <= 0 {
		c.MinInstances = 1
	}
	if c.MaxInstances <= 0 {
		c.MaxInstances = 4 * c.Instances
	}
	if c.MaxInstances < c.MinInstances {
		c.MaxInstances = c.MinInstances
	}
	if c.Dataset.Name == "" {
		c.Dataset = workload.LMSYSChat1M()
	}
	s := &Server{
		cfg: c.Model, conf: c, dataset: c.Dataset,
		admission: c.Admission, router: c.Router, scaler: c.Autoscaler,
	}
	for i := 0; i < c.Instances; i++ {
		s.addInstanceLocked()
	}
	return s
}

// newReplica builds a fresh serving replica: its own simulated gate
// network (same seed = same model weights), policy, store, and cache.
func (s *Server) newReplica() *instance {
	c := s.conf
	model := moe.NewModel(c.Model, c.Seed)
	pol := core.NewFineMoE(core.NewStore(c.Model, c.StoreCapacity, c.Model.OptimalPrefetchDistance), core.Options{})
	eng := serve.New(serve.Options{
		Model: model, GPU: c.GPU, NumGPUs: c.NumGPUs,
		CacheBytes: c.CacheBytes, Policy: pol,
		Memory: memsim.ThreeTier(c.DRAMBytes),
	})
	return &instance{engine: eng, policy: pol}
}

// addInstanceLocked appends a fresh serving replica. Caller holds s.mu
// (or is still constructing the server).
func (s *Server) addInstanceLocked() {
	s.instances = append(s.instances, s.newReplica())
	s.retired = append(s.retired, false)
	s.crashed = append(s.crashed, false)
	s.inflight = append(s.inflight, 0)
	s.completed = append(s.completed, 0)
	s.memPressure = append(s.memPressure, 0)
}

// degradedPressure is the host-DRAM thrash level above which a replica
// reports "degraded" health: past it, a substantial fraction of expert
// fetches spill below DRAM and latency visibly suffers.
const degradedPressure = 0.5

// healthLocked classifies one replica's health state. Caller holds s.mu.
func (s *Server) healthLocked(i int) string {
	switch {
	case s.crashed[i]:
		return "crashed"
	case s.retired[i]:
		return "draining"
	case s.memPressure[i] > degradedPressure:
		return "degraded"
	default:
		return "healthy"
	}
}

// Crash marks replica i failed: it leaves the routable set immediately
// (the live server plays its own failure detector) and reports
// "crashed" health until restored. In-flight requests on the replica
// finish against its engine. Unknown IDs are rejected.
func (s *Server) Crash(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.instances) {
		return fmt.Errorf("httpserve: no instance %d", i)
	}
	s.crashed[i] = true
	return nil
}

// Restore replaces a crashed replica with a fresh one at the same slot:
// the restart is cold — empty Expert Map Store, empty expert cache —
// mirroring the cluster simulator's cold-cache crash replacement.
func (s *Server) Restore(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.instances) {
		return fmt.Errorf("httpserve: no instance %d", i)
	}
	if !s.crashed[i] {
		return fmt.Errorf("httpserve: instance %d is not crashed", i)
	}
	s.instances[i] = s.newReplica()
	s.crashed[i] = false
	s.retired[i] = false
	s.completed[i] = 0
	s.memPressure[i] = 0
	return nil
}

// maybeScaleLocked evaluates the autoscaler against the routable fleet at
// the fleet clock and applies at most one resize. A grow first reactivates
// a drained retired replica (warm pool) before allocating a fresh one, so
// a long-running server's total instance count stays bounded however the
// load oscillates. Caller holds s.mu.
func (s *Server) maybeScaleLocked(fleet []cluster.InstanceState) {
	if s.scaler == nil {
		return
	}
	d := s.scaler.Decide(s.vnow, fleet)
	applied := false
	switch d {
	case cluster.Grow:
		if len(fleet) >= s.conf.MaxInstances {
			break
		}
		reused := false
		for i := range s.instances {
			if s.retired[i] && !s.crashed[i] && s.inflight[i] == 0 {
				s.retired[i] = false
				reused = true
				break
			}
		}
		if !reused {
			s.addInstanceLocked()
		}
		applied = true
	case cluster.Shrink:
		if len(fleet) <= s.conf.MinInstances {
			break
		}
		// fleetStates carries each replica's whole load in QueueDepth, so
		// the shared victim selection sees the same signal the cluster's
		// shared-clock orchestrator does.
		s.retired[cluster.ShrinkVictim(fleet)] = true
		applied = true
	}
	cluster.NotifyDecision(s.scaler, d, applied)
}

// GenerateRequest is the POST /v1/generate body.
type GenerateRequest struct {
	// PromptTopic selects a topic cluster (-1 or out of range = derived
	// from the request ID).
	PromptTopic int `json:"prompt_topic"`
	// InputTokens / OutputTokens control lengths (defaults 37/32).
	InputTokens  int `json:"input_tokens"`
	OutputTokens int `json:"output_tokens"`
}

// GenerateResponse reports one simulated request.
type GenerateResponse struct {
	RequestID   uint64  `json:"request_id"`
	Topic       int     `json:"topic"`
	Instance    int     `json:"instance"`
	TTFTms      float64 `json:"ttft_ms"`
	TPOTms      float64 `json:"tpot_ms"`
	E2Ems       float64 `json:"e2e_ms"`
	Hits        int     `json:"expert_hits"`
	Misses      int     `json:"expert_misses"`
	HitRate     float64 `json:"hit_rate"`
	StoreSize   int     `json:"store_size"`
	VirtualTime float64 `json:"virtual_time_ms"`
}

// InstanceStats reports one replica's cumulative state for /v1/stats.
// QueueDepth is the routing-visible load signal — requests routed to the
// instance and not yet finished — so the per-instance values sum to the
// fleet-level QueueDepth.
type InstanceStats struct {
	ID         int  `json:"id"`
	Served     int  `json:"served_requests"`
	QueueDepth int  `json:"queue_depth"`
	Retired    bool `json:"retired"`
	// Health is the replica's state: healthy | degraded | crashed |
	// draining (see /healthz).
	Health      string  `json:"health"`
	HitRate     float64 `json:"hit_rate"`
	MeanTTFTms  float64 `json:"mean_ttft_ms"`
	StoreSize   int     `json:"store_size"`
	VirtualTime float64 `json:"virtual_time_ms"`
	// MemPressure is the instance's host-DRAM thrash level (decayed
	// fraction of expert fetches spilling below DRAM); Tiers the
	// per-tier residency/transfer breakdown (HBM first).
	MemPressure float64     `json:"mem_pressure"`
	Tiers       []TierStats `json:"tiers,omitempty"`
}

// TierStats reports one memory tier's residency and transfer activity
// for the JSON stats surface.
type TierStats struct {
	Name            string  `json:"name"`
	CapacityExperts int     `json:"capacity_experts"` // -1 = unbounded
	ResidentExperts int     `json:"resident_experts"`
	ResidentBytes   int64   `json:"resident_bytes"`
	Pressure        float64 `json:"pressure"`
	Promotions      int     `json:"promotions"`
	Demotions       int     `json:"demotions"`
	Drops           int     `json:"drops"`
	RejectedInserts int     `json:"rejected_inserts"`
	LinkPrefetches  int     `json:"link_prefetches"`
	LinkOnDemands   int     `json:"link_on_demands"`
	LinkBusyMS      float64 `json:"link_busy_ms"`
}

// tierStats maps an engine tier snapshot to the JSON form.
func tierStats(ts []serve.TierStat) []TierStats {
	out := make([]TierStats, len(ts))
	for i, t := range ts {
		out[i] = TierStats{
			Name:            t.Name,
			CapacityExperts: t.CapacityExperts,
			ResidentExperts: t.ResidentExperts,
			ResidentBytes:   t.ResidentBytes,
			Pressure:        t.Pressure,
			Promotions:      t.Promotions,
			Demotions:       t.Demotions,
			Drops:           t.Drops,
			RejectedInserts: t.RejectedInserts,
			LinkPrefetches:  t.Link.Prefetches,
			LinkOnDemands:   t.Link.OnDemands,
			LinkBusyMS:      t.Link.BusyMS,
		}
	}
	return out
}

// StatsResponse reports cumulative serving statistics.
type StatsResponse struct {
	Served      int     `json:"served_requests"`
	Admitted    int     `json:"admitted_requests"`
	Rejected    int     `json:"rejected_requests"`
	QueueDepth  int     `json:"queue_depth"`
	Active      int     `json:"active_instances"`
	Crashed     int     `json:"crashed_instances"`
	MeanTTFTms  float64 `json:"mean_ttft_ms"`
	MeanTPOTms  float64 `json:"mean_tpot_ms"`
	HitRate     float64 `json:"hit_rate"`
	StoreSize   int     `json:"store_size"`
	StoreBytes  int64   `json:"store_bytes"`
	VirtualTime float64 `json:"virtual_time_ms"`
	Admission   string  `json:"admission"`
	Router      string  `json:"router"`
	// MemPressure is the mean host-DRAM thrash level across active
	// instances; Tiers sums capacity, residency and transfer activity
	// per tier across all instances (HBM first), with occupancy
	// recomputed from the fleet sums.
	MemPressure float64         `json:"mem_pressure"`
	Tiers       []TierStats     `json:"tiers,omitempty"`
	Instances   []InstanceStats `json:"instances"`
}

// ErrRejected reports a request shed by the admission policy.
var ErrRejected = fmt.Errorf("httpserve: admission rejected request")

// ErrUnavailable reports that no routable replica remains (every
// instance crashed or draining).
var ErrUnavailable = fmt.Errorf("httpserve: no routable instance")

// fleetStates snapshots the routing view: the non-retired fleet, with
// each entry's ID the instance's stable index in s.instances. Caller
// holds s.mu; only server-side counters are read, keeping s.mu disjoint
// from the instance locks (a routed-but-unfinished request is the queue
// signal, since the demo serves synchronously).
func (s *Server) fleetStates() []cluster.InstanceState {
	out := make([]cluster.InstanceState, 0, len(s.instances))
	for i := range s.instances {
		if s.retired[i] || s.crashed[i] {
			continue
		}
		out = append(out, cluster.InstanceState{
			ID: i, QueueDepth: s.inflight[i], Completed: s.completed[i],
			Submitted:   s.inflight[i] + s.completed[i],
			MemPressure: s.memPressure[i],
		})
	}
	return out
}

// Generate runs one request through admission → routing → instance and
// updates serving state. Returns ErrRejected when admission sheds it.
func (s *Server) Generate(req GenerateRequest) (GenerateResponse, error) {
	if req.InputTokens <= 0 {
		req.InputTokens = 37
	}
	if req.OutputTokens <= 0 {
		req.OutputTokens = 32
	}

	// Stage 1+2: admission and routing, under the short-held server lock.
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	topic := req.PromptTopic
	if topic < 0 || topic >= s.dataset.Topics {
		topic = int(rng.Mix(id, 0xF00D) % uint64(s.dataset.Topics))
	}
	emb := tensor.Copy(s.dataset.TopicDirection(s.cfg.SemDim, topic))
	noise := make([]float64, s.cfg.SemDim)
	rng.New(rng.Mix(0xBEEF, id)).UnitVec(noise)
	tensor.Axpy(s.dataset.TopicSpread, noise, emb)
	tensor.Normalize(emb)

	wreq := workload.Request{
		PromptSpec: moe.PromptSpec{
			ID: id, Embedding: emb,
			InputTokens: req.InputTokens, OutputTokens: req.OutputTokens,
			Seed: rng.Mix(0xCAFE, id),
		},
		Topic:   topic,
		Dataset: s.dataset.Name,
	}
	fleet := s.fleetStates()
	if len(fleet) == 0 {
		s.rejected++
		s.mu.Unlock()
		return GenerateResponse{RequestID: id, Topic: topic, Instance: -1}, ErrUnavailable
	}
	if !s.admission.Admit(wreq, s.vnow, fleet) {
		s.rejected++
		s.mu.Unlock()
		return GenerateResponse{RequestID: id, Topic: topic, Instance: -1}, ErrRejected
	}
	s.admitted++
	s.maybeScaleLocked(fleet)
	// The autoscaler may have grown the fleet; route over the fresh view
	// so a scale-up instance is immediately routable.
	if s.scaler != nil {
		fleet = s.fleetStates()
	}
	ri := s.router.Route(wreq, s.vnow, fleet)
	if ri < 0 || ri >= len(fleet) {
		panic("httpserve: router returned out-of-range instance")
	}
	target := fleet[ri].ID
	s.inflight[target]++
	in := s.instances[target]
	fleetNow := s.vnow
	s.mu.Unlock()

	// Stage 3: the instance simulates the request under its own lock, so
	// requests on different instances run concurrently. The arrival is
	// stamped at the later of the fleet clock (the admission timeline)
	// and the instance clock, and the instance clock is advanced to it,
	// so TTFT includes cross-instance queueing and admission's
	// token-bucket refill sees the same timeline the engines do.
	in.mu.Lock()
	arrival := in.engine.Now()
	if fleetNow > arrival {
		arrival = fleetNow
		in.engine.AdvanceClock(arrival)
	}
	wreq.ArrivalMS = arrival
	in.engine.Submit(wreq)
	in.engine.Drain()
	// TakeCompleted (not Completed) so a long-running server does not
	// accumulate per-request metrics without bound.
	done := in.engine.TakeCompleted()
	m := done[len(done)-1]
	in.served++
	in.hits += m.Hits
	in.misses += m.Misses
	in.sumTTFT += m.TTFTms
	in.sumTPOT += m.TPOTms
	in.now = in.engine.Now()
	in.memPressure = in.engine.MemoryPressure()
	memPressure := in.memPressure
	storeSize := in.policy.Store().Len()
	vnow := in.now
	in.mu.Unlock()

	s.mu.Lock()
	s.inflight[target]--
	s.completed[target]++
	s.memPressure[target] = memPressure
	if vnow > s.vnow {
		s.vnow = vnow
	}
	s.mu.Unlock()

	return GenerateResponse{
		RequestID: id, Topic: topic, Instance: target,
		TTFTms: m.TTFTms, TPOTms: m.TPOTms, E2Ems: m.E2Ems,
		Hits: m.Hits, Misses: m.Misses, HitRate: m.HitRate(),
		StoreSize: storeSize, VirtualTime: vnow,
	}, nil
}

// Stats returns cumulative fleet statistics.
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	st := StatsResponse{
		Admitted:  s.admitted,
		Rejected:  s.rejected,
		Admission: s.admission.Name(),
		Router:    s.router.Name(),
	}
	instances := append([]*instance(nil), s.instances...)
	inflight := append([]int(nil), s.inflight...)
	retired := append([]bool(nil), s.retired...)
	crashed := append([]bool(nil), s.crashed...)
	health := make([]string, len(s.instances))
	for i := range s.instances {
		health[i] = s.healthLocked(i)
	}
	s.mu.Unlock()

	var sumTTFT, sumTPOT float64
	var hits, misses int
	var memSum float64
	for i, in := range instances {
		in.mu.Lock()
		is := InstanceStats{
			ID: i, Served: in.served, QueueDepth: inflight[i], Retired: retired[i],
			Health:    health[i],
			StoreSize: in.policy.Store().Len(), VirtualTime: in.now,
			MemPressure: in.memPressure, Tiers: tierStats(in.engine.TierStats()),
		}
		// Fleet tier totals: instances share one hierarchy shape, so
		// summing by position is well-defined. Capacity sums alongside
		// residency (staying -1 while unbounded) and occupancy is
		// recomputed from the sums, so the fleet record is internally
		// consistent rather than inheriting instance 0's values.
		for j, ts := range is.Tiers {
			if j >= len(st.Tiers) {
				st.Tiers = append(st.Tiers, TierStats{Name: ts.Name, CapacityExperts: -1})
			}
			ft := &st.Tiers[j]
			if ts.CapacityExperts >= 0 {
				if ft.CapacityExperts < 0 {
					ft.CapacityExperts = 0
				}
				ft.CapacityExperts += ts.CapacityExperts
			}
			ft.ResidentExperts += ts.ResidentExperts
			ft.ResidentBytes += ts.ResidentBytes
			ft.Promotions += ts.Promotions
			ft.Demotions += ts.Demotions
			ft.Drops += ts.Drops
			ft.RejectedInserts += ts.RejectedInserts
			ft.LinkPrefetches += ts.LinkPrefetches
			ft.LinkOnDemands += ts.LinkOnDemands
			ft.LinkBusyMS += ts.LinkBusyMS
			if ft.CapacityExperts > 0 {
				ft.Pressure = float64(ft.ResidentExperts) / float64(ft.CapacityExperts)
			}
		}
		if crashed[i] {
			st.Crashed++
		} else if !retired[i] {
			st.Active++
			memSum += in.memPressure
		}
		if in.served > 0 {
			is.MeanTTFTms = in.sumTTFT / float64(in.served)
		}
		if in.hits+in.misses > 0 {
			is.HitRate = float64(in.hits) / float64(in.hits+in.misses)
		}
		st.Served += in.served
		st.QueueDepth += inflight[i]
		st.StoreSize += is.StoreSize
		st.StoreBytes += in.policy.Store().MemoryBytes()
		sumTTFT += in.sumTTFT
		sumTPOT += in.sumTPOT
		hits += in.hits
		misses += in.misses
		if in.now > st.VirtualTime {
			st.VirtualTime = in.now
		}
		st.Instances = append(st.Instances, is)
		in.mu.Unlock()
	}
	if st.Served > 0 {
		st.MeanTTFTms = sumTTFT / float64(st.Served)
		st.MeanTPOTms = sumTPOT / float64(st.Served)
	}
	if hits+misses > 0 {
		st.HitRate = float64(hits) / float64(hits+misses)
	}
	if st.Active > 0 {
		st.MemPressure = memSum / float64(st.Active)
	}
	return st
}

// ConfigInfo describes the deployment for GET /v1/config.
func (s *Server) ConfigInfo() map[string]any {
	s.mu.Lock()
	pol := s.instances[0].policy
	n := len(s.instances)
	s.mu.Unlock()
	info := map[string]any{
		"model":             s.cfg.Name,
		"layers":            s.cfg.Layers,
		"experts_per_layer": s.cfg.RoutedExperts,
		"top_k":             s.cfg.TopK,
		"prefetch_distance": pol.PrefetchDistance(),
		"store_capacity":    pol.Store().Capacity(),
		"dataset":           s.dataset.Name,
		"instances":         n,
		"admission":         s.admission.Name(),
		"router":            s.router.Name(),
	}
	if s.conf.DRAMBytes > 0 {
		info["dram_bytes"] = s.conf.DRAMBytes
		info["memory_tiers"] = []string{"HBM", "DRAM", "NVMe"}
	} else {
		info["memory_tiers"] = []string{"HBM", "DRAM"}
	}
	if s.scaler != nil {
		info["autoscaler"] = s.scaler.Name()
		info["min_instances"] = s.conf.MinInstances
		info["max_instances"] = s.conf.MaxInstances
	}
	return info
}

// Handler returns the HTTP mux serving the /v1 API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/config", s.handleConfig)
	mux.HandleFunc("/v1/faults", s.handleFaults)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.InputTokens > 2048 || req.OutputTokens > 1024 || req.InputTokens < 0 || req.OutputTokens < 0 {
		http.Error(w, "token counts out of range", http.StatusBadRequest)
		return
	}
	resp, err := s.Generate(req)
	if err != nil {
		code, msg := http.StatusTooManyRequests, "rejected by admission policy"
		if err == ErrUnavailable {
			code, msg = http.StatusServiceUnavailable, "no routable instance"
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		if err := json.NewEncoder(w).Encode(map[string]any{
			"error": msg, "request_id": resp.RequestID,
		}); err != nil {
			log.Printf("httpserve: encode rejection: %v", err)
		}
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handleConfig(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.ConfigInfo())
}

// InstanceHealth is one replica's entry in the /healthz fleet list.
type InstanceHealth struct {
	ID     int    `json:"id"`
	Health string `json:"health"`
}

// handleHealthz reports overall and per-replica health. The endpoint
// stays 200 "ok" while at least one replica is routable (healthy or
// degraded) and flips to 503 "unavailable" when none is — the contract
// a load balancer's health check needs.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fleet := make([]InstanceHealth, len(s.instances))
	routable := 0
	for i := range s.instances {
		h := s.healthLocked(i)
		if h == "healthy" || h == "degraded" {
			routable++
		}
		fleet[i] = InstanceHealth{ID: i, Health: h}
	}
	s.mu.Unlock()
	status := "ok"
	if routable == 0 {
		status = "unavailable"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, map[string]any{
		"status": status, "instances": len(fleet), "routable": routable,
		"fleet": fleet,
	})
}

// FaultRequest is the POST /v1/faults body: inject or clear a fault on
// one replica.
type FaultRequest struct {
	Instance int `json:"instance"`
	// Action is "crash" (fail the replica in place) or "restore"
	// (replace it with a cold restart).
	Action string `json:"action"`
}

func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req FaultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var err error
	switch req.Action {
	case "crash":
		err = s.Crash(req.Instance)
	case "restore":
		err = s.Restore(req.Instance)
	default:
		http.Error(w, fmt.Sprintf("unknown action %q (crash|restore)", req.Action), http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	h := s.healthLocked(req.Instance)
	s.mu.Unlock()
	writeJSON(w, map[string]any{"instance": req.Instance, "health": h})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("httpserve: encode response: %v", err)
	}
}
