package httpserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/workload"
)

func testServer() *Server {
	ds := workload.LMSYSChat1M()
	ds.Topics = 6
	return New(Config{
		Model:         moe.Tiny(),
		Seed:          1,
		GPU:           memsim.RTX3090(),
		NumGPUs:       2,
		CacheBytes:    moe.Tiny().ExpertBytes() * int64(moe.Tiny().NumExperts()) / 2,
		StoreCapacity: 100,
		Dataset:       ds,
	})
}

func postGenerate(t *testing.T, ts *httptest.Server, body GenerateRequest) GenerateResponse {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGenerateEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	out := postGenerate(t, ts, GenerateRequest{PromptTopic: 2, InputTokens: 6, OutputTokens: 8})
	if out.TTFTms <= 0 || out.E2Ems < out.TTFTms {
		t.Fatalf("bad metrics %+v", out)
	}
	if out.Topic != 2 {
		t.Fatalf("topic %d, want 2", out.Topic)
	}
	if out.Hits+out.Misses == 0 {
		t.Fatal("no expert activity")
	}
	if out.StoreSize == 0 {
		t.Fatal("store did not grow after serving")
	}
}

func TestStoreWarmupImprovesHitRate(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	first := postGenerate(t, ts, GenerateRequest{PromptTopic: 1, InputTokens: 6, OutputTokens: 10})
	var last GenerateResponse
	for i := 0; i < 4; i++ {
		last = postGenerate(t, ts, GenerateRequest{PromptTopic: 1, InputTokens: 6, OutputTokens: 10})
	}
	if last.HitRate <= first.HitRate {
		t.Fatalf("hit rate did not improve with warm store: first %.3f last %.3f",
			first.HitRate, last.HitRate)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	postGenerate(t, ts, GenerateRequest{InputTokens: 6, OutputTokens: 6})
	postGenerate(t, ts, GenerateRequest{InputTokens: 6, OutputTokens: 6})

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 2 || st.MeanTTFTms <= 0 || st.HitRate <= 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestConfigEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cfg map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg["model"] != "Tiny-MoE" {
		t.Fatalf("config %v", cfg)
	}
}

func TestGenerateValidation(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET generate status %d", resp.StatusCode)
	}

	// Malformed body.
	resp, err = http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", resp.StatusCode)
	}

	// Out-of-range tokens.
	buf, _ := json.Marshal(GenerateRequest{InputTokens: 99999})
	resp, err = http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized request status %d", resp.StatusCode)
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := New(Config{Model: moe.Tiny(), Seed: 3})
	info := s.ConfigInfo()
	if info["store_capacity"] != 1000 {
		t.Fatalf("default store capacity %v", info["store_capacity"])
	}
	out := s.Generate(GenerateRequest{PromptTopic: -1})
	if out.TTFTms <= 0 {
		t.Fatal("defaults produced degenerate run")
	}
}
