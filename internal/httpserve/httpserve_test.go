package httpserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"finemoe/internal/cluster"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/workload"
)

func testServer() *Server {
	ds := workload.LMSYSChat1M()
	ds.Topics = 6
	return New(Config{
		Model:         moe.Tiny(),
		Seed:          1,
		GPU:           memsim.RTX3090(),
		NumGPUs:       2,
		CacheBytes:    moe.Tiny().ExpertBytes() * int64(moe.Tiny().NumExperts()) / 2,
		StoreCapacity: 100,
		Instances:     2,
		Dataset:       ds,
	})
}

func postGenerate(t *testing.T, ts *httptest.Server, body GenerateRequest) GenerateResponse {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGenerateEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	out := postGenerate(t, ts, GenerateRequest{PromptTopic: 2, InputTokens: 6, OutputTokens: 8})
	if out.TTFTms <= 0 || out.E2Ems < out.TTFTms {
		t.Fatalf("bad metrics %+v", out)
	}
	if out.Topic != 2 {
		t.Fatalf("topic %d, want 2", out.Topic)
	}
	if out.Hits+out.Misses == 0 {
		t.Fatal("no expert activity")
	}
	if out.StoreSize == 0 {
		t.Fatal("store did not grow after serving")
	}
}

func TestStoreWarmupImprovesHitRate(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	first := postGenerate(t, ts, GenerateRequest{PromptTopic: 1, InputTokens: 6, OutputTokens: 10})
	var last GenerateResponse
	for i := 0; i < 4; i++ {
		last = postGenerate(t, ts, GenerateRequest{PromptTopic: 1, InputTokens: 6, OutputTokens: 10})
	}
	if last.HitRate <= first.HitRate {
		t.Fatalf("hit rate did not improve with warm store: first %.3f last %.3f",
			first.HitRate, last.HitRate)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	postGenerate(t, ts, GenerateRequest{InputTokens: 6, OutputTokens: 6})
	postGenerate(t, ts, GenerateRequest{InputTokens: 6, OutputTokens: 6})

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 2 || st.MeanTTFTms <= 0 || st.HitRate <= 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestConfigEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cfg map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg["model"] != "Tiny-MoE" {
		t.Fatalf("config %v", cfg)
	}
}

func TestGenerateValidation(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET generate status %d", resp.StatusCode)
	}

	// Malformed body.
	resp, err = http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", resp.StatusCode)
	}

	// Out-of-range tokens.
	buf, _ := json.Marshal(GenerateRequest{InputTokens: 99999})
	resp, err = http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized request status %d", resp.StatusCode)
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := New(Config{Model: moe.Tiny(), Seed: 3})
	info := s.ConfigInfo()
	if info["store_capacity"] != 1000 {
		t.Fatalf("default store capacity %v", info["store_capacity"])
	}
	if info["instances"] != 1 || info["admission"] != "always-admit" || info["router"] != "least-loaded" {
		t.Fatalf("cluster defaults %v", info)
	}
	out, err := s.Generate(GenerateRequest{PromptTopic: -1})
	if err != nil {
		t.Fatal(err)
	}
	if out.TTFTms <= 0 {
		t.Fatal("defaults produced degenerate run")
	}
}

func TestHealthzEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["instances"] != float64(2) {
		t.Fatalf("healthz %v", h)
	}
}

func TestMultiInstanceRoutingAndStats(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	// Serve several requests; the least-loaded router over a 2-instance
	// fleet must touch both replicas (synchronous demo = the previous
	// request has always drained, so routing alternates on completions).
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		out := postGenerate(t, ts, GenerateRequest{PromptTopic: i % 2, InputTokens: 6, OutputTokens: 6})
		if out.Instance < 0 || out.Instance >= 2 {
			t.Fatalf("instance %d out of range", out.Instance)
		}
		seen[out.Instance] = true
	}
	if len(seen) != 2 {
		t.Fatalf("routing used instances %v, want both", seen)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 4 || st.Rejected != 0 || st.Admitted != 4 {
		t.Fatalf("fleet accounting %+v", st)
	}
	if len(st.Instances) != 2 {
		t.Fatalf("stats cover %d instances, want 2", len(st.Instances))
	}
	var served int
	for _, is := range st.Instances {
		served += is.Served
		if is.HitRate < 0 || is.HitRate > 1 {
			t.Fatalf("instance %d hit rate %v", is.ID, is.HitRate)
		}
	}
	if served != 4 {
		t.Fatalf("per-instance served %d, want 4", served)
	}
	if st.Router != "least-loaded" || st.Admission != "always-admit" {
		t.Fatalf("policy names %q/%q", st.Admission, st.Router)
	}
}

// TestArrivalsStampedOnFleetClock pins the clock-mismatch fix: a request
// routed to a cold instance is stamped at the fleet clock (the admission
// timeline), not the instance's private past, so its virtual completion
// time can never precede work the fleet already finished elsewhere.
func TestArrivalsStampedOnFleetClock(t *testing.T) {
	s := testServer()
	first, err := s.Generate(GenerateRequest{PromptTopic: 0, InputTokens: 6, OutputTokens: 12})
	if err != nil {
		t.Fatal(err)
	}
	// The second request lands on the other (still cold, clock-at-zero)
	// instance: least-loaded ties break toward the less-routed replica.
	second, err := s.Generate(GenerateRequest{PromptTopic: 1, InputTokens: 6, OutputTokens: 6})
	if err != nil {
		t.Fatal(err)
	}
	if second.Instance == first.Instance {
		t.Fatalf("both requests on instance %d; want the cold replica", first.Instance)
	}
	if second.VirtualTime <= first.VirtualTime {
		t.Fatalf("cold instance served at virtual %.1f ms, before fleet clock %.1f ms: arrival not stamped at max(fleet, instance)",
			second.VirtualTime, first.VirtualTime)
	}
}

// scriptedScaler replays a fixed decision sequence, then holds.
type scriptedScaler struct {
	seq  []cluster.Decision
	next int
}

func (s *scriptedScaler) Name() string { return "scripted" }

func (s *scriptedScaler) Decide(float64, []cluster.InstanceState) cluster.Decision {
	if s.next >= len(s.seq) {
		return cluster.Hold
	}
	d := s.seq[s.next]
	s.next++
	return d
}

func TestAutoscaleGrowsAndRetiresInstances(t *testing.T) {
	ds := workload.LMSYSChat1M()
	ds.Topics = 6
	s := New(Config{
		Model: moe.Tiny(), Seed: 1, GPU: memsim.RTX3090(), NumGPUs: 2,
		StoreCapacity: 100, Instances: 1, Dataset: ds,
		Autoscaler:   &scriptedScaler{seq: []cluster.Decision{cluster.Grow, cluster.Shrink, cluster.Grow}},
		MinInstances: 1, MaxInstances: 2,
	})

	// First arrival triggers the grow; the fleet must have two routable
	// instances when the request is placed.
	if _, err := s.Generate(GenerateRequest{PromptTopic: 0, InputTokens: 6, OutputTokens: 6}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(st.Instances) != 2 || st.Active != 2 {
		t.Fatalf("after grow: %d instances, %d active, want 2/2", len(st.Instances), st.Active)
	}

	// Second arrival triggers the shrink: the idle newest replica
	// retires but stays in stats; routing continues on the survivor.
	out, err := s.Generate(GenerateRequest{PromptTopic: 0, InputTokens: 6, OutputTokens: 6})
	if err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if len(st.Instances) != 2 || st.Active != 1 {
		t.Fatalf("after shrink: %d instances, %d active, want 2/1", len(st.Instances), st.Active)
	}
	if !st.Instances[1].Retired || st.Instances[0].Retired {
		t.Fatalf("wrong retiree: %+v", st.Instances)
	}
	if out.Instance != 0 {
		t.Fatalf("post-shrink request routed to %d, want surviving instance 0", out.Instance)
	}
	if st.Served != 2 || st.Admitted != 2 {
		t.Fatalf("fleet accounting after resize: %+v", st)
	}

	info := s.ConfigInfo()
	if info["autoscaler"] != "scripted" || info["min_instances"] != 1 || info["max_instances"] != 2 {
		t.Fatalf("autoscaler config not exposed: %v", info)
	}

	// Third arrival triggers another grow: the drained retired replica is
	// reactivated (warm pool) instead of allocating a fresh instance, so
	// oscillating load cannot grow the server's memory without bound.
	if _, err := s.Generate(GenerateRequest{PromptTopic: 0, InputTokens: 6, OutputTokens: 6}); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if len(st.Instances) != 2 || st.Active != 2 {
		t.Fatalf("after regrow: %d instances, %d active, want reuse (2/2)", len(st.Instances), st.Active)
	}
	if st.Instances[0].Retired || st.Instances[1].Retired {
		t.Fatalf("regrow left a retired flag set: %+v", st.Instances)
	}
}

func TestAdmissionRejectionOver429(t *testing.T) {
	ds := workload.LMSYSChat1M()
	ds.Topics = 6
	s := New(Config{
		Model: moe.Tiny(), Seed: 1, GPU: memsim.RTX3090(), NumGPUs: 2,
		StoreCapacity: 100, Instances: 2, Dataset: ds,
		Admission: cluster.NewRejectAll(),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	buf, _ := json.Marshal(GenerateRequest{InputTokens: 6, OutputTokens: 6})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rejected request status %d, want 429", resp.StatusCode)
	}

	st := s.Stats()
	if st.Rejected != 1 || st.Served != 0 {
		t.Fatalf("rejection accounting %+v", st)
	}
}

// TestFaultEndpointAndHealthStates drives the fault surface end to end:
// crash a replica over POST /v1/faults, watch /healthz and /v1/stats
// flip it to "crashed" and keep routing on the survivor; crash the
// survivor too and watch the server answer 503 everywhere; restore and
// watch the fleet come back healthy with a cold store.
func TestFaultEndpointAndHealthStates(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	postFault := func(inst int, action string) (*http.Response, map[string]any) {
		t.Helper()
		buf, _ := json.Marshal(map[string]any{"instance": inst, "action": action})
		resp, err := http.Post(ts.URL+"/v1/faults", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp, out
	}
	getHealth := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	// Crash replica 0: health flips, replica 1 keeps serving everything.
	if resp, out := postFault(0, "crash"); resp.StatusCode != http.StatusOK || out["health"] != "crashed" {
		t.Fatalf("crash response %d %v", resp.StatusCode, out)
	}
	code, h := getHealth()
	if code != http.StatusOK || h["status"] != "ok" || h["routable"] != float64(1) {
		t.Fatalf("healthz after crash: %d %v", code, h)
	}
	for i := 0; i < 4; i++ {
		if out := postGenerate(t, ts, GenerateRequest{InputTokens: 5, OutputTokens: 4}); out.Instance != 1 {
			t.Fatalf("request routed to crashed replica: %+v", out)
		}
	}
	st := getStats(t, ts)
	if st.Crashed != 1 || st.Active != 1 ||
		st.Instances[0].Health != "crashed" || st.Instances[1].Health != "healthy" {
		t.Fatalf("stats after crash: crashed=%d active=%d healths=%q,%q",
			st.Crashed, st.Active, st.Instances[0].Health, st.Instances[1].Health)
	}

	// Crash the survivor: no routable replica left, everything 503s.
	if resp, _ := postFault(1, "crash"); resp.StatusCode != http.StatusOK {
		t.Fatalf("second crash status %d", resp.StatusCode)
	}
	if code, h := getHealth(); code != http.StatusServiceUnavailable || h["status"] != "unavailable" {
		t.Fatalf("healthz with all crashed: %d %v", code, h)
	}
	buf, _ := json.Marshal(GenerateRequest{InputTokens: 5, OutputTokens: 4})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("generate with all crashed: status %d, want 503", resp.StatusCode)
	}

	// Restore replica 0: cold restart — routable again, store empty.
	if resp, out := postFault(0, "restore"); resp.StatusCode != http.StatusOK || out["health"] != "healthy" {
		t.Fatalf("restore response %d %v", resp.StatusCode, out)
	}
	if code, h := getHealth(); code != http.StatusOK || h["routable"] != float64(1) {
		t.Fatalf("healthz after restore: %d %v", code, h)
	}
	if st := getStats(t, ts); st.Instances[0].StoreSize != 0 {
		t.Fatalf("restored replica kept a warm store (%d entries)", st.Instances[0].StoreSize)
	}
	if out := postGenerate(t, ts, GenerateRequest{InputTokens: 5, OutputTokens: 4}); out.Instance != 0 {
		t.Fatalf("request not routed to restored replica: %+v", out)
	}

	// Restoring a live replica and bad actions are rejected.
	if resp, _ := postFault(0, "restore"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("restore of live replica: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postFault(99, "crash"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("crash of unknown replica: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postFault(0, "reboot"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown action: status %d, want 400", resp.StatusCode)
	}
}

// getStats fetches and decodes /v1/stats.
func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}
