// Package faults declares seed-deterministic fault plans for the cluster
// simulator: instance crashes with configurable detection latency, link
// brownouts that scale a memsim.Link's bandwidth over a time window, and
// expert-load stalls that freeze a link outright.
//
// A Plan is declarative — a set of crash/brownout/stall specs — and
// compiles into a flat, sorted event stream the cluster's shared-clock
// loop merges with arrivals, autoscale ticks and instance events. The
// compile order is a pure function of the plan (specs expand in slice
// order, events sort stably by time), so two runs of the same plan
// produce byte-identical fault streams; generators derive schedules from
// an explicit seed via internal/rng, never from wall-clock entropy.
//
// Tie-breaks are pinned end to end: among fault events at the same
// instant, compile (sequence) order wins; against the rest of the loop,
// fault events process before arrivals, ticks and instance events at the
// same instant (see internal/cluster).
package faults

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"finemoe/internal/rng"
)

// LinkClass selects which of an instance's transfer links a brownout or
// stall degrades.
type LinkClass uint8

const (
	// LinkPCIe targets the per-GPU host links (DRAM -> HBM).
	LinkPCIe LinkClass = iota
	// LinkStaging targets the staging links below DRAM (the NVMe tier's
	// shared channel in the three-tier hierarchy).
	LinkStaging
)

// String implements fmt.Stringer.
func (l LinkClass) String() string {
	if l == LinkStaging {
		return "staging"
	}
	return "pcie"
}

// Kind enumerates compiled fault-event kinds.
type Kind uint8

const (
	// KindCrash halts an instance: its engine stops serving, but the
	// fleet keeps routing to it until the matching KindDetect.
	KindCrash Kind = iota
	// KindDetect is the crash becoming visible: the instance leaves the
	// routable fleet, stranded requests are lost or re-queued per the
	// resilience policy, and a cold replacement may spawn.
	KindDetect
	// KindBrownout scales the target links' bandwidth by Factor.
	KindBrownout
	// KindRestore ends a brownout window (bandwidth scale back to 1).
	KindRestore
	// KindStall freezes the target links until EndMS (an expert-load
	// stall: queued and on-demand transfers wait out the window).
	KindStall
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindDetect:
		return "detect"
	case KindBrownout:
		return "brownout"
	case KindRestore:
		return "restore"
	case KindStall:
		return "stall"
	}
	return "unknown"
}

// AllInstances targets every non-crashed instance alive when the event
// fires.
const AllInstances = -1

// Crash schedules one instance failure.
type Crash struct {
	// AtMS is the failure time on the shared clock.
	AtMS float64
	// Instance is the target's stable cluster instance ID.
	Instance int
	// DetectMS is the detection latency: the fleet keeps routing to the
	// dead instance for this long after AtMS (0 = detected immediately).
	DetectMS float64
}

// Brownout schedules a bandwidth-degradation window on one link class.
type Brownout struct {
	// AtMS and DurationMS bound the window.
	AtMS, DurationMS float64
	// Link selects the degraded link class.
	Link LinkClass
	// Factor scales the links' bandwidth during the window, in (0, 1].
	Factor float64
	// Instance is the target's stable ID, or AllInstances.
	Instance int
}

// Stall schedules an expert-load stall: the target links are frozen for
// the window (transfers issued during it wait until the window ends).
type Stall struct {
	// AtMS and DurationMS bound the window.
	AtMS, DurationMS float64
	// Link selects the stalled link class.
	Link LinkClass
	// Instance is the target's stable ID, or AllInstances.
	Instance int
}

// Plan is a declarative fault schedule.
type Plan struct {
	Crashes   []Crash
	Brownouts []Brownout
	Stalls    []Stall
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool {
	return p == nil || len(p.Crashes)+len(p.Brownouts)+len(p.Stalls) == 0
}

// Validate checks every spec's parameters.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, c := range p.Crashes {
		if c.AtMS < 0 || c.DetectMS < 0 {
			return fmt.Errorf("faults: crash %d: negative time", i)
		}
		if c.Instance < 0 {
			return fmt.Errorf("faults: crash %d: instance must be a concrete ID", i)
		}
	}
	for i, b := range p.Brownouts {
		if b.AtMS < 0 || b.DurationMS <= 0 {
			return fmt.Errorf("faults: brownout %d: non-positive window", i)
		}
		if b.Factor <= 0 || b.Factor > 1 {
			return fmt.Errorf("faults: brownout %d: factor %v outside (0, 1]", i, b.Factor)
		}
		if b.Instance < AllInstances {
			return fmt.Errorf("faults: brownout %d: bad instance %d", i, b.Instance)
		}
	}
	for i, s := range p.Stalls {
		if s.AtMS < 0 || s.DurationMS <= 0 {
			return fmt.Errorf("faults: stall %d: non-positive window", i)
		}
		if s.Instance < AllInstances {
			return fmt.Errorf("faults: stall %d: bad instance %d", i, s.Instance)
		}
	}
	return nil
}

// Event is one compiled fault occurrence, ready for the shared-clock
// merge.
type Event struct {
	// TimeMS is when the event fires.
	TimeMS float64
	// Kind is the event's action.
	Kind Kind
	// Instance is the target's stable ID (AllInstances for fleet-wide
	// brownouts/stalls; always concrete for crash/detect).
	Instance int
	// Link and Factor parameterize brownout/restore/stall events.
	Link   LinkClass
	Factor float64
	// EndMS closes the window for brownout and stall events (restore
	// events carry their window's start in StartMS for accounting).
	EndMS float64
	// seq pins the order of equal-time events to compile order.
	seq int
}

// Compile expands the plan into its sorted event stream: crashes become
// crash+detect pairs, brownouts become brownout+restore pairs, stalls a
// single stall event. Events are ordered by (TimeMS, compile sequence),
// so equal-time events fire in spec order — crashes first, then
// brownouts, then stalls, each in slice order — and the stream is a pure
// function of the plan.
func (p *Plan) Compile() ([]Event, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Empty() {
		return nil, nil
	}
	evs := make([]Event, 0, 2*len(p.Crashes)+2*len(p.Brownouts)+len(p.Stalls))
	seq := 0
	push := func(e Event) {
		e.seq = seq
		seq++
		evs = append(evs, e)
	}
	for _, c := range p.Crashes {
		push(Event{TimeMS: c.AtMS, Kind: KindCrash, Instance: c.Instance})
		push(Event{TimeMS: c.AtMS + c.DetectMS, Kind: KindDetect, Instance: c.Instance})
	}
	for _, b := range p.Brownouts {
		end := b.AtMS + b.DurationMS
		push(Event{TimeMS: b.AtMS, Kind: KindBrownout, Instance: b.Instance,
			Link: b.Link, Factor: b.Factor, EndMS: end})
		push(Event{TimeMS: end, Kind: KindRestore, Instance: b.Instance,
			Link: b.Link, Factor: 1})
	}
	for _, s := range p.Stalls {
		push(Event{TimeMS: s.AtMS, Kind: KindStall, Instance: s.Instance,
			Link: s.Link, EndMS: s.AtMS + s.DurationMS})
	}
	slices.SortStableFunc(evs, func(a, b Event) int {
		switch {
		case a.TimeMS < b.TimeMS:
			return -1
		case a.TimeMS > b.TimeMS:
			return 1
		default:
			return a.seq - b.seq
		}
	})
	return evs, nil
}

// String renders the event for fault logs ("5000.0ms crash i1").
func (e Event) String() string {
	target := fmt.Sprintf("i%d", e.Instance)
	if e.Instance == AllInstances {
		target = "all"
	}
	switch e.Kind {
	case KindBrownout:
		return fmt.Sprintf("%.1fms brownout %s %s x%.3f until %.1fms",
			e.TimeMS, target, e.Link, e.Factor, e.EndMS)
	case KindRestore:
		return fmt.Sprintf("%.1fms restore %s %s", e.TimeMS, target, e.Link)
	case KindStall:
		return fmt.Sprintf("%.1fms stall %s %s until %.1fms", e.TimeMS, target, e.Link, e.EndMS)
	}
	return fmt.Sprintf("%.1fms %s %s", e.TimeMS, e.Kind, target)
}

// RandomCrashes draws n crashes deterministically from seed: failure
// times uniform over [0, horizonMS), targets uniform over instance IDs
// [0, fleet), each with the given detection latency. The schedule is
// sorted by failure time so the compiled stream reads chronologically.
func RandomCrashes(seed uint64, n int, horizonMS float64, fleet int, detectMS float64) []Crash {
	if n <= 0 || fleet <= 0 || horizonMS <= 0 {
		return nil
	}
	r := rng.New(rng.Mix(seed, 0xFA17))
	out := make([]Crash, n)
	for i := range out {
		out[i] = Crash{
			AtMS:     math.Floor(r.Float64()*horizonMS*10) / 10,
			Instance: r.Intn(fleet),
			DetectMS: detectMS,
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].AtMS < out[b].AtMS })
	return out
}
