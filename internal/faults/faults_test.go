package faults

import (
	"strings"
	"testing"
)

func TestCompileOrderAndExpansion(t *testing.T) {
	p := &Plan{
		Crashes:   []Crash{{AtMS: 100, Instance: 1, DetectMS: 50}},
		Brownouts: []Brownout{{AtMS: 100, DurationMS: 40, Link: LinkStaging, Factor: 0.5, Instance: AllInstances}},
		Stalls:    []Stall{{AtMS: 60, DurationMS: 10, Link: LinkPCIe, Instance: 0}},
	}
	evs, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(evs))
	for i, e := range evs {
		got[i] = e.Kind.String()
	}
	// Stall at 60; at 100 the crash (compile seq 0) precedes the brownout
	// (seq 2); the brownout restore at 140 precedes the detect at 150.
	want := []string{"stall", "crash", "brownout", "restore", "detect"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("compile order %v, want %v", got, want)
	}
	if evs[4].TimeMS != 150 {
		t.Fatalf("detect at %v, want 150", evs[4].TimeMS)
	}
	if evs[2].EndMS != 140 || evs[2].Factor != 0.5 {
		t.Fatalf("brownout window %+v", evs[2])
	}
}

func TestCompileDeterminism(t *testing.T) {
	p := &Plan{
		Crashes:   RandomCrashes(7, 5, 10000, 4, 200),
		Brownouts: []Brownout{{AtMS: 1, DurationMS: 2, Factor: 0.1, Instance: AllInstances}},
	}
	a, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Compile()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := RandomCrashes(7, 5, 10000, 4, 200)
	for i := range c {
		if c[i] != p.Crashes[i] {
			t.Fatalf("RandomCrashes not deterministic at %d", i)
		}
	}
	for i := 1; i < len(c); i++ {
		if c[i].AtMS < c[i-1].AtMS {
			t.Fatalf("RandomCrashes unsorted at %d", i)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []*Plan{
		{Crashes: []Crash{{AtMS: -1, Instance: 0}}},
		{Crashes: []Crash{{AtMS: 0, Instance: -1}}},
		{Brownouts: []Brownout{{AtMS: 0, DurationMS: 0, Factor: 0.5}}},
		{Brownouts: []Brownout{{AtMS: 0, DurationMS: 1, Factor: 1.5}}},
		{Brownouts: []Brownout{{AtMS: 0, DurationMS: 1, Factor: 0}}},
		{Stalls: []Stall{{AtMS: 0, DurationMS: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("plan %d: expected validation error", i)
		}
	}
	var nilPlan *Plan
	if !nilPlan.Empty() || nilPlan.Validate() != nil {
		t.Fatal("nil plan should be empty and valid")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("crash@5000:i1:d250, brownout@2000+3000:staging:x0.25:i0, stall@1000+200:pcie")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 1 || p.Crashes[0] != (Crash{AtMS: 5000, Instance: 1, DetectMS: 250}) {
		t.Fatalf("crashes: %+v", p.Crashes)
	}
	if len(p.Brownouts) != 1 || p.Brownouts[0] != (Brownout{AtMS: 2000, DurationMS: 3000, Link: LinkStaging, Factor: 0.25, Instance: 0}) {
		t.Fatalf("brownouts: %+v", p.Brownouts)
	}
	if len(p.Stalls) != 1 || p.Stalls[0] != (Stall{AtMS: 1000, DurationMS: 200, Link: LinkPCIe, Instance: AllInstances}) {
		t.Fatalf("stalls: %+v", p.Stalls)
	}
	for _, bad := range []string{
		"crash@5000",         // no instance
		"nuke@1",             // unknown kind
		"brownout@1:x0.5",    // no window
		"crash@x",            // bad time
		"crash@1:i0:zoom",    // unknown field
		"brownout@1+2:x9:i0", // factor out of range
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q): expected error", bad)
		}
	}
}
