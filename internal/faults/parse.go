package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePlan parses the compact CLI fault-plan syntax: a comma-separated
// list of events, each `kind@at[+window][:field]...` with times in
// milliseconds.
//
//	crash@5000:i1:d250            crash instance 1 at 5 s, detected 250 ms later
//	brownout@2000+3000:staging:x0.25:i0
//	                              staging links of instance 0 at 20% bandwidth
//	                              from 2 s to 5 s (omit iN to hit the fleet)
//	stall@1000+200:pcie           freeze every instance's PCIe links for 200 ms
//
// Field prefixes: `i` target instance, `d` detection latency (crash),
// `x` bandwidth factor (brownout), and a bare `pcie`/`staging` link
// class (brownout/stall; default staging).
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("faults: %q: missing @time", part)
		}
		fields := strings.Split(rest, ":")
		at, dur, err := parseWindow(fields[0])
		if err != nil {
			return nil, fmt.Errorf("faults: %q: %w", part, err)
		}
		inst := AllInstances
		detect := 0.0
		factor := 0.0
		link := LinkStaging
		for _, f := range fields[1:] {
			switch {
			case f == "pcie":
				link = LinkPCIe
			case f == "staging", f == "nvme":
				link = LinkStaging
			case strings.HasPrefix(f, "i"):
				v, err := strconv.Atoi(f[1:])
				if err != nil {
					return nil, fmt.Errorf("faults: %q: bad instance %q", part, f)
				}
				inst = v
			case strings.HasPrefix(f, "d"):
				v, err := strconv.ParseFloat(f[1:], 64)
				if err != nil {
					return nil, fmt.Errorf("faults: %q: bad detect latency %q", part, f)
				}
				detect = v
			case strings.HasPrefix(f, "x"):
				v, err := strconv.ParseFloat(f[1:], 64)
				if err != nil {
					return nil, fmt.Errorf("faults: %q: bad factor %q", part, f)
				}
				factor = v
			default:
				return nil, fmt.Errorf("faults: %q: unknown field %q", part, f)
			}
		}
		switch kind {
		case "crash":
			if inst == AllInstances {
				return nil, fmt.Errorf("faults: %q: crash needs a concrete instance (iN)", part)
			}
			p.Crashes = append(p.Crashes, Crash{AtMS: at, Instance: inst, DetectMS: detect})
		case "brownout":
			if dur <= 0 {
				return nil, fmt.Errorf("faults: %q: brownout needs a +duration window", part)
			}
			if factor == 0 {
				factor = 0.25
			}
			p.Brownouts = append(p.Brownouts, Brownout{
				AtMS: at, DurationMS: dur, Link: link, Factor: factor, Instance: inst})
		case "stall":
			if dur <= 0 {
				return nil, fmt.Errorf("faults: %q: stall needs a +duration window", part)
			}
			p.Stalls = append(p.Stalls, Stall{AtMS: at, DurationMS: dur, Link: link, Instance: inst})
		default:
			return nil, fmt.Errorf("faults: %q: unknown kind %q (crash|brownout|stall)", part, kind)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseWindow parses "at" or "at+duration" (milliseconds).
func parseWindow(s string) (at, dur float64, err error) {
	atStr, durStr, has := strings.Cut(s, "+")
	if at, err = strconv.ParseFloat(atStr, 64); err != nil {
		return 0, 0, fmt.Errorf("bad time %q", atStr)
	}
	if !has {
		return at, 0, nil
	}
	if dur, err = strconv.ParseFloat(durStr, 64); err != nil {
		return 0, 0, fmt.Errorf("bad duration %q", durStr)
	}
	return at, dur, nil
}
