package policy

import (
	"testing"

	"finemoe/internal/moe"
)

func TestBaseDefaults(t *testing.T) {
	var b Base
	if d := b.StartRequest(1, 0); d != 0 {
		t.Fatal("StartRequest default not zero")
	}
	if d := b.StartIteration(nil, 0); d != 0 {
		t.Fatal("StartIteration default not zero")
	}
	if d := b.OnGate(0, nil, 0); d != 0 {
		t.Fatal("OnGate default not zero")
	}
	if d := b.EndIteration(1, &moe.Iteration{}, 0); d != 0 {
		t.Fatal("EndIteration default not zero")
	}
	b.EndRequest(1, 0) // must not panic
	if b.Scorer() == nil || b.Scorer().Name() != "LRU" {
		t.Fatal("default scorer must be LRU")
	}
	if b.MemoryOverheadBytes() != 0 {
		t.Fatal("default memory overhead")
	}
}

func TestBaseBreakdownAccumulates(t *testing.T) {
	var b Base
	if len(b.Breakdown()) != 0 {
		t.Fatal("fresh breakdown not empty")
	}
	b.Account(CompMapMatch, 1.5)
	b.Account(CompMapMatch, 0.5)
	b.Account(CompUpdate, 2)
	bd := b.Breakdown()
	if bd[CompMapMatch] != 2 || bd[CompUpdate] != 2 {
		t.Fatalf("breakdown %v", bd)
	}
	// Returned map is a copy.
	bd[CompMapMatch] = 99
	if b.Breakdown()[CompMapMatch] != 2 {
		t.Fatal("Breakdown leaked internal state")
	}
}

func TestBaseAttach(t *testing.T) {
	var b Base
	if b.RT != nil {
		t.Fatal("zero Base has runtime")
	}
	b.Attach(nil)
	// Attach stores whatever it is given; policies check for nil.
}

func TestComponentNamesDistinct(t *testing.T) {
	names := []string{CompCollect, CompMapMatch, CompPrefetch, CompLoad, CompUpdate, CompInfer, CompPredict}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("component names not distinct: %v", names)
		}
		seen[n] = true
	}
}
