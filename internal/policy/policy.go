// Package policy defines the contract between the serving engine and expert
// offloading policies. The engine drives inference iterations and exposes a
// Runtime for issuing weight transfers; policies (FineMoE and the four
// baselines) react to per-iteration and per-layer events by prefetching,
// synchronously loading, and scoring cache evictions.
package policy

import (
	"finemoe/internal/cache"
	"finemoe/internal/moe"
)

// IterView is the per-request information available when an iteration
// starts: the observed semantic embedding (embedding-layer output, §4.2.1)
// and the phase of the request.
type IterView struct {
	// ReqID identifies the request within the run.
	ReqID uint64
	// Iter is the iteration index (0 = prefill).
	Iter int
	// Semantic is the observed semantic embedding for this iteration.
	Semantic []float64
	// IsPrefill marks the prompt-processing iteration.
	IsPrefill bool
	// Tokens is the number of tokens this iteration processes.
	Tokens int
}

// LayerView is the per-request gate observation delivered after a layer's
// gate network runs: the probability distribution over the layer's experts
// and the hidden state feeding the gate (the signal speculative policies
// use).
type LayerView struct {
	ReqID  uint64
	Iter   int
	Probs  []float64
	Hidden []float64
}

// Runtime is the engine surface available to policies. All times are
// virtual milliseconds.
type Runtime interface {
	// Config returns the model being served.
	Config() moe.Config
	// Prefetch enqueues an asynchronous expert transfer. issueTime is
	// when the transfer may begin — policies add their own prediction
	// latency here so asynchronous search costs are modeled faithfully.
	// It returns false if the expert is already resident or in flight.
	Prefetch(ref moe.ExpertRef, priority, issueTime float64) bool
	// SyncLoad blocks inference until every ref is resident and returns
	// the completion time. Used by synchronous designs (DeepSpeed,
	// Mixtral-Offloading, MoE-Infinity).
	SyncLoad(refs []moe.ExpertRef, now float64) float64
	// Resident reports whether the expert's weights are in GPU memory.
	Resident(ref moe.ExpertRef) bool
	// Tracked reports whether a transfer for ref is queued or in flight
	// on any link of the hierarchy (PCIe upload or deeper staging).
	Tracked(ref moe.ExpertRef) bool

	// Tier returns the topmost memory tier where ref is resident:
	// 0 = GPU HBM, 1 = host DRAM, rising through the configured
	// hierarchy. The bottom tier always holds every expert, so Tier
	// never fails. Under the degenerate two-tier configuration the
	// answer is always 0 or 1.
	Tier(ref moe.ExpertRef) int
	// Promote asynchronously stages ref one tier upward (toward the
	// GPU): a DRAM-resident expert gets a PCIe upload, a deeper one a
	// staging copy into the tier above. Returns false when ref is
	// already GPU-resident or a transfer for it is tracked. Unlike
	// Prefetch it does not chain across tiers — policies that want the
	// full route use Prefetch, which stages through every intermediate
	// tier automatically.
	Promote(ref moe.ExpertRef, priority, issueTime float64) bool
	// Demote drops ref's topmost resident copy one tier down at virtual
	// time now: a GPU-resident expert falls back to DRAM, a
	// DRAM-resident one to the tier below (its backing copy; the drop
	// is free — expert weights are immutable). Returns false when ref
	// is resident only in the unbounded bottom tier, or when its GPU
	// copy is pinned by the executing layer (in-use weights are never
	// dropped).
	Demote(ref moe.ExpertRef, now float64) bool
	// MemoryPressure reports the host DRAM tier's thrash level in
	// [0, 1]: the exponentially decayed fraction of recent expert
	// fetches that had to be staged from below DRAM. 0 under the
	// degenerate unbounded configuration (no fetch can spill), rising
	// toward 1 when the working set outgrows the DRAM budget and churns
	// through the staging link.
	MemoryPressure() float64
}

// Policy is an expert offloading strategy. Hook return values are
// synchronous CPU-side delays in milliseconds added to the inference clock
// (asynchronous designs return 0 and model their latency through prefetch
// issue times).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Attach binds the policy to an engine runtime before serving.
	Attach(rt Runtime)
	// StartRequest fires when a request is admitted.
	StartRequest(reqID uint64, now float64) float64
	// StartIteration fires before layer 0 of every iteration with one
	// view per request in the batch.
	StartIteration(views []IterView, now float64) float64
	// OnGate fires after layer's gate output and before the layer's
	// experts are resolved and computed.
	OnGate(layer int, views []LayerView, now float64) float64
	// EndIteration fires after the last layer with the request's full
	// iteration record (the paper's Step 5 map update).
	EndIteration(reqID uint64, it *moe.Iteration, now float64) float64
	// EndRequest fires when a request completes.
	EndRequest(reqID uint64, now float64)
	// Scorer returns the cache-eviction scorer the policy pairs with.
	Scorer() cache.Scorer
	// Breakdown returns cumulative per-component latencies (ms) for the
	// paper's Fig. 17 accounting, including asynchronous work that does
	// not contribute to end-to-end time.
	Breakdown() map[string]float64
	// MemoryOverheadBytes reports CPU-side metadata memory (the Expert
	// Map Store for FineMoE, the EAM collection for MoE-Infinity).
	MemoryOverheadBytes() int64
}

// Base provides no-op defaults so policies only implement the hooks they
// need. Embed it by value.
type Base struct {
	RT Runtime
	// comp accumulates the standard components densely; compTouched
	// records which slots were ever accounted so Breakdown reproduces
	// the key set a map accumulation would have had. breakdown catches
	// non-standard component names only.
	comp        [NumComponents]float64
	compTouched [NumComponents]bool
	breakdown   map[string]float64
}

// Attach stores the runtime.
func (b *Base) Attach(rt Runtime) { b.RT = rt }

// StartRequest is a no-op.
func (b *Base) StartRequest(uint64, float64) float64 { return 0 }

// StartIteration is a no-op.
func (b *Base) StartIteration([]IterView, float64) float64 { return 0 }

// OnGate is a no-op.
func (b *Base) OnGate(int, []LayerView, float64) float64 { return 0 }

// EndIteration is a no-op.
func (b *Base) EndIteration(uint64, *moe.Iteration, float64) float64 { return 0 }

// EndRequest is a no-op.
func (b *Base) EndRequest(uint64, float64) {}

// Scorer defaults to LRU.
func (b *Base) Scorer() cache.Scorer { return cache.LRU{} }

// MemoryOverheadBytes defaults to zero.
func (b *Base) MemoryOverheadBytes() int64 { return 0 }

// Account accumulates a named latency component. The standard components
// accumulate into a dense array — Account runs several times per
// iteration, so a string-keyed map update here (hash + probe per call)
// is measurable at multi-million-request horizons. Non-standard names
// fall back to a lazily built map.
func (b *Base) Account(component string, ms float64) {
	if i := ComponentIndex(component); i >= 0 {
		b.comp[i] += ms
		b.compTouched[i] = true
		return
	}
	if b.breakdown == nil {
		b.breakdown = map[string]float64{}
	}
	b.breakdown[component] += ms
}

// Breakdown returns accumulated component latencies. Only components that
// were actually accounted appear as keys (a component accounted with 0 ms
// still appears), matching the map-accumulation behavior exactly.
func (b *Base) Breakdown() map[string]float64 {
	out := make(map[string]float64, len(b.breakdown)+len(b.comp))
	for i, v := range b.comp {
		if b.compTouched[i] {
			out[Components[i]] = v
		}
	}
	for k, v := range b.breakdown {
		out[k] = v
	}
	return out
}

// Standard breakdown component names (Fig. 17).
const (
	CompCollect  = "collect_context"
	CompMapMatch = "map_match"
	CompPrefetch = "expert_prefetch"
	CompLoad     = "expert_load"
	CompUpdate   = "map_update"
	CompInfer    = "inference"
	CompPredict  = "predict_sync"
)

// Components lists the standard component names in ComponentIndex order.
var Components = [...]string{
	CompCollect, CompMapMatch, CompPrefetch, CompLoad,
	CompUpdate, CompInfer, CompPredict,
}

// NumComponents is the size of the dense accounting array.
const NumComponents = len(Components)

// ComponentIndex maps a standard component name to its dense slot, or -1.
// The switch compiles to length-bucketed comparisons of interned
// constants — no hashing.
//
//finemoe:hotpath
func ComponentIndex(component string) int {
	switch component {
	case CompCollect:
		return 0
	case CompMapMatch:
		return 1
	case CompPrefetch:
		return 2
	case CompLoad:
		return 3
	case CompUpdate:
		return 4
	case CompInfer:
		return 5
	case CompPredict:
		return 6
	}
	return -1
}
