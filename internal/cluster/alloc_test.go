package cluster

import (
	"runtime"
	"testing"

	"finemoe/internal/moe"
	"finemoe/internal/raceflag"
	"finemoe/internal/workload"
)

// TestRunStreamSteadyStateAllocs guards the streaming loop's per-request
// allocation budget. The bound is deliberately loose against the
// measured rate (a few dozen allocations per request, dominated by
// result-row bookkeeping and policy state) — it exists to catch a
// regression that reintroduces per-request maps, closures, or trace
// materialization into the hot loop, not to pin an exact count.
func TestRunStreamSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const n = 2000
	m := moe.NewModel(moe.Tiny(), 11)
	c := New(Options{
		Engines: testEngines(m, 4),
		Router:  NewLeastLoaded(),
	})
	src := workload.StreamOnline(streamDataset(31), moe.Tiny().SemDim,
		workload.OnlineOptions{Arrivals: workload.BurstyMMPP(60), N: n, Seed: 5})

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res := c.RunStream(src)
	runtime.ReadMemStats(&after)

	if res.Served != n {
		t.Fatalf("served %d of %d requests", res.Served, n)
	}
	perReq := float64(after.Mallocs-before.Mallocs) / float64(n)
	t.Logf("steady-state allocations per request: %.1f", perReq)
	const budget = 100
	if perReq > budget {
		t.Errorf("streaming loop allocates %.1f objects per request, budget %d", perReq, budget)
	}
}
