package cluster

import (
	"fmt"

	"finemoe/internal/metrics"
	"finemoe/internal/serve"
)

// InstanceResult is one replica's aggregated run.
type InstanceResult struct {
	// ID is the instance index.
	ID int
	// Submitted counts requests routed to the instance.
	Submitted int
	// Result is the instance engine's own aggregation.
	Result *serve.Result
}

// Result aggregates a cluster run: per-instance engine results plus
// fleet-wide admission accounting and latency/hit-rate summaries over
// every served request.
type Result struct {
	// Admission and Router name the pipeline policies.
	Admission, Router string
	// Instances holds each replica's result, in instance order.
	Instances []InstanceResult
	// Admitted and Rejected count the admission stage's decisions.
	Admitted, Rejected int
	// Served counts requests that completed across the fleet.
	Served int
	// MeanTTFT and MeanTPOT are the fleet-wide headline latencies (ms).
	MeanTTFT, MeanTPOT float64
	// TTFT, TPOT and E2E are fleet-wide order statistics (ms).
	TTFT, TPOT, E2E metrics.Summary
	// HitRate is total expert-cache hits over activations fleet-wide.
	HitRate float64
	// WallClockMS is the fleet makespan: the latest instance clock.
	WallClockMS float64
}

// Finalize aggregates everything served so far into a cluster Result
// without submitting further work. Instances must be drained first (Drain
// or RunTrace do this).
func (c *Cluster) Finalize() *Result {
	res := &Result{
		Admission: c.admission.Name(),
		Router:    c.router.Name(),
		Admitted:  c.admitted,
		Rejected:  c.rejected,
	}
	var ttfts, tpots, e2es []float64
	var hits, misses int
	for _, in := range c.instances {
		ir := in.Engine.Finalize()
		res.Instances = append(res.Instances, InstanceResult{
			ID: in.ID, Submitted: in.Submitted, Result: ir,
		})
		res.Served += len(ir.Requests)
		for _, q := range ir.Requests {
			ttfts = append(ttfts, q.TTFTms)
			e2es = append(e2es, q.E2Ems)
			if q.OutputTokens > 1 {
				tpots = append(tpots, q.TPOTms)
			}
			hits += q.Hits
			misses += q.Misses
		}
		if ir.WallClockMS > res.WallClockMS {
			res.WallClockMS = ir.WallClockMS
		}
	}
	res.TTFT = metrics.Summarize(ttfts)
	res.TPOT = metrics.Summarize(tpots)
	res.E2E = metrics.Summarize(e2es)
	res.MeanTTFT = res.TTFT.Mean
	res.MeanTPOT = res.TPOT.Mean
	if hits+misses > 0 {
		res.HitRate = float64(hits) / float64(hits+misses)
	} else {
		res.HitRate = 1
	}
	return res
}

// String renders a one-line fleet summary.
func (r *Result) String() string {
	return fmt.Sprintf(
		"cluster[%d] %s/%s: served %d, rejected %d, TTFT %.0f ms, TPOT %.1f ms, hit rate %.3f",
		len(r.Instances), r.Admission, r.Router, r.Served, r.Rejected,
		r.MeanTTFT, r.MeanTPOT, r.HitRate)
}
