package cluster

import (
	"fmt"

	"finemoe/internal/metrics"
	"finemoe/internal/serve"
)

// InstanceResult is one replica's aggregated run.
type InstanceResult struct {
	// ID is the instance's stable identity.
	ID int
	// Submitted counts requests routed to the instance.
	Submitted int
	// StartedMS is the cluster time the instance joined the fleet
	// (0 for the initial fleet).
	StartedMS float64
	// Retired reports whether the autoscaler drained the instance away;
	// RetiredMS is the shrink-decision time.
	Retired   bool
	RetiredMS float64
	// Crashed reports a fault-plan crash; CrashedMS is the failure time.
	Crashed   bool
	CrashedMS float64
	// Result is the instance engine's own aggregation.
	Result *serve.Result
}

// Result aggregates a cluster run: per-instance engine results plus
// fleet-wide admission accounting and latency/hit-rate summaries over
// every served request.
type Result struct {
	// Admission and Router name the pipeline policies.
	Admission, Router string
	// Autoscaler names the fleet-sizing policy ("" when fixed).
	Autoscaler string
	// Instances holds each replica's result, in creation (ID) order,
	// including instances the autoscaler retired.
	Instances []InstanceResult
	// Admitted and Rejected count the admission stage's decisions.
	Admitted, Rejected int
	// FollowUps counts closed-loop requests injected by the FollowUp hook
	// (multi-turn session continuations), included in Admitted/Rejected.
	FollowUps int
	// Served counts requests that completed across the fleet.
	Served int
	// MeanTTFT and MeanTPOT are the fleet-wide headline latencies (ms).
	MeanTTFT, MeanTPOT float64
	// TTFT, TPOT and E2E are fleet-wide order statistics (ms).
	TTFT, TPOT, E2E metrics.Summary
	// Hits and Misses are the fleet totals of the engines' batch-level
	// expert-cache counts (one per unique expert per layer per
	// iteration), matching each instance's own Result.HitRate definition.
	Hits, Misses int
	// HitRate is Hits / (Hits + Misses) fleet-wide.
	HitRate float64
	// ScaleEvents is the autoscaler's resize history in decision order.
	ScaleEvents []ScaleEvent
	// PeakInstances is the largest routable fleet size reached.
	PeakInstances int
	// InstanceHours is the fleet's provisioned capacity in virtual
	// instance-hours: each instance counts from when it joined until it
	// finished draining (retired), stopped serving (crashed) or until the
	// fleet makespan (active), so an autoscaled run that shrinks early
	// costs fewer instance-hours than a fixed fleet of its peak size.
	InstanceHours float64
	// WallClockMS is the fleet makespan: the latest instance clock.
	WallClockMS float64

	// Availability accounting (all zero on fault-free runs).
	//
	// FailedRequests counts admitted requests that never completed:
	// stranded on a crashed instance without requeue, or exhausted of
	// retries/budget after timeouts. Retries counts re-dispatched copies
	// (timeout backoff retries and crash requeues); HedgedWins counts
	// requests whose speculative hedge copy finished first; LostInFlight
	// counts requests harvested from crashed instances (including ones
	// later recovered by requeue). Crashes counts applied crash events.
	FailedRequests, Retries, HedgedWins, LostInFlight, Crashes int
	// DegradedMS integrates brownout/stall exposure: the sum over applied
	// degradation windows of (window length × instances degraded),
	// clipped to the fleet makespan.
	DegradedMS float64
	// FaultLog is the run's deterministic fault/resilience event stream,
	// in processing order (empty without a fault plan).
	FaultLog []FaultRecord
}

// Finalize aggregates everything served so far into a cluster Result
// without submitting further work. Instances must be drained first (Drain
// or RunTrace do this).
func (c *Cluster) Finalize() *Result {
	res := &Result{
		Admission:   c.admission.Name(),
		Router:      c.router.Name(),
		Admitted:    c.admitted,
		Rejected:    c.rejected,
		FollowUps:   c.followUps,
		ScaleEvents: c.events,
	}
	if c.scaler != nil {
		res.Autoscaler = c.scaler.Name()
	}
	res.FailedRequests = c.failedReqs
	res.Retries = c.retries
	res.HedgedWins = c.hedgedWins
	res.LostInFlight = c.lostInFlight
	res.Crashes = c.crashes
	res.FaultLog = c.flog
	// Latency vectors are chunked columns, not append-grown flat slices:
	// at multi-million-request horizons a flat slice copies every sample
	// O(log n) times across regrowths and transiently holds ~3× the
	// column during the largest one, while the chunked column writes each
	// sample once. Summaries stay byte-identical — Column.Summarize
	// funnels into the same sorted-sample math as metrics.Summarize.
	var ttfts, tpots, e2es metrics.Column
	for _, in := range c.instances {
		ir := in.Engine.Finalize()
		res.Instances = append(res.Instances, InstanceResult{
			ID: in.ID, Submitted: in.Submitted,
			StartedMS: in.StartedMS, Retired: in.Retiring, RetiredMS: in.RetiredMS,
			Crashed: in.Crashed, CrashedMS: in.CrashedMS,
			Result: ir,
		})
		for _, q := range ir.Requests {
			if len(c.stale) > 0 && c.stale[staleKey{inst: in.ID, id: q.ID}] {
				// The losing completion of a hedge/retry race: its request
				// was already served elsewhere, so it does not count again
				// toward fleet service or latency aggregates (it stays in
				// the instance's own Result).
				continue
			}
			res.Served++
			ttfts.Append(q.TTFTms)
			e2es.Append(q.E2Ems)
			if q.OutputTokens > 1 {
				tpots.Append(q.TPOTms)
			}
		}
		// Engine-level counts (batch-deduplicated), not per-request sums:
		// the fleet hit rate must agree with the instances' own HitRate
		// definition, so a 1-instance cluster reports the engine's rate.
		res.Hits += ir.Hits
		res.Misses += ir.Misses
		if ir.WallClockMS > res.WallClockMS {
			res.WallClockMS = ir.WallClockMS
		}
	}
	res.TTFT = ttfts.Summarize()
	res.TPOT = tpots.Summarize()
	res.E2E = e2es.Summarize()
	res.MeanTTFT = res.TTFT.Mean
	res.MeanTPOT = res.TPOT.Mean
	if res.Hits+res.Misses > 0 {
		res.HitRate = float64(res.Hits) / float64(res.Hits+res.Misses)
	} else {
		res.HitRate = 1
	}
	res.PeakInstances = c.initial
	for _, ev := range c.events {
		if ev.ActiveAfter > res.PeakInstances {
			res.PeakInstances = ev.ActiveAfter
		}
	}
	for _, in := range c.instances {
		end := res.WallClockMS
		if in.Crashed {
			// A crashed instance stops serving (and costing capacity) at
			// the failure itself; detection latency only delays the fleet's
			// reaction.
			end = in.CrashedMS
		} else if in.Retiring {
			// A retired instance stops costing capacity once it has both
			// been told to drain and finished its last request.
			end = in.RetiredMS
			if t := in.Engine.Now(); t > end {
				end = t
			}
		}
		if span := end - in.StartedMS; span > 0 {
			res.InstanceHours += span / 3.6e6
		}
	}
	for _, w := range c.degraded {
		start, end := w.start, w.end
		if start > res.WallClockMS {
			start = res.WallClockMS
		}
		if end > res.WallClockMS {
			end = res.WallClockMS
		}
		res.DegradedMS += (end - start) * float64(w.n)
	}
	return res
}

// String renders a one-line fleet summary.
func (r *Result) String() string {
	scale := ""
	if r.Autoscaler != "" {
		scale = fmt.Sprintf(", %s peak %d (%d resizes), %.4f inst-h",
			r.Autoscaler, r.PeakInstances, len(r.ScaleEvents), r.InstanceHours)
	}
	return fmt.Sprintf(
		"cluster[%d] %s/%s: served %d, rejected %d, TTFT %.0f ms, TPOT %.1f ms, hit rate %.3f%s",
		len(r.Instances), r.Admission, r.Router, r.Served, r.Rejected,
		r.MeanTTFT, r.MeanTPOT, r.HitRate, scale)
}
