package cluster

import (
	"encoding/json"
	"math"
	"testing"

	"finemoe/internal/core"
	"finemoe/internal/moe"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// --- queue-pressure policy ---------------------------------------------------

func pressureFleet(loads ...int) []InstanceState {
	out := make([]InstanceState, len(loads))
	for i, l := range loads {
		out[i] = InstanceState{ID: i, QueueDepth: l}
	}
	return out
}

func TestQueuePressureGrowAfterSustainedPressure(t *testing.T) {
	q := NewQueuePressure(QueuePressureOptions{
		HighWatermark: 4, LowWatermark: 1, SustainMS: 100, CooldownMS: 100,
	})
	// Above the high watermark but not yet sustained: hold.
	if d := q.Decide(0, pressureFleet(10)); d != Hold {
		t.Fatalf("tick 0: %v, want Hold", d)
	}
	if d := q.Decide(50, pressureFleet(10)); d != Hold {
		t.Fatalf("tick 50: %v, want Hold", d)
	}
	// Sustained for the full window: grow.
	if d := q.Decide(100, pressureFleet(10)); d != Grow {
		t.Fatalf("tick 100: %v, want Grow", d)
	}
	// Cooldown paces the next action even under continued pressure.
	if d := q.Decide(150, pressureFleet(10)); d != Hold {
		t.Fatalf("tick 150 (cooldown): %v, want Hold", d)
	}
	if d := q.Decide(200, pressureFleet(10)); d != Grow {
		t.Fatalf("tick 200: %v, want Grow", d)
	}
}

func TestQueuePressureShrinkWhenIdle(t *testing.T) {
	q := NewQueuePressure(QueuePressureOptions{
		HighWatermark: 4, LowWatermark: 1, SustainMS: 100, CooldownMS: 100,
	})
	for _, tick := range []float64{0, 50} {
		if d := q.Decide(tick, pressureFleet(0, 0)); d != Hold {
			t.Fatalf("tick %v: want Hold", tick)
		}
	}
	if d := q.Decide(100, pressureFleet(0, 0)); d != Shrink {
		t.Fatal("sustained idle fleet did not shrink")
	}
}

// TestQueuePressureRefusedDecisionDoesNotChargeCooldown: a decision the
// cluster refuses at its fleet bounds (e.g. Grow while pinned at
// MaxInstances) must not push the next real resize a cooldown window
// into the future.
func TestQueuePressureRefusedDecisionDoesNotChargeCooldown(t *testing.T) {
	opts := QueuePressureOptions{
		HighWatermark: 4, LowWatermark: 1, SustainMS: 100, CooldownMS: 1000,
	}
	q := NewQueuePressure(opts)
	q.Decide(0, pressureFleet(10))
	if d := q.Decide(100, pressureFleet(10)); d != Grow {
		t.Fatalf("sustained pressure: %v, want Grow", d)
	}
	q.(DecisionFeedback).DecisionApplied(Grow, false) // fleet at MaxInstances
	// Load collapses; once idle is sustained, the shrink must not wait
	// out a cooldown charged to the refused grow.
	q.Decide(150, pressureFleet(0))
	if d := q.Decide(250, pressureFleet(0)); d != Shrink {
		t.Fatalf("post-refusal shrink: %v, want Shrink", d)
	}

	// An applied decision still charges the cooldown.
	q2 := NewQueuePressure(opts)
	q2.Decide(0, pressureFleet(10))
	if d := q2.Decide(100, pressureFleet(10)); d != Grow {
		t.Fatal("sustained pressure did not grow")
	}
	q2.(DecisionFeedback).DecisionApplied(Grow, true)
	q2.Decide(150, pressureFleet(0))
	if d := q2.Decide(250, pressureFleet(0)); d != Hold {
		t.Fatalf("cooldown after applied grow: %v, want Hold", d)
	}
}

// TestQueuePressureHysteresisNoFlap: a queue oscillating across both
// watermarks every tick keeps resetting the sustain timers, so the
// policy holds forever instead of flapping grow/shrink.
func TestQueuePressureHysteresisNoFlap(t *testing.T) {
	q := NewQueuePressure(QueuePressureOptions{
		HighWatermark: 4, LowWatermark: 1, SustainMS: 100, CooldownMS: 100,
	})
	for i := 0; i < 100; i++ {
		fleet := pressureFleet(0)
		if i%2 == 0 {
			fleet = pressureFleet(10)
		}
		if d := q.Decide(float64(i)*60, fleet); d != Hold {
			t.Fatalf("tick %d: oscillating load produced %v, want Hold", i, d)
		}
	}
	// Loads inside the dead band also reset the timers.
	q2 := NewQueuePressure(QueuePressureOptions{
		HighWatermark: 4, LowWatermark: 1, SustainMS: 100, CooldownMS: 100,
	})
	seq := []int{10, 2, 10, 2, 10}
	for i, l := range seq {
		if d := q2.Decide(float64(i)*60, pressureFleet(l)); d != Hold {
			t.Fatalf("band tick %d: %v, want Hold", i, d)
		}
	}
}

// --- router resize contract --------------------------------------------------

// fleetIDs builds an idle fleet view with the given stable IDs.
func fleetIDs(ids ...int) []InstanceState {
	out := make([]InstanceState, len(ids))
	for i, id := range ids {
		out[i] = InstanceState{ID: id}
	}
	return out
}

// TestRoundRobinCursorSurvivesShrink: the cursor tracks instance
// identity, so removing a replica mid-cycle neither double-routes nor
// skips the survivors.
func TestRoundRobinCursorSurvivesShrink(t *testing.T) {
	r := NewRoundRobin()
	full := fleetIDs(0, 1, 2)
	if got := r.Route(req(0, 0), 0, full); full[got].ID != 0 {
		t.Fatalf("first route -> ID %d, want 0", full[got].ID)
	}
	if got := r.Route(req(1, 0), 0, full); full[got].ID != 1 {
		t.Fatalf("second route -> ID %d, want 1", full[got].ID)
	}
	// Instance 2 retires; the cursor (last-routed ID 1) must advance to
	// the next surviving ID, wrapping over the gap.
	shrunk := fleetIDs(0, 1)
	if got := r.Route(req(2, 0), 0, shrunk); shrunk[got].ID != 0 {
		t.Fatalf("post-shrink route -> ID %d, want wrap to 0", shrunk[got].ID)
	}
	// Instance 1 retires, instance 3 joins: continue in ID order.
	resized := fleetIDs(0, 3)
	if got := r.Route(req(3, 0), 0, resized); resized[got].ID != 3 {
		t.Fatalf("post-grow route -> ID %d, want 3", resized[got].ID)
	}
	if got := r.Route(req(4, 0), 0, resized); resized[got].ID != 0 {
		t.Fatalf("wrap route -> ID %d, want 0", resized[got].ID)
	}
}

// TestSemanticAffinityIdentityAcrossShrink: centroid memory is keyed by
// instance ID, so when the fleet changes shape, a learned topic follows
// its instance rather than whatever replica now occupies the old index.
func TestSemanticAffinityIdentityAcrossShrink(t *testing.T) {
	r := NewSemanticAffinity(SemanticAffinityOptions{})
	a := []float64{1, 0, 0, 0}

	// Teach topic a to instance ID 2 (index 2 of the full fleet): IDs 0
	// and 1 carry load, so least-loaded fallback places it on ID 2.
	full := fleetIDs(0, 1, 2)
	full[0].QueueDepth, full[1].QueueDepth = 1, 1
	if got := r.Route(embReq(1, a), 0, full); full[got].ID != 2 {
		t.Fatalf("topic seeded on ID %d, want 2", full[got].ID)
	}

	// Instance 1 retires. ID 2 now sits at index 1; an index-keyed
	// memory would look up the old position and misattribute the topic.
	shrunk := fleetIDs(0, 2)
	shrunk[0].QueueDepth = 1
	if got := r.Route(embReq(2, a), 0, shrunk); shrunk[got].ID != 2 {
		t.Fatalf("post-shrink topic routed to ID %d, want sticky 2", shrunk[got].ID)
	}
}

// TestSemanticAffinityForgetsRetiredInstance: when the affine instance
// leaves the fleet its centroids are dropped, so the topic migrates via
// the fallback instead of sticking to a stale ID — and a later instance
// reusing the slot position inherits nothing.
func TestSemanticAffinityForgetsRetiredInstance(t *testing.T) {
	r := NewSemanticAffinity(SemanticAffinityOptions{})
	a := []float64{1, 0, 0, 0}

	full := fleetIDs(0, 1)
	full[0].QueueDepth = 1
	if got := r.Route(embReq(1, a), 0, full); full[got].ID != 1 {
		t.Fatalf("topic seeded on ID %d, want 1", full[got].ID)
	}
	// ID 1 retires; ID 3 joins later. The topic's memory must not
	// transfer to the newcomer: with an evenly idle fleet the fallback
	// places it on the lowest index.
	resized := fleetIDs(0, 3)
	if got := r.Route(embReq(2, a), 0, resized); resized[got].ID != 0 {
		t.Fatalf("retired topic re-seeded on ID %d, want fallback 0", resized[got].ID)
	}
	sa := r.(*semanticAffinity)
	if _, stale := sa.centroids[1]; stale {
		t.Fatal("centroid memory of retired instance 1 not dropped")
	}
}

// TestSemanticAffinityEvictionCompacts: evicting the oldest centroid
// must not retain it through the slice's backing array, so the memory
// footprint stays bounded on long-running fleets.
func TestSemanticAffinityEvictionCompacts(t *testing.T) {
	r := NewSemanticAffinity(SemanticAffinityOptions{MaxCentroids: 4, MinSim: 0.99, MergeSim: 0.999}).(*semanticAffinity)
	fleet := fleetIDs(0)
	dim := 16
	for i := 0; i < 1000; i++ {
		emb := make([]float64, dim)
		emb[i%dim] = 1 // orthogonal-ish, never merged
		r.Route(embReq(uint64(i), emb), 0, fleet)
	}
	cs := r.centroids[0]
	if len(cs) != 4 {
		t.Fatalf("centroid count %d, want cap 4", len(cs))
	}
	if cap(cs) > 8 {
		t.Fatalf("centroid backing array cap %d after 1000 evictions; compaction leak", cap(cs))
	}
}

// --- autoscaled cluster lifecycle --------------------------------------------

// autoscaleFactory builds scale-up engines identical to testEngines'.
func autoscaleFactory(m *moe.Model) func(int) *serve.Engine {
	return func(int) *serve.Engine {
		cfg := m.Cfg
		pol := core.NewFineMoE(core.NewStore(cfg, 50, 2), core.Options{})
		return serve.New(serve.Options{
			Model: m, GPU: testGPU(), NumGPUs: 1,
			CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()/2),
			Policy:     pol,
		})
	}
}

// autoscaleTestTrace is a burst that overwhelms one instance followed by
// a sparse tail that leaves the grown fleet idle: grow then shrink.
func autoscaleTestTrace(cfg moe.Config, seed uint64) []workload.Request {
	burst := testTrace(cfg, 16, 400, seed)
	last := burst[len(burst)-1].ArrivalMS
	d := workload.Dataset{
		Name: "cluster-test-tail", Topics: 6, TopicSpread: 0.05,
		MeanInput: 5, MeanOutput: 4, Seed: 99,
	}
	tail := workload.AzureTrace(d, cfg.SemDim, workload.TraceConfig{
		RatePerSec: 1, N: 6, Seed: seed + 1, IDBase: 1 << 33,
	})
	for i := range tail {
		tail[i].ArrivalMS += last
	}
	return append(burst, tail...)
}

func autoscaledCluster(m *moe.Model) *Cluster {
	return New(Options{
		Engines: testEngines(m, 1),
		Router:  NewLeastLoaded(),
		Autoscaler: NewQueuePressure(QueuePressureOptions{
			HighWatermark: 1.5, LowWatermark: 1.0, SustainMS: 20, CooldownMS: 20,
		}),
		EngineFactory:       autoscaleFactory(m),
		MinInstances:        1,
		MaxInstances:        3,
		AutoscaleIntervalMS: 10,
	})
}

// TestAutoscaledClusterGrowsAndShrinks is the lifecycle acceptance test:
// the fleet must grow under the burst, shrink in the tail, and neither
// lose nor corrupt any request's metrics across either transition.
func TestAutoscaledClusterGrowsAndShrinks(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 7)
	c := autoscaledCluster(m)
	trace := autoscaleTestTrace(m.Cfg, 3)
	res := c.RunTrace(trace)

	grows, shrinks := 0, 0
	for _, ev := range res.ScaleEvents {
		switch ev.Kind {
		case "grow":
			grows++
		case "shrink":
			shrinks++
		default:
			t.Fatalf("unknown scale event kind %q", ev.Kind)
		}
		if ev.ActiveAfter < 1 || ev.ActiveAfter > 3 {
			t.Fatalf("scale event left %d active instances, bounds [1,3]", ev.ActiveAfter)
		}
	}
	if grows == 0 {
		t.Fatal("burst did not grow the fleet")
	}
	if shrinks == 0 {
		t.Fatal("idle tail did not shrink the fleet")
	}

	// No request lost or corrupted across scale events.
	n := len(trace)
	if res.Admitted != n || res.Served != n || res.Rejected != 0 {
		t.Fatalf("admitted %d served %d rejected %d, want %d/%d/0",
			res.Admitted, res.Served, res.Rejected, n, n)
	}
	if res.TTFT.N != n || res.E2E.N != n {
		t.Fatalf("fleet summaries over %d/%d requests, want %d", res.TTFT.N, res.E2E.N, n)
	}
	perInstance := 0
	for _, ir := range res.Instances {
		perInstance += len(ir.Result.Requests)
		if ir.Submitted != len(ir.Result.Requests) {
			t.Fatalf("instance %d: %d routed but %d served", ir.ID, ir.Submitted, len(ir.Result.Requests))
		}
		for _, q := range ir.Result.Requests {
			if q.TTFTms < 0 || q.E2Ems < q.TTFTms {
				t.Fatalf("instance %d request %d corrupted metrics: %+v", ir.ID, q.ID, q)
			}
		}
		if ir.Retired && ir.RetiredMS < ir.StartedMS {
			t.Fatalf("instance %d retired at %v before starting at %v", ir.ID, ir.RetiredMS, ir.StartedMS)
		}
	}
	if perInstance != n {
		t.Fatalf("per-instance results cover %d requests, want %d", perInstance, n)
	}

	// Retired instances finished draining: no queued or in-flight work.
	retired := 0
	for _, in := range c.Instances() {
		if !in.Retiring {
			continue
		}
		retired++
		if in.Engine.QueueDepth() != 0 || in.Engine.InFlight() != 0 {
			t.Fatalf("retired instance %d still has work: queue %d in-flight %d",
				in.ID, in.Engine.QueueDepth(), in.Engine.InFlight())
		}
	}
	if retired == 0 {
		t.Fatal("no instance is marked retiring after shrink events")
	}

	// Elastic accounting: fewer instance-hours than peak-sized fixed
	// provisioning, and the peak respects the configured bound.
	if res.PeakInstances < 2 || res.PeakInstances > 3 {
		t.Fatalf("peak instances %d outside grown range [2,3]", res.PeakInstances)
	}
	fixedHours := float64(res.PeakInstances) * res.WallClockMS / 3.6e6
	if res.InstanceHours <= 0 || res.InstanceHours >= fixedHours {
		t.Fatalf("instance-hours %v not below peak-fixed %v", res.InstanceHours, fixedHours)
	}
}

// TestAutoscaledClusterDeterminism: autoscaled runs must stay
// byte-for-byte reproducible — scale events are part of the shared-clock
// event order, not a side effect.
func TestAutoscaledClusterDeterminism(t *testing.T) {
	run := func(seed uint64) []byte {
		m := moe.NewModel(moe.Tiny(), seed)
		res := autoscaledCluster(m).RunTrace(autoscaleTestTrace(m.Cfg, seed))
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	for seed := uint64(1); seed <= 3; seed++ {
		if a, b := run(seed), run(seed); string(a) != string(b) {
			t.Fatalf("seed %d: autoscaled run not deterministic", seed)
		}
	}
}

// TestAutoscaleRequiresFactory: enabling autoscaling without a way to
// build instances is a configuration error, caught at construction.
func TestAutoscaleRequiresFactory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted Autoscaler without EngineFactory")
		}
	}()
	m := moe.NewModel(moe.Tiny(), 7)
	New(Options{
		Engines:    testEngines(m, 1),
		Autoscaler: NewQueuePressure(QueuePressureOptions{}),
	})
}

// TestSingleInstanceFleetHitRateMatchesEngine pins the fleet-accounting
// fix: a 1-instance cluster's hit rate must equal its engine's own hit
// rate (engine-level batch-deduplicated counts), not a per-request
// re-aggregation that double-counts experts shared within a batch.
func TestSingleInstanceFleetHitRateMatchesEngine(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 7)
	c := New(Options{Engines: testEngines(m, 1)})
	res := c.RunTrace(testTrace(m.Cfg, 12, 100, 3)) // high rate = real batching
	ir := res.Instances[0].Result
	if math.Abs(res.HitRate-ir.HitRate) > 1e-12 {
		t.Fatalf("fleet hit rate %v != engine hit rate %v", res.HitRate, ir.HitRate)
	}
	if res.Hits != ir.Hits || res.Misses != ir.Misses {
		t.Fatalf("fleet hits/misses %d/%d != engine %d/%d",
			res.Hits, res.Misses, ir.Hits, ir.Misses)
	}
	if ir.Hits+ir.Misses == 0 {
		t.Fatal("degenerate run: no expert activity")
	}
}

// TestAutoscaleViaOfferDrain: the Offer+Drain path honors the autoscaler
// exactly like RunTrace — a burst offered up front must still grow the
// fleet during the drain, and the idle tail must shrink it (regression:
// Drain used to skip autoscale ticks entirely).
func TestAutoscaleViaOfferDrain(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 7)
	c := autoscaledCluster(m)
	for _, q := range testTrace(m.Cfg, 24, 50, 3) {
		c.Offer(q)
	}
	c.Drain()
	res := c.Finalize()
	if len(res.ScaleEvents) == 0 {
		t.Fatal("no scale events on the Offer+Drain path")
	}
	if res.PeakInstances < 2 {
		t.Fatalf("burst did not grow the fleet during drain: peak %d", res.PeakInstances)
	}
	if res.Served != 24 {
		t.Fatalf("served %d, want 24", res.Served)
	}
}
