package cluster

import (
	"encoding/json"
	"runtime"
	"testing"

	"finemoe/internal/core"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// stagedEngines builds n engines over the three-tier HBM/DRAM/NVMe
// hierarchy with DRAM bounded to a handful of experts, so runs are
// staging-heavy: most fetches route through the shared staging link.
func stagedEngines(m *moe.Model, n int) []*serve.Engine {
	cfg := m.Cfg
	out := make([]*serve.Engine, n)
	for i := range out {
		pol := core.NewFineMoE(core.NewStore(cfg, 50, 2), core.Options{})
		out[i] = serve.New(serve.Options{
			Model: m, GPU: testGPU(), NumGPUs: 1,
			CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()/3),
			Policy:     pol,
			Memory:     memsim.ThreeTier(4 * cfg.ExpertBytes()),
		})
	}
	return out
}

// shardVariant builds one cluster configuration and its trace. Every
// variant is a pure function of the worker count, so serial and sharded
// runs are comparable byte for byte.
type shardVariant struct {
	name  string
	build func(workers int) (*Cluster, []workload.Request)
}

func shardVariants() []shardVariant {
	return []shardVariant{
		{"plain", func(workers int) (*Cluster, []workload.Request) {
			m := moe.NewModel(moe.Tiny(), 7)
			c := New(Options{
				Engines: testEngines(m, 4),
				Router:  NewLeastLoaded(),
				Workers: workers,
			})
			return c, testTrace(m.Cfg, 48, 60, 3)
		}},
		{"bursty", func(workers int) (*Cluster, []workload.Request) {
			m := moe.NewModel(moe.Tiny(), 11)
			trace := workload.OnlineTrace(workload.Dataset{
				Name: "shard-test", Topics: 5, TopicSpread: 0.05,
				MeanInput: 5, MeanOutput: 4, Seed: 31,
			}, m.Cfg.SemDim, workload.OnlineOptions{
				Arrivals: workload.BurstyMMPP(80), N: 64, Seed: 5,
			})
			c := New(Options{
				Engines:   testEngines(m, 5),
				Admission: NewTokenBucket(32, 60),
				Router:    NewRoundRobin(),
				Workers:   workers,
			})
			return c, trace
		}},
		{"autoscale", func(workers int) (*Cluster, []workload.Request) {
			m := moe.NewModel(moe.Tiny(), 13)
			c := New(Options{
				Engines: testEngines(m, 2),
				Router:  NewLeastLoaded(),
				Autoscaler: NewQueuePressure(QueuePressureOptions{
					HighWatermark: 2, LowWatermark: 0.5, SustainMS: 20, CooldownMS: 40,
				}),
				EngineFactory:       func(id int) *serve.Engine { return testEngines(m, 1)[0] },
				MinInstances:        1,
				MaxInstances:        6,
				AutoscaleIntervalMS: 25,
				Workers:             workers,
			})
			return c, testTrace(m.Cfg, 56, 70, 9)
		}},
		{"sessions", func(workers int) (*Cluster, []workload.Request) {
			cfg := moe.Tiny()
			m := moe.NewModel(cfg, 7)
			d := workload.Dataset{
				Name: "shard-sess", Topics: 4, TopicSpread: 0.05,
				MeanInput: 5, MeanOutput: 4, LenSigma: 0.3, Seed: 12,
			}
			sess := workload.NewSessions(d, cfg.SemDim,
				workload.SessionConfig{MeanTurns: 3, ThinkTimeS: 0.02, Drift: 0.03}, 3)
			trace := sess.Initial(workload.Poisson{RatePerSec: 50}, 20, 0)
			c := New(Options{
				Engines: testEngines(m, 4),
				Router:  NewLeastLoaded(),
				FollowUp: func(done serve.RequestMetrics, orig workload.Request) (workload.Request, bool) {
					return sess.FollowUp(orig, done.EndMS)
				},
				Workers: workers,
			})
			return c, trace
		}},
		{"faults", func(workers int) (*Cluster, []workload.Request) {
			return faultCluster(workers, fullResilience())
		}},
		{"staged", func(workers int) (*Cluster, []workload.Request) {
			m := moe.NewModel(moe.Tiny(), 19)
			c := New(Options{
				Engines: stagedEngines(m, 4),
				Router:  NewRoundRobin(),
				Workers: workers,
			})
			return c, testTrace(m.Cfg, 40, 50, 21)
		}},
		{"combo", func(workers int) (*Cluster, []workload.Request) {
			cfg := moe.Tiny()
			m := moe.NewModel(cfg, 29)
			d := workload.Dataset{
				Name: "shard-combo", Topics: 4, TopicSpread: 0.05,
				MeanInput: 5, MeanOutput: 4, LenSigma: 0.3, Seed: 8,
			}
			sess := workload.NewSessions(d, cfg.SemDim,
				workload.SessionConfig{MeanTurns: 2.5, ThinkTimeS: 0.03, Drift: 0.05}, 7)
			trace := sess.Initial(workload.BurstyMMPP(60), 18, 0)
			c := New(Options{
				Engines: stagedEngines(m, 2),
				Router:  NewSemanticAffinity(SemanticAffinityOptions{}),
				Autoscaler: NewQueuePressure(QueuePressureOptions{
					HighWatermark: 2, LowWatermark: 0.5, SustainMS: 20, CooldownMS: 40,
				}),
				EngineFactory:       func(id int) *serve.Engine { return stagedEngines(m, 1)[0] },
				MinInstances:        1,
				MaxInstances:        5,
				AutoscaleIntervalMS: 30,
				FollowUp: func(done serve.RequestMetrics, orig workload.Request) (workload.Request, bool) {
					return sess.FollowUp(orig, done.EndMS)
				},
				Workers: workers,
			})
			return c, trace
		}},
	}
}

// shardRun executes one variant at one worker count and returns the full
// JSON-encoded ClusterResult — every request metric, instance aggregate,
// scale event and follow-up count.
func shardRun(t *testing.T, v shardVariant, workers int) []byte {
	t.Helper()
	c, trace := v.build(workers)
	res := c.RunTrace(trace)
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if res.Served == 0 {
		t.Fatalf("%s: degenerate variant served nothing", v.name)
	}
	return b
}

// TestShardedLoopByteParity is the tentpole's contract: for every fleet
// configuration — plain, bursty, autoscaled, closed-loop sessions,
// staging-heavy, and all combined — the sharded loop produces a
// ClusterResult byte-identical to the serial loop at every worker count.
func TestShardedLoopByteParity(t *testing.T) {
	counts := []int{1, 2, 3, 4, runtime.NumCPU()}
	for _, v := range shardVariants() {
		t.Run(v.name, func(t *testing.T) {
			serial := shardRun(t, v, 0)
			for _, w := range counts {
				if got := shardRun(t, v, w); string(got) != string(serial) {
					t.Fatalf("workers=%d diverges from serial loop (%d vs %d bytes)",
						w, len(got), len(serial))
				}
			}
		})
	}
}

// TestShardedLoopHeapConsistency: after a sharded run the next-event heap
// agrees with the linear scan (all drained), and mid-run epoch merges keep
// it consistent — exercised by re-running the staged variant step-equivalent
// and cross-checking heap vs scan at the end of RunTrace.
func TestShardedLoopHeapConsistency(t *testing.T) {
	for _, v := range shardVariants() {
		c, trace := v.build(3)
		c.RunTrace(trace)
		checkHeapAgainstScan(t, c)
	}
}

// TestShardedLoopStepSurface: the steppable Offer/Step/Drain surface
// composes with Workers > 1 — Drain's internal run picks up the sharded
// path and the result matches the serial equivalent.
func TestShardedLoopStepSurface(t *testing.T) {
	run := func(workers int) []byte {
		m := moe.NewModel(moe.Tiny(), 7)
		c := New(Options{Engines: testEngines(m, 3), Router: NewLeastLoaded(), Workers: workers})
		for _, q := range testTrace(m.Cfg, 16, 40, 5) {
			c.Offer(q)
			for c.Step(q.ArrivalMS) {
			}
		}
		c.Drain()
		b, err := json.Marshal(c.Finalize())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	serial := run(0)
	for _, w := range []int{2, 4} {
		if got := run(w); string(got) != string(serial) {
			t.Fatalf("step-surface run with workers=%d diverges from serial", w)
		}
	}
}
