// Package cluster orchestrates N independent serving engines behind the
// admission → routing → instance → aggregation pipeline of a production
// fleet, under one shared virtual clock.
//
// Each arrival first passes the Admission policy (always-admit,
// token-bucket, reject-all); admitted requests are placed by the Router
// policy (round-robin, least-loaded, semantic-affinity) onto one of the
// per-instance serve.Engines, which execute independently via the engine's
// steppable surface. The shared-clock event loop interleaves cluster-level
// arrival events with per-instance iteration events: events are processed
// in virtual-time order, cluster events win ties against instance events,
// and simultaneous instance events resolve toward the lowest instance
// index — so a run is fully deterministic for a fixed trace and seed.
package cluster

import (
	"math"

	"finemoe/internal/faults"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// Instance is one serving replica: an engine plus fleet bookkeeping.
type Instance struct {
	// ID is the instance's stable identity within the fleet. IDs are
	// assigned monotonically and never reused, so they survive fleet
	// resizes (an instance keeps its ID when others join or retire).
	ID int
	// Engine is the replica's serving engine (its own policy and cache).
	Engine *serve.Engine
	// Submitted counts requests routed to this instance.
	Submitted int
	// StartedMS is the cluster time the instance joined the fleet
	// (0 for the initial fleet).
	StartedMS float64
	// Retiring marks an instance selected for scale-down: it receives no
	// further routes but keeps draining in the shared-clock loop.
	Retiring bool
	// RetiredMS is the cluster time of the shrink decision (meaningful
	// only when Retiring).
	RetiredMS float64
	// Crashed marks an instance halted by a fault-plan crash; CrashedMS
	// is the failure time. The fleet keeps routing to a crashed instance
	// until Detected (the fault plan's detection latency elapses), when
	// it leaves the routable fleet and its stranded requests are
	// harvested.
	Crashed   bool
	CrashedMS float64
	Detected  bool

	// observed is the prefix of the engine's completion history the
	// cluster has already consulted for follow-up injection.
	observed int
	// idx is the instance's position in the cluster's instances slice
	// (append-only, so stable) — the key into the next-event heap.
	idx int
}

// State snapshots the instance's load view for admission and routing.
func (in *Instance) State() InstanceState {
	return InstanceState{
		ID:          in.ID,
		QueueDepth:  in.Engine.QueueDepth(),
		InFlight:    in.Engine.InFlight(),
		Completed:   in.Engine.CompletedCount(),
		Submitted:   in.Submitted,
		NowMS:       in.Engine.Now(),
		MemPressure: in.Engine.MemoryPressure(),
	}
}

// InstanceState is the admission/routing-visible view of one instance.
type InstanceState struct {
	ID         int
	QueueDepth int
	InFlight   int
	Completed  int
	Submitted  int
	NowMS      float64
	// MemPressure is the instance's host-DRAM thrash level: the decayed
	// fraction of recent expert fetches staged from below DRAM (0 under
	// the degenerate unbounded-DRAM configuration or when the working
	// set fits). Routers use it as a placement tiebreak and the
	// queue-pressure autoscaler as an optional grow trigger.
	MemPressure float64
}

// ScaleEvent records one autoscaler-driven fleet resize.
type ScaleEvent struct {
	// TimeMS is the shared-clock time of the decision.
	TimeMS float64
	// Kind is "grow" or "shrink".
	Kind string
	// Instance is the ID of the instance joining (grow) or beginning to
	// drain (shrink).
	Instance int
	// ActiveAfter is the routable fleet size after the event.
	ActiveAfter int
}

// Options assembles a cluster.
type Options struct {
	// Engines are the per-instance serving engines, one per replica. Each
	// must be freshly constructed (engines are single-run).
	Engines []*serve.Engine
	// Admission gates arrivals (nil = always-admit).
	Admission Admission
	// Router places admitted requests (nil = round-robin).
	Router Router
	// Autoscaler, when non-nil, resizes the fleet: it is evaluated every
	// AutoscaleIntervalMS of shared-clock time during RunTrace and may
	// grow the fleet (via EngineFactory) or drain-then-retire an
	// instance.
	Autoscaler Autoscaler
	// EngineFactory builds a fresh cold-store engine for the given
	// instance ID when the autoscaler grows the fleet. Required when
	// Autoscaler is set.
	EngineFactory func(id int) *serve.Engine
	// MinInstances / MaxInstances bound the routable fleet size under
	// autoscaling (defaults: 1 and 4× the initial fleet).
	MinInstances, MaxInstances int
	// AutoscaleIntervalMS spaces autoscale ticks on the shared clock
	// (default 500 ms).
	AutoscaleIntervalMS float64
	// FollowUp, when non-nil, closes the workload loop: it is consulted
	// once per completed request with the completion metrics and the
	// original request, and may return a follow-up request to inject into
	// the arrival stream (ok=false ends the thread). Injected arrivals
	// pass through admission and routing like trace arrivals; arrival
	// times before the parent's completion are clamped forward to it.
	// Multi-turn session workloads ride on this hook (workload.Sessions).
	FollowUp func(done serve.RequestMetrics, orig workload.Request) (workload.Request, bool)
	// Workers selects the event-loop execution mode: <= 1 runs the serial
	// shared-clock loop; > 1 shards instances across that many worker
	// goroutines and advances them in deterministic epoch windows (see
	// shard.go). Results are byte-identical across worker counts — the
	// sharded loop executes exactly the serial event schedule.
	Workers int
	// FaultPlan, when non-empty, injects crashes, link brownouts and
	// expert-load stalls at fixed shared-clock times (see internal/faults
	// and faults.go). An empty plan leaves the run byte-identical to a
	// fault-free cluster.
	FaultPlan *faults.Plan
	// Resilience configures request-level fault tolerance: timeouts,
	// deterministic-backoff retries, hedging, per-tenant retry budgets
	// and crash requeue/replacement (see resilience.go).
	Resilience ResilienceOptions
}

// Cluster is a fleet of serving instances sharing one virtual clock.
type Cluster struct {
	instances []*Instance
	admission Admission
	router    Router

	scaler   Autoscaler
	factory  func(id int) *serve.Engine
	minInst  int
	maxInst  int
	tickMS   float64
	nextTick float64
	nextID   int
	initial  int
	events   []ScaleEvent

	// Next-event cache: a binary min-heap over instance indices keyed by
	// (cached Engine.NextEventTime, instance index), so the shared-clock
	// loop pays O(log n) per event instead of a full O(instances) scan —
	// the cost that dominates large autoscaled fleets. evtTimes caches
	// each instance's next event time as of its last refresh; evtPos maps
	// instance index to heap position. Entries are refreshed at exactly
	// the points an engine's event time can change: Submit (Offer), Step,
	// and instance creation (grow). The heap order (time asc, index asc)
	// reproduces the scan's lowest-index-wins tie-break, so event order —
	// and with it every golden — is byte-identical to the linear scan.
	evtHeap  []int32
	evtTimes []float64
	evtPos   []int32

	followUp func(done serve.RequestMetrics, orig workload.Request) (workload.Request, bool)
	// inFlightReqs remembers each offered request until completion so the
	// follow-up hook can see the original (embedding, session, tenant);
	// populated only when followUp is set.
	inFlightReqs map[uint64]workload.Request
	// injected is the pending follow-up arrival queue, sorted by
	// ArrivalMS with stable insertion.
	injected []workload.Request
	// followUps counts injected requests.
	followUps int

	// Sharded-loop state (Workers > 1): the worker pool, the merge-sort
	// scratch for worker step logs, and the fleet-wide minimum iteration
	// duration bounding how soon an epoch can produce a follow-up
	// injection (the min of Engine.MinIterationMS across the fleet,
	// maintained as instances join).
	workers  int
	pool     *shardPool
	mergeBuf []stepRecord
	minIter  float64

	// Fault-plan state: the compiled event stream, a cursor into it, the
	// run's fault log, applied degradation windows, and the crash count.
	faultEvents []faults.Event
	faultNext   int
	flog        []FaultRecord
	degraded    []degWindow
	crashes     int

	// Resilience state (resOn): request sagas keyed by copy ID (lookups
	// and deletes only — never ranged), the pending reaction queue sorted
	// by (time, seq), per-tenant retry budgets, completions that lost a
	// hedge/retry race, and the availability counters.
	resOn        bool
	res          ResilienceOptions
	records      map[uint64]*resRecord
	resEvents    []resEvent
	resSeq       int
	budgets      map[string]*tenantBudget
	stale        map[staleKey]bool
	failedReqs   int
	retries      int
	hedgedWins   int
	lostInFlight int

	// statesBuf is the reusable backing array for activeStates: the
	// routable-fleet snapshot is rebuilt on every Offer and autoscale
	// tick, and the policy contract (Admission/Router/Autoscaler docs)
	// already forbids retaining the slice past the call, so one buffer
	// serves the whole run.
	statesBuf []InstanceState

	now      float64
	admitted int
	rejected int
}

// New builds a cluster over the given engines.
func New(opts Options) *Cluster {
	if len(opts.Engines) == 0 {
		panic("cluster: no engines")
	}
	if opts.Admission == nil {
		opts.Admission = NewAlwaysAdmit()
	}
	if opts.Router == nil {
		opts.Router = NewRoundRobin()
	}
	if opts.Autoscaler != nil && opts.EngineFactory == nil {
		panic("cluster: Autoscaler requires an EngineFactory")
	}
	if opts.MinInstances <= 0 {
		opts.MinInstances = 1
	}
	if opts.MaxInstances <= 0 {
		opts.MaxInstances = 4 * len(opts.Engines)
	}
	if opts.MaxInstances < opts.MinInstances {
		opts.MaxInstances = opts.MinInstances
	}
	if opts.AutoscaleIntervalMS <= 0 {
		opts.AutoscaleIntervalMS = 500
	}
	c := &Cluster{
		admission: opts.Admission,
		router:    opts.Router,
		scaler:    opts.Autoscaler,
		factory:   opts.EngineFactory,
		minInst:   opts.MinInstances,
		maxInst:   opts.MaxInstances,
		tickMS:    opts.AutoscaleIntervalMS,
		nextTick:  opts.AutoscaleIntervalMS,
		initial:   len(opts.Engines),
		followUp:  opts.FollowUp,
		workers:   opts.Workers,
		minIter:   math.Inf(1),
	}
	if c.followUp != nil {
		c.inFlightReqs = map[uint64]workload.Request{}
	}
	if !opts.FaultPlan.Empty() {
		evs, err := opts.FaultPlan.Compile()
		if err != nil {
			panic("cluster: " + err.Error())
		}
		c.faultEvents = evs
	}
	if opts.Resilience.Enabled {
		c.resOn = true
		c.res = opts.Resilience
		if c.res.BackoffBaseMS <= 0 {
			c.res.BackoffBaseMS = 50
		}
		if c.res.BackoffMaxMS <= 0 {
			c.res.BackoffMaxMS = 2000
		}
		if c.res.JitterFrac == 0 {
			c.res.JitterFrac = 0.2
		}
		c.records = map[uint64]*resRecord{}
		c.budgets = map[string]*tenantBudget{}
		c.stale = map[staleKey]bool{}
	} else {
		// Crash replacement works without request tracking.
		c.res.ReplaceOnCrash = opts.Resilience.ReplaceOnCrash
	}
	for i, e := range opts.Engines {
		if e == nil {
			panic("cluster: nil engine")
		}
		c.instances = append(c.instances, &Instance{ID: i, Engine: e, idx: i})
		c.evtPush(i)
		if m := e.MinIterationMS(); m < c.minIter {
			c.minIter = m
		}
	}
	c.nextID = len(c.instances)
	return c
}

// --- next-event min-heap ----------------------------------------------------

// evtLess orders heap entries by (cached event time asc, instance index
// asc) — the same total order the linear scan's `<` induced, so ties still
// resolve toward the lowest instance index.
//
//finemoe:hotpath
func (c *Cluster) evtLess(a, b int32) bool {
	ta, tb := c.evtTimes[a], c.evtTimes[b]
	if ta != tb {
		return ta < tb
	}
	return a < b
}

//finemoe:hotpath
func (c *Cluster) evtSwap(i, j int) {
	c.evtHeap[i], c.evtHeap[j] = c.evtHeap[j], c.evtHeap[i]
	c.evtPos[c.evtHeap[i]] = int32(i)
	c.evtPos[c.evtHeap[j]] = int32(j)
}

//finemoe:hotpath
func (c *Cluster) evtUp(pos int) {
	for pos > 0 {
		parent := (pos - 1) / 2
		if !c.evtLess(c.evtHeap[pos], c.evtHeap[parent]) {
			return
		}
		c.evtSwap(pos, parent)
		pos = parent
	}
}

//finemoe:hotpath
func (c *Cluster) evtDown(pos int) {
	n := len(c.evtHeap)
	for {
		l, r := 2*pos+1, 2*pos+2
		small := pos
		if l < n && c.evtLess(c.evtHeap[l], c.evtHeap[small]) {
			small = l
		}
		if r < n && c.evtLess(c.evtHeap[r], c.evtHeap[small]) {
			small = r
		}
		if small == pos {
			return
		}
		c.evtSwap(pos, small)
		pos = small
	}
}

// evtPush registers instance idx (just appended to c.instances) with its
// engine's current next event time.
func (c *Cluster) evtPush(idx int) {
	c.evtTimes = append(c.evtTimes, c.instances[idx].Engine.NextEventTime())
	c.evtPos = append(c.evtPos, int32(len(c.evtHeap)))
	c.evtHeap = append(c.evtHeap, int32(idx))
	c.evtUp(len(c.evtHeap) - 1)
}

// refreshEvent re-reads instance idx's next event time and restores heap
// order. Call after any operation that can change it (Submit, Step).
//
//finemoe:hotpath
func (c *Cluster) refreshEvent(idx int) {
	t := c.instances[idx].Engine.NextEventTime()
	if t == c.evtTimes[idx] {
		return
	}
	c.evtTimes[idx] = t
	pos := int(c.evtPos[idx])
	c.evtUp(pos)
	c.evtDown(int(c.evtPos[idx]))
}

// Size returns the number of instances ever part of the fleet, including
// retiring ones.
func (c *Cluster) Size() int { return len(c.instances) }

// ActiveSize returns the routable fleet size (instances neither retiring
// nor detectedly crashed).
func (c *Cluster) ActiveSize() int {
	n := 0
	for _, in := range c.instances {
		if !in.Retiring && !in.Detected {
			n++
		}
	}
	return n
}

// ScaleEvents returns the autoscaler's resize history so far (shared;
// callers must not mutate).
func (c *Cluster) ScaleEvents() []ScaleEvent { return c.events }

// Instances returns the fleet (shared; callers must not mutate the slice).
// The cluster caches each engine's next event time in its event heap,
// refreshed at exactly the points the loop itself can change it (Offer's
// Submit, Step, grow, epoch merges); a caller that mutates an engine
// behind this accessor in a way that moves its next event time — e.g.
// Submit or AdvanceClock outside Offer/Step — must call SyncEvents before
// the next Offer/Step/RunTrace/Drain, or the loop may schedule against a
// stale time.
func (c *Cluster) Instances() []*Instance { return c.instances }

// SyncEvents re-reads every instance's next event time into the event
// heap. It is the repair step for external engine mutation (see
// Instances); the loop's own paths never need it.
func (c *Cluster) SyncEvents() {
	for i := range c.instances {
		c.refreshEvent(i)
	}
}

// Now returns the cluster clock: the latest cluster-level event time.
func (c *Cluster) Now() float64 { return c.now }

// Rejected counts requests shed by admission so far.
func (c *Cluster) Rejected() int { return c.rejected }

// Admitted counts requests accepted so far.
func (c *Cluster) Admitted() int { return c.admitted }

// States snapshots every instance's load view, in instance order,
// including retiring instances.
func (c *Cluster) States() []InstanceState {
	out := make([]InstanceState, len(c.instances))
	for i, in := range c.instances {
		out[i] = in.State()
	}
	return out
}

// activeStates snapshots the routable fleet — the view admission, routing
// and autoscaling observe. Entries are ordered by ascending instance ID
// (creation order), and each entry's ID is the instance's stable
// identity, not its position. A crashed instance stays routable until
// its crash is detected — the fleet cannot act on what it has not yet
// observed. The returned slice aliases the cluster's snapshot buffer and
// is valid only until the next Offer or autoscale tick (the same
// lifetime the policy interfaces already promise their callees).
func (c *Cluster) activeStates() []InstanceState {
	out := c.statesBuf[:0]
	for _, in := range c.instances {
		if !in.Retiring && !in.Detected {
			out = append(out, in.State())
		}
	}
	c.statesBuf = out[:0]
	return out
}

// instanceByID returns the instance with the given stable ID.
func (c *Cluster) instanceByID(id int) *Instance {
	for _, in := range c.instances {
		if in.ID == id {
			return in
		}
	}
	panic("cluster: unknown instance id")
}

// Offer runs one request through admission and routing at the request's
// arrival time (clamped forward to the cluster clock) and submits it to
// the chosen instance. Returns the instance ID, or -1 when admission
// sheds the request. Retiring instances are invisible to admission and
// routing.
func (c *Cluster) Offer(req workload.Request) int {
	if t := req.ArrivalMS; t > c.now {
		c.now = t
	}
	fleet := c.activeStates()
	if len(fleet) == 0 {
		// Every instance crashed or retired (reachable only under a fault
		// plan): there is nowhere to route, so the request is shed.
		c.rejected++
		return -1
	}
	if !c.admission.Admit(req, c.now, fleet) {
		c.rejected++
		return -1
	}
	c.admitted++
	i := c.router.Route(req, c.now, fleet)
	if i < 0 || i >= len(fleet) {
		panic("cluster: router returned out-of-range instance")
	}
	in := c.instanceByID(fleet[i].ID)
	in.Submitted++
	in.Engine.Submit(req)
	c.refreshEvent(in.idx)
	if c.resOn {
		c.trackDispatch(req, in)
	} else if c.followUp != nil {
		c.inFlightReqs[req.ID] = req
	}
	return in.ID
}

// FollowUps counts follow-up requests injected by the FollowUp hook so
// far.
func (c *Cluster) FollowUps() int { return c.followUps }

// observeCompletions reacts to every request the instance completed
// since the last call. Called after every engine step, so observation
// order — and with it the whole run — stays deterministic. With
// resilience on, each completion is scheduled as a resilience event at
// its own completion time rather than applied here: cross-instance
// effects (hedge-loser cancellation, follow-up injection) then happen at
// a pinned point of the shared-clock schedule, identical between the
// serial and sharded loops. Otherwise the FollowUp hook (if any) is
// consulted directly, as before.
func (c *Cluster) observeCompletions(in *Instance) {
	if c.followUp == nil && !c.resOn {
		return
	}
	c.observeCompletionsTo(in, in.Engine.CompletedCount())
}

// observeCompletionsTo is observeCompletions bounded to the
// completion-history prefix [observed, upto): the sharded loop's merge
// step replays each epoch's completions through it in serial event
// order, per-step slice by per-step slice.
func (c *Cluster) observeCompletionsTo(in *Instance, upto int) {
	done := in.Engine.Completed()
	for _, m := range done[in.observed:upto] {
		if c.resOn {
			c.scheduleRes(resEvent{t: m.EndMS, k: rkComplete, instIdx: int32(in.idx), m: m})
			continue
		}
		orig, ok := c.inFlightReqs[m.ID]
		if !ok {
			continue
		}
		delete(c.inFlightReqs, m.ID)
		fu, ok := c.followUp(m, orig)
		if !ok {
			continue
		}
		if fu.ArrivalMS < m.EndMS {
			fu.ArrivalMS = m.EndMS
		}
		c.inject(fu)
	}
	in.observed = upto
}

// inject queues a follow-up arrival, keeping the queue sorted by arrival
// time with stable insertion (equal arrivals preserve injection order).
func (c *Cluster) inject(req workload.Request) {
	c.followUps++
	i := len(c.injected)
	for i > 0 && c.injected[i-1].ArrivalMS > req.ArrivalMS {
		i--
	}
	c.injected = append(c.injected, workload.Request{})
	copy(c.injected[i+1:], c.injected[i:])
	c.injected[i] = req
}

// popInjected removes and returns the earliest queued follow-up,
// compacting in place rather than reslicing so popped requests (and
// their embeddings) do not stay reachable through the backing array for
// the lifetime of a long-running fleet.
func (c *Cluster) popInjected() workload.Request {
	q := c.injected[0]
	copy(c.injected, c.injected[1:])
	c.injected[len(c.injected)-1] = workload.Request{}
	c.injected = c.injected[:len(c.injected)-1]
	return q
}

// autoscale evaluates the policy at one shared-clock tick and applies at
// most one resize: Grow spins up a fresh cold-store instance via the
// factory; Shrink marks the least-loaded active instance retiring (ties
// retire the youngest, so the seed fleet survives longest). Bounds are
// enforced here, so policies need not know Min/MaxInstances.
func (c *Cluster) autoscale(nowMS float64) {
	fleet := c.activeStates()
	d := c.scaler.Decide(nowMS, fleet)
	applied := false
	switch d {
	case Grow:
		if len(fleet) >= c.maxInst {
			break
		}
		id := c.nextID
		c.nextID++
		e := c.factory(id)
		if e == nil {
			panic("cluster: EngineFactory returned nil engine")
		}
		// Align the fresh engine's clock with the fleet so its requests
		// are not timestamped in its pre-spawn past.
		e.AdvanceClock(nowMS)
		c.instances = append(c.instances, &Instance{ID: id, Engine: e, StartedMS: nowMS, idx: len(c.instances)})
		c.evtPush(len(c.instances) - 1)
		if m := e.MinIterationMS(); m < c.minIter {
			c.minIter = m
		}
		c.events = append(c.events, ScaleEvent{
			TimeMS: nowMS, Kind: "grow", Instance: id, ActiveAfter: len(fleet) + 1,
		})
		applied = true
	case Shrink:
		if len(fleet) <= c.minInst {
			break
		}
		victim := ShrinkVictim(fleet)
		in := c.instanceByID(victim)
		in.Retiring = true
		in.RetiredMS = nowMS
		c.events = append(c.events, ScaleEvent{
			TimeMS: nowMS, Kind: "shrink", Instance: victim, ActiveAfter: len(fleet) - 1,
		})
		applied = true
	}
	NotifyDecision(c.scaler, d, applied)
}

// nextInstanceEvent returns the earliest per-instance event time and its
// instance index (lowest index wins ties); +Inf when all are drained. The
// answer comes from the cached next-event heap — O(1) instead of the
// O(instances) scan the seed paid per shared-clock event.
//
//finemoe:hotpath
func (c *Cluster) nextInstanceEvent() (float64, int) {
	if len(c.evtHeap) == 0 {
		return math.Inf(1), -1
	}
	root := c.evtHeap[0]
	t := c.evtTimes[root]
	if math.IsInf(t, 1) {
		return t, -1
	}
	return t, int(root)
}

// nextInstanceEventScan is the seed's linear scan, kept as the reference
// the heap is property-tested against (cluster_test.go).
func (c *Cluster) nextInstanceEventScan() (float64, int) {
	t, which := math.Inf(1), -1
	for i, in := range c.instances {
		if et := in.Engine.NextEventTime(); et < t {
			t, which = et, i
		}
	}
	return t, which
}

// Step processes the cluster's earliest pending instance event at or
// before until; reports whether any work was done. Step's scope is
// instance events only — arrival offering and autoscale ticks belong to
// the RunTrace/Drain loop.
func (c *Cluster) Step(until float64) bool {
	t, which := c.nextInstanceEvent()
	if which < 0 || t > until {
		return false
	}
	did := c.instances[which].Engine.Step(until)
	c.refreshEvent(which)
	c.observeCompletions(c.instances[which])
	return did
}

// Drain runs every submitted request on every instance to completion,
// interleaving instances, follow-up arrivals and autoscale ticks in
// shared-clock order, and returns the fleet makespan.
func (c *Cluster) Drain() float64 {
	c.run(nil)
	wall := 0.0
	for _, in := range c.instances {
		if t := in.Engine.Now(); t > wall {
			wall = t
		}
	}
	return wall
}

// RunTrace replays an arrival trace (sorted by ArrivalMS) through the
// pipeline: the shared-clock loop merges arrival events (trace arrivals
// and injected follow-ups), autoscale ticks and instance iteration
// events, processing whichever is earlier, then drains the fleet and
// aggregates. Event priority at equal times is arrival → autoscale tick →
// instance, so routing sees fleet state as of T, the autoscaler observes
// arrivals at T, and both precede instance work at T; a trace arrival and
// a follow-up at the same instant resolve toward the trace. Ticks
// continue through the final drain (so idle shrink happens) and stop once
// the trace is exhausted, every follow-up has been offered, and every
// instance is drained.
//
// RunTrace is RunStream over the trace's SliceSource — the streaming
// loop IS the trace loop, so the two cannot diverge.
func (c *Cluster) RunTrace(trace []workload.Request) *Result {
	return c.RunStream(workload.NewSliceSource(trace))
}

// RunStream is RunTrace over a streaming workload source: arrivals are
// drawn one at a time, so a multi-million-request horizon costs the
// in-flight window's memory, not the trace's. The shared-clock loop only
// ever needs the NEXT pending arrival — its time to schedule against
// instance/fault/tick events (including the sharded loop's epoch-horizon
// computation, which caps epochs at the next cluster-level event), and
// its payload when the arrival wins — so a one-request lookahead cursor
// over the source reproduces the materialized loop's event schedule
// exactly; stream_test.go pins byte parity across every workload shape,
// fault plan and worker count.
func (c *Cluster) RunStream(src workload.Source) *Result {
	c.run(src)
	return c.Finalize()
}

// reqCursor is the one-request lookahead window over a Source the
// shared-clock loop schedules against.
type reqCursor struct {
	src workload.Source
	cur workload.Request
	ok  bool
}

func newReqCursor(src workload.Source) reqCursor {
	k := reqCursor{src: src}
	if src != nil {
		k.cur, k.ok = src.Next()
	}
	return k
}

// peek returns the pending arrival's time, or +Inf when exhausted.
//
//finemoe:hotpath
func (k *reqCursor) peek() float64 {
	if !k.ok {
		return math.Inf(1)
	}
	return k.cur.ArrivalMS
}

// pop consumes the pending arrival and advances the window, running the
// source's generator (whose arena/block allocations are amortized).
func (k *reqCursor) pop() workload.Request {
	q := k.cur
	k.cur, k.ok = k.src.Next()
	return q
}

// run is the shared-clock loop behind RunStream/RunTrace (with a source)
// and Drain (without): it merges source arrivals, injected follow-ups,
// autoscale ticks and instance events until the source is exhausted, the
// injected queue is empty, and every instance is drained. With Workers >
// 1, windows of consecutive instance events are executed as sharded
// parallel epochs (shard.go); cluster-level events and the
// single-busy-instance path stay on this goroutine, so the event
// schedule — and every result byte — is identical across worker counts.
func (c *Cluster) run(src workload.Source) {
	if c.workers > 1 {
		defer c.stopPool()
	}
	cursor := newReqCursor(src)
	for {
		tArr, fromTrace := cursor.peek(), true
		if len(c.injected) > 0 && c.injected[0].ArrivalMS < tArr {
			tArr, fromTrace = c.injected[0].ArrivalMS, false
		}
		tInst, which := c.nextInstanceEvent()
		tFault := math.Inf(1)
		if c.faultNext < len(c.faultEvents) {
			tFault = c.faultEvents[c.faultNext].TimeMS
		}
		tRes := math.Inf(1)
		if len(c.resEvents) > 0 {
			tRes = c.resEvents[0].t
		}
		idle := math.IsInf(tArr, 1) && which < 0
		if idle && math.IsInf(tFault, 1) && math.IsInf(tRes, 1) {
			break
		}
		tTick := math.Inf(1)
		if c.scaler != nil && !idle {
			// idle freezes ticks: with no arrivals and no instance work
			// left, only trailing fault/resilience events remain, and the
			// serial loop of a fault-free run would already have exited —
			// letting ticks run on would append unbounded idle shrinks.
			tTick = c.nextTick
		}
		// Event priority at equal times: fault → resilience → arrival
		// (trace before injected) → autoscale tick → instance. Faults act
		// before anything can observe the instant's state, resilience
		// reactions precede the arrivals they may race with, and the
		// pre-existing arrival → tick → instance order is unchanged.
		if tFault <= tRes && tFault <= tArr && tFault <= tTick && tFault <= tInst {
			c.applyFault(c.faultEvents[c.faultNext])
			c.faultNext++
			continue
		}
		if tRes <= tArr && tRes <= tTick && tRes <= tInst {
			if tRes > c.now {
				c.now = tRes
			}
			c.processResEvent(c.popResEvent())
			continue
		}
		if tArr <= tTick && tArr <= tInst {
			if fromTrace {
				c.Offer(cursor.pop())
			} else {
				c.Offer(c.popInjected())
			}
			continue
		}
		if tTick <= tInst {
			if tTick > c.now {
				c.now = tTick
			}
			c.autoscale(tTick)
			c.nextTick += c.tickMS
			continue
		}
		// Instance events strictly before every cluster-level source: a
		// parallel epoch when at least two instances have work in the
		// window and completion reactions provably cannot land inside it
		// (follow-up injections and resilience completion events are
		// pinned to their parent's completion time, which is at least one
		// minimum iteration after the earliest pending event; a zero
		// minimum — a device with no per-layer overhead — disables
		// sharding rather than risking a mid-epoch event).
		if c.workers > 1 && ((c.followUp == nil && !c.resOn) || c.minIter > 0) {
			h := tArr
			if tTick < h {
				h = tTick
			}
			if tFault < h {
				h = tFault
			}
			if tRes < h {
				h = tRes
			}
			if c.followUp != nil || c.resOn {
				if f := tInst + c.minIter; f < h {
					h = f
				}
			}
			if c.epochBusy(h) {
				c.runEpoch(h)
				continue
			}
		}
		c.instances[which].Engine.Step(tInst)
		c.refreshEvent(which)
		c.observeCompletions(c.instances[which])
	}
}
