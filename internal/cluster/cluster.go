// Package cluster orchestrates N independent serving engines behind the
// admission → routing → instance → aggregation pipeline of a production
// fleet, under one shared virtual clock.
//
// Each arrival first passes the Admission policy (always-admit,
// token-bucket, reject-all); admitted requests are placed by the Router
// policy (round-robin, least-loaded, semantic-affinity) onto one of the
// per-instance serve.Engines, which execute independently via the engine's
// steppable surface. The shared-clock event loop interleaves cluster-level
// arrival events with per-instance iteration events: events are processed
// in virtual-time order, cluster events win ties against instance events,
// and simultaneous instance events resolve toward the lowest instance
// index — so a run is fully deterministic for a fixed trace and seed.
package cluster

import (
	"math"

	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// Instance is one serving replica: an engine plus fleet bookkeeping.
type Instance struct {
	// ID is the instance index within the fleet.
	ID int
	// Engine is the replica's serving engine (its own policy and cache).
	Engine *serve.Engine
	// Submitted counts requests routed to this instance.
	Submitted int
}

// State snapshots the instance's load view for admission and routing.
func (in *Instance) State() InstanceState {
	return InstanceState{
		ID:         in.ID,
		QueueDepth: in.Engine.QueueDepth(),
		InFlight:   in.Engine.InFlight(),
		Completed:  in.Engine.CompletedCount(),
		Submitted:  in.Submitted,
		NowMS:      in.Engine.Now(),
	}
}

// InstanceState is the admission/routing-visible view of one instance.
type InstanceState struct {
	ID         int
	QueueDepth int
	InFlight   int
	Completed  int
	Submitted  int
	NowMS      float64
}

// Options assembles a cluster.
type Options struct {
	// Engines are the per-instance serving engines, one per replica. Each
	// must be freshly constructed (engines are single-run).
	Engines []*serve.Engine
	// Admission gates arrivals (nil = always-admit).
	Admission Admission
	// Router places admitted requests (nil = round-robin).
	Router Router
}

// Cluster is a fleet of serving instances sharing one virtual clock.
type Cluster struct {
	instances []*Instance
	admission Admission
	router    Router

	now      float64
	admitted int
	rejected int
}

// New builds a cluster over the given engines.
func New(opts Options) *Cluster {
	if len(opts.Engines) == 0 {
		panic("cluster: no engines")
	}
	if opts.Admission == nil {
		opts.Admission = NewAlwaysAdmit()
	}
	if opts.Router == nil {
		opts.Router = NewRoundRobin()
	}
	c := &Cluster{admission: opts.Admission, router: opts.Router}
	for i, e := range opts.Engines {
		if e == nil {
			panic("cluster: nil engine")
		}
		c.instances = append(c.instances, &Instance{ID: i, Engine: e})
	}
	return c
}

// Size returns the number of instances.
func (c *Cluster) Size() int { return len(c.instances) }

// Instances returns the fleet (shared; callers must not mutate).
func (c *Cluster) Instances() []*Instance { return c.instances }

// Now returns the cluster clock: the latest cluster-level event time.
func (c *Cluster) Now() float64 { return c.now }

// Rejected counts requests shed by admission so far.
func (c *Cluster) Rejected() int { return c.rejected }

// Admitted counts requests accepted so far.
func (c *Cluster) Admitted() int { return c.admitted }

// States snapshots every instance's load view, in instance order.
func (c *Cluster) States() []InstanceState {
	out := make([]InstanceState, len(c.instances))
	for i, in := range c.instances {
		out[i] = in.State()
	}
	return out
}

// Offer runs one request through admission and routing at the request's
// arrival time (clamped forward to the cluster clock) and submits it to
// the chosen instance. Returns the instance index, or -1 when admission
// sheds the request.
func (c *Cluster) Offer(req workload.Request) int {
	if t := req.ArrivalMS; t > c.now {
		c.now = t
	}
	fleet := c.States()
	if !c.admission.Admit(req, c.now, fleet) {
		c.rejected++
		return -1
	}
	c.admitted++
	i := c.router.Route(req, c.now, fleet)
	if i < 0 || i >= len(c.instances) {
		panic("cluster: router returned out-of-range instance")
	}
	in := c.instances[i]
	in.Submitted++
	in.Engine.Submit(req)
	return i
}

// nextInstanceEvent returns the earliest per-instance event time and its
// instance index (lowest index wins ties); +Inf when all are drained.
func (c *Cluster) nextInstanceEvent() (float64, int) {
	t, which := math.Inf(1), -1
	for i, in := range c.instances {
		if et := in.Engine.NextEventTime(); et < t {
			t, which = et, i
		}
	}
	return t, which
}

// Step processes the cluster's earliest pending instance event at or
// before until; reports whether any work was done.
func (c *Cluster) Step(until float64) bool {
	t, which := c.nextInstanceEvent()
	if which < 0 || t > until {
		return false
	}
	return c.instances[which].Engine.Step(until)
}

// Drain runs every submitted request on every instance to completion,
// interleaving instances in shared-clock order, and returns the fleet
// makespan.
func (c *Cluster) Drain() float64 {
	for c.Step(math.Inf(1)) {
	}
	wall := 0.0
	for _, in := range c.instances {
		if t := in.Engine.Now(); t > wall {
			wall = t
		}
	}
	return wall
}

// RunTrace replays an arrival trace (sorted by ArrivalMS) through the
// pipeline: the shared-clock loop merges arrival events with instance
// iteration events, processing whichever is earlier and giving cluster
// events priority on ties, then drains the fleet and aggregates.
func (c *Cluster) RunTrace(trace []workload.Request) *Result {
	next := 0
	for {
		tArr := math.Inf(1)
		if next < len(trace) {
			tArr = trace[next].ArrivalMS
		}
		tInst, which := c.nextInstanceEvent()
		if math.IsInf(tArr, 1) && which < 0 {
			break
		}
		if tArr <= tInst {
			// Cluster-first priority: arrivals at T precede instance
			// events at T, so routing sees fleet state as of T.
			c.Offer(trace[next])
			next++
			continue
		}
		c.instances[which].Engine.Step(tInst)
	}
	return c.Finalize()
}
