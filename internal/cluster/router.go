package cluster

import (
	"finemoe/internal/tensor"
	"finemoe/internal/workload"
)

// Router is the second stage of the serving pipeline: it picks the target
// instance for an admitted request. Implementations may keep state
// (round-robin cursors, affinity memories); they are driven sequentially
// by the cluster's shared-clock loop and need no locking.
//
// Resize contract: the fleet may grow or shrink between calls (the
// autoscaler adds instances and retires others). Entries are always
// ordered by ascending InstanceState.ID, and an instance's ID is its
// stable identity across resizes — positions are not. Routers that
// remember anything across calls must key that memory on ID, never on
// slice index.
type Router interface {
	// Name identifies the policy in results.
	Name() string
	// Route returns the target's index in [0, len(fleet)) — an index
	// into this call's fleet slice, valid only for this call.
	Route(req workload.Request, nowMS float64, fleet []InstanceState) int
}

// roundRobin cycles through instances in ID order. The cursor tracks the
// last-routed instance's ID, not its position, so a resize between calls
// cannot double-route or skip a replica: the next route goes to the
// lowest ID greater than the cursor, wrapping to the lowest ID present.
type roundRobin struct{ lastID int }

// NewRoundRobin returns the round-robin router.
func NewRoundRobin() Router { return &roundRobin{lastID: -1} }

func (r *roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Route(_ workload.Request, _ float64, fleet []InstanceState) int {
	next := 0
	for i, st := range fleet {
		if st.ID > r.lastID {
			next = i
			break
		}
	}
	r.lastID = fleet[next].ID
	return next
}

// load is the routing load signal: queued plus in-flight requests.
func (s InstanceState) load() int { return s.QueueDepth + s.InFlight }

// leastLoaded joins the shortest queue (queued + in-flight requests).
// Ties break toward the instance that has been routed the least total
// work, then toward the lowest index, so the policy stays deterministic
// and spreads load even when every queue is momentarily empty.
type leastLoaded struct{}

// NewLeastLoaded returns the join-shortest-queue router.
func NewLeastLoaded() Router { return leastLoaded{} }

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Route(_ workload.Request, _ float64, fleet []InstanceState) int {
	best := 0
	for i := 1; i < len(fleet); i++ {
		if fleet[i].load() < fleet[best].load() ||
			(fleet[i].load() == fleet[best].load() && fleet[i].Submitted < fleet[best].Submitted) {
			best = i
		}
	}
	return best
}

// memoryAware joins the shortest queue like leastLoaded but breaks load
// ties toward the instance with the lowest host-memory thrash level
// (then fewest routed requests, then lowest index): on a tiered-memory
// fleet an instance whose fetches keep spilling below DRAM pays NVMe
// staging on its misses, so among equally queued replicas the one whose
// working set still fits serves the request faster. On a degenerate
// (unbounded-DRAM) fleet every pressure reads 0 and the policy reduces
// to least-loaded exactly.
type memoryAware struct{}

// NewMemoryAware returns the memory-pressure-aware least-loaded router.
func NewMemoryAware() Router { return memoryAware{} }

func (memoryAware) Name() string { return "memory-aware" }

func (memoryAware) Route(_ workload.Request, _ float64, fleet []InstanceState) int {
	best := 0
	for i := 1; i < len(fleet); i++ {
		a, b := fleet[i], fleet[best]
		switch {
		case a.load() != b.load():
			if a.load() < b.load() {
				best = i
			}
		case a.MemPressure != b.MemPressure:
			if a.MemPressure < b.MemPressure {
				best = i
			}
		case a.Submitted < b.Submitted:
			best = i
		}
	}
	return best
}

// SemanticAffinityOptions tunes the FineMoE-aware router.
type SemanticAffinityOptions struct {
	// MinSim is the cosine similarity below which a prompt is considered
	// unseen by every instance and falls back to least-loaded placement
	// (default 0.6; paper-style topic clusters separate cleanly at this
	// threshold).
	MinSim float64
	// MergeSim is the similarity above which a routed prompt updates an
	// existing centroid instead of adding a new one (default 0.9).
	MergeSim float64
	// MaxCentroids bounds each instance's affinity memory (default 32;
	// oldest centroid evicted beyond it).
	MaxCentroids int
	// LoadSlack is how much longer than the shortest queue an affine
	// instance's queue may be before load balancing overrides affinity
	// (default 6 requests).
	LoadSlack int
}

func (o SemanticAffinityOptions) withDefaults() SemanticAffinityOptions {
	if o.MinSim == 0 {
		o.MinSim = 0.6
	}
	if o.MergeSim == 0 {
		o.MergeSim = 0.9
	}
	if o.MaxCentroids <= 0 {
		o.MaxCentroids = 32
	}
	if o.LoadSlack <= 0 {
		o.LoadSlack = 6
	}
	return o
}

// semanticAffinity routes semantically similar prompts to the instance
// that has already served them, so that instance's Expert Map Store — and
// its expert cache — have seen the prompt's expert-activation pattern
// (§4.2's semantic search, lifted to the fleet). Each instance accumulates
// a bounded memory of prompt-embedding centroids; requests go to the
// instance with the most similar centroid unless that instance is
// overloaded, in which case placement falls back to least-loaded (and the
// topic migrates with it).
type semanticAffinity struct {
	opts      SemanticAffinityOptions
	centroids map[int][][]float64 // instance ID -> centroids; IDs are stable across resizes
	fleetIDs  []int               // last observed fleet composition, for resize detection
	fallback  Router
}

// NewSemanticAffinity returns the FineMoE-aware affinity router.
func NewSemanticAffinity(opts SemanticAffinityOptions) Router {
	return &semanticAffinity{
		opts:      opts.withDefaults(),
		centroids: map[int][][]float64{},
		fallback:  NewLeastLoaded(),
	}
}

func (s *semanticAffinity) Name() string { return "semantic-affinity" }

// sameFleet reports whether the fleet's ID composition matches the last
// observed one.
func (s *semanticAffinity) sameFleet(fleet []InstanceState) bool {
	if len(s.fleetIDs) != len(fleet) {
		return false
	}
	for i, st := range fleet {
		if s.fleetIDs[i] != st.ID {
			return false
		}
	}
	return true
}

func (s *semanticAffinity) Route(req workload.Request, nowMS float64, fleet []InstanceState) int {
	// On a resize, drop affinity memory of instances no longer in the
	// fleet (retired by the autoscaler): their topics must migrate, not
	// stick to an ID a future instance might appear to inherit. The
	// composition check keeps the sweep off the steady-state hot path.
	if !s.sameFleet(fleet) {
		present := make(map[int]bool, len(fleet))
		for _, st := range fleet {
			present[st.ID] = true
		}
		for id := range s.centroids {
			if !present[id] {
				delete(s.centroids, id)
			}
		}
		s.fleetIDs = s.fleetIDs[:0]
		for _, st := range fleet {
			s.fleetIDs = append(s.fleetIDs, st.ID)
		}
	}

	// Most-affine instance across the fleet, scanned in fleet (ID) order
	// for determinism.
	bestInst, bestSim := -1, s.opts.MinSim
	minLoad := fleet[0].load()
	for _, st := range fleet[1:] {
		if st.load() < minLoad {
			minLoad = st.load()
		}
	}
	for i := range fleet {
		if fleet[i].load() > minLoad+s.opts.LoadSlack {
			continue // affinity must not defeat load balancing
		}
		for _, c := range s.centroids[fleet[i].ID] {
			if sim := tensor.Cosine(req.Embedding, c); sim > bestSim {
				bestSim, bestInst = sim, i
			}
		}
	}
	target := bestInst
	if target < 0 {
		target = s.fallback.Route(req, nowMS, fleet)
	}
	s.learn(fleet[target].ID, req.Embedding)
	return target
}

// learn folds the routed embedding into the target instance's affinity
// memory: blend into the closest centroid when near-duplicate, else
// remember it as a new centroid, evicting the oldest beyond the cap.
func (s *semanticAffinity) learn(id int, emb []float64) {
	if len(emb) == 0 {
		return
	}
	cs := s.centroids[id]
	closest, closestSim := -1, s.opts.MergeSim
	for k, c := range cs {
		if sim := tensor.Cosine(emb, c); sim >= closestSim {
			closestSim, closest = sim, k
		}
	}
	if closest >= 0 {
		tensor.Axpy(0.25, emb, cs[closest])
		tensor.Normalize(cs[closest])
		return
	}
	cs = append(cs, tensor.Copy(emb))
	if len(cs) > s.opts.MaxCentroids {
		// Compact in place rather than reslicing: cs = cs[1:] would keep
		// the evicted embedding reachable through the backing array, a
		// leak that grows for the lifetime of a long-running fleet.
		copy(cs, cs[1:])
		cs[len(cs)-1] = nil
		cs = cs[:len(cs)-1]
	}
	s.centroids[id] = cs
}
