package cluster

import (
	"finemoe/internal/tensor"
	"finemoe/internal/workload"
)

// Router is the second stage of the serving pipeline: it picks the target
// instance for an admitted request. Implementations may keep state
// (round-robin cursors, affinity memories); they are driven sequentially
// by the cluster's shared-clock loop and need no locking.
type Router interface {
	// Name identifies the policy in results.
	Name() string
	// Route returns the target instance index in [0, len(fleet)).
	Route(req workload.Request, nowMS float64, fleet []InstanceState) int
}

// roundRobin cycles through instances in order.
type roundRobin struct{ next int }

// NewRoundRobin returns the round-robin router.
func NewRoundRobin() Router { return &roundRobin{} }

func (r *roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Route(_ workload.Request, _ float64, fleet []InstanceState) int {
	i := r.next % len(fleet)
	r.next = (r.next + 1) % len(fleet)
	return i
}

// load is the routing load signal: queued plus in-flight requests.
func (s InstanceState) load() int { return s.QueueDepth + s.InFlight }

// leastLoaded joins the shortest queue (queued + in-flight requests).
// Ties break toward the instance that has been routed the least total
// work, then toward the lowest index, so the policy stays deterministic
// and spreads load even when every queue is momentarily empty.
type leastLoaded struct{}

// NewLeastLoaded returns the join-shortest-queue router.
func NewLeastLoaded() Router { return leastLoaded{} }

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Route(_ workload.Request, _ float64, fleet []InstanceState) int {
	best := 0
	for i := 1; i < len(fleet); i++ {
		if fleet[i].load() < fleet[best].load() ||
			(fleet[i].load() == fleet[best].load() && fleet[i].Submitted < fleet[best].Submitted) {
			best = i
		}
	}
	return best
}

// SemanticAffinityOptions tunes the FineMoE-aware router.
type SemanticAffinityOptions struct {
	// MinSim is the cosine similarity below which a prompt is considered
	// unseen by every instance and falls back to least-loaded placement
	// (default 0.6; paper-style topic clusters separate cleanly at this
	// threshold).
	MinSim float64
	// MergeSim is the similarity above which a routed prompt updates an
	// existing centroid instead of adding a new one (default 0.9).
	MergeSim float64
	// MaxCentroids bounds each instance's affinity memory (default 32;
	// oldest centroid evicted beyond it).
	MaxCentroids int
	// LoadSlack is how much longer than the shortest queue an affine
	// instance's queue may be before load balancing overrides affinity
	// (default 6 requests).
	LoadSlack int
}

func (o SemanticAffinityOptions) withDefaults() SemanticAffinityOptions {
	if o.MinSim == 0 {
		o.MinSim = 0.6
	}
	if o.MergeSim == 0 {
		o.MergeSim = 0.9
	}
	if o.MaxCentroids <= 0 {
		o.MaxCentroids = 32
	}
	if o.LoadSlack <= 0 {
		o.LoadSlack = 6
	}
	return o
}

// semanticAffinity routes semantically similar prompts to the instance
// that has already served them, so that instance's Expert Map Store — and
// its expert cache — have seen the prompt's expert-activation pattern
// (§4.2's semantic search, lifted to the fleet). Each instance accumulates
// a bounded memory of prompt-embedding centroids; requests go to the
// instance with the most similar centroid unless that instance is
// overloaded, in which case placement falls back to least-loaded (and the
// topic migrates with it).
type semanticAffinity struct {
	opts      SemanticAffinityOptions
	centroids [][][]float64 // [instance][k]embedding
	fallback  Router
}

// NewSemanticAffinity returns the FineMoE-aware affinity router.
func NewSemanticAffinity(opts SemanticAffinityOptions) Router {
	return &semanticAffinity{opts: opts.withDefaults(), fallback: NewLeastLoaded()}
}

func (s *semanticAffinity) Name() string { return "semantic-affinity" }

func (s *semanticAffinity) Route(req workload.Request, nowMS float64, fleet []InstanceState) int {
	if len(s.centroids) < len(fleet) {
		grown := make([][][]float64, len(fleet))
		copy(grown, s.centroids)
		s.centroids = grown
	}

	// Most-affine instance across the fleet.
	bestInst, bestSim := -1, s.opts.MinSim
	minLoad := fleet[0].load()
	for _, st := range fleet[1:] {
		if st.load() < minLoad {
			minLoad = st.load()
		}
	}
	for i := range fleet {
		if fleet[i].load() > minLoad+s.opts.LoadSlack {
			continue // affinity must not defeat load balancing
		}
		for _, c := range s.centroids[i] {
			if sim := tensor.Cosine(req.Embedding, c); sim > bestSim {
				bestSim, bestInst = sim, i
			}
		}
	}
	target := bestInst
	if target < 0 {
		target = s.fallback.Route(req, nowMS, fleet)
	}
	s.learn(target, req.Embedding)
	return target
}

// learn folds the routed embedding into the target instance's affinity
// memory: blend into the closest centroid when near-duplicate, else
// remember it as a new centroid, evicting the oldest beyond the cap.
func (s *semanticAffinity) learn(inst int, emb []float64) {
	if len(emb) == 0 {
		return
	}
	cs := s.centroids[inst]
	closest, closestSim := -1, s.opts.MergeSim
	for k, c := range cs {
		if sim := tensor.Cosine(emb, c); sim >= closestSim {
			closestSim, closest = sim, k
		}
	}
	if closest >= 0 {
		tensor.Axpy(0.25, emb, cs[closest])
		tensor.Normalize(cs[closest])
		return
	}
	cs = append(cs, tensor.Copy(emb))
	if len(cs) > s.opts.MaxCentroids {
		cs = cs[1:]
	}
	s.centroids[inst] = cs
}
