package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"finemoe/internal/moe"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// The shared-clock loop's contract at equal event times is
// arrival → autoscale tick → instance, with trace arrivals beating
// injected follow-ups at the same instant. These regression tests pin the
// tie-breaks through observable side effects — the order admission and
// the autoscaler see events, and the fleet state each observes — because
// epoch merging is exactly the kind of change that would silently perturb
// them if unpinned (the sharded loop must process ties identically; every
// test here re-runs with Workers > 1 and demands the identical log).

// evLog collects the observation order of one run.
type evLog struct{ entries []string }

// logAdmission admits everything, logging each arrival's (id, clock).
type logAdmission struct{ log *evLog }

func (logAdmission) Name() string { return "log-admit" }
func (a logAdmission) Admit(q workload.Request, now float64, fleet []InstanceState) bool {
	a.log.entries = append(a.log.entries, fmt.Sprintf("arrival:%d@%g", q.ID, now))
	return true
}

// logScaler holds forever, logging each tick's clock and the fleet's
// total queued depth — the proof of what state the tick observed.
type logScaler struct{ log *evLog }

func (logScaler) Name() string { return "log-scaler" }
func (s logScaler) Decide(now float64, fleet []InstanceState) Decision {
	depth := 0
	for _, st := range fleet {
		depth += st.QueueDepth
	}
	s.log.entries = append(s.log.entries, fmt.Sprintf("tick@%g depth=%d", now, depth))
	return Hold
}

// tbReq builds a request with an exact arrival time and a valid embedding
// for the tiny model.
func tbReq(cfg moe.Config, id uint64, arrival float64) workload.Request {
	emb := make([]float64, cfg.SemDim)
	emb[int(id)%cfg.SemDim] = 1
	return workload.Request{
		PromptSpec: moe.PromptSpec{ID: id, InputTokens: 4, OutputTokens: 2, Embedding: emb},
		ArrivalMS:  arrival,
	}
}

// TestTieBreakTraceBeatsInjected: a trace arrival and a follow-up
// injection at the exact same timestamp resolve toward the trace (run's
// strict `<` on the injected head).
func TestTieBreakTraceBeatsInjected(t *testing.T) {
	for _, workers := range []int{0, 3} {
		cfg := moe.Tiny()
		m := moe.NewModel(cfg, 7)
		log := &evLog{}
		c := New(Options{
			Engines:   testEngines(m, 2),
			Admission: logAdmission{log},
			FollowUp: func(done serve.RequestMetrics, orig workload.Request) (workload.Request, bool) {
				if orig.ID != 1 {
					return workload.Request{}, false
				}
				// Injected at exactly the second trace arrival's time.
				return tbReq(cfg, 99, 5000), true
			},
			Workers: workers,
		})
		res := c.RunTrace([]workload.Request{tbReq(cfg, 1, 0), tbReq(cfg, 2, 5000)})
		if res.FollowUps != 1 || res.Served != 3 {
			t.Fatalf("workers=%d: follow-ups %d served %d, want 1/3", workers, res.FollowUps, res.Served)
		}
		want := []string{"arrival:1@0", "arrival:2@5000", "arrival:99@5000"}
		if !reflect.DeepEqual(log.entries, want) {
			t.Fatalf("workers=%d: admission order %v, want %v", workers, log.entries, want)
		}
	}
}

// TestTieBreakArrivalBeatsTick: an arrival and an autoscale tick at the
// same timestamp process arrival-first, so the tick's fleet view includes
// the just-offered request.
func TestTieBreakArrivalBeatsTick(t *testing.T) {
	for _, workers := range []int{0, 3} {
		cfg := moe.Tiny()
		m := moe.NewModel(cfg, 7)
		log := &evLog{}
		c := New(Options{
			Engines:             testEngines(m, 2),
			Admission:           logAdmission{log},
			Autoscaler:          logScaler{log},
			EngineFactory:       func(id int) *serve.Engine { return testEngines(m, 1)[0] },
			AutoscaleIntervalMS: 500,
			Workers:             workers,
		})
		// A single arrival at exactly the first tick time. Arrival first
		// means the routed request is visible (queued or in flight) when
		// the tick fires; the engine's own event at 500 runs after the
		// tick, so the request cannot yet have been admitted to a batch —
		// the tick must observe queue depth 1.
		res := c.RunTrace([]workload.Request{tbReq(cfg, 1, 500)})
		if res.Served != 1 {
			t.Fatalf("workers=%d: served %d, want 1", workers, res.Served)
		}
		if len(log.entries) < 2 {
			t.Fatalf("workers=%d: too few observations: %v", workers, log.entries)
		}
		want := []string{"arrival:1@500", "tick@500 depth=1"}
		if !reflect.DeepEqual(log.entries[:2], want) {
			t.Fatalf("workers=%d: order %v, want prefix %v", workers, log.entries[:2], want)
		}
	}
}

// TestTieBreakTickBeatsInstance: an autoscale tick and an instance event
// at the same timestamp process tick-first — the tick observes the
// pre-step fleet (the pending request still queued). The instance's
// pending head is planted through the external Submit path and the heap
// re-synced via SyncEvents, which also pins that repair API's contract.
func TestTieBreakTickBeatsInstance(t *testing.T) {
	for _, workers := range []int{0, 3} {
		cfg := moe.Tiny()
		m := moe.NewModel(cfg, 7)
		log := &evLog{}
		c := New(Options{
			Engines:             testEngines(m, 2),
			Autoscaler:          logScaler{log},
			EngineFactory:       func(id int) *serve.Engine { return testEngines(m, 1)[0] },
			AutoscaleIntervalMS: 500,
			Workers:             workers,
		})
		// Plant a pending arrival at exactly the tick time behind the
		// cluster's back, then repair the heap.
		in := c.Instances()[0]
		in.Engine.Submit(tbReq(cfg, 1, 500))
		c.SyncEvents()
		if tm, which := c.nextInstanceEvent(); tm != 500 || which != 0 {
			t.Fatalf("workers=%d: heap after SyncEvents = (%v, %d), want (500, 0)", workers, tm, which)
		}
		wall := c.Drain()
		if wall <= 500 {
			t.Fatalf("workers=%d: drain wall %v never passed the planted event", workers, wall)
		}
		if len(log.entries) == 0 {
			t.Fatalf("workers=%d: no tick observed", workers)
		}
		// Tick at 500 fires before the instance admits at 500: depth 1.
		if log.entries[0] != "tick@500 depth=1" {
			t.Fatalf("workers=%d: first tick %q, want tick@500 depth=1", workers, log.entries[0])
		}
	}
}

// TestTieBreakThreeWayCoincidence: a trace arrival, a follow-up
// injection, an autoscale tick and an instance event all at the same
// timestamp resolve trace-arrival → injected-arrival → tick → instance.
func TestTieBreakThreeWayCoincidence(t *testing.T) {
	logs := map[int][]string{}
	for _, workers := range []int{0, 3} {
		cfg := moe.Tiny()
		m := moe.NewModel(cfg, 7)
		log := &evLog{}
		c := New(Options{
			Engines:             stagedEngines(m, 2),
			Admission:           logAdmission{log},
			Autoscaler:          logScaler{log},
			EngineFactory:       func(id int) *serve.Engine { return stagedEngines(m, 1)[0] },
			AutoscaleIntervalMS: 500,
			FollowUp: func(done serve.RequestMetrics, orig workload.Request) (workload.Request, bool) {
				if orig.ID != 1 {
					return workload.Request{}, false
				}
				return tbReq(cfg, 99, 500), true
			},
			Workers: workers,
		})
		// Plant an instance event at 500 on the highest instance (kept
		// clear of routing by the default round-robin starting at 0).
		c.Instances()[1].Engine.Submit(tbReq(cfg, 50, 500))
		c.SyncEvents()
		res := c.RunTrace([]workload.Request{tbReq(cfg, 1, 0), tbReq(cfg, 2, 500)})
		if res.FollowUps != 1 {
			t.Fatalf("workers=%d: follow-ups %d, want 1", workers, res.FollowUps)
		}
		// Trace arrival then injected arrival then tick, all at 500; the
		// planted request (and arrivals routed at 500) still queued when
		// the tick observes the fleet.
		want := []string{"arrival:1@0", "arrival:2@500", "arrival:99@500"}
		got := log.entries[:3]
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: arrival order %v, want %v", workers, got, want)
		}
		tick := log.entries[3]
		if tick != "tick@500 depth=3" {
			t.Fatalf("workers=%d: tick observation %q, want tick@500 depth=3 (arrivals and planted request pre-step)", workers, tick)
		}
		logs[workers] = append([]string(nil), log.entries...)
	}
	if !reflect.DeepEqual(logs[0], logs[3]) {
		t.Fatalf("sharded coincidence log diverges from serial:\n%v\nvs\n%v", logs[3], logs[0])
	}
}
