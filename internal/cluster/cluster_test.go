package cluster

import (
	"encoding/json"
	"math"
	"testing"

	"finemoe/internal/core"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

func testGPU() memsim.GPUSpec {
	return memsim.GPUSpec{
		Name: "test-gpu", MemBytes: 1 << 30, HBMGBps: 100,
		FP16TFLOPS: 10, PCIeGBps: 1, PerLayerOverheadMS: 0.5,
	}
}

// testEngines builds n fresh FineMoE engines over the tiny model.
func testEngines(m *moe.Model, n int) []*serve.Engine {
	cfg := m.Cfg
	out := make([]*serve.Engine, n)
	for i := range out {
		pol := core.NewFineMoE(core.NewStore(cfg, 50, 2), core.Options{})
		out[i] = serve.New(serve.Options{
			Model: m, GPU: testGPU(), NumGPUs: 1,
			CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()/2),
			Policy:     pol,
		})
	}
	return out
}

func testTrace(cfg moe.Config, n int, rate float64, seed uint64) []workload.Request {
	d := workload.Dataset{
		Name: "cluster-test", Topics: 6, TopicSpread: 0.05,
		MeanInput: 5, MeanOutput: 4, Seed: 99,
	}
	reqs := workload.AzureTrace(d, cfg.SemDim, workload.TraceConfig{
		RatePerSec: rate, N: n, Seed: seed,
	})
	return reqs
}

func req(id uint64, arrival float64) workload.Request {
	return workload.Request{
		PromptSpec: moe.PromptSpec{ID: id, InputTokens: 4, OutputTokens: 2},
		ArrivalMS:  arrival,
	}
}

// --- admission policies ------------------------------------------------------

func TestAlwaysAdmit(t *testing.T) {
	a := NewAlwaysAdmit()
	if a.Name() != "always-admit" {
		t.Fatalf("name = %q", a.Name())
	}
	for i := 0; i < 10; i++ {
		if !a.Admit(req(uint64(i), 0), 0, nil) {
			t.Fatal("always-admit rejected a request")
		}
	}
}

func TestRejectAll(t *testing.T) {
	a := NewRejectAll()
	if a.Name() != "reject-all" {
		t.Fatalf("name = %q", a.Name())
	}
	for i := 0; i < 10; i++ {
		if a.Admit(req(uint64(i), 0), 0, nil) {
			t.Fatal("reject-all admitted a request")
		}
	}
}

func TestTokenBucketBurstAndRefill(t *testing.T) {
	b := NewTokenBucket(3, 1) // 3-deep bucket, 1 token/s
	// The initial burst drains the bucket.
	for i := 0; i < 3; i++ {
		if !b.Admit(req(uint64(i), 0), 0, nil) {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	if b.Admit(req(3, 0), 0, nil) {
		t.Fatal("admitted past bucket capacity")
	}
	// 500 ms refills only half a token.
	if b.Admit(req(4, 500), 500, nil) {
		t.Fatal("admitted on a half-refilled bucket")
	}
	// A full second after the burst there is one token (the 500 ms
	// half-token plus another half).
	if !b.Admit(req(5, 1000), 1000, nil) {
		t.Fatal("rejected after refill")
	}
	if b.Admit(req(6, 1000), 1000, nil) {
		t.Fatal("admitted two requests off one refilled token")
	}
	// Refill caps at capacity: after a long idle gap only 3 pass.
	admitted := 0
	for i := 0; i < 5; i++ {
		if b.Admit(req(uint64(10+i), 1e6), 1e6, nil) {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("after idle gap admitted %d, want capacity 3", admitted)
	}
}

// --- routers -----------------------------------------------------------------

func fleetOf(loads ...int) []InstanceState {
	out := make([]InstanceState, len(loads))
	for i, l := range loads {
		out[i] = InstanceState{ID: i, QueueDepth: l}
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	r := NewRoundRobin()
	fleet := fleetOf(0, 0, 0)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := r.Route(req(uint64(i), 0), 0, fleet); got != w {
			t.Fatalf("route %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastLoadedPicksShortestQueue(t *testing.T) {
	r := NewLeastLoaded()
	if got := r.Route(req(0, 0), 0, fleetOf(4, 1, 2)); got != 1 {
		t.Fatalf("route = %d, want 1", got)
	}
	// In-flight requests count toward load.
	fleet := fleetOf(1, 1, 1)
	fleet[0].QueueDepth = 0
	fleet[0].InFlight = 5
	if got := r.Route(req(0, 0), 0, fleet); got != 1 {
		t.Fatalf("route = %d, want 1 (in-flight ignored?)", got)
	}
	// Ties break toward the lowest index.
	if got := r.Route(req(0, 0), 0, fleetOf(2, 2, 2)); got != 0 {
		t.Fatalf("tie route = %d, want 0", got)
	}
}

func embReq(id uint64, emb []float64) workload.Request {
	return workload.Request{PromptSpec: moe.PromptSpec{ID: id, Embedding: emb}}
}

func TestSemanticAffinityStickiness(t *testing.T) {
	r := NewSemanticAffinity(SemanticAffinityOptions{})
	fleet := fleetOf(0, 0, 0, 0)
	a := []float64{1, 0, 0, 0}
	b := []float64{0, 1, 0, 0}

	// An unseen prompt falls back to least-loaded (instance 0), and the
	// topic sticks there for later similar prompts.
	first := r.Route(embReq(1, a), 0, fleet)
	if first != 0 {
		t.Fatalf("first route = %d, want least-loaded fallback 0", first)
	}
	// A different topic lands elsewhere once instance 0 carries load.
	fleet[0].QueueDepth = 1
	other := r.Route(embReq(2, b), 0, fleet)
	if other == first {
		t.Fatalf("distinct topic routed to the same instance %d", other)
	}
	// Similar prompts follow their topic's instance even when it is not
	// the least loaded.
	fleet[first].QueueDepth = 2
	if got := r.Route(embReq(3, a), 0, fleet); got != first {
		t.Fatalf("topic a re-route = %d, want sticky %d", got, first)
	}
	if got := r.Route(embReq(4, b), 0, fleet); got != other {
		t.Fatalf("topic b re-route = %d, want sticky %d", got, other)
	}
}

func TestSemanticAffinityLoadGuard(t *testing.T) {
	r := NewSemanticAffinity(SemanticAffinityOptions{LoadSlack: 2})
	fleet := fleetOf(0, 0)
	a := []float64{1, 0, 0}
	if got := r.Route(embReq(1, a), 0, fleet); got != 0 {
		t.Fatalf("first route = %d, want 0", got)
	}
	// Once the affine instance is far over the shortest queue, load
	// balancing overrides affinity.
	fleet[0].QueueDepth = 5
	if got := r.Route(embReq(2, a), 0, fleet); got != 1 {
		t.Fatalf("overloaded route = %d, want spill to 1", got)
	}
}

// --- cluster pipeline --------------------------------------------------------

func TestClusterRejectAllServesNothing(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 7)
	c := New(Options{Engines: testEngines(m, 2), Admission: NewRejectAll()})
	res := c.RunTrace(testTrace(m.Cfg, 8, 50, 3))
	if res.Served != 0 || res.Rejected != 8 || res.Admitted != 0 {
		t.Fatalf("served %d rejected %d admitted %d, want 0/8/0",
			res.Served, res.Rejected, res.Admitted)
	}
}

func TestClusterServesEveryAdmittedRequest(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 7)
	const n = 12
	c := New(Options{Engines: testEngines(m, 3), Router: NewRoundRobin()})
	res := c.RunTrace(testTrace(m.Cfg, n, 50, 3))
	if res.Admitted != n || res.Served != n || res.Rejected != 0 {
		t.Fatalf("admitted %d served %d rejected %d, want %d/%d/0",
			res.Admitted, res.Served, res.Rejected, n, n)
	}
	// Round-robin spreads evenly.
	for _, ir := range res.Instances {
		if ir.Submitted != n/3 {
			t.Fatalf("instance %d got %d requests, want %d", ir.ID, ir.Submitted, n/3)
		}
	}
	// Fleet summaries cover every request.
	if res.TTFT.N != n || res.E2E.N != n {
		t.Fatalf("fleet summary over %d/%d requests, want %d", res.TTFT.N, res.E2E.N, n)
	}
	if res.MeanTTFT <= 0 || res.WallClockMS <= 0 {
		t.Fatalf("degenerate fleet metrics: %+v", res)
	}
	if res.HitRate < 0 || res.HitRate > 1 {
		t.Fatalf("hit rate %v out of range", res.HitRate)
	}
}

func TestClusterTokenBucketSheds(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 7)
	// 2-deep bucket refilling at 1 token/s against a ~50 req/s burst of 10
	// requests: most of the burst must shed.
	c := New(Options{
		Engines:   testEngines(m, 2),
		Admission: NewTokenBucket(2, 1),
	})
	res := c.RunTrace(testTrace(m.Cfg, 10, 50, 3))
	if res.Rejected == 0 {
		t.Fatal("token bucket shed nothing under a burst")
	}
	if res.Admitted+res.Rejected != 10 {
		t.Fatalf("admission accounting broken: %d + %d != 10", res.Admitted, res.Rejected)
	}
	if res.Served != res.Admitted {
		t.Fatalf("served %d != admitted %d", res.Served, res.Admitted)
	}
}

// runOnce executes one fixed 4-instance cluster run and returns the
// JSON-encoded result.
func runOnce(t *testing.T, router Router, seed uint64) []byte {
	t.Helper()
	m := moe.NewModel(moe.Tiny(), seed)
	c := New(Options{
		Engines:   testEngines(m, 4),
		Admission: NewTokenBucket(16, 40),
		Router:    router,
	})
	res := c.RunTrace(testTrace(m.Cfg, 32, 30, seed))
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestClusterDeterminismProperty mirrors engine_property_test.go at fleet
// scope: the same seed and trace must yield a byte-identical Result,
// whatever the router.
func TestClusterDeterminismProperty(t *testing.T) {
	routers := []func() Router{
		NewRoundRobin,
		NewLeastLoaded,
		func() Router { return NewSemanticAffinity(SemanticAffinityOptions{}) },
	}
	for _, mk := range routers {
		for seed := uint64(1); seed <= 3; seed++ {
			a := runOnce(t, mk(), seed)
			b := runOnce(t, mk(), seed)
			if string(a) != string(b) {
				t.Fatalf("%s: seed %d not deterministic", mk().Name(), seed)
			}
		}
	}
}

// TestClusterSharedClockOrdering: instance virtual clocks never run
// backwards and the fleet makespan bounds every instance.
func TestClusterSharedClockOrdering(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 7)
	c := New(Options{Engines: testEngines(m, 3), Router: NewLeastLoaded()})
	trace := testTrace(m.Cfg, 16, 40, 5)
	for _, q := range trace {
		if got := c.Offer(q); got < 0 {
			t.Fatalf("always-admit rejected %d", q.ID)
		}
		for c.Step(q.ArrivalMS) {
		}
	}
	wall := c.Drain()
	res := c.Finalize()
	if res.Served != 16 {
		t.Fatalf("served %d, want 16", res.Served)
	}
	if math.Abs(wall-res.WallClockMS) > 1e-9 {
		t.Fatalf("Drain wall %v != result wall %v", wall, res.WallClockMS)
	}
	for _, ir := range res.Instances {
		if ir.Result.WallClockMS > res.WallClockMS+1e-9 {
			t.Fatalf("instance %d clock %v beyond fleet makespan %v",
				ir.ID, ir.Result.WallClockMS, res.WallClockMS)
		}
	}
}
