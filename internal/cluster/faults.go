// Fault-plan execution: compiled fault events (internal/faults) merge
// into the shared-clock loop ahead of every other event source at equal
// times, and their effects — crashed engines, degraded links, stranded
// requests, cold replacements — are applied on the coordinator only, so
// the fault stream and everything downstream of it is byte-identical
// across worker counts.
package cluster

import (
	"finemoe/internal/faults"
	"finemoe/internal/workload"
)

// FaultRecord is one entry of a run's deterministic fault/resilience
// event log: injected faults (crash, detect, brownout, restore, stall),
// fleet reactions (replace, lost) and request-level reactions (timeout,
// retry, hedge), in processing order.
type FaultRecord struct {
	// TimeMS is the shared-clock time the event was applied.
	TimeMS float64
	// Kind names the event.
	Kind string
	// Instance is the affected instance's stable ID (faults.AllInstances
	// for fleet-wide brownouts/stalls).
	Instance int
}

// degWindow is one applied degradation window (brownout or stall), for
// DegradedMS accounting: n instances degraded over [start, end).
type degWindow struct {
	start, end float64
	n          int
}

// logFault appends one entry to the run's fault log.
func (c *Cluster) logFault(t float64, kind string, instance int) {
	c.flog = append(c.flog, FaultRecord{TimeMS: t, Kind: kind, Instance: instance})
}

// findInstance returns the instance with the given stable ID, or nil —
// fault plans may target IDs that never joined the fleet.
func (c *Cluster) findInstance(id int) *Instance {
	for _, in := range c.instances {
		if in.ID == id {
			return in
		}
	}
	return nil
}

// applyFault applies one compiled fault event at its scheduled time.
func (c *Cluster) applyFault(ev faults.Event) {
	if ev.TimeMS > c.now {
		c.now = ev.TimeMS
	}
	switch ev.Kind {
	case faults.KindCrash:
		c.applyCrash(ev)
	case faults.KindDetect:
		c.applyDetect(ev)
	case faults.KindBrownout, faults.KindRestore, faults.KindStall:
		c.applyLinkFault(ev)
	}
}

// applyCrash halts the target instance's engine. The fleet keeps routing
// to the dead instance until the matching detect event: submissions pile
// up unserved and are harvested then.
func (c *Cluster) applyCrash(ev faults.Event) {
	in := c.findInstance(ev.Instance)
	if in == nil || in.Crashed {
		return
	}
	in.Crashed = true
	in.CrashedMS = ev.TimeMS
	in.Engine.Crash()
	c.refreshEvent(in.idx)
	c.crashes++
	c.logFault(ev.TimeMS, "crash", in.ID)
}

// applyDetect makes a crash visible: the instance leaves the routable
// fleet, stranded requests are requeued or lost per the resilience
// policy, and a cold replacement may spawn.
func (c *Cluster) applyDetect(ev faults.Event) {
	in := c.findInstance(ev.Instance)
	if in == nil || !in.Crashed || in.Detected {
		return
	}
	in.Detected = true
	c.logFault(ev.TimeMS, "detect", in.ID)
	for _, req := range in.Engine.CrashHarvest() {
		c.strandedRequest(req, in, ev.TimeMS)
	}
	if c.res.ReplaceOnCrash && c.factory != nil && c.ActiveSize() < c.maxInst {
		c.spawnReplacement(ev.TimeMS)
	}
}

// strandedRequest settles one request harvested from a crashed instance:
// requeue it (resilience with RequeueOnCrash and budget left) or count
// it lost.
func (c *Cluster) strandedRequest(req workload.Request, in *Instance, t float64) {
	c.lostInFlight++
	if !c.resOn {
		c.failedReqs++
		c.logFault(t, "lost", in.ID)
		return
	}
	rec := c.records[req.ID]
	if rec == nil || rec.done {
		// Untracked or already resolved elsewhere (e.g. a hedge copy of a
		// request another instance finished): nothing to recover.
		c.logFault(t, "lost", in.ID)
		return
	}
	for i := len(rec.copies) - 1; i >= 0; i-- {
		cp := &rec.copies[i]
		if cp.id == req.ID && cp.inst == in.ID && cp.live {
			cp.live = false
			break
		}
	}
	b := c.budgetFor(rec.orig.Tenant)
	if c.res.RequeueOnCrash && c.budgetAllows(b) {
		b.used++
		c.scheduleRes(resEvent{t: t, k: rkRetry, rec: rec})
		return
	}
	c.logFault(t, "lost", in.ID)
	if !anyLive(rec) {
		c.failRecord(rec)
	}
}

// spawnReplacement grows the fleet by one cold-store instance in
// reaction to a detected crash, reusing the autoscaler's grow path and
// bookkeeping (ScaleEvent kind "replace").
func (c *Cluster) spawnReplacement(t float64) {
	id := c.nextID
	c.nextID++
	e := c.factory(id)
	if e == nil {
		panic("cluster: EngineFactory returned nil engine")
	}
	e.AdvanceClock(t)
	c.instances = append(c.instances, &Instance{ID: id, Engine: e, StartedMS: t, idx: len(c.instances)})
	c.evtPush(len(c.instances) - 1)
	if m := e.MinIterationMS(); m < c.minIter {
		c.minIter = m
	}
	c.events = append(c.events, ScaleEvent{
		TimeMS: t, Kind: "replace", Instance: id, ActiveAfter: c.ActiveSize(),
	})
	c.logFault(t, "replace", id)
}

// applyLinkFault applies a brownout, restore or stall to its target set:
// the named instance, or every non-crashed instance for AllInstances.
// Restores recompute the target set at restore time — an instance that
// crashed mid-window simply stays crashed. Link faults change only the
// duration of future transfers, never an engine's next event time, so no
// heap refresh is needed.
func (c *Cluster) applyLinkFault(ev faults.Event) {
	n := 0
	for _, in := range c.instances {
		if in.Crashed || (ev.Instance != faults.AllInstances && in.ID != ev.Instance) {
			continue
		}
		n++
		switch {
		case ev.Kind == faults.KindStall && ev.Link == faults.LinkPCIe:
			in.Engine.StallPCIeLinks(ev.EndMS)
		case ev.Kind == faults.KindStall:
			in.Engine.StallStagingLinks(ev.EndMS)
		case ev.Link == faults.LinkPCIe:
			in.Engine.ScalePCIeLinks(ev.Factor)
		default:
			in.Engine.ScaleStagingLinks(ev.Factor)
		}
	}
	if n > 0 && ev.Kind != faults.KindRestore {
		c.degraded = append(c.degraded, degWindow{start: ev.TimeMS, end: ev.EndMS, n: n})
	}
	c.logFault(ev.TimeMS, ev.Kind.String(), ev.Instance)
}
