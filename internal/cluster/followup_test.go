package cluster

import (
	"testing"

	"finemoe/internal/moe"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// sessionTrace builds openers plus a session generator over the tiny
// model's semantic dimensionality.
func sessionCluster(t *testing.T, seed uint64) (*Cluster, []workload.Request, *workload.Sessions) {
	t.Helper()
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 7)
	d := workload.Dataset{
		Name: "session-test", Topics: 4, TopicSpread: 0.05,
		MeanInput: 5, MeanOutput: 4, LenSigma: 0.3, Seed: 12,
	}
	sess := workload.NewSessions(d, cfg.SemDim,
		workload.SessionConfig{MeanTurns: 3, ThinkTimeS: 0.05, Drift: 0.03}, seed)
	trace := sess.Initial(workload.Poisson{RatePerSec: 20}, 10, 0)
	cl := New(Options{
		Engines: testEngines(m, 2),
		FollowUp: func(done serve.RequestMetrics, orig workload.Request) (workload.Request, bool) {
			return sess.FollowUp(orig, done.EndMS)
		},
	})
	return cl, trace, sess
}

// TestFollowUpInjection: the closed loop serves every injected turn —
// served = openers + follow-ups — and each follow-up arrives at or after
// its parent's completion.
func TestFollowUpInjection(t *testing.T) {
	cl, trace, _ := sessionCluster(t, 3)
	res := cl.RunTrace(trace)
	if res.FollowUps == 0 {
		t.Fatal("no follow-ups injected; closed loop is dead")
	}
	if res.Served != len(trace)+res.FollowUps {
		t.Fatalf("served %d, want %d openers + %d follow-ups",
			res.Served, len(trace), res.FollowUps)
	}
	if res.Admitted != res.Served {
		t.Fatalf("admitted %d != served %d", res.Admitted, res.Served)
	}

	// Reconstruct per-session turn order from completion metrics: every
	// follow-up (ID above the turn stride) must arrive no earlier than
	// some earlier-turn completion of the same session.
	byID := map[uint64]serve.RequestMetrics{}
	for _, ir := range res.Instances {
		for _, q := range ir.Result.Requests {
			byID[q.ID] = q
		}
	}
	const stride = uint64(1) << 48
	for id, q := range byID {
		if id < stride {
			continue // opener
		}
		parent, ok := byID[id-stride]
		if !ok {
			t.Fatalf("follow-up %d served without its parent", id)
		}
		if q.ArrivalMS < parent.EndMS {
			t.Fatalf("follow-up %d arrived at %.2f before parent finished at %.2f",
				id, q.ArrivalMS, parent.EndMS)
		}
	}
}

// TestFollowUpDeterminism: the closed loop is inside the determinism
// contract — two identical runs serve identical request sets with
// identical timings.
func TestFollowUpDeterminism(t *testing.T) {
	run := func() *Result {
		cl, trace, _ := sessionCluster(t, 3)
		return cl.RunTrace(trace)
	}
	a, b := run(), run()
	if a.FollowUps != b.FollowUps || a.Served != b.Served {
		t.Fatalf("follow-up counts diverge: %d/%d vs %d/%d",
			a.FollowUps, a.Served, b.FollowUps, b.Served)
	}
	if a.TTFT != b.TTFT || a.E2E != b.E2E || a.HitRate != b.HitRate {
		t.Fatal("closed-loop run not deterministic")
	}
}

// TestFollowUpDrainPath: follow-ups injected while draining (no trace
// arrivals left) are still offered and served — Drain merges the
// injected queue with instance events.
func TestFollowUpDrainPath(t *testing.T) {
	cl, trace, _ := sessionCluster(t, 5)
	// Offer everything up front, then drain: all follow-ups arrive during
	// the drain phase.
	for _, q := range trace {
		cl.Offer(q)
	}
	cl.Drain()
	res := cl.Finalize()
	if res.FollowUps == 0 {
		t.Fatal("no follow-ups during drain")
	}
	if res.Served != len(trace)+res.FollowUps {
		t.Fatalf("drain lost follow-ups: served %d, want %d",
			res.Served, len(trace)+res.FollowUps)
	}
}

// TestNoFollowUpHookUnchanged: without the hook, injection bookkeeping
// stays inert.
func TestNoFollowUpHookUnchanged(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 7)
	cl := New(Options{Engines: testEngines(m, 2)})
	res := cl.RunTrace(testTrace(cfg, 12, 20, 4))
	if res.FollowUps != 0 {
		t.Fatalf("follow-ups %d without a hook", res.FollowUps)
	}
	if res.Served != 12 {
		t.Fatalf("served %d, want 12", res.Served)
	}
}
