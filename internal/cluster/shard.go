// Sharded deterministic event loop: the cluster's instances are
// partitioned across persistent worker goroutines and advanced in
// epoch-sized time windows, byte-identical to the serial loop.
//
// The serial loop (run) processes one event at a time in shared-clock
// order. Its key structural property is that between two consecutive
// cluster-level events (an arrival offer or an autoscale tick) the only
// work is per-instance engine stepping — and engines are fully
// independent: a Step touches only its own engine's state (queues, links,
// caches, clock), never another instance or the cluster. So every
// instance event in the open window before the next cluster-level event
// can be executed concurrently, one shard per worker, and the resulting
// engine states are bit-for-bit the states the serial schedule produces.
//
// Epoch horizon. An epoch advances every instance past all events
// strictly before h = min(nextArrival, nextAutoscaleTick, nextFault,
// nextResilienceEvent), the exact set of events the serial loop would
// process before its next cluster-level event (ties at h go to the
// cluster event, matching run's `<=` comparisons). With a follow-up hook
// or resilience installed, a request completing inside the epoch can
// inject a new arrival or schedule a resilience reaction, which the
// serial loop would process at the completion's own time; to keep such
// events outside the window, h is additionally capped at tInst + minIter
// — no iteration can complete, and hence no completion reaction can come
// due, before the earliest pending instance event plus one minimum
// iteration duration (Engine.MinIterationMS; injection and reaction
// times are pinned to the parent's completion time, see
// observeCompletions).
//
// Merge. After the barrier, cross-instance effects are applied serially
// in the order the serial loop would have produced them. Worker step logs
// are concatenated and stably sorted by (event time, instance index) —
// per-instance logs are chronological and the serial loop's event
// sequence is non-decreasing in time with lowest-index-wins ties, so the
// sorted order IS the serial order. The follow-up hook is then consulted
// per completed request in that order (hooks may close over shared state,
// e.g. the scenario runner's session tracker, so call order is part of
// the determinism contract), and stale heap entries of stepped instances
// are refreshed. Arrivals, injections, autoscale ticks and fleet resizes
// all stay on the coordinator, exactly as in the serial loop.
package cluster

import (
	"slices"
)

// stepRecord logs one engine step taken inside an epoch, in the worker's
// per-instance chronological order: the event time the step was taken at,
// the instance's index, and the instance's completed-request count after
// the step (so the merge can consult the follow-up hook per completion in
// serial order).
type stepRecord struct {
	t    float64
	idx  int32
	done int
}

// shardPool is the persistent worker pool of one run: one goroutine per
// worker, fed an epoch horizon per round over its own command channel and
// answering on the shared done channel. All coordinator↔worker memory
// (engine state, instance slice, step logs) is ordered by those channel
// operations, so the sharded path is race-clean by construction.
type shardPool struct {
	workers int
	cmd     []chan float64
	done    chan struct{}
	logs    [][]stepRecord
}

// ensurePool lazily starts the worker goroutines on the first epoch.
func (c *Cluster) ensurePool() *shardPool {
	if c.pool != nil {
		return c.pool
	}
	p := &shardPool{
		workers: c.workers,
		cmd:     make([]chan float64, c.workers),
		done:    make(chan struct{}, c.workers),
		logs:    make([][]stepRecord, c.workers),
	}
	for w := range p.cmd {
		p.cmd[w] = make(chan float64, 1)
	}
	c.pool = p
	for w := 0; w < p.workers; w++ {
		go c.shardWorker(w)
	}
	return p
}

// stopPool shuts the workers down at the end of a run; a later run
// restarts them lazily.
func (c *Cluster) stopPool() {
	if c.pool == nil {
		return
	}
	for _, ch := range c.pool.cmd {
		close(ch)
	}
	c.pool = nil
}

// shardWorker advances the instances of shard w (instance index ≡ w mod
// workers, a partition that is stable under fleet growth) past every
// event strictly before each commanded horizon. Engines of a shard are
// touched by this worker only, and only between a horizon receive and the
// matching done send, so every access is channel-ordered against the
// coordinator. With no follow-up hook and no resilience installed steps
// need no logging — instance events are fully independent — otherwise
// each step is recorded so the merge can replay cross-instance effects
// in serial order.
func (c *Cluster) shardWorker(w int) {
	p := c.pool
	for h := range p.cmd[w] {
		if c.followUp == nil && !c.resOn {
			for idx := w; idx < len(c.instances); idx += p.workers {
				c.instances[idx].Engine.AdvanceUntil(h)
			}
		} else {
			log := p.logs[w][:0]
			for idx := w; idx < len(c.instances); idx += p.workers {
				e := c.instances[idx].Engine
				for {
					t := e.NextEventTime()
					if t >= h {
						break
					}
					e.Step(t)
					log = append(log, stepRecord{t: t, idx: int32(idx), done: e.CompletedCount()})
				}
			}
			p.logs[w] = log
		}
		p.done <- struct{}{}
	}
}

// epochBusy reports whether at least two instances have events strictly
// before h — the threshold below which an epoch cannot win over the
// serial single-step path. The second-earliest cached event time is by
// heap shape one of the root's children, so the check is O(1).
func (c *Cluster) epochBusy(h float64) bool {
	if c.evtTimes[c.evtHeap[0]] >= h {
		return false
	}
	if len(c.evtHeap) > 1 && c.evtTimes[c.evtHeap[1]] < h {
		return true
	}
	return len(c.evtHeap) > 2 && c.evtTimes[c.evtHeap[2]] < h
}

// runEpoch advances every instance past all events strictly before h in
// parallel, then merges cross-instance effects serially.
func (c *Cluster) runEpoch(h float64) {
	p := c.ensurePool()
	for w := 0; w < p.workers; w++ {
		p.cmd[w] <- h
	}
	for w := 0; w < p.workers; w++ {
		<-p.done
	}
	c.mergeEpoch(p)
}

// mergeEpoch restores the coordinator's view after an epoch: refresh the
// event-heap entries the workers advanced past their cached times, and —
// when a follow-up hook is installed — consult it per completed request
// in the exact order the serial loop would have (worker logs stably
// sorted by (event time, instance index); see the package comment for why
// that reproduces the serial schedule).
func (c *Cluster) mergeEpoch(p *shardPool) {
	if c.followUp == nil && !c.resOn {
		for i := range c.instances {
			c.refreshEvent(i)
		}
		return
	}
	m := c.mergeBuf[:0]
	for _, log := range p.logs {
		m = append(m, log...)
	}
	c.mergeBuf = m
	slices.SortStableFunc(m, func(a, b stepRecord) int {
		switch {
		case a.t < b.t:
			return -1
		case a.t > b.t:
			return 1
		default:
			return int(a.idx) - int(b.idx)
		}
	})
	for _, s := range m {
		c.refreshEvent(int(s.idx))
	}
	for _, s := range m {
		c.observeCompletionsTo(c.instances[s.idx], s.done)
	}
}
