package cluster

import (
	"encoding/json"
	"testing"

	"finemoe/internal/moe"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// streamVariant is one cell family of the streaming parity matrix: a
// fleet configuration plus the same workload in materialized and
// streaming form. Every builder is a pure function so repeated builds
// are byte-comparable.
type streamVariant struct {
	name    string
	cluster func(workers int) *Cluster
	trace   func() []workload.Request
	source  func() workload.Source
}

func streamDataset(seed uint64) workload.Dataset {
	return workload.Dataset{
		Name: "stream-test", Topics: 5, TopicSpread: 0.05,
		MeanInput: 5, MeanOutput: 4, LenSigma: 0.3, Seed: seed,
	}
}

func streamVariants() []streamVariant {
	var out []streamVariant

	// One variant per arrival process on a plain least-loaded fleet.
	shapes := []struct {
		name string
		ap   workload.ArrivalProcess
	}{
		{"poisson", workload.Poisson{RatePerSec: 60}},
		{"mmpp", workload.BurstyMMPP(60)},
		{"diurnal", workload.DiurnalSwing(60)},
		{"flash", workload.FlashSpike(60)},
	}
	for _, sh := range shapes {
		d := streamDataset(31)
		opt := workload.OnlineOptions{Arrivals: sh.ap, N: 48, Seed: 5}
		out = append(out, streamVariant{
			name: sh.name,
			cluster: func(workers int) *Cluster {
				m := moe.NewModel(moe.Tiny(), 11)
				return New(Options{
					Engines: testEngines(m, 4),
					Router:  NewLeastLoaded(),
					Workers: workers,
				})
			},
			trace:  func() []workload.Request { return workload.OnlineTrace(d, moe.Tiny().SemDim, opt) },
			source: func() workload.Source { return workload.StreamOnline(d, moe.Tiny().SemDim, opt) },
		})
	}

	// Closed-loop multi-turn sessions: streamed openers, follow-ups
	// injected through the hook on both paths.
	sessVariant := func(name string, seed uint64, plan bool) streamVariant {
		d := streamDataset(12)
		mkSess := func() *workload.Sessions {
			return workload.NewSessions(d, moe.Tiny().SemDim,
				workload.SessionConfig{MeanTurns: 3, ThinkTimeS: 0.02, Drift: 0.03}, seed)
		}
		return streamVariant{
			name: name,
			cluster: func(workers int) *Cluster {
				m := moe.NewModel(moe.Tiny(), 7)
				sess := mkSess()
				opts := Options{
					Engines: testEngines(m, 4),
					Router:  NewLeastLoaded(),
					FollowUp: func(done serve.RequestMetrics, orig workload.Request) (workload.Request, bool) {
						return sess.FollowUp(orig, done.EndMS)
					},
					EngineFactory: func(id int) *serve.Engine { return testEngines(m, 1)[0] },
					Workers:       workers,
				}
				if plan {
					opts.FaultPlan = gauntletPlan()
					opts.Resilience = fullResilience()
				}
				return New(opts)
			},
			trace: func() []workload.Request {
				return mkSess().Initial(workload.BurstyMMPP(60), 24, 0)
			},
			source: func() workload.Source {
				return mkSess().StreamInitial(workload.BurstyMMPP(60), 24, 0)
			},
		}
	}
	out = append(out, sessVariant("sessions", 3, false))

	// Multi-tenant mix, including the adversarial tenant.
	tenants := []workload.TenantSpec{
		{Name: "a", Dataset: streamDataset(21), Arrivals: workload.Poisson{RatePerSec: 40}, N: 20},
		{Name: "b", Dataset: streamDataset(22), Arrivals: workload.BurstyMMPP(50), N: 16},
		workload.AdversarialTenant("abuser", 20, 12, 9),
	}
	out = append(out, streamVariant{
		name: "tenants",
		cluster: func(workers int) *Cluster {
			m := moe.NewModel(moe.Tiny(), 13)
			return New(Options{
				Engines:   testEngines(m, 4),
				Admission: NewTokenBucket(24, 45),
				Router:    NewRoundRobin(),
				Workers:   workers,
			})
		},
		trace: func() []workload.Request {
			return workload.MultiTenantTrace(moe.Tiny().SemDim, 17, tenants)
		},
		source: func() workload.Source {
			return workload.StreamMultiTenant(moe.Tiny().SemDim, 17, tenants)
		},
	})

	// Fault plan + full resilience over a streamed trace.
	out = append(out, streamVariant{
		name: "faults",
		cluster: func(workers int) *Cluster {
			c, _ := faultCluster(workers, fullResilience())
			return c
		},
		trace: func() []workload.Request {
			_, trace := faultCluster(0, fullResilience())
			return trace
		},
		source: func() workload.Source {
			_, trace := faultCluster(0, fullResilience())
			return workload.NewSliceSource(trace)
		},
	})

	// Everything at once: sessions + fault plan + resilience + growth.
	out = append(out, sessVariant("combo", 19, true))

	return out
}

// runStreamBytes runs one cell and returns the JSON-encoded result.
func runStreamBytes(t *testing.T, c *Cluster, run func(c *Cluster) *Result) []byte {
	t.Helper()
	res := run(c)
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if res.Served == 0 {
		t.Fatal("degenerate cell served nothing")
	}
	return b
}

// TestRunStreamByteParity is the streaming tentpole's contract: for every
// workload shape (all four arrival processes, closed-loop sessions,
// multi-tenant mixes, fault plans with resilience, and the combination)
// and every worker count in {0, 1, 2, 4}, RunStream over the generator
// source produces a ClusterResult byte-identical to RunTrace over the
// materialized trace on the serial loop.
func TestRunStreamByteParity(t *testing.T) {
	for _, v := range streamVariants() {
		t.Run(v.name, func(t *testing.T) {
			serial := runStreamBytes(t, v.cluster(0), func(c *Cluster) *Result {
				return c.RunTrace(v.trace())
			})
			for _, w := range []int{0, 1, 2, 4} {
				got := runStreamBytes(t, v.cluster(w), func(c *Cluster) *Result {
					return c.RunStream(v.source())
				})
				if string(got) != string(serial) {
					t.Fatalf("workers=%d: streaming run diverges from materialized serial run (%d vs %d bytes)",
						w, len(got), len(serial))
				}
			}
		})
	}
}
