package cluster

import (
	"runtime"
	"testing"

	"finemoe/internal/moe"
	"finemoe/internal/workload"
)

// benchFleet builds one fresh bench fleet and its trace — a scaled-down
// cut of cmd/finemoe-bench -clusterbench (the committed BENCH_cluster.json
// baseline runs the same shape at 32 instances and 1M requests).
func benchFleet(workers, instances, n int) (*Cluster, []workload.Request) {
	m := moe.NewModel(moe.Tiny(), 42)
	trace := workload.OnlineTrace(workload.Dataset{
		Name: "clusterbench", Topics: 8, TopicSpread: 0.05,
		MeanInput: 5, MeanOutput: 4, LenSigma: 0.3, Seed: 11,
	}, m.Cfg.SemDim, workload.OnlineOptions{
		Arrivals: workload.BurstyMMPP(8 * float64(instances)), N: n, Seed: 42,
	})
	c := New(Options{
		Engines: testEngines(m, instances),
		Router:  NewLeastLoaded(),
		Workers: workers,
	})
	return c, trace
}

func benchClusterLoop(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, trace := benchFleet(workers, 8, 512)
		b.StartTimer()
		res := c.RunTrace(trace)
		if res.Served != len(trace) {
			b.Fatalf("served %d/%d", res.Served, len(trace))
		}
	}
}

// BenchmarkClusterLoopSerial measures the serial shared-clock loop; CI
// smokes it (and the sharded variants) at -benchtime 1x so harness rot is
// caught without paying full benchmark time.
func BenchmarkClusterLoopSerial(b *testing.B) { benchClusterLoop(b, 0) }

// BenchmarkClusterLoopSharded2 measures the epoch-sharded loop at two
// workers — byte-identical results to the serial loop, on worker
// goroutines.
func BenchmarkClusterLoopSharded2(b *testing.B) { benchClusterLoop(b, 2) }

// BenchmarkClusterLoopShardedNumCPU measures the sharded loop at the
// machine's parallelism.
func BenchmarkClusterLoopShardedNumCPU(b *testing.B) { benchClusterLoop(b, runtime.NumCPU()) }
