package cluster

import "finemoe/internal/workload"

// Admission is the first stage of the serving pipeline: it decides at
// arrival time whether a request enters the fleet at all. Implementations
// may keep state (rate limiters); they are driven sequentially by the
// cluster's shared-clock loop and need no locking.
type Admission interface {
	// Name identifies the policy in results.
	Name() string
	// Admit decides one arrival. nowMS is the cluster clock (the arrival
	// time) and fleet the current per-instance load view.
	Admit(req workload.Request, nowMS float64, fleet []InstanceState) bool
}

// alwaysAdmit accepts every request (the default).
type alwaysAdmit struct{}

// NewAlwaysAdmit returns the accept-everything admission policy.
func NewAlwaysAdmit() Admission { return alwaysAdmit{} }

func (alwaysAdmit) Name() string { return "always-admit" }

func (alwaysAdmit) Admit(workload.Request, float64, []InstanceState) bool { return true }

// rejectAll sheds every request — the pathological bound, useful for
// testing rejection accounting and fail-closed behaviour.
type rejectAll struct{}

// NewRejectAll returns the reject-everything admission policy.
func NewRejectAll() Admission { return rejectAll{} }

func (rejectAll) Name() string { return "reject-all" }

func (rejectAll) Admit(workload.Request, float64, []InstanceState) bool { return false }

// tokenBucket rate-limits admissions: a bucket of capacity tokens refills
// at refillPerSec; each admitted request spends one token, and arrivals
// finding an empty bucket are shed.
type tokenBucket struct {
	capacity     float64
	refillPerSec float64
	tokens       float64
	lastMS       float64
}

// NewTokenBucket returns a token-bucket admission policy. The bucket
// starts full; capacity < 1 is raised to 1 so at least one request can
// ever pass.
func NewTokenBucket(capacity, refillPerSec float64) Admission {
	if capacity < 1 {
		capacity = 1
	}
	if refillPerSec < 0 {
		refillPerSec = 0
	}
	return &tokenBucket{capacity: capacity, refillPerSec: refillPerSec, tokens: capacity}
}

func (b *tokenBucket) Name() string { return "token-bucket" }

func (b *tokenBucket) Admit(_ workload.Request, nowMS float64, _ []InstanceState) bool {
	if nowMS > b.lastMS {
		b.tokens += (nowMS - b.lastMS) / 1000 * b.refillPerSec
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
		b.lastMS = nowMS
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
