package cluster

import (
	"encoding/json"
	"math"
	"runtime"
	"testing"

	"finemoe/internal/faults"
	"finemoe/internal/moe"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// gauntletPlan is the crash+brownout+stall schedule the fault tests
// share: instance 1 dies mid-trace with 100 ms detection latency, the
// PCIe links of instance 2 run at 30% bandwidth for a window, and every
// staging link freezes briefly.
func gauntletPlan() *faults.Plan {
	return &faults.Plan{
		Crashes:   []faults.Crash{{AtMS: 300, Instance: 1, DetectMS: 100}},
		Brownouts: []faults.Brownout{{AtMS: 150, DurationMS: 400, Link: faults.LinkPCIe, Factor: 0.3, Instance: 2}},
		Stalls:    []faults.Stall{{AtMS: 100, DurationMS: 80, Link: faults.LinkStaging, Instance: faults.AllInstances}},
	}
}

// fullResilience is the everything-on policy: timeouts, retries with
// backoff, hedging, a retry budget, crash requeue and replacement.
func fullResilience() ResilienceOptions {
	return ResilienceOptions{
		Enabled: true, TimeoutMS: 400, MaxRetries: 2,
		BackoffBaseMS: 20, BackoffMaxMS: 200, JitterFrac: 0.2,
		HedgeAfterMS: 250, RetryBudgetFrac: 0.5,
		RequeueOnCrash: true, ReplaceOnCrash: true, Seed: 77,
	}
}

// faultCluster builds a 4-instance fleet under the gauntlet plan with
// the given resilience policy.
func faultCluster(workers int, res ResilienceOptions) (*Cluster, []workload.Request) {
	m := moe.NewModel(moe.Tiny(), 7)
	return New(Options{
		Engines:       testEngines(m, 4),
		Router:        NewLeastLoaded(),
		EngineFactory: func(id int) *serve.Engine { return testEngines(m, 1)[0] },
		Workers:       workers,
		FaultPlan:     gauntletPlan(),
		Resilience:    res,
	}), testTrace(m.Cfg, 48, 60, 3)
}

// TestCrashWithoutResilience: with resilience off, a crash strands every
// request on the dead instance — they are lost, counted failed, and the
// instance leaves the fleet at detection while the rest keep serving.
func TestCrashWithoutResilience(t *testing.T) {
	c, trace := faultCluster(0, ResilienceOptions{})
	res := c.RunTrace(trace)
	if res.Crashes != 1 {
		t.Fatalf("crashes %d, want 1", res.Crashes)
	}
	if res.LostInFlight == 0 || res.FailedRequests != res.LostInFlight {
		t.Fatalf("lost %d / failed %d: want equal and positive",
			res.LostInFlight, res.FailedRequests)
	}
	if res.Served+res.FailedRequests != res.Admitted {
		t.Fatalf("served %d + failed %d != admitted %d",
			res.Served, res.FailedRequests, res.Admitted)
	}
	if res.DegradedMS <= 0 {
		t.Fatal("brownout+stall windows reported no degraded exposure")
	}
	var crashed *InstanceResult
	for i := range res.Instances {
		if res.Instances[i].Crashed {
			crashed = &res.Instances[i]
		}
	}
	if crashed == nil || crashed.ID != 1 || crashed.CrashedMS != 300 {
		t.Fatalf("crashed instance record wrong: %+v", crashed)
	}
	// The dead instance costs capacity only until the failure itself.
	if res.WallClockMS <= 300 {
		t.Fatalf("makespan %v did not outlive the crash", res.WallClockMS)
	}
	if len(res.FaultLog) == 0 {
		t.Fatal("empty fault log")
	}
	for i := 1; i < len(res.FaultLog); i++ {
		if res.FaultLog[i].TimeMS < res.FaultLog[i-1].TimeMS {
			t.Fatalf("fault log out of order at %d: %+v", i, res.FaultLog[i])
		}
	}
}

// TestResilienceRecoversCrash: requeue-on-crash plus replacement turns
// every stranded request into a served one — no failures, with retries
// and a "replace" scale event on the books.
func TestResilienceRecoversCrash(t *testing.T) {
	c, trace := faultCluster(0, fullResilience())
	res := c.RunTrace(trace)
	if res.FailedRequests != 0 {
		t.Fatalf("failed %d with full resilience", res.FailedRequests)
	}
	if res.Served+res.FailedRequests != res.Admitted {
		t.Fatalf("served %d + failed %d != admitted %d",
			res.Served, res.FailedRequests, res.Admitted)
	}
	if res.LostInFlight == 0 || res.Retries == 0 {
		t.Fatalf("lost %d retries %d: crash recovery never exercised",
			res.LostInFlight, res.Retries)
	}
	replaced := false
	for _, ev := range res.ScaleEvents {
		if ev.Kind == "replace" {
			replaced = true
		}
	}
	if !replaced {
		t.Fatal("no replacement spawned for the detected crash")
	}
	// Baseline comparison: resilience must not serve fewer requests than
	// the unprotected fleet.
	cOff, traceOff := faultCluster(0, ResilienceOptions{})
	off := cOff.RunTrace(traceOff)
	if res.Served <= off.Served {
		t.Fatalf("resilience served %d <= unprotected %d", res.Served, off.Served)
	}
}

// TestHedgedRequestsResolveOnce: with hedging on, every request is
// served exactly once in the fleet aggregate — hedge losers are stale,
// winners may carry the hedge ID, and HedgedWins counts them.
func TestHedgedRequestsResolveOnce(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 7)
	// Brown out instance 0 hard so its primaries lose to their hedges.
	c := New(Options{
		Engines: testEngines(m, 2),
		Router:  NewRoundRobin(),
		FaultPlan: &faults.Plan{Brownouts: []faults.Brownout{
			{AtMS: 0, DurationMS: 4000, Link: faults.LinkPCIe, Factor: 0.05, Instance: 0},
		}},
		Resilience: ResilienceOptions{Enabled: true, HedgeAfterMS: 30, Seed: 9},
	})
	trace := testTrace(m.Cfg, 32, 50, 5)
	res := c.RunTrace(trace)
	if res.Served+res.FailedRequests != res.Admitted {
		t.Fatalf("served %d + failed %d != admitted %d",
			res.Served, res.FailedRequests, res.Admitted)
	}
	if res.HedgedWins == 0 {
		t.Fatal("no hedged wins under a 20x brownout of half the fleet")
	}
	// Raw per-instance results may hold more completions than the fleet
	// served count — exactly the stale hedge losers.
	raw := 0
	for _, ir := range res.Instances {
		raw += len(ir.Result.Requests)
	}
	if raw <= res.Served {
		t.Fatalf("raw completions %d <= served %d: no stale losers recorded", raw, res.Served)
	}
}

// TestFaultParityAcrossWorkers extends the sharded-parity contract to
// fault runs: the gauntlet with full resilience produces byte-identical
// ClusterResults (fault log, availability counters, every metric) at
// every worker count, and run-to-run at fixed seeds.
func TestFaultParityAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		c, trace := faultCluster(workers, fullResilience())
		b, err := json.Marshal(c.RunTrace(trace))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(b)
	}
	serial := run(0)
	if serial != run(0) {
		t.Fatal("serial fault run not deterministic run-to-run")
	}
	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		if got := run(w); got != serial {
			t.Fatalf("workers=%d diverges from serial fault run", w)
		}
	}
}

// TestBackoffDeterminism: the retry schedule is a pure function of
// (seed, request ID, attempt) — monotone in attempts up to the cap, and
// jitter-bounded.
func TestBackoffDeterminism(t *testing.T) {
	c, _ := faultCluster(0, fullResilience())
	for attempt := 1; attempt <= 6; attempt++ {
		a := c.backoffMS(42, attempt)
		if b := c.backoffMS(42, attempt); a != b {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, a, b)
		}
		base := c.res.BackoffBaseMS * math.Pow(2, float64(attempt-1))
		if base > c.res.BackoffMaxMS {
			base = c.res.BackoffMaxMS
		}
		if a < base || a > base*(1+c.res.JitterFrac) {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]",
				attempt, a, base, base*(1+c.res.JitterFrac))
		}
	}
	if c.backoffMS(42, 1) == c.backoffMS(43, 1) {
		t.Fatal("distinct requests drew identical jitter")
	}
}

// TestEmptyFaultPlanIsInert: Options with a nil/empty plan and disabled
// resilience must produce the byte-identical result of a cluster built
// without the fields at all — the no-fault serial path is unchanged.
func TestEmptyFaultPlanIsInert(t *testing.T) {
	run := func(withFields bool) string {
		m := moe.NewModel(moe.Tiny(), 7)
		opts := Options{Engines: testEngines(m, 3), Router: NewLeastLoaded()}
		if withFields {
			opts.FaultPlan = &faults.Plan{}
			opts.Resilience = ResilienceOptions{}
		}
		b, err := json.Marshal(New(opts).RunTrace(testTrace(m.Cfg, 24, 50, 3)))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(b)
	}
	if run(false) != run(true) {
		t.Fatal("empty fault plan perturbed a fault-free run")
	}
}
