package cluster

import (
	"testing"

	"finemoe/internal/workload"
)

// TestMemoryAwareRouterTiebreak verifies the memory-aware router joins
// the shortest queue first and breaks load ties toward the instance
// with the lowest host-memory pressure, then fewest routed requests.
func TestMemoryAwareRouterTiebreak(t *testing.T) {
	r := NewMemoryAware()
	req := workload.Request{}

	// Load dominates: the emptier queue wins despite higher pressure.
	fleet := []InstanceState{
		{ID: 0, QueueDepth: 3, MemPressure: 0.1},
		{ID: 1, QueueDepth: 1, MemPressure: 0.9},
	}
	if got := r.Route(req, 0, fleet); got != 1 {
		t.Fatalf("route %d, want the shorter queue 1", got)
	}

	// Equal load: DRAM headroom decides.
	fleet = []InstanceState{
		{ID: 0, QueueDepth: 2, MemPressure: 0.8},
		{ID: 1, QueueDepth: 2, MemPressure: 0.2},
		{ID: 2, QueueDepth: 2, MemPressure: 0.5},
	}
	if got := r.Route(req, 0, fleet); got != 1 {
		t.Fatalf("route %d, want lowest-pressure 1", got)
	}

	// Equal load and pressure: fewest submitted, then lowest index — the
	// least-loaded contract, so a degenerate fleet (all pressures zero)
	// routes identically to NewLeastLoaded.
	fleet = []InstanceState{
		{ID: 0, QueueDepth: 2, Submitted: 5},
		{ID: 1, QueueDepth: 2, Submitted: 3},
		{ID: 2, QueueDepth: 2, Submitted: 3},
	}
	if got := r.Route(req, 0, fleet); got != 1 {
		t.Fatalf("route %d, want fewest-submitted 1", got)
	}
	ll := NewLeastLoaded()
	for range [16]int{} {
		if lr, mr := ll.Route(req, 0, fleet), r.Route(req, 0, fleet); lr != mr {
			t.Fatalf("degenerate fleet diverged: least-loaded %d vs memory-aware %d", lr, mr)
		}
	}
}

// TestQueuePressureMemoryTrigger verifies the autoscaler's memory input:
// sustained DRAM pressure above the watermark grows the fleet even with
// empty queues, suppresses shrink while high, and a zero watermark
// leaves the queue-only behavior untouched.
func TestQueuePressureMemoryTrigger(t *testing.T) {
	opts := QueuePressureOptions{
		HighWatermark: 4, LowWatermark: 0.5,
		SustainMS: 100, CooldownMS: 100,
		MemoryHighWatermark: 0.9,
	}
	q := NewQueuePressure(opts)
	// Queues empty (mean load 0 < LowWatermark) but DRAM thrashing: the
	// memory trigger must override the shrink path and grow.
	hot := []InstanceState{{ID: 0, MemPressure: 0.97}, {ID: 1, MemPressure: 0.95}}
	if d := q.Decide(0, hot); d != Hold {
		t.Fatalf("decision %v before sustain, want hold", d)
	}
	if d := q.Decide(150, hot); d != Grow {
		t.Fatalf("decision %v after sustained memory pressure, want grow", d)
	}

	// Same timeline without the memory watermark: empty queues shrink.
	opts.MemoryHighWatermark = 0
	q2 := NewQueuePressure(opts)
	q2.Decide(0, hot)
	if d := q2.Decide(150, hot); d != Shrink {
		t.Fatalf("decision %v with memory input disabled, want shrink", d)
	}

	// Pressure dropping back under the watermark releases the trigger.
	q3 := NewQueuePressure(QueuePressureOptions{
		SustainMS: 100, CooldownMS: 100, MemoryHighWatermark: 0.9,
	})
	cool := []InstanceState{{ID: 0, MemPressure: 0.3}, {ID: 1, MemPressure: 0.2}}
	q3.Decide(0, hot)
	if d := q3.Decide(150, cool); d == Grow {
		t.Fatal("memory trigger fired after pressure subsided")
	}
}
