package cluster

import "math"

// Decision is an autoscaler's verdict for one shared-clock tick.
type Decision int

const (
	// Hold keeps the fleet at its current size.
	Hold Decision = iota
	// Grow asks the cluster to spin up one fresh instance.
	Grow
	// Shrink asks the cluster to drain-then-retire one instance.
	Shrink
)

// String names the decision in logs and results.
func (d Decision) String() string {
	switch d {
	case Grow:
		return "grow"
	case Shrink:
		return "shrink"
	}
	return "hold"
}

// Autoscaler is the fleet-sizing policy. The cluster evaluates it at
// fixed shared-clock intervals (Options.AutoscaleIntervalMS) with the
// routable (non-retiring) fleet view; one decision resizes the fleet by
// at most one instance. Implementations may keep state (pressure
// timers); they are driven sequentially by the shared-clock loop and
// need no locking.
type Autoscaler interface {
	// Name identifies the policy in results.
	Name() string
	// Decide observes the active fleet at one tick and returns the
	// scaling verdict.
	Decide(nowMS float64, fleet []InstanceState) Decision
}

// DecisionFeedback is an optional Autoscaler extension: orchestrators
// that enforce fleet-size bounds report whether the last non-Hold
// decision was applied or refused (fleet already at Min/MaxInstances),
// so pacing state such as cooldowns charges only for applied resizes.
// Policies that do not implement it are charged for every decision.
type DecisionFeedback interface {
	DecisionApplied(d Decision, applied bool)
}

// NotifyDecision reports a non-hold decision's outcome to policies that
// implement DecisionFeedback; every orchestrator enforcing fleet bounds
// must call it so refused resizes do not consume the policy's cooldown.
func NotifyDecision(a Autoscaler, d Decision, applied bool) {
	if d == Hold {
		return
	}
	if fb, ok := a.(DecisionFeedback); ok {
		fb.DecisionApplied(d, applied)
	}
}

// ShrinkVictim returns the ID of the instance a shrink should retire —
// the least-loaded (queued + in-flight), ties retiring the youngest so
// the seed fleet survives longest — or -1 for an empty fleet. Shared by
// every orchestrator so victim selection cannot drift between them.
func ShrinkVictim(fleet []InstanceState) int {
	victim, load := -1, 0
	for _, st := range fleet {
		if victim < 0 || st.load() < load || (st.load() == load && st.ID > victim) {
			victim, load = st.ID, st.load()
		}
	}
	return victim
}

// QueuePressureOptions tunes the hysteresis-banded queue-pressure
// autoscaler.
type QueuePressureOptions struct {
	// HighWatermark is the mean queued+in-flight load per instance above
	// which the fleet grows, once sustained (default 4).
	HighWatermark float64
	// LowWatermark is the mean load below which the fleet shrinks, once
	// sustained (default 0.5). Loads inside (Low, High] hold, giving the
	// hysteresis band that prevents flapping.
	LowWatermark float64
	// SustainMS is how long pressure must continuously sit beyond a
	// watermark before the policy acts (default 300 ms). Any tick back
	// inside the band resets the timer.
	SustainMS float64
	// CooldownMS is the minimum gap between two scale actions
	// (default: SustainMS).
	CooldownMS float64
	// MemoryHighWatermark, when positive, adds a memory-pressure grow
	// trigger: the fleet also grows when the mean host-DRAM thrash
	// level across instances (the decayed fraction of expert fetches
	// spilling below DRAM — InstanceState.MemPressure) stays above this
	// fraction for SustainMS, and shrink is suppressed while it does —
	// a fleet can scale out of memory thrash even when its queues look
	// healthy, and scale back in once the spread working set fits its
	// DRAM again. Zero disables the input, leaving the policy's
	// decisions byte-identical to the queue-only behavior.
	MemoryHighWatermark float64
}

func (o QueuePressureOptions) withDefaults() QueuePressureOptions {
	if o.HighWatermark <= 0 {
		o.HighWatermark = 4
	}
	if o.LowWatermark <= 0 {
		o.LowWatermark = 0.5
	}
	if o.LowWatermark >= o.HighWatermark {
		o.LowWatermark = o.HighWatermark / 2
	}
	if o.SustainMS <= 0 {
		o.SustainMS = 300
	}
	if o.CooldownMS <= 0 {
		o.CooldownMS = o.SustainMS
	}
	return o
}

// queuePressure grows the fleet when mean per-instance load (queued +
// in-flight) stays above a high watermark for a sustained window and
// shrinks it when load stays below a low watermark; the band between the
// watermarks is dead, so a queue oscillating across both watermarks
// keeps resetting the sustain timers and the fleet never flaps.
type queuePressure struct {
	opts       QueuePressureOptions
	aboveSince float64 // NaN = not continuously above the high watermark
	belowSince float64 // NaN = not continuously below the low watermark
	lastAction float64
	prevAction float64 // lastAction before the most recent decision, for rollback
}

// NewQueuePressure returns the hysteresis-banded queue-pressure
// autoscaler.
func NewQueuePressure(opts QueuePressureOptions) Autoscaler {
	return &queuePressure{
		opts:       opts.withDefaults(),
		aboveSince: math.NaN(),
		belowSince: math.NaN(),
		lastAction: math.Inf(-1),
		prevAction: math.Inf(-1),
	}
}

func (q *queuePressure) Name() string { return "queue-pressure" }

func (q *queuePressure) Decide(nowMS float64, fleet []InstanceState) Decision {
	if len(fleet) == 0 {
		return Hold
	}
	total := 0
	memSum := 0.0
	for _, st := range fleet {
		total += st.load()
		memSum += st.MemPressure
	}
	mean := float64(total) / float64(len(fleet))
	memHigh := q.opts.MemoryHighWatermark > 0 &&
		memSum/float64(len(fleet)) > q.opts.MemoryHighWatermark
	switch {
	case mean > q.opts.HighWatermark || memHigh:
		q.belowSince = math.NaN()
		if math.IsNaN(q.aboveSince) {
			q.aboveSince = nowMS
		}
		if nowMS-q.aboveSince >= q.opts.SustainMS && nowMS-q.lastAction >= q.opts.CooldownMS {
			q.prevAction, q.lastAction = q.lastAction, nowMS
			return Grow
		}
	case mean < q.opts.LowWatermark:
		q.aboveSince = math.NaN()
		if math.IsNaN(q.belowSince) {
			q.belowSince = nowMS
		}
		if nowMS-q.belowSince >= q.opts.SustainMS && nowMS-q.lastAction >= q.opts.CooldownMS {
			q.prevAction, q.lastAction = q.lastAction, nowMS
			return Shrink
		}
	default:
		q.aboveSince = math.NaN()
		q.belowSince = math.NaN()
	}
	return Hold
}

// DecisionApplied implements DecisionFeedback: a decision the
// orchestrator refused at its fleet bounds must not consume the
// cooldown, or a fleet pinned at MaxInstances under load would keep
// pushing the next real resize one cooldown window into the future.
func (q *queuePressure) DecisionApplied(_ Decision, applied bool) {
	if !applied {
		q.lastAction = q.prevAction
	}
}
