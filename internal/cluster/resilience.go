// Request-level resilience: per-request timeouts, deterministic
// exponential-backoff retries with bounded jitter, optional hedged
// re-dispatch, a per-tenant retry budget, and failover routing around
// crashed instances.
//
// Every reaction to a completion, timeout, hedge deadline or retry
// deadline is a *resilience event* carrying the shared-clock time it is
// due, queued in (time, schedule-order) order and merged into the main
// loop between fault events and arrivals (see run). Nothing is ever
// applied at observation time: a completion observed after an engine
// step schedules an event at the completion's own timestamp, so the
// serial loop and the sharded epoch loop — which observes a whole
// window's completions at the merge barrier, replayed in serial event
// order — assign identical event sequences and stay byte-identical.
//
// Backoff jitter is drawn from an RNG keyed by (seed, request ID,
// attempt) via internal/rng, never from the event interleaving, so the
// retry timing of one request is a pure function of the policy — the
// property the backoff determinism tests pin across worker counts.
package cluster

import (
	"math"

	"finemoe/internal/rng"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// ResilienceOptions configures request-level fault tolerance. The zero
// value (Enabled false) disables tracking entirely and keeps the run
// loop byte-identical to a resilience-free cluster.
type ResilienceOptions struct {
	// Enabled turns on request tracking (timeouts, retries, hedging,
	// crash requeue). Individual mechanisms activate only when their
	// parameter is set.
	Enabled bool
	// TimeoutMS cancels a dispatched copy that has not completed this
	// long after dispatch and triggers a retry (0 = no timeout).
	TimeoutMS float64
	// MaxRetries bounds re-dispatch attempts per request after timeouts
	// (0 = fail on first timeout).
	MaxRetries int
	// BackoffBaseMS and BackoffMaxMS shape the exponential retry delay:
	// base doubles per attempt, capped at max (defaults 50 and 2000).
	BackoffBaseMS, BackoffMaxMS float64
	// JitterFrac adds a deterministic jitter of up to this fraction of
	// the backoff, drawn from (Seed, request ID, attempt). Default 0.2;
	// negative disables jitter.
	JitterFrac float64
	// HedgeAfterMS dispatches a second copy of a request to another
	// instance if the first has not completed this long after dispatch
	// (0 = no hedging). The first copy to finish wins; losers cancel.
	HedgeAfterMS float64
	// RetryBudgetFrac bounds retries per tenant to this fraction of the
	// tenant's offered requests (0 = unbounded). Exhausted budgets fail
	// requests instead of retrying.
	RetryBudgetFrac float64
	// RequeueOnCrash re-dispatches requests stranded on a crashed
	// instance when the crash is detected; otherwise they are lost.
	RequeueOnCrash bool
	// ReplaceOnCrash spawns a cold-store replacement instance (via
	// Options.EngineFactory) when a crash is detected and the fleet is
	// below MaxInstances.
	ReplaceOnCrash bool
	// Seed keys the backoff jitter stream.
	Seed uint64
}

// resKind enumerates resilience event kinds.
type resKind uint8

const (
	// rkComplete resolves a copy's completion: first live copy to
	// complete wins the request; later completions are stale.
	rkComplete resKind = iota
	// rkTimeout cancels an overdue copy and decides whether to retry.
	rkTimeout
	// rkRetry dispatches a fresh copy after a backoff or crash requeue.
	rkRetry
	// rkHedge dispatches the speculative second copy.
	rkHedge
)

// resCopy is one dispatched copy of a tracked request.
type resCopy struct {
	// id is the copy's engine-visible request ID (the original ID for
	// the primary and retries; bit 63 set for the hedge copy).
	id uint64
	// inst is the stable ID of the instance the copy was dispatched to.
	inst int
	// live marks the copy as possibly still producing a completion.
	live bool
	// hedge marks the speculative copy.
	hedge bool
}

// resRecord tracks one request's resilience saga from first dispatch to
// resolution.
type resRecord struct {
	orig    workload.Request
	copies  []resCopy
	attempt int
	hedged  bool
	done    bool
	failed  bool
}

// resEvent is one queued resilience reaction.
type resEvent struct {
	t   float64
	seq int
	k   resKind
	rec *resRecord
	// copyIdx selects the copy a timeout targets.
	copyIdx int
	// instIdx and m carry a completion's origin and metrics (rkComplete;
	// the record is resolved by ID lookup at processing time).
	instIdx int32
	m       serve.RequestMetrics
}

// staleKey identifies a completion that lost its hedge/retry race, so
// Finalize can exclude it from fleet aggregates.
type staleKey struct {
	inst int
	id   uint64
}

// tenantBudget tracks one tenant's retry allowance.
type tenantBudget struct {
	offered int
	used    int
}

// hedgeBit distinguishes the hedge copy's engine-visible ID. Trace IDs
// keep bit 63 clear (tenant mixes use bits 32+).
const hedgeBit = 1 << 63

// scheduleRes queues ev, keeping the queue sorted by (time, schedule
// order) with stable insertion.
func (c *Cluster) scheduleRes(ev resEvent) {
	ev.seq = c.resSeq
	c.resSeq++
	i := len(c.resEvents)
	for i > 0 && c.resEvents[i-1].t > ev.t {
		i--
	}
	c.resEvents = append(c.resEvents, resEvent{})
	copy(c.resEvents[i+1:], c.resEvents[i:])
	c.resEvents[i] = ev
}

// popResEvent removes and returns the earliest queued event, compacting
// in place so resolved records do not stay reachable through the backing
// array.
func (c *Cluster) popResEvent() resEvent {
	ev := c.resEvents[0]
	copy(c.resEvents, c.resEvents[1:])
	c.resEvents[len(c.resEvents)-1] = resEvent{}
	c.resEvents = c.resEvents[:len(c.resEvents)-1]
	return ev
}

// backoffMS computes the deterministic retry delay before attempt n
// (1-based): base·2^(n−1) capped at max, plus a jitter of up to
// JitterFrac of that, drawn from (Seed, request ID, attempt) — a pure
// function of the policy, independent of event interleaving.
func (c *Cluster) backoffMS(reqID uint64, attempt int) float64 {
	d := c.res.BackoffBaseMS * math.Pow(2, float64(attempt-1))
	if d > c.res.BackoffMaxMS {
		d = c.res.BackoffMaxMS
	}
	if c.res.JitterFrac > 0 {
		u := rng.New(rng.Mix(c.res.Seed, reqID, uint64(attempt))).Float64()
		d += d * c.res.JitterFrac * u
	}
	return d
}

// budgetFor returns the tenant's budget entry, creating it on first use.
func (c *Cluster) budgetFor(tenant string) *tenantBudget {
	b := c.budgets[tenant]
	if b == nil {
		b = &tenantBudget{}
		c.budgets[tenant] = b
	}
	return b
}

// budgetAllows reports whether the tenant may spend another retry.
func (c *Cluster) budgetAllows(b *tenantBudget) bool {
	if c.res.RetryBudgetFrac <= 0 {
		return true
	}
	return float64(b.used) < c.res.RetryBudgetFrac*float64(b.offered)
}

// trackDispatch registers a freshly offered request's primary copy and
// schedules its timeout and hedge deadlines. Called from Offer with the
// clock already clamped to the arrival.
func (c *Cluster) trackDispatch(req workload.Request, in *Instance) {
	rec := &resRecord{orig: req}
	rec.copies = append(rec.copies, resCopy{id: req.ID, inst: in.ID, live: true})
	c.records[req.ID] = rec
	c.budgetFor(req.Tenant).offered++
	if c.res.TimeoutMS > 0 {
		c.scheduleRes(resEvent{t: c.now + c.res.TimeoutMS, k: rkTimeout, rec: rec})
	}
	if c.res.HedgeAfterMS > 0 {
		c.scheduleRes(resEvent{t: c.now + c.res.HedgeAfterMS, k: rkHedge, rec: rec})
	}
}

// failoverFleet snapshots the routable fleet excluding instances that
// already hold a copy of rec; when that excludes everything, the full
// routable fleet (nil when no instance is routable at all).
func (c *Cluster) failoverFleet(rec *resRecord) []InstanceState {
	fleet := c.activeStates()
	kept := fleet[:0]
	for _, st := range fleet {
		used := false
		for _, cp := range rec.copies {
			if cp.inst == st.ID {
				used = true
				break
			}
		}
		if !used {
			kept = append(kept, st)
		}
	}
	if len(kept) > 0 {
		return kept
	}
	if len(fleet) > 0 {
		return c.activeStates()
	}
	return nil
}

// dispatchCopy routes and submits one re-dispatched copy (retry or
// hedge) at time t, returning the chosen instance, or nil when no
// instance is routable.
func (c *Cluster) dispatchCopy(rec *resRecord, id uint64, t float64, hedge bool) *Instance {
	fleet := c.failoverFleet(rec)
	if len(fleet) == 0 {
		return nil
	}
	req := rec.orig
	req.ID = id
	i := c.router.Route(req, t, fleet)
	if i < 0 || i >= len(fleet) {
		panic("cluster: router returned out-of-range instance")
	}
	in := c.instanceByID(fleet[i].ID)
	in.Submitted++
	in.Engine.Submit(req)
	c.refreshEvent(in.idx)
	rec.copies = append(rec.copies, resCopy{id: id, inst: in.ID, live: true, hedge: hedge})
	if c.res.TimeoutMS > 0 {
		c.scheduleRes(resEvent{t: t + c.res.TimeoutMS, k: rkTimeout, rec: rec,
			copyIdx: len(rec.copies) - 1})
	}
	return in
}

// failRecord resolves rec as permanently failed.
func (c *Cluster) failRecord(rec *resRecord) {
	rec.done = true
	rec.failed = true
	c.failedReqs++
	c.dropRecord(rec)
}

// dropRecord removes rec's ID lookups once resolved.
func (c *Cluster) dropRecord(rec *resRecord) {
	delete(c.records, rec.orig.ID)
	if rec.hedged {
		delete(c.records, rec.orig.ID|hedgeBit)
	}
}

// processResEvent applies one due resilience event on the coordinator.
func (c *Cluster) processResEvent(ev resEvent) {
	switch ev.k {
	case rkComplete:
		c.resolveCompletion(ev)
	case rkTimeout:
		c.applyTimeout(ev)
	case rkRetry:
		c.applyRetry(ev)
	case rkHedge:
		c.applyHedge(ev)
	}
}

// resolveCompletion settles a copy's completion: the first live copy to
// complete wins its request, cancels every other live copy, and feeds
// the follow-up hook; completions of already-resolved requests are
// marked stale so Finalize excludes them from fleet aggregates.
func (c *Cluster) resolveCompletion(ev resEvent) {
	in := c.instances[ev.instIdx]
	rec := c.records[ev.m.ID]
	if rec == nil || rec.done {
		c.stale[staleKey{inst: in.ID, id: ev.m.ID}] = true
		return
	}
	rec.done = true
	winner := -1
	for i := len(rec.copies) - 1; i >= 0; i-- {
		cp := &rec.copies[i]
		if cp.id == ev.m.ID && cp.inst == in.ID && cp.live {
			winner = i
			break
		}
	}
	if winner >= 0 && rec.copies[winner].hedge {
		c.hedgedWins++
	}
	for i := range rec.copies {
		cp := &rec.copies[i]
		if i == winner || !cp.live {
			continue
		}
		cp.live = false
		loser := c.instanceByID(cp.inst)
		if loser.Engine.Cancel(cp.id) {
			c.refreshEvent(loser.idx)
		}
	}
	c.dropRecord(rec)
	if c.followUp != nil {
		m := ev.m
		m.ID = rec.orig.ID // hedge winners report under the original ID
		fu, ok := c.followUp(m, rec.orig)
		if !ok {
			return
		}
		if fu.ArrivalMS < m.EndMS {
			fu.ArrivalMS = m.EndMS
		}
		c.inject(fu)
	}
}

// applyTimeout cancels an overdue copy and decides between retry and
// permanent failure.
func (c *Cluster) applyTimeout(ev resEvent) {
	rec := ev.rec
	if rec.done || !rec.copies[ev.copyIdx].live {
		return
	}
	cp := &rec.copies[ev.copyIdx]
	in := c.instanceByID(cp.inst)
	if in.Engine.Cancel(cp.id) {
		cp.live = false
		c.refreshEvent(in.idx)
	}
	// else: the copy completed inside its final iteration's overshoot;
	// leave it live — its completion event may still win the request.
	c.logFault(ev.t, "timeout", cp.inst)
	b := c.budgetFor(rec.orig.Tenant)
	if rec.attempt >= c.res.MaxRetries || !c.budgetAllows(b) {
		if !anyLive(rec) {
			c.failRecord(rec)
		}
		return
	}
	rec.attempt++
	b.used++
	c.scheduleRes(resEvent{t: ev.t + c.backoffMS(rec.orig.ID, rec.attempt), k: rkRetry, rec: rec})
}

// applyRetry dispatches the next copy of a timed-out or crash-stranded
// request. Retries reuse the original request — same ID, same arrival
// time — so the winner's TTFT covers the whole saga.
func (c *Cluster) applyRetry(ev resEvent) {
	rec := ev.rec
	if rec.done {
		return
	}
	in := c.dispatchCopy(rec, rec.orig.ID, ev.t, false)
	if in == nil {
		if !anyLive(rec) {
			c.failRecord(rec)
		}
		return
	}
	c.retries++
	c.logFault(ev.t, "retry", in.ID)
}

// applyHedge dispatches the speculative second copy to another instance.
func (c *Cluster) applyHedge(ev resEvent) {
	rec := ev.rec
	if rec.done || rec.hedged {
		return
	}
	id := rec.orig.ID | hedgeBit
	in := c.dispatchCopy(rec, id, ev.t, true)
	if in == nil {
		return
	}
	rec.hedged = true
	c.records[id] = rec
	c.logFault(ev.t, "hedge", in.ID)
}

// anyLive reports whether any copy may still complete.
func anyLive(rec *resRecord) bool {
	for _, cp := range rec.copies {
		if cp.live {
			return true
		}
	}
	return false
}
