package cluster

import (
	"math"
	"testing"

	"finemoe/internal/moe"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// S1 heap-staleness audit. The cluster caches each engine's next event
// time in the event heap and refreshes it only at the loop's own mutation
// points. Two hazards follow: (a) staging-heavy engines move their next
// event time on almost every step (fetch completions, staging-link
// arrivals, batch boundaries), so a missed refresh shows up fastest
// there; (b) external callers mutating an engine behind Instances() stale
// the cache until SyncEvents repairs it. Both are pinned here.

// TestHeapStalenessStagingHeavy interleaves offers, bounded steps and
// autoscale resizes over a staging-heavy three-tier fleet, cross-checking
// the cached heap against the linear scan after every single operation.
func TestHeapStalenessStagingHeavy(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 37)
	c := New(Options{
		Engines: stagedEngines(m, 3),
		Router:  NewLeastLoaded(),
		Autoscaler: NewQueuePressure(QueuePressureOptions{
			HighWatermark: 1.0, LowWatermark: 0.5, SustainMS: 1, CooldownMS: 1,
		}),
		EngineFactory: func(id int) *serve.Engine { return stagedEngines(m, 1)[0] },
		MinInstances:  1,
		MaxInstances:  6,
	})
	checkHeapAgainstScan(t, c)

	trace := testTrace(cfg, 48, 55, 41)
	tick := 0.0
	for i, q := range trace {
		c.Offer(q)
		checkHeapAgainstScan(t, c)
		// Step roughly half the backlog as we go so queues stay hot and
		// the staging link is saturated when later offers land.
		if i%2 == 1 {
			if tm, which := c.nextInstanceEvent(); which >= 0 {
				c.Step(tm)
				checkHeapAgainstScan(t, c)
			}
		}
		if i%8 == 7 {
			tick += 25
			c.autoscale(tick)
			checkHeapAgainstScan(t, c)
		}
	}
	steps := 0
	for {
		tm, which := c.nextInstanceEvent()
		if which < 0 {
			break
		}
		if !c.Step(tm) {
			t.Fatal("Step refused its own next event time")
		}
		steps++
		checkHeapAgainstScan(t, c)
	}
	if steps == 0 {
		t.Fatal("degenerate run: no instance events stepped")
	}
}

// TestHeapExternalMutationRepair pins the staleness hazard documented on
// Instances() and the SyncEvents contract: submitting to an engine behind
// the accessor leaves the heap pointing at the old minimum, and one
// SyncEvents call restores agreement with the scan.
func TestHeapExternalMutationRepair(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 37)
	c := New(Options{Engines: testEngines(m, 3), Router: NewRoundRobin()})

	// One offered request gives instance 0 an event at 100.
	c.Offer(tbReq(cfg, 1, 100))
	if tm, which := c.nextInstanceEvent(); tm != 100 || which != 0 {
		t.Fatalf("after offer: heap (t=%v, i=%d), want (100, 0)", tm, which)
	}

	// Mutate instance 1 behind the accessor: a pending request at 50 is
	// now the true fleet minimum, but the cache still says 100@0.
	c.Instances()[1].Engine.Submit(tbReq(cfg, 2, 50))
	ht, hi := c.nextInstanceEvent()
	st, si := c.nextInstanceEventScan()
	if ht != 100 || hi != 0 {
		t.Fatalf("cached heap moved without refresh: (t=%v, i=%d)", ht, hi)
	}
	if st != 50 || si != 1 {
		t.Fatalf("scan missed the external submit: (t=%v, i=%d)", st, si)
	}

	// SyncEvents is the documented repair.
	c.SyncEvents()
	checkHeapAgainstScan(t, c)
	if tm, which := c.nextInstanceEvent(); tm != 50 || which != 1 {
		t.Fatalf("after SyncEvents: heap (t=%v, i=%d), want (50, 1)", tm, which)
	}

	// The repaired loop drains both requests.
	c.Drain()
	if got := c.Instances()[0].Engine.CompletedCount() + c.Instances()[1].Engine.CompletedCount(); got != 2 {
		t.Fatalf("served %d requests after repair, want 2", got)
	}
	if tm, which := c.nextInstanceEvent(); which != -1 || !math.IsInf(tm, 1) {
		t.Fatalf("drained fleet reports event (t=%v, i=%d)", tm, which)
	}
}

// TestHeapStalenessShardedParity re-runs the staging-heavy interleaving
// through RunTrace at several worker counts and cross-checks the heap at
// the end; epoch merges must leave the cache exactly as serial stepping
// would.
func TestHeapStalenessShardedParity(t *testing.T) {
	for _, workers := range []int{0, 2, 3} {
		cfg := moe.Tiny()
		m := moe.NewModel(cfg, 37)
		c := New(Options{
			Engines: stagedEngines(m, 4),
			Router:  NewLeastLoaded(),
			Workers: workers,
		})
		var trace []workload.Request
		trace = append(trace, testTrace(cfg, 40, 55, 41)...)
		c.RunTrace(trace)
		checkHeapAgainstScan(t, c)
	}
}
