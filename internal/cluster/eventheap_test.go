package cluster

import (
	"math"
	"testing"

	"finemoe/internal/moe"
	"finemoe/internal/serve"
)

// checkHeapAgainstScan asserts the cached next-event heap and the seed's
// linear scan agree on the earliest instance event.
func checkHeapAgainstScan(t *testing.T, c *Cluster) {
	t.Helper()
	ht, hi := c.nextInstanceEvent()
	st, si := c.nextInstanceEventScan()
	if hi != si || (ht != st && !(math.IsInf(ht, 1) && math.IsInf(st, 1))) {
		t.Fatalf("heap (t=%v, i=%d) != scan (t=%v, i=%d)", ht, hi, st, si)
	}
}

// TestNextEventHeapMatchesScan drives a fleet through offers, steps, and
// autoscale resizes, asserting after every operation that the cached
// next-event min tracking returns exactly what the seed's O(instances)
// scan would — same instance, same time, lowest-index tie-break included.
func TestNextEventHeapMatchesScan(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 17)
	c := New(Options{
		Engines: testEngines(m, 3),
		Autoscaler: NewQueuePressure(QueuePressureOptions{
			HighWatermark: 1.0, LowWatermark: 0.5, SustainMS: 1, CooldownMS: 1,
		}),
		EngineFactory: func(id int) *serve.Engine { return testEngines(m, 1)[0] },
		MinInstances:  1,
		MaxInstances:  6,
	})
	checkHeapAgainstScan(t, c)

	// Offer the whole trace up front: the queued backlog drives the
	// queue-pressure policy across its grow threshold when we tick.
	trace := testTrace(cfg, 40, 50, 3)
	for _, q := range trace {
		c.Offer(q)
		checkHeapAgainstScan(t, c)
	}
	tick := 0.0
	for i := 0; i < 6; i++ {
		tick += 25
		c.autoscale(tick)
		checkHeapAgainstScan(t, c)
	}
	// Interleave a few bounded steps with further ticks like the
	// shared-clock loop would.
	for i := 0; i < 10; i++ {
		tm, which := c.nextInstanceEvent()
		if which < 0 {
			break
		}
		c.Step(tm)
		checkHeapAgainstScan(t, c)
		tick += 25
		c.autoscale(tick)
		checkHeapAgainstScan(t, c)
	}
	// Drain the rest one event at a time.
	for {
		tm, which := c.nextInstanceEvent()
		if which < 0 {
			break
		}
		if !c.Step(tm) {
			t.Fatal("Step refused its own next event time")
		}
		checkHeapAgainstScan(t, c)
	}
	tm, which := c.nextInstanceEvent()
	if which != -1 || !math.IsInf(tm, 1) {
		t.Fatalf("drained fleet reports event (t=%v, i=%d)", tm, which)
	}
	if c.Size() <= 3 {
		t.Fatalf("autoscaler never grew the fleet (size %d) — the grow path went untested", c.Size())
	}
}

// TestNextEventHeapRunTraceParity: a full RunTrace must produce identical
// results before and after the heap change; since the seed is gone, pin
// the weaker invariant that two identical runs agree and that every
// request is served (the golden determinism tests pin the byte-level
// contract at the experiment layer).
func TestNextEventHeapRunTraceParity(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 23)
	trace := testTrace(cfg, 30, 40, 7)
	run := func() *Result {
		c := New(Options{Engines: testEngines(m, 4), Router: NewLeastLoaded()})
		return c.RunTrace(trace)
	}
	a, b := run(), run()
	if a.Served != len(trace) || b.Served != a.Served {
		t.Fatalf("served %d/%d and %d", a.Served, len(trace), b.Served)
	}
	if a.TTFT != b.TTFT || a.WallClockMS != b.WallClockMS {
		t.Fatalf("heap-based loop not deterministic: %+v vs %+v", a.TTFT, b.TTFT)
	}
}
