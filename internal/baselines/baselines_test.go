package baselines

import (
	"math"
	"testing"

	"finemoe/internal/cache"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/rng"
	"finemoe/internal/tensor"
)

func testPrompt(cfg moe.Config, id, topic uint64, in, out int) moe.PromptSpec {
	dir := rng.UnitVecFor(cfg.SemDim, 777, topic)
	emb := tensor.Copy(dir)
	noise := make([]float64, cfg.SemDim)
	rng.New(rng.Mix(888, id)).UnitVec(noise)
	tensor.Axpy(0.1, noise, emb)
	tensor.Normalize(emb)
	return moe.PromptSpec{ID: id, Embedding: emb, InputTokens: in, OutputTokens: out, Seed: rng.Mix(999, id)}
}

// fakeRT implements policy.Runtime for baseline unit tests.
type fakeRT struct {
	cfg      moe.Config
	prefetch []moe.ExpertRef
	synced   [][]moe.ExpertRef
	resident map[moe.ExpertRef]bool
	syncCost float64
}

func newFakeRT(cfg moe.Config) *fakeRT {
	return &fakeRT{cfg: cfg, resident: map[moe.ExpertRef]bool{}, syncCost: 1.0}
}

func (f *fakeRT) Config() moe.Config { return f.cfg }
func (f *fakeRT) Prefetch(ref moe.ExpertRef, _, _ float64) bool {
	f.prefetch = append(f.prefetch, ref)
	return true
}
func (f *fakeRT) SyncLoad(refs []moe.ExpertRef, now float64) float64 {
	f.synced = append(f.synced, refs)
	for _, r := range refs {
		f.resident[r] = true
	}
	return now + f.syncCost*float64(len(refs))
}
func (f *fakeRT) Resident(ref moe.ExpertRef) bool { return f.resident[ref] }
func (f *fakeRT) Tracked(moe.ExpertRef) bool      { return false }
func (f *fakeRT) Tier(ref moe.ExpertRef) int {
	if f.resident[ref] {
		return 0
	}
	return 1
}
func (f *fakeRT) Promote(ref moe.ExpertRef, priority, issueTime float64) bool {
	return f.Prefetch(ref, priority, issueTime)
}
func (f *fakeRT) Demote(moe.ExpertRef, float64) bool { return false }
func (f *fakeRT) MemoryPressure() float64            { return 0 }

func TestNoOffloadIsInert(t *testing.T) {
	p := NewNoOffload()
	rt := newFakeRT(moe.Tiny())
	p.Attach(rt)
	if d := p.StartIteration(nil, 0); d != 0 {
		t.Fatal("no-offload produced sync delay")
	}
	if d := p.OnGate(0, nil, 0); d != 0 {
		t.Fatal("no-offload reacted to gate")
	}
	if len(rt.prefetch)+len(rt.synced) != 0 {
		t.Fatal("no-offload moved weights")
	}
	if p.Name() != "No-offload" {
		t.Fatal("name")
	}
}

func TestDeepSpeedLoadsWholeLayer(t *testing.T) {
	cfg := moe.Tiny()
	p := NewDeepSpeed()
	rt := newFakeRT(cfg)
	p.Attach(rt)
	delay := p.OnGate(1, nil, 0)
	if len(rt.synced) != 1 || len(rt.synced[0]) != cfg.RoutedExperts {
		t.Fatalf("DeepSpeed loaded %v, want full layer", rt.synced)
	}
	if delay != float64(cfg.RoutedExperts) {
		t.Fatalf("DeepSpeed delay %v", delay)
	}
	for _, ref := range rt.synced[0] {
		if ref.Layer != 1 {
			t.Fatalf("wrong layer loaded: %+v", ref)
		}
	}
	// Second call: everything resident, no load, no delay.
	if d := p.OnGate(1, nil, 10); d != 0 || len(rt.synced) != 1 {
		t.Fatal("DeepSpeed reloaded resident layer")
	}
}

func TestMixtralOffloadSpeculatesNextLayer(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 5)
	p := NewMixtralOffload(m)
	rt := newFakeRT(cfg)
	p.Attach(rt)
	it := m.Trace(testPrompt(cfg, 1, 0, 4, 3))[1]
	views := []policy.LayerView{{ReqID: 1, Iter: 1, Probs: it.Probs[0], Hidden: it.Hidden[0]}}
	delay := p.OnGate(0, views, 0)
	if delay <= 0 {
		t.Fatal("synchronous speculation must block")
	}
	if len(rt.synced) != 1 {
		t.Fatalf("expected one sync load, got %d", len(rt.synced))
	}
	for _, ref := range rt.synced[0] {
		if ref.Layer != 1 {
			t.Fatalf("speculated wrong layer: %+v", ref)
		}
	}
	if len(rt.synced[0]) > cfg.TopK {
		t.Fatalf("speculated %d experts, want <= TopK", len(rt.synced[0]))
	}
	// Last layer: nothing to speculate.
	if d := p.OnGate(cfg.Layers-1, views, 0); d != 0 {
		t.Fatalf("speculated beyond last layer: %v", d)
	}
	if p.Scorer().Name() != "LRU" {
		t.Fatal("Mixtral-Offloading must use LRU")
	}
}

func TestProMoEPrefetchesAtStride(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 6)
	p := NewProMoE(m)
	p.Stride = 2
	rt := newFakeRT(cfg)
	p.Attach(rt)
	it := m.Trace(testPrompt(cfg, 2, 0, 4, 3))[1]
	views := []policy.LayerView{{ReqID: 2, Iter: 1, Probs: it.Probs[0], Hidden: it.Hidden[0]}}
	delay := p.OnGate(0, views, 0)
	if delay != p.PredictorMS {
		t.Fatalf("predictor cost %v, want %v", delay, p.PredictorMS)
	}
	if len(rt.prefetch) == 0 {
		t.Fatal("no async prefetch issued")
	}
	for _, ref := range rt.prefetch {
		if ref.Layer != 2 {
			t.Fatalf("prefetched layer %d, want stride target 2", ref.Layer)
		}
	}
	if len(rt.synced) != 0 {
		t.Fatal("ProMoE must not block on transfers")
	}
}

func TestEAMAggregation(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 7)
	iters := m.Trace(testPrompt(cfg, 3, 0, 4, 5))
	e := EAMFromTrace(cfg, iters)
	var total float64
	for _, v := range e.Counts {
		total += v
	}
	// prefill union sizes vary; decode contributes TopK per layer.
	minTotal := float64((len(iters) - 1) * cfg.Layers * cfg.TopK)
	if total < minTotal {
		t.Fatalf("EAM mass %v below decode-only bound %v", total, minTotal)
	}
	top := e.TopExperts(cfg, 0, 2)
	if len(top) != 2 {
		t.Fatalf("TopExperts returned %d", len(top))
	}
}

func TestEAMCollectionSearch(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 8)
	coll := NewEAMCollection(cfg)
	if _, _, ok := coll.Search(NewEAM(cfg)); ok {
		t.Fatal("empty collection returned a match")
	}
	// Store two topic-distinct request matrices.
	tA := m.Trace(testPrompt(cfg, 10, 0, 4, 6))
	tB := m.Trace(testPrompt(cfg, 11, 3, 4, 6))
	eA, eB := EAMFromTrace(cfg, tA), EAMFromTrace(cfg, tB)
	coll.Add(eA)
	coll.Add(eB)
	// A same-topic partial matrix must match the same-topic entry.
	partial := NewEAM(cfg)
	for _, it := range m.Trace(testPrompt(cfg, 12, 0, 4, 3)) {
		partial.ObserveIteration(cfg, it)
	}
	got, score, ok := coll.Search(partial)
	if !ok || got != eA {
		t.Fatalf("matched wrong EAM (score %.3f)", score)
	}
	if score < 0.5 {
		t.Fatalf("same-topic EAM score %.3f too low", score)
	}
	if coll.Len() != 2 {
		t.Fatal("collection length")
	}
	if coll.MemoryBytes() != int64(2*cfg.Layers*cfg.RoutedExperts*4) {
		t.Fatalf("memory accounting %d", coll.MemoryBytes())
	}
}

func TestEAMCollectionClone(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 9)
	coll := NewEAMCollection(cfg)
	coll.Add(EAMFromTrace(cfg, m.Trace(testPrompt(cfg, 20, 0, 4, 3))))
	clone := coll.Clone()
	clone.Add(EAMFromTrace(cfg, m.Trace(testPrompt(cfg, 21, 1, 4, 3))))
	if coll.Len() != 1 || clone.Len() != 2 {
		t.Fatalf("clone not independent: %d/%d", coll.Len(), clone.Len())
	}
}

func TestPopularExperts(t *testing.T) {
	cfg := moe.Tiny()
	coll := NewEAMCollection(cfg)
	e := NewEAM(cfg)
	e.ObserveLayer(cfg, 0, []int{3, 3, 3, 1})
	coll.Add(e)
	top := coll.PopularExperts(0, 1)
	if len(top) != 1 || top[0] != 3 {
		t.Fatalf("popular expert %v, want [3]", top)
	}
}

func TestMoEInfinityLifecycle(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 10)
	coll := NewEAMCollection(cfg)
	// Pre-populate with a same-topic request.
	coll.Add(EAMFromTrace(cfg, m.Trace(testPrompt(cfg, 30, 0, 4, 5))))
	p := NewMoEInfinity(coll)
	rt := newFakeRT(cfg)
	p.Attach(rt)

	p.StartRequest(31, 0)
	iters := m.Trace(testPrompt(cfg, 31, 0, 4, 3))
	iv := []policy.IterView{{ReqID: 31, Iter: 0, Semantic: iters[0].Semantic, IsPrefill: true, Tokens: 4}}
	delay := p.StartIteration(iv, 0)
	if delay <= 0 {
		t.Fatal("MoE-Infinity prediction must be synchronous")
	}
	if len(rt.prefetch) == 0 {
		t.Fatal("no prefetches from matched matrix")
	}
	// Prefetches must span several layers (request-level granularity).
	layers := map[int]bool{}
	for _, ref := range rt.prefetch {
		layers[ref.Layer] = true
	}
	if len(layers) < cfg.Layers {
		t.Fatalf("request-level prefetch covered %d layers, want all %d", len(layers), cfg.Layers)
	}
	// Gate observations accumulate into the partial matrix.
	lv := []policy.LayerView{{ReqID: 31, Iter: 0, Probs: iters[0].Probs[0], Hidden: iters[0].Hidden[0]}}
	if d := p.OnGate(0, lv, 1); d <= 0 {
		t.Fatal("per-layer prediction must cost time")
	}
	// Completion publishes the matrix.
	p.EndRequest(31, 2)
	if coll.Len() != 2 {
		t.Fatalf("finished request not published: %d", coll.Len())
	}
	if p.Scorer().Name() != "LFU" {
		t.Fatal("MoE-Infinity must use LFU")
	}
	if p.MemoryOverheadBytes() == 0 {
		t.Fatal("matrix collection memory not reported")
	}
}

func TestMoEInfinityColdStart(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 11)
	p := NewMoEInfinity(NewEAMCollection(cfg))
	rt := newFakeRT(cfg)
	p.Attach(rt)
	p.StartRequest(40, 0)
	it := m.Trace(testPrompt(cfg, 40, 0, 4, 2))[0]
	iv := []policy.IterView{{ReqID: 40, Iter: 0, Semantic: it.Semantic, IsPrefill: true, Tokens: 4}}
	p.StartIteration(iv, 0) // empty collection: no popular experts yet
	if len(rt.prefetch) != 0 {
		t.Fatal("cold collection should not prefetch")
	}
}

// TestCoarsePredictQuality: the EAM predictor must beat chance but sit well
// below the iteration-level ceiling (the paper's core coarse-vs-fine
// distinction).
func TestCoarsePredictQuality(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 12)
	coll := NewEAMCollection(cfg)
	for i := uint64(0); i < 12; i++ {
		coll.Add(EAMFromTrace(cfg, m.Trace(testPrompt(cfg, i, i%3, 4, 8))))
	}
	var hit float64
	var n int
	for q := uint64(100); q < 104; q++ {
		iters := m.Trace(testPrompt(cfg, q, q%3, 4, 8))
		history := NewEAM(cfg)
		for _, it := range iters {
			if it.Index > 0 {
				pred := CoarsePredict(cfg, coll, history, cfg.TopK)
				hit += moe.IterationHitRate(it, pred)
				n++
			}
			history.ObserveIteration(cfg, it)
		}
	}
	rate := hit / float64(n)
	chance := float64(cfg.TopK) / float64(cfg.RoutedExperts)
	if rate < chance+0.1 {
		t.Fatalf("coarse prediction %.3f no better than chance %.3f", rate, chance)
	}
	if rate > 0.95 {
		t.Fatalf("coarse prediction %.3f implausibly high — aggregation should blur", rate)
	}
}

func TestScorerAssignments(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 1)
	checks := []struct {
		p    policy.Policy
		want string
	}{
		{NewNoOffload(), "LRU"},
		{NewDeepSpeed(), "LRU"},
		{NewMixtralOffload(m), "LRU"},
		{NewProMoE(m), "LFU"},
		{NewMoEInfinity(NewEAMCollection(moe.Tiny())), "LFU"},
	}
	for _, c := range checks {
		if got := c.p.Scorer().Name(); got != c.want {
			t.Errorf("%s scorer %s, want %s", c.p.Name(), got, c.want)
		}
	}
	var _ cache.Scorer = cache.LRU{}
}

func TestSpeculationUsesModelGate(t *testing.T) {
	// ProMoE/MixOff speculation must equal the model's own gate applied
	// to the earlier hidden state.
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 13)
	it := m.Trace(testPrompt(cfg, 50, 0, 4, 2))[1]
	a := make([]float64, cfg.RoutedExperts)
	b := make([]float64, cfg.RoutedExperts)
	m.Speculate(it.Hidden[0], 1, a)
	m.GateProbs(it.Hidden[0], 1, b)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("Speculate diverges from GateProbs")
		}
	}
}
