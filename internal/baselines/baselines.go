// Package baselines implements the four state-of-the-art systems the paper
// compares against (§6.1), re-expressed as policies over the same serving
// engine, plus the No-Offload upper bound of Fig. 1b:
//
//   - DeepSpeed-Inference: expert-agnostic synchronous full-layer fetching,
//     no prefetching (hit rate 1.0 by construction, worst latency).
//   - Mixtral-Offloading: distance-1 synchronous speculative prefetching
//     with an LRU expert cache.
//   - ProMoE: stride-based speculative prefetching at a fixed distance with
//     per-layer learned predictors (modeled as the speculation oracle plus
//     the predictor's GPU-side inference cost, per §7).
//   - MoE-Infinity: request-level Expert Activation Matrix tracking with
//     synchronous per-layer prediction, asynchronous task-pool transfers,
//     and an LFU cache.
package baselines

import (
	"sort"
	"sync"

	"finemoe/internal/cache"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/tensor"
)

// ---------------------------------------------------------------------------
// No-Offload

// NoOffload keeps every expert resident (the engine preloads the cache) and
// performs no transfers: the latency floor and memory ceiling of Fig. 1b.
type NoOffload struct{ policy.Base }

var _ policy.Policy = (*NoOffload)(nil)

// NewNoOffload returns the no-offloading policy.
func NewNoOffload() *NoOffload { return &NoOffload{} }

// Name implements policy.Policy.
func (*NoOffload) Name() string { return "No-offload" }

// ---------------------------------------------------------------------------
// DeepSpeed-Inference

// DeepSpeed models DeepSpeed-Inference's layer-wise parameter offloading:
// at each layer it synchronously loads the whole layer's expert weights
// before the gate consults them — expert-agnostic, no prefetching (§6.1).
// The paper adds an expert cache for fairness; ours uses LRU.
type DeepSpeed struct {
	policy.Base
	cfg moe.Config
}

var _ policy.Policy = (*DeepSpeed)(nil)

// NewDeepSpeed returns the DeepSpeed-Inference baseline.
func NewDeepSpeed() *DeepSpeed { return &DeepSpeed{} }

// Name implements policy.Policy.
func (*DeepSpeed) Name() string { return "DeepSpeed" }

// Attach implements policy.Policy.
func (d *DeepSpeed) Attach(rt policy.Runtime) {
	d.Base.Attach(rt)
	d.cfg = rt.Config()
}

// OnGate synchronously fetches every non-resident expert of the current
// layer. This runs before the engine resolves activations, so every
// activated expert is resident — DeepSpeed's hit rate is 1.0 while its
// latency absorbs full-layer transfer time (§6.2).
func (d *DeepSpeed) OnGate(layer int, _ []policy.LayerView, now float64) float64 {
	var missing []moe.ExpertRef
	for j := 0; j < d.cfg.RoutedExperts; j++ {
		ref := moe.ExpertRef{Layer: layer, Expert: j}
		if !d.RT.Resident(ref) {
			missing = append(missing, ref)
		}
	}
	if len(missing) == 0 {
		return 0
	}
	end := d.RT.SyncLoad(missing, now)
	return end - now
}

// ---------------------------------------------------------------------------
// Mixtral-Offloading

// MixtralOffload models Mixtral-Offloading (§6.1): speculative prediction
// of the next layer's experts from the current hidden state (accurate at
// distance 1 thanks to residual connections, §6.6), loaded synchronously —
// the transfer serializes with compute, giving a high hit rate but poor
// latency (§6.2) — over an LRU cache.
type MixtralOffload struct {
	policy.Base
	model *moe.Model
	cfg   moe.Config
	// SpecOverheadMS is the CPU-side cost of one speculation step.
	SpecOverheadMS float64
}

var _ policy.Policy = (*MixtralOffload)(nil)

// NewMixtralOffload returns the baseline; model provides the gate used for
// speculation (the real system reuses the model's own gate weights).
func NewMixtralOffload(model *moe.Model) *MixtralOffload {
	// The real system is an eager Python loop that blocks each layer on
	// speculation and weight movement; ~2 ms per layer of dispatch
	// overhead matches its measured per-token latency on the HF stack.
	return &MixtralOffload{model: model, cfg: model.Cfg, SpecOverheadMS: 2.0}
}

// Name implements policy.Policy.
func (*MixtralOffload) Name() string { return "Mixtral-Offload" }

// Scorer implements policy.Policy: Mixtral-Offloading uses LRU (§4.5).
func (*MixtralOffload) Scorer() cache.Scorer { return cache.LRU{} }

// StartIteration speculatively loads layer 0's experts from the iteration's
// input state.
func (m *MixtralOffload) StartIteration(views []policy.IterView, now float64) float64 {
	var delay float64
	for _, v := range views {
		delay += m.speculateAndLoad(v.Semantic, 0, now+delay)
	}
	return delay
}

// OnGate speculatively loads layer+1's experts from the current hidden
// state, blocking until the transfer completes (synchronous prefetching).
func (m *MixtralOffload) OnGate(layer int, views []policy.LayerView, now float64) float64 {
	if layer+1 >= m.cfg.Layers {
		return 0
	}
	var delay float64
	for _, v := range views {
		delay += m.speculateAndLoad(v.Hidden, layer+1, now+delay)
	}
	return delay
}

func (m *MixtralOffload) speculateAndLoad(hidden []float64, target int, now float64) float64 {
	probs := make([]float64, m.cfg.RoutedExperts)
	m.model.Speculate(hidden, target, probs)
	var missing []moe.ExpertRef
	for _, j := range tensor.TopK(probs, m.cfg.TopK) {
		ref := moe.ExpertRef{Layer: target, Expert: j}
		if !m.RT.Resident(ref) {
			missing = append(missing, ref)
		}
	}
	m.Account(policy.CompPredict, m.SpecOverheadMS)
	delay := m.SpecOverheadMS
	if len(missing) > 0 {
		end := m.RT.SyncLoad(missing, now+delay)
		delay = end - now
	}
	return delay
}

// ---------------------------------------------------------------------------
// ProMoE

// ProMoE models ProMoE's stride-based speculative prefetching (§6.1):
// learned per-layer predictors forecast experts a fixed stride ahead and
// prefetch asynchronously. The predictors run on the GPU and contend with
// inference — §7 reports NN predictors cost substantial latency — modeled
// as a synchronous per-layer predictor charge.
type ProMoE struct {
	policy.Base
	model *moe.Model
	cfg   moe.Config
	// Stride is the prefetch distance (default 3).
	Stride int
	// PredictorMS is the per-layer GPU predictor cost.
	PredictorMS float64
}

var _ policy.Policy = (*ProMoE)(nil)

// NewProMoE returns the baseline with the stride used across the paper's
// experiments.
func NewProMoE(model *moe.Model) *ProMoE {
	return &ProMoE{model: model, cfg: model.Cfg, Stride: 3, PredictorMS: 2.5}
}

// Name implements policy.Policy.
func (*ProMoE) Name() string { return "ProMoE" }

// Scorer implements policy.Policy: LFU pairs best with stride prefetching.
func (*ProMoE) Scorer() cache.Scorer { return cache.LFU{} }

// StartIteration prefetches the first Stride layers speculatively from the
// iteration input state.
func (p *ProMoE) StartIteration(views []policy.IterView, now float64) float64 {
	for _, v := range views {
		for l := 0; l < p.Stride && l < p.cfg.Layers; l++ {
			p.speculatePrefetch(v.Semantic, l, l, now)
		}
	}
	return 0
}

// OnGate predicts layer+Stride from the current hidden state and prefetches
// asynchronously, paying the predictor's GPU cost synchronously.
func (p *ProMoE) OnGate(layer int, views []policy.LayerView, now float64) float64 {
	target := layer + p.Stride
	var delay float64
	for _, v := range views {
		if target < p.cfg.Layers {
			p.speculatePrefetch(v.Hidden, target, layer, now)
		}
		delay += p.PredictorMS
	}
	p.Account(policy.CompPredict, p.PredictorMS*float64(len(views)))
	return delay
}

func (p *ProMoE) speculatePrefetch(hidden []float64, target, lNow int, now float64) {
	probs := make([]float64, p.cfg.RoutedExperts)
	p.model.Speculate(hidden, target, probs)
	for _, j := range tensor.TopK(probs, p.cfg.TopK) {
		ref := moe.ExpertRef{Layer: target, Expert: j}
		if p.RT.Resident(ref) || p.RT.Tracked(ref) {
			continue
		}
		dist := target - lNow
		if dist < 1 {
			dist = 1
		}
		p.RT.Prefetch(ref, probs[j]/float64(dist), now)
	}
}

// ---------------------------------------------------------------------------
// MoE-Infinity

// EAM is MoE-Infinity's request-level Expert Activation Matrix: per-layer
// expert activation counts aggregated over a whole request (§2.4) — the
// coarse-grained tracking structure the paper's expert map improves upon.
type EAM struct {
	// Counts is L×J row-major activation counts.
	Counts []float64
}

// NewEAM builds an empty matrix.
func NewEAM(cfg moe.Config) *EAM {
	return &EAM{Counts: make([]float64, cfg.Layers*cfg.RoutedExperts)}
}

// ObserveIteration aggregates one iteration's activations.
func (e *EAM) ObserveIteration(cfg moe.Config, it *moe.Iteration) {
	for l, act := range it.Active {
		for _, j := range act {
			e.Counts[l*cfg.RoutedExperts+j]++
		}
	}
}

// ObserveLayer aggregates a single layer's activations.
func (e *EAM) ObserveLayer(cfg moe.Config, layer int, experts []int) {
	for _, j := range experts {
		e.Counts[layer*cfg.RoutedExperts+j]++
	}
}

// TopExperts returns the n highest-count experts at a layer.
func (e *EAM) TopExperts(cfg moe.Config, layer, n int) []int {
	row := e.Counts[layer*cfg.RoutedExperts : (layer+1)*cfg.RoutedExperts]
	return tensor.TopK(row, n)
}

// EAMFromTrace builds a request's full matrix from its iterations.
func EAMFromTrace(cfg moe.Config, iters []*moe.Iteration) *EAM {
	e := NewEAM(cfg)
	for _, it := range iters {
		e.ObserveIteration(cfg, it)
	}
	return e
}

// EAMCollection is MoE-Infinity's historical matrix store.
type EAMCollection struct {
	mu   sync.RWMutex
	cfg  moe.Config
	eams []*EAM
	// popular caches global activation counts for cold-start prefetching.
	popular []float64
}

// NewEAMCollection builds an empty collection.
func NewEAMCollection(cfg moe.Config) *EAMCollection {
	return &EAMCollection{cfg: cfg, popular: make([]float64, cfg.Layers*cfg.RoutedExperts)}
}

// Add stores a completed request's matrix.
func (c *EAMCollection) Add(e *EAM) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eams = append(c.eams, e)
	for i, v := range e.Counts {
		c.popular[i] += v
	}
}

// Len returns the number of stored matrices.
func (c *EAMCollection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.eams)
}

// Clone returns an independent collection sharing the immutable stored
// matrices, so each serving run mutates its own copy.
func (c *EAMCollection) Clone() *EAMCollection {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := NewEAMCollection(c.cfg)
	out.eams = make([]*EAM, len(c.eams))
	copy(out.eams, c.eams)
	copy(out.popular, c.popular)
	return out
}

// Search returns the stored matrix most similar (cosine) to the partial
// matrix of the in-flight request, or ok=false when empty.
func (c *EAMCollection) Search(partial *EAM) (*EAM, float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.eams) == 0 {
		return nil, 0, false
	}
	bestIdx, bestScore := -1, -2.0
	for i, e := range c.eams {
		if s := tensor.Cosine(partial.Counts, e.Counts); s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	return c.eams[bestIdx], bestScore, true
}

// PopularExperts returns the globally most-activated experts at a layer —
// MoE-Infinity's cold-start prefetching rule (§4.2).
func (c *EAMCollection) PopularExperts(layer, n int) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	row := c.popular[layer*c.cfg.RoutedExperts : (layer+1)*c.cfg.RoutedExperts]
	return tensor.TopK(row, n)
}

// MemoryBytes reports the collection's CPU footprint (float32 accounting,
// like the paper's comparison in §4.4).
func (c *EAMCollection) MemoryBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return int64(len(c.eams)) * int64(c.cfg.Layers*c.cfg.RoutedExperts) * 4
}

// MoEInfinity models MoE-Infinity (§6.1): request-level EAM tracking,
// synchronous per-layer prediction (the design §4.3 criticizes), transfers
// through an asynchronous task pool, and LFU caching.
type MoEInfinity struct {
	policy.Base
	cfg  moe.Config
	coll *EAMCollection
	// SearchMS is the synchronous per-prediction matrix-search cost.
	SearchMS float64
	// PrefetchPerLayer is how many experts per layer it prefetches from
	// the matched matrix.
	PrefetchPerLayer int

	mu   sync.Mutex
	reqs map[uint64]*EAM // partial matrices of in-flight requests
}

var _ policy.Policy = (*MoEInfinity)(nil)

// NewMoEInfinity builds the baseline around a (possibly pre-populated)
// matrix collection.
func NewMoEInfinity(coll *EAMCollection) *MoEInfinity {
	return &MoEInfinity{
		cfg:              coll.cfg,
		coll:             coll,
		SearchMS:         0.4,
		PrefetchPerLayer: 0, // defaults to TopK at Attach
		reqs:             map[uint64]*EAM{},
	}
}

// Name implements policy.Policy.
func (*MoEInfinity) Name() string { return "MoE-Infinity" }

// Scorer implements policy.Policy: LFU (§4.5).
func (*MoEInfinity) Scorer() cache.Scorer { return cache.LFU{} }

// MemoryOverheadBytes reports the matrix collection footprint.
func (m *MoEInfinity) MemoryOverheadBytes() int64 { return m.coll.MemoryBytes() }

// Collection returns the historical matrix store.
func (m *MoEInfinity) Collection() *EAMCollection { return m.coll }

// Attach implements policy.Policy.
func (m *MoEInfinity) Attach(rt policy.Runtime) {
	m.Base.Attach(rt)
	if m.PrefetchPerLayer <= 0 {
		m.PrefetchPerLayer = m.cfg.TopK
	}
}

// StartRequest initializes the request's partial matrix.
func (m *MoEInfinity) StartRequest(reqID uint64, _ float64) float64 {
	m.mu.Lock()
	m.reqs[reqID] = NewEAM(m.cfg)
	m.mu.Unlock()
	return 0
}

// StartIteration searches the collection with the request's partial matrix
// (synchronously — the request-level prediction step) and prefetches the
// matched matrix's top experts for every layer through the async task pool.
// Cold requests fall back to globally popular experts.
func (m *MoEInfinity) StartIteration(views []policy.IterView, now float64) float64 {
	var delay float64
	for _, v := range views {
		m.mu.Lock()
		partial := m.reqs[v.ReqID]
		m.mu.Unlock()
		if partial == nil {
			continue
		}
		delay += m.SearchMS
		m.Account(policy.CompMapMatch, m.SearchMS)
		matched, _, ok := m.coll.Search(partial)
		for l := 0; l < m.cfg.Layers; l++ {
			var experts []int
			if ok {
				experts = matched.TopExperts(m.cfg, l, m.PrefetchPerLayer)
			} else if m.coll.Len() > 0 {
				experts = m.coll.PopularExperts(l, m.PrefetchPerLayer)
			} else {
				continue
			}
			for rank, j := range experts {
				ref := moe.ExpertRef{Layer: l, Expert: j}
				if m.RT.Resident(ref) || m.RT.Tracked(ref) {
					continue
				}
				prio := 1.0/float64(l+1) - 0.001*float64(rank)
				m.RT.Prefetch(ref, prio, now+delay)
			}
		}
	}
	return delay
}

// OnGate pays the synchronous per-layer prediction cost and records the
// layer's activations into the partial matrix. (Activations are delivered
// through EndIteration's full record; here we aggregate probabilities into
// counts with a top-K cut, mirroring the engine's activation rule.)
func (m *MoEInfinity) OnGate(layer int, views []policy.LayerView, now float64) float64 {
	var delay float64
	for _, v := range views {
		m.mu.Lock()
		partial := m.reqs[v.ReqID]
		m.mu.Unlock()
		if partial == nil {
			continue
		}
		partial.ObserveLayer(m.cfg, layer, tensor.TopK(v.Probs, m.cfg.TopK))
		delay += m.SearchMS * 0.5 // per-layer synchronous re-prediction
	}
	m.Account(policy.CompMapMatch, delay)
	return delay
}

// EndRequest publishes the finished request's matrix to the collection.
func (m *MoEInfinity) EndRequest(reqID uint64, _ float64) {
	m.mu.Lock()
	partial := m.reqs[reqID]
	delete(m.reqs, reqID)
	m.mu.Unlock()
	if partial != nil {
		m.coll.Add(partial)
	}
}

// BuildEAMCollection pre-populates a collection from request traces — the
// paper prepares MoE-Infinity's matrices before evaluation for fairness
// (§6.1).
func BuildEAMCollection(cfg moe.Config, traces map[uint64][]*moe.Iteration) *EAMCollection {
	coll := NewEAMCollection(cfg)
	ids := make([]uint64, 0, len(traces))
	for id := range traces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		coll.Add(EAMFromTrace(cfg, traces[id]))
	}
	return coll
}

// CoarsePredict returns per-layer predicted expert sets for an upcoming
// iteration using request-level matrices — the "coarse-grained" predictor
// of Figs. 3/4/14a. history is the request's matrix aggregated so far.
func CoarsePredict(cfg moe.Config, coll *EAMCollection, history *EAM, perLayer int) [][]int {
	matched, _, ok := coll.Search(history)
	out := make([][]int, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		if ok {
			out[l] = matched.TopExperts(cfg, l, perLayer)
		} else if coll.Len() > 0 {
			out[l] = coll.PopularExperts(l, perLayer)
		}
	}
	return out
}
