//go:build !amd64

package tensor

// FastDotF32 returns an approximate float32 inner product of a and b over
// min(len(a), len(b)) elements — the portable fallback for the SSE2
// kernel in fastdot_amd64.s: four-way unrolled with pairwise tree folds,
// which shortens the serial add-latency chain scalar dot products are
// bound by. Association differs from element order, so results are NOT
// bit-comparable to DotF32 (nor to the amd64 kernel); use only as a
// prefilter whose survivors are re-scored with the exact kernel.
func FastDotF32(a, b []float32) float32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a, b = a[:n], b[:n]
	var d0, d1 float32
	k := 0
	for ; k+4 <= n; k += 4 {
		d0 += a[k]*b[k] + a[k+1]*b[k+1]
		d1 += a[k+2]*b[k+2] + a[k+3]*b[k+3]
	}
	for ; k < n; k++ {
		d0 += a[k] * b[k]
	}
	return d0 + d1
}

// FastDot4F32 returns the approximate inner products of q[:dim] against
// four consecutive dim-length rows of rows — the portable fallback for
// the SSE2 kernel. Same approximate-association contract as FastDotF32.
// It panics if q or rows is too short.
func FastDot4F32(q, rows []float32, dim int) (d0, d1, d2, d3 float32) {
	if dim <= 0 {
		return 0, 0, 0, 0
	}
	q = q[:dim]
	d0 = FastDotF32(q, rows[0*dim:1*dim])
	d1 = FastDotF32(q, rows[1*dim:2*dim])
	d2 = FastDotF32(q, rows[2*dim:3*dim])
	d3 = FastDotF32(q, rows[3*dim:4*dim])
	return
}
