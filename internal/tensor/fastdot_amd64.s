// SSE2 fast-phase dot kernel. SSE2 is part of the amd64 baseline, so no
// runtime feature detection is needed. Accumulation is 4-lane SIMD with
// two parallel accumulators (arbitrary association — see FastDotF32's
// contract: prefilter use only, never byte-compared).

#include "textflag.h"

// func FastDotF32(a, b []float32) float32
TEXT ·FastDotF32(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DI
	MOVQ b_len+32(FP), DX
	CMPQ DX, CX
	CMOVQLT DX, CX          // CX = min(len(a), len(b))
	XORPS X0, X0            // accumulator 0
	XORPS X3, X3            // accumulator 1
	MOVQ CX, BX
	SHRQ $3, BX             // 8-element blocks
	JZ   tail
loop:
	MOVUPS (SI), X1
	MOVUPS (DI), X2
	MULPS  X2, X1
	ADDPS  X1, X0
	MOVUPS 16(SI), X4
	MOVUPS 16(DI), X5
	MULPS  X5, X4
	ADDPS  X4, X3
	ADDQ   $32, SI
	ADDQ   $32, DI
	DECQ   BX
	JNZ    loop
tail:
	ADDPS  X3, X0
	// Horizontal sum of X0's four lanes into lane 0.
	MOVAPS X0, X1
	SHUFPS $0xB1, X1, X1    // [b a d c]
	ADDPS  X1, X0           // [a+b a+b c+d c+d]
	MOVAPS X0, X1
	SHUFPS $0x4E, X1, X1    // [c+d c+d a+b a+b]
	ADDPS  X1, X0           // lane 0 = a+b+c+d
	MOVQ   CX, BX
	ANDQ   $7, BX
	JZ     done
scalar:
	MOVSS  (SI), X1
	MULSS  (DI), X1
	ADDSS  X1, X0
	ADDQ   $4, SI
	ADDQ   $4, DI
	DECQ   BX
	JNZ    scalar
done:
	MOVSS X0, ret+48(FP)
	RET

// func fastDot4F32(q, rows *float32, dim int) (d0, d1, d2, d3 float32)
// Four dots of q against four consecutive dim-length rows starting at
// rows. Each query block is loaded once and multiplied against all four
// rows (the exact-mode sweep's layout: consecutive store slots).
TEXT ·fastDot4F32(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), SI
	MOVQ rows+8(FP), DI
	MOVQ dim+16(FP), CX
	MOVQ CX, AX
	SHLQ $2, AX             // row stride in bytes
	LEAQ (DI)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	MOVQ CX, BX
	SHRQ $2, BX             // 4-float blocks
	JZ   tail
loop:
	MOVUPS (SI), X0
	MOVUPS (DI), X5
	MULPS  X0, X5
	ADDPS  X5, X1
	MOVUPS (R9), X6
	MULPS  X0, X6
	ADDPS  X6, X2
	MOVUPS (R10), X7
	MULPS  X0, X7
	ADDPS  X7, X3
	MOVUPS (R11), X8
	MULPS  X0, X8
	ADDPS  X8, X4
	ADDQ   $16, SI
	ADDQ   $16, DI
	ADDQ   $16, R9
	ADDQ   $16, R10
	ADDQ   $16, R11
	DECQ   BX
	JNZ    loop
tail:
	MOVQ CX, BX
	ANDQ $3, BX
	JZ   reduce
tailloop:
	MOVSS  (SI), X0
	MOVSS  (DI), X5
	MULSS  X0, X5
	ADDSS  X5, X1
	MOVSS  (R9), X6
	MULSS  X0, X6
	ADDSS  X6, X2
	MOVSS  (R10), X7
	MULSS  X0, X7
	ADDSS  X7, X3
	MOVSS  (R11), X8
	MULSS  X0, X8
	ADDSS  X8, X4
	ADDQ   $4, SI
	ADDQ   $4, DI
	ADDQ   $4, R9
	ADDQ   $4, R10
	ADDQ   $4, R11
	DECQ   BX
	JNZ    tailloop
reduce:
	// Horizontal sums: lane-fold each accumulator into lane 0.
	MOVAPS X1, X0
	SHUFPS $0xB1, X0, X0
	ADDPS  X0, X1
	MOVAPS X1, X0
	SHUFPS $0x4E, X0, X0
	ADDPS  X0, X1
	MOVSS  X1, d0+24(FP)
	MOVAPS X2, X0
	SHUFPS $0xB1, X0, X0
	ADDPS  X0, X2
	MOVAPS X2, X0
	SHUFPS $0x4E, X0, X0
	ADDPS  X0, X2
	MOVSS  X2, d1+28(FP)
	MOVAPS X3, X0
	SHUFPS $0xB1, X0, X0
	ADDPS  X0, X3
	MOVAPS X3, X0
	SHUFPS $0x4E, X0, X0
	ADDPS  X0, X3
	MOVSS  X3, d2+32(FP)
	MOVAPS X4, X0
	SHUFPS $0xB1, X0, X0
	ADDPS  X0, X4
	MOVAPS X4, X0
	SHUFPS $0x4E, X0, X0
	ADDPS  X0, X4
	MOVSS  X4, d3+36(FP)
	RET
