// Package tensor provides the small dense linear-algebra and
// information-theory kernels the FineMoE simulator is built on: softmax,
// top-k selection, cosine similarity, Shannon entropy, and Pearson
// correlation.
//
// Vectors are plain []float64 slices; matrices are row-major flat slices.
// The package allocates only where documented so the serving engine's hot
// loops can reuse buffers.
package tensor

import (
	"math"
	"sort"
)

// Dot returns the inner product of a and b. It panics if lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Normalize scales v in place to unit norm. A zero vector is left unchanged.
func Normalize(v []float64) {
	n := Norm(v)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
}

// Cosine returns the cosine similarity of a and b, in [-1, 1]. If either
// vector is zero it returns 0.
func Cosine(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	c := Dot(a, b) / (na * nb)
	// Clamp against floating point drift so downstream Clip(1-score) math
	// stays in range.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// Axpy computes dst[i] += alpha * x[i].
func Axpy(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic("tensor: Axpy length mismatch")
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Scale multiplies v in place by alpha.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Copy returns a fresh copy of v.
func Copy(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// MatVec computes dst = M·v where M is rows×cols row-major. dst must have
// length rows; v must have length cols.
func MatVec(m []float64, rows, cols int, v, dst []float64) {
	if len(m) != rows*cols || len(v) != cols || len(dst) != rows {
		panic("tensor: MatVec shape mismatch")
	}
	// Slicing each row to exactly cols elements lets the compiler prove
	// v[c] in-bounds from the shape check above, eliding per-element
	// bounds checks in the dot kernel.
	for r := 0; r < rows; r++ {
		row := m[r*cols : r*cols+cols]
		var s float64
		for c, x := range row {
			s += x * v[c]
		}
		dst[r] = s
	}
}

// Softmax writes softmax(logits * invTemp) into dst (dst may alias logits).
// It is numerically stable under large logits.
func Softmax(logits []float64, invTemp float64, dst []float64) {
	if len(logits) != len(dst) {
		panic("tensor: Softmax length mismatch")
	}
	maxL := math.Inf(-1)
	for _, x := range logits {
		if x*invTemp > maxL {
			maxL = x * invTemp
		}
	}
	var sum float64
	for i, x := range logits {
		e := math.Exp(x*invTemp - maxL)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// TopK returns the indices of the k largest values of p in descending value
// order. Ties break toward the lower index for determinism. It panics if
// k < 0 or k > len(p).
func TopK(p []float64, k int) []int {
	if k < 0 || k > len(p) {
		panic("tensor: TopK k out of range")
	}
	idx := make([]int, len(p))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if p[idx[a]] != p[idx[b]] {
			return p[idx[a]] > p[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k:k]
}

// TopKInto is the allocation-free TopK: it writes the full descending
// order of p into scratch (which must have capacity ≥ len(p)) and returns
// scratch's first k entries. The order is built by stable insertion —
// indices are considered in ascending order and each is placed after all
// strictly-greater and all equal-valued earlier indices — which is exactly
// the (value descending, index ascending) order TopK's stable sort
// produces, so TopKInto(p, k, s) element-equals TopK(p, k) for every input.
func TopKInto(p []float64, k int, scratch []int) []int {
	if k < 0 || k > len(p) {
		panic("tensor: TopKInto k out of range")
	}
	order := scratch[:0]
	for i := range p {
		j := len(order)
		order = append(order, i)
		for j > 0 && p[order[j-1]] < p[i] {
			order[j] = order[j-1]
			j--
		}
		order[j] = i
	}
	return order[:k]
}

// ArgMax returns the index of the largest element, lowest index on ties.
// It panics on an empty slice.
func ArgMax(p []float64) int {
	if len(p) == 0 {
		panic("tensor: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(p); i++ {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

// Entropy returns the Shannon entropy of the distribution p in nats.
// Zero entries contribute zero. It does not verify normalization; callers
// that need a true distribution should Normalize1 first.
func Entropy(p []float64) float64 {
	var h float64
	for _, x := range p {
		if x > 0 {
			h -= x * math.Log(x)
		}
	}
	return h
}

// Normalize1 scales v in place so entries sum to 1. Negative entries are
// clamped to 0 first. If the sum is zero the vector becomes uniform.
func Normalize1(v []float64) {
	var sum float64
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		} else {
			sum += x
		}
	}
	if sum == 0 {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return
	}
	inv := 1 / sum
	for i := range v {
		v[i] *= inv
	}
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It panics if lengths differ, and returns 0 when either side has zero
// variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("tensor: Pearson length mismatch")
	}
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Clip returns v clamped to [lo, hi].
func Clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// CumulativeTopSet returns the smallest prefix of experts, in descending
// probability order, whose cumulative probability reaches threshold, but
// never fewer than minCount entries (capped at len(p)). This implements the
// paper's Eq. 6-8 similarity-aware expert selection.
func CumulativeTopSet(p []float64, threshold float64, minCount int) []int {
	order := TopK(p, len(p))
	if minCount > len(p) {
		minCount = len(p)
	}
	var cum float64
	out := make([]int, 0, minCount)
	for _, j := range order {
		if len(out) >= minCount && cum >= threshold {
			break
		}
		out = append(out, j)
		cum += p[j]
	}
	return out
}

// CumulativeTopSetInto is the allocation-free CumulativeTopSet: order is
// the index scratch TopKInto needs (capacity ≥ len(p)) and the result is
// appended to out[:0]. Selection logic is identical to CumulativeTopSet,
// so the returned set element-equals it for every input.
func CumulativeTopSetInto(p []float64, threshold float64, minCount int, order, out []int) []int {
	full := TopKInto(p, len(p), order)
	if minCount > len(p) {
		minCount = len(p)
	}
	var cum float64
	out = out[:0]
	for _, j := range full {
		if len(out) >= minCount && cum >= threshold {
			break
		}
		out = append(out, j)
		cum += p[j]
	}
	return out
}

// OverlapRatio returns |a ∩ b| / |a| treating a as the reference set.
// An empty reference yields 1 (vacuously satisfied).
func OverlapRatio(a, b []int) float64 {
	if len(a) == 0 {
		return 1
	}
	set := make(map[int]struct{}, len(b))
	for _, v := range b {
		set[v] = struct{}{}
	}
	hit := 0
	for _, v := range a {
		if _, ok := set[v]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(a))
}

// Float32s converts v to float32 storage (the on-disk/in-store precision the
// paper uses for expert maps).
func Float32s(v []float64) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// Float64s converts back from float32 storage.
func Float64s(v []float32) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

// Float64sInto widens v into dst (allocation-free Float64s). dst must have
// length len(v).
func Float64sInto(v []float32, dst []float64) {
	if len(dst) != len(v) {
		panic("tensor: Float64sInto length mismatch")
	}
	for i, x := range v {
		dst[i] = float64(x)
	}
}

// DotF32 returns the inner product of a and b over float32 storage,
// accumulated in float64 in element order — the same accumulation CosineF32
// performs for its dot term, so DotF32(a,b)/√(Norm2F32(a)·Norm2F32(b))
// reproduces CosineF32(a,b) bit for bit. The clustered expert-map index
// relies on that identity: it caches Norm2F32 per stored embedding and
// scans with DotF32, cutting per-candidate work to one multiply-add while
// staying byte-identical to the brute-force cosine.
func DotF32(a, b []float32) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot float64
	for i := 0; i < n; i++ {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}

// Norm2F32 returns the squared Euclidean norm of v, accumulated in float64
// in element order (matching CosineF32's norm accumulation — see DotF32).
func Norm2F32(v []float32) float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return s
}

// CosineWithNorms combines a DotF32 dot product with two cached squared
// norms into the clamped cosine similarity, returning 0 when either norm is
// zero — exactly CosineF32's contract.
func CosineWithNorms(dot, na2, nb2 float64) float64 {
	if na2 == 0 || nb2 == 0 {
		return 0
	}
	c := dot / math.Sqrt(na2*nb2)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// CosineF32 computes cosine similarity over float32 storage without
// converting to float64 slices (hot path of expert-map search).
func CosineF32(a, b []float32) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot, na, nb float64
	for i := 0; i < n; i++ {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	c := dot / math.Sqrt(na*nb)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}
