package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"finemoe/internal/rng"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNormAndNormalize(t *testing.T) {
	v := []float64{3, 4}
	if got := Norm(v); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	Normalize(v)
	if !almostEqual(Norm(v), 1, 1e-12) {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := []float64{0, 0}
	Normalize(z) // must not NaN
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector mutated")
	}
}

func TestCosine(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := Cosine(a, b); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine(a, a); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("self cosine = %v", got)
	}
	if got := Cosine(a, []float64{-1, 0}); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("opposite cosine = %v", got)
	}
	if got := Cosine(a, []float64{0, 0}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
}

func TestCosineRangeProperty(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := r.Derive(seed)
		a := make([]float64, 16)
		b := make([]float64, 16)
		for i := range a {
			a[i] = rr.Norm() * 100
			b[i] = rr.Norm() * 100
		}
		c := Cosine(a, b)
		return c >= -1 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	logits := []float64{1, 2, 3, 4}
	dst := make([]float64, 4)
	Softmax(logits, 1, dst)
	var sum float64
	for _, p := range dst {
		if p <= 0 || p >= 1 {
			t.Fatalf("softmax entry out of (0,1): %v", dst)
		}
		sum += p
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("softmax sum = %v", sum)
	}
	if !(dst[3] > dst[2] && dst[2] > dst[1] && dst[1] > dst[0]) {
		t.Fatalf("softmax not monotone: %v", dst)
	}
}

func TestSoftmaxStability(t *testing.T) {
	logits := []float64{1e6, 1e6 + 1}
	dst := make([]float64, 2)
	Softmax(logits, 1, dst)
	if math.IsNaN(dst[0]) || math.IsNaN(dst[1]) {
		t.Fatalf("softmax NaN on large logits: %v", dst)
	}
	if !almostEqual(dst[0]+dst[1], 1, 1e-12) {
		t.Fatalf("softmax sum = %v", dst[0]+dst[1])
	}
}

func TestSoftmaxTemperature(t *testing.T) {
	logits := []float64{0, 1}
	cold := make([]float64, 2)
	hot := make([]float64, 2)
	Softmax(logits, 10, cold) // high inverse temp => peaked
	Softmax(logits, 0.1, hot) // low inverse temp => flat
	if cold[1] <= hot[1] {
		t.Fatalf("temperature scaling wrong: cold=%v hot=%v", cold, hot)
	}
}

func TestSoftmaxProperty(t *testing.T) {
	r := rng.New(2)
	f := func(seed uint64) bool {
		rr := r.Derive(seed)
		n := 1 + rr.Intn(32)
		logits := make([]float64, n)
		for i := range logits {
			logits[i] = rr.Norm() * 10
		}
		dst := make([]float64, n)
		Softmax(logits, 2.5, dst)
		var sum float64
		for _, p := range dst {
			if p < 0 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopK(t *testing.T) {
	p := []float64{0.1, 0.5, 0.2, 0.2}
	got := TopK(p, 2)
	if got[0] != 1 {
		t.Fatalf("TopK first = %d, want 1", got[0])
	}
	if got[1] != 2 { // tie between idx 2 and 3 breaks low
		t.Fatalf("TopK tie-break = %d, want 2", got[1])
	}
	if len(TopK(p, 0)) != 0 {
		t.Fatal("TopK(0) not empty")
	}
	all := TopK(p, 4)
	if len(all) != 4 {
		t.Fatalf("TopK full length = %d", len(all))
	}
}

func TestTopKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TopK([]float64{1}, 2)
}

func TestTopKProperty(t *testing.T) {
	r := rng.New(3)
	f := func(seed uint64) bool {
		rr := r.Derive(seed)
		n := 1 + rr.Intn(64)
		p := make([]float64, n)
		for i := range p {
			p[i] = rr.Float64()
		}
		k := rr.Intn(n + 1)
		got := TopK(p, k)
		if len(got) != k {
			return false
		}
		// Values must be non-increasing, indices unique.
		seen := map[int]bool{}
		for i, idx := range got {
			if seen[idx] {
				return false
			}
			seen[idx] = true
			if i > 0 && p[got[i-1]] < p[idx] {
				return false
			}
		}
		// Every excluded value must be <= the smallest included value.
		if k > 0 {
			minIn := p[got[k-1]]
			for i, v := range p {
				if !seen[i] && v > minIn {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 3, 3, 2}); got != 1 {
		t.Fatalf("ArgMax = %d, want 1", got)
	}
}

func TestEntropy(t *testing.T) {
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if got := Entropy(uniform); !almostEqual(got, math.Log(4), 1e-12) {
		t.Fatalf("uniform entropy = %v, want ln4", got)
	}
	point := []float64{1, 0, 0, 0}
	if got := Entropy(point); got != 0 {
		t.Fatalf("point-mass entropy = %v", got)
	}
	// Peaked distribution must have lower entropy than uniform.
	peaked := []float64{0.85, 0.05, 0.05, 0.05}
	if Entropy(peaked) >= Entropy(uniform) {
		t.Fatal("peaked entropy not below uniform")
	}
}

func TestNormalize1(t *testing.T) {
	v := []float64{2, 2, 4}
	Normalize1(v)
	if !almostEqual(v[0], 0.25, 1e-12) || !almostEqual(v[2], 0.5, 1e-12) {
		t.Fatalf("Normalize1 = %v", v)
	}
	z := []float64{0, 0}
	Normalize1(z)
	if !almostEqual(z[0], 0.5, 1e-12) {
		t.Fatalf("zero-sum fallback = %v", z)
	}
	neg := []float64{-1, 1}
	Normalize1(neg)
	if neg[0] != 0 || neg[1] != 1 {
		t.Fatalf("negative clamp = %v", neg)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", got)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yneg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if got := Pearson(x, flat); got != 0 {
		t.Fatalf("zero-variance correlation = %v", got)
	}
}

func TestPearsonBounds(t *testing.T) {
	r := rng.New(4)
	f := func(seed uint64) bool {
		rr := r.Derive(seed)
		n := 2 + rr.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rr.Norm()
			y[i] = rr.Norm()
		}
		p := Pearson(x, y)
		return p >= -1-1e-9 && p <= 1+1e-9 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClip(t *testing.T) {
	if Clip(2, 0, 1) != 1 || Clip(-1, 0, 1) != 0 || Clip(0.5, 0, 1) != 0.5 {
		t.Fatal("Clip wrong")
	}
}

func TestMatVec(t *testing.T) {
	m := []float64{1, 2, 3, 4, 5, 6} // 2x3
	v := []float64{1, 1, 1}
	dst := make([]float64, 2)
	MatVec(m, 2, 3, v, dst)
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MatVec = %v", dst)
	}
}

func TestCumulativeTopSet(t *testing.T) {
	p := []float64{0.5, 0.3, 0.15, 0.05}
	// threshold 0.7 with min 1: need {0, 1} (0.5+0.3=0.8 >= 0.7)
	got := CumulativeTopSet(p, 0.7, 1)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("CumulativeTopSet = %v", got)
	}
	// min count dominates when threshold already met
	got = CumulativeTopSet(p, 0.1, 3)
	if len(got) != 3 {
		t.Fatalf("min-count CumulativeTopSet = %v", got)
	}
	// threshold 1.0 requires everything
	got = CumulativeTopSet(p, 1.0, 1)
	if len(got) != 4 {
		t.Fatalf("full-threshold CumulativeTopSet = %v", got)
	}
	// min count larger than len(p) is capped
	got = CumulativeTopSet(p, 0, 10)
	if len(got) != 4 {
		t.Fatalf("capped min count = %v", got)
	}
}

func TestCumulativeTopSetProperty(t *testing.T) {
	r := rng.New(5)
	f := func(seed uint64) bool {
		rr := r.Derive(seed)
		n := 2 + rr.Intn(32)
		p := make([]float64, n)
		for i := range p {
			p[i] = rr.Float64()
		}
		Normalize1(p)
		thr := rr.Float64()
		minC := 1 + rr.Intn(n)
		got := CumulativeTopSet(p, thr, minC)
		if len(got) < minC {
			return false
		}
		var cum float64
		for _, j := range got {
			cum += p[j]
		}
		// Either threshold satisfied or all experts selected.
		return cum >= thr-1e-9 || len(got) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapRatio(t *testing.T) {
	if got := OverlapRatio([]int{1, 2}, []int{2, 3}); got != 0.5 {
		t.Fatalf("overlap = %v", got)
	}
	if got := OverlapRatio(nil, []int{1}); got != 1 {
		t.Fatalf("empty reference overlap = %v", got)
	}
	if got := OverlapRatio([]int{1, 2}, nil); got != 0 {
		t.Fatalf("empty candidate overlap = %v", got)
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	v := []float64{0.125, 0.25, 0.5}
	got := Float64s(Float32s(v))
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("round trip failed: %v", got)
		}
	}
}

func TestCosineF32MatchesFloat64(t *testing.T) {
	r := rng.New(6)
	a := make([]float64, 64)
	b := make([]float64, 64)
	for i := range a {
		a[i] = r.Norm()
		b[i] = r.Norm()
	}
	want := Cosine(a, b)
	got := CosineF32(Float32s(a), Float32s(b))
	if !almostEqual(got, want, 1e-5) {
		t.Fatalf("CosineF32 = %v, want %v", got, want)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestAxpyScaleCopy(t *testing.T) {
	dst := []float64{1, 1}
	Axpy(2, []float64{1, 2}, dst)
	if dst[0] != 3 || dst[1] != 5 {
		t.Fatalf("Axpy = %v", dst)
	}
	Scale(0.5, dst)
	if dst[0] != 1.5 || dst[1] != 2.5 {
		t.Fatalf("Scale = %v", dst)
	}
	c := Copy(dst)
	c[0] = 99
	if dst[0] == 99 {
		t.Fatal("Copy aliases")
	}
}

func BenchmarkSoftmax64(b *testing.B) {
	logits := make([]float64, 64)
	dst := make([]float64, 64)
	r := rng.New(1)
	for i := range logits {
		logits[i] = r.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(logits, 2, dst)
	}
}

func BenchmarkCosineF32_1536(b *testing.B) {
	r := rng.New(1)
	a := make([]float32, 1536)
	c := make([]float32, 1536)
	for i := range a {
		a[i] = float32(r.Norm())
		c[i] = float32(r.Norm())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CosineF32(a, c)
	}
}

// TestFastDotF32ApproximatesDotF32: the fast kernel (SIMD on amd64,
// pairwise-tree fallback elsewhere) must agree with the exact
// element-order dot within the rounding bound the index's scanEps margin
// budgets for, across lengths covering blocks, tails, and length
// mismatches.
func TestFastDotF32ApproximatesDotF32(t *testing.T) {
	r := rng.New(91)
	for _, n := range []int{0, 1, 3, 4, 7, 8, 9, 15, 16, 17, 63, 64, 65, 256} {
		a := make([]float32, n)
		b := make([]float32, n+3) // fast kernel must respect min length
		for i := range a {
			a[i] = float32(r.Float64()*2 - 1)
		}
		for i := range b {
			b[i] = float32(r.Float64()*2 - 1)
		}
		got := float64(FastDotF32(a, b))
		want := DotF32(a, b)
		if diff := math.Abs(got - want); diff > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("n=%d: fast %v vs exact %v (diff %v)", n, got, want, diff)
		}
		if FastDotF32(b, a) != FastDotF32(a, b) {
			t.Fatalf("n=%d: fast dot not symmetric", n)
		}
	}
}

// TestFastDot4F32MatchesFastDotF32: the four-row kernel must agree with
// four independent single-row fast dots within the scan error bound, for
// dims covering SIMD blocks and scalar tails.
func TestFastDot4F32Matches(t *testing.T) {
	r := rng.New(93)
	for _, dim := range []int{1, 3, 4, 5, 8, 16, 63, 64, 65} {
		q := make([]float32, dim)
		rows := make([]float32, 4*dim)
		for i := range q {
			q[i] = float32(r.Float64()*2 - 1)
		}
		for i := range rows {
			rows[i] = float32(r.Float64()*2 - 1)
		}
		d0, d1, d2, d3 := FastDot4F32(q, rows, dim)
		for i, got := range []float32{d0, d1, d2, d3} {
			want := DotF32(q, rows[i*dim:(i+1)*dim])
			if diff := math.Abs(float64(got) - want); diff > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("dim=%d row=%d: fast4 %v vs exact %v", dim, i, got, want)
			}
		}
	}
}
