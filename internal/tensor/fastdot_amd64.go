//go:build amd64

package tensor

// FastDotF32 returns an approximate float32 inner product of a and b over
// min(len(a), len(b)) elements, accumulated 4-lane SIMD (SSE2) with two
// parallel accumulators. The association differs from element order, so
// results are NOT bit-comparable to DotF32 — the error is bounded by the
// usual ~n·2⁻²⁴·|a||b| analysis (tighter than element order, in fact,
// since each lane folds only n/8 terms). Use it only as a prefilter whose
// survivors are re-scored with the exact kernel; never compare its output
// across architectures.
//
//go:noescape
func FastDotF32(a, b []float32) float32

// fastDot4F32 is the SSE2 four-row kernel behind FastDot4F32.
//
//go:noescape
func fastDot4F32(q, rows *float32, dim int) (d0, d1, d2, d3 float32)

// FastDot4F32 returns the approximate inner products of q[:dim] against
// four consecutive dim-length rows of rows (the contiguous-slot layout of
// the expert-map index's arena). Each query block is loaded once and
// multiplied against all four rows, amortizing call and load overhead the
// one-row kernel pays per candidate. Same approximate-association
// contract as FastDotF32. It panics if q or rows is too short.
func FastDot4F32(q, rows []float32, dim int) (d0, d1, d2, d3 float32) {
	if dim <= 0 {
		return 0, 0, 0, 0
	}
	_ = q[dim-1]
	_ = rows[4*dim-1]
	return fastDot4F32(&q[0], &rows[0], dim)
}
