// Package workload generates the request workloads the paper evaluates on:
// topic-clustered prompt populations standing in for LMSYS-Chat-1M and
// ShareGPT, 70/30 store/test splits (§6.1), and Azure-style online inference
// traces with Poisson arrivals at the paper's 2.91 requests/second (§6.3).
//
// Real prompt text is irrelevant to the offloading system — only the
// semantic embedding, the token counts, and the arrival time matter — so a
// workload is a population of latent topic vectors with realistic length
// marginals.
package workload

import (
	"fmt"
	"math"

	"finemoe/internal/moe"
	"finemoe/internal/rng"
)

// Request is one serving request: a simulatable prompt plus workload
// metadata.
type Request struct {
	moe.PromptSpec
	// Topic is the latent topic cluster the prompt was drawn from.
	Topic int
	// ArrivalMS is the request arrival time for online serving
	// (0 for offline workloads).
	ArrivalMS float64
	// Dataset names the generating dataset.
	Dataset string
	// Session identifies the multi-turn conversation the request belongs
	// to (0 = standalone), and Turn its zero-based position in it.
	Session uint64
	Turn    int
	// Tenant names the generating tenant in multi-tenant mixes
	// ("" = untagged).
	Tenant string
}

// Dataset describes a prompt population.
type Dataset struct {
	// Name identifies the dataset in reports.
	Name string
	// Topics is the number of latent topic clusters.
	Topics int
	// TopicZipf shapes topic popularity (0 = uniform; larger = more
	// skewed toward popular conversation topics).
	TopicZipf float64
	// TopicSpread is the within-topic embedding noise: how far prompts
	// of one topic scatter around the topic direction.
	TopicSpread float64
	// MeanInput and MeanOutput are the mean prompt/generation lengths in
	// tokens. The paper's §6.2 measures LMSYS at 37/127 and ShareGPT at
	// 43/122.
	MeanInput, MeanOutput int
	// LenSigma is the log-normal shape of sampled lengths when lengths
	// are not fixed.
	LenSigma float64
	// Seed namespaces the dataset's topic directions and sampling.
	Seed uint64
}

// LMSYSChat1M returns the synthetic stand-in for LMSYS-Chat-1M.
func LMSYSChat1M() Dataset {
	return Dataset{
		Name:        "LMSYS-Chat-1M",
		Topics:      24,
		TopicZipf:   1.2,
		TopicSpread: 0.05,
		MeanInput:   37,
		MeanOutput:  127,
		LenSigma:    0.6,
		Seed:        0x15f5,
	}
}

// ShareGPT returns the synthetic stand-in for ShareGPT.
func ShareGPT() Dataset {
	return Dataset{
		Name:        "ShareGPT",
		Topics:      20,
		TopicZipf:   1.2,
		TopicSpread: 0.07,
		MeanInput:   43,
		MeanOutput:  122,
		LenSigma:    0.6,
		Seed:        0x5269,
	}
}

// PaperDatasets returns the two datasets used throughout the evaluation.
func PaperDatasets() []Dataset { return []Dataset{LMSYSChat1M(), ShareGPT()} }

// topicSalt namespaces topic-direction derivation within a dataset's seed.
const topicSalt uint64 = 0x701c

// TopicDirection returns the unit embedding direction of a topic cluster in
// the given semantic dimensionality. Deterministic per (dataset, topic).
func (d Dataset) TopicDirection(dim, topic int) []float64 {
	return rng.UnitVecFor(dim, d.Seed, topicSalt, uint64(topic))
}

// sampleTopic draws a topic index with Zipf-shaped popularity.
func (d Dataset) sampleTopic(r *rng.RNG) int {
	if d.TopicZipf <= 0 {
		return r.Intn(d.Topics)
	}
	// Inverse-CDF sampling over unnormalized weights 1/(k+1)^z using a
	// precomputable total would be nicer; with a few hundred topics a
	// linear walk is fine and allocation-free.
	z := d.TopicZipf
	var total float64
	for k := 0; k < d.Topics; k++ {
		total += math.Pow(float64(k+1), -z)
	}
	u := r.Float64() * total
	var cum float64
	for k := 0; k < d.Topics; k++ {
		cum += math.Pow(float64(k+1), -z)
		if u <= cum {
			return k
		}
	}
	return d.Topics - 1
}

// sampleLen draws a log-normal length with the configured mean, clamped to
// [minLen, maxLen].
func sampleLen(r *rng.RNG, mean int, sigma float64, minLen, maxLen int) int {
	if sigma <= 0 {
		return mean
	}
	mu := math.Log(float64(mean)) - sigma*sigma/2
	v := int(math.Round(r.LogNormal(mu, sigma)))
	if v < minLen {
		v = minLen
	}
	if v > maxLen {
		v = maxLen
	}
	return v
}

// Options controls sampling.
type Options struct {
	// Dim is the semantic embedding dimensionality (the model's SemDim).
	Dim int
	// N is the number of requests.
	N int
	// Seed drives sampling; distinct seeds give disjoint populations.
	Seed uint64
	// FixedLengths pins every request to the dataset's mean input/output
	// lengths, as the paper's offline evaluation does (§6.2).
	FixedLengths bool
	// IDBase offsets request IDs so multiple samples can coexist.
	IDBase uint64
}

// Sample draws n requests from the dataset population. Embeddings are
// rows of a shared arena (one block per arenaRows requests) rather than
// individual allocations; the values are byte-identical to per-request
// allocation, and the drawing loop is the same sampler the streaming
// generators use (stream.go), so Sample and StreamOnline cannot drift.
func (d Dataset) Sample(opt Options) []Request {
	if opt.Dim <= 0 || opt.N < 0 {
		panic(fmt.Sprintf("workload: invalid options %+v", opt))
	}
	s := newSampler(d, opt)
	out := make([]Request, opt.N)
	for i := range out {
		out[i] = s.next(opt.IDBase + uint64(i))
	}
	return out
}

// Split partitions requests into a store-building set and a test set using
// the paper's standard ratio (§6.1: 70% of prompts populate the Expert Map
// Store, 30% are served).
func Split(reqs []Request, storeFrac float64) (store, test []Request) {
	if storeFrac < 0 || storeFrac > 1 {
		panic("workload: storeFrac out of [0,1]")
	}
	cut := int(math.Round(float64(len(reqs)) * storeFrac))
	// Full slice expressions cap both halves at their own length: a plain
	// reqs[:cut] shares spare capacity with the test half, so appending to
	// store would silently clobber test's first elements.
	return reqs[:cut:cut], reqs[cut:len(reqs):len(reqs)]
}

// TraceConfig parameterizes an Azure-style online trace (§6.3).
type TraceConfig struct {
	// RatePerSec is the mean request arrival rate (paper: 2.91).
	RatePerSec float64
	// N is the number of requests (paper: 256).
	N int
	// Seed drives arrival sampling.
	Seed uint64
	// IDBase offsets request IDs (0 = the 1<<32 default), letting callers
	// concatenate traces without ID collisions.
	IDBase uint64
}

// AzureTrace samples an online trace: dataset prompts with exponential
// inter-arrival gaps (Poisson process) and trace-specified token lengths.
// It is OnlineTrace specialized to the paper's constant-rate process; the
// arrival stream is byte-identical to the pre-ArrivalProcess generator.
func AzureTrace(d Dataset, dim int, tc TraceConfig) []Request {
	if tc.RatePerSec <= 0 {
		panic("workload: non-positive arrival rate")
	}
	return OnlineTrace(d, dim, OnlineOptions{
		Arrivals: Poisson{RatePerSec: tc.RatePerSec},
		N:        tc.N, Seed: tc.Seed, IDBase: tc.IDBase,
	})
}

// Stats summarizes a request population.
type Stats struct {
	N                    int
	MeanInput, MeanOut   float64
	Topics               int
	DurationMS, RateRPS  float64
	MinInput, MaxInput   int
	MinOutput, MaxOutput int
	// Sessions counts distinct multi-turn sessions (requests with
	// Session != 0); Tenants counts distinct named tenants.
	Sessions, Tenants int
}

// Summarize computes population statistics, useful for trace inspection and
// for validating generated workloads against the paper's parameters.
func Summarize(reqs []Request) Stats {
	s := Stats{N: len(reqs), MinInput: math.MaxInt, MinOutput: math.MaxInt}
	if len(reqs) == 0 {
		s.MinInput, s.MinOutput = 0, 0
		return s
	}
	topics := map[int]bool{}
	sessions := map[uint64]bool{}
	tenants := map[string]bool{}
	var lastArrival float64
	for _, q := range reqs {
		s.MeanInput += float64(q.InputTokens)
		s.MeanOut += float64(q.OutputTokens)
		topics[q.Topic] = true
		if q.Session != 0 {
			sessions[q.Session] = true
		}
		if q.Tenant != "" {
			tenants[q.Tenant] = true
		}
		if q.ArrivalMS > lastArrival {
			lastArrival = q.ArrivalMS
		}
		s.MinInput = min(s.MinInput, q.InputTokens)
		s.MaxInput = max(s.MaxInput, q.InputTokens)
		s.MinOutput = min(s.MinOutput, q.OutputTokens)
		s.MaxOutput = max(s.MaxOutput, q.OutputTokens)
	}
	s.MeanInput /= float64(len(reqs))
	s.MeanOut /= float64(len(reqs))
	s.Topics = len(topics)
	s.Sessions = len(sessions)
	s.Tenants = len(tenants)
	s.DurationMS = lastArrival
	if lastArrival > 0 {
		s.RateRPS = float64(len(reqs)) / (lastArrival / 1000)
	}
	return s
}

// SummarizeTenants partitions a population by tenant (untagged requests
// fall under "") and summarizes each partition. The partitions are exact:
// every request contributes to exactly one tenant's Stats.
func SummarizeTenants(reqs []Request) map[string]Stats {
	byTenant := map[string][]Request{}
	for _, q := range reqs {
		byTenant[q.Tenant] = append(byTenant[q.Tenant], q)
	}
	out := make(map[string]Stats, len(byTenant))
	for name, qs := range byTenant {
		out[name] = Summarize(qs)
	}
	return out
}
