package workload

import (
	"sort"
	"testing"
)

func testTenants() []TenantSpec {
	return []TenantSpec{
		{Name: "steady", Dataset: LMSYSChat1M(), Arrivals: Poisson{RatePerSec: 4}, N: 30},
		{Name: "bursty", Dataset: ShareGPT(), Arrivals: BurstyMMPP(4), N: 20},
	}
}

// TestMultiTenantTraceMerge: the mix is arrival-ordered, fully tagged,
// ID-disjoint, and sized as the sum of its tenants.
func TestMultiTenantTraceMerge(t *testing.T) {
	trace := MultiTenantTrace(16, 5, testTenants())
	if len(trace) != 50 {
		t.Fatalf("merged trace has %d requests, want 50", len(trace))
	}
	if !sort.SliceIsSorted(trace, func(a, b int) bool {
		return trace[a].ArrivalMS < trace[b].ArrivalMS
	}) {
		t.Fatal("merged trace not arrival-ordered")
	}
	seen := map[uint64]bool{}
	byTenant := map[string]int{}
	for _, q := range trace {
		if seen[q.ID] {
			t.Fatalf("duplicate ID %d across tenants", q.ID)
		}
		seen[q.ID] = true
		byTenant[q.Tenant]++
	}
	if byTenant["steady"] != 30 || byTenant["bursty"] != 20 {
		t.Fatalf("tenant partition wrong: %v", byTenant)
	}
	// Tenants keep their own dataset.
	for _, q := range trace {
		want := "LMSYS-Chat-1M"
		if q.Tenant == "bursty" {
			want = "ShareGPT"
		}
		if q.Dataset != want {
			t.Fatalf("tenant %s request from dataset %s", q.Tenant, q.Dataset)
		}
	}
}

// TestMultiTenantTraceDeterminism: same seed, same mix; different seed,
// different arrivals.
func TestMultiTenantTraceDeterminism(t *testing.T) {
	a := MultiTenantTrace(16, 5, testTenants())
	b := MultiTenantTrace(16, 5, testTenants())
	for i := range a {
		if a[i].ID != b[i].ID || a[i].ArrivalMS != b[i].ArrivalMS {
			t.Fatalf("multi-tenant trace not deterministic at %d", i)
		}
	}
	c := MultiTenantTrace(16, 6, testTenants())
	if a[0].ArrivalMS == c[0].ArrivalMS && a[1].ArrivalMS == c[1].ArrivalMS {
		t.Fatal("different seeds produced identical arrivals")
	}
}

// TestMultiTenantTraceValidation: unnamed tenants and missing arrival
// processes panic.
func TestMultiTenantTraceValidation(t *testing.T) {
	for _, tenants := range [][]TenantSpec{
		nil,
		{{Dataset: LMSYSChat1M(), Arrivals: Poisson{RatePerSec: 1}, N: 1}},
		{{Name: "x", Dataset: LMSYSChat1M(), N: 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for tenants %+v", tenants)
				}
			}()
			MultiTenantTrace(8, 1, tenants)
		}()
	}
}

// TestSummarizeTenantsPartition: per-tenant stats partition the
// population exactly — counts sum to the total and every partition's
// stats match summarizing that tenant's requests alone.
func TestSummarizeTenantsPartition(t *testing.T) {
	trace := MultiTenantTrace(16, 5, testTenants())
	per := SummarizeTenants(trace)
	total := 0
	for name, s := range per {
		total += s.N
		var own []Request
		for _, q := range trace {
			if q.Tenant == name {
				own = append(own, q)
			}
		}
		if want := Summarize(own); s != want {
			t.Errorf("tenant %s stats diverge from direct summary", name)
		}
	}
	if total != len(trace) {
		t.Fatalf("tenant partition counts sum to %d, want %d", total, len(trace))
	}
	// Untagged requests land in the "" partition.
	plain := LMSYSChat1M().Sample(Options{Dim: 8, N: 5, Seed: 1})
	mixed := append(append([]Request(nil), trace...), plain...)
	per = SummarizeTenants(mixed)
	if per[""].N != 5 {
		t.Fatalf("untagged partition has %d, want 5", per[""].N)
	}
}
