// Multi-tenant mixes: several tenants, each with its own dataset, arrival
// process, and volume, interleaved into one fleet-facing trace. Per-tenant
// identity survives into serving results so reports can partition latency
// by tenant (the fairness axis a shared fleet must be measured on).
package workload

import (
	"fmt"
	"sort"

	"finemoe/internal/rng"
)

// TenantSpec describes one tenant's contribution to a mixed trace.
type TenantSpec struct {
	// Name identifies the tenant in request tags and reports.
	Name string
	// Dataset is the tenant's prompt population.
	Dataset Dataset
	// Arrivals shapes the tenant's traffic.
	Arrivals ArrivalProcess
	// N is the tenant's request count.
	N int
}

// tenantIDStride separates tenants' request-ID ranges within a mixed
// trace: tenant i draws IDs from (i+1)<<32.
const tenantIDStride uint64 = 1 << 32

// MultiTenantTrace samples every tenant's trace on its own arrival
// process and merges them into one arrival-ordered stream. Request IDs
// are disjoint across tenants, every request is tagged with its tenant's
// name, and ties in arrival time break toward the earlier tenant index,
// so the merge is deterministic.
func MultiTenantTrace(dim int, seed uint64, tenants []TenantSpec) []Request {
	if len(tenants) == 0 {
		panic("workload: MultiTenantTrace requires at least one tenant")
	}
	var merged []Request
	for i, t := range tenants {
		if t.Name == "" {
			panic(fmt.Sprintf("workload: tenant %d has no name", i))
		}
		if t.Arrivals == nil {
			panic(fmt.Sprintf("workload: tenant %q has no arrival process", t.Name))
		}
		merged = append(merged, OnlineTrace(t.Dataset, dim, OnlineOptions{
			Arrivals: t.Arrivals,
			N:        t.N,
			Seed:     rng.Mix(seed, uint64(i)),
			IDBase:   uint64(i+1) * tenantIDStride,
			Tenant:   t.Name,
		})...)
	}
	// Stable sort on arrival time: equal arrivals keep concatenation
	// (tenant-index) order.
	sort.SliceStable(merged, func(a, b int) bool {
		return merged[a].ArrivalMS < merged[b].ArrivalMS
	})
	return merged
}
