// Adversarial tenant profile: the stress shape fault experiments lean
// on. A well-behaved fleet mostly sees Poisson-ish traffic with modest
// prompts; the abusive tenant instead alternates near-silence with
// hammering burst loops and ships oversized, topically scattered
// prompts, maximizing queue pressure and cache thrash per request. The
// faultfig experiment uses it as the background stressor while crashes
// and brownouts land.
package workload

// AbusiveBurstLoop is an MMPP tuned as a burst loop with mean rate
// ratePerSec: long near-silent stretches (rate/8) punctuated by bursts
// at 10× the mean rate — roughly 9% of the time in bursts carrying ~70%
// of the traffic, far more overdispersed than BurstyMMPP.
func AbusiveBurstLoop(ratePerSec float64) MMPP {
	return MMPP{
		LowRate:  ratePerSec / 8,
		HighRate: 10 * ratePerSec,
		MeanLowS: 10 / ratePerSec, MeanHighS: 1 / ratePerSec,
	}
}

// AdversarialDataset is a prompt population sized to abuse: prompts and
// generations several times the usual mean with heavy-tailed lengths,
// spread across many weakly clustered topics so consecutive requests
// share few experts.
func AdversarialDataset(seed uint64) Dataset {
	return Dataset{
		Name: "adversarial", Topics: 32, TopicSpread: 0.6,
		MeanInput: 48, MeanOutput: 24, LenSigma: 0.9, Seed: seed,
	}
}

// AdversarialTenant assembles the abusive tenant for multi-tenant mixes:
// n oversized requests arriving on a burst loop with mean rate
// ratePerSec.
func AdversarialTenant(name string, ratePerSec float64, n int, seed uint64) TenantSpec {
	return TenantSpec{
		Name:     name,
		Dataset:  AdversarialDataset(seed),
		Arrivals: AbusiveBurstLoop(ratePerSec),
		N:        n,
	}
}
