package workload

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	d := LMSYSChat1M()
	orig := AzureTrace(d, 16, TraceConfig{RatePerSec: 5, N: 12, Seed: 3})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, d, 16, orig); err != nil {
		t.Fatal(err)
	}
	gotDS, got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotDS.Name != d.Name || gotDS.Topics != d.Topics {
		t.Fatalf("dataset metadata lost: %+v", gotDS)
	}
	if len(got) != len(orig) {
		t.Fatalf("length %d != %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].ID != orig[i].ID || got[i].Topic != orig[i].Topic ||
			got[i].InputTokens != orig[i].InputTokens ||
			got[i].OutputTokens != orig[i].OutputTokens ||
			got[i].ArrivalMS != orig[i].ArrivalMS ||
			got[i].Seed != orig[i].Seed {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, got[i], orig[i])
		}
		for j := range got[i].Embedding {
			if got[i].Embedding[j] != orig[i].Embedding[j] {
				t.Fatalf("request %d embedding mismatch", i)
			}
		}
	}
}

// TestTraceRoundTripSessionTenant: multi-turn and multi-tenant identity
// survives persistence — a replayed mix still partitions per tenant and
// keeps session threads intact.
func TestTraceRoundTripSessionTenant(t *testing.T) {
	mixed := MultiTenantTrace(16, 5, testTenants())
	sess := NewSessions(LMSYSChat1M(), 16,
		SessionConfig{MeanTurns: 2, ThinkTimeS: 1, Drift: 0.05}, 8)
	opener := sess.Initial(Poisson{RatePerSec: 4}, 1, uint64(len(mixed)+1)<<32)[0]
	opener.ArrivalMS = mixed[len(mixed)-1].ArrivalMS + 1
	mixed = append(mixed, opener)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, LMSYSChat1M(), 16, mixed); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Tenant != mixed[i].Tenant || got[i].Session != mixed[i].Session ||
			got[i].Turn != mixed[i].Turn {
			t.Fatalf("session/tenant identity lost at %d: %+v vs %+v", i, got[i], mixed[i])
		}
		// Multi-tenant mixes blend datasets; each request must keep its
		// own, not be relabeled to the file's dataset.
		if got[i].Dataset != mixed[i].Dataset {
			t.Fatalf("dataset identity lost at %d: %q vs %q", i, got[i].Dataset, mixed[i].Dataset)
		}
	}
	per := SummarizeTenants(got)
	if per["steady"].N != 30 || per["bursty"].N != 20 {
		t.Fatalf("replayed tenant partition wrong: %v", per)
	}
}

func TestReadTraceRejectsCorruption(t *testing.T) {
	d := LMSYSChat1M()
	reqs := d.Sample(Options{Dim: 8, N: 3, Seed: 1})

	write := func(mutate func(*traceFile)) string {
		tf := traceFile{Version: 1, Dataset: d, Dim: 8}
		for _, q := range reqs {
			tf.Requests = append(tf.Requests, requestEntry{
				ID: q.ID, Topic: q.Topic, Embedding: q.Embedding,
				InputTokens: q.InputTokens, OutputTokens: q.OutputTokens, Seed: q.Seed,
			})
		}
		mutate(&tf)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tf.Dataset, tf.Dim, nil); err != nil {
			t.Fatal(err)
		}
		// Re-encode manually to keep the mutation (WriteTrace rebuilds).
		buf.Reset()
		if err := json.NewEncoder(&buf).Encode(tf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	cases := map[string]string{
		"bad version": write(func(tf *traceFile) { tf.Version = 9 }),
		"bad dim":     write(func(tf *traceFile) { tf.Dim = 0 }),
		"dup id":      write(func(tf *traceFile) { tf.Requests[1].ID = tf.Requests[0].ID }),
		"zero tokens": write(func(tf *traceFile) { tf.Requests[0].InputTokens = 0 }),
		"dim mismatch": write(func(tf *traceFile) {
			tf.Requests[0].Embedding = tf.Requests[0].Embedding[:4]
		}),
		"arrival backwards": write(func(tf *traceFile) {
			tf.Requests[0].ArrivalMS = 10
			tf.Requests[1].ArrivalMS = 5
		}),
		"not json": "{",
	}
	for name, payload := range cases {
		if _, _, err := ReadTrace(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestReadTraceReplayable(t *testing.T) {
	// A round-tripped trace must simulate identically to the original.
	d := ShareGPT()
	orig := d.Sample(Options{Dim: 16, N: 2, Seed: 9})
	for i := range orig {
		orig[i].InputTokens, orig[i].OutputTokens = 4, 3
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, d, 16, orig); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].PromptSpec.Seed != orig[0].PromptSpec.Seed {
		t.Fatal("prompt seeds differ; replay would diverge")
	}
}
