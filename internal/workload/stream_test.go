package workload

import (
	"bytes"
	"reflect"
	"testing"
)

// streamShapes are the arrival processes the parity tests sweep.
func streamShapes() map[string]ArrivalProcess {
	return map[string]ArrivalProcess{
		"poisson": Poisson{RatePerSec: 4},
		"mmpp":    BurstyMMPP(4),
		"diurnal": DiurnalSwing(4),
		"flash":   FlashSpike(4),
		"abusive": AbusiveBurstLoop(4),
	}
}

// TestArrivalStreamMatchesTimes pins stream ≡ Times for every shape: the
// incremental generators must replay the materializing loops bit for bit.
func TestArrivalStreamMatchesTimes(t *testing.T) {
	const n = 500
	for name, p := range streamShapes() {
		want := p.Times(n, 77)
		s := p.(ArrivalStreamer).Stream(77)
		for i, w := range want {
			if got := s.Next(); got != w {
				t.Fatalf("%s: arrival %d: stream %v != Times %v", name, i, got, w)
			}
		}
	}
}

// fixedArrivals is an ArrivalProcess that does not implement
// ArrivalStreamer, to exercise StreamArrivals' materializing fallback.
type fixedArrivals struct{}

func (fixedArrivals) Name() string { return "fixed" }
func (fixedArrivals) Times(n int, seed uint64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * 10
	}
	return out
}

func TestStreamArrivalsFallback(t *testing.T) {
	s := StreamArrivals(fixedArrivals{}, 1, 4)
	for i := 0; i < 4; i++ {
		if got, want := s.Next(), float64(i)*10; got != want {
			t.Fatalf("fallback arrival %d: got %v want %v", i, got, want)
		}
	}
}

// TestStreamOnlineMatchesOnlineTrace pins the tentpole parity: for every
// arrival shape, the streamed request sequence equals the materialized
// trace field for field, embeddings included.
func TestStreamOnlineMatchesOnlineTrace(t *testing.T) {
	d := LMSYSChat1M()
	for name, p := range streamShapes() {
		opt := OnlineOptions{Arrivals: p, N: 200, Seed: 9, Tenant: "t0"}
		want := OnlineTrace(d, 16, opt)
		got := Collect(StreamOnline(d, 16, opt))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: streamed trace diverges from OnlineTrace", name)
		}
	}
}

func TestStreamAzureTraceMatches(t *testing.T) {
	d := ShareGPT()
	tc := TraceConfig{RatePerSec: 2.91, N: 128, Seed: 3}
	want := AzureTrace(d, 16, tc)
	got := Collect(StreamAzureTrace(d, 16, tc))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed Azure trace diverges from AzureTrace")
	}
}

func TestStreamInitialMatchesSessions(t *testing.T) {
	s := NewSessions(LMSYSChat1M(), 16, SessionConfig{MeanTurns: 3, Drift: 0.05}, 21)
	want := s.Initial(Poisson{RatePerSec: 4}, 100, 0)
	got := Collect(s.StreamInitial(Poisson{RatePerSec: 4}, 100, 0))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed session openers diverge from Initial")
	}
}

func TestStreamMultiTenantMatches(t *testing.T) {
	tenants := []TenantSpec{
		{Name: "lmsys", Dataset: LMSYSChat1M(), Arrivals: Poisson{RatePerSec: 4}, N: 80},
		{Name: "sharegpt", Dataset: ShareGPT(), Arrivals: BurstyMMPP(6), N: 60},
		AdversarialTenant("abuser", 3, 40, 5),
	}
	want := MultiTenantTrace(16, 13, tenants)
	got := Collect(StreamMultiTenant(16, 13, tenants))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed multi-tenant trace diverges from MultiTenantTrace")
	}
}

func TestSliceSourceRoundTrip(t *testing.T) {
	trace := AzureTrace(LMSYSChat1M(), 8, TraceConfig{RatePerSec: 4, N: 32, Seed: 1})
	got := Collect(NewSliceSource(trace))
	if !reflect.DeepEqual(got, trace) {
		t.Fatal("SliceSource does not replay its slice")
	}
	// Exhausted sources stay exhausted.
	src := NewSliceSource(trace)
	Collect(src)
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted SliceSource yielded a request")
	}
}

// TestArenaRowCapped verifies arena rows are full-slice-capped: appending
// through one row must reallocate, never clobber the next row.
func TestArenaRowCapped(t *testing.T) {
	a := NewArena(4)
	r1, r2 := a.Row(), a.Row()
	if cap(r1) != 4 || cap(r2) != 4 {
		t.Fatalf("arena rows not capped at dim: caps %d, %d", cap(r1), cap(r2))
	}
	r2[0] = 7
	_ = append(r1, 99)
	if r2[0] != 7 {
		t.Fatal("append through row 1 clobbered row 2")
	}
}

// TestReadTraceArenaBacked is the persistence regression test: a
// round-tripped trace must be value-identical to the original, and the
// returned embeddings must have the arena layout (dim-capped rows) rather
// than keeping the decoder's oversized per-request slices alive.
func TestReadTraceArenaBacked(t *testing.T) {
	d := LMSYSChat1M()
	orig := Collect(StreamOnline(d, 8, OnlineOptions{
		Arrivals: BurstyMMPP(4), N: 50, Seed: 17, Tenant: "t",
	}))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, d, 8, orig); err != nil {
		t.Fatal(err)
	}
	gotD, got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotD.Name != d.Name {
		t.Fatalf("dataset name %q != %q", gotD.Name, d.Name)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatal("round-tripped trace diverges from original")
	}
	for i, q := range got {
		if cap(q.Embedding) != 8 {
			t.Fatalf("request %d: embedding cap %d, want arena row cap 8", i, cap(q.Embedding))
		}
	}
}
