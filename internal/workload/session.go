// Multi-turn sessions: conversations whose follow-up turns arrive only
// after the previous turn completes (closed-loop), stay semantically close
// to it, and therefore exercise exactly the machinery fMoE's semantic
// locality argument relies on — Expert Map Store reuse and fleet-level
// semantic-affinity routing.
package workload

import (
	"fmt"
	"math"

	"finemoe/internal/rng"
	"finemoe/internal/tensor"
)

// SessionConfig shapes multi-turn conversations.
type SessionConfig struct {
	// MeanTurns is the mean session length in turns. Lengths are
	// geometric: after every turn the session continues with probability
	// 1 − 1/MeanTurns, so MeanTurns ≤ 1 means single-turn sessions.
	MeanTurns float64
	// MaxTurns caps a session's length (0 = 16).
	MaxTurns int
	// ThinkTimeS is the mean exponential think time between a turn's
	// completion and the follow-up's arrival, in seconds.
	ThinkTimeS float64
	// Drift is the per-turn embedding drift: each follow-up's embedding is
	// the parent's nudged by Drift×(unit noise) and renormalized, so small
	// values keep the conversation inside its semantic neighborhood.
	Drift float64
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.MaxTurns <= 0 {
		c.MaxTurns = 16
	}
	if c.ThinkTimeS <= 0 {
		c.ThinkTimeS = 2
	}
	if c.Drift < 0 {
		c.Drift = 0
	}
	return c
}

// sessionSalt namespaces per-turn follow-up sampling.
const sessionSalt uint64 = 0x5e55

// turnIDStride separates the request IDs of a session's turns: turn k of
// session s has ID s + k·turnIDStride, unique while initial IDs stay below
// the stride and sessions below MaxTurns turns.
const turnIDStride uint64 = 1 << 48

// Sessions generates multi-turn session workloads over a dataset. The
// opening turns form an ordinary arrival-process trace; follow-ups are
// produced one at a time by FollowUp as the serving system completes
// parents (closed-loop — see cluster.Options.FollowUp).
type Sessions struct {
	d    Dataset
	dim  int
	cfg  SessionConfig
	seed uint64
}

// NewSessions builds a session generator. Determinism: every sampled
// quantity is keyed on (seed, session, turn), so follow-ups do not depend
// on generation order.
func NewSessions(d Dataset, dim int, cfg SessionConfig, seed uint64) *Sessions {
	if dim <= 0 {
		panic(fmt.Sprintf("workload: invalid session dim %d", dim))
	}
	return &Sessions{d: d, dim: dim, cfg: cfg.withDefaults(), seed: seed}
}

// Initial samples n session-opening requests (turn 0) with arrival times
// from the given process. Each request's Session is its own ID, so
// follow-ups inherit the thread identity.
func (s *Sessions) Initial(ap ArrivalProcess, n int, idBase uint64) []Request {
	reqs := OnlineTrace(s.d, s.dim, OnlineOptions{
		Arrivals: ap, N: n, Seed: s.seed, IDBase: idBase,
	})
	for i := range reqs {
		reqs[i].Session = reqs[i].ID
		reqs[i].Turn = 0
	}
	return reqs
}

// FollowUp returns the next turn of the parent's session, arriving an
// exponential think time after doneMS (the parent's completion time), or
// ok=false when the session ends. The follow-up's embedding is the
// parent's drifted by cfg.Drift, its lengths are fresh dataset samples,
// and its topic, dataset and tenant carry over.
func (s *Sessions) FollowUp(parent Request, doneMS float64) (Request, bool) {
	turn := parent.Turn + 1
	if turn >= s.cfg.MaxTurns || s.cfg.MeanTurns <= 1 {
		return Request{}, false
	}
	r := rng.New(rng.Mix(s.seed, parent.Session, uint64(turn), sessionSalt))
	if r.Float64() >= 1-1/s.cfg.MeanTurns {
		return Request{}, false
	}

	emb := tensor.Copy(parent.Embedding)
	if s.cfg.Drift > 0 {
		noise := make([]float64, len(emb))
		r.UnitVec(noise)
		tensor.Axpy(s.cfg.Drift, noise, emb)
		tensor.Normalize(emb)
	}

	in := sampleLen(r, s.d.MeanInput, s.d.LenSigma, 4, 2048)
	out := sampleLen(r, s.d.MeanOutput, s.d.LenSigma, 2, 1024)
	id := parent.ID + turnIDStride
	q := parent
	q.ID = id
	q.Seed = rng.Mix(s.seed, id, sessionSalt)
	q.Embedding = emb
	q.InputTokens = in
	q.OutputTokens = out
	q.Turn = turn
	q.ArrivalMS = doneMS + r.Exp(1/s.cfg.ThinkTimeS)*1000
	if math.IsNaN(q.ArrivalMS) || q.ArrivalMS < doneMS {
		q.ArrivalMS = doneMS
	}
	return q, true
}
