package workload

import "testing"

// TestAbusiveBurstLoop: the abusive profile keeps the contract of the
// rate-parameterized presets (mean rate ≈ nominal) while being markedly
// more overdispersed than the standard bursty preset, and its dataset
// ships oversized prompts.
func TestAbusiveBurstLoop(t *testing.T) {
	const rate = 20.0
	abusive := AbusiveBurstLoop(rate)
	if m := abusive.MeanRate(); m < 0.7*rate || m > 1.3*rate {
		t.Fatalf("mean rate %v strays from nominal %v", m, rate)
	}
	n := 4000
	span := func(ts []float64) float64 { return ts[len(ts)-1] }
	at := abusive.Times(n, 7)
	bt := BurstyMMPP(rate).Times(n, 7)
	ad := IndexOfDispersion(at, span(at)/64)
	bd := IndexOfDispersion(bt, span(bt)/64)
	if ad <= bd {
		t.Fatalf("abusive dispersion %v not above bursty %v", ad, bd)
	}

	d := AdversarialDataset(3)
	reqs := d.Sample(Options{Dim: 8, N: 200, Seed: 3, IDBase: 1 << 32})
	var in int
	for _, q := range reqs {
		in += q.InputTokens
	}
	if mean := float64(in) / float64(len(reqs)); mean < 0.8*float64(d.MeanInput) {
		t.Fatalf("adversarial mean input %v far below the declared %d", mean, d.MeanInput)
	}

	spec := AdversarialTenant("abuser", rate, 50, 11)
	if spec.Name != "abuser" || spec.N != 50 || spec.Arrivals.Name() != "mmpp" {
		t.Fatalf("tenant spec wrong: %+v", spec)
	}
	trace := MultiTenantTrace(8, 1, []TenantSpec{spec})
	if len(trace) != 50 || trace[0].Tenant != "abuser" {
		t.Fatalf("trace len %d tenant %q", len(trace), trace[0].Tenant)
	}
}
