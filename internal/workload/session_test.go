package workload

import (
	"math"
	"testing"

	"finemoe/internal/tensor"
)

func testSessions() *Sessions {
	return NewSessions(LMSYSChat1M(), 32,
		SessionConfig{MeanTurns: 3, ThinkTimeS: 1, Drift: 0.05}, 77)
}

// TestSessionInitial: openers are a plain trace with session identity.
func TestSessionInitial(t *testing.T) {
	s := testSessions()
	reqs := s.Initial(Poisson{RatePerSec: 4}, 20, 0)
	if len(reqs) != 20 {
		t.Fatalf("got %d openers", len(reqs))
	}
	for i, q := range reqs {
		if q.Session != q.ID || q.Turn != 0 {
			t.Fatalf("opener %d: session %d / turn %d, want own ID / 0", i, q.Session, q.Turn)
		}
		if i > 0 && q.ArrivalMS < reqs[i-1].ArrivalMS {
			t.Fatalf("opener arrivals decrease at %d", i)
		}
	}
}

// TestSessionFollowUpSemantics: a follow-up arrives after its parent
// completes, stays in the parent's session and semantic neighborhood, and
// keeps the parent's topic, dataset and tenant.
func TestSessionFollowUpSemantics(t *testing.T) {
	s := testSessions()
	openers := s.Initial(Poisson{RatePerSec: 4}, 30, 0)
	var parent, fu Request
	found := false
	for _, parent = range openers {
		parent.Tenant = "acme"
		var ok bool
		if fu, ok = s.FollowUp(parent, 5000); ok {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no session continued past turn 0 in 30 openers")
	}
	if fu.Session != parent.Session || fu.Turn != parent.Turn+1 {
		t.Fatalf("follow-up thread identity wrong: %d/%d", fu.Session, fu.Turn)
	}
	if fu.ArrivalMS < 5000 {
		t.Fatalf("follow-up arrives at %.1f, before parent completion", fu.ArrivalMS)
	}
	if fu.ID == parent.ID {
		t.Fatal("follow-up reused parent ID")
	}
	if fu.Topic != parent.Topic || fu.Dataset != parent.Dataset || fu.Tenant != "acme" {
		t.Fatal("follow-up lost workload metadata")
	}
	if sim := tensor.Cosine(fu.Embedding, parent.Embedding); sim < 0.95 {
		t.Fatalf("follow-up drifted too far: cosine %.3f", sim)
	}
	if math.Abs(tensor.Norm(fu.Embedding)-1) > 1e-9 {
		t.Fatalf("follow-up embedding not unit norm")
	}
}

// TestSessionFollowUpDeterminism: follow-ups are a pure function of
// (seed, session, turn, completion time) — regeneration reproduces them.
func TestSessionFollowUpDeterminism(t *testing.T) {
	s := testSessions()
	parent := s.Initial(Poisson{RatePerSec: 4}, 1, 0)[0]
	a, okA := s.FollowUp(parent, 1234)
	b, okB := s.FollowUp(parent, 1234)
	if okA != okB {
		t.Fatal("follow-up continuation not deterministic")
	}
	if okA && (a.ID != b.ID || a.ArrivalMS != b.ArrivalMS || a.InputTokens != b.InputTokens) {
		t.Fatal("follow-up not deterministic")
	}
}

// TestSessionMeanTurns: over many sessions, the expected number of turns
// tracks the configured geometric mean.
func TestSessionMeanTurns(t *testing.T) {
	s := testSessions()
	openers := s.Initial(Poisson{RatePerSec: 4}, 400, 0)
	total := 0
	for _, q := range openers {
		turns := 1
		cur := q
		for {
			fu, ok := s.FollowUp(cur, cur.ArrivalMS+1000)
			if !ok {
				break
			}
			turns++
			cur = fu
		}
		total += turns
	}
	mean := float64(total) / float64(len(openers))
	if math.Abs(mean-3)/3 > 0.15 {
		t.Errorf("mean session length %.2f turns, want ~3", mean)
	}
}

// TestSessionMaxTurns: the cap ends even always-continue sessions.
func TestSessionMaxTurns(t *testing.T) {
	s := NewSessions(LMSYSChat1M(), 16,
		SessionConfig{MeanTurns: 1e9, MaxTurns: 4, ThinkTimeS: 1}, 3)
	cur := s.Initial(Poisson{RatePerSec: 4}, 1, 0)[0]
	turns := 1
	for {
		fu, ok := s.FollowUp(cur, cur.ArrivalMS+100)
		if !ok {
			break
		}
		turns++
		cur = fu
		if turns > 10 {
			t.Fatal("session exceeded MaxTurns without ending")
		}
	}
	if turns != 4 {
		t.Fatalf("session ran %d turns, want MaxTurns=4", turns)
	}
}

// TestSingleTurnSessions: MeanTurns ≤ 1 never continues.
func TestSingleTurnSessions(t *testing.T) {
	s := NewSessions(LMSYSChat1M(), 16, SessionConfig{MeanTurns: 1}, 3)
	q := s.Initial(Poisson{RatePerSec: 4}, 1, 0)[0]
	if _, ok := s.FollowUp(q, 100); ok {
		t.Fatal("MeanTurns=1 session continued")
	}
}
