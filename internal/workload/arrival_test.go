package workload

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"finemoe/internal/rng"
)

// testProcesses enumerates every arrival process at a common 4 req/s mean
// rate, with the rate each one should empirically deliver (flash-crowd is
// non-stationary, so its expected rate is bracketed separately).
func testProcesses() []ArrivalProcess {
	return []ArrivalProcess{
		Poisson{RatePerSec: 4},
		BurstyMMPP(4),
		DiurnalSwing(4),
		FlashSpike(4),
	}
}

// TestArrivalTimesNonDecreasing: every process's timeline is
// non-decreasing and strictly positive, across seeds.
func TestArrivalTimesNonDecreasing(t *testing.T) {
	for _, ap := range testProcesses() {
		f := func(seed uint64) bool {
			times := ap.Times(200, seed)
			if len(times) != 200 {
				return false
			}
			prev := 0.0
			for _, x := range times {
				if x <= 0 || x < prev || math.IsNaN(x) || math.IsInf(x, 0) {
					return false
				}
				prev = x
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s: %v", ap.Name(), err)
		}
	}
}

// empiricalRate measures arrivals per second over the generated span.
func empiricalRate(times []float64) float64 {
	return float64(len(times)) / (times[len(times)-1] / 1000)
}

// TestArrivalMeanRate: the stationary processes deliver their configured
// long-run mean rate within sampling tolerance.
func TestArrivalMeanRate(t *testing.T) {
	const n = 20000
	for _, tc := range []struct {
		ap   ArrivalProcess
		want float64
	}{
		{Poisson{RatePerSec: 4}, 4},
		{BurstyMMPP(4), BurstyMMPP(4).MeanRate()},
		{DiurnalSwing(4), DiurnalSwing(4).MeanRate()},
	} {
		got := empiricalRate(tc.ap.Times(n, 17))
		if math.Abs(got-tc.want)/tc.want > 0.1 {
			t.Errorf("%s: empirical rate %.2f, want ~%.2f", tc.ap.Name(), got, tc.want)
		}
	}
	// The MMPP preset's stationary rate must equal the requested rate by
	// construction.
	if r := BurstyMMPP(4).MeanRate(); math.Abs(r-4) > 1e-9 {
		t.Errorf("BurstyMMPP(4).MeanRate() = %v, want 4", r)
	}
}

// TestFlashCrowdSpike: flash-crowd is non-stationary — the decay window
// right after onset must carry far more traffic than a background window
// of the same length, while the long-run rate relaxes back toward the
// background rate. Counts are averaged over seeds to tame Poisson noise.
func TestFlashCrowdSpike(t *testing.T) {
	f := FlashSpike(4)
	var spike, background float64
	const seeds = 10
	for seed := uint64(0); seed < seeds; seed++ {
		for _, x := range f.Times(2000, seed) {
			tS := x / 1000
			switch {
			case tS >= f.SpikeAtS && tS < f.SpikeAtS+f.DecayS:
				spike++
			case tS >= f.SpikeAtS+10*f.DecayS && tS < f.SpikeAtS+11*f.DecayS:
				background++
			}
		}
	}
	spike /= seeds
	background /= seeds
	// Expected spike-window count: base·decay·(1+(mult−1)(1−1/e)) ≈ 16.6
	// vs ≈ 4 in a background window.
	if spike < 2*background {
		t.Errorf("spike window carries %.1f arrivals vs background %.1f, want ≥ 2x", spike, background)
	}
	expected := f.BaseRatePerSec * f.DecayS
	if math.Abs(background-expected)/expected > 0.5 {
		t.Errorf("background window %.1f arrivals, want ~%.1f", background, expected)
	}
	// Long-run: the spike's extra mass washes out, so the empirical rate
	// relaxes to the background rate.
	got := empiricalRate(f.Times(5000, 21))
	if math.Abs(got-f.BaseRatePerSec)/f.BaseRatePerSec > 0.15 {
		t.Errorf("long-run flash-crowd rate %.2f, want ~%.2f", got, f.BaseRatePerSec)
	}
}

// TestArrivalDeterminism: a fixed seed reproduces the timeline
// byte-identically; a different seed does not.
func TestArrivalDeterminism(t *testing.T) {
	for _, ap := range testProcesses() {
		a := ap.Times(500, 42)
		b := ap.Times(500, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: times diverge at %d for equal seeds", ap.Name(), i)
			}
		}
		c := ap.Times(500, 43)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical timelines", ap.Name())
		}
	}
}

// TestThinLongHorizonAccuracy: thin's compensated clock stays within a
// rounding of the exact (200-bit) prefix sum of its gap stream at a
// million-candidate horizon, and is never worse than naive float64
// accumulation. A flat rate function makes every candidate an arrival, so
// output i is exactly prefix sum i and the reference can replay the same
// rng draws (gap, then acceptance) side by side.
func TestThinLongHorizonAccuracy(t *testing.T) {
	const n = 1_000_000
	const rateMax = 8.0
	flat := func(float64) float64 { return rateMax }
	times := thin(n, 99, rateMax, flat)
	if len(times) != n {
		t.Fatalf("flat-rate thinning dropped candidates: %d of %d", len(times), n)
	}

	r := rng.New(99)
	exact := new(big.Float).SetPrec(200)
	gap := new(big.Float).SetPrec(200)
	var naive float64
	for i := 0; i < n; i++ {
		g := r.Exp(rateMax)
		r.Float64() // thin's acceptance draw
		naive += g
		exact.Add(exact, gap.SetFloat64(g))
		if i == n/2 || i == n-1 {
			ref, _ := exact.Float64()
			got := times[i] / 1000
			kahanErr := math.Abs(got - ref)
			naiveErr := math.Abs(naive - ref)
			if kahanErr > naiveErr {
				t.Errorf("at %d: compensated error %.3g exceeds naive %.3g", i, kahanErr, naiveErr)
			}
			// Within a few ULPs of the exact sum, horizon-independent.
			if bound := 4 * (math.Nextafter(ref, math.Inf(1)) - ref); kahanErr > bound {
				t.Errorf("at %d: compensated clock off by %.3g (> %.3g)", i, kahanErr, bound)
			}
		}
	}
}

// TestThinLongHorizonDeterminism: the thinned processes reproduce a
// 200k-arrival timeline byte-identically — the long-horizon variant of
// TestArrivalDeterminism, guarding the 1M-scale cluster benches.
func TestThinLongHorizonDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon determinism sweep")
	}
	for _, ap := range []ArrivalProcess{DiurnalSwing(4), FlashSpike(4)} {
		a := ap.Times(200_000, 7)
		b := ap.Times(200_000, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: long-horizon timelines diverge at %d", ap.Name(), i)
			}
		}
		if a[len(a)-1] <= a[0] {
			t.Fatalf("%s: degenerate long-horizon timeline", ap.Name())
		}
	}
}

// TestMMPPBurstiness: the defining property — MMPP counts are
// overdispersed (index of dispersion > 1) and clearly burstier than a
// Poisson process of the same mean rate.
func TestMMPPBurstiness(t *testing.T) {
	const n = 20000
	m := BurstyMMPP(4)
	// Window ≈ 10 mean inter-arrival gaps, well inside the state holding
	// times so bursts show up as count variance.
	window := 10.0 / 4 * 1000
	mmppD := IndexOfDispersion(m.Times(n, 5), window)
	poisD := IndexOfDispersion(Poisson{RatePerSec: 4}.Times(n, 5), window)
	if mmppD <= 1 {
		t.Errorf("MMPP index of dispersion %.2f, want > 1", mmppD)
	}
	if mmppD <= poisD*1.5 {
		t.Errorf("MMPP dispersion %.2f not clearly above Poisson's %.2f", mmppD, poisD)
	}
	if math.Abs(poisD-1) > 0.3 {
		t.Errorf("Poisson index of dispersion %.2f, want ≈ 1", poisD)
	}
}

// TestAzureTraceMatchesPoissonProcess: the AzureTrace refactor onto
// ArrivalProcess preserved the arrival stream byte for byte (the
// determinism contract every downstream golden depends on).
func TestAzureTraceMatchesPoissonProcess(t *testing.T) {
	d := LMSYSChat1M()
	trace := AzureTrace(d, 8, TraceConfig{RatePerSec: 2.91, N: 64, Seed: 9})
	viaOnline := OnlineTrace(d, 8, OnlineOptions{
		Arrivals: Poisson{RatePerSec: 2.91}, N: 64, Seed: 9,
	})
	for i := range trace {
		if trace[i].ArrivalMS != viaOnline[i].ArrivalMS || trace[i].ID != viaOnline[i].ID {
			t.Fatalf("AzureTrace and OnlineTrace(Poisson) diverge at %d", i)
		}
	}
}

// TestArrivalByName: every flag name resolves, unknown names error.
func TestArrivalByName(t *testing.T) {
	for _, name := range []string{"poisson", "mmpp", "bursty", "diurnal", "flash", "flash-crowd", ""} {
		ap, err := ArrivalByName(name, 4)
		if err != nil || ap == nil {
			t.Errorf("ArrivalByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ArrivalByName("nope", 4); err == nil {
		t.Error("unknown arrival name did not error")
	}
}

// TestArrivalValidation: invalid configurations panic rather than emit
// broken timelines.
func TestArrivalValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { Poisson{}.Times(1, 0) },
		func() { MMPP{LowRate: 1, HighRate: 2, MeanLowS: 1}.Times(1, 0) },
		func() { Diurnal{BaseRatePerSec: 1, Amplitude: 1.5, PeriodS: 10}.Times(1, 0) },
		func() { FlashCrowd{BaseRatePerSec: 1, SpikeMult: 0.5, DecayS: 1}.Times(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid arrival config")
				}
			}()
			bad()
		}()
	}
}

// TestIndexOfDispersionEdges: degenerate inputs return 0 instead of NaN.
func TestIndexOfDispersionEdges(t *testing.T) {
	if d := IndexOfDispersion(nil, 100); d != 0 {
		t.Errorf("nil arrivals: %v", d)
	}
	if d := IndexOfDispersion([]float64{50}, 100); d != 0 {
		t.Errorf("single short arrival: %v", d)
	}
	if d := IndexOfDispersion([]float64{50, 60}, 0); d != 0 {
		t.Errorf("zero window: %v", d)
	}
}
