// Streaming workload generation: the incremental form of every trace
// generator in the package. A materialized trace costs O(N) memory before
// the first request is served; at 10M-request horizons that is gigabytes
// of embeddings the cluster loop only ever touches front-to-back. A
// Source instead yields requests one at a time, in arrival order, from
// O(1) generator state — and, because every generator here consumes its
// RNG streams in exactly the order the materializing generator does, the
// streamed request sequence is byte-identical to the corresponding
// []Request (stream_test.go pins this for every shape).
//
// Embeddings are carved out of a shared Arena: blocks of arenaRows rows
// allocated together, each request's embedding a full-slice-capped row.
// Once the last request referencing a block completes and its bookkeeping
// is dropped, the block is collectible — so a streaming run's embedding
// footprint follows the in-flight window, not the horizon. (The issue
// sketch suggested float32 arena backing; rows stay float64 because every
// committed golden depends on float64 embedding bits end to end, and the
// arena's win is allocation count and lifetime, not element width.)
package workload

import (
	"fmt"

	"finemoe/internal/moe"
	"finemoe/internal/rng"
	"finemoe/internal/tensor"
)

// Source is the streaming form of a request trace: Next yields requests
// in non-decreasing ArrivalMS order until the stream is exhausted
// (ok=false, and forever after). The cluster's shared-clock loop needs
// only one request of lookahead — it peeks the next arrival time to
// schedule against instance events, then consumes the request — so any
// Source drives cluster.RunStream without materializing the horizon.
type Source interface {
	Next() (Request, bool)
}

// SliceSource adapts a materialized trace to the Source interface, so
// every []Request path (file replays, hand-built tests) runs through the
// same streaming loop.
type SliceSource struct {
	reqs []Request
	i    int
}

// NewSliceSource wraps an arrival-sorted trace.
func NewSliceSource(reqs []Request) *SliceSource { return &SliceSource{reqs: reqs} }

// Next implements Source.
//
//finemoe:hotpath
func (s *SliceSource) Next() (Request, bool) {
	if s.i >= len(s.reqs) {
		return Request{}, false
	}
	q := s.reqs[s.i]
	s.i++
	return q, true
}

// --- embedding arena --------------------------------------------------------

// arenaRows is the number of embedding rows per arena block.
const arenaRows = 1024

// Arena carves per-request embedding rows out of shared blocks. Rows are
// full-slice-capped at dim, so appending through one row can never
// clobber its neighbors; the arena itself retains only the current
// block's unused tail, so a block's lifetime is the lifetime of the
// requests whose embeddings live in it.
type Arena struct {
	dim  int
	free []float64
}

// NewArena builds an arena of dim-length rows.
func NewArena(dim int) *Arena {
	if dim <= 0 {
		panic(fmt.Sprintf("workload: invalid arena dim %d", dim))
	}
	return &Arena{dim: dim}
}

// Row returns the next zeroed row, carving a fresh block only once per
// arenaRows rows; steady-state rows are sub-slices.
func (a *Arena) Row() []float64 {
	if len(a.free) < a.dim {
		a.free = make([]float64, a.dim*arenaRows)
	}
	row := a.free[:a.dim:a.dim]
	a.free = a.free[a.dim:]
	return row
}

// --- incremental arrival processes ------------------------------------------

// ArrivalStream is the incremental form of an ArrivalProcess: Next
// returns the process's next arrival time in milliseconds. A stream
// seeded like Times(n, seed) yields exactly times[0..n-1] — each
// implementation consumes the RNG in the materializing loop's order.
type ArrivalStream interface {
	Next() float64
}

// ArrivalStreamer is the optional streaming face of an ArrivalProcess.
// All four in-package shapes implement it; StreamArrivals falls back to
// materializing Times for processes that do not.
type ArrivalStreamer interface {
	ArrivalProcess
	Stream(seed uint64) ArrivalStream
}

// StreamArrivals returns the incremental form of p. Unknown processes are
// materialized up front (n times), so the fallback still satisfies the
// stream ≡ Times contract.
func StreamArrivals(p ArrivalProcess, seed uint64, n int) ArrivalStream {
	if s, ok := p.(ArrivalStreamer); ok {
		return s.Stream(seed)
	}
	return &sliceArrivals{times: p.Times(n, seed)}
}

type sliceArrivals struct {
	times []float64
	i     int
}

//finemoe:hotpath
func (s *sliceArrivals) Next() float64 {
	t := s.times[s.i]
	s.i++
	return t
}

// Stream implements ArrivalStreamer.
func (p Poisson) Stream(seed uint64) ArrivalStream {
	if p.RatePerSec <= 0 {
		panic("workload: non-positive arrival rate")
	}
	return &poissonStream{r: rng.Seeded(seed), rate: p.RatePerSec}
}

type poissonStream struct {
	r    rng.RNG
	rate float64
	t    float64 // milliseconds, like Times' accumulator
}

//finemoe:hotpath
func (s *poissonStream) Next() float64 {
	s.t += s.r.Exp(s.rate) * 1000
	return s.t
}

// Stream implements ArrivalStreamer.
func (m MMPP) Stream(seed uint64) ArrivalStream {
	if m.LowRate <= 0 || m.HighRate <= 0 || m.MeanLowS <= 0 || m.MeanHighS <= 0 {
		panic(fmt.Sprintf("workload: invalid MMPP %+v", m))
	}
	s := &mmppStream{m: m, r: rng.Seeded(seed)}
	s.holdLeft = s.r.Exp(1 / m.MeanLowS)
	return s
}

type mmppStream struct {
	m        MMPP
	r        rng.RNG
	t        float64 // seconds, like Times' accumulator
	holdLeft float64
	high     bool
}

//finemoe:hotpath
func (s *mmppStream) Next() float64 {
	for {
		rate := s.m.LowRate
		if s.high {
			rate = s.m.HighRate
		}
		gap := s.r.Exp(rate)
		if gap < s.holdLeft {
			s.t += gap
			s.holdLeft -= gap
			return s.t * 1000
		}
		s.t += s.holdLeft
		s.high = !s.high
		mean := s.m.MeanLowS
		if s.high {
			mean = s.m.MeanHighS
		}
		s.holdLeft = s.r.Exp(1 / mean)
	}
}

// Stream implements ArrivalStreamer.
func (d Diurnal) Stream(seed uint64) ArrivalStream {
	if d.BaseRatePerSec <= 0 || d.Amplitude < 0 || d.Amplitude >= 1 || d.PeriodS <= 0 {
		panic(fmt.Sprintf("workload: invalid Diurnal %+v", d))
	}
	return &thinStream{r: rng.Seeded(seed), rateMax: d.BaseRatePerSec * (1 + d.Amplitude), rate: d.rate}
}

// Stream implements ArrivalStreamer.
func (f FlashCrowd) Stream(seed uint64) ArrivalStream {
	if f.BaseRatePerSec <= 0 || f.SpikeMult <= 1 || f.SpikeAtS < 0 || f.DecayS <= 0 {
		panic(fmt.Sprintf("workload: invalid FlashCrowd %+v", f))
	}
	return &thinStream{r: rng.Seeded(seed), rateMax: f.BaseRatePerSec * f.SpikeMult, rate: f.rate}
}

// thinStream is the incremental form of thin: the same Kahan-compensated
// clock and acceptance test, one accepted arrival per Next.
type thinStream struct {
	r       rng.RNG
	rateMax float64
	rate    func(tS float64) float64
	t, comp float64
}

func (s *thinStream) Next() float64 {
	for {
		y := s.r.Exp(s.rateMax) - s.comp
		sum := s.t + y
		s.comp = (sum - s.t) - y
		s.t = sum
		if s.r.Float64()*s.rateMax <= s.rate(s.t) {
			return s.t * 1000
		}
	}
}

// --- streaming trace generators ---------------------------------------------

// sampler draws dataset prompts one at a time, consuming its RNG in
// exactly the order Sample's materializing loop does (topic, unit noise,
// input length, output length — per request, sequentially), so a streamed
// prompt sequence is byte-identical to the sampled slice. Topic
// directions are deterministic per (dataset, topic), so they are cached
// rather than re-derived per request.
type sampler struct {
	d       Dataset
	dim     int
	fixed   bool
	r       rng.RNG
	noise   []float64
	dirs    [][]float64
	arena   *Arena
	optSeed uint64
}

func newSampler(d Dataset, opt Options) *sampler {
	return &sampler{
		d: d, dim: opt.Dim, fixed: opt.FixedLengths,
		r:       rng.Seeded(rng.Mix(d.Seed, opt.Seed, 0xD47A)),
		noise:   make([]float64, opt.Dim),
		dirs:    make([][]float64, d.Topics),
		arena:   NewArena(opt.Dim),
		optSeed: opt.Seed,
	}
}

// next draws the request with the given ID. The embedding is an arena row.
//
//finemoe:allocok derives each topic direction once and amortizes embedding storage through the arena
func (s *sampler) next(id uint64) Request {
	topic := s.d.sampleTopic(&s.r)
	dir := s.dirs[topic]
	if dir == nil {
		dir = s.d.TopicDirection(s.dim, topic)
		s.dirs[topic] = dir
	}
	emb := s.arena.Row()
	copy(emb, dir)
	s.r.UnitVec(s.noise)
	tensor.Axpy(s.d.TopicSpread, s.noise, emb)
	tensor.Normalize(emb)

	in, out := s.d.MeanInput, s.d.MeanOutput
	if !s.fixed {
		in = sampleLen(&s.r, s.d.MeanInput, s.d.LenSigma, 4, 2048)
		out = sampleLen(&s.r, s.d.MeanOutput, s.d.LenSigma, 2, 1024)
	}
	return Request{
		PromptSpec: moe.PromptSpec{
			ID:           id,
			Embedding:    emb,
			InputTokens:  in,
			OutputTokens: out,
			Seed:         rng.Mix(s.d.Seed, s.optSeed, 0x9E4D, id),
		},
		Topic:   topic,
		Dataset: s.d.Name,
	}
}

// StreamOnline is the streaming form of OnlineTrace: the same prompt and
// arrival RNG streams, interleaved per request instead of materialized in
// two passes. The two streams are independently seeded, so interleaving
// preserves each one's draw order and the yielded requests equal
// OnlineTrace's byte for byte.
func StreamOnline(d Dataset, dim int, opt OnlineOptions) Source {
	if opt.Arrivals == nil {
		panic("workload: StreamOnline requires an ArrivalProcess")
	}
	if dim <= 0 || opt.N < 0 {
		panic(fmt.Sprintf("workload: invalid options %+v", opt))
	}
	base := opt.IDBase
	if base == 0 {
		base = 1 << 32
	}
	return &onlineSource{
		s:      newSampler(d, Options{Dim: dim, N: opt.N, Seed: opt.Seed}),
		arr:    StreamArrivals(opt.Arrivals, rng.Mix(d.Seed, opt.Seed, arrivalSalt), opt.N),
		n:      opt.N,
		base:   base,
		tenant: opt.Tenant,
	}
}

// StreamAzureTrace is the streaming form of AzureTrace: StreamOnline
// specialized to the paper's constant-rate Poisson process.
func StreamAzureTrace(d Dataset, dim int, tc TraceConfig) Source {
	if tc.RatePerSec <= 0 {
		panic("workload: non-positive arrival rate")
	}
	return StreamOnline(d, dim, OnlineOptions{
		Arrivals: Poisson{RatePerSec: tc.RatePerSec},
		N:        tc.N, Seed: tc.Seed, IDBase: tc.IDBase,
	})
}

type onlineSource struct {
	s       *sampler
	arr     ArrivalStream
	i, n    int
	base    uint64
	tenant  string
	session bool // tag each request as the opener of its own session
}

// Next implements Source.
//
//finemoe:allocok per-request costs are the sampler's amortized arena and topic-direction allocations
func (o *onlineSource) Next() (Request, bool) {
	if o.i >= o.n {
		return Request{}, false
	}
	q := o.s.next(o.base + uint64(o.i))
	q.ArrivalMS = o.arr.Next()
	q.Tenant = o.tenant
	if o.session {
		q.Session = q.ID
		q.Turn = 0
	}
	o.i++
	return q, true
}

// StreamInitial is the streaming form of Sessions.Initial: n session
// openers (turn 0, Session = own ID) on the given arrival process.
// Follow-up turns stay closed-loop via FollowUp, exactly as with the
// materialized opener trace.
func (s *Sessions) StreamInitial(ap ArrivalProcess, n int, idBase uint64) Source {
	src := StreamOnline(s.d, s.dim, OnlineOptions{
		Arrivals: ap, N: n, Seed: s.seed, IDBase: idBase,
	}).(*onlineSource)
	src.session = true
	return src
}

// StreamMultiTenant is the streaming form of MultiTenantTrace: each
// tenant's stream is generated independently (same per-tenant seeds and
// ID ranges) and k-way merged by arrival time, ties toward the earlier
// tenant index. A stable merge of sorted streams equals the stable sort
// of their concatenation, so the merged sequence is byte-identical to the
// materialized trace.
func StreamMultiTenant(dim int, seed uint64, tenants []TenantSpec) Source {
	if len(tenants) == 0 {
		panic("workload: StreamMultiTenant requires at least one tenant")
	}
	srcs := make([]Source, len(tenants))
	for i, t := range tenants {
		if t.Name == "" {
			panic(fmt.Sprintf("workload: tenant %d has no name", i))
		}
		if t.Arrivals == nil {
			panic(fmt.Sprintf("workload: tenant %q has no arrival process", t.Name))
		}
		srcs[i] = StreamOnline(t.Dataset, dim, OnlineOptions{
			Arrivals: t.Arrivals,
			N:        t.N,
			Seed:     rng.Mix(seed, uint64(i)),
			IDBase:   uint64(i+1) * tenantIDStride,
			Tenant:   t.Name,
		})
	}
	return MergeSources(srcs...)
}

// MergeSources merges arrival-ordered sources into one arrival-ordered
// stream, breaking arrival-time ties toward the lower source index. With
// a handful of sources the per-request linear scan is cheaper than a
// heap and trivially stable.
func MergeSources(srcs ...Source) Source {
	m := &mergeSource{
		srcs:  srcs,
		heads: make([]Request, len(srcs)),
		live:  make([]bool, len(srcs)),
	}
	for i, s := range srcs {
		m.heads[i], m.live[i] = s.Next()
	}
	return m
}

type mergeSource struct {
	srcs  []Source
	heads []Request
	live  []bool
}

// Next implements Source.
func (m *mergeSource) Next() (Request, bool) {
	best := -1
	for i := range m.srcs {
		if m.live[i] && (best < 0 || m.heads[i].ArrivalMS < m.heads[best].ArrivalMS) {
			best = i
		}
	}
	if best < 0 {
		return Request{}, false
	}
	q := m.heads[best]
	m.heads[best], m.live[best] = m.srcs[best].Next()
	return q, true
}

// Collect materializes a source into a slice — the inverse of
// NewSliceSource, used by tests and by callers that need random access
// after streaming generation.
func Collect(src Source) []Request {
	var out []Request
	for {
		q, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, q)
	}
}
