package workload

import (
	"math"
	"testing"
	"testing/quick"

	"finemoe/internal/moe"
	"finemoe/internal/tensor"
)

func TestSampleDeterminism(t *testing.T) {
	d := LMSYSChat1M()
	a := d.Sample(Options{Dim: 16, N: 20, Seed: 1})
	b := d.Sample(Options{Dim: 16, N: 20, Seed: 1})
	for i := range a {
		if a[i].Topic != b[i].Topic || a[i].InputTokens != b[i].InputTokens {
			t.Fatalf("sampling not deterministic at %d", i)
		}
		for j := range a[i].Embedding {
			if a[i].Embedding[j] != b[i].Embedding[j] {
				t.Fatalf("embedding not deterministic at %d", i)
			}
		}
	}
	c := d.Sample(Options{Dim: 16, N: 20, Seed: 2})
	if c[0].Topic == a[0].Topic && c[0].InputTokens == a[0].InputTokens && c[0].Embedding[0] == a[0].Embedding[0] {
		t.Fatal("different seeds produced identical first request")
	}
}

func TestEmbeddingsUnitNorm(t *testing.T) {
	d := ShareGPT()
	for _, q := range d.Sample(Options{Dim: 32, N: 50, Seed: 3}) {
		if math.Abs(tensor.Norm(q.Embedding)-1) > 1e-9 {
			t.Fatalf("embedding not unit norm: %v", tensor.Norm(q.Embedding))
		}
	}
}

func TestFixedLengths(t *testing.T) {
	d := LMSYSChat1M()
	for _, q := range d.Sample(Options{Dim: 16, N: 30, Seed: 4, FixedLengths: true}) {
		if q.InputTokens != 37 || q.OutputTokens != 127 {
			t.Fatalf("fixed lengths violated: %d/%d", q.InputTokens, q.OutputTokens)
		}
	}
}

// TestLengthMeans verifies sampled lengths track the paper's dataset means
// (37/127 LMSYS, 43/122 ShareGPT) within sampling tolerance.
func TestLengthMeans(t *testing.T) {
	for _, d := range PaperDatasets() {
		s := Summarize(d.Sample(Options{Dim: 16, N: 4000, Seed: 5}))
		if math.Abs(s.MeanInput-float64(d.MeanInput))/float64(d.MeanInput) > 0.15 {
			t.Errorf("%s: mean input %.1f vs %d", d.Name, s.MeanInput, d.MeanInput)
		}
		if math.Abs(s.MeanOut-float64(d.MeanOutput))/float64(d.MeanOutput) > 0.15 {
			t.Errorf("%s: mean output %.1f vs %d", d.Name, s.MeanOut, d.MeanOutput)
		}
		if s.MinInput < 4 || s.MinOutput < 2 {
			t.Errorf("%s: lengths below clamp: %+v", d.Name, s)
		}
	}
}

// TestTopicClustering: same-topic prompts must be much closer in cosine than
// cross-topic prompts — the property semantic search relies on.
func TestTopicClustering(t *testing.T) {
	d := LMSYSChat1M()
	reqs := d.Sample(Options{Dim: 64, N: 400, Seed: 6})
	byTopic := map[int][]Request{}
	for _, q := range reqs {
		byTopic[q.Topic] = append(byTopic[q.Topic], q)
	}
	var within, cross []float64
	for _, qs := range byTopic {
		if len(qs) >= 2 {
			within = append(within, tensor.Cosine(qs[0].Embedding, qs[1].Embedding))
		}
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Topic != reqs[0].Topic {
			cross = append(cross, tensor.Cosine(reqs[0].Embedding, reqs[i].Embedding))
			if len(cross) > 50 {
				break
			}
		}
	}
	if len(within) < 5 {
		t.Fatal("not enough same-topic pairs; check Zipf sampling")
	}
	if tensor.Mean(within) < tensor.Mean(cross)+0.5 {
		t.Fatalf("topic clustering weak: within %.3f, cross %.3f", tensor.Mean(within), tensor.Mean(cross))
	}
}

// TestZipfPopularity: topic popularity should be skewed — the most popular
// topic must appear clearly more often than the median one.
func TestZipfPopularity(t *testing.T) {
	d := LMSYSChat1M()
	counts := map[int]int{}
	for _, q := range d.Sample(Options{Dim: 8, N: 3000, Seed: 7}) {
		counts[q.Topic]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	mean := 3000 / d.Topics
	if maxC < 3*mean {
		t.Fatalf("topic popularity not skewed: max %d vs uniform mean %d", maxC, mean)
	}
}

func TestSplit(t *testing.T) {
	d := LMSYSChat1M()
	reqs := d.Sample(Options{Dim: 8, N: 100, Seed: 8})
	store, test := Split(reqs, 0.7)
	if len(store) != 70 || len(test) != 30 {
		t.Fatalf("split sizes %d/%d", len(store), len(test))
	}
	store, test = Split(reqs, 0)
	if len(store) != 0 || len(test) != 100 {
		t.Fatal("zero split wrong")
	}
}

// TestSplitNoAliasing: regression for the shared-backing-array footgun —
// appending to the store half must not clobber the test half's first
// elements (and vice versa), so both halves must be capped at their own
// length.
func TestSplitNoAliasing(t *testing.T) {
	d := LMSYSChat1M()
	reqs := d.Sample(Options{Dim: 8, N: 10, Seed: 21})
	store, test := Split(reqs, 0.5)
	wantTestFirst := test[0].ID
	wantStoreFirst := store[0].ID

	extra := d.Sample(Options{Dim: 8, N: 4, Seed: 22, IDBase: 100})
	store = append(store, extra[0], extra[1])
	test = append(test, extra[2], extra[3])

	if test[0].ID != wantTestFirst {
		t.Fatalf("appending to store clobbered test[0]: ID %d, want %d",
			test[0].ID, wantTestFirst)
	}
	if store[0].ID != wantStoreFirst || store[len(store)-1].ID != extra[1].ID {
		t.Fatal("store append lost its own elements")
	}
	// The original population is untouched by either append.
	for i, q := range reqs {
		if q.ID != d.Sample(Options{Dim: 8, N: 10, Seed: 21})[i].ID {
			t.Fatalf("source slice mutated at %d", i)
		}
	}
}

func TestSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Split(nil, 1.5)
}

// TestAzureTraceRate verifies the Poisson arrival process delivers the
// configured 2.91 req/s within tolerance (paper §6.3).
func TestAzureTraceRate(t *testing.T) {
	d := LMSYSChat1M()
	trace := AzureTrace(d, 16, TraceConfig{RatePerSec: 2.91, N: 2000, Seed: 9})
	s := Summarize(trace)
	if math.Abs(s.RateRPS-2.91)/2.91 > 0.1 {
		t.Fatalf("trace rate %.2f rps, want ~2.91", s.RateRPS)
	}
	// Arrivals must be strictly increasing.
	for i := 1; i < len(trace); i++ {
		if trace[i].ArrivalMS <= trace[i-1].ArrivalMS {
			t.Fatalf("arrivals not increasing at %d", i)
		}
	}
}

func TestAzureTracePanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AzureTrace(LMSYSChat1M(), 8, TraceConfig{RatePerSec: 0, N: 1})
}

func TestRequestsFeedModel(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 1)
	d := LMSYSChat1M()
	for _, q := range d.Sample(Options{Dim: cfg.SemDim, N: 3, Seed: 10}) {
		iters := m.Trace(q.PromptSpec)
		if len(iters) != q.OutputTokens {
			t.Fatalf("trace length %d != output tokens %d", len(iters), q.OutputTokens)
		}
	}
}

func TestUniqueIDs(t *testing.T) {
	d := LMSYSChat1M()
	reqs := d.Sample(Options{Dim: 8, N: 200, Seed: 11})
	more := d.Sample(Options{Dim: 8, N: 200, Seed: 11, IDBase: 200})
	seen := map[uint64]bool{}
	for _, q := range append(reqs, more...) {
		if seen[q.ID] {
			t.Fatalf("duplicate request ID %d", q.ID)
		}
		seen[q.ID] = true
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.RateRPS != 0 || s.Sessions != 0 || s.Tenants != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

// TestSummarizeSingle: a one-request population has sane extrema and no
// rate (no span to divide by).
func TestSummarizeSingle(t *testing.T) {
	q := LMSYSChat1M().Sample(Options{Dim: 8, N: 1, Seed: 31})[0]
	s := Summarize([]Request{q})
	if s.N != 1 || s.Topics != 1 {
		t.Fatalf("single summary %+v", s)
	}
	if s.MinInput != q.InputTokens || s.MaxInput != q.InputTokens {
		t.Fatalf("single extrema wrong: %+v", s)
	}
	if s.RateRPS != 0 || s.DurationMS != 0 {
		t.Fatalf("offline single request has rate/duration: %+v", s)
	}
}

// TestSummarizeSessions: session workloads contribute correct session and
// topic counts — follow-up turns share the opener's session and topic, so
// distinct sessions, not turns, are counted.
func TestSummarizeSessions(t *testing.T) {
	sess := NewSessions(LMSYSChat1M(), 16,
		SessionConfig{MeanTurns: 4, ThinkTimeS: 1, Drift: 0.02}, 9)
	openers := sess.Initial(Poisson{RatePerSec: 4}, 12, 0)
	all := append([]Request(nil), openers...)
	for _, q := range openers {
		cur := q
		for {
			fu, ok := sess.FollowUp(cur, cur.ArrivalMS+500)
			if !ok {
				break
			}
			all = append(all, fu)
			cur = fu
		}
	}
	s := Summarize(all)
	if s.Sessions != 12 {
		t.Fatalf("session count %d, want 12 (turns must not open new sessions)", s.Sessions)
	}
	if s.N <= 12 {
		t.Fatal("no follow-up turns generated; session test is vacuous")
	}
	topics := map[int]bool{}
	for _, q := range openers {
		topics[q.Topic] = true
	}
	if s.Topics != len(topics) {
		t.Fatalf("topic count %d, want %d (follow-ups stay on-topic)", s.Topics, len(topics))
	}
}

// TestSummarizeTenantCount: the tenant counter tracks distinct names.
func TestSummarizeTenantCount(t *testing.T) {
	trace := MultiTenantTrace(8, 3, testTenants())
	if s := Summarize(trace); s.Tenants != 2 {
		t.Fatalf("tenant count %d, want 2", s.Tenants)
	}
	if s := Summarize(trace[:1]); s.Tenants != 1 {
		t.Fatalf("tenant count %d, want 1", s.Tenants)
	}
}

func TestSampleLenProperty(t *testing.T) {
	// Property: sampled counts always within clamps and positive.
	d := LMSYSChat1M()
	f := func(seed uint64) bool {
		reqs := d.Sample(Options{Dim: 4, N: 5, Seed: seed})
		for _, q := range reqs {
			if q.InputTokens < 4 || q.InputTokens > 2048 || q.OutputTokens < 2 || q.OutputTokens > 1024 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
