package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceFile is the on-disk trace format: enough to replay a workload
// deterministically without re-sampling (request embeddings are
// reconstructed from the dataset's topic space plus the stored noise seed).
type traceFile struct {
	Version  int            `json:"version"`
	Dataset  Dataset        `json:"dataset"`
	Dim      int            `json:"dim"`
	Requests []requestEntry `json:"requests"`
}

type requestEntry struct {
	ID           uint64    `json:"id"`
	Topic        int       `json:"topic"`
	Embedding    []float64 `json:"embedding"`
	InputTokens  int       `json:"input_tokens"`
	OutputTokens int       `json:"output_tokens"`
	Seed         uint64    `json:"seed"`
	ArrivalMS    float64   `json:"arrival_ms"`
	// Session/Turn/Tenant carry multi-turn and multi-tenant identity, and
	// Dataset the per-request dataset name where it differs from the
	// file's (multi-tenant mixes blend datasets); omitempty keeps
	// version-1 traces written before these fields byte-compatible.
	Session uint64 `json:"session,omitempty"`
	Turn    int    `json:"turn,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Dataset string `json:"dataset,omitempty"`
}

// WriteTrace serializes a request population to JSON. The dataset metadata
// travels with the trace so a replayer can regenerate topic directions.
func WriteTrace(w io.Writer, d Dataset, dim int, reqs []Request) error {
	tf := traceFile{Version: 1, Dataset: d, Dim: dim}
	for _, q := range reqs {
		e := requestEntry{
			ID: q.ID, Topic: q.Topic, Embedding: q.Embedding,
			InputTokens: q.InputTokens, OutputTokens: q.OutputTokens,
			Seed: q.Seed, ArrivalMS: q.ArrivalMS,
			Session: q.Session, Turn: q.Turn, Tenant: q.Tenant,
		}
		if q.Dataset != d.Name {
			e.Dataset = q.Dataset
		}
		tf.Requests = append(tf.Requests, e)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}

// ReadTrace deserializes a trace written by WriteTrace, validating its
// structural invariants.
func ReadTrace(r io.Reader) (Dataset, []Request, error) {
	var tf traceFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return Dataset{}, nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	if tf.Version != 1 {
		return Dataset{}, nil, fmt.Errorf("workload: unsupported trace version %d", tf.Version)
	}
	if tf.Dim <= 0 {
		return Dataset{}, nil, fmt.Errorf("workload: invalid trace dim %d", tf.Dim)
	}
	reqs := make([]Request, 0, len(tf.Requests))
	seen := make(map[uint64]bool, len(tf.Requests))
	// Embeddings are rebacked onto a shared arena: the decoder's
	// per-request slices (each a separate allocation sized by the JSON
	// token count, not the row) become garbage as soon as decoding
	// finishes, and the returned trace has the same memory layout as a
	// generated one — full-slice-capped rows in shared blocks.
	arena := NewArena(tf.Dim)
	var lastArrival float64
	for i, e := range tf.Requests {
		if len(e.Embedding) != tf.Dim {
			return Dataset{}, nil, fmt.Errorf("workload: request %d embedding dim %d != %d", i, len(e.Embedding), tf.Dim)
		}
		if e.InputTokens <= 0 || e.OutputTokens <= 0 {
			return Dataset{}, nil, fmt.Errorf("workload: request %d has non-positive token counts", i)
		}
		if seen[e.ID] {
			return Dataset{}, nil, fmt.Errorf("workload: duplicate request ID %d", e.ID)
		}
		seen[e.ID] = true
		if e.ArrivalMS < lastArrival {
			return Dataset{}, nil, fmt.Errorf("workload: request %d arrival goes backwards", i)
		}
		lastArrival = e.ArrivalMS
		q := Request{
			Topic: e.Topic, ArrivalMS: e.ArrivalMS, Dataset: tf.Dataset.Name,
			Session: e.Session, Turn: e.Turn, Tenant: e.Tenant,
		}
		if e.Dataset != "" {
			q.Dataset = e.Dataset
		}
		q.ID = e.ID
		q.Embedding = arena.Row()
		copy(q.Embedding, e.Embedding)
		q.InputTokens = e.InputTokens
		q.OutputTokens = e.OutputTokens
		q.Seed = e.Seed
		reqs = append(reqs, q)
	}
	return tf.Dataset, reqs, nil
}
