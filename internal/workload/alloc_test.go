package workload

import (
	"testing"

	"finemoe/internal/raceflag"
)

// TestArrivalStreamZeroAlloc pins the incremental arrival generators at
// zero steady-state allocations: Next advances O(1) accumulator state
// and returns a float64, so any allocation is a regression.
func TestArrivalStreamZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for name, p := range streamShapes() {
		s := p.(ArrivalStreamer).Stream(7)
		var sink float64
		got := testing.AllocsPerRun(2000, func() { sink = s.Next() })
		if got != 0 {
			t.Errorf("%s: arrival stream allocates %.3f per Next, want 0", name, got)
		}
		_ = sink
	}
}

// TestStreamOnlineAmortizedAllocs pins the streaming trace generator's
// steady-state allocation rate. Each Next copies the embedding into an
// arena row (one block allocation per arenaRows requests) and derives
// topic directions at most once per topic, so the amortized rate must
// stay far below one allocation per request — the property that lets a
// 10M-request streaming run hold its heap to the in-flight window.
func TestStreamOnlineAmortizedAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const runs = 4000
	src := StreamOnline(LMSYSChat1M(), 16, OnlineOptions{
		Arrivals: BurstyMMPP(50), N: runs + 100, Seed: 3,
	})
	// Warm the per-topic direction cache and the first arena block so
	// the measured window is pure steady state.
	for i := 0; i < 64; i++ {
		src.Next()
	}
	var sink Request
	got := testing.AllocsPerRun(runs, func() { sink, _ = src.Next() })
	if got > 0.05 {
		t.Errorf("StreamOnline allocates %.4f per Next, want amortized <= 0.05", got)
	}
	_ = sink
}

// TestSliceSourceZeroAlloc pins the materialized-trace adapter at zero
// allocations per Next: it only indexes the backing slice.
func TestSliceSourceZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	trace := OnlineTrace(LMSYSChat1M(), 16, OnlineOptions{
		Arrivals: Poisson{RatePerSec: 40}, N: 3000, Seed: 5,
	})
	src := NewSliceSource(trace)
	var sink Request
	got := testing.AllocsPerRun(2000, func() { sink, _ = src.Next() })
	if got != 0 {
		t.Errorf("SliceSource allocates %.3f per Next, want 0", got)
	}
	_ = sink
}
