package moe

import (
	"math"
	"testing"

	"finemoe/internal/rng"
	"finemoe/internal/tensor"
)

// testPrompt builds a PromptSpec in topic t with within-topic spread sigma.
func testPrompt(cfg Config, id, topic uint64, sigma float64, in, out int) PromptSpec {
	dir := rng.UnitVecFor(cfg.SemDim, 777, topic)
	emb := tensor.Copy(dir)
	noise := make([]float64, cfg.SemDim)
	rng.New(rng.Mix(888, id)).UnitVec(noise)
	tensor.Axpy(sigma, noise, emb)
	tensor.Normalize(emb)
	return PromptSpec{ID: id, Embedding: emb, InputTokens: in, OutputTokens: out, Seed: rng.Mix(999, id)}
}

func TestModelDeterminism(t *testing.T) {
	cfg := Tiny()
	m1 := NewModel(cfg, 1)
	m2 := NewModel(cfg, 1)
	p := testPrompt(cfg, 1, 0, 0.1, 4, 5)
	a := m1.Trace(p)
	b := m2.Trace(p)
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		for l := range a[i].Probs {
			for j := range a[i].Probs[l] {
				if a[i].Probs[l][j] != b[i].Probs[l][j] {
					t.Fatalf("probs diverge at iter %d layer %d expert %d", i, l, j)
				}
			}
		}
	}
}

func TestModelSeedChangesOutput(t *testing.T) {
	cfg := Tiny()
	p := testPrompt(cfg, 1, 0, 0.1, 4, 5)
	a := NewModel(cfg, 1).Trace(p)
	b := NewModel(cfg, 2).Trace(p)
	same := true
	for l := range a[0].Probs {
		for j := range a[0].Probs[l] {
			if a[0].Probs[l][j] != b[0].Probs[l][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different model seeds produced identical gates")
	}
}

func TestIterationShape(t *testing.T) {
	cfg := Tiny()
	m := NewModel(cfg, 1)
	p := testPrompt(cfg, 2, 1, 0.1, 6, 4)
	iters := m.Trace(p)
	if len(iters) != 4 {
		t.Fatalf("iterations = %d, want OutputTokens = 4", len(iters))
	}
	if iters[0].Tokens != 6 {
		t.Fatalf("prefill tokens = %d, want 6", iters[0].Tokens)
	}
	for i, it := range iters {
		if it.Index != i {
			t.Fatalf("iteration index %d != %d", it.Index, i)
		}
		if len(it.Probs) != cfg.Layers || len(it.Active) != cfg.Layers || len(it.Hidden) != cfg.Layers {
			t.Fatal("per-layer slices wrong length")
		}
		if len(it.Semantic) != cfg.SemDim {
			t.Fatal("semantic dim wrong")
		}
		for l := 0; l < cfg.Layers; l++ {
			var sum float64
			for _, v := range it.Probs[l] {
				if v < 0 {
					t.Fatal("negative probability")
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("iter %d layer %d probs sum %v", i, l, sum)
			}
			if i > 0 && len(it.Active[l]) != cfg.TopK {
				t.Fatalf("decode active count %d != TopK", len(it.Active[l]))
			}
			if i == 0 && (len(it.Active[l]) < cfg.TopK || len(it.Active[l]) > cfg.RoutedExperts) {
				t.Fatalf("prefill union size %d out of range", len(it.Active[l]))
			}
			seen := map[int]bool{}
			for _, j := range it.Active[l] {
				if j < 0 || j >= cfg.RoutedExperts || seen[j] {
					t.Fatalf("invalid active set %v", it.Active[l])
				}
				seen[j] = true
			}
		}
	}
}

func TestDecodeActiveMatchesTopProbs(t *testing.T) {
	cfg := Tiny()
	m := NewModel(cfg, 3)
	iters := m.Trace(testPrompt(cfg, 3, 0, 0.1, 4, 3))
	it := iters[1] // decode
	for l := range it.Probs {
		want := tensor.TopK(it.Probs[l], cfg.TopK)
		for i := range want {
			if want[i] != it.Active[l][i] {
				t.Fatalf("active set %v != top-k %v", it.Active[l], want)
			}
		}
	}
}

// TestFineVsCoarseEntropy verifies the paper's Fig. 3b phenomenon: the
// request-level aggregated (coarse) entropy must exceed the iteration-level
// (fine) entropy by a clear margin.
func TestFineVsCoarseEntropy(t *testing.T) {
	for _, cfg := range []Config{Mixtral8x7B(), Qwen15MoE()} {
		cfg := cfg
		m := NewModel(cfg, 7)
		var fineSum, coarseSum float64
		const reqs = 6
		for i := uint64(0); i < reqs; i++ {
			iters := m.Trace(testPrompt(cfg, i, i%3, 0.12, 12, 24))
			fineSum += FineGrainedEntropy(iters)
			coarseSum += CoarseGrainedEntropy(iters)
		}
		fine, coarse := fineSum/reqs, coarseSum/reqs
		if coarse <= fine*1.2 {
			t.Errorf("%s: coarse entropy %.3f not clearly above fine %.3f", cfg.Name, coarse, fine)
		}
		maxEnt := math.Log(float64(cfg.RoutedExperts))
		if fine > 0.75*maxEnt {
			t.Errorf("%s: fine entropy %.3f too close to uniform %.3f — gate not peaked", cfg.Name, fine, maxEnt)
		}
	}
}

// TestEntropyGrowsWithIterations verifies Fig. 3c: aggregating expert
// patterns over more iterations monotonically (in trend) raises entropy and
// plateaus.
func TestEntropyGrowsWithIterations(t *testing.T) {
	cfg := Mixtral8x7B()
	m := NewModel(cfg, 11)
	iters := m.Trace(testPrompt(cfg, 5, 0, 0.12, 12, 51))
	// Fig. 3c aggregates decode iterations; the prefill iteration is a
	// token-averaged distribution that is already blurred.
	curve := EntropyByIteration(iters[1:])
	if len(curve) != 50 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[9] <= curve[0] {
		t.Errorf("entropy did not rise: start %.3f, iter10 %.3f", curve[0], curve[9])
	}
	// Plateau: late growth much smaller than early growth.
	early := curve[9] - curve[0]
	late := curve[49] - curve[39]
	if late > early*0.5 {
		t.Errorf("no plateau: early growth %.3f, late growth %.3f", early, late)
	}
}

// TestEntropyOrderingAcrossModels verifies Fig. 3c's model ordering: the
// aggregated-entropy plateau orders Qwen (60 experts) > Phi (16) > Mixtral (8).
func TestEntropyOrderingAcrossModels(t *testing.T) {
	plateau := func(cfg Config) float64 {
		m := NewModel(cfg, 13)
		var sum float64
		const reqs = 3
		for i := uint64(0); i < reqs; i++ {
			iters := m.Trace(testPrompt(cfg, i, i, 0.12, 10, 30))
			curve := EntropyByIteration(iters)
			sum += curve[len(curve)-1]
		}
		return sum / reqs
	}
	mix := plateau(Mixtral8x7B())
	qwen := plateau(Qwen15MoE())
	phi := plateau(Phi35MoE())
	if !(qwen > phi && phi > mix) {
		t.Errorf("plateau ordering wrong: qwen=%.3f phi=%.3f mixtral=%.3f", qwen, phi, mix)
	}
}

// TestBalancedRouting verifies the §2.3 premise baked into the simulator:
// marginal expert usage across many prompts is near-uniform (load-balancing
// loss), which is what defeats coarse-grained predictors.
func TestBalancedRouting(t *testing.T) {
	cfg := Tiny()
	m := NewModel(cfg, 17)
	var traces [][]*Iteration
	for i := uint64(0); i < 40; i++ {
		traces = append(traces, m.Trace(testPrompt(cfg, i, i%8, 0.15, 6, 10)))
	}
	marginal := MarginalUsage(traces, cfg.RoutedExperts)
	ent := tensor.Entropy(marginal)
	if ent < 0.9*math.Log(float64(cfg.RoutedExperts)) {
		t.Fatalf("marginal usage entropy %.3f too low (marginal %v)", ent, marginal)
	}
}

// TestSemanticSimilarityPredictsOverlap verifies the Fig. 8/9 phenomenon:
// same-topic prompts share substantially more activated experts than
// cross-topic prompts.
func TestSemanticSimilarityPredictsOverlap(t *testing.T) {
	cfg := Mixtral8x7B()
	m := NewModel(cfg, 19)
	overlap := func(a, b []*Iteration) float64 {
		// Compare decode iteration 1 expert sets layer-wise.
		return IterationHitRate(a[1], b[1].Active)
	}
	same1 := m.Trace(testPrompt(cfg, 100, 4, 0.10, 8, 4))
	same2 := m.Trace(testPrompt(cfg, 101, 4, 0.10, 8, 4))
	diff := m.Trace(testPrompt(cfg, 102, 5, 0.10, 8, 4))
	sameOv := overlap(same1, same2)
	diffOv := overlap(same1, diff)
	if sameOv < diffOv+0.2 {
		t.Fatalf("same-topic overlap %.3f not clearly above cross-topic %.3f", sameOv, diffOv)
	}
	if sameOv < 0.6 {
		t.Fatalf("same-topic overlap %.3f too low for map search to work", sameOv)
	}
}

// TestSpeculationAccuracyDecaysWithDistance verifies the Fig. 4 premise:
// predicting layer l's experts from the hidden state at layer l-d gets
// monotonically (in trend) worse as d grows.
func TestSpeculationAccuracyDecaysWithDistance(t *testing.T) {
	cfg := Mixtral8x7B()
	m := NewModel(cfg, 23)
	iters := m.Trace(testPrompt(cfg, 200, 2, 0.1, 8, 6))
	acc := func(d int) float64 {
		var sum float64
		var n int
		probs := make([]float64, cfg.RoutedExperts)
		for _, it := range iters[1:] {
			for l := d; l < cfg.Layers; l++ {
				m.Speculate(it.Hidden[l-d], l, probs)
				pred := tensor.TopK(probs, cfg.TopK)
				sum += tensor.OverlapRatio(it.Active[l], pred)
				n++
			}
		}
		return sum / float64(n)
	}
	a1, a4, a12 := acc(1), acc(4), acc(12)
	if !(a1 > a4 && a4 > a12) {
		t.Fatalf("speculation accuracy not decaying: d1=%.3f d4=%.3f d12=%.3f", a1, a4, a12)
	}
	if a1 < 0.75 {
		t.Fatalf("distance-1 speculation accuracy %.3f too low (Mixtral-Offloading premise)", a1)
	}
}

// TestIterationTrajectoryCoherence: consecutive iterations of one request
// activate similar experts (temporal locality the Expert Cache exploits),
// while far-apart iterations drift (request-level blurring).
func TestIterationTrajectoryCoherence(t *testing.T) {
	cfg := Mixtral8x7B()
	m := NewModel(cfg, 29)
	iters := m.Trace(testPrompt(cfg, 300, 1, 0.1, 8, 60))
	adj := IterationHitRate(iters[2], iters[1].Active)
	far := IterationHitRate(iters[50], iters[1].Active)
	if adj < 0.6 {
		t.Fatalf("adjacent-iteration overlap %.3f too low", adj)
	}
	if far >= adj {
		t.Fatalf("distant-iteration overlap %.3f did not drop below adjacent %.3f", far, adj)
	}
}

func TestPrefillUnionLargerThanDecode(t *testing.T) {
	cfg := Mixtral8x7B()
	m := NewModel(cfg, 31)
	iters := m.Trace(testPrompt(cfg, 400, 0, 0.1, 37, 3))
	var prefillAvg, decodeAvg float64
	for l := 0; l < cfg.Layers; l++ {
		prefillAvg += float64(len(iters[0].Active[l]))
		decodeAvg += float64(len(iters[1].Active[l]))
	}
	prefillAvg /= float64(cfg.Layers)
	decodeAvg /= float64(cfg.Layers)
	if prefillAvg <= decodeAvg {
		t.Fatalf("prefill union %.2f not larger than decode %.2f", prefillAvg, decodeAvg)
	}
	if prefillAvg < 3.5 {
		t.Fatalf("prefill union %.2f implausibly small for 37 tokens", prefillAvg)
	}
}

func TestFlattenProbs(t *testing.T) {
	cfg := Tiny()
	m := NewModel(cfg, 37)
	it := m.Trace(testPrompt(cfg, 500, 0, 0.1, 4, 2))[1]
	flat := FlattenProbs(it, 2)
	if len(flat) != 2*cfg.RoutedExperts {
		t.Fatalf("flatten length %d", len(flat))
	}
	if flat[0] != it.Probs[0][0] || flat[cfg.RoutedExperts] != it.Probs[1][0] {
		t.Fatal("flatten order wrong")
	}
	if got := FlattenProbs(it, -1); len(got) != cfg.Layers*cfg.RoutedExperts {
		t.Fatal("flatten all failed")
	}
	if got := FlattenProbs(it, 0); got != nil {
		t.Fatal("flatten 0 should be nil")
	}
}

func TestIterationHitRateEdges(t *testing.T) {
	it := &Iteration{Active: [][]int{{1, 2}, {3}}}
	if got := IterationHitRate(it, [][]int{{1, 2}, {3}}); got != 1 {
		t.Fatalf("perfect prediction hit rate %v", got)
	}
	if got := IterationHitRate(it, [][]int{{5}, {6}}); got != 0 {
		t.Fatalf("wrong prediction hit rate %v", got)
	}
	if got := IterationHitRate(it, nil); got != 0 {
		t.Fatalf("empty prediction hit rate %v", got)
	}
	half := IterationHitRate(it, [][]int{{1}, {3}})
	if math.Abs(half-2.0/3.0) > 1e-12 {
		t.Fatalf("partial hit rate %v", half)
	}
}

func TestNewRequestValidation(t *testing.T) {
	cfg := Tiny()
	m := NewModel(cfg, 1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad dim", func() {
		m.NewRequest(PromptSpec{Embedding: make([]float64, 3), InputTokens: 1, OutputTokens: 1})
	})
	mustPanic("zero tokens", func() {
		m.NewRequest(PromptSpec{Embedding: make([]float64, cfg.SemDim), InputTokens: 0, OutputTokens: 1})
	})
	mustPanic("next after done", func() {
		r := m.NewRequest(testPrompt(cfg, 1, 0, 0.1, 2, 1))
		r.Next()
		r.Next()
	})
}

func TestActivationHeatmap(t *testing.T) {
	cfg := Tiny()
	m := NewModel(cfg, 41)
	iters := m.Trace(testPrompt(cfg, 600, 0, 0.1, 3, 5))
	h := ActivationHeatmap(iters[1:2], cfg.Layers, cfg.RoutedExperts)
	var total float64
	for _, row := range h {
		for _, v := range row {
			total += v
		}
	}
	if total != float64(cfg.Layers*cfg.TopK) {
		t.Fatalf("single-iteration heatmap mass %v, want %d", total, cfg.Layers*cfg.TopK)
	}
}

func BenchmarkDecodeIterationMixtral(b *testing.B) {
	cfg := Mixtral8x7B()
	m := NewModel(cfg, 1)
	p := testPrompt(cfg, 1, 0, 0.1, 2, 1<<30)
	r := m.NewRequest(p)
	r.Next() // consume prefill
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Next()
	}
}
