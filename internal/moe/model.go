package moe

import (
	"fmt"

	"finemoe/internal/rng"
	"finemoe/internal/tensor"
)

// Key-space constants for deriving independent deterministic noise streams.
const (
	keyGate uint64 = iota + 1
	keyDrift
	keyPromptLayer
	keyIterLayer
	keyIterTok
	keySemObs
	keyPrefillTok
)

// Model is a simulated MoE gate network. It deterministically maps latent
// semantic states to per-layer expert probability distributions with the
// statistical properties described in DESIGN.md §4. A Model is safe for
// concurrent use once constructed.
type Model struct {
	Cfg  Config
	seed uint64

	// gateW[l] is the J×SemDim routing projection of layer l.
	gateW [][]float64
	// driftW[l] is the SemDim×SemDim drift field of layer l; the
	// within-iteration hidden walk moves along normalize(driftW[l]·x).
	driftW [][]float64
}

// NewModel builds the simulated gate network for cfg. The same (cfg.Name,
// seed) pair always yields an identical model.
func NewModel(cfg Config, seed uint64) *Model {
	if cfg.Layers <= 0 || cfg.RoutedExperts <= 0 {
		panic(fmt.Sprintf("moe: invalid config %+v", cfg))
	}
	if cfg.TopK <= 0 || cfg.TopK > cfg.RoutedExperts {
		panic(fmt.Sprintf("moe: TopK %d out of range for %d experts", cfg.TopK, cfg.RoutedExperts))
	}
	m := &Model{Cfg: cfg, seed: seed}
	m.gateW = make([][]float64, cfg.Layers)
	m.driftW = make([][]float64, cfg.Layers)
	nameKey := hashString(cfg.Name)
	for l := 0; l < cfg.Layers; l++ {
		gw := make([]float64, cfg.RoutedExperts*cfg.SemDim)
		gr := rng.New(rng.Mix(seed, nameKey, keyGate, uint64(l)))
		for j := 0; j < cfg.RoutedExperts; j++ {
			gr.UnitVec(gw[j*cfg.SemDim : (j+1)*cfg.SemDim])
		}
		m.gateW[l] = gw

		dw := make([]float64, cfg.SemDim*cfg.SemDim)
		dr := rng.New(rng.Mix(seed, nameKey, keyDrift, uint64(l)))
		for i := range dw {
			dw[i] = dr.Norm()
		}
		m.driftW[l] = dw
	}
	return m
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// GateProbs writes layer's routing distribution for hidden state u into dst
// (length RoutedExperts). This is the ground-truth gate; baselines use it
// through Speculate.
func (m *Model) GateProbs(u []float64, layer int, dst []float64) {
	cfg := m.Cfg
	logits := make([]float64, cfg.RoutedExperts)
	tensor.MatVec(m.gateW[layer], cfg.RoutedExperts, cfg.SemDim, u, logits)
	tensor.Softmax(logits, cfg.InvTemp, dst)
}

// Speculate predicts targetLayer's routing distribution from a hidden state
// observed at an earlier layer — the mechanism behind Mixtral-Offloading's
// and ProMoE's speculative prefetching. Accuracy decays with the distance
// between the observation layer and targetLayer because the hidden walk's
// drift accumulates.
func (m *Model) Speculate(hiddenAtEarlierLayer []float64, targetLayer int, dst []float64) {
	m.GateProbs(hiddenAtEarlierLayer, targetLayer, dst)
}

// driftDir writes normalize(driftW[l]·x) into dst.
func (m *Model) driftDir(l int, x, dst []float64) {
	tensor.MatVec(m.driftW[l], m.Cfg.SemDim, m.Cfg.SemDim, x, dst)
	tensor.Normalize(dst)
}

// Iteration is the observable outcome of one inference iteration: the gate's
// probability distributions per layer, the activated routed experts, the
// hidden-state trajectory (available to speculation-based policies), and the
// semantic embedding the serving system observes.
type Iteration struct {
	// Index is the iteration number within the request; 0 is the prefill
	// iteration, subsequent indices are decode steps.
	Index int
	// Probs[l] is the layer-l gate distribution over routed experts. For
	// prefill it is the mean distribution across prompt tokens.
	Probs [][]float64
	// Active[l] lists the routed experts computed at layer l: the top-K
	// experts for a decode token, or the union of per-token top-K sets
	// for prefill, in first-activation order.
	Active [][]int
	// Hidden[l] is the hidden state entering layer l's gate.
	Hidden [][]float64
	// Semantic is the observed semantic embedding for this iteration
	// (embedding-layer output plus observation noise).
	Semantic []float64
	// Tokens is the number of tokens processed this iteration (prompt
	// length for prefill, 1 for decode).
	Tokens int
}

// PromptSpec describes one request prompt for simulation. Embedding must be
// a unit vector of the model's SemDim.
type PromptSpec struct {
	// ID uniquely identifies the request within a workload.
	ID uint64
	// Embedding is the latent semantic vector of the prompt.
	Embedding []float64
	// InputTokens and OutputTokens are the prompt and generation lengths.
	InputTokens  int
	OutputTokens int
	// Seed drives all per-prompt noise streams.
	Seed uint64
}

// RequestSim simulates one request's inference, iteration by iteration.
// It is not safe for concurrent use.
type RequestSim struct {
	m    *Model
	spec PromptSpec
	x    []float64 // current latent iteration state
	iter int

	// scratch
	drift []float64
	u     []float64
}

// NewRequest starts simulating a request. It panics if the embedding
// dimension does not match the model.
func (m *Model) NewRequest(spec PromptSpec) *RequestSim {
	if len(spec.Embedding) != m.Cfg.SemDim {
		panic(fmt.Sprintf("moe: embedding dim %d != SemDim %d", len(spec.Embedding), m.Cfg.SemDim))
	}
	if spec.InputTokens <= 0 || spec.OutputTokens <= 0 {
		panic("moe: request must have positive input and output token counts")
	}
	return &RequestSim{
		m:     m,
		spec:  spec,
		x:     tensor.Copy(spec.Embedding),
		drift: make([]float64, m.Cfg.SemDim),
		u:     make([]float64, m.Cfg.SemDim),
	}
}

// TotalIterations returns the number of iterations the request spans:
// one prefill plus OutputTokens-1 decode steps (the prefill iteration emits
// the first output token, §2.1).
func (r *RequestSim) TotalIterations() int {
	if r.spec.OutputTokens < 1 {
		return 1
	}
	return r.spec.OutputTokens
}

// Done reports whether all iterations have been produced.
func (r *RequestSim) Done() bool { return r.iter >= r.TotalIterations() }

// Spec returns the request's prompt specification.
func (r *RequestSim) Spec() PromptSpec { return r.spec }

// Next produces the next iteration. It panics if called after Done.
func (r *RequestSim) Next() *Iteration {
	if r.Done() {
		panic("moe: Next called on finished request")
	}
	cfg := r.m.Cfg
	it := &Iteration{
		Index:  r.iter,
		Probs:  make([][]float64, cfg.Layers),
		Active: make([][]int, cfg.Layers),
		Hidden: make([][]float64, cfg.Layers),
	}

	// Observed semantic embedding: latent state + observation noise.
	sem := tensor.Copy(r.x)
	obs := make([]float64, cfg.SemDim)
	rng.New(rng.Mix(r.spec.Seed, keySemObs, uint64(r.iter))).UnitVec(obs)
	tensor.Axpy(cfg.SemObsNoise, obs, sem)
	tensor.Normalize(sem)
	it.Semantic = sem

	if r.iter == 0 {
		r.prefill(it)
	} else {
		r.decode(it)
	}

	// Advance the latent state for the next iteration. The drift mixes a
	// topic-shared conversation path — a deterministic function of the
	// prompt embedding and the iteration index, so same-topic requests
	// traverse near-identical trajectories the Expert Map Store can
	// match — with prompt-unique token noise. The cumulative walk is what
	// blurs request-level aggregates (Fig. 3c) without destroying
	// iteration-level searchability.
	tok := make([]float64, cfg.SemDim)
	pathIdx := int(uint(r.iter*7+3)) % cfg.Layers
	r.m.driftDir(pathIdx, r.spec.Embedding, tok)
	tensor.Scale(cfg.PathShare, tok)
	eta := make([]float64, cfg.SemDim)
	rng.New(rng.Mix(r.spec.Seed, keyIterTok, uint64(r.iter))).UnitVec(eta)
	tensor.Axpy(1-cfg.PathShare, eta, tok)
	tensor.Normalize(tok)

	tensor.Scale(1-cfg.IterAnchor-cfg.IterNoise, r.x)
	tensor.Axpy(cfg.IterAnchor, r.spec.Embedding, r.x)
	tensor.Axpy(cfg.IterNoise, tok, r.x)
	tensor.Normalize(r.x)

	r.iter++
	return it
}

// walkLayer advances hidden state u through layer l's drift field:
// u ← normalize(u + σ_d·drift(x) + σ_p·η_prompt(l) + σ_q·η_iter(l)).
func (r *RequestSim) walkLayer(u []float64, l, iter int) {
	cfg := r.m.Cfg
	r.m.driftDir(l, r.x, r.drift)
	tensor.Axpy(cfg.LayerDrift, r.drift, u)

	eta := make([]float64, cfg.SemDim)
	rng.New(rng.Mix(r.spec.Seed, keyPromptLayer, uint64(l))).UnitVec(eta)
	tensor.Axpy(cfg.PromptNoise, eta, u)

	rng.New(rng.Mix(r.spec.Seed, keyIterLayer, uint64(iter), uint64(l))).UnitVec(eta)
	tensor.Axpy(cfg.IterLayerNoise, eta, u)

	tensor.Normalize(u)
}

// decode runs a single-token iteration.
func (r *RequestSim) decode(it *Iteration) {
	cfg := r.m.Cfg
	copy(r.u, r.x)
	for l := 0; l < cfg.Layers; l++ {
		r.walkLayer(r.u, l, it.Index)
		it.Hidden[l] = tensor.Copy(r.u)
		p := make([]float64, cfg.RoutedExperts)
		r.m.GateProbs(r.u, l, p)
		it.Probs[l] = p
		it.Active[l] = tensor.TopK(p, cfg.TopK)
	}
	it.Tokens = 1
}

// prefill runs the prompt iteration: every input token follows its own
// hidden walk; the layer's activated set is the union of per-token top-K
// selections and the recorded distribution is the token mean.
func (r *RequestSim) prefill(it *Iteration) {
	cfg := r.m.Cfg
	n := r.spec.InputTokens
	it.Tokens = n

	// Per-token starting states around the prompt embedding.
	states := make([][]float64, n)
	for k := 0; k < n; k++ {
		v := tensor.Copy(r.x)
		eta := make([]float64, cfg.SemDim)
		rng.New(rng.Mix(r.spec.Seed, keyPrefillTok, uint64(k))).UnitVec(eta)
		tensor.Axpy(cfg.PrefillTokenNoise, eta, v)
		tensor.Normalize(v)
		states[k] = v
	}

	probs := make([]float64, cfg.RoutedExperts)
	tokEta := make([]float64, cfg.SemDim)
	for l := 0; l < cfg.Layers; l++ {
		mean := make([]float64, cfg.RoutedExperts)
		var active []int
		seen := make(map[int]bool, cfg.RoutedExperts)
		var meanHidden []float64
		for k := 0; k < n; k++ {
			u := states[k]
			r.walkLayer(u, l, 0)
			// Per-token content keeps influencing routing at every
			// depth; without this the shared drift field would
			// collapse token diversity (and the per-layer expert
			// union) in deep layers.
			rng.New(rng.Mix(r.spec.Seed, keyPrefillTok, uint64(k), uint64(l)+1)).UnitVec(tokEta)
			tensor.Axpy(cfg.PrefillTokenNoise*0.35, tokEta, u)
			tensor.Normalize(u)
			r.m.GateProbs(u, l, probs)
			tensor.Axpy(1, probs, mean)
			for _, j := range tensor.TopK(probs, cfg.TopK) {
				if !seen[j] {
					seen[j] = true
					active = append(active, j)
				}
			}
			if meanHidden == nil {
				meanHidden = make([]float64, cfg.SemDim)
			}
			tensor.Axpy(1, u, meanHidden)
		}
		tensor.Scale(1/float64(n), mean)
		tensor.Normalize(meanHidden)
		it.Probs[l] = mean
		it.Active[l] = active
		it.Hidden[l] = meanHidden
	}
}

// Trace fully simulates a request and returns every iteration. It is the
// cacheable unit shared across policy evaluations (gate behaviour does not
// depend on the serving policy).
func (m *Model) Trace(spec PromptSpec) []*Iteration {
	r := m.NewRequest(spec)
	out := make([]*Iteration, 0, r.TotalIterations())
	for !r.Done() {
		out = append(out, r.Next())
	}
	return out
}
