package moe

import (
	"fmt"

	"finemoe/internal/rng"
	"finemoe/internal/tensor"
)

// Key-space constants for deriving independent deterministic noise streams.
const (
	keyGate uint64 = iota + 1
	keyDrift
	keyPromptLayer
	keyIterLayer
	keyIterTok
	keySemObs
	keyPrefillTok
)

// Model is a simulated MoE gate network. It deterministically maps latent
// semantic states to per-layer expert probability distributions with the
// statistical properties described in DESIGN.md §4. A Model is safe for
// concurrent use once constructed.
type Model struct {
	Cfg  Config
	seed uint64

	// gateW[l] is the J×SemDim routing projection of layer l.
	gateW [][]float64
	// driftW[l] is the SemDim×SemDim drift field of layer l; the
	// within-iteration hidden walk moves along normalize(driftW[l]·x).
	driftW [][]float64
}

// NewModel builds the simulated gate network for cfg. The same (cfg.Name,
// seed) pair always yields an identical model.
func NewModel(cfg Config, seed uint64) *Model {
	if cfg.Layers <= 0 || cfg.RoutedExperts <= 0 {
		panic(fmt.Sprintf("moe: invalid config %+v", cfg))
	}
	if cfg.TopK <= 0 || cfg.TopK > cfg.RoutedExperts {
		panic(fmt.Sprintf("moe: TopK %d out of range for %d experts", cfg.TopK, cfg.RoutedExperts))
	}
	m := &Model{Cfg: cfg, seed: seed}
	m.gateW = make([][]float64, cfg.Layers)
	m.driftW = make([][]float64, cfg.Layers)
	nameKey := hashString(cfg.Name)
	for l := 0; l < cfg.Layers; l++ {
		gw := make([]float64, cfg.RoutedExperts*cfg.SemDim)
		gr := rng.New(rng.Mix(seed, nameKey, keyGate, uint64(l)))
		for j := 0; j < cfg.RoutedExperts; j++ {
			gr.UnitVec(gw[j*cfg.SemDim : (j+1)*cfg.SemDim])
		}
		m.gateW[l] = gw

		dw := make([]float64, cfg.SemDim*cfg.SemDim)
		dr := rng.New(rng.Mix(seed, nameKey, keyDrift, uint64(l)))
		for i := range dw {
			dw[i] = dr.Norm()
		}
		m.driftW[l] = dw
	}
	return m
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// GateProbs writes layer's routing distribution for hidden state u into dst
// (length RoutedExperts). This is the ground-truth gate; baselines use it
// through Speculate.
// It is allocation-free: the logits are materialized in dst itself and
// softmaxed in place (Softmax documents that dst may alias logits), which
// leaves every float64 operation and its order unchanged.
//
//finemoe:hotpath
func (m *Model) GateProbs(u []float64, layer int, dst []float64) {
	cfg := m.Cfg
	tensor.MatVec(m.gateW[layer], cfg.RoutedExperts, cfg.SemDim, u, dst)
	tensor.Softmax(dst, cfg.InvTemp, dst)
}

// Speculate predicts targetLayer's routing distribution from a hidden state
// observed at an earlier layer — the mechanism behind Mixtral-Offloading's
// and ProMoE's speculative prefetching. Accuracy decays with the distance
// between the observation layer and targetLayer because the hidden walk's
// drift accumulates.
func (m *Model) Speculate(hiddenAtEarlierLayer []float64, targetLayer int, dst []float64) {
	m.GateProbs(hiddenAtEarlierLayer, targetLayer, dst)
}

// driftDir writes normalize(driftW[l]·x) into dst.
func (m *Model) driftDir(l int, x, dst []float64) {
	tensor.MatVec(m.driftW[l], m.Cfg.SemDim, m.Cfg.SemDim, x, dst)
	tensor.Normalize(dst)
}

// Iteration is the observable outcome of one inference iteration: the gate's
// probability distributions per layer, the activated routed experts, the
// hidden-state trajectory (available to speculation-based policies), and the
// semantic embedding the serving system observes.
type Iteration struct {
	// Index is the iteration number within the request; 0 is the prefill
	// iteration, subsequent indices are decode steps.
	Index int
	// Probs[l] is the layer-l gate distribution over routed experts. For
	// prefill it is the mean distribution across prompt tokens.
	Probs [][]float64
	// Active[l] lists the routed experts computed at layer l: the top-K
	// experts for a decode token, or the union of per-token top-K sets
	// for prefill, in first-activation order.
	Active [][]int
	// Hidden[l] is the hidden state entering layer l's gate.
	Hidden [][]float64
	// Semantic is the observed semantic embedding for this iteration
	// (embedding-layer output plus observation noise).
	Semantic []float64
	// Tokens is the number of tokens processed this iteration (prompt
	// length for prefill, 1 for decode).
	Tokens int
}

// PromptSpec describes one request prompt for simulation. Embedding must be
// a unit vector of the model's SemDim.
type PromptSpec struct {
	// ID uniquely identifies the request within a workload.
	ID uint64
	// Embedding is the latent semantic vector of the prompt.
	Embedding []float64
	// InputTokens and OutputTokens are the prompt and generation lengths.
	InputTokens  int
	OutputTokens int
	// Seed drives all per-prompt noise streams.
	Seed uint64
}

// RequestSim simulates one request's inference, iteration by iteration.
// It is not safe for concurrent use.
type RequestSim struct {
	m    *Model
	spec PromptSpec
	x    []float64 // current latent iteration state
	iter int

	// scratch, reused across iterations (and across requests when the sim
	// itself is reused through a Tracer). Every buffer is fully overwritten
	// before use, so reuse cannot change any produced value.
	drift  []float64
	u      []float64
	obs    []float64 // observation / iteration-noise direction scratch
	tok    []float64 // conversation-path token scratch
	eta    []float64 // per-layer noise scratch
	probs  []float64 // prefill per-token gate scratch
	order  []int     // TopKInto index scratch
	seen   []bool    // prefill expert-union membership scratch
	states []float64 // prefill per-token hidden states, flat n×SemDim

	// Memoized walk ingredients (see walkLayer). promptEta holds the
	// per-layer prompt noise η_prompt(l), flat Layers×SemDim: it is a
	// function of (request seed, layer) alone, so one row per layer
	// serves every prompt token and every decode iteration. drift and
	// iterEta are keyed by the (iteration, layer) pair below — prefill
	// walks the same layer once per prompt token and would otherwise
	// recompute identical values for each.
	promptEta             []float64
	iterEta               []float64
	driftIter, driftLayer int
	etaIter, etaLayer     int
}

// NewRequest starts simulating a request. It panics if the embedding
// dimension does not match the model.
func (m *Model) NewRequest(spec PromptSpec) *RequestSim {
	r := &RequestSim{}
	r.Reset(m, spec)
	return r
}

// Reset re-arms the sim for a new request, reusing its scratch buffers.
// It panics under the same conditions as NewRequest.
func (r *RequestSim) Reset(m *Model, spec PromptSpec) {
	if len(spec.Embedding) != m.Cfg.SemDim {
		panic(fmt.Sprintf("moe: embedding dim %d != SemDim %d", len(spec.Embedding), m.Cfg.SemDim))
	}
	if spec.InputTokens <= 0 || spec.OutputTokens <= 0 {
		panic("moe: request must have positive input and output token counts")
	}
	dim, j := m.Cfg.SemDim, m.Cfg.RoutedExperts
	r.m, r.spec, r.iter = m, spec, 0
	r.x = resizeF64(r.x, dim)
	copy(r.x, spec.Embedding)
	r.drift = resizeF64(r.drift, dim)
	r.u = resizeF64(r.u, dim)
	r.obs = resizeF64(r.obs, dim)
	r.tok = resizeF64(r.tok, dim)
	r.eta = resizeF64(r.eta, dim)
	r.probs = resizeF64(r.probs, j)
	if cap(r.order) < j {
		r.order = make([]int, 0, j)
	}
	if cap(r.seen) < j {
		r.seen = make([]bool, j)
	}
	r.seen = r.seen[:j]
	// Draw the per-layer prompt noise up front: each row comes from its
	// own Seeded generator exactly as the per-call draws did, so hoisting
	// the draws to Reset reproduces the same bytes while every later
	// walkLayer call becomes a reuse.
	layers := m.Cfg.Layers
	r.promptEta = resizeF64(r.promptEta, layers*dim)
	for l := 0; l < layers; l++ {
		g := rng.Seeded(rng.Mix(spec.Seed, keyPromptLayer, uint64(l)))
		g.UnitVec(r.promptEta[l*dim : (l+1)*dim])
	}
	r.iterEta = resizeF64(r.iterEta, dim)
	r.driftIter, r.driftLayer = -1, -1
	r.etaIter, r.etaLayer = -1, -1
}

// resizeF64 returns a slice of length n, reusing v's backing array when it
// is large enough.
func resizeF64(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

// TotalIterations returns the number of iterations the request spans:
// one prefill plus OutputTokens-1 decode steps (the prefill iteration emits
// the first output token, §2.1).
func (r *RequestSim) TotalIterations() int {
	if r.spec.OutputTokens < 1 {
		return 1
	}
	return r.spec.OutputTokens
}

// Done reports whether all iterations have been produced.
func (r *RequestSim) Done() bool { return r.iter >= r.TotalIterations() }

// Spec returns the request's prompt specification.
func (r *RequestSim) Spec() PromptSpec { return r.spec }

// ensureShape sizes the iteration's per-layer buffers for cfg, reusing
// existing backing arrays when their capacities allow — the mechanism that
// lets a Tracer recycle iterations of completed requests without a single
// steady-state allocation.
func (it *Iteration) ensureShape(cfg Config) {
	layers, j, dim := cfg.Layers, cfg.RoutedExperts, cfg.SemDim
	if cap(it.Probs) < layers {
		it.Probs = make([][]float64, layers)
	}
	it.Probs = it.Probs[:layers]
	if cap(it.Active) < layers {
		it.Active = make([][]int, layers)
	}
	it.Active = it.Active[:layers]
	if cap(it.Hidden) < layers {
		it.Hidden = make([][]float64, layers)
	}
	it.Hidden = it.Hidden[:layers]
	for l := 0; l < layers; l++ {
		it.Probs[l] = resizeF64(it.Probs[l], j)
		it.Hidden[l] = resizeF64(it.Hidden[l], dim)
		if cap(it.Active[l]) < j {
			it.Active[l] = make([]int, 0, j)
		}
	}
	it.Semantic = resizeF64(it.Semantic, dim)
}

// Next produces the next iteration. It panics if called after Done.
func (r *RequestSim) Next() *Iteration {
	return r.NextInto(new(Iteration))
}

// NextInto produces the next iteration into it, reusing its buffers
// (ensureShape). The values written are bit-identical to Next's: every
// reused buffer is fully overwritten (or explicitly zeroed where the seed
// accumulated into a fresh slice) before use.
func (r *RequestSim) NextInto(it *Iteration) *Iteration {
	if r.Done() {
		panic("moe: Next called on finished request")
	}
	cfg := r.m.Cfg
	it.ensureShape(cfg)
	it.Index = r.iter

	// Observed semantic embedding: latent state + observation noise.
	sem := it.Semantic
	copy(sem, r.x)
	g := rng.Seeded(rng.Mix(r.spec.Seed, keySemObs, uint64(r.iter)))
	g.UnitVec(r.obs)
	tensor.Axpy(cfg.SemObsNoise, r.obs, sem)
	tensor.Normalize(sem)

	if r.iter == 0 {
		r.prefill(it)
	} else {
		r.decode(it)
	}

	// Advance the latent state for the next iteration. The drift mixes a
	// topic-shared conversation path — a deterministic function of the
	// prompt embedding and the iteration index, so same-topic requests
	// traverse near-identical trajectories the Expert Map Store can
	// match — with prompt-unique token noise. The cumulative walk is what
	// blurs request-level aggregates (Fig. 3c) without destroying
	// iteration-level searchability.
	tok := r.tok
	pathIdx := int(uint(r.iter*7+3)) % cfg.Layers
	r.m.driftDir(pathIdx, r.spec.Embedding, tok)
	tensor.Scale(cfg.PathShare, tok)
	g = rng.Seeded(rng.Mix(r.spec.Seed, keyIterTok, uint64(r.iter)))
	g.UnitVec(r.eta)
	tensor.Axpy(1-cfg.PathShare, r.eta, tok)
	tensor.Normalize(tok)

	tensor.Scale(1-cfg.IterAnchor-cfg.IterNoise, r.x)
	tensor.Axpy(cfg.IterAnchor, r.spec.Embedding, r.x)
	tensor.Axpy(cfg.IterNoise, tok, r.x)
	tensor.Normalize(r.x)

	r.iter++
	return it
}

// walkLayer advances hidden state u through layer l's drift field:
// u ← normalize(u + σ_d·drift(x) + σ_p·η_prompt(l) + σ_q·η_iter(l)).
//
//finemoe:hotpath
func (r *RequestSim) walkLayer(u []float64, l, iter int) {
	cfg := r.m.Cfg
	// The drift direction is a pure function of (layer, r.x), and r.x is
	// constant within an iteration — prefill calls this once per prompt
	// token per layer, so only the first call of an (iteration, layer)
	// pair computes. Memoization replays the identical MatVec+Normalize
	// output and consumes no RNG draws, so every produced byte matches
	// the recompute-every-call path.
	if r.driftIter != iter || r.driftLayer != l {
		r.m.driftDir(l, r.x, r.drift)
		r.driftIter, r.driftLayer = iter, l
	}
	tensor.Axpy(cfg.LayerDrift, r.drift, u)

	// η_prompt(l) was drawn once at Reset (same Seeded generator, same
	// draw sequence as a per-call draw).
	dim := cfg.SemDim
	tensor.Axpy(cfg.PromptNoise, r.promptEta[l*dim:(l+1)*dim], u)

	// η_iter(iter, l) likewise repeats across prefill's token loop.
	if r.etaIter != iter || r.etaLayer != l {
		g := rng.Seeded(rng.Mix(r.spec.Seed, keyIterLayer, uint64(iter), uint64(l)))
		g.UnitVec(r.iterEta)
		r.etaIter, r.etaLayer = iter, l
	}
	tensor.Axpy(cfg.IterLayerNoise, r.iterEta, u)

	tensor.Normalize(u)
}

// decode runs a single-token iteration.
//
//finemoe:hotpath
func (r *RequestSim) decode(it *Iteration) {
	cfg := r.m.Cfg
	copy(r.u, r.x)
	for l := 0; l < cfg.Layers; l++ {
		r.walkLayer(r.u, l, it.Index)
		copy(it.Hidden[l], r.u)
		p := it.Probs[l]
		r.m.GateProbs(r.u, l, p)
		it.Active[l] = append(it.Active[l][:0], tensor.TopKInto(p, cfg.TopK, r.order[:cap(r.order)])...)
	}
	it.Tokens = 1
}

// prefill runs the prompt iteration: every input token follows its own
// hidden walk; the layer's activated set is the union of per-token top-K
// selections and the recorded distribution is the token mean.
func (r *RequestSim) prefill(it *Iteration) {
	cfg := r.m.Cfg
	n := r.spec.InputTokens
	it.Tokens = n

	// Per-token starting states around the prompt embedding, flat in the
	// sim's scratch arena (the only per-request growth: the longest prompt
	// seen sizes the buffer once).
	if cap(r.states) < n*cfg.SemDim {
		r.states = make([]float64, n*cfg.SemDim)
	}
	states := r.states[:n*cfg.SemDim]
	for k := 0; k < n; k++ {
		v := states[k*cfg.SemDim : (k+1)*cfg.SemDim]
		copy(v, r.x)
		g := rng.Seeded(rng.Mix(r.spec.Seed, keyPrefillTok, uint64(k)))
		g.UnitVec(r.obs)
		tensor.Axpy(cfg.PrefillTokenNoise, r.obs, v)
		tensor.Normalize(v)
	}

	probs := r.probs
	for l := 0; l < cfg.Layers; l++ {
		mean := it.Probs[l]
		for i := range mean {
			mean[i] = 0
		}
		active := it.Active[l][:0]
		seen := r.seen
		for i := range seen {
			seen[i] = false
		}
		meanHidden := it.Hidden[l]
		for i := range meanHidden {
			meanHidden[i] = 0
		}
		for k := 0; k < n; k++ {
			u := states[k*cfg.SemDim : (k+1)*cfg.SemDim]
			r.walkLayer(u, l, 0)
			// Per-token content keeps influencing routing at every
			// depth; without this the shared drift field would
			// collapse token diversity (and the per-layer expert
			// union) in deep layers.
			g := rng.Seeded(rng.Mix(r.spec.Seed, keyPrefillTok, uint64(k), uint64(l)+1))
			g.UnitVec(r.tok)
			tensor.Axpy(cfg.PrefillTokenNoise*0.35, r.tok, u)
			tensor.Normalize(u)
			r.m.GateProbs(u, l, probs)
			tensor.Axpy(1, probs, mean)
			for _, j := range tensor.TopKInto(probs, cfg.TopK, r.order[:cap(r.order)]) {
				if !seen[j] {
					seen[j] = true
					active = append(active, j)
				}
			}
			tensor.Axpy(1, u, meanHidden)
		}
		tensor.Scale(1/float64(n), mean)
		tensor.Normalize(meanHidden)
		it.Active[l] = active
	}
}

// Trace fully simulates a request and returns every iteration. It is the
// cacheable unit shared across policy evaluations (gate behaviour does not
// depend on the serving policy).
func (m *Model) Trace(spec PromptSpec) []*Iteration {
	r := m.NewRequest(spec)
	out := make([]*Iteration, 0, r.TotalIterations())
	for !r.Done() {
		out = append(out, r.Next())
	}
	return out
}

// Tracer amortizes gate-trace simulation across requests: it reuses one
// RequestSim's scratch buffers and recycles the Iterations of completed
// requests through a free list, so a long serving run's steady-state trace
// cost is pure compute. A Tracer is single-threaded, like the engine that
// owns it.
type Tracer struct {
	m    *Model
	sim  RequestSim
	free []*Iteration
}

// NewTracer builds a tracer for m.
func (m *Model) NewTracer() *Tracer { return &Tracer{m: m} }

// Trace simulates spec like Model.Trace but appends the iterations to
// dst[:0], drawing recycled Iterations from the free list before
// allocating. The caller owns the result until it hands the iterations
// back via Recycle.
//
//finemoe:allocok allocates iterations only while the free list warms up; steady state recycles completed requests' iterations
func (t *Tracer) Trace(spec PromptSpec, dst []*Iteration) []*Iteration {
	t.sim.Reset(t.m, spec)
	r := &t.sim
	dst = dst[:0]
	for !r.Done() {
		var it *Iteration
		if n := len(t.free); n > 0 {
			it = t.free[n-1]
			t.free[n-1] = nil
			t.free = t.free[:n-1]
		} else {
			it = new(Iteration)
		}
		dst = append(dst, r.NextInto(it))
	}
	return dst
}

// Recycle returns a completed request's iterations to the free list. The
// caller must guarantee nothing retains the iterations or their internal
// slices — in this repo every consumer (the store's NewExpertMap, the
// trajectory cursor, the policies) copies what it keeps.
func (t *Tracer) Recycle(its []*Iteration) {
	t.free = append(t.free, its...)
}
