package moe

import (
	"math"
	"testing"
)

// TestTable1Mixtral verifies the parameter accounting against the paper's
// Table 1 row for Mixtral-8x7B: 12.9B/46.7B params, 2/8 experts, 32 layers.
func TestTable1Mixtral(t *testing.T) {
	c := Mixtral8x7B()
	if c.Layers != 32 || c.RoutedExperts != 8 || c.TopK != 2 {
		t.Fatalf("architecture mismatch: %+v", c)
	}
	if got := float64(c.TotalParams()) / 1e9; math.Abs(got-46.7) > 0.5 {
		t.Fatalf("total params %.1fB, want ~46.7B", got)
	}
	if got := float64(c.ActiveParams()) / 1e9; math.Abs(got-12.9) > 0.5 {
		t.Fatalf("active params %.1fB, want ~12.9B", got)
	}
	// §2.2: 72% inactive parameters, ~67 GB inactive memory in fp16.
	frac := float64(c.InactiveParams()) / float64(c.TotalParams())
	if math.Abs(frac-0.72) > 0.02 {
		t.Fatalf("inactive fraction %.3f, want ~0.72", frac)
	}
	gb := float64(c.InactiveParams()*c.BytesPerParam) / 1e9
	if math.Abs(gb-67) > 3 {
		t.Fatalf("inactive GB %.1f, want ~67", gb)
	}
}

func TestTable1Qwen(t *testing.T) {
	c := Qwen15MoE()
	if c.Layers != 24 || c.RoutedExperts != 60 || c.TopK != 4 || c.SharedExperts != 4 {
		t.Fatalf("architecture mismatch: %+v", c)
	}
	if got := float64(c.TotalParams()) / 1e9; math.Abs(got-14.3) > 0.5 {
		t.Fatalf("total params %.1fB, want ~14.3B", got)
	}
	if got := float64(c.ActiveParams()) / 1e9; math.Abs(got-2.7) > 0.3 {
		t.Fatalf("active params %.1fB, want ~2.7B", got)
	}
	frac := float64(c.InactiveParams()) / float64(c.TotalParams())
	if math.Abs(frac-0.81) > 0.02 {
		t.Fatalf("inactive fraction %.3f, want ~0.81", frac)
	}
}

func TestTable1Phi(t *testing.T) {
	c := Phi35MoE()
	if c.Layers != 32 || c.RoutedExperts != 16 || c.TopK != 2 {
		t.Fatalf("architecture mismatch: %+v", c)
	}
	if got := float64(c.TotalParams()) / 1e9; math.Abs(got-42) > 1 {
		t.Fatalf("total params %.1fB, want ~42B", got)
	}
	if got := float64(c.ActiveParams()) / 1e9; math.Abs(got-6.6) > 0.4 {
		t.Fatalf("active params %.1fB, want ~6.6B", got)
	}
	frac := float64(c.InactiveParams()) / float64(c.TotalParams())
	if math.Abs(frac-0.84) > 0.02 {
		t.Fatalf("inactive fraction %.3f, want ~0.84", frac)
	}
}

func TestExpertIDRoundTrip(t *testing.T) {
	c := Tiny()
	for l := 0; l < c.Layers; l++ {
		for j := 0; j < c.RoutedExperts; j++ {
			id := c.ExpertID(l, j)
			gl, gj := c.ExpertLoc(id)
			if gl != l || gj != j {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", l, j, id, gl, gj)
			}
		}
	}
	if c.NumExperts() != c.Layers*c.RoutedExperts {
		t.Fatal("NumExperts mismatch")
	}
}

// TestFig18MapBytes checks the store footprint math: 32K Qwen maps must stay
// under the paper's 200 MB bound and exceed the other two models (Fig. 18).
func TestFig18MapBytes(t *testing.T) {
	mix, qwen, phi := Mixtral8x7B(), Qwen15MoE(), Phi35MoE()
	qwenMB := float64(qwen.MapBytes()*32768) / (1 << 20)
	if qwenMB >= 200 {
		t.Fatalf("Qwen 32K-map store %.1f MB, paper bound is <200 MB", qwenMB)
	}
	if qwen.MapBytes() <= mix.MapBytes() || qwen.MapBytes() <= phi.MapBytes() {
		t.Fatal("Qwen maps must be the largest (most experts per layer)")
	}
}

func TestExpertBytesMagnitudes(t *testing.T) {
	// Sanity-check transfer units: Mixtral experts ~352 MB, Qwen ~17 MB,
	// Phi ~157 MB in fp16.
	checks := []struct {
		c      Config
		wantMB float64
	}{
		{Mixtral8x7B(), 352}, {Qwen15MoE(), 17.3}, {Phi35MoE(), 157},
	}
	for _, tc := range checks {
		gotMB := float64(tc.c.ExpertBytes()) / 1e6
		if math.Abs(gotMB-tc.wantMB)/tc.wantMB > 0.05 {
			t.Errorf("%s expert size %.1f MB, want ~%.0f MB", tc.c.Name, gotMB, tc.wantMB)
		}
	}
}

func TestDenseBytesIncludesSharedExperts(t *testing.T) {
	q := Qwen15MoE()
	withShared := q.DenseBytes()
	q2 := q
	q2.SharedExperts = 0
	q2.SharedIntermediate = 0
	if withShared <= q2.DenseBytes() {
		t.Fatal("shared experts must add to the pinned dense bytes")
	}
}

func TestPaperModels(t *testing.T) {
	ms := PaperModels()
	if len(ms) != 3 {
		t.Fatalf("want 3 paper models, got %d", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Name] = true
		if m.OptimalPrefetchDistance <= 0 {
			t.Errorf("%s: missing profiled prefetch distance", m.Name)
		}
	}
	if !names["Mixtral-8x7B"] || !names["Qwen1.5-MoE"] || !names["Phi-3.5-MoE"] {
		t.Fatalf("unexpected model set: %v", names)
	}
}
