// Package moe models Mixture-of-Experts LLMs for the FineMoE simulator:
// architectural configurations (layer/expert/parameter counts matching the
// paper's Table 1) and a generative gate-network simulator that reproduces
// the statistical routing behaviour the paper measures — balanced marginal
// expert usage, peaked per-iteration distributions, request-level blurring,
// and semantic-similarity-correlated expert overlap.
package moe

// Config describes an MoE model's architecture and the statistical knobs of
// its simulated gate network. The three constructors Mixtral8x7B, Qwen15MoE
// and Phi35MoE reproduce the parameter accounting of the paper's Table 1.
type Config struct {
	// Name identifies the model in reports (e.g. "Mixtral-8x7B").
	Name string
	// Layers is the number of MoE Transformer blocks (L in the paper).
	Layers int
	// RoutedExperts is the number of offloadable experts per layer (J).
	RoutedExperts int
	// TopK is the number of routed experts activated per token per layer.
	TopK int
	// SharedExperts counts always-on experts per layer (Qwen-style). They
	// are pinned in GPU memory and excluded from offloading, per the
	// paper's §3.3 footnote.
	SharedExperts int

	// HiddenSize is the model's true hidden dimension, used only for
	// parameter/byte accounting.
	HiddenSize int
	// ExpertIntermediate is the FFN intermediate size of one routed expert.
	ExpertIntermediate int
	// SharedIntermediate is the FFN intermediate size of the shared-expert
	// block (0 when there are no shared experts).
	SharedIntermediate int
	// DenseParams counts all non-expert parameters (embeddings, attention,
	// norms, LM head).
	DenseParams int64
	// BytesPerParam is the serving precision (2 for fp16).
	BytesPerParam int64

	// SemDim is the dimensionality of the simulated semantic space. The
	// paper's Fig. 18 memory accounting uses the stored embedding size;
	// 64 reproduces its footprint curve.
	SemDim int

	// InvTemp (τ) controls how peaked per-iteration gate distributions
	// are; higher values lower the fine-grained entropy of Fig. 3b.
	InvTemp float64
	// LayerDrift (σ_d) is the per-layer deterministic drift magnitude of
	// the hidden-state walk. It governs how fast speculation accuracy
	// decays with prefetch distance (Fig. 4).
	LayerDrift float64
	// PromptNoise (σ_p) is per-prompt, per-layer noise that is stable
	// across iterations; it bounds how well another prompt's expert map
	// can predict this prompt.
	PromptNoise float64
	// IterLayerNoise (σ_q) is per-iteration per-layer jitter.
	IterLayerNoise float64
	// IterAnchor (κ) pulls the iteration state back toward the prompt
	// embedding each decode step (conversations stay on topic).
	IterAnchor float64
	// IterNoise (λ) is the per-iteration token drift that blurs
	// request-level aggregates (Fig. 3c).
	IterNoise float64
	// PathShare is the fraction of the iteration drift that follows the
	// topic-shared conversation path (a deterministic function of the
	// prompt embedding) versus prompt-unique token noise. High values
	// make iteration-level patterns searchable across same-topic
	// requests while their aggregates still spread (the paper's central
	// premise: fine-grained patterns predictable, coarse-grained blurred).
	PathShare float64
	// PrefillTokenNoise spreads prompt tokens around the prompt embedding
	// during the prefill iteration; it controls the per-layer expert union
	// size of prefill.
	PrefillTokenNoise float64
	// SemObsNoise perturbs the semantic embedding the system observes
	// (embedding-layer output) relative to the true latent state.
	SemObsNoise float64

	// OptimalPrefetchDistance is the paper-profiled prefetch distance d
	// (§6.1/§6.7: 3 for Mixtral, 6 for Qwen, 4 for Phi).
	OptimalPrefetchDistance int
}

// defaultStatKnobs fills the simulation knobs shared by the three paper
// models. Individual constructors override where the paper's profiling
// (e.g. optimal prefetch distance) demands different dynamics.
func defaultStatKnobs(c *Config) {
	c.SemDim = 64
	// Gate logits are dots of random unit vectors (std ~ 1/sqrt(SemDim)),
	// so the inverse temperature is calibrated to SemDim=64: logit std
	// τ/8 ≈ 6 gives peaked per-iteration distributions whose entropy sits
	// well below uniform (Fig. 3b) without collapsing to a point mass.
	c.InvTemp = 48.0
	c.LayerDrift = 0.16
	c.PromptNoise = 0.012
	c.IterLayerNoise = 0.01
	c.IterAnchor = 0.02
	c.IterNoise = 0.28
	c.PathShare = 0.92
	c.PrefillTokenNoise = 0.45
	c.SemObsNoise = 0.02
	c.BytesPerParam = 2
}

// Mixtral8x7B returns the configuration for Mixtral-8x7B: 32 layers, 8
// experts per layer, top-2 routing, 12.9B/46.7B active/total parameters.
func Mixtral8x7B() Config {
	c := Config{
		Name:               "Mixtral-8x7B",
		Layers:             32,
		RoutedExperts:      8,
		TopK:               2,
		SharedExperts:      0,
		HiddenSize:         4096,
		ExpertIntermediate: 14336,
		DenseParams:        1_600_000_000,
	}
	defaultStatKnobs(&c)
	// Mixtral's hidden walk drifts fastest, which is why the paper
	// profiles its optimal prefetch distance at only 3 layers.
	c.LayerDrift = 0.45
	c.OptimalPrefetchDistance = 3
	return c
}

// Qwen15MoE returns the configuration for Qwen1.5-MoE-A2.7B: 24 layers, 60
// routed experts (top-4) plus 4 always-on shared experts, 2.7B/14.3B
// active/total parameters.
func Qwen15MoE() Config {
	c := Config{
		Name:               "Qwen1.5-MoE",
		Layers:             24,
		RoutedExperts:      60,
		TopK:               4,
		SharedExperts:      4,
		HiddenSize:         2048,
		ExpertIntermediate: 1408,
		SharedIntermediate: 5632,
		DenseParams:        1_000_000_000,
	}
	defaultStatKnobs(&c)
	// Qwen's gentler per-layer drift keeps speculation useful further
	// ahead, matching the paper's profiled distance of 6.
	c.LayerDrift = 0.30
	c.OptimalPrefetchDistance = 6
	return c
}

// Phi35MoE returns the configuration for Phi-3.5-MoE: 32 layers, 16 experts
// per layer, top-2 routing, 6.6B/42B active/total parameters.
func Phi35MoE() Config {
	c := Config{
		Name:               "Phi-3.5-MoE",
		Layers:             32,
		RoutedExperts:      16,
		TopK:               2,
		SharedExperts:      0,
		HiddenSize:         4096,
		ExpertIntermediate: 6400,
		DenseParams:        1_700_000_000,
	}
	defaultStatKnobs(&c)
	c.LayerDrift = 0.38
	c.OptimalPrefetchDistance = 4
	return c
}

// Tiny returns a small configuration used by unit tests: fast to simulate
// yet structurally identical to the real models.
func Tiny() Config {
	c := Config{
		Name:               "Tiny-MoE",
		Layers:             4,
		RoutedExperts:      6,
		TopK:               2,
		SharedExperts:      0,
		HiddenSize:         64,
		ExpertIntermediate: 128,
		DenseParams:        1_000_000,
	}
	defaultStatKnobs(&c)
	c.SemDim = 16
	c.OptimalPrefetchDistance = 2
	return c
}

// PaperModels returns the three MoE models evaluated throughout the paper,
// in the order they appear in Table 1.
func PaperModels() []Config {
	return []Config{Mixtral8x7B(), Qwen15MoE(), Phi35MoE()}
}

// ExpertParams returns the parameter count of one routed expert
// (gate/up/down projections of a SwiGLU FFN).
func (c Config) ExpertParams() int64 {
	return 3 * int64(c.HiddenSize) * int64(c.ExpertIntermediate)
}

// ExpertBytes returns the serving-precision byte size of one routed expert,
// i.e. the unit of transfer for offloading decisions.
func (c Config) ExpertBytes() int64 {
	return c.ExpertParams() * c.BytesPerParam
}

// SharedExpertParams returns the per-layer parameter count of the always-on
// shared-expert block (0 when the model has none).
func (c Config) SharedExpertParams() int64 {
	if c.SharedExperts == 0 {
		return 0
	}
	return 3 * int64(c.HiddenSize) * int64(c.SharedIntermediate)
}

// TotalExpertParams returns the parameter count of all routed experts.
func (c Config) TotalExpertParams() int64 {
	return int64(c.Layers) * int64(c.RoutedExperts) * c.ExpertParams()
}

// TotalParams returns the model's total parameter count.
func (c Config) TotalParams() int64 {
	return c.DenseParams + c.TotalExpertParams() + int64(c.Layers)*c.SharedExpertParams()
}

// ActiveParams returns the parameters touched per token: dense weights,
// shared experts, and TopK routed experts per layer.
func (c Config) ActiveParams() int64 {
	return c.DenseParams + int64(c.Layers)*c.SharedExpertParams() +
		int64(c.Layers)*int64(c.TopK)*c.ExpertParams()
}

// InactiveParams returns TotalParams minus ActiveParams — the memory the
// paper identifies as wasted by no-offload serving (§2.2).
func (c Config) InactiveParams() int64 { return c.TotalParams() - c.ActiveParams() }

// TotalBytes returns the serving-precision size of the whole model.
func (c Config) TotalBytes() int64 { return c.TotalParams() * c.BytesPerParam }

// DenseBytes returns the byte size of the non-offloadable portion (dense
// weights plus pinned shared experts).
func (c Config) DenseBytes() int64 {
	return (c.DenseParams + int64(c.Layers)*c.SharedExpertParams()) * c.BytesPerParam
}

// TotalExpertBytes returns the byte size of all offloadable expert weights.
func (c Config) TotalExpertBytes() int64 {
	return c.TotalExpertParams() * c.BytesPerParam
}

// NumExperts returns the total number of offloadable experts (L·J).
func (c Config) NumExperts() int { return c.Layers * c.RoutedExperts }

// ExpertRef addresses one offloadable expert: layer index and expert index
// within the layer.
type ExpertRef struct {
	Layer, Expert int
}

// ExpertID flattens a (layer, expert) pair into a dense identifier in
// [0, NumExperts). Pointer receiver: these run on cache-lookup and
// eviction-scoring hot paths where a value receiver would copy the whole
// Config per call.
func (c *Config) ExpertID(layer, expert int) int { return layer*c.RoutedExperts + expert }

// RefID flattens an ExpertRef.
func (c *Config) RefID(ref ExpertRef) int { return c.ExpertID(ref.Layer, ref.Expert) }

// ExpertLoc inverts ExpertID.
func (c *Config) ExpertLoc(id int) (layer, expert int) {
	return id / c.RoutedExperts, id % c.RoutedExperts
}

// MapFloats returns the number of float32 values stored per expert map
// (L·J trajectory entries plus the semantic embedding), the quantity behind
// the paper's Fig. 18 memory accounting.
func (c Config) MapFloats() int { return c.Layers*c.RoutedExperts + c.SemDim }

// MapBytes returns the CPU-memory footprint of one stored expert map.
func (c Config) MapBytes() int64 { return int64(c.MapFloats()) * 4 }
