package moe

import (
	"finemoe/internal/tensor"
)

// FineGrainedEntropy returns the mean Shannon entropy (nats) of the
// iteration-level gate distributions across all layers and iterations —
// the "fine-grained" quantity of the paper's Fig. 3b.
func FineGrainedEntropy(iters []*Iteration) float64 {
	var sum float64
	var n int
	for _, it := range iters {
		for _, p := range it.Probs {
			sum += tensor.Entropy(p)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CoarseGrainedEntropy aggregates each layer's gate distributions across all
// iterations of a request (request-level view, as MoE-Infinity's Expert
// Activation Matrix does) and returns the mean per-layer entropy of the
// aggregate — the "coarse-grained" quantity of Fig. 3b.
func CoarseGrainedEntropy(iters []*Iteration) float64 {
	if len(iters) == 0 {
		return 0
	}
	layers := len(iters[0].Probs)
	experts := len(iters[0].Probs[0])
	var sum float64
	agg := make([]float64, experts)
	for l := 0; l < layers; l++ {
		for i := range agg {
			agg[i] = 0
		}
		for _, it := range iters {
			tensor.Axpy(1, it.Probs[l], agg)
		}
		tensor.Normalize1(agg)
		sum += tensor.Entropy(agg)
	}
	return sum / float64(layers)
}

// EntropyByIteration returns, for each prefix length i, the mean per-layer
// entropy of gate distributions aggregated over iterations [0, i] — the
// curve of Fig. 3c showing predictability degrading as expert patterns are
// aggregated through inference iterations.
func EntropyByIteration(iters []*Iteration) []float64 {
	if len(iters) == 0 {
		return nil
	}
	layers := len(iters[0].Probs)
	experts := len(iters[0].Probs[0])
	// Running per-layer aggregate.
	agg := make([][]float64, layers)
	for l := range agg {
		agg[l] = make([]float64, experts)
	}
	out := make([]float64, len(iters))
	tmp := make([]float64, experts)
	for i, it := range iters {
		var sum float64
		for l := 0; l < layers; l++ {
			tensor.Axpy(1, it.Probs[l], agg[l])
			copy(tmp, agg[l])
			tensor.Normalize1(tmp)
			sum += tensor.Entropy(tmp)
		}
		out[i] = sum / float64(layers)
	}
	return out
}

// ActivationHeatmap accumulates expert activation counts into an L×J matrix.
// With a single iteration it is the paper's fine-grained heatmap; with all
// iterations of a request it is the coarse-grained one (Fig. 3a).
func ActivationHeatmap(iters []*Iteration, layers, experts int) [][]float64 {
	h := make([][]float64, layers)
	for l := range h {
		h[l] = make([]float64, experts)
	}
	for _, it := range iters {
		for l, act := range it.Active {
			for _, j := range act {
				h[l][j]++
			}
		}
	}
	return h
}

// MarginalUsage returns the model-wide marginal activation frequency per
// expert index, aggregated across layers and iterations and normalized to a
// distribution. Balanced routing (the paper's §2.3 premise) shows up as a
// near-uniform marginal.
func MarginalUsage(traces [][]*Iteration, experts int) []float64 {
	m := make([]float64, experts)
	for _, iters := range traces {
		for _, it := range iters {
			for _, act := range it.Active {
				for _, j := range act {
					m[j]++
				}
			}
		}
	}
	tensor.Normalize1(m)
	return m
}

// FlattenProbs concatenates an iteration's per-layer distributions for the
// first `layers` layers into one vector — the representation used for
// trajectory similarity (§4.2.2). layers < 0 flattens everything.
func FlattenProbs(it *Iteration, layers int) []float64 {
	if layers < 0 || layers > len(it.Probs) {
		layers = len(it.Probs)
	}
	if layers == 0 {
		return nil
	}
	experts := len(it.Probs[0])
	out := make([]float64, 0, layers*experts)
	for l := 0; l < layers; l++ {
		out = append(out, it.Probs[l]...)
	}
	return out
}

// IterationHitRate computes the expert hit rate of predicting iteration
// `want` with the per-layer expert sets in `predicted`: the fraction of
// want's activated experts found in the prediction (the paper's "overlapped
// expert ratio", §4.2.3).
func IterationHitRate(want *Iteration, predicted [][]int) float64 {
	var hit, total int
	for l, act := range want.Active {
		var pred []int
		if l < len(predicted) {
			pred = predicted[l]
		}
		set := make(map[int]bool, len(pred))
		for _, j := range pred {
			set[j] = true
		}
		for _, j := range act {
			total++
			if set[j] {
				hit++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}
