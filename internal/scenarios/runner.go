package scenarios

import (
	"fmt"
	"sort"
	"strings"

	"finemoe/internal/cluster"
	"finemoe/internal/core"
	"finemoe/internal/memsim"
	"finemoe/internal/metrics"
	"finemoe/internal/moe"
	"finemoe/internal/par"
	"finemoe/internal/serve"
	"finemoe/internal/workload"
)

// Options configures a Runner: the simulated model and testbed every
// scenario in the matrix runs on, so differences between reports come
// from the scenarios themselves.
type Options struct {
	// Model is the simulated MoE model (required).
	Model moe.Config
	// GPU and NumGPUs define the per-instance testbed (defaults: RTX 3090
	// × 6, the paper's).
	GPU     memsim.GPUSpec
	NumGPUs int
	// StoreCapacity is each instance's Expert Map Store size (default
	// 1000, the paper's).
	StoreCapacity int
	// CacheBytes is each instance's expert-cache budget (0 = the
	// engine's derived default).
	CacheBytes int64
	// DRAMBytes bounds each instance's host DRAM tier, spilling experts
	// to an NVMe backing tier behind a shared staging link (0 = the
	// degenerate unbounded-DRAM hierarchy).
	DRAMBytes int64
	// MaxInput and MaxOutput clamp token counts (0 = unclamped); applied
	// to trace requests and injected follow-ups alike.
	MaxInput, MaxOutput int
	// Seed drives workload sampling and the model simulator.
	Seed uint64
	// Workers bounds RunMatrix's scenario-level parallelism: 0 uses
	// GOMAXPROCS, 1 forces the serial path, n > 1 runs at most n
	// scenarios concurrently. Reports are byte-identical regardless of
	// the worker count — every scenario run is a pure function of
	// (Options, Scenario), and results are ordered by matrix position.
	Workers int
	// ClusterWorkers shards each scenario's cluster event loop across
	// worker goroutines (cluster.Options.Workers): <= 1 keeps the serial
	// loop, n > 1 advances instance shards in parallel epochs. Reports
	// are byte-identical at every setting; the two parallelism axes
	// compose (scenarios across Workers, instances within a scenario
	// across ClusterWorkers).
	ClusterWorkers int
}

func (o Options) withDefaults() Options {
	if o.GPU.Name == "" {
		o.GPU = memsim.RTX3090()
	}
	if o.NumGPUs <= 0 {
		o.NumGPUs = 6
	}
	if o.StoreCapacity <= 0 {
		o.StoreCapacity = 1000
	}
	return o
}

// Runner executes scenarios on a shared model and testbed.
type Runner struct {
	opts  Options
	model *moe.Model
}

// NewRunner builds a runner; the model simulator is constructed once and
// shared read-only across every scenario run.
func NewRunner(opts Options) *Runner {
	if opts.Model.Name == "" {
		panic("scenarios: Options.Model is required")
	}
	opts = opts.withDefaults()
	return &Runner{opts: opts, model: moe.NewModel(opts.Model, opts.Seed)}
}

// engine builds one fresh cold-store FineMoE serving instance (engines
// are single-run; every scenario gets a new fleet).
func (r *Runner) engine() *serve.Engine {
	cfg := r.opts.Model
	pol := core.NewFineMoE(
		core.NewStore(cfg, r.opts.StoreCapacity, cfg.OptimalPrefetchDistance),
		core.Options{})
	return serve.New(serve.Options{
		Model: r.model, GPU: r.opts.GPU, NumGPUs: r.opts.NumGPUs,
		CacheBytes: r.opts.CacheBytes,
		Policy:     pol,
		Memory:     memsim.ThreeTier(r.opts.DRAMBytes),
	})
}

// clamp applies the runner's token clamps to one request.
func (r *Runner) clamp(q workload.Request) workload.Request {
	if r.opts.MaxInput > 0 && q.InputTokens > r.opts.MaxInput {
		q.InputTokens = r.opts.MaxInput
	}
	if r.opts.MaxOutput > 0 && q.OutputTokens > r.opts.MaxOutput {
		q.OutputTokens = r.opts.MaxOutput
	}
	return q
}

// TenantReport is one tenant's slice of a scenario run.
type TenantReport struct {
	// Requests counts the tenant's offered arrivals; Served its
	// completions.
	Requests, Served int
	// MeanTTFT and P99TTFT are the tenant's first-token latencies (ms).
	MeanTTFT, P99TTFT float64
}

// Report is one scenario's comparable outcome.
type Report struct {
	// Scenario, Workload and Fleet identify the cell.
	Scenario, Workload, Fleet string
	// Requests counts offered arrivals, follow-ups included; FollowUps
	// the closed-loop injections among them.
	Requests, FollowUps int
	// Admitted/Rejected/Served are the pipeline counts.
	Admitted, Rejected, Served int
	// TTFT, TPOT and E2E are fleet-wide latency order statistics (ms).
	TTFT, TPOT, E2E metrics.Summary
	// HitRate is the fleet expert-cache hit rate.
	HitRate float64
	// Dispersion is the offered traffic's index of dispersion (Poisson ≈
	// 1; bursty > 1), measured over all arrivals including follow-ups.
	Dispersion float64
	// PeakInstances, Resizes and InstanceHours summarize autoscaling.
	PeakInstances int
	Resizes       int
	InstanceHours float64
	// WallClockMS is the fleet makespan.
	WallClockMS float64
	// Tenants partitions the run per tenant (nil for single-tenant
	// scenarios).
	Tenants map[string]TenantReport

	// Faulted marks a scenario that declared a FaultSpec; the fields
	// below (and their serialized lines) exist only then, so fault-free
	// reports stay byte-identical to pre-fault-support ones.
	Faulted bool
	// Crashes/Failed/Lost/Retries/HedgedWins are the availability counts
	// (see cluster.Result); DegradedMS the brownout/stall exposure.
	Crashes, Failed, Lost, Retries, HedgedWins int
	DegradedMS                                 float64
	// Goodput is Served / Requests — the fraction of offered work that
	// completed.
	Goodput float64
}

// Serialize renders the report as a stable, line-oriented key=value form:
// two runs of the same scenario and seed must serialize byte-identically
// (the determinism contract golden tests pin).
func (rep *Report) Serialize() string {
	var b strings.Builder
	w := func(k string, v any) { fmt.Fprintf(&b, "%s=%v\n", k, v) }
	w("scenario", rep.Scenario)
	w("workload", rep.Workload)
	w("fleet", rep.Fleet)
	w("requests", rep.Requests)
	w("follow_ups", rep.FollowUps)
	w("admitted", rep.Admitted)
	w("rejected", rep.Rejected)
	w("served", rep.Served)
	w("ttft_ms", fmt.Sprintf("mean=%.6f p50=%.6f p99=%.6f max=%.6f",
		rep.TTFT.Mean, rep.TTFT.P50, rep.TTFT.P99, rep.TTFT.Max))
	w("tpot_ms", fmt.Sprintf("mean=%.6f p99=%.6f", rep.TPOT.Mean, rep.TPOT.P99))
	w("e2e_ms", fmt.Sprintf("mean=%.6f p99=%.6f", rep.E2E.Mean, rep.E2E.P99))
	w("hit_rate", fmt.Sprintf("%.6f", rep.HitRate))
	w("dispersion", fmt.Sprintf("%.6f", rep.Dispersion))
	w("peak_instances", rep.PeakInstances)
	w("resizes", rep.Resizes)
	w("instance_hours", fmt.Sprintf("%.8f", rep.InstanceHours))
	w("wall_clock_ms", fmt.Sprintf("%.6f", rep.WallClockMS))
	if rep.Faulted {
		w("crashes", rep.Crashes)
		w("failed", rep.Failed)
		w("lost_in_flight", rep.Lost)
		w("retries", rep.Retries)
		w("hedged_wins", rep.HedgedWins)
		w("degraded_ms", fmt.Sprintf("%.6f", rep.DegradedMS))
		w("goodput", fmt.Sprintf("%.6f", rep.Goodput))
	}
	names := make([]string, 0, len(rep.Tenants))
	for name := range rep.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := rep.Tenants[name]
		w("tenant."+name, fmt.Sprintf("requests=%d served=%d ttft_mean=%.6f ttft_p99=%.6f",
			t.Requests, t.Served, t.MeanTTFT, t.P99TTFT))
	}
	return b.String()
}

// String renders a one-line summary.
func (rep *Report) String() string {
	return fmt.Sprintf(
		"%s [%s on %s]: served %d/%d (%d follow-ups, %d rejected), TTFT %.0f ms (p99 %.0f), hit rate %.3f, dispersion %.2f, peak %d inst, %.5f inst-h",
		rep.Scenario, rep.Workload, rep.Fleet, rep.Served, rep.Requests,
		rep.FollowUps, rep.Rejected, rep.TTFT.Mean, rep.TTFT.P99,
		rep.HitRate, rep.Dispersion, rep.PeakInstances, rep.InstanceHours)
}

// workloadLabel renders the workload's short identity.
func workloadLabel(w WorkloadSpec) string {
	switch {
	case len(w.Tenants) > 0:
		names := make([]string, len(w.Tenants))
		for i, t := range w.Tenants {
			names[i] = t.Name + ":" + t.Arrivals.Name()
		}
		return "tenants[" + strings.Join(names, ",") + "]"
	case w.Sessions != nil:
		return fmt.Sprintf("sessions(%s, %.1f turns)", w.Arrivals.Name(), w.Sessions.MeanTurns)
	default:
		return w.Arrivals.Name()
	}
}

// Run executes one scenario end to end and reports it.
func (r *Runner) Run(sc Scenario) (*Report, error) {
	if sc.Fleet.Instances <= 0 {
		return nil, fmt.Errorf("scenarios: %s: fleet needs at least one instance", sc.Name)
	}

	// Workload: the open-loop trace plus, for sessions, the closed-loop
	// follow-up hook. tenantOf tracks every offered request's tenant so
	// served metrics can be partitioned after the run.
	var trace []workload.Request
	var followUp func(serve.RequestMetrics, workload.Request) (workload.Request, bool)
	dim := r.opts.Model.SemDim
	injectedArrivals := []float64{}
	switch {
	case len(sc.Workload.Tenants) > 0:
		for i, tn := range sc.Workload.Tenants {
			if tn.Name == "" {
				return nil, fmt.Errorf("scenarios: %s: tenant %d has no name", sc.Name, i)
			}
			if tn.Arrivals == nil {
				return nil, fmt.Errorf("scenarios: %s: tenant %q has no arrival process", sc.Name, tn.Name)
			}
		}
		trace = workload.MultiTenantTrace(dim, r.opts.Seed, sc.Workload.Tenants)
	case sc.Workload.Sessions != nil:
		if sc.Workload.Arrivals == nil {
			return nil, fmt.Errorf("scenarios: %s: sessions need an arrival process", sc.Name)
		}
		sess := workload.NewSessions(sc.Workload.Dataset, dim, *sc.Workload.Sessions, r.opts.Seed)
		trace = sess.Initial(sc.Workload.Arrivals, sc.Workload.Requests, 0)
		followUp = func(done serve.RequestMetrics, orig workload.Request) (workload.Request, bool) {
			fu, ok := sess.FollowUp(orig, done.EndMS)
			if !ok {
				return workload.Request{}, false
			}
			injectedArrivals = append(injectedArrivals, fu.ArrivalMS)
			return r.clamp(fu), true
		}
	default:
		if sc.Workload.Arrivals == nil {
			return nil, fmt.Errorf("scenarios: %s: workload needs an arrival process", sc.Name)
		}
		trace = workload.OnlineTrace(sc.Workload.Dataset, dim, workload.OnlineOptions{
			Arrivals: sc.Workload.Arrivals, N: sc.Workload.Requests, Seed: r.opts.Seed,
		})
	}
	for i := range trace {
		trace[i] = r.clamp(trace[i])
	}

	// Fleet: initial engines, named policies, optional autoscaling.
	rt, err := NewRouter(sc.Fleet.Router)
	if err != nil {
		return nil, fmt.Errorf("scenarios: %s: %w", sc.Name, err)
	}
	adm, err := NewAdmission(sc.Fleet.Admission, sc.Fleet.AdmitBurst, sc.Fleet.AdmitRate)
	if err != nil {
		return nil, fmt.Errorf("scenarios: %s: %w", sc.Name, err)
	}
	engines := make([]*serve.Engine, sc.Fleet.Instances)
	for i := range engines {
		engines[i] = r.engine()
	}
	copts := cluster.Options{
		Engines:   engines,
		Admission: adm,
		Router:    rt,
		FollowUp:  followUp,
		Workers:   r.opts.ClusterWorkers,
	}
	if sc.Faults.faulted() {
		copts.FaultPlan = sc.Faults.plan()
		copts.Resilience = sc.Faults.Resilience
		if sc.Faults.Resilience.ReplaceOnCrash {
			// Crash replacement spawns cold-store instances through the
			// same factory autoscaled growth uses; legal without an
			// autoscaler.
			copts.EngineFactory = func(id int) *serve.Engine { return r.engine() }
			copts.MaxInstances = sc.Fleet.maxInst()
		}
	}
	if sc.Fleet.Autoscale {
		copts.Autoscaler = cluster.NewQueuePressure(cluster.QueuePressureOptions{
			HighWatermark: sc.Fleet.HighWatermark,
			LowWatermark:  sc.Fleet.LowWatermark,
			SustainMS:     sc.Fleet.SustainMS,
			CooldownMS:    sc.Fleet.CooldownMS,
		})
		copts.EngineFactory = func(id int) *serve.Engine { return r.engine() }
		copts.MinInstances = sc.Fleet.minInst()
		copts.MaxInstances = sc.Fleet.maxInst()
		copts.AutoscaleIntervalMS = sc.Fleet.TickMS
	}
	res := cluster.New(copts).RunTrace(trace)

	// Aggregate into the comparable report.
	rep := &Report{
		Scenario:      sc.Name,
		Workload:      workloadLabel(sc.Workload),
		Fleet:         sc.Fleet.Label(),
		Requests:      len(trace) + res.FollowUps,
		FollowUps:     res.FollowUps,
		Admitted:      res.Admitted,
		Rejected:      res.Rejected,
		Served:        res.Served,
		TTFT:          res.TTFT,
		TPOT:          res.TPOT,
		E2E:           res.E2E,
		HitRate:       res.HitRate,
		PeakInstances: res.PeakInstances,
		Resizes:       len(res.ScaleEvents),
		InstanceHours: res.InstanceHours,
		WallClockMS:   res.WallClockMS,
	}
	if sc.Faults.faulted() {
		rep.Faulted = true
		rep.Crashes = res.Crashes
		rep.Failed = res.FailedRequests
		rep.Lost = res.LostInFlight
		rep.Retries = res.Retries
		rep.HedgedWins = res.HedgedWins
		rep.DegradedMS = res.DegradedMS
		if rep.Requests > 0 {
			rep.Goodput = float64(res.Served) / float64(rep.Requests)
		}
	}

	// Burstiness of the offered traffic (trace plus follow-ups), over 8
	// windows of the span — wide enough that each window holds several
	// arrivals even on short traces (per-window means near 1 squash the
	// count variance toward Bernoulli and hide bursts).
	arrivals := make([]float64, 0, len(trace)+len(injectedArrivals))
	for _, q := range trace {
		arrivals = append(arrivals, q.ArrivalMS)
	}
	arrivals = append(arrivals, injectedArrivals...)
	sort.Float64s(arrivals)
	if len(arrivals) > 0 {
		rep.Dispersion = workload.IndexOfDispersion(arrivals, arrivals[len(arrivals)-1]/8)
	}

	// Per-tenant partition: every served request's metrics fall under
	// exactly one tenant. Tenant mixes are open-loop (no sessions), so
	// the trace holds every offered request.
	if len(sc.Workload.Tenants) > 0 {
		tenantOf := make(map[uint64]string, len(trace))
		perTenant := map[string][]float64{}
		counts := map[string]int{}
		for _, q := range trace {
			tenantOf[q.ID] = q.Tenant
			counts[q.Tenant]++
		}
		for _, ir := range res.Instances {
			for _, q := range ir.Result.Requests {
				name := tenantOf[q.ID]
				perTenant[name] = append(perTenant[name], q.TTFTms)
			}
		}
		rep.Tenants = map[string]TenantReport{}
		for _, t := range sc.Workload.Tenants {
			ttfts := append([]float64(nil), perTenant[t.Name]...)
			sort.Float64s(ttfts)
			tr := TenantReport{Requests: counts[t.Name], Served: len(ttfts)}
			if len(ttfts) > 0 {
				s := metrics.Summarize(ttfts)
				tr.MeanTTFT, tr.P99TTFT = s.Mean, s.P99
			}
			rep.Tenants[t.Name] = tr
		}
	}
	return rep, nil
}

// RunMatrix executes a scenario matrix and returns one report per
// scenario, in matrix order. Scenarios run on a bounded worker pool
// (Options.Workers); each run builds its own fleet and trace and shares
// only the read-only model simulator, so the reports — and their
// serialized bytes — are identical to a serial sweep regardless of the
// worker count or scheduling. On error, the error of the lowest-index
// failing scenario is returned (what a serial sweep would have hit
// first).
func (r *Runner) RunMatrix(scs []Scenario) ([]*Report, error) {
	reports := make([]*Report, len(scs))
	errs := make([]error, len(scs))
	par.ForEach(r.opts.Workers, len(scs), func(i int) {
		reports[i], errs[i] = r.Run(scs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}
