package scenarios

import (
	"strings"
	"testing"

	"finemoe/internal/moe"
	"finemoe/internal/workload"
)

// testRunner builds a runner over the tiny model with tight token clamps
// so every scenario finishes in milliseconds.
func testRunner(seed uint64) *Runner {
	return NewRunner(Options{
		Model: moe.Tiny(), NumGPUs: 2, StoreCapacity: 100,
		MaxInput: 8, MaxOutput: 8, Seed: seed,
	})
}

func testDataset() workload.Dataset {
	return workload.LMSYSChat1M()
}

// TestRunPlainScenario: the basic workload × fleet cell runs end to end
// and accounts for every request.
func TestRunPlainScenario(t *testing.T) {
	rep, err := testRunner(1).Run(Scenario{
		Name: "plain",
		Workload: WorkloadSpec{
			Dataset:  testDataset(),
			Arrivals: workload.Poisson{RatePerSec: 10},
			Requests: 16,
		},
		Fleet: FleetSpec{Instances: 2, Router: "least-loaded"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 16 || rep.Served != 16 || rep.Rejected != 0 {
		t.Fatalf("accounting wrong: %+v", rep)
	}
	if rep.TTFT.Mean <= 0 || rep.HitRate <= 0 {
		t.Fatalf("degenerate metrics: %+v", rep)
	}
	if rep.Fleet != "fixed-2/least-loaded" || rep.Workload != "poisson" {
		t.Fatalf("labels wrong: %q / %q", rep.Fleet, rep.Workload)
	}
}

// TestRunSessionScenario: closed-loop sessions inject follow-ups and the
// report counts them on top of the trace.
func TestRunSessionScenario(t *testing.T) {
	rep, err := testRunner(1).Run(Scenario{
		Name: "sess",
		Workload: WorkloadSpec{
			Dataset:  testDataset(),
			Arrivals: workload.Poisson{RatePerSec: 10},
			Requests: 12,
			Sessions: &workload.SessionConfig{MeanTurns: 3, ThinkTimeS: 0.1, Drift: 0.05},
		},
		Fleet: FleetSpec{Instances: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FollowUps == 0 {
		t.Fatal("session scenario injected no follow-ups")
	}
	if rep.Requests != 12+rep.FollowUps || rep.Served != rep.Requests {
		t.Fatalf("session accounting wrong: %+v", rep)
	}
}

// TestRunTenantScenario: the per-tenant partition is exact — tenant
// requests and served counts sum to the fleet totals.
func TestRunTenantScenario(t *testing.T) {
	rep, err := testRunner(1).Run(Scenario{
		Name: "tenants",
		Workload: WorkloadSpec{
			Tenants: []workload.TenantSpec{
				{Name: "a", Dataset: testDataset(),
					Arrivals: workload.Poisson{RatePerSec: 6}, N: 10},
				{Name: "b", Dataset: workload.ShareGPT(),
					Arrivals: workload.BurstyMMPP(6), N: 8},
			},
		},
		Fleet: FleetSpec{Instances: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("tenant partition has %d entries", len(rep.Tenants))
	}
	reqs, served := 0, 0
	for _, tr := range rep.Tenants {
		reqs += tr.Requests
		served += tr.Served
		if tr.Served > 0 && tr.MeanTTFT <= 0 {
			t.Fatalf("tenant with served requests has no latency: %+v", tr)
		}
	}
	if reqs != rep.Requests || served != rep.Served {
		t.Fatalf("tenant partition not exact: %d/%d vs fleet %d/%d",
			reqs, served, rep.Requests, rep.Served)
	}
}

// TestRunAutoscaledScenario: the autoscaled fleet resizes and reports it.
func TestRunAutoscaledScenario(t *testing.T) {
	rep, err := testRunner(1).Run(Scenario{
		Name: "auto",
		Workload: WorkloadSpec{
			Dataset:  testDataset(),
			Arrivals: workload.BurstyMMPP(20),
			Requests: 32,
		},
		Fleet: FleetSpec{Instances: 1, Router: "semantic-affinity",
			Autoscale: true, MinInstances: 1, MaxInstances: 4,
			HighWatermark: 1.5, LowWatermark: 1.0,
			SustainMS: 20, CooldownMS: 20, TickMS: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakInstances < 2 || rep.Resizes == 0 {
		t.Fatalf("burst did not trigger autoscaling: peak %d, %d resizes",
			rep.PeakInstances, rep.Resizes)
	}
	if rep.Fleet != "auto[1..4]/semantic-affinity" {
		t.Fatalf("fleet label %q", rep.Fleet)
	}
}

// TestReportSerializeDeterminism: the golden contract — two runs of the
// same scenario matrix serialize byte-identically, and the serialized
// form carries the per-tenant partition in sorted order.
func TestReportSerializeDeterminism(t *testing.T) {
	matrix := []Scenario{
		{Name: "plain", Workload: WorkloadSpec{
			Dataset:  testDataset(),
			Arrivals: workload.BurstyMMPP(10), Requests: 12},
			Fleet: FleetSpec{Instances: 2, Router: "round-robin"}},
		{Name: "tenants", Workload: WorkloadSpec{
			Tenants: []workload.TenantSpec{
				{Name: "a", Dataset: testDataset(),
					Arrivals: workload.Poisson{RatePerSec: 6}, N: 6},
				{Name: "b", Dataset: workload.ShareGPT(),
					Arrivals: workload.FlashSpike(6), N: 6},
			}},
			Fleet: FleetSpec{Instances: 1, Autoscale: true, MaxInstances: 2}},
	}
	serialize := func() string {
		reps, err := testRunner(9).RunMatrix(matrix)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, rep := range reps {
			b.WriteString(rep.Serialize())
			b.WriteString("---\n")
		}
		return b.String()
	}
	a, b := serialize(), serialize()
	if a != b {
		t.Fatalf("scenario reports not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "tenant.a=") || !strings.Contains(a, "tenant.b=") {
		t.Fatalf("serialized report missing tenant partition:\n%s", a)
	}
	// A different seed must change the serialized outcome.
	reps, err := testRunner(10).RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	var c strings.Builder
	for _, rep := range reps {
		c.WriteString(rep.Serialize())
		c.WriteString("---\n")
	}
	if a == c.String() {
		t.Fatal("different seeds serialized identically")
	}
}

// TestRunValidation: malformed scenarios error instead of panicking.
func TestRunValidation(t *testing.T) {
	r := testRunner(1)
	for _, sc := range []Scenario{
		{Name: "no-fleet", Workload: WorkloadSpec{
			Dataset: testDataset(), Arrivals: workload.Poisson{RatePerSec: 1}, Requests: 1}},
		{Name: "no-arrivals", Workload: WorkloadSpec{Dataset: testDataset(), Requests: 1},
			Fleet: FleetSpec{Instances: 1}},
		{Name: "bad-router", Workload: WorkloadSpec{
			Dataset: testDataset(), Arrivals: workload.Poisson{RatePerSec: 1}, Requests: 1},
			Fleet: FleetSpec{Instances: 1, Router: "nope"}},
		{Name: "bad-admission", Workload: WorkloadSpec{
			Dataset: testDataset(), Arrivals: workload.Poisson{RatePerSec: 1}, Requests: 1},
			Fleet: FleetSpec{Instances: 1, Admission: "nope"}},
		{Name: "unnamed-tenant", Workload: WorkloadSpec{
			Tenants: []workload.TenantSpec{
				{Dataset: testDataset(), Arrivals: workload.Poisson{RatePerSec: 1}, N: 1}}},
			Fleet: FleetSpec{Instances: 1}},
		{Name: "tenant-no-arrivals", Workload: WorkloadSpec{
			Tenants: []workload.TenantSpec{{Name: "x", Dataset: testDataset(), N: 1}}},
			Fleet: FleetSpec{Instances: 1}},
	} {
		if _, err := r.Run(sc); err == nil {
			t.Errorf("scenario %s did not error", sc.Name)
		}
	}
}
