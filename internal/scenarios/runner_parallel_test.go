package scenarios

import (
	"strings"
	"testing"

	"finemoe/internal/moe"
	"finemoe/internal/workload"
)

// parallelMatrix is a small but heterogeneous gauntlet: plain, bursty,
// session, tenant, and autoscaled cells, so the worker pool crosses every
// workload shape and fleet path.
func parallelMatrix() []Scenario {
	return []Scenario{
		{Name: "plain", Workload: WorkloadSpec{
			Dataset:  testDataset(),
			Arrivals: workload.Poisson{RatePerSec: 10}, Requests: 10},
			Fleet: FleetSpec{Instances: 2, Router: "round-robin"}},
		{Name: "bursty", Workload: WorkloadSpec{
			Dataset:  testDataset(),
			Arrivals: workload.BurstyMMPP(12), Requests: 12},
			Fleet: FleetSpec{Instances: 1, Autoscale: true, MaxInstances: 3,
				SustainMS: 20, CooldownMS: 20, TickMS: 10}},
		{Name: "sess", Workload: WorkloadSpec{
			Dataset:  testDataset(),
			Arrivals: workload.Poisson{RatePerSec: 8}, Requests: 8,
			Sessions: &workload.SessionConfig{MeanTurns: 2, ThinkTimeS: 0.1, Drift: 0.05}},
			Fleet: FleetSpec{Instances: 2}},
		{Name: "tenants", Workload: WorkloadSpec{
			Tenants: []workload.TenantSpec{
				{Name: "a", Dataset: testDataset(),
					Arrivals: workload.Poisson{RatePerSec: 6}, N: 6},
				{Name: "b", Dataset: workload.ShareGPT(),
					Arrivals: workload.FlashSpike(6), N: 6},
			}},
			Fleet: FleetSpec{Instances: 2, Router: "least-loaded"}},
		{Name: "affinity", Workload: WorkloadSpec{
			Dataset:  testDataset(),
			Arrivals: workload.DiurnalSwing(10), Requests: 10},
			Fleet: FleetSpec{Instances: 2, Router: "semantic-affinity"}},
	}
}

func serializeAll(t *testing.T, reps []*Report) string {
	t.Helper()
	var b strings.Builder
	for _, rep := range reps {
		b.WriteString(rep.Serialize())
		b.WriteString("---\n")
	}
	return b.String()
}

// TestRunMatrixParallelMatchesSerial is the parallel runner's determinism
// contract: for every worker count, RunMatrix must return byte-identical
// reports in matrix order — equal to the Workers=1 serial sweep. This
// test is deliberately not short-skipped so the CI race job exercises the
// worker pool under the race detector.
func TestRunMatrixParallelMatchesSerial(t *testing.T) {
	matrix := parallelMatrix()
	runner := func(workers int) *Runner {
		return NewRunner(Options{
			Model: moe.Tiny(), NumGPUs: 2, StoreCapacity: 100,
			MaxInput: 8, MaxOutput: 8, Seed: 5,
			Workers: workers,
		})
	}
	serialReps, err := runner(1).RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	serial := serializeAll(t, serialReps)
	for _, workers := range []int{0, 2, 3, 16} {
		reps, err := runner(workers).RunMatrix(matrix)
		if err != nil {
			t.Fatal(err)
		}
		if got := serializeAll(t, reps); got != serial {
			t.Fatalf("workers=%d diverged from serial:\n%s\nvs\n%s", workers, got, serial)
		}
	}
}

// TestRunMatrixClusterWorkersParity: the second parallelism axis — the
// sharded cluster event loop inside each scenario — also produces
// byte-identical reports at every worker count, alone and composed with
// scenario-level parallelism. This is the scenario-layer face of the
// cluster package's own byte-parity tests, run over sessions, tenants,
// autoscaling and affinity routing.
func TestRunMatrixClusterWorkersParity(t *testing.T) {
	matrix := parallelMatrix()
	runner := func(scWorkers, clWorkers int) *Runner {
		return NewRunner(Options{
			Model: moe.Tiny(), NumGPUs: 2, StoreCapacity: 100,
			MaxInput: 8, MaxOutput: 8, Seed: 5,
			Workers: scWorkers, ClusterWorkers: clWorkers,
		})
	}
	serialReps, err := runner(1, 0).RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	serial := serializeAll(t, serialReps)
	for _, w := range [][2]int{{1, 2}, {1, 4}, {2, 2}, {3, 3}} {
		reps, err := runner(w[0], w[1]).RunMatrix(matrix)
		if err != nil {
			t.Fatal(err)
		}
		if got := serializeAll(t, reps); got != serial {
			t.Fatalf("workers=%d cluster-workers=%d diverged from serial:\n%s\nvs\n%s",
				w[0], w[1], got, serial)
		}
	}
}

// TestRunMatrixParallelError: a failing cell surfaces the same error the
// serial sweep would hit first (the lowest matrix index), and no partial
// results leak.
func TestRunMatrixParallelError(t *testing.T) {
	matrix := parallelMatrix()
	matrix[1] = Scenario{Name: "broken", Workload: WorkloadSpec{
		Dataset: testDataset(), Arrivals: workload.Poisson{RatePerSec: 1}, Requests: 1}}
	matrix[3] = Scenario{Name: "also-broken", Workload: WorkloadSpec{
		Dataset: testDataset(), Requests: 1}, Fleet: FleetSpec{Instances: 1}}
	r := NewRunner(Options{
		Model: moe.Tiny(), NumGPUs: 2, StoreCapacity: 100,
		MaxInput: 8, MaxOutput: 8, Seed: 5, Workers: 4,
	})
	reps, err := r.RunMatrix(matrix)
	if err == nil {
		t.Fatal("broken matrix did not error")
	}
	if reps != nil {
		t.Fatal("error run returned partial reports")
	}
	if !strings.Contains(err.Error(), "broken") || strings.Contains(err.Error(), "also-broken") {
		t.Fatalf("expected the lowest-index error (scenario %q), got: %v", "broken", err)
	}
}
