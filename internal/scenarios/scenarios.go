// Package scenarios turns the cluster pipeline into a regression gauntlet:
// a Scenario declaratively pairs a workload shape (arrival process,
// multi-turn sessions, multi-tenant mix) with a fleet configuration
// (size, router, admission, autoscaling), and the Runner sweeps a matrix
// of scenarios through the admission → routing → instance pipeline into
// comparable, deterministically serializable Reports.
//
// The package exists so "how does the fleet behave under bursty traffic?"
// is a one-struct question instead of a bespoke experiment: the same spec
// drives finemoe-bench's scenariofig, finemoe-serve's replay mode, and
// the golden determinism tests.
package scenarios

import (
	"fmt"

	"finemoe/internal/cluster"
	"finemoe/internal/faults"
	"finemoe/internal/workload"
)

// WorkloadSpec declares a scenario's traffic. Exactly one of the three
// shapes applies, in precedence order: Tenants (multi-tenant mix),
// Sessions (closed-loop multi-turn), or the plain Dataset × Arrivals
// trace.
type WorkloadSpec struct {
	// Dataset is the prompt population (ignored when Tenants is set).
	Dataset workload.Dataset
	// Arrivals shapes the arrival timeline (ignored when Tenants is set).
	Arrivals workload.ArrivalProcess
	// Requests is the trace length (sessions: the number of session
	// openers; follow-up turns arrive on top).
	Requests int
	// Sessions, when non-nil, makes the workload closed-loop multi-turn:
	// Requests session openers arrive on Arrivals, and each completion
	// may spawn a semantically close follow-up after a think time.
	Sessions *workload.SessionConfig
	// Tenants, when non-empty, replaces Dataset/Arrivals/Requests with a
	// per-tenant mix merged into one arrival-ordered trace.
	Tenants []workload.TenantSpec
}

// FleetSpec declares the serving side: fleet size and pipeline policies,
// by name so specs stay declarative and serializable.
type FleetSpec struct {
	// Instances is the initial fleet size (autoscaled fleets start here).
	Instances int
	// Router names the placement policy:
	// round-robin | least-loaded | semantic-affinity (default).
	Router string
	// Admission names the gate: always (default) | token-bucket |
	// reject-all; AdmitBurst/AdmitRate parameterize token-bucket.
	Admission             string
	AdmitBurst, AdmitRate float64
	// Autoscale enables queue-pressure fleet resizing between
	// MinInstances and MaxInstances (defaults: 1 and 4×Instances).
	Autoscale                  bool
	MinInstances, MaxInstances int
	// Queue-pressure tuning (with Autoscale). Zero values take the
	// policy's own defaults — the same configuration a live
	// `finemoe-serve -autoscale` server runs with, so a replayed
	// scenario predicts the real server's scaling behavior unless the
	// spec explicitly opts into different tuning.
	HighWatermark, LowWatermark float64
	SustainMS, CooldownMS       float64
	// TickMS spaces autoscale evaluations on the shared clock (0 = the
	// cluster's default interval).
	TickMS float64
}

// Label renders the fleet's short identity for reports.
func (f FleetSpec) Label() string {
	if f.Autoscale {
		return fmt.Sprintf("auto[%d..%d]/%s", f.minInst(), f.maxInst(), f.router())
	}
	return fmt.Sprintf("fixed-%d/%s", f.Instances, f.router())
}

func (f FleetSpec) router() string {
	switch f.Router {
	case "", "semantic":
		return "semantic-affinity"
	}
	return f.Router
}

func (f FleetSpec) minInst() int {
	if f.MinInstances <= 0 {
		return 1
	}
	return f.MinInstances
}

func (f FleetSpec) maxInst() int {
	if f.MaxInstances <= 0 {
		return 4 * f.Instances
	}
	return f.MaxInstances
}

// FaultSpec declares a scenario's failure schedule and the resilience
// policy protecting against it. A nil FaultSpec (or one with an empty
// plan and disabled resilience) leaves the run byte-identical to a
// fault-free scenario.
type FaultSpec struct {
	// Crashes, Brownouts and Stalls form the declarative fault plan
	// (see internal/faults).
	Crashes   []faults.Crash
	Brownouts []faults.Brownout
	Stalls    []faults.Stall
	// Resilience configures request-level fault tolerance.
	Resilience cluster.ResilienceOptions
}

// plan assembles the spec's fault plan (nil when empty).
func (f *FaultSpec) plan() *faults.Plan {
	if f == nil {
		return nil
	}
	return &faults.Plan{Crashes: f.Crashes, Brownouts: f.Brownouts, Stalls: f.Stalls}
}

// faulted reports whether the spec schedules any fault or enables any
// resilience mechanism.
func (f *FaultSpec) faulted() bool {
	return f != nil && (!f.plan().Empty() || f.Resilience.Enabled || f.Resilience.ReplaceOnCrash)
}

// Scenario is one cell of the gauntlet: a named workload × fleet pairing.
type Scenario struct {
	// Name identifies the scenario in reports and tables.
	Name     string
	Workload WorkloadSpec
	Fleet    FleetSpec
	// Faults, when non-nil, injects the declared failure schedule into
	// the run and applies its resilience policy (see FaultSpec).
	Faults *FaultSpec
}

// NewRouter resolves a FleetSpec's router name to a fresh policy
// instance.
func NewRouter(name string) (cluster.Router, error) {
	switch name {
	case "round-robin":
		return cluster.NewRoundRobin(), nil
	case "least-loaded":
		return cluster.NewLeastLoaded(), nil
	case "memory-aware", "memory":
		return cluster.NewMemoryAware(), nil
	case "semantic-affinity", "semantic", "":
		return cluster.NewSemanticAffinity(cluster.SemanticAffinityOptions{}), nil
	}
	return nil, fmt.Errorf("scenarios: unknown router %q (round-robin|least-loaded|memory-aware|semantic-affinity)", name)
}

// NewAdmission resolves a FleetSpec's admission name to a fresh policy
// instance.
func NewAdmission(name string, burst, rate float64) (cluster.Admission, error) {
	switch name {
	case "always", "always-admit", "":
		return cluster.NewAlwaysAdmit(), nil
	case "token-bucket":
		return cluster.NewTokenBucket(burst, rate), nil
	case "reject-all":
		return cluster.NewRejectAll(), nil
	}
	return nil, fmt.Errorf("scenarios: unknown admission %q (always|token-bucket|reject-all)", name)
}
