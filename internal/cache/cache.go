// Package cache implements the Expert Cache (§4.5): per-GPU capacity-bounded
// residency of expert weights with pluggable eviction policies.
//
// The paper compares three eviction disciplines on this cache: LRU
// (Mixtral-Offloading), LFU (MoE-Infinity), and FineMoE's searched-map
// priority 1/(p·freq). Eviction is expressed through the Scorer interface so
// the ablation of Fig. 14b swaps policies without touching cache mechanics.
package cache

import (
	"fmt"

	"finemoe/internal/moe"
)

// Meta is the per-entry bookkeeping exposed to eviction scorers.
type Meta struct {
	// Freq counts cache hits on the entry (LFU's signal).
	Freq int
	// LastUse is the virtual time of the last hit (LRU's signal).
	LastUse float64
	// Inserted is the virtual time the entry became resident.
	Inserted float64
	// Pinned entries are in use by the current layer and are evicted
	// only as a last resort.
	Pinned bool
}

// Scorer ranks cache entries for eviction; the entry with the highest score
// is evicted first.
type Scorer interface {
	// Score returns the eviction priority of a resident expert.
	Score(ref moe.ExpertRef, m Meta, now float64) float64
	// Name identifies the policy in reports.
	Name() string
}

// LRU evicts the least-recently-used expert. The paper notes LRU fights the
// layer-sequential access pattern of MoE inference (§4.5), which Fig. 14b's
// ablation confirms.
type LRU struct{}

// Score implements Scorer: older last-use evicts first.
func (LRU) Score(_ moe.ExpertRef, m Meta, now float64) float64 { return now - m.LastUse }

// Name implements Scorer.
func (LRU) Name() string { return "LRU" }

// LFU evicts the least-frequently-used expert (MoE-Infinity's policy).
// Frequency is measured as a use rate over residency time rather than a raw
// count: without aging, long-resident entries with stale high counts would
// permanently starve fresh prefetches (the classic LFU pathology), which no
// production LFU implements.
type LFU struct{}

// Score implements Scorer: the lowest use rate evicts first.
func (LFU) Score(_ moe.ExpertRef, m Meta, now float64) float64 {
	age := now - m.Inserted
	if age < 1 {
		age = 1
	}
	rate := float64(m.Freq) / age
	return 1 / (rate + 1e-9)
}

// Name implements Scorer.
func (LFU) Name() string { return "LFU" }

// Stats aggregates cache activity counters.
type Stats struct {
	Hits, Misses    int
	Insertions      int
	Evictions       int
	PinnedEvictions int
	RejectedInserts int
	PeakResidentExp int
	CurrentResident int
}

// Cache is a single device's expert cache, sized in whole experts (the
// paper's §3.3 notes all experts of a model share one weight size, so byte
// capacity reduces to an expert-count capacity).
//
// Residency is a dense [layer][expert] table rather than a map: the
// expert universe is small (Layers × RoutedExperts), every hot operation
// — Contains, Lookup, Pin, and above all the per-insert victim scan —
// becomes an array index or an in-order sweep, and scanning in ascending
// (layer, expert) order makes eviction deterministic by construction
// instead of by a tie-break against map iteration order.
type Cache struct {
	capacity int
	scorer   Scorer
	stats    Stats
	// byLayer[l][e] is the residency record of expert (l, e), nil when
	// not resident. Rows grow on demand to the largest ref seen, so the
	// cache needs no up-front model shape.
	byLayer [][]*Meta
	// n counts resident experts.
	n int
	// strictPinned refuses to evict pinned entries: an insert that finds
	// every entry pinned is rejected (and counted) instead of evicting a
	// pinned victim. Host DRAM tiers run strict — a pinned entry there is
	// the source of an in-flight DMA and must not be dropped — while the
	// GPU cache keeps the lenient last-resort semantics.
	strictPinned bool
	// evictScratch backs the slice Insert returns, reused across calls so
	// the serving loop's insert path stays allocation-free after warmup.
	evictScratch []moe.ExpertRef
	// metaFree recycles Meta records from evicted entries; Insert reuses
	// them before allocating. Meta pointers never leave the package, so an
	// evicted entry's record cannot be aliased by callers.
	metaFree []*Meta
}

// New builds a cache holding at most capacity experts under the given
// eviction scorer. A zero capacity cache holds nothing (DeepSpeed-style
// pure on-demand configurations still use a small cache; capacity 0 is
// allowed for stress tests).
func New(capacity int, scorer Scorer) *Cache {
	if capacity < 0 {
		panic(fmt.Sprintf("cache: negative capacity %d", capacity))
	}
	if scorer == nil {
		panic("cache: nil scorer")
	}
	return &Cache{capacity: capacity, scorer: scorer}
}

// entry returns the residency record of ref, nil when not resident.
//
//finemoe:hotpath
func (c *Cache) entry(ref moe.ExpertRef) *Meta {
	if ref.Layer >= len(c.byLayer) {
		return nil
	}
	row := c.byLayer[ref.Layer]
	if ref.Expert >= len(row) {
		return nil
	}
	return row[ref.Expert]
}

// setEntry installs m as ref's record, growing the table to cover ref.
//
//finemoe:allocok grows the residency table only until it covers the model's expert universe
func (c *Cache) setEntry(ref moe.ExpertRef, m *Meta) {
	if ref.Layer < 0 || ref.Expert < 0 {
		panic(fmt.Sprintf("cache: negative expert ref %+v", ref))
	}
	for ref.Layer >= len(c.byLayer) {
		c.byLayer = append(c.byLayer, nil)
	}
	row := c.byLayer[ref.Layer]
	for ref.Expert >= len(row) {
		row = append(row, nil)
	}
	row[ref.Expert] = m
	c.byLayer[ref.Layer] = row
}

// NewStrictPinned builds a cache that never evicts pinned entries: an
// insert finding only pinned victims is rejected and counted in
// RejectedInserts rather than evicting one as a last resort.
func NewStrictPinned(capacity int, scorer Scorer) *Cache {
	c := New(capacity, scorer)
	c.strictPinned = true
	return c
}

// Capacity returns the expert-count capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of resident experts.
func (c *Cache) Len() int { return c.n }

// Contains reports residency without touching usage stats.
//
//finemoe:hotpath
func (c *Cache) Contains(ref moe.ExpertRef) bool {
	return c.entry(ref) != nil
}

// Lookup records a hit or miss at time now and returns residency. Hits
// update LFU/LRU bookkeeping.
//
//finemoe:hotpath
func (c *Cache) Lookup(ref moe.ExpertRef, now float64) bool {
	if m := c.entry(ref); m != nil {
		m.Freq++
		m.LastUse = now
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Pin marks a resident expert as in use by the executing layer.
// Pinning a non-resident expert is a no-op.
//
//finemoe:hotpath
func (c *Cache) Pin(ref moe.ExpertRef) {
	if m := c.entry(ref); m != nil {
		m.Pinned = true
	}
}

// Unpin clears a pin.
//
//finemoe:hotpath
func (c *Cache) Unpin(ref moe.ExpertRef) {
	if m := c.entry(ref); m != nil {
		m.Pinned = false
	}
}

// UnpinAll clears every pin (called at layer completion).
//
//finemoe:hotpath
func (c *Cache) UnpinAll() {
	for _, row := range c.byLayer {
		for _, m := range row {
			if m != nil {
				m.Pinned = false
			}
		}
	}
}

// Insert makes ref resident at time now, evicting by scorer as needed, and
// returns the evicted experts. Inserting a resident expert refreshes
// nothing and returns nil. If capacity is zero the insert is rejected.
// The returned slice aliases an internal scratch buffer: it is valid only
// until the next Insert on this cache — consume it before re-inserting.
func (c *Cache) Insert(ref moe.ExpertRef, now float64) []moe.ExpertRef {
	if c.capacity == 0 {
		c.stats.RejectedInserts++
		return nil
	}
	if c.Contains(ref) {
		return nil
	}
	c.evictScratch = c.evictScratch[:0]
	for c.n >= c.capacity {
		victim, ok := c.pickVictim(now)
		if !ok {
			if c.strictPinned {
				// Every entry is pinned (an in-flight DMA source);
				// refuse the insert rather than drop one mid-copy.
				c.stats.RejectedInserts++
				return c.evictScratch
			}
			// Everything is pinned; evict anyway (last resort) so
			// the activated expert can be served — but count it.
			victim, ok = c.pickVictimIncludingPinned(now)
			if !ok {
				c.stats.RejectedInserts++
				return c.evictScratch
			}
			c.stats.PinnedEvictions++
		}
		c.metaFree = append(c.metaFree, c.byLayer[victim.Layer][victim.Expert])
		c.byLayer[victim.Layer][victim.Expert] = nil
		c.n--
		c.stats.Evictions++
		c.evictScratch = append(c.evictScratch, victim)
	}
	m := c.newMeta()
	*m = Meta{Freq: 1, LastUse: now, Inserted: now}
	c.setEntry(ref, m)
	c.n++
	c.stats.Insertions++
	if c.n > c.stats.PeakResidentExp {
		c.stats.PeakResidentExp = c.n
	}
	return c.evictScratch
}

// newMeta pops the Meta free list, allocating only while the cache warms
// toward capacity (after that every insert evicts, recycling a record).
//
//finemoe:allocok grows the Meta free list only until the cache reaches capacity; steady-state inserts recycle the victim's record
func (c *Cache) newMeta() *Meta {
	if n := len(c.metaFree); n > 0 {
		m := c.metaFree[n-1]
		c.metaFree = c.metaFree[:n-1]
		return m
	}
	return &Meta{}
}

// pickVictim scans the dense table in ascending (layer, expert) order: a
// strict-greater argmax over an in-order scan keeps the lowest ref among
// ties, exactly the less() tie-break the map-backed cache applied, so the
// victim sequence — and every downstream byte — is unchanged.
func (c *Cache) pickVictim(now float64) (moe.ExpertRef, bool) {
	var best moe.ExpertRef
	bestScore := 0.0
	found := false
	for l, row := range c.byLayer {
		for e, m := range row {
			if m == nil || m.Pinned {
				continue
			}
			ref := moe.ExpertRef{Layer: l, Expert: e}
			s := c.scorer.Score(ref, *m, now)
			if !found || s > bestScore {
				best, bestScore, found = ref, s, true
			}
		}
	}
	return best, found
}

func (c *Cache) pickVictimIncludingPinned(now float64) (moe.ExpertRef, bool) {
	var best moe.ExpertRef
	bestScore := 0.0
	found := false
	for l, row := range c.byLayer {
		for e, m := range row {
			if m == nil {
				continue
			}
			ref := moe.ExpertRef{Layer: l, Expert: e}
			s := c.scorer.Score(ref, *m, now)
			if !found || s > bestScore {
				best, bestScore, found = ref, s, true
			}
		}
	}
	return best, found
}

// less orders refs by (layer, expert); Residents sorts with it.
func less(a, b moe.ExpertRef) bool {
	if a.Layer != b.Layer {
		return a.Layer < b.Layer
	}
	return a.Expert < b.Expert
}

// Pinned reports whether a resident expert is pinned by the executing
// layer (false for non-resident experts).
func (c *Cache) Pinned(ref moe.ExpertRef) bool {
	m := c.entry(ref)
	return m != nil && m.Pinned
}

// Remove drops a resident expert without charging an eviction (the
// tiered-memory demotion path accounts the movement itself). Reports
// whether the expert was resident.
func (c *Cache) Remove(ref moe.ExpertRef) bool {
	m := c.entry(ref)
	if m == nil {
		return false
	}
	c.metaFree = append(c.metaFree, m)
	c.byLayer[ref.Layer][ref.Expert] = nil
	c.n--
	return true
}

// Stats returns a copy of the counters with CurrentResident refreshed.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.CurrentResident = c.n
	return s
}

// Residents returns all resident experts in (layer, expert) order — the
// dense table's natural scan order. Intended for tests and debugging.
func (c *Cache) Residents() []moe.ExpertRef {
	out := make([]moe.ExpertRef, 0, c.n)
	for l, row := range c.byLayer {
		for e, m := range row {
			if m != nil {
				out = append(out, moe.ExpertRef{Layer: l, Expert: e})
			}
		}
	}
	return out
}

// Set shards an expert cache across the GPUs of an expert-parallel cluster:
// expert (l,j) resides only on its owning device, so each device gets an
// equal share of the total cache budget.
type Set struct {
	cfg    moe.Config
	n      int
	caches []*Cache
}

// NewSet splits a total byte budget across n devices. Each device's
// capacity is budget/n bytes divided by the model's expert size.
func NewSet(cfg moe.Config, n int, totalBytes int64, scorer Scorer) *Set {
	if n <= 0 {
		panic("cache: non-positive device count")
	}
	perDev := int(totalBytes / int64(n) / cfg.ExpertBytes())
	s := &Set{cfg: cfg, n: n}
	for i := 0; i < n; i++ {
		s.caches = append(s.caches, New(perDev, scorer))
	}
	return s
}

// gpuFor mirrors the cluster's round-robin placement.
func (s *Set) gpuFor(ref moe.ExpertRef) int { return s.cfg.RefID(ref) % s.n }

// For returns the device cache owning ref.
func (s *Set) For(ref moe.ExpertRef) *Cache { return s.caches[s.gpuFor(ref)] }

// Device returns device i's cache.
func (s *Set) Device(i int) *Cache { return s.caches[i] }

// Devices returns the number of shards.
func (s *Set) Devices() int { return s.n }

// Contains reports residency of ref.
func (s *Set) Contains(ref moe.ExpertRef) bool { return s.For(ref).Contains(ref) }

// Lookup records a hit/miss on the owning device.
func (s *Set) Lookup(ref moe.ExpertRef, now float64) bool { return s.For(ref).Lookup(ref, now) }

// Insert makes ref resident on its owning device.
func (s *Set) Insert(ref moe.ExpertRef, now float64) []moe.ExpertRef {
	return s.For(ref).Insert(ref, now)
}

// Remove drops ref from its owning device without charging an eviction.
func (s *Set) Remove(ref moe.ExpertRef) bool { return s.For(ref).Remove(ref) }

// Pinned reports whether ref is pinned on its owning device.
func (s *Set) Pinned(ref moe.ExpertRef) bool { return s.For(ref).Pinned(ref) }

// Pin pins ref on its owning device.
func (s *Set) Pin(ref moe.ExpertRef) { s.For(ref).Pin(ref) }

// Unpin clears ref's pin on its owning device.
func (s *Set) Unpin(ref moe.ExpertRef) { s.For(ref).Unpin(ref) }

// UnpinAll clears pins on every device.
func (s *Set) UnpinAll() {
	for _, c := range s.caches {
		c.UnpinAll()
	}
}

// Stats sums counters across devices.
func (s *Set) Stats() Stats {
	var out Stats
	for _, c := range s.caches {
		cs := c.Stats()
		out.Hits += cs.Hits
		out.Misses += cs.Misses
		out.Insertions += cs.Insertions
		out.Evictions += cs.Evictions
		out.PinnedEvictions += cs.PinnedEvictions
		out.RejectedInserts += cs.RejectedInserts
		out.PeakResidentExp += cs.PeakResidentExp
		out.CurrentResident += cs.CurrentResident
	}
	return out
}

// TotalCapacity returns the cluster-wide expert capacity.
func (s *Set) TotalCapacity() int {
	n := 0
	for _, c := range s.caches {
		n += c.Capacity()
	}
	return n
}
