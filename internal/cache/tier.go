package cache

import (
	"fmt"

	"finemoe/internal/moe"
)

// HostTier is one host-side tier's expert residency set in the tiered
// memory hierarchy: bounded tiers (DRAM under a provisioned budget) wrap
// a strict-pinned Cache with the tier's own eviction scorer; the
// unbounded backing tier (the seed's infinite DRAM, or the NVMe bottom
// tier) holds every expert permanently and needs no bookkeeping at all —
// which is exactly what makes the degenerate two-tier configuration
// byte-identical to the pre-tiering engine.
type HostTier struct {
	name     string
	capacity int // experts; < 0 = unbounded
	c        *Cache

	// movement counters (the tier-level view; the wrapped Cache keeps
	// its own hit/eviction stats).
	promotions int // copies staged into this tier from below
	demotions  int // copies dropped into this tier from above
}

// NewHostTier builds a bounded host tier holding capacity experts under
// the given demotion scorer. The tier is strict about pins: a pinned
// entry is the source of an in-flight upload and is never evicted.
func NewHostTier(name string, capacity int, scorer Scorer) *HostTier {
	if capacity < 0 {
		panic(fmt.Sprintf("cache: negative host-tier capacity %d", capacity))
	}
	return &HostTier{name: name, capacity: capacity, c: NewStrictPinned(capacity, scorer)}
}

// NewUnboundedHostTier builds a capacity-unlimited backing tier: every
// expert is always resident, inserts and removals are no-ops.
func NewUnboundedHostTier(name string) *HostTier {
	return &HostTier{name: name, capacity: -1}
}

// Name returns the tier's label.
func (t *HostTier) Name() string { return t.name }

// Unbounded reports whether the tier is a backing store.
func (t *HostTier) Unbounded() bool { return t.c == nil }

// Capacity returns the tier's expert capacity (-1 = unbounded).
func (t *HostTier) Capacity() int { return t.capacity }

// Len returns the resident expert count; -1 for an unbounded tier
// (every expert is resident).
func (t *HostTier) Len() int {
	if t.c == nil {
		return -1
	}
	return t.c.Len()
}

// Contains reports residency. Unbounded tiers contain everything.
func (t *HostTier) Contains(ref moe.ExpertRef) bool {
	return t.c == nil || t.c.Contains(ref)
}

// insert is the shared residency mechanics behind Insert and Demote:
// make ref resident at time now, evicting by the tier's scorer as
// needed, and charge counter on success. Evicted experts drop to the
// tier below (their backing copies remain valid, so the drop is free).
func (t *HostTier) insert(ref moe.ExpertRef, now float64, counter *int) (evicted []moe.ExpertRef, ok bool) {
	if t.c == nil {
		return nil, true
	}
	if t.c.Contains(ref) {
		return nil, true
	}
	evicted = t.c.Insert(ref, now)
	ok = t.c.Contains(ref)
	if ok {
		*counter++
	}
	return evicted, ok
}

// Insert makes ref resident at time now as a promotion from below
// (a staged copy landing in the tier). Returns the evicted experts and
// whether the insert took (a strict tier full of pinned entries
// refuses it).
func (t *HostTier) Insert(ref moe.ExpertRef, now float64) (evicted []moe.ExpertRef, ok bool) {
	return t.insert(ref, now, &t.promotions)
}

// Demote makes ref resident at time now as a demotion from the tier
// above (a clean copy dropping down, e.g. a GPU-cache eviction landing
// in DRAM). Accounting aside, the mechanics match Insert.
func (t *HostTier) Demote(ref moe.ExpertRef, now float64) (evicted []moe.ExpertRef, ok bool) {
	return t.insert(ref, now, &t.demotions)
}

// Warm makes ref resident at t=0 without charging the movement
// counters: the initial population (model weights loaded through DRAM
// at startup), not a staged copy. No-op once the tier is full.
func (t *HostTier) Warm(ref moe.ExpertRef) {
	if t.c != nil && t.c.Len() < t.capacity {
		t.c.Insert(ref, 0)
	}
}

// Touch records a use of a resident expert (keeps recency/frequency
// signals honest when the tier serves as a transfer source).
func (t *HostTier) Touch(ref moe.ExpertRef, now float64) {
	if t.c != nil && t.c.Contains(ref) {
		t.c.Lookup(ref, now)
	}
}

// Remove drops ref from the tier (an explicit policy demotion). Reports
// whether it was resident; always false for unbounded tiers, whose
// contents cannot be dropped.
func (t *HostTier) Remove(ref moe.ExpertRef) bool {
	if t.c == nil {
		return false
	}
	return t.c.Remove(ref)
}

// Pin marks a resident expert as the source of an in-flight upload; a
// strict tier never evicts it. No-op on unbounded tiers.
func (t *HostTier) Pin(ref moe.ExpertRef) {
	if t.c != nil {
		t.c.Pin(ref)
	}
}

// Unpin clears a pin.
func (t *HostTier) Unpin(ref moe.ExpertRef) {
	if t.c != nil {
		t.c.Unpin(ref)
	}
}

// Pressure returns the tier's occupancy fraction in [0, 1]; 0 for
// unbounded tiers (no pressure by construction) and for zero-capacity
// tiers (nothing can be resident).
func (t *HostTier) Pressure() float64 {
	if t.c == nil || t.capacity <= 0 {
		return 0
	}
	return float64(t.c.Len()) / float64(t.capacity)
}

// Promotions and Demotions return the movement counters.
func (t *HostTier) Promotions() int { return t.promotions }

// Demotions returns the copies dropped into this tier from above.
func (t *HostTier) Demotions() int { return t.demotions }

// CacheStats returns the wrapped cache's counters (zero value for
// unbounded tiers).
func (t *HostTier) CacheStats() Stats {
	if t.c == nil {
		return Stats{}
	}
	return t.c.Stats()
}
