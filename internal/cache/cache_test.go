package cache

import (
	"testing"
	"testing/quick"

	"finemoe/internal/moe"
	"finemoe/internal/rng"
)

func ref(l, e int) moe.ExpertRef { return moe.ExpertRef{Layer: l, Expert: e} }

func TestInsertAndLookup(t *testing.T) {
	c := New(2, LRU{})
	if c.Lookup(ref(0, 0), 0) {
		t.Fatal("lookup hit on empty cache")
	}
	c.Insert(ref(0, 0), 1)
	if !c.Lookup(ref(0, 0), 2) {
		t.Fatal("lookup missed resident expert")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Insertions != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := New(3, LRU{})
	for i := 0; i < 10; i++ {
		c.Insert(ref(0, i), float64(i))
		if c.Len() > 3 {
			t.Fatalf("capacity exceeded: %d", c.Len())
		}
	}
	if c.Stats().Evictions != 7 {
		t.Fatalf("evictions %d, want 7", c.Stats().Evictions)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := New(2, LRU{})
	c.Insert(ref(0, 0), 0)
	c.Insert(ref(0, 1), 1)
	c.Lookup(ref(0, 0), 2) // refresh 0
	ev := c.Insert(ref(0, 2), 3)
	if len(ev) != 1 || ev[0] != ref(0, 1) {
		t.Fatalf("LRU evicted %v, want (0,1)", ev)
	}
	if !c.Contains(ref(0, 0)) || !c.Contains(ref(0, 2)) {
		t.Fatal("wrong survivors")
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := New(2, LFU{})
	c.Insert(ref(0, 0), 0)
	c.Insert(ref(0, 1), 1)
	c.Lookup(ref(0, 0), 2)
	c.Lookup(ref(0, 0), 3)
	c.Lookup(ref(0, 1), 4) // freq: 0 -> 3 uses, 1 -> 2 uses
	ev := c.Insert(ref(0, 2), 5)
	if len(ev) != 1 || ev[0] != ref(0, 1) {
		t.Fatalf("LFU evicted %v, want (0,1)", ev)
	}
}

func TestInsertResidentIsNoop(t *testing.T) {
	c := New(2, LRU{})
	c.Insert(ref(0, 0), 0)
	if ev := c.Insert(ref(0, 0), 1); ev != nil {
		t.Fatalf("re-insert evicted %v", ev)
	}
	if c.Stats().Insertions != 1 {
		t.Fatal("re-insert counted")
	}
}

func TestPinProtectsFromEviction(t *testing.T) {
	c := New(2, LRU{})
	c.Insert(ref(0, 0), 0)
	c.Insert(ref(0, 1), 1)
	c.Pin(ref(0, 0)) // oldest, would be LRU victim
	ev := c.Insert(ref(0, 2), 2)
	if len(ev) != 1 || ev[0] != ref(0, 1) {
		t.Fatalf("evicted %v despite pin, want (0,1)", ev)
	}
	c.UnpinAll()
	ev = c.Insert(ref(0, 3), 3)
	if len(ev) != 1 || ev[0] != ref(0, 0) {
		t.Fatalf("after unpin evicted %v, want (0,0)", ev)
	}
}

func TestAllPinnedLastResortEviction(t *testing.T) {
	c := New(1, LRU{})
	c.Insert(ref(0, 0), 0)
	c.Pin(ref(0, 0))
	ev := c.Insert(ref(0, 1), 1)
	if len(ev) != 1 || ev[0] != ref(0, 0) {
		t.Fatalf("last-resort eviction failed: %v", ev)
	}
	if c.Stats().PinnedEvictions != 1 {
		t.Fatal("pinned eviction not counted")
	}
}

func TestZeroCapacityRejects(t *testing.T) {
	c := New(0, LRU{})
	c.Insert(ref(0, 0), 0)
	if c.Len() != 0 || c.Stats().RejectedInserts != 1 {
		t.Fatalf("zero-capacity cache accepted insert: %+v", c.Stats())
	}
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative capacity": func() { New(-1, LRU{}) },
		"nil scorer":        func() { New(1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// With identical metadata, the victim must be the smallest ref, not
	// map-iteration-order dependent.
	for trial := 0; trial < 10; trial++ {
		c := New(3, LFU{})
		c.Insert(ref(2, 0), 0)
		c.Insert(ref(1, 5), 0)
		c.Insert(ref(1, 2), 0)
		ev := c.Insert(ref(0, 0), 1)
		if len(ev) != 1 || ev[0] != ref(1, 2) {
			t.Fatalf("trial %d: tie-break evicted %v, want (1,2)", trial, ev)
		}
	}
}

func TestSetSharding(t *testing.T) {
	cfg := moe.Tiny() // 4 layers x 6 experts, tiny expert bytes
	total := cfg.ExpertBytes() * 12
	s := NewSet(cfg, 3, total, LRU{})
	if s.Devices() != 3 {
		t.Fatal("device count")
	}
	if s.TotalCapacity() != 12 {
		t.Fatalf("total capacity %d, want 12", s.TotalCapacity())
	}
	// Placement must match round-robin by flat ID.
	r := ref(1, 2) // id = 1*6+2 = 8 -> gpu 8%3 = 2
	s.Insert(r, 0)
	if !s.Device(2).Contains(r) || s.Device(0).Contains(r) {
		t.Fatal("expert landed on wrong device")
	}
	if !s.Contains(r) || !s.Lookup(r, 1) {
		t.Fatal("set lookup failed")
	}
}

func TestSetStatsAggregate(t *testing.T) {
	cfg := moe.Tiny()
	s := NewSet(cfg, 2, cfg.ExpertBytes()*4, LRU{})
	s.Insert(ref(0, 0), 0)
	s.Insert(ref(0, 1), 0)
	s.Lookup(ref(0, 0), 1)
	s.Lookup(ref(3, 3), 1)
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Insertions != 2 {
		t.Fatalf("aggregate stats %+v", st)
	}
}

func TestSetPinning(t *testing.T) {
	cfg := moe.Tiny()
	s := NewSet(cfg, 2, cfg.ExpertBytes()*2, LRU{})
	s.Insert(ref(0, 0), 0)
	s.Pin(ref(0, 0))
	s.UnpinAll()
	// No crash and still resident.
	if !s.Contains(ref(0, 0)) {
		t.Fatal("pinned expert lost")
	}
}

// TestCacheInvariantProperty: under random operation sequences, Len never
// exceeds capacity and stats stay consistent.
func TestCacheInvariantProperty(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := r.Derive(seed)
		capacity := 1 + rr.Intn(8)
		var scorer Scorer = LRU{}
		if rr.Intn(2) == 0 {
			scorer = LFU{}
		}
		c := New(capacity, scorer)
		inserts := 0
		for op := 0; op < 200; op++ {
			rf := ref(rr.Intn(4), rr.Intn(8))
			now := float64(op)
			switch rr.Intn(4) {
			case 0:
				before := c.Contains(rf)
				c.Insert(rf, now)
				if !before {
					inserts++
				}
			case 1:
				c.Lookup(rf, now)
			case 2:
				c.Pin(rf)
			case 3:
				c.UnpinAll()
			}
			if c.Len() > capacity {
				return false
			}
		}
		s := c.Stats()
		return s.Insertions == inserts && s.Insertions-s.Evictions == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScorerNames(t *testing.T) {
	if (LRU{}).Name() != "LRU" || (LFU{}).Name() != "LFU" {
		t.Fatal("scorer names wrong")
	}
}

func TestResidentsSortedOrder(t *testing.T) {
	c := New(8, LRU{})
	// Insert in deliberately scrambled (layer, expert) order; Residents
	// must come back sorted regardless of map iteration order, so repeat
	// the call to catch any order that merely happened to look sorted.
	scrambled := []moe.ExpertRef{ref(3, 1), ref(0, 2), ref(1, 0), ref(3, 0), ref(0, 0), ref(2, 5)}
	for i, r := range scrambled {
		c.Insert(r, float64(i))
	}
	want := []moe.ExpertRef{ref(0, 0), ref(0, 2), ref(1, 0), ref(2, 5), ref(3, 0), ref(3, 1)}
	for trial := 0; trial < 10; trial++ {
		got := c.Residents()
		if len(got) != len(want) {
			t.Fatalf("residents %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: residents[%d] = %v, want %v (must be (layer, expert)-sorted)", trial, i, got[i], want[i])
			}
		}
	}
}
