package cache

import "testing"

// TestStrictPinnedSaturatedRejects pins every entry of a strict cache
// and verifies an insert is rejected and counted instead of evicting a
// pinned victim (the host-tier contract: a pinned entry is an in-flight
// DMA source and must never be dropped).
func TestStrictPinnedSaturatedRejects(t *testing.T) {
	c := NewStrictPinned(2, LRU{})
	c.Insert(ref(0, 0), 0)
	c.Insert(ref(0, 1), 1)
	c.Pin(ref(0, 0))
	c.Pin(ref(0, 1))

	evicted := c.Insert(ref(0, 2), 2)
	if len(evicted) != 0 {
		t.Fatalf("strict cache evicted %v with every entry pinned", evicted)
	}
	if c.Contains(ref(0, 2)) {
		t.Fatal("rejected insert became resident")
	}
	if got := c.Stats().RejectedInserts; got != 1 {
		t.Fatalf("RejectedInserts = %d, want 1", got)
	}
	if got := c.Stats().PinnedEvictions; got != 0 {
		t.Fatalf("strict cache recorded %d pinned evictions", got)
	}
	// Unpinning one entry lets the next insert through.
	c.Unpin(ref(0, 0))
	if ev := c.Insert(ref(0, 2), 3); len(ev) != 1 || ev[0] != ref(0, 0) {
		t.Fatalf("after unpin, evicted %v, want [%v]", ev, ref(0, 0))
	}
}

// TestLenientPinnedSaturatedEvicts pins the GPU-cache contract: the
// default cache evicts a pinned victim as a last resort and counts it.
func TestLenientPinnedSaturatedEvicts(t *testing.T) {
	c := New(1, LRU{})
	c.Insert(ref(0, 0), 0)
	c.Pin(ref(0, 0))
	if ev := c.Insert(ref(0, 1), 1); len(ev) != 1 || ev[0] != ref(0, 0) {
		t.Fatalf("lenient cache evicted %v, want the pinned entry", ev)
	}
	if got := c.Stats().PinnedEvictions; got != 1 {
		t.Fatalf("PinnedEvictions = %d, want 1", got)
	}
}

// TestExactFitEviction fills a cache exactly to capacity and verifies
// one further insert evicts exactly one victim (no over-eviction) and
// residency stays at capacity.
func TestExactFitEviction(t *testing.T) {
	const capacity = 4
	c := New(capacity, LRU{})
	for j := 0; j < capacity; j++ {
		if ev := c.Insert(ref(0, j), float64(j)); len(ev) != 0 {
			t.Fatalf("insert %d below capacity evicted %v", j, ev)
		}
	}
	ev := c.Insert(ref(1, 0), 10)
	if len(ev) != 1 {
		t.Fatalf("exact-fit insert evicted %d entries, want 1", len(ev))
	}
	if ev[0] != ref(0, 0) {
		t.Fatalf("evicted %v, want the LRU entry %v", ev[0], ref(0, 0))
	}
	if c.Len() != capacity {
		t.Fatalf("resident %d after exact-fit insert, want %d", c.Len(), capacity)
	}
	if s := c.Stats(); s.Evictions != 1 || s.Insertions != capacity+1 {
		t.Fatalf("stats %+v, want 1 eviction, %d insertions", s, capacity+1)
	}
}

// TestZeroCapacityHostTier pins the zero-capacity DRAM tier semantics:
// nothing becomes resident, every insert is rejected and counted, and
// pressure stays zero (nothing can occupy the tier).
func TestZeroCapacityHostTier(t *testing.T) {
	ht := NewHostTier("DRAM", 0, LRU{})
	if ht.Unbounded() {
		t.Fatal("zero-capacity tier must not be unbounded")
	}
	evicted, ok := ht.Insert(ref(0, 0), 1)
	if ok || len(evicted) != 0 {
		t.Fatalf("zero-capacity insert: ok=%v evicted=%v", ok, evicted)
	}
	if ht.Contains(ref(0, 0)) {
		t.Fatal("zero-capacity tier reports residency")
	}
	if got := ht.CacheStats().RejectedInserts; got != 1 {
		t.Fatalf("RejectedInserts = %d, want 1", got)
	}
	if p := ht.Pressure(); p != 0 {
		t.Fatalf("zero-capacity pressure = %v, want 0", p)
	}
	if _, ok := ht.Demote(ref(0, 1), 2); ok {
		t.Fatal("zero-capacity tier accepted a demotion")
	}
}

// TestHostTierMovementCounters verifies promotions (staged copies) and
// demotions (drops from above) are tracked separately, and that an
// unbounded tier counts neither.
func TestHostTierMovementCounters(t *testing.T) {
	ht := NewHostTier("DRAM", 2, LRU{})
	ht.Insert(ref(0, 0), 0)
	ht.Demote(ref(0, 1), 1)
	if ht.Promotions() != 1 || ht.Demotions() != 1 {
		t.Fatalf("counters = %d/%d, want 1/1", ht.Promotions(), ht.Demotions())
	}
	// Re-inserting a resident expert moves nothing.
	ht.Insert(ref(0, 0), 2)
	if ht.Promotions() != 1 {
		t.Fatal("duplicate insert charged a promotion")
	}
	// A full tier's demotion evicts by scorer.
	evicted, ok := ht.Demote(ref(0, 2), 3)
	if !ok || len(evicted) != 1 {
		t.Fatalf("full-tier demotion: ok=%v evicted=%v", ok, evicted)
	}

	ub := NewUnboundedHostTier("NVMe")
	if !ub.Contains(ref(9, 9)) {
		t.Fatal("unbounded tier must contain every expert")
	}
	if _, ok := ub.Insert(ref(0, 0), 0); !ok {
		t.Fatal("unbounded insert must succeed")
	}
	if ub.Promotions() != 0 || ub.Demotions() != 0 {
		t.Fatal("unbounded tier charged movement counters")
	}
	if ub.Remove(ref(0, 0)) {
		t.Fatal("unbounded tier allowed a removal")
	}
	if ub.Len() != -1 || ub.Capacity() != -1 {
		t.Fatalf("unbounded tier len/cap = %d/%d, want -1/-1", ub.Len(), ub.Capacity())
	}
}

// TestHostTierWarm verifies warm-fill populates without charging the
// movement counters and stops at capacity.
func TestHostTierWarm(t *testing.T) {
	ht := NewHostTier("DRAM", 2, LRU{})
	ht.Warm(ref(0, 0))
	ht.Warm(ref(0, 1))
	ht.Warm(ref(0, 2)) // beyond capacity: no-op, no eviction
	if ht.Len() != 2 {
		t.Fatalf("warm len = %d, want 2", ht.Len())
	}
	if !ht.Contains(ref(0, 0)) || !ht.Contains(ref(0, 1)) || ht.Contains(ref(0, 2)) {
		t.Fatal("warm populated the wrong experts")
	}
	if ht.Promotions() != 0 || ht.Demotions() != 0 {
		t.Fatal("warm charged movement counters")
	}
}

// TestCacheRemove verifies Remove drops residency without charging an
// eviction.
func TestCacheRemove(t *testing.T) {
	c := New(2, LRU{})
	c.Insert(ref(0, 0), 0)
	if !c.Remove(ref(0, 0)) {
		t.Fatal("Remove of resident expert returned false")
	}
	if c.Remove(ref(0, 0)) {
		t.Fatal("Remove of absent expert returned true")
	}
	if c.Contains(ref(0, 0)) || c.Len() != 0 {
		t.Fatal("Remove left residency behind")
	}
	if got := c.Stats().Evictions; got != 0 {
		t.Fatalf("Remove charged %d evictions", got)
	}
}
