package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 90 {
		t.Fatalf("zero-seeded generator looks degenerate: %d distinct of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(9)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("exp(rate=2) mean %v too far from 0.5", mean)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Exp(0)")
		}
	}()
	New(1).Exp(0)
}

func TestUnitVecNormalized(t *testing.T) {
	r := New(13)
	for dim := 1; dim <= 128; dim *= 2 {
		v := make([]float64, dim)
		r.UnitVec(v)
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("dim %d: unit vector norm^2 = %v", dim, norm)
		}
	}
}

func TestUnitVecForDeterministic(t *testing.T) {
	a := UnitVecFor(32, 1, 2, 3)
	b := UnitVecFor(32, 1, 2, 3)
	c := UnitVecFor(32, 1, 2, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same keys produced different vectors at %d", i)
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different keys produced identical vectors")
	}
}

func TestDeriveIndependentOfParentUse(t *testing.T) {
	p1 := New(99)
	p2 := New(99)
	p2.Uint64() // consume from one parent only
	c1 := p1.Derive(7)
	c2 := p2.Derive(7)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("derived stream depends on parent consumption")
		}
	}
}

func TestDeriveDistinctKeys(t *testing.T) {
	p := New(99)
	a := p.Derive(1)
	b := p.Derive(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("derived streams with different keys collided on first output")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestMixProperty(t *testing.T) {
	// Property: Mix is deterministic and order-sensitive.
	f := func(a, b uint64) bool {
		if Mix(a, b) != Mix(a, b) {
			return false
		}
		if a != b && Mix(a, b) == Mix(b, a) {
			// Order sensitivity: a collision here is astronomically
			// unlikely for a sound mixer.
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(31)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("log-normal produced non-positive %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
