// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the FineMoE simulator.
//
// Every experiment in this repository must be reproducible from a single
// seed. The standard library's math/rand is seedable but its stream is not
// guaranteed stable across Go releases for all helper methods, and it cannot
// be "split" into independent, deterministic sub-streams keyed by structured
// identifiers (model, layer, prompt, iteration). This package implements
// SplitMix64 for seeding and xoshiro256** for generation, both of which have
// published, frozen reference outputs.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand a single seed into the four xoshiro words and to
// derive child seeds.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix hashes an arbitrary sequence of integer keys into a single 64-bit
// value. It is the basis for deriving independent deterministic streams
// from structured identifiers, e.g. Mix(seed, layerID, expertID).
func Mix(keys ...uint64) uint64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, k := range keys {
		h ^= k + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = splitMix64(&h)
	}
	return h
}

// RNG is a xoshiro256** generator. The zero value is not valid; use New.
type RNG struct {
	s    [4]uint64
	seed uint64 // retained so Derive is independent of consumption
	// cached spare Gaussian for Box-Muller pairs
	hasSpare bool
	spare    float64
}

// New returns a generator seeded from seed via SplitMix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *RNG {
	r := Seeded(seed)
	return &r
}

// Seeded returns a generator seeded exactly like New but by value, so
// short-lived keyed streams (one per request, iteration, or token) can
// live on the caller's stack instead of escaping to the heap. The
// returned value produces the same stream as *New(seed).
func Seeded(seed uint64) RNG {
	r := RNG{seed: seed}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Reseed resets the generator in place to the stream New(seed) produces,
// clearing any cached Gaussian spare. It lets long-lived scratch
// generators be re-keyed per stream without allocating.
func (r *RNG) Reseed(seed uint64) {
	*r = Seeded(seed)
}

// Derive returns a new independent generator whose stream is a deterministic
// function of this generator's seed material and the supplied keys. Derive
// does not consume randomness from the parent, so sibling streams are stable
// regardless of how much the parent has been used.
func (r *RNG) Derive(keys ...uint64) *RNG {
	all := make([]uint64, 0, len(keys)+1)
	all = append(all, r.seed)
	all = append(all, keys...)
	return New(Mix(all...))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard-normal variate via Box-Muller, caching the pair's
// second value for the next call.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Exp returns an exponentially distributed variate with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// LogNormal returns a log-normal variate with the given underlying normal
// mean and standard deviation.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// UnitVec fills dst with an isotropically distributed unit vector.
func (r *RNG) UnitVec(dst []float64) {
	var norm float64
	for {
		norm = 0
		for i := range dst {
			dst[i] = r.Norm()
			norm += dst[i] * dst[i]
		}
		if norm > 1e-12 {
			break
		}
	}
	inv := 1 / math.Sqrt(norm)
	for i := range dst {
		dst[i] *= inv
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// UnitVecFor returns a deterministic unit vector of dimension dim keyed by
// the supplied identifiers; the same keys always yield the same vector.
// It is used for topic directions and per-layer drift directions.
func UnitVecFor(dim int, keys ...uint64) []float64 {
	v := make([]float64, dim)
	New(Mix(keys...)).UnitVec(v)
	return v
}
