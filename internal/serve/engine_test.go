package serve

import (
	"math"
	"testing"

	"finemoe/internal/baselines"
	"finemoe/internal/core"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/tensor"
	"finemoe/internal/workload"
)

func testGPU() memsim.GPUSpec {
	return memsim.GPUSpec{
		Name: "test-gpu", MemBytes: 1 << 30, HBMGBps: 100,
		FP16TFLOPS: 10, PCIeGBps: 1, PerLayerOverheadMS: 0.5,
	}
}

func testReqs(cfg moe.Config, n int, out int) []workload.Request {
	d := workload.Dataset{
		Name: "test", Topics: 8, TopicSpread: 0.12,
		MeanInput: 6, MeanOutput: out, Seed: 42,
	}
	return d.Sample(workload.Options{Dim: cfg.SemDim, N: n, Seed: 7, FixedLengths: true})
}

func buildTraces(m *moe.Model, reqs []workload.Request) map[uint64][]*moe.Iteration {
	out := map[uint64][]*moe.Iteration{}
	for _, q := range reqs {
		out[q.ID] = m.Trace(q.PromptSpec)
	}
	return out
}

func newTinyEngine(t *testing.T, pol policy.Policy, opts func(*Options)) (*Engine, *moe.Model) {
	t.Helper()
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 31)
	o := Options{
		Model:      m,
		GPU:        testGPU(),
		NumGPUs:    2,
		CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2,
		Policy:     pol,
	}
	if opts != nil {
		opts(&o)
	}
	return New(o), m
}

func TestNoOffloadPerfectHitRate(t *testing.T) {
	cfg := moe.Tiny()
	e, m := newTinyEngine(t, baselines.NewNoOffload(), func(o *Options) {
		o.PreloadAll = true
		o.CacheBytes = cfg.ExpertBytes() * int64(cfg.NumExperts())
	})
	reqs := testReqs(cfg, 3, 4)
	res := e.RunOffline(reqs, buildTraces(m, reqs))
	if res.HitRate != 1 {
		t.Fatalf("No-offload hit rate %.3f, want 1", res.HitRate)
	}
	if res.LinkStats.OnDemands != 0 || res.LinkStats.Prefetches != 0 {
		t.Fatalf("No-offload transferred: %+v", res.LinkStats)
	}
	if res.MeanTTFT <= 0 || res.MeanTPOT <= 0 {
		t.Fatalf("degenerate latency: %+v", res)
	}
}

func TestDeepSpeedAlwaysHits(t *testing.T) {
	e, m := newTinyEngine(t, baselines.NewDeepSpeed(), nil)
	reqs := testReqs(moe.Tiny(), 3, 4)
	res := e.RunOffline(reqs, buildTraces(m, reqs))
	if res.HitRate != 1 {
		t.Fatalf("DeepSpeed hit rate %.3f, want 1 (loads whole layers pre-gate)", res.HitRate)
	}
	if res.LinkStats.OnDemands == 0 {
		t.Fatal("DeepSpeed made no loads")
	}
}

func TestDeepSpeedSlowerThanNoOffload(t *testing.T) {
	cfg := moe.Tiny()
	reqs := testReqs(cfg, 3, 4)

	eNo, m := newTinyEngine(t, baselines.NewNoOffload(), func(o *Options) {
		o.PreloadAll = true
		o.CacheBytes = cfg.ExpertBytes() * int64(cfg.NumExperts())
	})
	traces := buildTraces(m, reqs)
	resNo := eNo.RunOffline(reqs, traces)

	eDS, _ := newTinyEngine(t, baselines.NewDeepSpeed(), nil)
	resDS := eDS.RunOffline(reqs, traces)

	if resDS.MeanTPOT <= resNo.MeanTPOT {
		t.Fatalf("DeepSpeed TPOT %.2f not worse than No-offload %.2f", resDS.MeanTPOT, resNo.MeanTPOT)
	}
	if resDS.MeanTTFT <= resNo.MeanTTFT {
		t.Fatalf("DeepSpeed TTFT %.2f not worse than No-offload %.2f", resDS.MeanTTFT, resNo.MeanTTFT)
	}
}

func TestMetricsShape(t *testing.T) {
	e, m := newTinyEngine(t, baselines.NewDeepSpeed(), nil)
	reqs := testReqs(moe.Tiny(), 4, 5)
	res := e.RunOffline(reqs, buildTraces(m, reqs))
	if len(res.Requests) != 4 {
		t.Fatalf("request metrics %d", len(res.Requests))
	}
	for _, r := range res.Requests {
		if r.TTFTms <= 0 || r.E2Ems < r.TTFTms {
			t.Fatalf("bad request metrics %+v", r)
		}
		if r.OutputTokens > 1 && r.TPOTms <= 0 {
			t.Fatalf("missing TPOT %+v", r)
		}
		if r.Hits+r.Misses == 0 {
			t.Fatalf("no activations recorded %+v", r)
		}
	}
	// Iterations = sum of per-request iterations (batch size 1).
	want := 0
	for _, q := range reqs {
		want += q.OutputTokens
	}
	if res.Iterations != want {
		t.Fatalf("iterations %d, want %d", res.Iterations, want)
	}
	if res.Breakdown[policy.CompInfer] <= 0 {
		t.Fatalf("no inference time in breakdown: %v", res.Breakdown)
	}
	if res.GPUMemoryBytes <= 0 {
		t.Fatal("no memory footprint")
	}
}

func TestFineMoEBeatsOnDemandLatency(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 31)
	storeReqs := testReqs(cfg, 24, 6)
	testSet := workload.Dataset{Name: "test", Topics: 8, TopicSpread: 0.12, MeanInput: 6, MeanOutput: 6, Seed: 42}.
		Sample(workload.Options{Dim: cfg.SemDim, N: 6, Seed: 99, FixedLengths: true, IDBase: 1000})

	storeTraces := buildTraces(m, storeReqs)
	testTraces := buildTraces(m, testSet)

	store := core.BuildStore(cfg, 300, 2, storeTraces)
	fine := core.NewFineMoE(store, core.Options{PrefetchDistance: 2, DisableStoreUpdate: true})
	eF := New(Options{Model: m, GPU: testGPU(), NumGPUs: 2, CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2, Policy: fine})
	resF := eF.RunOffline(testSet, testTraces)

	eD := New(Options{Model: m, GPU: testGPU(), NumGPUs: 2, CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2, Policy: baselines.NewDeepSpeed()})
	resD := eD.RunOffline(testSet, testTraces)

	if resF.MeanTPOT >= resD.MeanTPOT {
		t.Fatalf("FineMoE TPOT %.2f not better than DeepSpeed %.2f", resF.MeanTPOT, resD.MeanTPOT)
	}
	if resF.HitRate < 0.5 {
		t.Fatalf("FineMoE hit rate %.3f too low with a populated store", resF.HitRate)
	}
	if resF.LinkStats.Prefetches == 0 {
		t.Fatal("FineMoE issued no prefetches")
	}
	if resF.PolicyOverheadBytes == 0 {
		t.Fatal("FineMoE reported no store memory")
	}
}

func TestBatchedOffline(t *testing.T) {
	cfg := moe.Tiny()
	reqs := testReqs(cfg, 4, 4)
	e, m := newTinyEngine(t, baselines.NewDeepSpeed(), func(o *Options) { o.BatchSize = 4 })
	res := e.RunOffline(reqs, buildTraces(m, reqs))
	if len(res.Requests) != 4 {
		t.Fatalf("requests %d", len(res.Requests))
	}
	// Lockstep batch: 4 output tokens => 4 iterations total.
	if res.Iterations != 4 {
		t.Fatalf("batched iterations %d, want 4", res.Iterations)
	}
}

func TestBatchIncreasesIterationCost(t *testing.T) {
	cfg := moe.Tiny()
	reqs := testReqs(cfg, 4, 6)
	e1, m := newTinyEngine(t, baselines.NewDeepSpeed(), func(o *Options) { o.BatchSize = 1 })
	traces := buildTraces(m, reqs)
	r1 := e1.RunOffline(reqs, traces)
	e4, _ := newTinyEngine(t, baselines.NewDeepSpeed(), func(o *Options) { o.BatchSize = 4 })
	r4 := e4.RunOffline(reqs, traces)
	// Batched serving must finish the whole workload faster (throughput)
	// even though per-iteration cost grows.
	if r4.WallClockMS >= r1.WallClockMS {
		t.Fatalf("batching did not improve makespan: %v vs %v", r4.WallClockMS, r1.WallClockMS)
	}
}

func TestOnlineRun(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 31)
	d := workload.Dataset{Name: "test", Topics: 8, TopicSpread: 0.12, MeanInput: 6, MeanOutput: 4, Seed: 42}
	trace := workload.AzureTrace(d, cfg.SemDim, workload.TraceConfig{RatePerSec: 20, N: 12, Seed: 3})
	e := New(Options{Model: m, GPU: testGPU(), NumGPUs: 2,
		CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2,
		Policy:     baselines.NewMoEInfinity(baselines.NewEAMCollection(cfg)), MaxBatch: 4})
	res := e.RunOnline(trace, buildTraces(m, trace))
	if len(res.Requests) != 12 {
		t.Fatalf("served %d of 12", len(res.Requests))
	}
	for _, r := range res.Requests {
		if r.TTFTms <= 0 {
			t.Fatalf("bad TTFT %+v", r)
		}
		if r.EndMS < r.ArrivalMS {
			t.Fatalf("finished before arrival %+v", r)
		}
		if r.E2Ems < r.TTFTms {
			t.Fatalf("E2E below TTFT %+v", r)
		}
	}
	if res.WallClockMS <= 0 {
		t.Fatal("no makespan")
	}
}

func TestOnlineQueueingUnderLoad(t *testing.T) {
	// With MaxBatch 1 and a burst of arrivals, later requests must queue:
	// TTFT grows across the trace.
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 31)
	d := workload.Dataset{Name: "test", Topics: 8, TopicSpread: 0.12, MeanInput: 6, MeanOutput: 4, Seed: 42}
	trace := workload.AzureTrace(d, cfg.SemDim, workload.TraceConfig{RatePerSec: 1000, N: 6, Seed: 4})
	e := New(Options{Model: m, GPU: testGPU(), NumGPUs: 2,
		CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2,
		Policy:     baselines.NewDeepSpeed(), MaxBatch: 1})
	res := e.RunOnline(trace, buildTraces(m, trace))
	var first, last float64
	for _, r := range res.Requests {
		if r.ID == trace[0].ID {
			first = r.TTFTms
		}
		if r.ID == trace[len(trace)-1].ID {
			last = r.TTFTms
		}
	}
	if last <= first {
		t.Fatalf("no queueing delay: first TTFT %.2f, last %.2f", first, last)
	}
}

func TestMixtralOffloadHitRateHigh(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 31)
	reqs := testReqs(cfg, 4, 6)
	traces := buildTraces(m, reqs)
	e := New(Options{Model: m, GPU: testGPU(), NumGPUs: 2,
		CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2,
		Policy:     baselines.NewMixtralOffload(m)})
	res := e.RunOffline(reqs, traces)
	// Synchronous d=1 speculation: hits should be well above the
	// residency baseline.
	if res.HitRate < 0.6 {
		t.Fatalf("Mixtral-Offload hit rate %.3f too low", res.HitRate)
	}
}

func TestEngineValidation(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("nil model", func() { New(Options{Policy: baselines.NewNoOffload()}) })
	mustPanic("nil policy", func() { New(Options{Model: m}) })
}

func TestHitRateConsistency(t *testing.T) {
	// Engine-level hit rate must equal aggregated per-request counts for
	// batch size 1.
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 31)
	reqs := testReqs(cfg, 3, 4)
	e := New(Options{Model: m, GPU: testGPU(), NumGPUs: 2,
		CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2,
		Policy:     baselines.NewProMoE(m)})
	res := e.RunOffline(reqs, buildTraces(m, reqs))
	var hits, misses int
	for _, r := range res.Requests {
		hits += r.Hits
		misses += r.Misses
	}
	got := float64(hits) / float64(hits+misses)
	if math.Abs(got-res.HitRate) > 1e-9 {
		t.Fatalf("hit rate mismatch: requests %.4f vs engine %.4f", got, res.HitRate)
	}
}

func TestTraceOfFallsBackToSimulation(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 31)
	reqs := testReqs(cfg, 1, 3)
	e := New(Options{Model: m, GPU: testGPU(), NumGPUs: 1,
		CacheBytes: cfg.ExpertBytes() * 4, Policy: baselines.NewDeepSpeed()})
	res := e.RunOffline(reqs, nil) // no precomputed traces
	if len(res.Requests) != 1 {
		t.Fatal("fallback simulation failed")
	}
}

func TestDefaultCacheBytes(t *testing.T) {
	cfg := moe.Mixtral8x7B()
	m := moe.NewModel(cfg, 1)
	e := New(Options{Model: m, GPU: memsim.RTX3090(), NumGPUs: 6, Policy: baselines.NewNoOffload()})
	if e.opts.CacheBytes <= 0 {
		t.Fatal("default cache budget not derived")
	}
	if e.opts.CacheBytes > cfg.TotalExpertBytes() {
		t.Fatal("default cache larger than all experts")
	}
}

func TestSpeculationOracleSanity(t *testing.T) {
	// The hidden states exposed in LayerView must drive speculation with
	// reasonable accuracy at distance 1 (Mixtral-Offload's premise).
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 31)
	it := m.Trace(testReqs(cfg, 1, 4)[0].PromptSpec)[1]
	probs := make([]float64, cfg.RoutedExperts)
	var overlap float64
	var n int
	for l := 1; l < cfg.Layers; l++ {
		m.Speculate(it.Hidden[l-1], l, probs)
		overlap += tensor.OverlapRatio(it.Active[l], tensor.TopK(probs, cfg.TopK))
		n++
	}
	if overlap/float64(n) < 0.5 {
		t.Fatalf("d=1 speculation accuracy %.3f too low", overlap/float64(n))
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := moe.Tiny()
	run := func() *Result {
		m := moe.NewModel(cfg, 77)
		reqs := testReqs(cfg, 3, 4)
		e := New(Options{Model: m, GPU: testGPU(), NumGPUs: 2,
			CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2,
			Policy:     baselines.NewMixtralOffload(m)})
		return e.RunOffline(reqs, nil)
	}
	a, b := run(), run()
	if a.MeanTPOT != b.MeanTPOT || a.MeanTTFT != b.MeanTTFT || a.HitRate != b.HitRate {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a, b)
	}
}
