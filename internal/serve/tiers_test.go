package serve

import (
	"math"
	"testing"

	"finemoe/internal/baselines"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
)

// tieredEngine builds a one-GPU engine over a three-tier hierarchy with
// DRAM bounded at dramExperts.
func tieredEngine(t *testing.T, dramExperts int) *Engine {
	t.Helper()
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 11)
	return New(Options{
		Model: m, GPU: memsim.RTX3090(), NumGPUs: 1,
		CacheBytes: 4 * cfg.ExpertBytes(),
		Policy:     baselines.NewNoOffload(),
		Memory:     memsim.ThreeTier(int64(dramExperts) * cfg.ExpertBytes()),
	})
}

// coldRef returns an expert outside the warm-filled DRAM set of a
// dramExperts-sized tier (the warm fill stripes expert-major).
func coldRef(cfg moe.Config) moe.ExpertRef {
	return moe.ExpertRef{Layer: cfg.Layers - 1, Expert: cfg.RoutedExperts - 1}
}

func TestTieredEngineWarmStart(t *testing.T) {
	e := tieredEngine(t, 3)
	if got := e.MemoryPressure(); got != 0 {
		t.Fatalf("pressure %v before any fetch, want 0 (no spill observed yet)", got)
	}
	// Warm fill stripes expert-major: expert 0 of layers 0..2.
	for l := 0; l < 3; l++ {
		if got := e.Tier(moe.ExpertRef{Layer: l, Expert: 0}); got != 1 {
			t.Fatalf("warm expert layer %d at tier %d, want 1 (DRAM)", l, got)
		}
	}
	if got := e.Tier(coldRef(e.cfg)); got != 2 {
		t.Fatalf("cold expert at tier %d, want 2 (NVMe)", got)
	}
}

// TestTieredFetchOnDemandRoutes verifies an NVMe-resident expert pays
// both the staging hop and the PCIe upload, landing in DRAM on the way,
// while a DRAM-resident expert pays only the upload.
func TestTieredFetchOnDemandRoutes(t *testing.T) {
	e := tieredEngine(t, 3)
	bytes := e.cfg.ExpertBytes()
	pcie := e.opts.GPU.TransferLatencyMS + float64(bytes)/(e.opts.GPU.PCIeGBps*1e6)
	stage := memsim.DefaultNVMeLatencyMS + float64(bytes)/(memsim.DefaultNVMeGBps*1e6)

	warm := moe.ExpertRef{Layer: 0, Expert: 0}
	if end := e.fetchOnDemand(warm, 0); math.Abs(end-pcie) > 1e-9 {
		t.Fatalf("DRAM-resident fetch end %v, want %v", end, pcie)
	}

	cold := coldRef(e.cfg)
	end := e.fetchOnDemand(cold, 100)
	if want := 100 + stage + pcie; math.Abs(end-want) > 1e-9 {
		t.Fatalf("NVMe-resident fetch end %v, want %v", end, want)
	}
	// The staged copy landed in DRAM (evicting a warm expert), and after
	// draining the upload the expert is GPU-resident.
	if got := e.hostLevel(cold); got != 0 {
		t.Fatalf("staged expert at host level %d, want 0 (DRAM)", got)
	}
	e.drain(end)
	if !e.caches.Contains(cold) {
		t.Fatal("fetched expert not GPU-resident after drain")
	}
	if got := e.Tier(cold); got != 0 {
		t.Fatalf("fetched expert at tier %d, want 0", got)
	}
}

// TestTieredPrefetchChains verifies an asynchronous prefetch of an
// NVMe-resident expert stages into DRAM first and chains the PCIe
// upload on completion.
func TestTieredPrefetchChains(t *testing.T) {
	e := tieredEngine(t, 3)
	cold := coldRef(e.cfg)
	if !e.Prefetch(cold, 1.0, 0) {
		t.Fatal("staging prefetch refused")
	}
	if !e.Tracked(cold) {
		t.Fatal("staging prefetch not tracked")
	}
	if e.Prefetch(cold, 2.0, 0) {
		t.Fatal("duplicate prefetch accepted mid-chain")
	}
	// Drain far enough for the full chain: staging lands in DRAM, the
	// chained PCIe upload completes, the expert becomes GPU-resident.
	e.drain(1e6)
	if !e.caches.Contains(cold) {
		t.Fatal("prefetch chain did not reach the GPU")
	}
	if len(e.pendingUp) != 0 {
		t.Fatalf("pendingUp not drained: %v", e.pendingUp)
	}
}

// TestDemoteInFlightTracked pins the in-flight demotion contract: a
// policy demoting a DRAM expert whose PCIe upload is already in flight
// drops the DRAM copy, but the transfer (a snapshot of the weights)
// still completes and the expert becomes GPU-resident.
func TestDemoteInFlightTracked(t *testing.T) {
	e := tieredEngine(t, 3)
	warm := moe.ExpertRef{Layer: 0, Expert: 0}
	if !e.Prefetch(warm, 1.0, 0) {
		t.Fatal("prefetch refused")
	}
	if !e.Tracked(warm) {
		t.Fatal("upload not tracked")
	}
	if !e.Demote(warm, e.Now()) {
		t.Fatal("demotion of DRAM-resident expert refused")
	}
	if got := e.Tier(warm); got != 2 {
		t.Fatalf("demoted expert at tier %d, want 2 (backing store)", got)
	}
	e.drain(1e6)
	if !e.caches.Contains(warm) {
		t.Fatal("in-flight upload did not survive the demotion")
	}
}

// TestPromoteSingleHop verifies Promote moves an expert exactly one
// tier upward: NVMe -> DRAM without chaining a GPU upload.
func TestPromoteSingleHop(t *testing.T) {
	e := tieredEngine(t, 3)
	cold := coldRef(e.cfg)
	if !e.Promote(cold, 1.0, 0) {
		t.Fatal("promote refused")
	}
	e.drain(1e6)
	if got := e.Tier(cold); got != 1 {
		t.Fatalf("promoted expert at tier %d, want 1 (DRAM, no GPU upload)", got)
	}
	// Promoting a DRAM-resident expert is the final hop to the GPU.
	if !e.Promote(cold, 1.0, 1e6) {
		t.Fatal("DRAM promote refused")
	}
	e.drain(2e6)
	if got := e.Tier(cold); got != 0 {
		t.Fatalf("expert at tier %d after second promote, want 0", got)
	}
}

// TestDemoteFromGPUCascades verifies Demote on a GPU-resident expert
// drops it into DRAM, and demotions cascade drops out of a full DRAM.
func TestDemoteFromGPUCascades(t *testing.T) {
	e := tieredEngine(t, 3)
	warm := moe.ExpertRef{Layer: 0, Expert: 0}
	end := e.fetchOnDemand(warm, 0)
	e.drain(end)
	if e.Tier(warm) != 0 {
		t.Fatal("setup: expert not GPU-resident")
	}
	// A pinned GPU copy is in use by the executing layer: never dropped.
	e.caches.Pin(warm)
	if e.Demote(warm, e.Now()) {
		t.Fatal("demotion dropped a pinned GPU copy")
	}
	e.caches.Unpin(warm)
	if !e.Demote(warm, e.Now()) {
		t.Fatal("GPU demotion refused")
	}
	if got := e.Tier(warm); got != 1 {
		t.Fatalf("demoted expert at tier %d, want 1 (DRAM)", got)
	}
	// Bottom-tier experts cannot demote further.
	if e.Demote(coldRef(e.cfg), e.Now()) {
		t.Fatal("backing-store expert accepted a demotion")
	}
}

// TestZeroCapacityDRAMEngine pins the zero-capacity DRAM tier: every
// fetch re-stages from NVMe (nothing sticks in DRAM) yet still lands on
// the GPU.
func TestZeroCapacityDRAMEngine(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 12)
	// One byte of DRAM: capacity rounds down to zero experts.
	e := New(Options{
		Model: m, GPU: memsim.RTX3090(), NumGPUs: 1,
		CacheBytes: 4 * cfg.ExpertBytes(),
		Policy:     baselines.NewNoOffload(),
		Memory:     memsim.ThreeTier(1),
	})
	if got := e.MemoryPressure(); got != 0 {
		t.Fatalf("zero-capacity DRAM pressure %v, want 0", got)
	}
	ref := moe.ExpertRef{Layer: 1, Expert: 1}
	end := e.fetchOnDemand(ref, 0)
	e.drain(end)
	if !e.caches.Contains(ref) {
		t.Fatal("expert did not reach the GPU through a zero-capacity DRAM")
	}
	if got := e.host[0].Len(); got != 0 {
		t.Fatalf("zero-capacity DRAM holds %d experts", got)
	}
	// Dropping it from the GPU sends it all the way down: DRAM cannot
	// hold the demotion.
	e.Demote(ref, e.Now())
	if got := e.Tier(ref); got != 2 {
		t.Fatalf("expert at tier %d after demotion through zero-capacity DRAM, want 2", got)
	}
	// The next fetch pays the full staging route again.
	stage := memsim.DefaultNVMeLatencyMS + float64(cfg.ExpertBytes())/(memsim.DefaultNVMeGBps*1e6)
	if got := e.fetchOnDemand(ref, 1e5); got < 1e5+stage {
		t.Fatalf("re-fetch end %v did not pay the staging hop", got)
	}
}

// TestMemoryPressureTracksSpill verifies the thrash signal rises while
// fetches spill below DRAM and decays back once the working set fits —
// the property the memory-aware router and the autoscaler's
// MemoryHighWatermark trigger depend on (plain occupancy could not
// provide it: a warm-filled bounded tier is 100% occupied all run).
func TestMemoryPressureTracksSpill(t *testing.T) {
	e := tieredEngine(t, 3)
	// Spill phase: fetch distinct NVMe-resident experts.
	now := 0.0
	for j := 1; j < e.cfg.RoutedExperts; j++ {
		for l := 0; l < e.cfg.Layers; l++ {
			now = e.fetchOnDemand(moe.ExpertRef{Layer: l, Expert: j}, now)
		}
	}
	high := e.MemoryPressure()
	if high <= 0.2 {
		t.Fatalf("pressure %v after sustained spill, want > 0.2", high)
	}
	// Fit phase: repeated DRAM hits decay the signal. The drain churns
	// DRAM (GPU evictions demote into it), so pick whichever expert is
	// DRAM-resident afterwards.
	e.drain(now)
	var warm moe.ExpertRef
	found := false
	for l := 0; l < e.cfg.Layers && !found; l++ {
		for j := 0; j < e.cfg.RoutedExperts && !found; j++ {
			if r := (moe.ExpertRef{Layer: l, Expert: j}); e.hostLevel(r) == 0 {
				warm, found = r, true
			}
		}
	}
	if !found {
		t.Fatal("setup: no DRAM-resident expert after fetches")
	}
	for i := 0; i < 64; i++ {
		e.noteMemFetch(e.hostLevel(warm))
	}
	if low := e.MemoryPressure(); low >= high/2 {
		t.Fatalf("pressure %v did not decay from %v under DRAM hits", low, high)
	}
}

// TestTierStatsShape verifies the per-tier snapshot lines up with the
// hierarchy and reports staging activity on the DRAM entry.
func TestTierStatsShape(t *testing.T) {
	e := tieredEngine(t, 3)
	cold := coldRef(e.cfg)
	end := e.fetchOnDemand(cold, 0)
	e.drain(end)
	ts := e.TierStats()
	if len(ts) != 3 {
		t.Fatalf("tier stats depth %d, want 3", len(ts))
	}
	if ts[0].Name != "HBM" || ts[1].Name != "DRAM" || ts[2].Name != "NVMe" {
		t.Fatalf("tier names %v", []string{ts[0].Name, ts[1].Name, ts[2].Name})
	}
	if ts[1].Link.OnDemands != 1 {
		t.Fatalf("DRAM feeding link on-demands %d, want 1", ts[1].Link.OnDemands)
	}
	if ts[0].Link.OnDemands != 1 {
		t.Fatalf("PCIe on-demands %d, want 1", ts[0].Link.OnDemands)
	}
	if ts[2].CapacityExperts != -1 || ts[2].ResidentExperts != e.cfg.Layers*e.cfg.RoutedExperts {
		t.Fatalf("backing tier stats %+v", ts[2])
	}
	if ts[1].Promotions != 1 {
		t.Fatalf("DRAM promotions %d, want 1 (the staged copy)", ts[1].Promotions)
	}
}
