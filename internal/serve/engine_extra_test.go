package serve

import (
	"testing"

	"finemoe/internal/baselines"
	"finemoe/internal/core"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
)

func TestResultPercentiles(t *testing.T) {
	cfg := moe.Tiny()
	e, m := newTinyEngine(t, baselines.NewDeepSpeed(), nil)
	reqs := testReqs(cfg, 5, 6)
	res := e.RunOffline(reqs, buildTraces(m, reqs))
	if res.TTFT.N != 5 || res.E2E.N != 5 || res.TPOT.N != 5 {
		t.Fatalf("summary sample sizes: %+v %+v %+v", res.TTFT, res.TPOT, res.E2E)
	}
	if res.TTFT.P50 > res.TTFT.P99 || res.E2E.P50 > res.E2E.P99 {
		t.Fatal("percentiles not ordered")
	}
	if res.MeanTTFT != res.TTFT.Mean || res.MeanTPOT != res.TPOT.Mean {
		t.Fatal("mean accessors diverge from summaries")
	}
	if res.E2E.Min <= 0 || res.E2E.Max < res.E2E.Min {
		t.Fatalf("E2E range wrong: %+v", res.E2E)
	}
}

// TestTinyCacheStress: a cache smaller than one layer's activation set must
// not wedge or panic — last-resort pinned eviction keeps serving (§4.5's
// on-demand path always succeeds).
func TestTinyCacheStress(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 55)
	reqs := testReqs(cfg, 2, 4)
	e := New(Options{
		Model: m, GPU: testGPU(), NumGPUs: 1,
		CacheBytes: cfg.ExpertBytes(), // a single expert fits
		Policy:     baselines.NewProMoE(m),
	})
	res := e.RunOffline(reqs, buildTraces(m, reqs))
	if len(res.Requests) != 2 {
		t.Fatal("requests lost under cache stress")
	}
	if res.HitRate > 0.5 {
		t.Fatalf("hit rate %.3f implausible with a one-expert cache", res.HitRate)
	}
	if res.CacheStats.Evictions == 0 {
		t.Fatal("no evictions under extreme pressure")
	}
}

// TestSharedExpertsStayDense: Qwen-style shared experts are part of the
// pinned dense bytes, never offloaded or transferred.
func TestSharedExpertsStayDense(t *testing.T) {
	cfg := moe.Tiny()
	cfg.SharedExperts = 2
	cfg.SharedIntermediate = 64
	m := moe.NewModel(cfg, 77)
	reqs := testReqs(cfg, 2, 4)
	e := New(Options{
		Model: m, GPU: testGPU(), NumGPUs: 2,
		CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()),
		Policy:     baselines.NewDeepSpeed(),
	})
	res := e.RunOffline(reqs, buildTraces(m, reqs))
	// Memory footprint must include the shared-expert bytes via DenseBytes.
	withoutShared := cfg
	withoutShared.SharedExperts = 0
	withoutShared.SharedIntermediate = 0
	if res.GPUMemoryBytes <= withoutShared.DenseBytes()*2+e.opts.CacheBytes {
		t.Fatal("shared experts missing from the memory footprint")
	}
	// No transfer may reference an expert index beyond the routed range.
	for _, r := range res.Requests {
		if r.Hits+r.Misses != activationsOf(cfg, buildTraces(m, reqs)[r.ID]) {
			t.Fatalf("activation accounting off for request %d", r.ID)
		}
	}
}

func activationsOf(cfg moe.Config, iters []*moe.Iteration) int {
	n := 0
	for _, it := range iters {
		for _, act := range it.Active {
			n += len(act)
		}
	}
	return n
}

// TestBreakdownComponentsDisjoint: the engine's per-iteration breakdown must
// contain inference plus load time, and FineMoE must contribute its async
// components.
func TestBreakdownComponentsFineMoE(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 31)
	storeReqs := testReqs(cfg, 12, 6)
	store := core.BuildStore(cfg, 200, 2, buildTraces(m, storeReqs))
	pol := core.NewFineMoE(store, core.Options{PrefetchDistance: 2})
	reqs := testReqs(cfg, 2, 6)
	e := New(Options{Model: m, GPU: testGPU(), NumGPUs: 2,
		CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2, Policy: pol})
	res := e.RunOffline(reqs, buildTraces(m, reqs))
	for _, comp := range []string{policy.CompInfer, policy.CompCollect, policy.CompMapMatch, policy.CompUpdate} {
		if res.Breakdown[comp] <= 0 {
			t.Fatalf("component %q missing: %v", comp, res.Breakdown)
		}
	}
	// FineMoE is fully asynchronous: no synchronous prediction time.
	if res.Breakdown[policy.CompPredict] != 0 {
		t.Fatalf("FineMoE reported sync prediction time: %v", res.Breakdown)
	}
}

// TestOnlineMaxBatchRespected: the running set must never exceed MaxBatch.
// (Indirect check: with MaxBatch=2 and a burst, the two first requests must
// finish before the last is admitted.)
func TestOnlineMaxBatchRespected(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 31)
	reqs := testReqs(cfg, 4, 4)
	for i := range reqs {
		reqs[i].ArrivalMS = 0.001 * float64(i+1)
	}
	e := New(Options{Model: m, GPU: testGPU(), NumGPUs: 2,
		CacheBytes: cfg.ExpertBytes() * int64(cfg.NumExperts()) / 2,
		Policy:     baselines.NewDeepSpeed(), MaxBatch: 2})
	res := e.RunOnline(reqs, buildTraces(m, reqs))
	var starts []float64
	for _, r := range res.Requests {
		starts = append(starts, r.StartMS)
	}
	// Request 3 and 4 must start strictly later than requests 1 and 2
	// despite arriving almost simultaneously.
	later := 0
	for _, s := range starts[2:] {
		if s > starts[0] {
			later++
		}
	}
	if later != 2 {
		t.Fatalf("MaxBatch not enforced: starts %v", starts)
	}
}

// TestEngineIterationsMatchTokens: total engine iterations must equal the
// output tokens served for batch size 1.
func TestEngineIterationsMatchTokens(t *testing.T) {
	cfg := moe.Tiny()
	e, m := newTinyEngine(t, baselines.NewNoOffload(), func(o *Options) {
		o.PreloadAll = true
		o.CacheBytes = cfg.ExpertBytes() * int64(cfg.NumExperts())
	})
	reqs := testReqs(cfg, 3, 7)
	res := e.RunOffline(reqs, buildTraces(m, reqs))
	if res.Iterations != 3*7 {
		t.Fatalf("iterations %d, want 21", res.Iterations)
	}
}
