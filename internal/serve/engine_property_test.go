package serve

import (
	"testing"
	"testing/quick"

	"finemoe/internal/baselines"
	"finemoe/internal/core"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/rng"
	"finemoe/internal/workload"
)

// TestEngineConservationProperty: for any random workload and policy, the
// engine must conserve basic accounting: every activation is a hit or a
// miss, per-request times are ordered, and the virtual clock never runs
// backwards across requests.
func TestEngineConservationProperty(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 404)
	r := rng.New(17)
	builders := []func() policy.Policy{
		func() policy.Policy { return baselines.NewDeepSpeed() },
		func() policy.Policy { return baselines.NewMixtralOffload(m) },
		func() policy.Policy { return baselines.NewProMoE(m) },
		func() policy.Policy { return baselines.NewMoEInfinity(baselines.NewEAMCollection(cfg)) },
		func() policy.Policy { return core.NewFineMoE(core.NewStore(cfg, 50, 2), core.Options{}) },
	}
	f := func(seed uint64) bool {
		rr := r.Derive(seed)
		d := workload.Dataset{Name: "prop", Topics: 4, TopicSpread: 0.1,
			MeanInput: 4 + rr.Intn(6), MeanOutput: 2 + rr.Intn(6), Seed: seed}
		n := 1 + rr.Intn(4)
		reqs := d.Sample(workload.Options{Dim: cfg.SemDim, N: n, Seed: seed, FixedLengths: true})
		capacityExperts := 1 + rr.Intn(cfg.NumExperts())
		e := New(Options{
			Model: m, GPU: testGPU(), NumGPUs: 1 + rr.Intn(3),
			CacheBytes: cfg.ExpertBytes() * int64(capacityExperts),
			Policy:     builders[rr.Intn(len(builders))](),
			BatchSize:  1 + rr.Intn(3),
		})
		res := e.RunOffline(reqs, nil)
		if len(res.Requests) != n {
			t.Logf("lost requests: %d of %d", len(res.Requests), n)
			return false
		}
		var acts int
		for _, q := range reqs {
			for _, it := range m.Trace(q.PromptSpec) {
				for _, a := range it.Active {
					acts += len(a)
				}
			}
		}
		var hits, misses int
		for _, rm := range res.Requests {
			hits += rm.Hits
			misses += rm.Misses
			if rm.TTFTms <= 0 || rm.E2Ems < rm.TTFTms-1e-9 {
				t.Logf("time ordering broken: %+v", rm)
				return false
			}
			if rm.EndMS < rm.FirstTokenMS {
				t.Logf("end before first token: %+v", rm)
				return false
			}
		}
		if hits+misses != acts {
			t.Logf("activation conservation broken: %d+%d != %d", hits, misses, acts)
			return false
		}
		if res.WallClockMS < res.E2E.Max-1e-6 {
			t.Logf("makespan %v below max E2E %v", res.WallClockMS, res.E2E.Max)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
