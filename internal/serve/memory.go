package serve

import (
	"finemoe/internal/cache"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
)

// Tiered-memory residency: the per-expert state machine over the ordered
// tier list GPU HBM -> host tiers (DRAM -> NVMe ...). An expert's state
// is the topmost tier holding a copy, plus at most one tracked transfer
// per link moving it upward. Movements:
//
//   - fetch (miss): route the expert up through every intermediate tier
//     on the distinct contended links — a blocking staging copy per hop
//     (NVMe->DRAM on the shared staging link), then the PCIe upload.
//   - prefetch: the same route, asynchronous — each staging completion
//     chains the next hop with the original priority.
//   - demotion: a GPU-cache eviction drops the expert into DRAM (free:
//     weights are immutable, the host copy is clean); a DRAM eviction
//     drops to the backing tier, which always holds every expert.
//
// The degenerate two-tier hierarchy (unbounded DRAM) makes every routing
// decision trivial — hostLevel is always 0, no staging links exist, pins
// are no-ops — so the engine's arithmetic is byte-identical to the
// pre-tiering code (pinned by the parity goldens).

// buildHostTiers materializes the hierarchy's host-side residency sets.
func buildHostTiers(h memsim.Hierarchy, cfg moe.Config, scorer cache.Scorer) []*cache.HostTier {
	tiers := make([]*cache.HostTier, 0, h.Depth())
	for _, spec := range h.Host {
		if spec.Unbounded() {
			tiers = append(tiers, cache.NewUnboundedHostTier(spec.Name))
			continue
		}
		capExperts := int(spec.CapacityBytes / cfg.ExpertBytes())
		tiers = append(tiers, cache.NewHostTier(spec.Name, capExperts, scorer))
	}
	return tiers
}

// warmHostTiers populates bounded host tiers at t=0: a served model's
// host memory starts loaded (weights arrive through DRAM at startup),
// not empty, so runs do not open with an unrepresentative NVMe
// cold-start storm. The fill stripes expert-major (expert j of every
// layer before expert j+1) so each layer gets an even share of the warm
// set; the tier's scorer reshapes residency as traffic flows.
func warmHostTiers(tiers []*cache.HostTier, cfg moe.Config) {
	for _, t := range tiers {
		if t.Unbounded() {
			continue
		}
		n := t.Capacity()
		warmed := 0
		for j := 0; j < cfg.RoutedExperts && warmed < n; j++ {
			for l := 0; l < cfg.Layers && warmed < n; l++ {
				t.Warm(moe.ExpertRef{Layer: l, Expert: j})
				warmed++
			}
		}
	}
}

// hostLevel returns the topmost host tier holding ref (0 = DRAM). The
// bottom tier is unbounded, so the scan always terminates with a hit.
//
//finemoe:hotpath
func (e *Engine) hostLevel(ref moe.ExpertRef) int {
	for i, t := range e.host {
		if t.Contains(ref) {
			return i
		}
	}
	// Unreachable: the hierarchy validator guarantees an unbounded
	// bottom tier.
	return len(e.host) - 1
}

// hostInsert lands a staged copy in host tier level, dropping that
// tier's evictions to their backing copies (free). Reports whether the
// insert took (a strict tier saturated with pinned uploads refuses it;
// the chain still proceeds through the transient bounce buffer).
//
//finemoe:hotpath
func (e *Engine) hostInsert(level int, ref moe.ExpertRef, now float64) bool {
	evicted, ok := e.host[level].Insert(ref, now)
	e.tierDrops[level] += len(evicted)
	return ok
}

// demoteFromGPU drops a GPU-cache eviction into DRAM (host tier 0).
//
//finemoe:hotpath
func (e *Engine) demoteFromGPU(ref moe.ExpertRef, now float64) {
	evicted, _ := e.host[0].Demote(ref, now)
	e.tierDrops[0] += len(evicted)
}

// gpuInsert makes ref GPU-resident, demoting the cache's evictions into
// the host hierarchy.
//
//finemoe:hotpath
func (e *Engine) gpuInsert(ref moe.ExpertRef, now float64) {
	for _, ev := range e.caches.Insert(ref, now) {
		e.demoteFromGPU(ev, now)
	}
}

// memSpillAlpha is the EMA step of the spill-fraction signal: ~32
// fetches of history, enough to smooth per-layer noise while reacting
// within an iteration or two of the working set outgrowing DRAM.
const memSpillAlpha = 1.0 / 32

// noteMemFetch folds one fetch's routing depth into the spill EMA:
// sample 1 when the expert had to come from below DRAM, 0 on a DRAM hit.
//
//finemoe:hotpath
func (e *Engine) noteMemFetch(level int) {
	sample := 0.0
	if level > 0 {
		sample = 1
	}
	e.memSpill += memSpillAlpha * (sample - e.memSpill)
}

// fetchOnDemand blocks until ref is upload-complete on its GPU and
// returns that time: staging copies hop the expert up through every
// intermediate tier, then the owning GPU's PCIe link performs the final
// upload (the seed's entire on-demand path when ref is already
// DRAM-resident).
//
//finemoe:hotpath
func (e *Engine) fetchOnDemand(ref moe.ExpertRef, now float64) float64 {
	t := now
	e.noteMemFetch(e.hostLevel(ref))
	for level := e.hostLevel(ref); level >= 1; level-- {
		t = e.cluster.StageOnDemand(level-1, ref, t)
		e.hostInsert(level-1, ref, t)
		// The blocking route supersedes any pending asynchronous chain.
		delete(e.pendingUp, ref)
	}
	e.host[0].Touch(ref, t)
	e.host[0].Pin(ref)
	return e.cluster.OnDemand(ref, t)
}

// --- tier-aware policy.Runtime surface --------------------------------------

// Tier implements policy.Runtime: the topmost tier where ref is
// resident (0 = GPU HBM, 1 = DRAM, ...).
//
//finemoe:hotpath
func (e *Engine) Tier(ref moe.ExpertRef) int {
	if e.caches.Contains(ref) {
		return 0
	}
	return 1 + e.hostLevel(ref)
}

// Promote implements policy.Runtime: stage ref one tier upward.
//
//finemoe:hotpath
func (e *Engine) Promote(ref moe.ExpertRef, priority, issueTime float64) bool {
	if e.caches.Contains(ref) {
		return false
	}
	if e.cluster.Tracked(ref) || e.cluster.StageTracked(ref) {
		return false
	}
	level := e.hostLevel(ref)
	if level == 0 {
		ok := e.cluster.Prefetch(ref, priority, issueTime)
		if ok {
			e.noteMemFetch(level)
			e.host[0].Touch(ref, issueTime)
			e.host[0].Pin(ref)
		}
		return ok
	}
	ok := e.cluster.StagePrefetch(level-1, ref, priority, issueTime)
	if ok {
		e.noteMemFetch(level)
	}
	return ok
}

// Demote implements policy.Runtime: drop ref's topmost resident copy
// one tier down at time now. A GPU copy pinned by the executing layer
// is in use and never dropped.
//
//finemoe:hotpath
func (e *Engine) Demote(ref moe.ExpertRef, now float64) bool {
	if e.caches.Contains(ref) {
		if e.caches.Pinned(ref) {
			return false
		}
		e.caches.Remove(ref)
		e.demoteFromGPU(ref, now)
		return true
	}
	for _, t := range e.host {
		if t.Remove(ref) {
			return true
		}
	}
	return false
}

// MemoryPressure implements policy.Runtime: the decayed fraction of
// recent expert fetches staged from below DRAM (0 under the degenerate
// unbounded configuration, where no fetch can spill; approaching 1 when
// the working set thrashes through the NVMe staging link).
func (e *Engine) MemoryPressure() float64 {
	if e.host[0].Unbounded() {
		return 0
	}
	return e.memSpill
}

// --- per-tier statistics ----------------------------------------------------

// TierStat reports one memory tier's residency and transfer activity.
// Tiers are ordered topmost first: index 0 is the GPU expert cache
// (HBM), index 1 the host DRAM tier, deeper indices the slower tiers.
type TierStat struct {
	// Name labels the tier ("HBM", "DRAM", "NVMe").
	Name string
	// CapacityExperts bounds the tier in whole experts (-1 = unbounded).
	CapacityExperts int
	// ResidentExperts and ResidentBytes are end-of-run residency (the
	// full expert population for an unbounded backing tier).
	ResidentExperts int
	ResidentBytes   int64
	// Pressure is the occupancy fraction (0 for unbounded tiers).
	Pressure float64
	// Promotions counts copies that landed in this tier from below;
	// Demotions copies dropped into it from above; Drops entries it
	// pushed down to their backing copies under capacity pressure;
	// RejectedInserts copies refused by a pin-saturated strict tier.
	Promotions, Demotions, Drops, RejectedInserts int
	// Link is the cumulative activity of the link feeding this tier
	// from below: the PCIe uploads for tier 0, the shared staging link
	// for intermediate host tiers, zero for the bottom tier.
	Link memsim.LinkStats
}

// TierStats snapshots the hierarchy's per-tier statistics, topmost tier
// first. Safe to call mid-run (the live /v1/stats surface does).
func (e *Engine) TierStats() []TierStat {
	cs := e.caches.Stats()
	gpu := TierStat{
		Name:            "HBM",
		CapacityExperts: e.caches.TotalCapacity(),
		ResidentExperts: cs.CurrentResident,
		ResidentBytes:   int64(cs.CurrentResident) * e.cfg.ExpertBytes(),
		Promotions:      cs.Insertions,
		Drops:           cs.Evictions,
		RejectedInserts: cs.RejectedInserts,
		Link:            e.cluster.Stats(),
	}
	if gpu.CapacityExperts > 0 {
		gpu.Pressure = float64(gpu.ResidentExperts) / float64(gpu.CapacityExperts)
	}
	out := []TierStat{gpu}
	staging := e.cluster.StagingStats()
	totalExperts := e.cfg.Layers * e.cfg.RoutedExperts
	for j, t := range e.host {
		ts := TierStat{
			Name:            t.Name(),
			CapacityExperts: t.Capacity(),
			ResidentExperts: t.Len(),
			Pressure:        t.Pressure(),
			Promotions:      t.Promotions(),
			Demotions:       t.Demotions(),
			Drops:           e.tierDrops[j],
			RejectedInserts: t.CacheStats().RejectedInserts,
		}
		if t.Unbounded() {
			ts.ResidentExperts = totalExperts
		}
		ts.ResidentBytes = int64(ts.ResidentExperts) * e.cfg.ExpertBytes()
		if j < len(staging) {
			ts.Link = staging[j]
		}
		out = append(out, ts)
	}
	return out
}
