package serve

import (
	"math"
	"testing"

	"finemoe/internal/moe"
)

// TestCrashHaltsEngine: a crashed engine stops producing events and
// strands its queue until CrashHarvest collects it — running requests in
// admission order, then pending in arrival order — exactly once.
func TestCrashHaltsEngine(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 3)
	e := stepEngine(m, finePolicy(m.Cfg))
	trace := onlineTrace(m.Cfg, 8)
	for _, q := range trace {
		e.Submit(q)
	}
	// Serve a few events so some requests complete and some are mid-batch.
	for i := 0; i < 3; i++ {
		if next := e.NextEventTime(); !math.IsInf(next, 1) {
			e.Step(next)
		}
	}
	inFlight, queued := e.InFlight(), e.QueueDepth()
	served := e.CompletedCount()
	if inFlight+queued == 0 {
		t.Fatal("test needs stranded work; trace drained too fast")
	}

	e.Crash()
	if !e.Crashed() {
		t.Fatal("Crashed() false after Crash")
	}
	if got := e.NextEventTime(); !math.IsInf(got, 1) {
		t.Fatalf("crashed NextEventTime %v, want +Inf", got)
	}
	if e.Step(math.Inf(1)) {
		t.Fatal("crashed engine stepped")
	}
	if e.CompletedCount() != served {
		t.Fatalf("completions changed after crash: %d -> %d", served, e.CompletedCount())
	}

	harvest := e.CrashHarvest()
	if len(harvest) != inFlight+queued {
		t.Fatalf("harvested %d, want %d in-flight + %d queued", len(harvest), inFlight, queued)
	}
	// Queued tail must preserve arrival order.
	for i := inFlight + 1; i < len(harvest); i++ {
		if harvest[i].ArrivalMS < harvest[i-1].ArrivalMS {
			t.Fatalf("harvest queue out of arrival order at %d", i)
		}
	}
	if e.InFlight() != 0 || e.QueueDepth() != 0 {
		t.Fatal("harvest left stranded work behind")
	}
	if e.CrashHarvest() != nil {
		t.Fatal("second harvest not nil")
	}
}

// TestCancelRemovesRequest: Cancel retires queued and in-flight copies
// without completion metrics; unknown and already-completed IDs miss.
func TestCancelRemovesRequest(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 3)
	e := stepEngine(m, finePolicy(m.Cfg))
	trace := onlineTrace(m.Cfg, 6)
	for _, q := range trace {
		e.Submit(q)
	}
	// Cancel a queued request before it is ever admitted.
	victim := trace[len(trace)-1].ID
	if !e.Cancel(victim) {
		t.Fatal("Cancel missed a queued request")
	}
	if e.Cancel(victim) {
		t.Fatal("Cancel hit the same request twice")
	}
	// Admit work, then cancel something mid-batch.
	e.Step(e.NextEventTime())
	if e.InFlight() == 0 {
		t.Fatal("expected in-flight work after one step")
	}
	running := e.running[0].req.ID
	before := e.InFlight()
	if !e.Cancel(running) {
		t.Fatal("Cancel missed an in-flight request")
	}
	if e.InFlight() != before-1 {
		t.Fatalf("in-flight %d after cancel, want %d", e.InFlight(), before-1)
	}
	e.Drain()
	for _, rm := range e.Completed() {
		if rm.ID == victim || rm.ID == running {
			t.Fatalf("cancelled request %d completed", rm.ID)
		}
	}
	if e.CompletedCount() != len(trace)-2 {
		t.Fatalf("completed %d, want %d", e.CompletedCount(), len(trace)-2)
	}
}
