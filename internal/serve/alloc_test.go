package serve

import (
	"testing"

	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/workload"
)

// S4 steady-state allocation guards. The sharded cluster loop multiplies
// Engine.Step across 32+ instances and a million requests; a single
// per-iteration allocation reappears as gigabytes of garbage at that
// scale. These tests pin the contract the finemoe-lint hotalloc analyzer
// proves statically — mid-stream decode iterations allocate nothing — by
// measuring it dynamically, including the residency machine's
// fetch/evict/demote churn which the static proof cannot see end to end.

// nopPolicy is the minimal policy: no hooks, no state, LRU eviction.
type nopPolicy struct{ policy.Base }

func (*nopPolicy) Name() string { return "nop" }

// decodeEngine builds an engine mid-stream: one long-decode request
// admitted and past prefill, enough remaining tokens for the measured
// runs, with every remaining event a pure decode iteration.
func decodeEngine(t *testing.T, opts Options, tokens int) *Engine {
	t.Helper()
	cfg := opts.Model.Cfg
	emb := make([]float64, cfg.SemDim)
	emb[0] = 1
	req := workload.Request{
		PromptSpec: moe.PromptSpec{ID: 1, InputTokens: 4, OutputTokens: tokens, Embedding: emb},
	}
	e := New(opts)
	e.Submit(req)
	// Admission + prefill (allocates the runReq and gate trace — the
	// admitOne allocok exemption) happen outside the measured window.
	if !e.Step(e.NextEventTime()) {
		t.Fatal("prefill step refused")
	}
	if e.InFlight() != 1 || e.QueueDepth() != 0 {
		t.Fatalf("not mid-stream: in-flight %d, queued %d", e.InFlight(), e.QueueDepth())
	}
	return e
}

// measureDecodeAllocs runs n decode-only steps under AllocsPerRun,
// asserting the request neither completes nor re-enters admission inside
// the window.
func measureDecodeAllocs(t *testing.T, e *Engine, n int) float64 {
	t.Helper()
	got := testing.AllocsPerRun(n, func() {
		if !e.Step(e.NextEventTime()) {
			t.Fatal("decode step refused mid-stream")
		}
	})
	if e.InFlight() != 1 {
		t.Fatalf("request left the batch inside the measured window (in-flight %d)", e.InFlight())
	}
	return got
}

// TestStepDecodeZeroAlloc: with every expert resident the decode loop —
// admission scan, policy views, union/dedup scratch, cache lookups,
// metric accounting — allocates nothing per iteration.
func TestStepDecodeZeroAlloc(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 3)
	e := decodeEngine(t, Options{
		Model: m, GPU: memsim.RTX3090(), NumGPUs: 1,
		Policy:     &nopPolicy{},
		PreloadAll: true,
	}, 600)
	if got := measureDecodeAllocs(t, e, 500); got != 0 {
		t.Errorf("resident decode step allocates %.1f objects per iteration, want 0", got)
	}
}

// TestStepDecodeResidencyMachineZeroAlloc: with a cache far smaller than
// the working set over the three-tier hierarchy, every decode iteration
// misses, fetches through the staging link, inserts, evicts and demotes —
// and still allocates nothing once warm.
func TestStepDecodeResidencyMachineZeroAlloc(t *testing.T) {
	cfg := moe.Tiny()
	m := moe.NewModel(cfg, 3)
	e := decodeEngine(t, Options{
		Model: m, GPU: memsim.RTX3090(), NumGPUs: 1,
		Policy:     &nopPolicy{},
		CacheBytes: cfg.ExpertBytes() * int64(cfg.Layers), // one expert per layer
		Memory:     memsim.ThreeTier(4 * cfg.ExpertBytes()),
	}, 600)
	// Warm the transfer machinery's internal buffers outside the window.
	for i := 0; i < 50; i++ {
		e.Step(e.NextEventTime())
	}
	if got := measureDecodeAllocs(t, e, 400); got != 0 {
		t.Errorf("staging-heavy decode step allocates %.1f objects per iteration, want 0", got)
	}
	if e.misses == 0 {
		t.Fatal("degenerate configuration: residency machine never exercised")
	}
}
