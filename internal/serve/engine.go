// Package serve implements the MoE serving engine: the prefill/decode
// iteration loop over the simulated cluster, the policy hook protocol,
// offline (fixed-batch) and online (trace-driven continuous batching)
// runners, and the paper's metrics — TTFT, TPOT, expert hit rate, and the
// per-iteration latency breakdown of Fig. 17.
package serve

import (
	"math"

	"finemoe/internal/cache"
	"finemoe/internal/memsim"
	"finemoe/internal/metrics"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/workload"
)

// Options configures one serving run.
type Options struct {
	// Model is the simulated MoE model.
	Model *moe.Model
	// GPU is the device type; NumGPUs the expert-parallel degree
	// (the paper's testbed: 6× RTX 3090).
	GPU     memsim.GPUSpec
	NumGPUs int
	// CacheBytes is the total expert-cache budget across devices
	// (Fig. 12's x-axis). Zero derives a default: the device memory left
	// after dense weights, capped at half the expert weights.
	CacheBytes int64
	// Policy is the offloading policy under test.
	Policy policy.Policy
	// BatchSize is the offline lockstep batch (default 1, Fig. 16b
	// sweeps 1–8).
	BatchSize int
	// MaxBatch bounds online continuous batching (default 8).
	MaxBatch int
	// PreloadAll makes every expert resident at t=0 (No-offload).
	PreloadAll bool
	// Memory configures the tiered host-memory hierarchy below the GPU
	// expert cache. The zero value is the degenerate two-tier
	// configuration (unbounded DRAM), which reproduces pre-tiering
	// results byte-identically; memsim.ThreeTier(dramBytes) bounds DRAM
	// and spills experts to an NVMe backing tier behind a shared
	// staging link.
	Memory memsim.Hierarchy
	// HostScorer ranks bounded host-tier residents for demotion (nil =
	// the policy's own Scorer, so the cache-eviction ablation surface
	// extends to every tier).
	HostScorer cache.Scorer
}

// RequestMetrics records one served request.
type RequestMetrics struct {
	ID        uint64
	ArrivalMS float64
	StartMS   float64
	// FirstTokenMS is the absolute completion time of the prefill
	// iteration.
	FirstTokenMS float64
	EndMS        float64
	// TTFTms is first-token latency including queueing (§2.1).
	TTFTms float64
	// TPOTms is the mean decode time per output token.
	TPOTms float64
	// E2Ems is the end-to-end request latency (Fig. 11).
	E2Ems float64
	// Hits/Misses count expert-cache residency at activation time.
	Hits, Misses int
	OutputTokens int
}

// HitRate returns the request's expert hit rate.
func (r RequestMetrics) HitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 1
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// Result aggregates a serving run.
type Result struct {
	Policy   string
	Model    string
	Requests []RequestMetrics
	// MeanTTFT/MeanTPOT are the paper's headline offline metrics.
	MeanTTFT, MeanTPOT float64
	// Latency order statistics across requests (ms).
	TTFT, TPOT, E2E metrics.Summary
	// Hits and Misses are the engine-level expert-cache counts: one per
	// unique activated expert per layer per iteration (batch members
	// sharing an expert count it once). Per-request RequestMetrics
	// hits/misses are NOT deduplicated across the batch, so their sums
	// can exceed these totals.
	Hits, Misses int
	// HitRate is Hits / (Hits + Misses) across the run.
	HitRate float64
	// Breakdown maps component -> mean ms per iteration (Fig. 17).
	Breakdown  map[string]float64
	Iterations int
	// GPUMemoryBytes is the serving memory footprint: dense weights plus
	// the expert-cache budget (Fig. 1b's memory axis).
	GPUMemoryBytes int64
	// PolicyOverheadBytes is CPU-side metadata (Expert Map Store / EAM
	// collection).
	PolicyOverheadBytes int64
	CacheStats          cache.Stats
	LinkStats           memsim.LinkStats
	// Tiers reports per-tier residency and transfer statistics, topmost
	// (GPU HBM) first; under the degenerate two-tier configuration the
	// host entry is the unbounded DRAM backing store.
	Tiers []TierStat
	// MemoryPressure is the host DRAM tier's end-of-run thrash level:
	// the decayed fraction of recent expert fetches staged from below
	// DRAM (0 when DRAM is unbounded or ample).
	MemoryPressure float64
	// WallClockMS is the simulated makespan of the run.
	WallClockMS float64
}

// Engine executes serving runs. Construct a fresh Engine (and policy) per
// run; engines are not safe for concurrent use.
//
// Beyond the closed RunOffline/RunOnline loops, the engine exposes a
// steppable event-driven surface — Submit, NextEventTime, Step, Drain,
// Finalize — so an external orchestrator (e.g. internal/cluster) can
// interleave many engines under one shared virtual clock. The step surface
// uses online semantics: continuous batching up to MaxBatch with
// prefill-first admission at iteration boundaries.
type Engine struct {
	opts    Options
	cfg     moe.Config
	model   *moe.Model
	cluster *memsim.Cluster
	caches  *cache.Set
	pol     policy.Policy

	// Tiered host memory: host[0] is DRAM, deeper entries slower tiers;
	// the last is always the unbounded backing store. pendingUp chains
	// asynchronous prefetches across tiers: an expert whose staging copy
	// is in flight maps to the priority of the next hop to issue when it
	// lands. tierDrops counts per-host-tier capacity evictions.
	host      []*cache.HostTier
	pendingUp map[moe.ExpertRef]float64
	tierDrops []int
	// memSpill is the exponentially decayed fraction of recent expert
	// fetches that had to be staged from below DRAM — the thrash signal
	// MemoryPressure reports. Occupancy would be useless here: a
	// warm-filled bounded tier sits at 100% occupancy for the whole run
	// regardless of whether the working set actually fits.
	memSpill float64

	// comp accumulates per-component latency densely (the engine only
	// accounts standard policy components; see policy.ComponentIndex).
	// compTouched tracks which slots were accounted so Finalize emits
	// exactly the keys a map accumulation would have.
	comp        [policy.NumComponents]float64
	compTouched [policy.NumComponents]bool
	iterations  int
	syncLoadMS  float64 // cumulative SyncLoad wait, for attribution
	hits        int
	misses      int

	// Steppable run state. pendingIt is parallel to pending; a nil entry
	// means "simulate the gate trace at admission time".
	pending   []workload.Request
	pendingIt [][]*moe.Iteration
	running   []*runReq
	completed []RequestMetrics
	// tracer simulates gate traces for requests submitted without one,
	// recycling the iterations of completed engine-traced requests.
	// Pre-supplied traces (SubmitTraced, RunOffline/RunOnline) are
	// caller-owned and are never recycled; runReq.ownedTrace tells the
	// two apart. reqFree and iterSliceFree recycle the per-request
	// bookkeeping records and their trace-slice headers.
	tracer        *moe.Tracer
	reqFree       []*runReq
	iterSliceFree [][]*moe.Iteration
	// batchScratch is step's reusable copy of running (finishIteration
	// compacts e.running while the batch is iterated, so the iteration
	// must walk a stable copy — but not a fresh one per event).
	batchScratch []*runReq
	// Per-iteration scratch reused across runIteration calls: the policy
	// view buffers, the per-layer residency set, and the per-device
	// expert-compute accumulator. Valid only within one call.
	iterScratch  []policy.IterView
	layerScratch []policy.LayerView
	admitScratch []*runReq
	// residScratch[j] is expert j's residency at the current layer; the
	// dense per-expert layout replaces a map keyed by ExpertRef (every
	// ref probed in one layer shares that layer), trading a J-entry clear
	// per layer for zero hashing on the decode path.
	residScratch []bool
	gpuScratch   []float64
	// unionActive's reusable buffers: the deduplicated union, the flat
	// per-request activation backing store with its offset table, the
	// per-request slice windows, and the dense per-expert dedup set.
	unionScratch  []moe.ExpertRef
	activeScratch []moe.ExpertRef
	activeOffs    []int
	perReqScratch [][]moe.ExpertRef
	seenScratch   []bool
	now           float64
	// offline switches admission to RunOffline's lockstep fixed-batch
	// semantics: a new batch is admitted only when the previous one fully
	// drains, arrival times are ignored, and submission order is kept.
	offline bool
	// crashed halts the engine (fault injection): no further events fire
	// and queued/running requests sit stranded until CrashHarvest.
	crashed bool
}

// New builds an engine for one run.
func New(opts Options) *Engine {
	if opts.Model == nil {
		panic("serve: nil model")
	}
	if opts.Policy == nil {
		panic("serve: nil policy")
	}
	if opts.NumGPUs <= 0 {
		opts.NumGPUs = 1
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 8
	}
	cfg := opts.Model.Cfg
	if opts.CacheBytes <= 0 {
		free := opts.GPU.MemBytes*int64(opts.NumGPUs) - cfg.DenseBytes()*int64(opts.NumGPUs)
		half := cfg.TotalExpertBytes() / 2
		opts.CacheBytes = free
		if opts.CacheBytes > half {
			opts.CacheBytes = half
		}
		if opts.CacheBytes < cfg.ExpertBytes()*int64(cfg.Layers) {
			opts.CacheBytes = cfg.ExpertBytes() * int64(cfg.Layers)
		}
	}
	hostScorer := opts.HostScorer
	if hostScorer == nil {
		hostScorer = opts.Policy.Scorer()
	}
	cl := memsim.NewTieredCluster(opts.GPU, opts.NumGPUs, cfg, opts.Memory)
	e := &Engine{
		opts:      opts,
		cfg:       cfg,
		model:     opts.Model,
		cluster:   cl,
		caches:    cache.NewSet(cfg, opts.NumGPUs, opts.CacheBytes, opts.Policy.Scorer()),
		pol:       opts.Policy,
		host:      buildHostTiers(cl.Hierarchy(), cfg, hostScorer),
		pendingUp: map[moe.ExpertRef]float64{},
	}
	e.tierDrops = make([]int, len(e.host))
	warmHostTiers(e.host, cfg)
	e.pol.Attach(e)
	if opts.PreloadAll {
		for l := 0; l < cfg.Layers; l++ {
			for j := 0; j < cfg.RoutedExperts; j++ {
				e.gpuInsert(moe.ExpertRef{Layer: l, Expert: j}, 0)
			}
		}
	}
	return e
}

// --- policy.Runtime implementation -----------------------------------------

// Config implements policy.Runtime.
func (e *Engine) Config() moe.Config { return e.cfg }

// Resident implements policy.Runtime.
func (e *Engine) Resident(ref moe.ExpertRef) bool { return e.caches.Contains(ref) }

// Tracked implements policy.Runtime: a transfer for ref is queued or in
// flight on the PCIe links or any staging link of the hierarchy.
func (e *Engine) Tracked(ref moe.ExpertRef) bool {
	return e.cluster.Tracked(ref) || e.cluster.StageTracked(ref)
}

// Prefetch implements policy.Runtime: route the expert asynchronously up
// through the hierarchy. A DRAM-resident expert goes straight onto its
// GPU's PCIe link (the seed's whole path); a deeper one starts a staging
// chain whose completions issue the next hop at the original priority.
func (e *Engine) Prefetch(ref moe.ExpertRef, priority, issueTime float64) bool {
	if e.caches.Contains(ref) {
		return false
	}
	level := e.hostLevel(ref)
	if level == 0 {
		ok := e.cluster.Prefetch(ref, priority, issueTime)
		if ok {
			e.noteMemFetch(level)
			e.host[0].Touch(ref, issueTime)
			e.host[0].Pin(ref)
		}
		return ok
	}
	if e.cluster.Tracked(ref) || e.cluster.StageTracked(ref) {
		return false
	}
	if _, dup := e.pendingUp[ref]; dup {
		return false
	}
	if !e.cluster.StagePrefetch(level-1, ref, priority, issueTime) {
		return false
	}
	e.noteMemFetch(level)
	e.pendingUp[ref] = priority
	return true
}

// SyncLoad implements policy.Runtime: blocking loads parallelized across
// the per-GPU links (each expert loads on its owner; staging hops for
// below-DRAM experts serialize on the shared staging links).
func (e *Engine) SyncLoad(refs []moe.ExpertRef, now float64) float64 {
	end := now
	loaded := false
	for _, r := range refs {
		if e.caches.Contains(r) {
			continue
		}
		loaded = true
		if t := e.fetchOnDemand(r, now); t > end {
			end = t
		}
	}
	if !loaded {
		return now
	}
	e.drain(end)
	e.syncLoadMS += end - now
	return end
}

// drain advances every link to now: completed staging copies land in
// their host tier and chain the next prefetch hop; completed PCIe
// uploads unpin their DRAM source and become GPU-resident (demoting the
// cache's evictions down the hierarchy).
func (e *Engine) drain(now float64) {
	if e.cluster.Hierarchy().Depth() > 1 {
		for _, st := range e.cluster.AdvanceStagingTo(now) {
			e.hostInsert(st.Level, st.Ref, st.End)
			pri, ok := e.pendingUp[st.Ref]
			if !ok {
				continue
			}
			if st.Level == 0 {
				delete(e.pendingUp, st.Ref)
				if e.cluster.Prefetch(st.Ref, pri, st.End) {
					e.host[0].Touch(st.Ref, st.End)
					e.host[0].Pin(st.Ref)
				}
			} else {
				e.cluster.StagePrefetch(st.Level-1, st.Ref, pri, st.End)
			}
		}
	}
	for _, t := range e.cluster.AdvanceTo(now) {
		e.host[0].Unpin(t.Ref)
		e.gpuInsert(t.Ref, t.End)
	}
}

//finemoe:hotpath
func (e *Engine) account(component string, ms float64) {
	i := policy.ComponentIndex(component)
	e.comp[i] += ms
	e.compTouched[i] = true
}

// --- iteration execution ----------------------------------------------------

// runReq is a request in flight.
type runReq struct {
	req     workload.Request
	iters   []*moe.Iteration
	next    int // next iteration index
	metrics RequestMetrics
	// ownedTrace marks iters as engine-simulated (via the tracer), so the
	// iterations can be recycled when the request completes. Pre-supplied
	// traces are caller-owned and must survive the request.
	ownedTrace bool
}

func (r *runReq) done() bool { return r.next >= len(r.iters) }

// runIteration executes one lockstep iteration for the batch (all members
// at the same phase index semantics are not required; each request runs its
// own next iteration). Returns the completion time.
func (e *Engine) runIteration(batch []*runReq, now float64) float64 {
	e.iterations++
	if cap(e.iterScratch) < len(batch) {
		e.iterScratch = make([]policy.IterView, len(batch))
	}
	iterViews := e.iterScratch[:len(batch)]
	totalTokens := 0
	for i, r := range batch {
		it := r.iters[r.next]
		iterViews[i] = policy.IterView{
			ReqID:     r.req.ID,
			Iter:      it.Index,
			Semantic:  it.Semantic,
			IsPrefill: it.Index == 0,
			Tokens:    it.Tokens,
		}
		totalTokens += it.Tokens
	}
	mark := e.syncLoadMS
	now = e.applyHookDelay(now, e.pol.StartIteration(iterViews, now), mark)

	if cap(e.layerScratch) < len(batch) {
		e.layerScratch = make([]policy.LayerView, len(batch))
	}
	layerViews := e.layerScratch[:len(batch)]
	for l := 0; l < e.cfg.Layers; l++ {
		// Dense (attention + norms + shared experts) compute.
		attn := e.attnTime(totalTokens)
		now += attn
		e.account(policy.CompInfer, attn)
		e.drain(now)

		// Gate outputs observed; policy reacts.
		for i, r := range batch {
			it := r.iters[r.next]
			layerViews[i] = policy.LayerView{
				ReqID:  r.req.ID,
				Iter:   it.Index,
				Probs:  it.Probs[l],
				Hidden: it.Hidden[l],
			}
		}
		mark = e.syncLoadMS
		now = e.applyHookDelay(now, e.pol.OnGate(l, layerViews, now), mark)
		e.drain(now)

		// Resolve the batch's activated experts: residency snapshot
		// determines hits (§3.2 Step 4), then misses load on demand.
		// Every ref here names layer l, so residency is indexed
		// densely by expert (a map keyed by ExpertRef paid a hash
		// per probe on the decode path).
		active, perReq := e.unionActive(batch, l)
		if cap(e.residScratch) < e.cfg.RoutedExperts {
			e.residScratch = make([]bool, e.cfg.RoutedExperts)
		}
		resident := e.residScratch[:e.cfg.RoutedExperts]
		for _, ref := range active {
			resident[ref.Expert] = e.caches.Contains(ref)
		}
		for i, r := range batch {
			for _, ref := range perReq[i] {
				if resident[ref.Expert] {
					r.metrics.Hits++
				} else {
					r.metrics.Misses++
				}
			}
		}
		for _, ref := range active {
			if resident[ref.Expert] {
				e.hits++
				e.caches.Lookup(ref, now)
				e.caches.Pin(ref)
				continue
			}
			e.misses++
			avail := e.fetchOnDemand(ref, now)
			stall := avail - now
			now = avail
			e.account(policy.CompLoad, stall)
			e.drain(now)
			e.caches.Lookup(ref, now)
			e.caches.Pin(ref)
		}

		// Expert FFN compute.
		ec := e.expertTime(active, totalTokens)
		now += ec
		e.account(policy.CompInfer, ec)
		e.caches.UnpinAll()
	}

	for _, r := range batch {
		it := r.iters[r.next]
		mark = e.syncLoadMS
		now = e.applyHookDelay(now, e.pol.EndIteration(r.req.ID, it, now), mark)
	}
	return now
}

// applyHookDelay folds one policy hook's synchronous delay into the clock,
// attributing the portion spent inside SyncLoad to expert loading and the
// remainder to prediction compute. markSyncLoad is e.syncLoadMS sampled
// immediately before the hook ran; call sites invoke the policy method
// directly (no closure) so the dispatch stays allocation-free.
//
//finemoe:hotpath
func (e *Engine) applyHookDelay(now, delay, markSyncLoad float64) float64 {
	if delay < 0 {
		// Constant message: a fmt.Sprintf here would put an allocating
		// call on the zero-alloc decode path for the panic branch alone.
		panic("serve: negative policy delay")
	}
	loadPart := e.syncLoadMS - markSyncLoad
	predictPart := delay - loadPart
	if predictPart < 0 {
		predictPart = 0
	}
	e.account(policy.CompLoad, loadPart)
	e.account(policy.CompPredict, predictPart)
	return now + delay
}

// unionActive returns the deduplicated activated experts at layer l across
// the batch (first-activation order) and each request's own activation set.
// Both returned slices alias engine scratch valid until the next call: the
// per-request sets are windows into one flat buffer (sliced only after the
// buffer is fully built, so growth cannot invalidate them).
//
//finemoe:hotpath
func (e *Engine) unionActive(batch []*runReq, l int) ([]moe.ExpertRef, [][]moe.ExpertRef) {
	if cap(e.seenScratch) < e.cfg.RoutedExperts {
		e.seenScratch = make([]bool, e.cfg.RoutedExperts)
	}
	seen := e.seenScratch[:e.cfg.RoutedExperts]
	for i := range seen {
		seen[i] = false
	}
	union := e.unionScratch[:0]
	flat := e.activeScratch[:0]
	offs := e.activeOffs[:0]
	offs = append(offs, 0)
	for _, r := range batch {
		it := r.iters[r.next]
		for _, j := range it.Active[l] {
			ref := moe.ExpertRef{Layer: l, Expert: j}
			flat = append(flat, ref)
			if !seen[j] {
				seen[j] = true
				union = append(union, ref)
			}
		}
		offs = append(offs, len(flat))
	}
	if cap(e.perReqScratch) < len(batch) {
		e.perReqScratch = make([][]moe.ExpertRef, len(batch))
	}
	perReq := e.perReqScratch[:len(batch)]
	for i := range perReq {
		perReq[i] = flat[offs[i]:offs[i+1]]
	}
	e.unionScratch, e.activeScratch, e.activeOffs = union, flat, offs
	return union, perReq
}

// attnTime models the dense portion of one layer: framework overhead plus
// memory-bound weight reads plus FLOPs-bound token compute.
func (e *Engine) attnTime(tokens int) float64 {
	denseLayerBytes := e.cfg.DenseBytes() / int64(e.cfg.Layers)
	read := e.opts.GPU.ReadMS(denseLayerBytes)
	flops := e.opts.GPU.FlopsMS(2 * float64(e.cfg.DenseParams/int64(e.cfg.Layers)) * float64(tokens))
	return e.opts.GPU.PerLayerOverheadMS + math.Max(read, flops)
}

// expertTime models the expert FFN compute of one layer under expert
// parallelism: each device reads/computes its share of activated experts;
// the layer waits on the slowest device.
func (e *Engine) expertTime(active []moe.ExpertRef, tokens int) float64 {
	if len(active) == 0 {
		return 0
	}
	if cap(e.gpuScratch) < e.opts.NumGPUs {
		e.gpuScratch = make([]float64, e.opts.NumGPUs)
	}
	perGPU := e.gpuScratch[:e.opts.NumGPUs]
	for i := range perGPU {
		perGPU[i] = 0
	}
	tokensPerExpert := float64(tokens) * float64(e.cfg.TopK) / float64(len(active))
	for _, ref := range active {
		g := e.cluster.GPUFor(ref)
		read := e.opts.GPU.ReadMS(e.cfg.ExpertBytes())
		flops := e.opts.GPU.FlopsMS(2 * float64(e.cfg.ExpertParams()) * tokensPerExpert)
		perGPU[g] += math.Max(read, flops)
	}
	maxT := 0.0
	for _, t := range perGPU {
		if t > maxT {
			maxT = t
		}
	}
	return maxT
}

// finalize computes aggregate metrics.
func (e *Engine) finalize(reqs []RequestMetrics, wallClock float64) *Result {
	res := &Result{
		Policy:              e.pol.Name(),
		Model:               e.cfg.Name,
		Requests:            reqs,
		Breakdown:           map[string]float64{},
		Iterations:          e.iterations,
		GPUMemoryBytes:      e.cfg.DenseBytes()*int64(e.opts.NumGPUs) + e.opts.CacheBytes,
		PolicyOverheadBytes: e.pol.MemoryOverheadBytes(),
		CacheStats:          e.caches.Stats(),
		LinkStats:           e.cluster.Stats(),
		Tiers:               e.TierStats(),
		MemoryPressure:      e.MemoryPressure(),
		WallClockMS:         wallClock,
	}
	var ttfts, tpots, e2es []float64
	for _, r := range reqs {
		ttfts = append(ttfts, r.TTFTms)
		e2es = append(e2es, r.E2Ems)
		if r.OutputTokens > 1 {
			tpots = append(tpots, r.TPOTms)
		}
	}
	res.TTFT = metrics.Summarize(ttfts)
	res.TPOT = metrics.Summarize(tpots)
	res.E2E = metrics.Summarize(e2es)
	res.MeanTTFT = res.TTFT.Mean
	res.MeanTPOT = res.TPOT.Mean
	res.Hits = e.hits
	res.Misses = e.misses
	if e.hits+e.misses > 0 {
		res.HitRate = float64(e.hits) / float64(e.hits+e.misses)
	} else {
		res.HitRate = 1
	}
	for i, v := range e.comp {
		if e.compTouched[i] {
			res.Breakdown[policy.Components[i]] = v
		}
	}
	for k, v := range e.pol.Breakdown() {
		res.Breakdown[k] += v
	}
	if e.iterations > 0 {
		for k := range res.Breakdown {
			res.Breakdown[k] /= float64(e.iterations)
		}
	}
	return res
}

// --- steppable surface ------------------------------------------------------

// Submit enqueues a request for serving. In the default (online) mode the
// queue is kept sorted by arrival time with stable insertion, so requests
// may be submitted out of arrival order. The gate trace is simulated lazily
// at admission time.
func (e *Engine) Submit(req workload.Request) { e.SubmitTraced(req, nil) }

// SubmitTraced enqueues a request with a pre-computed gate trace (nil
// simulates at admission), allowing simulation work to be shared across
// policy runs.
func (e *Engine) SubmitTraced(req workload.Request, iters []*moe.Iteration) {
	i := len(e.pending)
	if !e.offline {
		// Stable insertion by arrival time: equal arrivals keep
		// submission order, matching the FIFO replay of RunOnline.
		for i > 0 && e.pending[i-1].ArrivalMS > req.ArrivalMS {
			i--
		}
	}
	e.pending = append(e.pending, workload.Request{})
	copy(e.pending[i+1:], e.pending[i:])
	e.pending[i] = req
	e.pendingIt = append(e.pendingIt, nil)
	copy(e.pendingIt[i+1:], e.pendingIt[i:])
	e.pendingIt[i] = iters
}

// Now returns the engine's virtual clock (ms).
func (e *Engine) Now() float64 { return e.now }

// AdvanceClock moves the engine's virtual clock forward to now (a no-op
// when now is not ahead of it), completing any in-flight transfers due by
// then. Orchestrators use it to align a quiescent instance with a
// fleet-level clock before submitting work; call it only between
// iterations (the engine must not be mid-batch in a Step).
func (e *Engine) AdvanceClock(now float64) {
	if now <= e.now {
		return
	}
	e.drain(now)
	e.now = now
}

// QueueDepth reports submitted requests not yet admitted to the batch.
func (e *Engine) QueueDepth() int { return len(e.pending) }

// InFlight reports requests admitted and not yet completed.
func (e *Engine) InFlight() int { return len(e.running) }

// CompletedCount reports requests served so far.
func (e *Engine) CompletedCount() int { return len(e.completed) }

// Completed returns the metrics of every request served so far, in
// completion order. The returned slice is shared; callers must not mutate.
func (e *Engine) Completed() []RequestMetrics { return e.completed }

// TakeCompleted returns the requests completed since the previous call and
// removes them from the engine's history, bounding memory on long-running
// deployments. A later Finalize aggregates only what remains, so callers
// must pick one consumption style: TakeCompleted (serving) or Finalize
// (batch runs).
func (e *Engine) TakeCompleted() []RequestMetrics {
	out := e.completed
	e.completed = nil
	return out
}

// NextEventTime returns the virtual time of the engine's next actionable
// event: the current clock when a batch is in flight (an iteration can
// start immediately), the earliest pending arrival when idle, and +Inf when
// fully drained.
func (e *Engine) NextEventTime() float64 {
	if e.crashed {
		return math.Inf(1)
	}
	if len(e.running) > 0 {
		return e.now
	}
	if len(e.pending) > 0 {
		if t := e.pending[0].ArrivalMS; !e.offline && t > e.now {
			return t
		}
		return e.now
	}
	return math.Inf(1)
}

// Step processes the engine's next event if it occurs at or before until:
// admit arrivals due at the (possibly advanced) clock, then run one
// iteration. Iterations are atomic in virtual time, so the clock may
// overshoot until; Step guarantees only that no new event *starts* after
// until. Reports whether any work was done.
//
//finemoe:hotpath
func (e *Engine) Step(until float64) bool {
	if e.NextEventTime() > until {
		return false
	}
	return e.step()
}

// Drain runs every submitted request to completion and returns the final
// clock.
func (e *Engine) Drain() float64 {
	for e.step() {
	}
	return e.now
}

// AdvanceUntil processes every event strictly before horizon and returns
// the number of steps taken. It is the epoch-bounded drain of the sharded
// cluster loop: a sequence of Step(t) calls at t = NextEventTime() while
// t < horizon, so the resulting engine state is byte-identical to the
// serial per-event schedule. Like Step, iterations are atomic in virtual
// time — the clock may overshoot horizon, but no event at or after horizon
// is started.
//
//finemoe:hotpath
func (e *Engine) AdvanceUntil(horizon float64) int {
	steps := 0
	for e.NextEventTime() < horizon && e.step() {
		steps++
	}
	return steps
}

// MinIterationMS is a lower bound on the virtual duration of any single
// iteration on this engine: every layer pays at least the device's
// per-layer framework overhead, and every other term (reads, FLOPs, loads,
// policy delays) is non-negative. The sharded cluster loop uses it to
// bound how soon a request completed inside an epoch can inject a
// follow-up arrival.
func (e *Engine) MinIterationMS() float64 {
	return float64(e.cfg.Layers) * e.opts.GPU.PerLayerOverheadMS
}

// Finalize aggregates everything served so far into a Result.
func (e *Engine) Finalize() *Result {
	return e.finalize(e.completed, e.now)
}

// --- fault-injection surface -------------------------------------------------

// Crash halts the engine at its current clock: NextEventTime becomes +Inf
// and Step/Drain no-op, leaving queued and in-flight requests stranded
// until CrashHarvest collects them. Completed metrics are preserved.
func (e *Engine) Crash() { e.crashed = true }

// Crashed reports whether the engine has been halted by Crash.
func (e *Engine) Crashed() bool { return e.crashed }

// CrashHarvest removes and returns every stranded request — in-flight
// requests in admission order, then queued requests in arrival order — so
// the orchestrator can re-queue or account them as lost. Idempotent:
// a second call returns nil.
func (e *Engine) CrashHarvest() []workload.Request {
	n := len(e.running) + len(e.pending)
	if n == 0 {
		return nil
	}
	out := make([]workload.Request, 0, n)
	for _, r := range e.running {
		out = append(out, r.req)
	}
	out = append(out, e.pending...)
	e.running = e.running[:0]
	e.pending = e.pending[:0]
	e.pendingIt = e.pendingIt[:0]
	return out
}

// Cancel removes the request with the given ID from the engine — whether
// still queued or mid-batch — without recording completion metrics.
// Orchestrators use it to retire the losing copies of hedged or retried
// requests. Reports whether the request was found; a request that already
// completed is not cancellable. Works on crashed engines.
func (e *Engine) Cancel(id uint64) bool {
	for i, r := range e.running {
		if r.req.ID == id {
			e.running = append(e.running[:i], e.running[i+1:]...)
			return true
		}
	}
	for i, q := range e.pending {
		if q.ID == id {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			e.pendingIt = append(e.pendingIt[:i], e.pendingIt[i+1:]...)
			return true
		}
	}
	return false
}

// ScalePCIeLinks scales every per-GPU host link's bandwidth (brownout
// injection; 1 restores nominal).
func (e *Engine) ScalePCIeLinks(factor float64) { e.cluster.ScalePCIe(factor) }

// ScaleStagingLinks scales every staging link's bandwidth (no-op on
// two-tier hierarchies).
func (e *Engine) ScaleStagingLinks(factor float64) { e.cluster.ScaleStaging(factor) }

// StallPCIeLinks freezes every per-GPU host link until the given time.
func (e *Engine) StallPCIeLinks(untilMS float64) { e.cluster.StallPCIe(untilMS) }

// StallStagingLinks freezes every staging link until the given time.
func (e *Engine) StallStagingLinks(untilMS float64) { e.cluster.StallStaging(untilMS) }

// admitOne moves the head of the pending queue into the running batch,
// simulating its gate trace if none was supplied. arrival records the
// request's metric arrival time (its trace arrival online, the current
// clock offline).
//
//finemoe:allocok warms the runReq and gate-trace free lists; steady-state admissions recycle completed requests' records
func (e *Engine) admitOne(arrival float64) *runReq {
	q := e.pending[0]
	iters := e.pendingIt[0]
	e.pending = e.pending[1:]
	e.pendingIt = e.pendingIt[1:]
	owned := false
	if iters == nil {
		if e.tracer == nil {
			e.tracer = e.model.NewTracer()
		}
		var slot []*moe.Iteration
		if n := len(e.iterSliceFree); n > 0 {
			slot = e.iterSliceFree[n-1]
			e.iterSliceFree[n-1] = nil
			e.iterSliceFree = e.iterSliceFree[:n-1]
		}
		iters = e.tracer.Trace(q.PromptSpec, slot)
		owned = true
	}
	var r *runReq
	if n := len(e.reqFree); n > 0 {
		r = e.reqFree[n-1]
		e.reqFree[n-1] = nil
		e.reqFree = e.reqFree[:n-1]
		*r = runReq{req: q, iters: iters, ownedTrace: owned}
	} else {
		r = &runReq{req: q, iters: iters, ownedTrace: owned}
	}
	r.metrics = RequestMetrics{ID: q.ID, ArrivalMS: arrival, StartMS: e.now, OutputTokens: q.OutputTokens}
	mark := e.syncLoadMS
	e.now = e.applyHookDelay(e.now, e.pol.StartRequest(q.ID, e.now), mark)
	e.running = append(e.running, r)
	return r
}

// admit pulls every due arrival into the batch up to MaxBatch (online
// continuous-batching admission).
// The returned batch aliases a scratch buffer valid until the next admit.
func (e *Engine) admit() []*runReq {
	fresh := e.admitScratch[:0]
	for len(e.pending) > 0 && len(e.running) < e.opts.MaxBatch && e.pending[0].ArrivalMS <= e.now {
		fresh = append(fresh, e.admitOne(e.pending[0].ArrivalMS))
	}
	e.admitScratch = fresh
	return fresh
}

// runBatch executes one iteration for the batch and advances the clock.
func (e *Engine) runBatch(batch []*runReq) {
	end := e.runIteration(batch, e.now)
	e.finishIteration(batch, end)
	e.now = end
}

// step executes one scheduling event: advance the clock to the next arrival
// if idle, admit, and run one iteration. Returns false when drained.
func (e *Engine) step() bool {
	if e.crashed || (len(e.pending) == 0 && len(e.running) == 0) {
		return false
	}
	if e.offline {
		// Lockstep fixed batches: admit BatchSize requests only once the
		// batch fully drains; arrivals are the admission clock.
		if len(e.running) == 0 {
			n := min(e.opts.BatchSize, len(e.pending))
			for i := 0; i < n; i++ {
				e.admitOne(e.now)
			}
		}
		e.batchScratch = append(e.batchScratch[:0], e.running...)
		e.runBatch(e.batchScratch)
		return true
	}
	if len(e.running) == 0 && e.pending[0].ArrivalMS > e.now {
		e.now = e.pending[0].ArrivalMS
	}
	if fresh := e.admit(); len(fresh) > 0 {
		// Prefill newly admitted requests together.
		e.runBatch(fresh)
		return true
	}
	if len(e.running) == 0 {
		// Unreachable while New defaults MaxBatch >= 1 (the clock just
		// advanced to the head arrival, so admit took at least one);
		// returning false keeps Drain from spinning if that ever changes.
		return false
	}
	e.batchScratch = append(e.batchScratch[:0], e.running...)
	e.runBatch(e.batchScratch)
	return true
}

// finishIteration advances each batch member past its completed iteration,
// recording first-token and completion metrics and retiring finished
// requests from the running batch.
func (e *Engine) finishIteration(batch []*runReq, end float64) {
	for _, r := range batch {
		it := r.iters[r.next]
		if it.Index == 0 {
			r.metrics.FirstTokenMS = end
			r.metrics.TTFTms = end - r.metrics.ArrivalMS
		}
		r.next++
		if r.done() {
			r.metrics.EndMS = end
			r.metrics.E2Ems = end - r.metrics.ArrivalMS
			if r.req.OutputTokens > 1 {
				r.metrics.TPOTms = (end - r.metrics.FirstTokenMS) / float64(r.req.OutputTokens-1)
			}
			e.pol.EndRequest(r.req.ID, end)
			e.completed = append(e.completed, r.metrics)
			for i, rr := range e.running {
				if rr == r {
					e.running = append(e.running[:i], e.running[i+1:]...)
					break
				}
			}
			// Recycle the request's bookkeeping: engine-simulated gate
			// traces go back to the tracer (nothing downstream retains
			// them — see Tracer.Recycle), the trace-slice header and the
			// runReq record to their free lists. Caller-supplied traces
			// stay untouched.
			if r.ownedTrace {
				e.tracer.Recycle(r.iters)
				e.iterSliceFree = append(e.iterSliceFree, r.iters[:0])
			}
			*r = runReq{}
			e.reqFree = append(e.reqFree, r)
		}
	}
}

// --- closed run loops (thin wrappers over the step surface) -----------------

// RunOffline serves requests in fixed-size lockstep batches (§6.2's setup:
// sequential prompts, batch size 1 unless Fig. 16b sweeps it). traces may
// pre-supply gate traces keyed by request ID to share simulation work
// across policy runs; nil simulates on the fly.
func (e *Engine) RunOffline(reqs []workload.Request, traces map[uint64][]*moe.Iteration) *Result {
	e.offline = true
	for _, q := range reqs {
		e.SubmitTraced(q, traces[q.ID])
	}
	e.Drain()
	return e.Finalize()
}

// RunOnline replays an arrival trace with iteration-granularity continuous
// batching (§6.3): requests queue on arrival, join the running batch up to
// MaxBatch at iteration boundaries (prefill first), and leave on
// completion. The Expert Map Store / EAM collection start however the
// caller built them — empty for the paper's online experiment.
func (e *Engine) RunOnline(trace []workload.Request, traces map[uint64][]*moe.Iteration) *Result {
	for _, q := range trace {
		e.SubmitTraced(q, traces[q.ID])
	}
	e.Drain()
	return e.Finalize()
}
