package serve

import (
	"encoding/json"
	"math"
	"testing"

	"finemoe/internal/core"
	"finemoe/internal/moe"
	"finemoe/internal/policy"
	"finemoe/internal/workload"
)

func stepEngine(m *moe.Model, pol policy.Policy) *Engine {
	return New(Options{
		Model: m, GPU: testGPU(), NumGPUs: 2,
		CacheBytes: m.Cfg.ExpertBytes() * int64(m.Cfg.NumExperts()/2),
		Policy:     pol, MaxBatch: 4,
	})
}

func finePolicy(cfg moe.Config) policy.Policy {
	return core.NewFineMoE(core.NewStore(cfg, 50, 2), core.Options{})
}

func onlineTrace(cfg moe.Config, n int) []workload.Request {
	d := workload.Dataset{
		Name: "step-test", Topics: 6, TopicSpread: 0.1,
		MeanInput: 5, MeanOutput: 4, Seed: 21,
	}
	return workload.AzureTrace(d, cfg.SemDim, workload.TraceConfig{
		RatePerSec: 40, N: n, Seed: 11,
	})
}

// TestStepAPIMatchesRunOnline: driving the steppable surface by hand must
// reproduce RunOnline byte-for-byte — RunOnline is a thin wrapper over it.
func TestStepAPIMatchesRunOnline(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 3)
	trace := onlineTrace(m.Cfg, 12)

	want := stepEngine(m, finePolicy(m.Cfg)).RunOnline(trace, nil)

	e := stepEngine(m, finePolicy(m.Cfg))
	// Submit out of order: Submit must sort by arrival time.
	for i := len(trace) - 1; i >= 0; i-- {
		e.Submit(trace[i])
	}
	if e.QueueDepth() != len(trace) {
		t.Fatalf("queue depth %d, want %d", e.QueueDepth(), len(trace))
	}
	// Drive event by event through Step rather than Drain.
	for {
		next := e.NextEventTime()
		if math.IsInf(next, 1) {
			break
		}
		if !e.Step(next) {
			t.Fatalf("Step(%v) refused its own NextEventTime", next)
		}
		if e.Now() < next {
			t.Fatalf("clock %v ran behind stepped event %v", e.Now(), next)
		}
	}
	if e.InFlight() != 0 || e.QueueDepth() != 0 {
		t.Fatalf("not drained: %d in flight, %d queued", e.InFlight(), e.QueueDepth())
	}
	if e.CompletedCount() != len(trace) {
		t.Fatalf("completed %d, want %d", e.CompletedCount(), len(trace))
	}
	got := e.Finalize()

	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("step-API result differs from RunOnline:\n%s\nvs\n%s", a, b)
	}
}

// TestStepRespectsUntil: Step must refuse events strictly after the bound.
func TestStepRespectsUntil(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 3)
	e := stepEngine(m, finePolicy(m.Cfg))
	q := onlineTrace(m.Cfg, 1)[0]
	q.ArrivalMS = 100
	e.Submit(q)
	if e.Step(99) {
		t.Fatal("Step ran an arrival scheduled after the bound")
	}
	if e.Now() != 0 {
		t.Fatalf("refused Step moved the clock to %v", e.Now())
	}
	if !e.Step(100) {
		t.Fatal("Step refused a due arrival")
	}
	if e.Now() < 100 {
		t.Fatalf("clock %v behind admitted arrival", e.Now())
	}
	e.Drain()
	if e.CompletedCount() != 1 {
		t.Fatalf("completed %d, want 1", e.CompletedCount())
	}
}

// TestSubmitTracedMatchesSimulated: a pre-supplied gate trace must serve
// identically to lazy simulation at admission.
func TestSubmitTracedMatchesSimulated(t *testing.T) {
	m := moe.NewModel(moe.Tiny(), 3)
	trace := onlineTrace(m.Cfg, 6)
	traces := make(map[uint64][]*moe.Iteration, len(trace))
	for _, q := range trace {
		traces[q.ID] = m.Trace(q.PromptSpec)
	}
	want := stepEngine(m, finePolicy(m.Cfg)).RunOnline(trace, nil)
	got := stepEngine(m, finePolicy(m.Cfg)).RunOnline(trace, traces)
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatal("pre-traced run differs from lazily simulated run")
	}
}
