package serve

import (
	"testing"

	"finemoe/internal/core"
	"finemoe/internal/memsim"
	"finemoe/internal/moe"
	"finemoe/internal/rng"
	"finemoe/internal/tensor"
	"finemoe/internal/workload"
)

// benchTrace samples a small online trace over the tiny model.
func benchTrace(cfg moe.Config, n int) []workload.Request {
	reqs := make([]workload.Request, n)
	for i := range reqs {
		emb := make([]float64, cfg.SemDim)
		rng.New(rng.Mix(3, uint64(i))).UnitVec(emb)
		tensor.Normalize(emb)
		reqs[i] = workload.Request{
			ArrivalMS: float64(i) * 20,
			PromptSpec: moe.PromptSpec{
				ID: uint64(i), Embedding: emb,
				InputTokens: 6, OutputTokens: 8, Seed: rng.Mix(5, uint64(i)),
			},
		}
	}
	return reqs
}

// BenchmarkEngineOnline measures the steppable engine end to end under the
// FineMoE policy — the per-instance cost the cluster loop and the parallel
// scenario runner multiply out. The policy path includes the indexed
// semantic search and the shared-query cursor, so regressions in the core
// search hot path surface here as serving throughput.
func BenchmarkEngineOnline(b *testing.B) {
	cfg := moe.Tiny()
	model := moe.NewModel(cfg, 1)
	trace := benchTrace(cfg, 16)
	traces := make(map[uint64][]*moe.Iteration, len(trace))
	for _, q := range trace {
		traces[q.ID] = model.Trace(q.PromptSpec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol := core.NewFineMoE(core.NewStore(cfg, 200, cfg.OptimalPrefetchDistance), core.Options{})
		eng := New(Options{
			Model: model, GPU: memsim.RTX3090(), NumGPUs: 2, Policy: pol,
		})
		eng.RunOnline(trace, traces)
	}
}
