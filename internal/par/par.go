// Package par provides the bounded worker pool the parallel sweeps are
// built on — one implementation shared by the scenario runner and the
// experiment grids so their scheduling semantics cannot diverge.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0..n-1) on a bounded worker pool and returns when every
// call has finished. workers <= 0 uses GOMAXPROCS; workers == 1 (or
// n <= 1) degrades to a plain loop. Each fn(i) must be independent of the
// others and write only to its own index of any result slice — under that
// contract the outcome is identical to the serial loop regardless of
// worker count or scheduling, which is what keeps the sweeps' outputs
// byte-stable.
func ForEach(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
