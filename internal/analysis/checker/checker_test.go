package checker_test

import (
	"testing"
	"time"

	"finemoe/internal/analysis/checker"
	"finemoe/internal/analysis/suite"
)

// moduleRoot is where the repo's go.mod lives, relative to this package.
const moduleRoot = "../../.."

// lintWallBudget bounds one full-repo run of the complete analyzer suite
// including the staleness sweep. A warm-cache run takes well under a
// second; the budget leaves two orders of magnitude for cold build
// caches and loaded CI machines while still catching an accidental
// super-linear regression in the fixpoint or fact layers.
const lintWallBudget = 60 * time.Second

// TestRepoLintClean pins `finemoe-lint -stats ./...` clean: zero
// findings and zero stale directives over the whole module, in-process
// through the same driver entry point the CLI uses. A change that
// introduces a hot-path allocation, an unordered reduction, or a dead
// suppression fails here before it reaches CI.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	start := time.Now()
	rep, err := checker.RunPackages(moduleRoot, []string{"./..."}, suite.All, true)
	if err != nil {
		t.Fatalf("running the analyzer suite: %v", err)
	}
	for _, f := range rep.Findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
	if len(rep.Inventory) == 0 {
		t.Error("directive inventory is empty; the staleness sweep did not run")
	}
	if elapsed := time.Since(start); elapsed > lintWallBudget {
		t.Errorf("full-repo lint took %v, over the %v budget", elapsed, lintWallBudget)
	}
}

// BenchmarkRepoLint measures one full-module pass of the complete suite
// (load + analyze + staleness sweep), for before/after comparison when
// touching the analyzers or the fact layer.
func BenchmarkRepoLint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := checker.RunPackages(moduleRoot, []string{"./..."}, suite.All, true)
		if err != nil {
			b.Fatalf("running the analyzer suite: %v", err)
		}
		if n := len(rep.Findings); n != 0 {
			b.Fatalf("repo not lint-clean: %d finding(s)", n)
		}
	}
}
