// Package checker is the multichecker driver behind cmd/finemoe-lint: it
// loads the requested packages once (offline, through the build cache's
// export data) and runs every registered analyzer over each in dependency
// order, propagating cross-package facts, printing file:line:col-sorted
// diagnostics, and — in stats mode — inventorying every //finemoe:
// directive and flagging the stale ones.
package checker

import (
	"fmt"
	"io"
	"sort"

	"finemoe/internal/analysis"
)

// StaleAnalyzer is the pseudo-analyzer name stale-suppression and
// unknown-directive findings are reported under.
const StaleAnalyzer = "stale-directive"

// A Finding is one diagnostic with its position flattened for rendering
// (text or JSON).
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// A DirectiveCount is one row of the -stats inventory.
type DirectiveCount struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	Stale int    `json:"stale"`
}

// A Report aggregates one driver run.
type Report struct {
	Findings   []Finding                `json:"findings"`
	Directives []analysis.DirectiveInfo `json:"directives,omitempty"`
	Inventory  []DirectiveCount         `json:"inventory,omitempty"`
}

// RunPackages loads patterns relative to dir and applies the analyzers
// in dependency order with a shared fact store. With stats, every
// //finemoe: directive is tracked and suppressions that never fired are
// appended as StaleAnalyzer findings, plus a per-name inventory.
func RunPackages(dir string, patterns []string, analyzers []*analysis.Analyzer, stats bool) (*Report, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			analysis.RegisterFactType(f)
		}
	}
	store := analysis.NewFactStore()
	var tracker *analysis.DirectiveTracker
	if stats {
		tracker = analysis.NewDirectiveTracker()
	}
	rep := &Report{}
	for _, pkg := range pkgs {
		diags, err := AnalyzeWith(pkg, analyzers, store, tracker)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			rep.Findings = append(rep.Findings, Finding{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
	}
	if stats {
		vocab := Vocab(analyzers)
		staleAt := map[string]bool{}
		for _, d := range tracker.Stale(vocab) {
			rep.Findings = append(rep.Findings, Finding{
				File: d.File, Line: d.Line, Col: d.Col,
				Analyzer: StaleAnalyzer, Message: StaleMessage(d, vocab),
			})
			staleAt[fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)] = true
		}
		rep.Directives = tracker.All()
		counts := map[string]*DirectiveCount{}
		for _, d := range rep.Directives {
			c := counts[d.Name]
			if c == nil {
				c = &DirectiveCount{Name: d.Name}
				counts[d.Name] = c
			}
			c.Count++
			if staleAt[fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)] {
				c.Stale++
			}
		}
		for _, c := range counts {
			rep.Inventory = append(rep.Inventory, *c)
		}
		sort.Slice(rep.Inventory, func(i, j int) bool { return rep.Inventory[i].Name < rep.Inventory[j].Name })
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return rep, nil
}

// Vocab is the union of the analyzers' suppression-directive
// vocabularies — the names a staleness sweep over that analyzer set
// recognizes.
func Vocab(analyzers []*analysis.Analyzer) map[string]bool {
	vocab := map[string]bool{}
	for _, a := range analyzers {
		for _, name := range a.Directives {
			vocab[name] = true
		}
	}
	return vocab
}

// StaleMessage renders the diagnostic text for one stale or
// out-of-vocabulary directive (shared by the drivers and by
// analysistest's staleness mode, so fixtures pin the real wording).
func StaleMessage(d analysis.DirectiveInfo, vocab map[string]bool) string {
	if !vocab[d.Name] && !analysis.Markers[d.Name] {
		return fmt.Sprintf("//finemoe:%s is not a known directive (known: markers + analyzer suppressions)", d.Name)
	}
	return fmt.Sprintf("//finemoe:%s is stale: no %s diagnostic fires here anymore; remove it", d.Name, d.Name)
}

// Run loads patterns relative to dir, applies analyzers, and writes
// diagnostics to w. It returns the number of diagnostics.
func Run(w io.Writer, dir string, patterns []string, analyzers []*analysis.Analyzer) (int, error) {
	rep, err := RunPackages(dir, patterns, analyzers, false)
	if err != nil {
		return 0, err
	}
	for _, f := range rep.Findings {
		fmt.Fprintln(w, f)
	}
	return len(rep.Findings), nil
}

// Analyze runs the analyzers over one loaded package without fact
// propagation and returns sorted diagnostics.
func Analyze(pkg *analysis.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	return AnalyzeWith(pkg, analyzers, nil, nil)
}

// AnalyzeWith runs the analyzers over one loaded package, importing and
// exporting facts through store (nil disables) and recording directive
// usage in tracker (nil disables), returning sorted diagnostics.
func AnalyzeWith(pkg *analysis.Package, analyzers []*analysis.Analyzer, store *analysis.FactStore, tracker *analysis.DirectiveTracker) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Facts:     store,
			Tracker:   tracker,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	analysis.SortDiagnostics(pkg.Fset, diags)
	// Drop exact duplicates (an analyzer can reach the same node twice
	// through nested inspections).
	return dedup(diags), nil
}

func dedup(diags []analysis.Diagnostic) []analysis.Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
