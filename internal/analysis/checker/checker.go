// Package checker is the multichecker driver behind cmd/finemoe-lint: it
// loads the requested packages once (offline, through the build cache's
// export data) and runs every registered analyzer over each, printing
// file:line:col-sorted diagnostics.
package checker

import (
	"fmt"
	"io"

	"finemoe/internal/analysis"
)

// Run loads patterns relative to dir, applies analyzers, and writes
// diagnostics to w. It returns the number of diagnostics.
func Run(w io.Writer, dir string, patterns []string, analyzers []*analysis.Analyzer) (int, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := Analyze(pkg, analyzers)
		if err != nil {
			return total, err
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Fprintf(w, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
		}
		total += len(diags)
	}
	return total, nil
}

// Analyze runs the analyzers over one loaded package and returns sorted
// diagnostics.
func Analyze(pkg *analysis.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	analysis.SortDiagnostics(pkg.Fset, diags)
	// Drop exact duplicates (an analyzer can reach the same node twice
	// through nested inspections).
	return dedup(diags), nil
}

func dedup(diags []analysis.Diagnostic) []analysis.Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
