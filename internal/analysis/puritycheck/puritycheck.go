// Package puritycheck enforces that policy implementations are pure
// functions of their inputs. The simulator compares scorers, routers,
// autoscalers, and admission policies by swapping them into otherwise
// identical runs; a policy that writes package-level state or mutates
// its arguments couples runs to each other (and sweep cells to their
// execution order), silently invalidating every A/B table.
//
// For every named type in the analyzed package that implements one of
// the target interfaces (cache.Scorer, cluster.Router,
// cluster.Autoscaler, cluster.Admission), the interface methods must
// not:
//
//   - write a package-level variable, directly or through any chain of
//     static calls — cross-package chains included: every function that
//     (transitively) writes a global exports a GlobalWriteFact, and
//     importers pick the facts up through the fact store;
//   - write through a non-receiver parameter (fleet[i].X = …,
//     *req = …): arguments are views, not scratch space. Reassigning
//     the parameter variable itself is fine — it is a local copy.
//
// Receiver fields are fair game: a router's round-robin cursor is state
// the policy owns. Sanctioned exceptions carry
// //finemoe:impure-ok <reason>.
package puritycheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"finemoe/internal/analysis"
)

// Directive is puritycheck's escape hatch.
const Directive = "impure-ok"

// A Target names one policy interface whose implementers must be pure.
// Pkg is matched as an import-path suffix so fixtures can stand in for
// the real packages.
type Target struct {
	Pkg  string
	Name string
}

// Targets lists the policy interfaces checked. Package-level var so the
// fixture tests can point it at fixture interfaces.
var Targets = []Target{
	{"internal/cache", "Scorer"},
	{"internal/cluster", "Router"},
	{"internal/cluster", "Autoscaler"},
	{"internal/cluster", "Admission"},
}

// GlobalWriteFact marks a function that writes a package-level variable,
// directly or transitively; Var names the variable (first found) and Via
// the call chain segment that reaches it, for diagnostics.
type GlobalWriteFact struct {
	Var string
	Via string
}

func (*GlobalWriteFact) AFact() {}

func (f *GlobalWriteFact) String() string { return "writesGlobal(" + f.Var + ")" }

var Analyzer = &analysis.Analyzer{
	Name:       "puritycheck",
	Doc:        "policy implementations (Scorer/Router/Autoscaler/Admission) must not write globals or mutate arguments",
	Run:        run,
	FactTypes:  []analysis.Fact{new(GlobalWriteFact)},
	Directives: []string{Directive},
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.InModule(pass.Pkg.Path()) {
		return nil, nil
	}
	fns := collectFuncs(pass)
	resolveFixpoint(pass, fns)
	exportFacts(pass, fns)
	report(pass, fns)
	return nil, nil
}

// fnInfo is the per-function purity state built by the local fixpoint.
type fnInfo struct {
	decl *ast.FuncDecl
	// globalVar is the package-level variable this function writes
	// (directly or via the chain in via); empty means pure so far.
	globalVar string
	via       string
	// callees are the statically-resolved in-module functions called.
	callees []*types.Func
}

func collectFuncs(pass *analysis.Pass) map[*types.Func]*fnInfo {
	fns := map[*types.Func]*fnInfo{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &fnInfo{decl: fd}
			fns[obj] = info
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if n.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range n.Lhs {
						if v := globalTarget(pass, lhs); v != nil && info.globalVar == "" {
							info.globalVar = qualifiedVar(v)
						}
					}
				case *ast.IncDecStmt:
					if v := globalTarget(pass, n.X); v != nil && info.globalVar == "" {
						info.globalVar = qualifiedVar(v)
					}
				case *ast.CallExpr:
					if f := staticCallee(pass, n); f != nil && f.Pkg() != nil && analysis.InModule(f.Pkg().Path()) {
						info.callees = append(info.callees, f)
					}
				}
				return true
			})
		}
	}
	return fns
}

// resolveFixpoint propagates global-write taint through same-package
// static calls until stable; cross-package callees resolve through
// imported facts (their packages were analyzed first, dependency order).
func resolveFixpoint(pass *analysis.Pass, fns map[*types.Func]*fnInfo) {
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			if info.globalVar != "" {
				continue
			}
			for _, callee := range info.callees {
				v, via := calleeWrites(pass, fns, callee)
				if v == "" {
					continue
				}
				info.globalVar = v
				info.via = joinVia(funcLabel(callee), via)
				changed = true
				break
			}
		}
	}
}

// calleeWrites returns the global written by callee (and the chain past
// it), consulting local state for same-package functions and imported
// GlobalWriteFacts for the rest.
func calleeWrites(pass *analysis.Pass, fns map[*types.Func]*fnInfo, callee *types.Func) (string, string) {
	if info, ok := fns[callee]; ok {
		return info.globalVar, info.via
	}
	var fact GlobalWriteFact
	if pass.ImportObjectFact(callee, &fact) {
		return fact.Var, fact.Via
	}
	return "", ""
}

func exportFacts(pass *analysis.Pass, fns map[*types.Func]*fnInfo) {
	for obj, info := range fns {
		if info.globalVar != "" {
			pass.ExportObjectFact(obj, &GlobalWriteFact{Var: info.globalVar, Via: info.via})
		}
	}
}

// report flags impure interface methods on implementers of the target
// interfaces declared in this package.
func report(pass *analysis.Pass, fns map[*types.Func]*fnInfo) {
	ifaces := targetInterfaces(pass)
	if len(ifaces) == 0 {
		return
	}
	for obj, info := range fns {
		fd := info.decl
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			continue
		}
		recvType := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
		if recvType == nil {
			continue
		}
		ifaceName, ok := implementsTargetMethod(recvType, obj.Name(), ifaces)
		if !ok {
			continue
		}
		if info.globalVar != "" && !pass.Allowed(Directive, fd) {
			chain := info.globalVar
			if info.via != "" {
				chain = info.via + " writes " + info.globalVar
			}
			pass.Reportf(fd.Name.Pos(), "%s method %s.%s writes package-level state: %s; policies must be pure — keep state in the receiver or annotate //finemoe:%s <reason>",
				ifaceName, recvLabel(recvType), obj.Name(), chain, Directive)
		}
		checkParamWrites(pass, fd, ifaceName, recvType)
	}
}

// checkParamWrites flags writes through non-receiver parameters inside
// the method body.
func checkParamWrites(pass *analysis.Pass, fd *ast.FuncDecl, ifaceName string, recvType types.Type) {
	params := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				flagParamWrite(pass, n, lhs, params, ifaceName, recvType, fd.Name.Name)
			}
		case *ast.IncDecStmt:
			flagParamWrite(pass, n, n.X, params, ifaceName, recvType, fd.Name.Name)
		}
		return true
	})
}

func flagParamWrite(pass *analysis.Pass, at ast.Node, lhs ast.Expr, params map[types.Object]bool, ifaceName string, recvType types.Type, method string) {
	// A bare `p = …` rebinds the local copy — harmless. Only flag writes
	// THROUGH the parameter: p.f, p[i], *p.
	if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
		return
	}
	root := rootObj(pass, lhs)
	if root == nil || !params[root] {
		return
	}
	if pass.Allowed(Directive, at) {
		return
	}
	pass.Reportf(at.Pos(), "%s method %s.%s writes through parameter %s; arguments are shared views — copy before mutating or annotate //finemoe:%s <reason>",
		ifaceName, recvLabel(recvType), method, root.Name(), Directive)
}

// targetInterfaces resolves the Target list against this package and its
// imports, returning iface → display name.
func targetInterfaces(pass *analysis.Pass) map[*types.Interface]string {
	out := map[*types.Interface]string{}
	consider := func(pkg *types.Package) {
		for _, t := range Targets {
			if !analysis.PathMatches(pkg.Path(), []string{t.Pkg}) {
				continue
			}
			obj := pkg.Scope().Lookup(t.Name)
			if obj == nil {
				continue
			}
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				out[iface] = fmt.Sprintf("%s.%s", pkg.Name(), t.Name)
			}
		}
	}
	consider(pass.Pkg)
	for _, imp := range pass.Pkg.Imports() {
		consider(imp)
	}
	return out
}

// implementsTargetMethod reports whether recvType implements a target
// interface that declares a method of this name, returning the interface
// display name.
func implementsTargetMethod(recvType types.Type, method string, ifaces map[*types.Interface]string) (string, bool) {
	t := recvType
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	ptr := types.NewPointer(t)
	for iface, name := range ifaces {
		if !types.Implements(t, iface) && !types.Implements(ptr, iface) {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == method {
				return name, true
			}
		}
	}
	return "", false
}

// globalTarget returns the package-level variable lhs writes, or nil.
func globalTarget(pass *analysis.Pass, lhs ast.Expr) *types.Var {
	root := rootObj(pass, lhs)
	v, ok := root.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

func qualifiedVar(v *types.Var) string {
	return v.Pkg().Name() + "." + v.Name()
}

func funcLabel(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return recvLabel(sig.Recv().Type()) + "." + f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

func recvLabel(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func joinVia(head, rest string) string {
	if rest == "" {
		return head
	}
	return head + " -> " + rest
}

// staticCallee resolves call to a concrete in-source function: a plain
// function, a qualified pkg.Func, or a concrete method. Interface
// dispatch and func values return nil (purity is enforced at the
// implementer, so dynamic dispatch does not need resolving here).
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal || types.IsInterface(sel.Recv()) {
				return nil
			}
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			f, _ := pass.TypesInfo.Uses[id].(*types.Func)
			return f
		}
	}
	return nil
}

func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(x)
		default:
			return nil
		}
	}
}
