package puritycheck_test

import (
	"testing"

	"finemoe/internal/analysis/analysistest"
	"finemoe/internal/analysis/puritycheck"
)

// TestPuritycheck retargets the policy-interface list at the fixture
// Scorer and checks direct, helper-chained, and cross-package
// (fact-imported) global writes plus parameter mutation.
func TestPuritycheck(t *testing.T) {
	defer func(old []puritycheck.Target) { puritycheck.Targets = old }(puritycheck.Targets)
	puritycheck.Targets = []puritycheck.Target{{Pkg: "finemoe/purity", Name: "Scorer"}}
	analysistest.Run(t, "../testdata", puritycheck.Analyzer, "finemoe/purity")
}
