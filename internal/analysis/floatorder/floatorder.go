// Package floatorder generalizes detrange's float rejection beyond map
// ranges: floating-point accumulation is not associative, so a float
// reduction (+=, -=, *=, /=) whose iteration order the runtime does not
// pin changes its low bits from run to run and breaks the byte-identical
// goldens the simulator packages are held to. Three order sources are
// flagged:
//
//   - map ranges: Go randomizes iteration order per run;
//   - goroutines: a reduction into a variable captured by a `go`
//     statement's function literal or a par.ForEach worker body runs in
//     completion order (and is usually also a data race — see
//     sharedstate);
//   - heap pops: a loop draining container/heap pops equal-priority
//     elements in an order that depends on the heap's internal layout,
//     which in turn depends on insertion history.
//
// A reduction into a variable declared inside the loop/goroutine body is
// fine (it never crosses iterations). Sanctioned reductions carry a
// //finemoe:floatorder-ok <reason> (or the shared
// //finemoe:nondeterministic-ok <reason>) directive.
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"finemoe/internal/analysis"
)

// Directive is floatorder's own escape hatch; the analyzer also honors
// detrange/noclock's shared nondeterministic-ok.
const Directive = "floatorder-ok"

// SharedDirective is the determinism-wide escape hatch floatorder
// accepts as an alternative.
const SharedDirective = "nondeterministic-ok"

// Scope limits the analyzer to the simulator packages.
var Scope = analysis.SimPackages

var Analyzer = &analysis.Analyzer{
	Name:       "floatorder",
	Doc:        "flags float reductions whose iteration order is map-, goroutine-, or heap-pop-dependent",
	Run:        run,
	Directives: []string{Directive, SharedDirective},
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathMatches(pass.Pkg.Path(), Scope) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						checkBody(pass, n.Body, n.Body.Pos(), rangeKeyObj(pass, n), "map range iterates in randomized order")
					}
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkCaptured(pass, lit, "goroutines complete in scheduler order")
				}
			case *ast.ForStmt:
				if popsHeap(pass, n.Body) {
					checkBody(pass, n.Body, n.Body.Pos(), nil, "heap pops order ties by internal layout")
				}
			case *ast.CallExpr:
				if lit := parWorkerBody(pass, n); lit != nil {
					checkCaptured(pass, lit, "parallel workers complete in scheduler order")
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkBody flags float compound reductions in body targeting variables
// declared outside scopeStart (reductions into loop-local accumulators
// never cross iterations). A write indexed by the range's own key
// variable (`m[k] += v` with k the range key) touches a distinct element
// per iteration — map keys are unique — so order cannot matter and it is
// sanctioned; keyObj is nil for loops with no such per-iteration key.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, scopeStart token.Pos, keyObj types.Object, why string) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !isFloatReduce(pass, as) {
			return true
		}
		if root := rootObj(pass, as.Lhs[0]); root != nil && root.Pos() >= scopeStart && root.Pos() < body.End() {
			return true // accumulator lives inside the loop body
		}
		if keyObj != nil && indexedByKey(pass, as.Lhs[0], keyObj) {
			return true // per-key write: each iteration hits a unique element
		}
		report(pass, as, why)
		return true
	})
}

// rangeKeyObj returns the object of the range statement's key variable
// (for `for k := range m` or `for k, v := range m`), or nil.
func rangeKeyObj(pass *analysis.Pass, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if rng.Tok == token.DEFINE {
		return pass.TypesInfo.Defs[id]
	}
	return pass.TypesInfo.Uses[id]
}

// indexedByKey reports whether lhs is an index expression whose index is
// exactly the loop key variable.
func indexedByKey(pass *analysis.Pass, lhs ast.Expr, keyObj types.Object) bool {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(ix.Index).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == keyObj
}

// checkCaptured flags float compound reductions inside a
// goroutine-launched literal whose target is captured from the enclosing
// function (a literal-local accumulator is private to one goroutine).
func checkCaptured(pass *analysis.Pass, lit *ast.FuncLit, why string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !isFloatReduce(pass, as) {
			return true
		}
		root := rootObj(pass, as.Lhs[0])
		if root == nil {
			return true
		}
		// Captured: declared outside the literal. Package-level vars and
		// receiver/param state reached through captured pointers count too
		// (their root is outside the literal by construction).
		if root.Pos() >= lit.Pos() && root.Pos() < lit.End() {
			return true
		}
		report(pass, as, why)
		return true
	})
}

func report(pass *analysis.Pass, as *ast.AssignStmt, why string) {
	if pass.Allowed(Directive, as) || pass.Allowed(SharedDirective, as) {
		return
	}
	pass.Reportf(as.Pos(), "float reduction %s %s %s is order-sensitive (%s); sort the iteration, accumulate integers, or annotate //finemoe:%s <reason>",
		types.ExprString(as.Lhs[0]), as.Tok, types.ExprString(as.Rhs[0]), why, Directive)
}

// isFloatReduce matches x op= v for float32/float64 x with op in
// {+=, -=, *=, /=}.
func isFloatReduce(pass *analysis.Pass, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	if len(as.Lhs) != 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(as.Lhs[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootObj walks selector/index/paren/star chains to the base identifier's
// object.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(x)
		default:
			return nil
		}
	}
}

// popsHeap reports whether the loop body calls container/heap.Pop.
func popsHeap(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Pop" {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName); ok &&
			pkgName.Imported().Path() == "container/heap" {
			found = true
		}
		return !found
	})
	return found
}

// parWorkerBody returns the function literal passed to par.ForEach (the
// worker body that runs concurrently), if this call is one.
func parWorkerBody(pass *analysis.Pass, call *ast.CallExpr) *ast.FuncLit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ForEach" || len(call.Args) != 3 {
		return nil
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok || !analysis.PathMatches(pkgName.Imported().Path(), []string{"internal/par"}) {
		return nil
	}
	lit, _ := call.Args[2].(*ast.FuncLit)
	return lit
}
