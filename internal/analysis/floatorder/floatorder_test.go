package floatorder_test

import (
	"testing"

	"finemoe/internal/analysis/analysistest"
	"finemoe/internal/analysis/floatorder"
)

func TestFloatorder(t *testing.T) {
	analysistest.Run(t, "../testdata", floatorder.Analyzer, "internal/baselines")
}
