// Package analysistest runs analyzers over fixture packages under a
// testdata/src tree and checks their diagnostics against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest (which
// this hermetic build cannot depend on). A fixture package's directory
// path below testdata/src becomes its import path, so short paths like
// internal/core or internal/httpserve exercise the analyzers' scope and
// exempt lists for real, and paths under finemoe/ land inside the module
// for the fact-carrying interprocedural analyzers. Fixture imports
// resolve to sibling fixture packages first, then to the standard
// library through build-cache export data (`go list -export`), so
// fixtures can import time, sort or a toy internal/core without network
// access.
//
// Every run analyzes the requested packages AND their fixture-local
// dependencies, in dependency order, with one shared fact store — the
// same discipline the standalone driver and the vet unitchecker follow —
// so a fixture package a importing a fixture package b observes b's
// exported object facts. Want comments are only checked in the packages
// named by the call; dependencies are analyzed for their facts.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"finemoe/internal/analysis"
	"finemoe/internal/analysis/checker"
)

// Run loads each fixture package below testdataDir/src and reports every
// mismatch between the analyzer's diagnostics and the fixtures' want
// comments.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, testdataDir, []*analysis.Analyzer{a}, false, pkgPaths)
}

// RunAnalyzers is the multi-analyzer form of Run: the analyzers share
// one pass order and one fact store, as under the real drivers.
func RunAnalyzers(t *testing.T, testdataDir string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, testdataDir, analyzers, false, pkgPaths)
}

// RunStale additionally runs the -stats staleness sweep after the
// analyzers finish: suppression directives no analyzer marked used, and
// directives outside the analyzers' vocabulary, become stale-directive
// findings matched against want comments like any other diagnostic.
func RunStale(t *testing.T, testdataDir string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, testdataDir, analyzers, true, pkgPaths)
}

// finding is one diagnostic flattened for want matching.
type finding struct {
	file     string
	line     int
	analyzer string
	message  string
}

func run(t *testing.T, testdataDir string, analyzers []*analysis.Analyzer, stale bool, pkgPaths []string) {
	t.Helper()
	ld := &loader{
		srcDir: filepath.Join(testdataDir, "src"),
		fset:   token.NewFileSet(),
		pkgs:   map[string]*fixturePkg{},
		std:    map[string]string{},
	}
	ld.imp = importer.ForCompiler(ld.fset, "gc", ld.lookupStd)
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			analysis.RegisterFactType(f)
		}
	}
	for _, path := range pkgPaths {
		if _, err := ld.load(path); err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
	}

	// Analyze every loaded package — dependencies included — in
	// dependency order over a shared store, so facts flow exactly as they
	// do under the standalone driver and the vet unitchecker.
	store := analysis.NewFactStore()
	tracker := analysis.NewDirectiveTracker()
	found := map[string][]finding{}
	for _, pkg := range ld.order {
		diags, err := checker.AnalyzeWith(&analysis.Package{
			ImportPath: pkg.path,
			Fset:       pkg.fset,
			Files:      pkg.files,
			Types:      pkg.types,
			TypesInfo:  pkg.info,
		}, analyzers, store, tracker)
		if err != nil {
			t.Fatalf("analyzing fixture %s: %v", pkg.path, err)
		}
		for _, d := range diags {
			pos := pkg.fset.Position(d.Pos)
			found[pkg.path] = append(found[pkg.path], finding{pos.Filename, pos.Line, d.Analyzer, d.Message})
		}
	}
	if stale {
		vocab := checker.Vocab(analyzers)
		for _, d := range tracker.Stale(vocab) {
			found[d.Pkg] = append(found[d.Pkg], finding{d.File, d.Line, checker.StaleAnalyzer, checker.StaleMessage(d, vocab)})
		}
	}

	for _, path := range pkgPaths {
		check(t, ld.pkgs[path], found[path])
	}
}

type fixturePkg struct {
	path  string
	fset  *token.FileSet
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type loader struct {
	srcDir string
	fset   *token.FileSet
	pkgs   map[string]*fixturePkg
	order  []*fixturePkg // load completion order = dependency order
	imp    types.Importer
	std    map[string]string // import path -> export data file
}

// Import implements types.Importer: fixture-local packages win, the
// standard library backs the rest.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(ld.srcDir, path)) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return ld.imp.Import(path)
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcDir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	conf := types.Config{Importer: ld}
	info := analysis.NewInfo()
	// Type-checking pulls fixture dependencies in through Import, so
	// their load() completes — and they join ld.order — before this
	// package does.
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	pkg := &fixturePkg{path: path, fset: ld.fset, files: files, types: tpkg, info: info}
	ld.pkgs[path] = pkg
	ld.order = append(ld.order, pkg)
	return pkg, nil
}

// lookupStd resolves standard-library export data through `go list
// -export`, one lazy invocation per missing package (fixtures import only
// a handful).
func (ld *loader) lookupStd(path string) (io.ReadCloser, error) {
	if file, ok := ld.std[path]; ok {
		return os.Open(file)
	}
	cmd := exec.Command("go", "list", "-deps", "-export", "-f",
		"{{.ImportPath}} {{.Export}}", path)
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v", path, err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if p, exp, ok := strings.Cut(line, " "); ok && exp != "" {
			ld.std[p] = exp
		}
	}
	file, ok := ld.std[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// expectation is one `// want "re"` entry at a file line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// wantRE matches both `// want "re"` line comments and `/* want "re" */`
// block comments; the latter lets a fixture attach an expectation to a line
// that already carries a //finemoe: directive.
var wantRE = regexp.MustCompile(`(?://|/\*) want (.*)$`)

func check(t *testing.T, pkg *fixturePkg, findings []finding) {
	t.Helper()
	expects := map[string]map[int][]*expectation{} // file -> line -> expectations
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					if expects[pos.Filename] == nil {
						expects[pos.Filename] = map[int][]*expectation{}
					}
					expects[pos.Filename][pos.Line] = append(expects[pos.Filename][pos.Line], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range findings {
		lineExp := expects[d.file][d.line]
		found := false
		for _, e := range lineExp {
			if !e.matched && e.re.MatchString(d.message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", d.file, d.line, d.analyzer, d.message)
		}
	}
	var lines []string
	for file, byLine := range expects {
		for line, lineExp := range byLine {
			for _, e := range lineExp {
				if !e.matched {
					lines = append(lines, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", file, line, e.re))
				}
			}
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		t.Error(l)
	}
}

// splitQuoted extracts the double-quoted segments of a want comment tail.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := i + 1
		for j < len(s) && (s[j] != '"' || s[j-1] == '\\') {
			j++
		}
		if j >= len(s) {
			return out
		}
		out = append(out, s[i:j+1])
		s = s[j+1:]
	}
}
