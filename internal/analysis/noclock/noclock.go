// Package noclock bans wall-clock and ambient-randomness APIs outside the
// explicitly allowlisted packages. Simulated time must come from the
// event-loop clock and randomness from internal/rng (a seeded,
// version-stable stream); a single stray time.Now() in a result path is
// exactly the kind of flaky-golden bug this repo's 29 parity fixtures
// cannot tolerate.
//
// Unlike detrange, noclock applies to every package in the module — the
// exempt list, not a scope list, is the contract: internal/walltime is the
// one sanctioned wall-clock wrapper (benchmark harnesses time themselves
// through it) and internal/httpserve fronts a live HTTP server where
// wall-clock deadlines are legitimate.
package noclock

import (
	"go/ast"
	"go/types"
	"strconv"

	"finemoe/internal/analysis"
)

// Directive is the escape-hatch vocabulary entry noclock honors.
const Directive = "nondeterministic-ok"

// Exempt lists packages (trailing-segment match) where wall-clock use is
// sanctioned.
var Exempt = []string{
	"internal/httpserve",
	"internal/walltime",
}

// bannedTime is the set of time package functions that read or wait on
// the wall clock.
var bannedTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// bannedImports are packages whose ambient generators bypass the seeded
// internal/rng stream.
var bannedImports = map[string]string{
	"math/rand":    "use the seeded stream in internal/rng",
	"math/rand/v2": "use the seeded stream in internal/rng",
}

var Analyzer = &analysis.Analyzer{
	Name:       "noclock",
	Doc:        "bans wall-clock reads and global math/rand outside allowlisted packages",
	Run:        run,
	Directives: []string{Directive},
}

func run(pass *analysis.Pass) (any, error) {
	if analysis.PathMatches(pass.Pkg.Path(), Exempt) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if hint, ok := bannedImports[path]; ok && !pass.Allowed(Directive, imp) {
				pass.Reportf(imp.Pos(), "import of %s is banned in simulator code: %s", path, hint)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if !bannedTime[sel.Sel.Name] {
				return true
			}
			if pass.Allowed(Directive, sel) {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock: simulator time must come from the event-loop clock (or internal/walltime in harness code)", sel.Sel.Name)
			return true
		})
	}
	return nil, nil
}
