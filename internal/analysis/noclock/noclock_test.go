package noclock_test

import (
	"testing"

	"finemoe/internal/analysis/analysistest"
	"finemoe/internal/analysis/noclock"
)

func TestNoclock(t *testing.T) {
	analysistest.Run(t, "../testdata", noclock.Analyzer,
		"clockuser", "internal/httpserve", "internal/walltime")
}
