// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check, a Pass
// hands it one type-checked package, and diagnostics flow back through
// Pass.Report. The build environment for this repo is hermetic (no module
// proxy), so rather than depending on x/tools the framework reimplements
// the few pieces the finemoe-lint suite needs on top of go/ast and
// go/types; analyzers are written against the same Analyzer/Pass shape so
// they can migrate to the real framework verbatim if the dependency ever
// becomes available.
//
// The framework also owns the two repo-wide lint conventions:
//
//   - escape-hatch directives: a comment of the form
//     //finemoe:<name> <reason> on (or directly above) a flagged line
//     suppresses the matching analyzer, and an empty <reason> is itself a
//     diagnostic — annotations must say why.
//   - package scoping: analyzers restrict themselves to the simulator
//     packages (or exempt wall-clock packages) by trailing-segment match
//     on the import path, so analysistest fixtures under testdata/src can
//     exercise scoping with short paths like "internal/core".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Name doubles as the escape-hatch
// directive vocabulary entry (see Pass.Allowed) unless the analyzer
// documents a different directive.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// A Diagnostic is one finding, positioned inside Pass.Fset.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// directives caches the parsed //finemoe:* comments per file line.
	directives map[*token.File]map[int][]directive
}

type directive struct {
	name   string
	reason string
	pos    token.Pos
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// DirectivePrefix introduces every escape-hatch comment.
const DirectivePrefix = "//finemoe:"

func parseDirective(text string) (directive, bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, DirectivePrefix)
	name, reason, _ := strings.Cut(rest, " ")
	if name == "" {
		return directive{}, false
	}
	return directive{name: name, reason: strings.TrimSpace(reason)}, true
}

func (p *Pass) buildDirectives() {
	p.directives = make(map[*token.File]map[int][]directive)
	for _, f := range p.Files {
		tf := p.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		lines := make(map[int][]directive)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				d.pos = c.Pos()
				line := p.Fset.Position(c.Pos()).Line
				lines[line] = append(lines[line], d)
			}
		}
		// Record every commented line so Allowed can climb through a
		// directive block above the flagged statement.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := p.Fset.Position(c.Pos()).Line
				if _, ok := lines[line]; !ok {
					lines[line] = nil
				}
			}
		}
		p.directives[tf] = lines
	}
}

// Allowed reports whether node is covered by a //finemoe:<name> directive
// with a non-empty reason, either trailing on the node's first line or in
// the contiguous comment block directly above it. A matching directive
// with an empty reason is reported as its own diagnostic and does not
// suppress anything: annotations must say why.
func (p *Pass) Allowed(name string, node ast.Node) bool {
	if p.directives == nil {
		p.buildDirectives()
	}
	tf := p.Fset.File(node.Pos())
	lines, ok := p.directives[tf]
	if !ok {
		return false
	}
	check := func(line int) (allowed, found bool) {
		for _, d := range lines[line] {
			if d.name != name {
				continue
			}
			if d.reason == "" {
				p.Reportf(d.pos, "%s%s requires a reason", DirectivePrefix, name)
				return false, true
			}
			return true, true
		}
		return false, false
	}
	start := p.Fset.Position(node.Pos()).Line
	if allowed, found := check(start); found {
		return allowed
	}
	for line := start - 1; line > 0; line-- {
		if _, commented := lines[line]; !commented {
			break
		}
		if allowed, found := check(line); found {
			return allowed
		}
	}
	return false
}

// PathMatches reports whether the import path matches any entry by whole
// trailing-segment comparison: entry "internal/core" matches both
// "finemoe/internal/core" and a fixture package loaded as "internal/core",
// but not "internal/coreutils".
func PathMatches(path string, entries []string) bool {
	for _, e := range entries {
		if path == e || strings.HasSuffix(path, "/"+e) {
			return true
		}
	}
	return false
}

// SimPackages lists the simulator packages whose results feed goldens:
// everything between the workload generator and the report serializer must
// be byte-deterministic. httpserve is included for detrange (its /v1/stats
// payloads are diffed in tests) even though noclock exempts it.
var SimPackages = []string{
	"internal/core",
	"internal/serve",
	"internal/cluster",
	"internal/cache",
	"internal/memsim",
	"internal/moe",
	"internal/workload",
	"internal/scenarios",
	"internal/experiments",
	"internal/baselines",
	"internal/metrics",
	"internal/policy",
	"internal/httpserve",
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// TypeHasRelease reports whether t (after unwrapping one pointer) is a
// named type declared in a package matching pkgs whose method set includes
// a niladic Release method — the shape of the pooled Query/Cursor
// resources mustrelease tracks.
func TypeHasRelease(t types.Type, pkgs []string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Pkg() == nil || !PathMatches(named.Obj().Pkg().Path(), pkgs) {
		return false
	}
	mset := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < mset.Len(); i++ {
		fn, ok := mset.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != "Release" {
			continue
		}
		if sig := fn.Type().(*types.Signature); sig.Params().Len() == 0 {
			return true
		}
	}
	return false
}
