// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check, a Pass
// hands it one type-checked package, and diagnostics flow back through
// Pass.Report. The build environment for this repo is hermetic (no module
// proxy), so rather than depending on x/tools the framework reimplements
// the few pieces the finemoe-lint suite needs on top of go/ast and
// go/types; analyzers are written against the same Analyzer/Pass shape so
// they can migrate to the real framework verbatim if the dependency ever
// becomes available.
//
// The framework also owns the two repo-wide lint conventions:
//
//   - escape-hatch directives: a comment of the form
//     //finemoe:<name> <reason> on (or directly above) a flagged line
//     suppresses the matching analyzer, and an empty <reason> is itself a
//     diagnostic — annotations must say why.
//   - package scoping: analyzers restrict themselves to the simulator
//     packages (or exempt wall-clock packages) by trailing-segment match
//     on the import path, so analysistest fixtures under testdata/src can
//     exercise scoping with short paths like "internal/core".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Name doubles as the escape-hatch
// directive vocabulary entry (see Pass.Allowed) unless the analyzer
// documents a different directive.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
	// FactTypes lists prototype values of every fact type the analyzer
	// exports or imports; drivers register them for serialization.
	FactTypes []Fact
	// Directives lists the //finemoe:<name> suppression vocabulary the
	// analyzer honors — the names whose annotations it can mark used.
	// The -stats staleness sweep flags any suppression directive no
	// analyzer marked used.
	Directives []string
}

// A Diagnostic is one finding, positioned inside Pass.Fset.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// Facts is the cross-package fact store shared by the driver run;
	// nil when the driver does not propagate facts.
	Facts *FactStore

	// Tracker records which //finemoe: directives exist and which ones
	// actually suppressed something, so the -stats sweep can flag stale
	// annotations. Nil disables tracking.
	Tracker *DirectiveTracker

	// directives caches the parsed //finemoe:* comments per file line.
	directives map[*token.File]map[int][]directive
}

type directive struct {
	name   string
	reason string
	pos    token.Pos
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// DirectivePrefix introduces every escape-hatch comment.
const DirectivePrefix = "//finemoe:"

func parseDirective(text string) (directive, bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, DirectivePrefix)
	name, reason, _ := strings.Cut(rest, " ")
	if name == "" {
		return directive{}, false
	}
	return directive{name: name, reason: strings.TrimSpace(reason)}, true
}

func (p *Pass) buildDirectives() {
	p.directives = make(map[*token.File]map[int][]directive)
	for _, f := range p.Files {
		tf := p.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		lines := make(map[int][]directive)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				d.pos = c.Pos()
				line := p.Fset.Position(c.Pos()).Line
				lines[line] = append(lines[line], d)
				p.Tracker.see(p.Pkg.Path(), p.Fset.Position(c.Pos()), d.name, d.reason)
			}
		}
		// Record every commented line so Allowed can climb through a
		// directive block above the flagged statement.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := p.Fset.Position(c.Pos()).Line
				if _, ok := lines[line]; !ok {
					lines[line] = nil
				}
			}
		}
		p.directives[tf] = lines
	}
}

// Allowed reports whether node is covered by a //finemoe:<name> directive
// with a non-empty reason, either trailing on the node's first line or in
// the contiguous comment block directly above it. A matching directive
// with an empty reason is reported as its own diagnostic and does not
// suppress anything: annotations must say why.
func (p *Pass) Allowed(name string, node ast.Node) bool {
	if p.directives == nil {
		p.buildDirectives()
	}
	tf := p.Fset.File(node.Pos())
	lines, ok := p.directives[tf]
	if !ok {
		return false
	}
	check := func(line int) (allowed, found bool) {
		for _, d := range lines[line] {
			if d.name != name {
				continue
			}
			if d.reason == "" {
				p.Reportf(d.pos, "%s%s requires a reason", DirectivePrefix, name)
				p.Tracker.use(p.Fset.Position(d.pos))
				return false, true
			}
			p.Tracker.use(p.Fset.Position(d.pos))
			return true, true
		}
		return false, false
	}
	start := p.Fset.Position(node.Pos()).Line
	if allowed, found := check(start); found {
		return allowed
	}
	for line := start - 1; line > 0; line-- {
		if _, commented := lines[line]; !commented {
			break
		}
		if allowed, found := check(line); found {
			return allowed
		}
	}
	return false
}

// DirectiveOn looks up a //finemoe:<name> directive covering node (same
// line or the contiguous comment block above, like Allowed) WITHOUT
// marking it used: analyzers that read declaration-level annotations
// (callalloc's allocok functions) peek first and call MarkUsed only once
// the annotation demonstrably suppresses something, so annotations that
// no longer do any work surface as stale in -stats. An empty reason is
// reported immediately, as with Allowed.
func (p *Pass) DirectiveOn(name string, node ast.Node) (reason string, pos token.Pos, found bool) {
	if p.directives == nil {
		p.buildDirectives()
	}
	tf := p.Fset.File(node.Pos())
	lines, ok := p.directives[tf]
	if !ok {
		return "", token.NoPos, false
	}
	check := func(line int) (directive, bool) {
		for _, d := range lines[line] {
			if d.name == name {
				return d, true
			}
		}
		return directive{}, false
	}
	start := p.Fset.Position(node.Pos()).Line
	d, ok := check(start)
	for line := start - 1; !ok && line > 0; line-- {
		if _, commented := lines[line]; !commented {
			break
		}
		d, ok = check(line)
	}
	if !ok {
		return "", token.NoPos, false
	}
	if d.reason == "" {
		p.Reportf(d.pos, "%s%s requires a reason", DirectivePrefix, name)
		p.Tracker.use(p.Fset.Position(d.pos))
		return "", d.pos, false
	}
	return d.reason, d.pos, true
}

// MarkUsed records that the directive at pos did real suppression work
// this run (pairs with DirectiveOn).
func (p *Pass) MarkUsed(pos token.Pos) {
	p.Tracker.use(p.Fset.Position(pos))
}

// Markers are directive names that declare a property rather than
// suppress a diagnostic (//finemoe:hotpath marks a function as a
// zero-allocation root); they are never stale.
var Markers = map[string]bool{"hotpath": true}

// A DirectiveInfo describes one //finemoe: annotation found in source.
type DirectiveInfo struct {
	Pkg      string
	File     string
	Line     int
	Col      int
	Name     string
	Reason   string
	Used     bool
	Position token.Position
}

// A DirectiveTracker aggregates every directive seen across a driver
// run. All methods are nil-safe so passes can run without tracking.
type DirectiveTracker struct {
	byPos map[token.Position]*DirectiveInfo
}

// NewDirectiveTracker returns an empty tracker.
func NewDirectiveTracker() *DirectiveTracker {
	return &DirectiveTracker{byPos: map[token.Position]*DirectiveInfo{}}
}

func (t *DirectiveTracker) see(pkg string, pos token.Position, name, reason string) {
	if t == nil {
		return
	}
	if _, ok := t.byPos[pos]; ok {
		return
	}
	t.byPos[pos] = &DirectiveInfo{
		Pkg: pkg, File: pos.Filename, Line: pos.Line, Col: pos.Column,
		Name: name, Reason: reason, Used: Markers[name], Position: pos,
	}
}

func (t *DirectiveTracker) use(pos token.Position) {
	if t == nil {
		return
	}
	if d, ok := t.byPos[pos]; ok {
		d.Used = true
	}
}

// All returns every directive seen, sorted by file, line, column.
func (t *DirectiveTracker) All() []DirectiveInfo {
	if t == nil {
		return nil
	}
	out := make([]DirectiveInfo, 0, len(t.byPos))
	for _, d := range t.byPos {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// Stale returns the suppression directives that no analyzer marked used
// this run — annotations whose diagnostic no longer fires — plus any
// directive whose name is outside the known vocabulary. vocab is the
// union of every loaded analyzer's Directives.
func (t *DirectiveTracker) Stale(vocab map[string]bool) []DirectiveInfo {
	var out []DirectiveInfo
	for _, d := range t.All() {
		if Markers[d.Name] {
			continue
		}
		if !vocab[d.Name] || !d.Used {
			out = append(out, d)
		}
	}
	return out
}

// PathMatches reports whether the import path matches any entry by whole
// trailing-segment comparison: entry "internal/core" matches both
// "finemoe/internal/core" and a fixture package loaded as "internal/core",
// but not "internal/coreutils".
func PathMatches(path string, entries []string) bool {
	for _, e := range entries {
		if path == e || strings.HasSuffix(path, "/"+e) {
			return true
		}
	}
	return false
}

// SimPackages lists the simulator packages whose results feed goldens:
// everything between the workload generator and the report serializer must
// be byte-deterministic. httpserve is included for detrange (its /v1/stats
// payloads are diffed in tests) even though noclock exempts it.
var SimPackages = []string{
	"internal/core",
	"internal/serve",
	"internal/cluster",
	"internal/faults",
	"internal/cache",
	"internal/memsim",
	"internal/moe",
	"internal/workload",
	"internal/scenarios",
	"internal/experiments",
	"internal/baselines",
	"internal/metrics",
	"internal/policy",
	"internal/httpserve",
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// TypeHasRelease reports whether t (after unwrapping one pointer) is a
// named type declared in a package matching pkgs whose method set includes
// a niladic Release method — the shape of the pooled Query/Cursor
// resources mustrelease tracks.
func TypeHasRelease(t types.Type, pkgs []string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Pkg() == nil || !PathMatches(named.Obj().Pkg().Path(), pkgs) {
		return false
	}
	mset := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < mset.Len(); i++ {
		fn, ok := mset.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != "Release" {
			continue
		}
		if sig := fn.Type().(*types.Signature); sig.Params().Len() == 0 {
			return true
		}
	}
	return false
}
