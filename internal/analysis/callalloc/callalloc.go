// Package callalloc is the interprocedural sibling of hotalloc: where
// hotalloc inspects only the bodies of //finemoe:hotpath functions,
// callalloc walks the call graph from every hotpath root and reports any
// reachable allocation site, carrying the full call chain in the
// diagnostic. It is the analyzer that turns "the 33 annotated functions
// don't allocate" into "the hot path doesn't allocate, period".
//
// Mechanics:
//
//   - Allocation sites come from internal/analysis/allocscan (same rules
//     as hotalloc, including the cap-guard grow idiom). A site carrying a
//     //finemoe:allocok or //finemoe:alloc-ok <reason> annotation is
//     sanctioned and does not propagate.
//   - A whole function can be sanctioned as an allocating leaf with a
//     //finemoe:allocok <reason> in its doc block — the cold grow path or
//     per-request constructor whose cost is amortized. Sanctioned
//     functions export no allocation fact, so callers stay clean.
//   - Cross-package propagation uses object facts (AllocFact): analyzing
//     a package exports one fact per function whose call transitively
//     allocates; importing packages merge those at import. Both the
//     standalone driver and the go vet unitchecker protocol propagate
//     them (the .vetx fact files cmd/go keys on export data).
//   - Interface method calls resolve conservatively over every in-module
//     implementer visible in the import closure of the analyzed package:
//     if any implementer's method allocates, the call site is flagged
//     with that implementer in the chain.
//   - Calls leaving the module are vetted by a curated policy: packages
//     known to allocate on essentially every call (fmt, strings, bytes,
//     slices, …) are denied unless the specific function is on the clean
//     list; everything else (math, sort, sync, sync/atomic, builtins) is
//     trusted not to allocate. Indirect calls through function values
//     cannot be proven and are flagged.
package callalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"finemoe/internal/analysis"
	"finemoe/internal/analysis/allocscan"
	"finemoe/internal/analysis/hotalloc"
)

// Directive is the escape-hatch vocabulary entry callalloc honors, on
// call sites and (function-level) in doc blocks.
const Directive = "allocok"

// maxChain bounds the hops rendered in one diagnostic.
const maxChain = 8

// AllocFact marks a function whose call transitively reaches an
// allocation; Chain walks from the function to the site.
type AllocFact struct {
	Chain []string
}

// AFact implements analysis.Fact.
func (*AllocFact) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:       "callalloc",
	Doc:        "proves //finemoe:hotpath functions transitively allocation-free over the call graph",
	Run:        run,
	FactTypes:  []analysis.Fact{new(AllocFact)},
	Directives: []string{Directive},
}

// callKind classifies one call site for propagation.
type callKind int

const (
	callStatic   callKind = iota // in-module function or method, resolved
	callIface                    // dynamic dispatch through an interface
	callExtern                   // out-of-module callee denied by policy
	callIndirect                 // through a function value; unprovable
)

type callSite struct {
	node   ast.Node
	kind   callKind
	callee *types.Func      // callStatic
	iface  *types.Interface // callIface
	method string           // callIface
	label  string           // human name of the callee
}

type fnInfo struct {
	decl       *ast.FuncDecl
	obj        *types.Func
	sites      []allocscan.Site // unsanctioned direct sites
	calls      []callSite
	allocok    bool
	allocokPos token.Pos
	alloc      []string // chain to the first allocation; nil = clean
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.InModule(pass.Pkg.Path()) {
		return nil, nil
	}
	fns := collect(pass)
	resolveFixpoint(pass, fns)

	// Report at hotpath roots: every call whose callee transitively
	// allocates. Direct sites inside the root are hotalloc's domain.
	for _, fn := range fns.ordered {
		if !hotalloc.IsHotpath(fn.decl) {
			continue
		}
		for _, cs := range fn.calls {
			chain := callChain(pass, fns, cs)
			if chain == nil {
				continue
			}
			if pass.Allowed(Directive, cs.node) {
				continue
			}
			pass.Reportf(cs.node.Pos(), "hotpath %s: call to %s eventually allocates: %s",
				fn.decl.Name.Name, cs.label, strings.Join(trim(chain), " -> "))
		}
	}

	// Export facts and settle allocok staleness.
	for _, fn := range fns.ordered {
		if fn.allocok {
			if fn.alloc != nil {
				pass.MarkUsed(fn.allocokPos)
			}
			continue // sanctioned: callers stay clean
		}
		if fn.alloc != nil && fn.obj != nil {
			if _, ok := analysis.ObjectKey(fn.obj); ok {
				pass.ExportObjectFact(fn.obj, &AllocFact{Chain: fn.alloc})
			}
		}
	}
	return nil, nil
}

type fnSet struct {
	byObj   map[types.Object]*fnInfo
	ordered []*fnInfo
	// caches for interface dispatch resolution (consulted repeatedly
	// inside the fixpoint).
	typesOnce  bool
	moduleType []*types.Named
	impls      map[*types.Interface][]*types.Named
}

func collect(pass *analysis.Pass) *fnSet {
	fns := &fnSet{byObj: map[types.Object]*fnInfo{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			fn := &fnInfo{decl: fd, obj: obj}
			if reason, pos, ok := pass.DirectiveOn(Directive, fd); ok && reason != "" {
				fn.allocok, fn.allocokPos = true, pos
			}
			for _, site := range allocscan.Scan(pass, fd) {
				if pass.Allowed(Directive, site.Node) || pass.Allowed(hotalloc.Directive, site.Node) {
					continue
				}
				fn.sites = append(fn.sites, site)
			}
			fn.calls = collectCalls(pass, fd)
			fns.ordered = append(fns.ordered, fn)
			if obj != nil {
				fns.byObj[obj] = fn
			}
		}
	}
	return fns
}

// collectCalls classifies every call expression in the body, including
// those inside func literals (a literal runs with the function's
// resources whether invoked inline or stored).
func collectCalls(pass *analysis.Pass, fd *ast.FuncDecl) []callSite {
	var out []callSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			out = append(out, callSite{node: g, kind: callExtern,
				label: "go statement (starting a goroutine allocates)"})
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cs, ok := classifyCall(pass, call); ok {
			out = append(out, cs)
		}
		return true
	})
	return out
}

func classifyCall(pass *analysis.Pass, call *ast.CallExpr) (callSite, bool) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: f[T](…).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := pass.TypesInfo.Uses[fun].(type) {
		case *types.Func:
			return staticCall(pass, call, obj)
		case *types.Var:
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				return callSite{node: call, kind: callIndirect,
					label: fmt.Sprintf("function value %s (indirect call; cannot prove allocation-free)", fun.Name)}, true
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				mobj := sel.Obj().(*types.Func)
				recv := sel.Recv()
				if iface, ok := recv.Underlying().(*types.Interface); ok {
					return callSite{node: call, kind: callIface, iface: iface, method: fun.Sel.Name,
						label: fmt.Sprintf("%s.%s (interface method)", typeShort(recv), fun.Sel.Name)}, true
				}
				return staticCall(pass, call, mobj)
			case types.FieldVal:
				if _, ok := sel.Type().Underlying().(*types.Signature); ok {
					return callSite{node: call, kind: callIndirect,
						label: fmt.Sprintf("func-valued field %s (indirect call; cannot prove allocation-free)", fun.Sel.Name)}, true
				}
			}
			return callSite{}, false
		}
		// Package-qualified name: pkg.F.
		switch obj := pass.TypesInfo.Uses[fun.Sel].(type) {
		case *types.Func:
			return staticCall(pass, call, obj)
		case *types.Var:
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				return callSite{node: call, kind: callIndirect,
					label: fmt.Sprintf("function variable %s (indirect call; cannot prove allocation-free)", obj.Name())}, true
			}
		}
	}
	return callSite{}, false
}

func staticCall(pass *analysis.Pass, call *ast.CallExpr, obj *types.Func) (callSite, bool) {
	if obj.Pkg() == nil { // universe (error.Error) — treat as dynamic
		return callSite{node: call, kind: callIface, iface: types.Universe.Lookup("error").Type().Underlying().(*types.Interface),
			method: "Error", label: "error.Error (interface method)"}, true
	}
	if analysis.InModule(obj.Pkg().Path()) {
		return callSite{node: call, kind: callStatic, callee: obj, label: funcLabel(obj)}, true
	}
	if externAllocates(obj) {
		return callSite{node: call, kind: callExtern,
			label: fmt.Sprintf("%s (known allocator outside the module)", funcLabel(obj))}, true
	}
	return callSite{}, false // trusted out-of-module callee
}

// allocPkgs are out-of-module packages whose calls are assumed to
// allocate unless the specific function appears in cleanFuncs. Everything
// not listed here or in allocFuncs (math, sort, sync, sync/atomic,
// container/heap, …) is trusted not to allocate; the trust boundary is
// documented in ARCHITECTURE.md's determinism-contract section.
var allocPkgs = map[string]bool{
	"fmt": true, "errors": true, "strings": true, "bytes": true,
	"strconv": true, "slices": true, "maps": true, "os": true, "io": true,
	"bufio": true, "regexp": true, "reflect": true, "time": true,
	"math/rand": true, "math/big": true, "encoding/json": true,
	"encoding/csv": true, "encoding/gob": true, "net/http": true,
}

// cleanFuncs are allocation-free exceptions inside allocPkgs.
var cleanFuncs = map[string]bool{
	"strings.HasPrefix": true, "strings.HasSuffix": true,
	"strings.Contains": true, "strings.ContainsRune": true,
	"strings.Index": true, "strings.IndexByte": true,
	"strings.LastIndex": true, "strings.EqualFold": true,
	"strings.Compare": true, "strings.Count": true,
	"strings.TrimSpace": true, "strings.TrimPrefix": true,
	"strings.TrimSuffix": true, "strings.Cut": true,
	"bytes.Equal": true, "bytes.Compare": true, "bytes.IndexByte": true,
	"slices.Contains": true, "slices.Index": true, "slices.IndexFunc": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
	"slices.IsSorted": true, "slices.IsSortedFunc": true,
	"slices.BinarySearch": true, "slices.BinarySearchFunc": true,
	"slices.Min": true, "slices.Max": true, "slices.Reverse": true,
	"slices.Equal": true, "strconv.Atoi": true,
}

// allocFuncs are known allocators inside otherwise-trusted packages.
var allocFuncs = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.SliceIsSorted": true,
}

func externAllocates(obj *types.Func) bool {
	pkg := obj.Pkg().Path()
	name := pkg + "." + obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Methods: decided at package granularity (e.g. bytes.Buffer
		// grows, sync.Mutex does not).
		return allocPkgs[pkg]
	}
	if allocFuncs[name] {
		return true
	}
	return allocPkgs[pkg] && !cleanFuncs[name]
}

// resolveFixpoint computes each function's transitive allocation status:
// seed with direct sites, then propagate over calls until stable. The
// iteration is monotone (clean -> allocating only), so it terminates; a
// function's chain is fixed the moment it first becomes allocating,
// keeping chains finite through recursion.
func resolveFixpoint(pass *analysis.Pass, fns *fnSet) {
	for _, fn := range fns.ordered {
		if len(fn.sites) > 0 {
			s := fn.sites[0]
			fn.alloc = []string{fmt.Sprintf("%s: %s", posLabel(pass, s.Node.Pos()), s.Msg)}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns.ordered {
			if fn.alloc != nil {
				continue
			}
			for _, cs := range fn.calls {
				chain := callChain(pass, fns, cs)
				if chain == nil {
					continue
				}
				fn.alloc = chain
				changed = true
				break
			}
		}
	}
}

// callChain returns the allocation chain a call site contributes, or nil
// when the callee is (transitively) allocation-free.
func callChain(pass *analysis.Pass, fns *fnSet, cs callSite) []string {
	at := posLabel(pass, cs.node.Pos())
	switch cs.kind {
	case callExtern, callIndirect:
		return []string{fmt.Sprintf("%s: %s", at, cs.label)}
	case callStatic:
		if chain := calleeChain(pass, fns, cs.callee); chain != nil {
			return append([]string{fmt.Sprintf("%s: calls %s", at, cs.label)}, chain...)
		}
		return nil
	case callIface:
		for _, impl := range fns.implementers(pass, cs.iface) {
			mobj := methodOn(impl, cs.method)
			if mobj == nil {
				continue
			}
			if chain := calleeChain(pass, fns, mobj); chain != nil {
				return append([]string{fmt.Sprintf("%s: calls %s via %s", at, funcLabel(mobj), cs.label)}, chain...)
			}
		}
		return nil
	}
	return nil
}

// calleeChain resolves a static callee's allocation chain: local
// functions use the fixpoint state, cross-package ones the imported
// fact. Absence of a fact means clean (every in-module dependency has
// been analyzed before us).
func calleeChain(pass *analysis.Pass, fns *fnSet, callee *types.Func) []string {
	if callee.Pkg() == pass.Pkg {
		if fn, ok := fns.byObj[callee]; ok {
			if fn.allocok {
				return nil
			}
			return fn.alloc
		}
		return nil // no body here (assembly stubs): nothing to allocate
	}
	var fact AllocFact
	if pass.ImportObjectFact(callee, &fact) {
		return fact.Chain
	}
	return nil
}

// implementers returns every in-module named type visible from the
// analyzed package (itself plus its transitive imports) that implements
// iface, sorted for deterministic chains.
func (fns *fnSet) implementers(pass *analysis.Pass, iface *types.Interface) []*types.Named {
	if iface.NumMethods() == 0 {
		return nil // any type satisfies; dispatch target unknowable
	}
	if !fns.typesOnce {
		fns.typesOnce = true
		fns.moduleType = moduleTypes(pass)
		fns.impls = map[*types.Interface][]*types.Named{}
	}
	if cached, ok := fns.impls[iface]; ok {
		return cached
	}
	var out []*types.Named
	for _, named := range fns.moduleType {
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			out = append(out, named)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Obj().Pkg().Path(), out[j].Obj().Pkg().Path()
		if pi != pj {
			return pi < pj
		}
		return out[i].Obj().Name() < out[j].Obj().Name()
	})
	fns.impls[iface] = out
	return out
}

// moduleTypes lists the named (non-interface) types declared in the
// analyzed package and its transitive in-module imports.
func moduleTypes(pass *analysis.Pass) []*types.Named {
	seen := map[*types.Package]bool{}
	var pkgs []*types.Package
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if p == nil || seen[p] || !analysis.InModule(p.Path()) {
			return
		}
		seen[p] = true
		pkgs = append(pkgs, p)
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	walk(pass.Pkg)
	var out []*types.Named
	for _, p := range pkgs {
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

func methodOn(named *types.Named, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
	fn, _ := obj.(*types.Func)
	return fn
}

func funcLabel(obj *types.Func) string {
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		return fmt.Sprintf("%s.%s.%s", pkgShort(obj.Pkg()), typeShort(t), obj.Name())
	}
	return fmt.Sprintf("%s.%s", pkgShort(obj.Pkg()), obj.Name())
}

func pkgShort(p *types.Package) string {
	if p == nil {
		return "?"
	}
	return p.Name()
}

func typeShort(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func posLabel(pass *analysis.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// trim bounds a chain for display.
func trim(chain []string) []string {
	if len(chain) <= maxChain {
		return chain
	}
	out := append([]string(nil), chain[:maxChain]...)
	return append(out, "…")
}
