package callalloc_test

import (
	"testing"

	"finemoe/internal/analysis"
	"finemoe/internal/analysis/analysistest"
	"finemoe/internal/analysis/callalloc"
)

// TestCallalloc covers the whole-program wants: local helper chains,
// cross-package facts imported from finemoe/callee, interface dispatch,
// indirect calls, and both sanction levels (call site and leaf
// function). Listing callee too asserts the dependency itself stays
// diagnostic-free.
func TestCallalloc(t *testing.T) {
	analysistest.Run(t, "../testdata", callalloc.Analyzer, "finemoe/hotcaller", "finemoe/callee")
}

// TestStaleDirectives drives the staleness sweep through fixtures: a
// suppression that no longer does work and a misspelled directive are
// flagged; a live suppression is not.
func TestStaleDirectives(t *testing.T) {
	analysistest.RunStale(t, "../testdata", []*analysis.Analyzer{callalloc.Analyzer}, "finemoe/staledir")
}
