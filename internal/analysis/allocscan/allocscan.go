// Package allocscan is the shared allocation-site detector behind
// hotalloc (intraprocedural: sites inside //finemoe:hotpath bodies) and
// callalloc (interprocedural: sites anywhere the hot-path call graph
// reaches). It recognizes the allocation shapes PR 4/5 eliminated from
// the serving loop:
//
//   - &T{…}, new(T): pointer-producing allocations
//   - []T{…}, map literals, make(…): fresh backing stores — EXCEPT inside
//     an `if cap(…) < n`-style guard, the sanctioned amortized-grow idiom
//   - append to a slice declared in the same function without capacity
//   - boxing a non-pointer concrete value into an interface
//   - closures capturing local variables (the capture forces a heap
//     allocation of both closure and captured slot)
//
// Scan only detects; policy (which functions matter, which directives
// suppress) stays with the analyzers.
package allocscan

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"finemoe/internal/analysis"
)

// A Site is one detected allocation: the node to report at and the
// human-readable description (analyzers add their own prefixes).
type Site struct {
	Node ast.Node
	Msg  string
}

// Scan returns fn's allocation sites in source order.
func Scan(pass *analysis.Pass, fn *ast.FuncDecl) []Site {
	if fn.Body == nil {
		return nil
	}
	c := &scanner{pass: pass, fn: fn, handled: map[ast.Node]bool{}}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condUsesCapOrLen(pass, ifs.Cond) || endsInPanic(pass, ifs.Body) {
			c.guards = append(c.guards, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	ast.Inspect(fn.Body, c.visit)
	sort.SliceStable(c.sites, func(i, j int) bool { return c.sites[i].Node.Pos() < c.sites[j].Node.Pos() })
	return c.sites
}

type scanner struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	// guards are body ranges of `if cap(…)`/`if len(…)` statements — the
	// amortized-grow idiom where make/append are sanctioned.
	guards [][2]token.Pos
	// handled de-duplicates nodes detected through more than one rule
	// (e.g. &T{…} visits both the unary expr and the composite literal).
	handled map[ast.Node]bool
	sites   []Site
}

func condUsesCapOrLen(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") &&
				pass.TypesInfo.Uses[id] == types.Universe.Lookup(id.Name) {
				found = true
			}
		case *ast.BinaryExpr:
			// `if x == nil { x = make(…) }` is the lazy once-only init —
			// as amortized as the cap-guarded grow.
			if n.Op == token.EQL || n.Op == token.NEQ {
				if tv, ok := pass.TypesInfo.Types[n.Y]; ok && tv.IsNil() {
					found = true
				}
				if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.IsNil() {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// endsInPanic reports whether the block's last statement is a panic call
// — an assertion branch. A taken panic aborts the run, so allocations on
// the way to it (formatting the message) are free on the happy path.
func endsInPanic(pass *analysis.Pass, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	expr, ok := body.List[len(body.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("panic")
}

func (c *scanner) guarded(pos token.Pos) bool {
	for _, g := range c.guards {
		if pos >= g[0] && pos < g[1] {
			return true
		}
	}
	return false
}

func (c *scanner) add(n ast.Node, format string, args ...any) {
	if c.handled[n] || c.guarded(n.Pos()) {
		return
	}
	c.handled[n] = true
	c.sites = append(c.sites, Site{Node: n, Msg: fmt.Sprintf(format, args...)})
}

func (c *scanner) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if lit, ok := n.X.(*ast.CompositeLit); ok {
				c.handled[lit] = true // don't double-report the literal
				c.add(n, "&%s allocates on every call; pool or reuse it", typeLabel(c.pass, lit))
			}
		}
	case *ast.CompositeLit:
		t := c.pass.TypesInfo.TypeOf(n)
		if t == nil || c.handled[n] || c.guarded(n.Pos()) {
			return true
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			c.add(n, "%s literal allocates a fresh backing store; preallocate and reuse", typeLabel(c.pass, n))
		}
	case *ast.CallExpr:
		c.visitCall(n)
	case *ast.AssignStmt:
		c.visitAssign(n)
	case *ast.FuncLit:
		c.visitFuncLit(n)
		return false // captures inside nested literals report once, at the outermost
	}
	return true
}

func (c *scanner) visitCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == types.Universe.Lookup(id.Name) {
		switch id.Name {
		case "new":
			c.add(call, "new(…) allocates on every call; pool or reuse it")
			return
		case "make":
			if !c.guarded(call.Pos()) {
				c.add(call, "make outside a cap/len grow guard allocates on every call")
			}
			return
		case "append":
			c.visitAppend(call)
			return
		case "panic":
			// A taken panic aborts the run; boxing its argument is free on
			// the happy path.
			return
		}
	}
	// Interface boxing through call arguments.
	sig, ok := typeOf(c.pass, call.Fun).(*types.Signature)
	if !ok {
		// Conversion to an interface type boxes too.
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			if types.IsInterface(tv.Type) && Boxes(typeOf(c.pass, call.Args[0])) {
				c.add(call, "converting %s to interface %s allocates", typeOf(c.pass, call.Args[0]), tv.Type)
			}
		}
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			pt = sig.Params().At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := typeOf(c.pass, arg)
		if Boxes(at) {
			c.add(arg, "passing %s as interface %s boxes the value (allocates)", at, pt)
		}
	}
}

func (c *scanner) visitAssign(s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN {
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		lt, rt := typeOf(c.pass, lhs), typeOf(c.pass, s.Rhs[i])
		if lt != nil && types.IsInterface(lt) && Boxes(rt) {
			c.add(s.Rhs[i], "assigning %s to interface %s boxes the value (allocates)", rt, lt)
		}
	}
}

func (c *scanner) visitAppend(call *ast.CallExpr) {
	if c.guarded(call.Pos()) || len(call.Args) == 0 {
		return
	}
	// The clone idiom append([]T(nil), xs...) / append([]T{}, xs...)
	// allocates a fresh backing array on every call.
	if freshSliceExpr(c.pass, call.Args[0]) {
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit); ok {
			c.handled[lit] = true // one site: the append, not also the literal
		}
		c.add(call, "append to a fresh nil/empty slice clones on every call; reuse a pooled buffer")
		return
	}
	base, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // fields and selectors are assumed pooled/preallocated
	}
	obj := c.pass.TypesInfo.ObjectOf(base)
	if obj == nil || obj.Pos() < c.fn.Body.Pos() {
		return // parameter or outer-scope slice: caller owns capacity
	}
	if declaredWithoutCapacity(c.pass, c.fn.Body, obj) {
		c.add(call, "append to %s, declared without preallocated capacity; make it with cap or reuse a pooled buffer", base.Name)
	}
}

// freshSliceExpr matches the empty-slice seeds of the clone idiom: a
// conversion []T(nil) or an empty composite literal []T{}.
func freshSliceExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		t := pass.TypesInfo.TypeOf(e)
		if t == nil {
			return false
		}
		_, isSlice := t.Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		tv, ok := pass.TypesInfo.Types[e.Fun]
		if !ok || !tv.IsType() || len(e.Args) != 1 {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		if !isSlice {
			return false
		}
		argTV, ok := pass.TypesInfo.Types[e.Args[0]]
		return ok && argTV.IsNil()
	}
	return false
}

// declaredWithoutCapacity reports whether the local slice variable is
// declared with no visible backing store: `var x []T`, `x := []T{}` or
// `x := nil`-shaped declarations. Declarations via make, slicing an
// existing array/slice, or a function call (pools) are treated as
// preallocated.
func declaredWithoutCapacity(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	bad := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.Defs[id] != obj {
					continue
				}
				if i < len(n.Rhs) {
					if lit, ok := n.Rhs[i].(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
						bad = true
					}
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if pass.TypesInfo.Defs[name] == obj && len(vs.Values) == 0 {
						bad = true
					}
				}
			}
		}
		return true
	})
	return bad
}

func (c *scanner) visitFuncLit(lit *ast.FuncLit) {
	captured := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Free variable: declared inside the hot function but outside the
		// closure literal. Package-level vars don't force a capture.
		if v.Pos() >= c.fn.Pos() && v.Pos() < c.fn.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captured[v.Name()] = true
		}
		return true
	})
	if len(captured) == 0 {
		return
	}
	names := make([]string, 0, len(captured))
	for n := range captured {
		names = append(names, n)
	}
	sort.Strings(names)
	c.add(lit, "closure captures %s; captures force heap allocation — hoist the closure or pass state explicitly", strings.Join(names, ", "))
}

// Boxes reports whether storing a value of type t in an interface
// allocates: true for non-pointer concrete shapes (basics, structs,
// arrays, slices), false for pointers, maps, chans, funcs, interfaces and
// untyped nil, which fit the interface data word.
func Boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.UnsafePointer
	case *types.Struct, *types.Array, *types.Slice:
		return true
	}
	return false
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	return pass.TypesInfo.TypeOf(e)
}

func typeLabel(pass *analysis.Pass, lit *ast.CompositeLit) string {
	if t := pass.TypesInfo.TypeOf(lit); t != nil {
		return t.String()
	}
	return "composite"
}
