package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a unit of analyzer knowledge attached to a package-level
// object (function, method, type, var) or to a whole package, exported
// by the pass that analyzes the defining package and imported by passes
// over packages that depend on it. Facts are the cross-package layer
// that turns the per-function analyzers into whole-program ones:
// callalloc exports "this function allocates (and here is the chain)",
// puritycheck exports "this function writes package-level state".
//
// Concrete fact types must be gob-serializable structs, registered once
// via RegisterFactType (drivers register every Analyzer.FactTypes entry)
// so the wire form used by the go vet unitchecker protocol — one fact
// file per package, merged at import — round-trips them by name.
type Fact interface{ AFact() }

// ModulePath is the repo's module path; facts are only computed for (and
// trusted from) packages inside it. Out-of-module callees are vetted
// through curated allow/deny lists instead (see callalloc).
const ModulePath = "finemoe"

// InModule reports whether an import path belongs to the main module.
func InModule(path string) bool {
	return path == ModulePath || len(path) > len(ModulePath) &&
		path[:len(ModulePath)] == ModulePath && path[len(ModulePath)] == '/'
}

var factTypes = map[string]reflect.Type{}

// RegisterFactType makes a concrete fact type decodable by name.
// Idempotent; the name is the type's package-qualified string.
func RegisterFactType(f Fact) {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	factTypes[t.String()] = t
}

func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.String()
}

// factKey addresses one fact: the exporting analyzer, the defining
// package, the object within it ("" for package facts), and the fact's
// concrete type (an analyzer may export several kinds).
type factKey struct {
	Analyzer string
	Pkg      string
	Object   string
	Type     string
}

// A FactStore holds every fact visible to the current driver run. The
// standalone driver shares one store across the whole module (packages
// are analyzed in dependency order, so exporters always run before
// importers); the vet driver seeds a fresh store from the dependency
// fact files cmd/go hands it and serializes the merged store back out
// for dependents.
type FactStore struct {
	facts map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{facts: map[factKey]Fact{}} }

// ObjectKey renders a package-level object as a stable cross-package
// name: "F" for a function or var, "T.M" for a method (value or pointer
// receiver). It reports false for objects facts cannot attach to
// (locals, fields, imported names).
func ObjectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return "", false
		}
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
		return fn.Name(), true
	}
	// Non-functions must live at package scope.
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

func (s *FactStore) export(analyzer, pkg, object string, f Fact) {
	s.facts[factKey{analyzer, pkg, object, factTypeName(f)}] = f
}

// lookup copies a stored fact into ptr (a pointer to the concrete fact
// type) and reports whether one was found.
func (s *FactStore) lookup(analyzer, pkg, object string, ptr Fact) bool {
	if s == nil {
		return false
	}
	f, ok := s.facts[factKey{analyzer, pkg, object, factTypeName(ptr)}]
	if !ok {
		return false
	}
	dst := reflect.ValueOf(ptr)
	src := reflect.ValueOf(f)
	if dst.Kind() != reflect.Pointer || src.Kind() != reflect.Pointer {
		return false
	}
	dst.Elem().Set(src.Elem())
	return true
}

// wireFact is the serialized form of one fact.
type wireFact struct {
	Analyzer string
	Pkg      string
	Object   string
	Type     string
	Data     []byte
}

// Encode serializes the whole store deterministically (sorted by key),
// so fact files keyed on content are byte-stable across runs.
func (s *FactStore) Encode() ([]byte, error) {
	keys := make([]factKey, 0, len(s.facts))
	for k := range s.facts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	wire := make([]wireFact, 0, len(keys))
	for _, k := range keys {
		var payload bytes.Buffer
		if err := gob.NewEncoder(&payload).EncodeValue(reflect.ValueOf(s.facts[k]).Elem()); err != nil {
			return nil, fmt.Errorf("encoding fact %v: %v", k, err)
		}
		wire = append(wire, wireFact{k.Analyzer, k.Pkg, k.Object, k.Type, payload.Bytes()})
	}
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(wire); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Decode merges a serialized fact file into the store. Empty input is a
// valid empty fact set (the placeholder .vetx files older finemoe-lint
// builds wrote). Facts whose type was never registered are skipped —
// they belong to an analyzer not loaded in this driver.
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("decoding fact file: %v", err)
	}
	for _, w := range wire {
		t, ok := factTypes[w.Type]
		if !ok {
			continue
		}
		ptr := reflect.New(t)
		if err := gob.NewDecoder(bytes.NewReader(w.Data)).DecodeValue(ptr.Elem()); err != nil {
			return fmt.Errorf("decoding fact %s/%s.%s: %v", w.Analyzer, w.Pkg, w.Object, err)
		}
		s.facts[factKey{w.Analyzer, w.Pkg, w.Object, w.Type}] = ptr.Interface().(Fact)
	}
	return nil
}

// ExportObjectFact attaches a fact to a package-level object of the
// package under analysis. Facts on objects outside the current package
// are a driver error (the exporter is the defining package's pass).
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.Facts == nil {
		return
	}
	key, ok := ObjectKey(obj)
	if !ok {
		panic(fmt.Sprintf("ExportObjectFact: unsupported object %v", obj))
	}
	p.Facts.export(p.Analyzer.Name, obj.Pkg().Path(), key, f)
}

// ImportObjectFact copies the fact attached to obj (by this analyzer,
// from any already-analyzed package) into ptr, reporting whether one
// exists.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	return p.Facts.lookup(p.Analyzer.Name, obj.Pkg().Path(), key, ptr)
}

// ExportPackageFact attaches a fact to the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.Facts == nil {
		return
	}
	p.Facts.export(p.Analyzer.Name, p.Pkg.Path(), "", f)
}

// ImportPackageFact copies the package-level fact of pkg into ptr.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	if p.Facts == nil || pkg == nil {
		return false
	}
	return p.Facts.lookup(p.Analyzer.Name, pkg.Path(), "", ptr)
}
