package mustrelease_test

import (
	"testing"

	"finemoe/internal/analysis/analysistest"
	"finemoe/internal/analysis/mustrelease"
)

func TestMustrelease(t *testing.T) {
	analysistest.Run(t, "../testdata", mustrelease.Analyzer, "internal/core", "releuser")
}
