// Package mustrelease tracks the pooled search resources in internal/core
// — the *Query a Searcher.Prepare returns and the *Cursor a
// NewCursor/NewCursorQ returns — and flags acquisitions whose Release is
// missing on some path. Leaking one doesn't crash anything: the sync.Pool
// just stops recycling, the zero-alloc steady state PR 4 measured decays
// back into per-request garbage, and no test notices. The analyzer makes
// the ownership contract mechanical:
//
//   - a discarded result (`s.Prepare(sem)` as a statement) is a leak;
//   - a result bound to a local must reach a Release call, be returned,
//     be stored into longer-lived state, or be handed to another function
//     (which then owns it);
//   - a plain (non-deferred) Release does not excuse an earlier return:
//     any return between the acquisition and the first Release is a leak
//     path.
//
// Deliberate exceptions carry //finemoe:release-ok <reason>.
package mustrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"finemoe/internal/analysis"
)

// Directive is the escape-hatch vocabulary entry mustrelease honors.
const Directive = "release-ok"

// OwnerPackages lists the packages (trailing-segment match) whose
// Release-bearing types the analyzer tracks.
var OwnerPackages = []string{"internal/core"}

var Analyzer = &analysis.Analyzer{
	Name:       "mustrelease",
	Doc:        "flags pooled core.Query/core.Cursor acquisitions that are never released",
	Run:        run,
	Directives: []string{Directive},
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFunc(pass, fn)
			return true
		})
	}
	return nil, nil
}

// acquires reports whether call returns a pooled resource (a pointer to a
// Release-bearing type from an owner package).
func acquires(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	if _, ok := t.(*types.Pointer); !ok {
		return false
	}
	return analysis.TypeHasRelease(t, OwnerPackages)
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && acquires(pass, call) {
				// Result discarded on the spot — unless the expression is a
				// fluent chain ending in Release (x.NewCursorQ(q).Release()
				// never acquires at statement level; the inner call is the
				// receiver of a release).
				if !pass.Allowed(Directive, s) {
					pass.Reportf(call.Pos(), "result of %s is a pooled resource but is discarded without Release", types.ExprString(call.Fun))
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, fn, s)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, fn *ast.FuncDecl, s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !acquires(pass, call) {
		return
	}
	if len(s.Lhs) != 1 {
		return
	}
	switch lhs := s.Lhs[0].(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			if !pass.Allowed(Directive, s) {
				pass.Reportf(call.Pos(), "result of %s is a pooled resource but is assigned to _ without Release", types.ExprString(call.Fun))
			}
			return
		}
		obj := pass.TypesInfo.ObjectOf(lhs)
		if obj == nil {
			return
		}
		// A write to a captured or package-level variable escapes.
		if obj.Pos() < fn.Pos() || obj.Pos() >= fn.End() {
			return
		}
		checkLifetime(pass, fn, s, call, obj)
	default:
		// Stored into a field, map or slice element: escapes to
		// longer-lived state whose owner releases it (e.g. the per-request
		// cursor released by EndRequest).
	}
}

type use struct {
	released    token.Pos // position of a v.Release() call (NoPos if none)
	deferred    bool      // any release is via defer
	escapes     bool      // returned, reassigned, stored, or passed along
	firstRel    token.Pos
	returnsSeen []*ast.ReturnStmt
}

func checkLifetime(pass *analysis.Pass, fn *ast.FuncDecl, acq *ast.AssignStmt, call *ast.CallExpr, obj types.Object) {
	u := use{firstRel: token.NoPos}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isReleaseOf(pass, n.Call, obj) {
				u.released, u.deferred = n.Pos(), true
				return false
			}
		case *ast.CallExpr:
			if isReleaseOf(pass, n, obj) {
				u.released = n.Pos()
				if u.firstRel == token.NoPos || n.Pos() < u.firstRel {
					u.firstRel = n.Pos()
				}
				return true
			}
			// Passed as an argument: the callee takes over (conservative).
			for _, arg := range n.Args {
				if escapingRef(pass, arg, obj) {
					u.escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if escapingRef(pass, res, obj) {
					u.escapes = true
				}
			}
			u.returnsSeen = append(u.returnsSeen, n)
		case *ast.AssignStmt:
			if n == acq {
				return true
			}
			// v copied or stored somewhere else: escapes.
			for _, rhs := range n.Rhs {
				if escapingRef(pass, rhs, obj) {
					u.escapes = true
				}
			}
		}
		return true
	})

	if u.escapes {
		return
	}
	if u.released == token.NoPos {
		if !pass.Allowed(Directive, acq) {
			pass.Reportf(call.Pos(), "%s acquired here is never released: call %s.Release() on every path or annotate //finemoe:%s <reason>",
				types.ExprString(call.Fun), obj.Name(), Directive)
		}
		return
	}
	if u.deferred {
		return
	}
	// A plain Release doesn't cover earlier returns: flag any return
	// between the acquisition and the first Release.
	for _, ret := range u.returnsSeen {
		if ret.Pos() > acq.Pos() && ret.Pos() < u.firstRel {
			if !pass.Allowed(Directive, ret) {
				pass.Reportf(ret.Pos(), "return leaks %s acquired at line %d: Release it before returning, defer it, or annotate //finemoe:%s <reason>",
					obj.Name(), pass.Fset.Position(acq.Pos()).Line, Directive)
			}
		}
	}
}

func isReleaseOf(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == obj
}

// escapingRef reports whether the expression hands the tracked pointer
// itself somewhere — as opposed to merely reading through it: q.field and
// q.Method() access the resource without copying the pointer out, so they
// neither release nor excuse it.
func escapingRef(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	escape := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if escape {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// q.field / q.Method: descend only past the selector base when
			// the base is not the tracked ident itself.
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				return false
			}
		case *ast.Ident:
			if pass.TypesInfo.ObjectOf(n) == obj {
				escape = true
				return false
			}
		}
		return true
	}
	ast.Inspect(e, walk)
	return escape
}
