// Package detrange flags `for … range` over a map inside the simulator
// packages: Go randomizes map iteration order, so any map loop whose body
// is not order-independent can leak nondeterminism into goldens. A loop is
// accepted without annotation when it is provably commutative — it only
// accumulates into integer scalars, tracks a running min/max, deletes
// keys, writes per-key entries of another map, or collects keys into a
// slice that the same function visibly sorts. Anything else needs either a
// restructure (sort the keys first) or a
// //finemoe:nondeterministic-ok <reason> directive.
//
// Floating-point accumulation (sumMS += v) is deliberately NOT accepted:
// float addition is not associative, so reordering a map walk changes the
// low bits and breaks byte-identical goldens.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"finemoe/internal/analysis"
)

// Directive is the escape-hatch vocabulary entry detrange honors.
const Directive = "nondeterministic-ok"

// Scope limits the analyzer to the simulator packages (trailing-segment
// match on the import path).
var Scope = analysis.SimPackages

var Analyzer = &analysis.Analyzer{
	Name:       "detrange",
	Doc:        "flags nondeterministic map iteration in simulator packages",
	Run:        run,
	Directives: []string{Directive},
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathMatches(pass.Pkg.Path(), Scope) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				checkRange(pass, rs, fn.Body)
				return true
			})
			return false
		})
	}
	return nil, nil
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if commutativeBody(pass, rs, fnBody) {
		return
	}
	if pass.Allowed(Directive, rs) {
		return
	}
	pass.Reportf(rs.Pos(), "range over map %s has nondeterministic iteration order; sort the keys, make the body commutative, or annotate //finemoe:%s <reason>",
		types.ExprString(rs.X), Directive)
}

// commutativeBody reports whether every top-level statement in the loop
// body is order-independent.
func commutativeBody(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	if len(rs.Body.List) == 0 {
		return true
	}
	for _, stmt := range rs.Body.List {
		if !commutativeStmt(pass, rs, stmt, fnBody) {
			return false
		}
	}
	return true
}

func commutativeStmt(pass *analysis.Pass, rs *ast.RangeStmt, stmt ast.Stmt, fnBody *ast.BlockStmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		// count++ / count--: pure counting commutes.
		return true
	case *ast.ExprStmt:
		// delete(m, k): set removal commutes.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		return ok && fn.Name == "delete" && pass.TypesInfo.Uses[fn] == types.Universe.Lookup("delete")
	case *ast.AssignStmt:
		return commutativeAssign(pass, rs, s, fnBody)
	case *ast.IfStmt:
		return commutativeIf(pass, rs, s, fnBody)
	}
	return false
}

func commutativeAssign(pass *analysis.Pass, rs *ast.RangeStmt, s *ast.AssignStmt, fnBody *ast.BlockStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	// m2[k] op= v / m2[k] = v: updates keyed by the (distinct) range keys
	// touch each slot exactly once, so they commute for any element type —
	// as long as the value doesn't read the written map across keys.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		return mapWritePerKey(pass, rs, ix, rhs)
	}
	// v.Field = <loop-invariant constant>: per-entry writes through the
	// range value commute (each entry is visited once).
	if s.Tok == token.ASSIGN {
		if sel, ok := lhs.(*ast.SelectorExpr); ok {
			return rootedAtRangeValue(pass, rs, sel) && isConstant(pass, rhs)
		}
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		// Integer accumulation commutes bit-for-bit; float accumulation
		// does not (addition order changes the low bits), and string +=
		// concatenates in iteration order.
		return isInteger(pass, lhs)
	case token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return isInteger(pass, lhs)
	case token.ASSIGN:
		// best = max(best, v) / best = min(best, v).
		if call, ok := rhs.(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && (fn.Name == "max" || fn.Name == "min") &&
				pass.TypesInfo.Uses[fn] == types.Universe.Lookup(fn.Name) {
				lhsStr := types.ExprString(lhs)
				for _, arg := range call.Args {
					if types.ExprString(arg) == lhsStr {
						return true
					}
				}
			}
		}
		// keys = append(keys, k) (or values), with a visible sort later in
		// the same function: the canonical collect-then-sort idiom.
		if isCollect(pass, rs, lhs, rhs) {
			return sortedAfter(pass, rs, lhs, fnBody)
		}
	}
	return false
}

// commutativeIf accepts the order-independent conditional shapes: a
// filter (`if cond { continue }`), a running min/max (`if v > best
// { best = v }` — the assigned variable must itself appear in the
// comparison, so ties cannot make the result order-dependent), and a
// guarded commutative body (`if !seen[k] { delete(m, k) }`) whose
// condition reads nothing the loop mutates.
func commutativeIf(pass *analysis.Pass, rs *ast.RangeStmt, s *ast.IfStmt, fnBody *ast.BlockStmt) bool {
	if s.Else != nil || s.Init != nil || len(s.Body.List) == 0 {
		return false
	}
	if len(s.Body.List) == 1 {
		if br, ok := s.Body.List[0].(*ast.BranchStmt); ok {
			return br.Tok == token.CONTINUE
		}
		if isRunningExtremum(pass, s) {
			return true
		}
	}
	// General guarded form: every body statement commutes on its own, and
	// the condition is independent of anything the loop body mutates — a
	// condition reading a loop-mutated accumulator (`if count < 3
	// { count++ }`) selects iteration-order-dependent entries.
	for _, stmt := range s.Body.List {
		if !commutativeStmt(pass, rs, stmt, fnBody) {
			return false
		}
	}
	mutated := mutatedObjects(pass, rs.Body)
	independent := true
	ast.Inspect(s.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && mutated[obj] {
				independent = false
			}
		}
		return independent
	})
	return independent
}

func isRunningExtremum(pass *analysis.Pass, s *ast.IfStmt) bool {
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	as, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhsStr := types.ExprString(as.Lhs[0])
	rhsStr := types.ExprString(as.Rhs[0])
	// `if v > best { best = v }`: target is one comparison operand, the
	// assigned value is the other.
	x, y := types.ExprString(cond.X), types.ExprString(cond.Y)
	return (lhsStr == x && rhsStr == y) || (lhsStr == y && rhsStr == x)
}

// mutatedObjects collects every object the loop body assigns, increments,
// or deletes from (the roots of lhs expressions and delete targets).
func mutatedObjects(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	mutated := map[types.Object]bool{}
	addRoot := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				e = x.X
				continue
			case *ast.IndexExpr:
				e = x.X
				continue
			case *ast.ParenExpr:
				e = x.X
				continue
			case *ast.Ident:
				if obj := pass.TypesInfo.ObjectOf(x); obj != nil {
					mutated[obj] = true
				}
			}
			return
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				addRoot(lhs)
			}
		case *ast.IncDecStmt:
			addRoot(n.X)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" &&
				pass.TypesInfo.Uses[id] == types.Universe.Lookup("delete") && len(n.Args) > 0 {
				addRoot(n.Args[0])
			}
		}
		return true
	})
	return mutated
}

// rootedAtRangeValue reports whether the selector chain bottoms out at the
// loop's value identifier (v.Field, v.Inner.Field).
func rootedAtRangeValue(pass *analysis.Pass, rs *ast.RangeStmt, sel *ast.SelectorExpr) bool {
	val, ok := rs.Value.(*ast.Ident)
	if !ok || val.Name == "_" {
		return false
	}
	base := sel.X
	for {
		if inner, ok := base.(*ast.SelectorExpr); ok {
			base = inner.X
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == pass.TypesInfo.ObjectOf(val)
}

// isConstant reports whether the expression is a compile-time constant
// (and therefore loop-invariant).
func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func mapWritePerKey(pass *analysis.Pass, rs *ast.RangeStmt, ix *ast.IndexExpr, rhs ast.Expr) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	idx, ok := ix.Index.(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(idx) != pass.TypesInfo.ObjectOf(key) {
		return false
	}
	if t := pass.TypesInfo.TypeOf(ix.X); t == nil {
		return false
	} else if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	// The written value must not read the target map (no cross-key flow).
	target := types.ExprString(ix.X)
	clean := true
	ast.Inspect(rhs, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == target {
			clean = false
		}
		return clean
	})
	return clean
}

// isCollect matches `s = append(s, k)` / `s = append(s, v)` where k/v is
// the range key or value — order-dependent on its own, deterministic once
// sortedAfter confirms a visible sort.
func isCollect(pass *analysis.Pass, rs *ast.RangeStmt, lhs, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || pass.TypesInfo.Uses[fn] != types.Universe.Lookup("append") {
		return false
	}
	lhsID, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	base, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(base) != pass.TypesInfo.ObjectOf(lhsID) {
		return false
	}
	elem, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return false
	}
	elemObj := pass.TypesInfo.ObjectOf(elem)
	for _, loopVar := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := loopVar.(*ast.Ident); ok && id.Name != "_" && pass.TypesInfo.ObjectOf(id) == elemObj {
			return true
		}
	}
	return false
}

// sortedAfter reports whether the collected slice is passed to a
// sort.* / slices.Sort* call after the loop, inside the same function.
func sortedAfter(pass *analysis.Pass, rs *ast.RangeStmt, lhs ast.Expr, fnBody *ast.BlockStmt) bool {
	lhsObj := pass.TypesInfo.ObjectOf(lhs.(*ast.Ident))
	if lhsObj == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		ast.Inspect(call.Args[0], func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == lhsObj {
				found = true
			}
			return !found
		})
		return true
	})
	return found
}

// isInteger reports whether the expression has an integer basic type.
func isInteger(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
