package detrange_test

import (
	"testing"

	"finemoe/internal/analysis/analysistest"
	"finemoe/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "../testdata", detrange.Analyzer, "internal/metrics", "outofscope")
}
