// Fixture for the noclock analyzer: an ordinary (non-exempt) package where
// every wall-clock read and ambient-randomness import is flagged.
package clockuser

import (
	"math/rand" // want "import of math/rand is banned"
	"time"
)

func nanos() int64 { return time.Now().UnixNano() } // want "time.Now reads the wall clock"

func wait() { time.Sleep(time.Millisecond) } // want "time.Sleep reads the wall clock"

func since(t0 time.Time) time.Duration { return time.Since(t0) } // want "time.Since reads the wall clock"

func roll() int { return rand.Intn(6) }

// Durations and time.Time values themselves are fine: only the clock reads
// are banned.
func double(d time.Duration) time.Duration { return 2 * d }

func allowed() {
	//finemoe:nondeterministic-ok fixture: harness-side delay outside any measured path
	time.Sleep(time.Millisecond)
}
