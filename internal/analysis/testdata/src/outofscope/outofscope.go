// Fixture proving detrange's scope list: this package is outside the
// simulator packages, so even an order-dependent map range is not flagged.
package outofscope

func anything(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // out of scope: no diagnostic
		total += v
	}
	return total
}
