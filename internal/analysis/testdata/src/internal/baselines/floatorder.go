// Package baselines (fixture) exercises floatorder: float reductions
// under the three unordered iteration sources, plus every sanctioned
// shape (loop-local accumulator, per-key write, directives).
package baselines

import "container/heap"

func MapReduce(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "order-sensitive"
	}
	return total
}

func PerKey(m, out map[string]float64) {
	for k, v := range m {
		out[k] += v // per-key write: every iteration hits a distinct element
	}
}

func LoopLocal(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		sum := 0.0
		for _, v := range vs {
			sum += v // accumulator lives inside the map-range body: ordered
		}
		out[k] = sum
	}
	return out
}

func Spawned(xs []float64) float64 {
	total := 0.0
	done := make(chan struct{})
	go func() {
		for _, v := range xs {
			total += v // want "order-sensitive"
		}
		close(done)
	}()
	<-done
	return total
}

type minHeap []float64

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *minHeap) Pop() any          { old := *h; v := old[len(old)-1]; *h = old[:len(old)-1]; return v }

func Drain(h *minHeap) float64 {
	total := 0.0
	for h.Len() > 0 {
		v := heap.Pop(h).(float64)
		total += v // want "order-sensitive"
	}
	return total
}

func SanctionedOwn(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v //finemoe:floatorder-ok fixture: reported with an epsilon band, order drift tolerated
	}
	return total
}

func SanctionedShared(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v //finemoe:nondeterministic-ok fixture: diagnostic-only aggregate outside the goldens
	}
	return total
}
