// Fixture for the detrange analyzer. The import path internal/metrics
// puts this package inside detrange's simulator scope.
package metrics

import "sort"

func plainRange(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m { // want "nondeterministic iteration order"
		out = append(out, v*2)
	}
	return out
}

func intSum(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative: integer accumulation
		total += v
	}
	return total
}

func floatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "nondeterministic iteration order"
		total += v
	}
	return total
}

func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func maxVal(m map[string]float64) float64 {
	best := -1.0
	for _, v := range m { // commutative: running extremum
		if v > best {
			best = v
		}
	}
	return best
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // commutative: collect, then sort below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "nondeterministic iteration order"
		keys = append(keys, k)
	}
	return keys
}

func sortedVals(m map[string]int) []int {
	var vals []int
	for _, v := range m { // commutative: collect, then sort below
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

func copyInto(dst, src map[string]int) {
	for k, v := range src { // commutative: per-key writes
		dst[k] = v
	}
}

func scale(m map[string]float64, f float64) {
	for k := range m { // commutative: per-key update
		m[k] *= f
	}
}

func prune(m map[int]bool, keep map[int]bool) {
	for id := range m { // commutative: guarded per-key delete
		if !keep[id] {
			delete(m, id)
		}
	}
}

type meta struct{ Pinned bool }

func unpinAll(m map[string]*meta) {
	for _, mm := range m { // commutative: constant field store per entry
		mm.Pinned = false
	}
}

func firstN(m map[string]int) int {
	picked := 0
	for range m { // want "nondeterministic iteration order"
		if picked < 3 {
			picked++
		}
	}
	return picked
}

func annotated(m map[string]float64) float64 {
	total := 0.0
	//finemoe:nondeterministic-ok fixture: tolerance asserted by the caller
	for _, v := range m {
		total += v
	}
	return total
}

func annotatedTrailing(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { //finemoe:nondeterministic-ok fixture: tolerance asserted by the caller
		total += v
	}
	return total
}

func annotatedNoReason(m map[string]float64) float64 {
	total := 0.0
	/* want "requires a reason" */ //finemoe:nondeterministic-ok
	for _, v := range m {          // want "nondeterministic iteration order"
		total += v
	}
	return total
}
