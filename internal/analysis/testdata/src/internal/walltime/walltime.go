// Fixture proving noclock's exempt list: internal/walltime is the one
// sanctioned wall-clock wrapper.
package walltime

import "time"

func Stamp() time.Time { return time.Now() }
