// Package par is a fixture stand-in for the real worker pool: the
// concurrency analyzers match par.ForEach calls by import-path suffix
// and arity, so this sequential double is enough to trigger them.
package par

// ForEach mirrors the real pool's signature: fn(i) for i in [0, n).
func ForEach(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
