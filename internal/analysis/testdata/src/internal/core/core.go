// Fixture package standing in for finemoe/internal/core: the trailing
// segment internal/core puts its Release-bearing pointer types inside
// mustrelease's owner set.
package core

// Query mirrors the pooled search query.
type Query struct{ used bool }

// Used reports whether the query was ever populated.
func (q *Query) Used() bool { return q.used }

// Release returns the query to its pool.
func (q *Query) Release() {}

// Cursor mirrors the pooled streaming cursor.
type Cursor struct{}

// Release returns the cursor to its pool.
func (c *Cursor) Release() {}

// Searcher hands out pooled queries and cursors.
type Searcher struct{}

// Prepare returns a pooled query the caller must Release.
func (s *Searcher) Prepare() *Query { return &Query{} }

// NewCursorQ returns a pooled cursor the caller must Release.
func (s *Searcher) NewCursorQ(q *Query) *Cursor { return &Cursor{} }
