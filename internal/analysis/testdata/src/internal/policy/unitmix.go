// Fixture for the unitmix analyzer. The import path internal/policy puts
// this package inside unitmix's simulator scope.
package policy

func mixes(latencyMS, sizeBytes, windowSec float64) float64 {
	total := latencyMS + sizeBytes // want "mixes units ms and bytes"
	if latencyMS > windowSec {     // want "mixes units ms and s"
		total++
	}
	return total
}

func assigns(latencyMS, sizeBytes float64) float64 {
	latencyMS = sizeBytes // want "assignment mixes units ms and bytes"
	return latencyMS
}

func compares(quotaGB, usedBytes float64) bool {
	return usedBytes > quotaGB // want "mixes units bytes and GB"
}

func fine(aMS, bMS, budgetGBps, txBytes float64) float64 {
	sum := aMS + bMS             // same unit: ok
	xfer := txBytes / budgetGBps // division derives a new unit: ok
	return sum + xfer            // derived values carry no suffix: ok
}

// A capital letter before the suffix means it is part of an acronym, not a
// unit: widthRMS carries no unit.
func acronym(widthRMS, sizeBytes float64) float64 {
	return widthRMS + sizeBytes
}

func annotated(latencyMS, sizeBytes float64) float64 {
	//finemoe:unit-ok fixture: deliberately composite score
	return latencyMS + sizeBytes
}
