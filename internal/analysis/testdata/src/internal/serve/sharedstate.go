// Package serve (fixture) exercises sharedstate: goroutine- and
// par.ForEach-captured writes, and each of the sanctioned orderings.
package serve

import (
	"sync"

	"internal/par"
)

func Race() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total++ // want "goroutine writes captured variable total"
		close(done)
	}()
	<-done
	return total
}

func Locked() int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		mu.Lock()
		total++ // lock anywhere in the body sanctions the write
		mu.Unlock()
		wg.Done()
	}()
	wg.Wait()
	return total
}

func PerIndex(n int) []float64 {
	out := make([]float64, n)
	par.ForEach(n, 4, func(i int) {
		out[i] = float64(i) // per-index write: the ForEach contract
	})
	return out
}

func WorkerRace(n int) float64 {
	total := 0.0
	par.ForEach(n, 4, func(i int) {
		total += float64(i) // want "par.ForEach worker writes captured variable total"
	})
	return total
}

func Sanctioned() int {
	hits := 0
	done := make(chan struct{})
	go func() {
		//finemoe:sharedstate-ok fixture: single goroutine joined through done before any read
		hits++
		close(done)
	}()
	<-done
	return hits
}

func LiteralLocal() {
	done := make(chan struct{})
	go func() {
		local := 0
		local++ // literal-local state is private to the goroutine
		_ = local
		close(done)
	}()
	<-done
}
