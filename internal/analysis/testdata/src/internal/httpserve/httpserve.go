// Fixture proving noclock's exempt list: internal/httpserve fronts a live
// server, so wall-clock reads here carry no diagnostics.
package httpserve

import "time"

func Deadline() time.Time { return time.Now().Add(5 * time.Second) }
