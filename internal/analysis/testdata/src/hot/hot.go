// Fixture for the hotalloc analyzer: //finemoe:hotpath functions must not
// allocate; unannotated functions are free to.
package hot

type buf struct {
	data []float64
}

func sink(v any) { _ = v }

//finemoe:hotpath
func (b *buf) step(xs []float64) float64 {
	out := 0.0
	for _, x := range xs {
		out += x
	}
	if cap(b.data) < len(xs) {
		b.data = make([]float64, len(xs)) // amortized grow guard: ok
	}
	b.data = b.data[:len(xs)]
	return out
}

//finemoe:hotpath
func escape() *buf {
	return &buf{} // want "allocates on every call"
}

//finemoe:hotpath
func fresh(n int) []int {
	xs := make([]int, n) // want "make outside a cap/len grow guard"
	return xs
}

//finemoe:hotpath
func newAlloc() *int {
	return new(int) // want "allocates on every call"
}

//finemoe:hotpath
func sliceLit() []int {
	return []int{1, 2, 3} // want "allocates a fresh backing store"
}

//finemoe:hotpath
func appendNoCap(n int) []int {
	var xs []int
	for i := 0; i < n; i++ {
		xs = append(xs, i) // want "declared without preallocated capacity"
	}
	return xs
}

// The caller owns the capacity of a parameter slice.
//
//finemoe:hotpath
func appendParam(dst []int, v int) []int {
	return append(dst, v)
}

//finemoe:hotpath
func boxArg(x int) {
	sink(x) // want "boxes the value"
}

// Pointers fit the interface data word without allocating.
//
//finemoe:hotpath
func boxPointerOK(p *int) {
	sink(p)
}

//finemoe:hotpath
func boxAssign(x int) any {
	var v any
	v = x // want "boxes the value"
	return v
}

//finemoe:hotpath
func closureCapture(n int) func() int {
	return func() int { return n } // want "closure captures n"
}

//finemoe:hotpath
func closureStaticOK() func() int {
	return func() int { return 42 }
}

//finemoe:hotpath
func annotated() []int {
	//finemoe:alloc-ok fixture: cold path taken once per run
	return []int{1}
}

// Not annotated: hotalloc has nothing to say here.
func coldAlloc() *buf {
	return &buf{}
}
