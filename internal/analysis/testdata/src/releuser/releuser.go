// Fixture for the mustrelease analyzer: consumes the toy pooled resources
// from the internal/core fixture package.
package releuser

import "internal/core"

func discard(s *core.Searcher) {
	s.Prepare() // want "discarded without Release"
}

func discardBlank(s *core.Searcher) {
	_ = s.Prepare() // want "assigned to _ without Release"
}

func leak(s *core.Searcher) bool {
	q := s.Prepare() // want "never released"
	return q.Used()
}

func released(s *core.Searcher) bool {
	q := s.Prepare()
	u := q.Used()
	q.Release()
	return u
}

func deferred(s *core.Searcher) bool {
	q := s.Prepare()
	defer q.Release()
	return q.Used()
}

func earlyReturn(s *core.Searcher, cond bool) bool {
	q := s.Prepare()
	if cond {
		return false // want "return leaks q"
	}
	q.Release()
	return true
}

// Ownership transfers to the caller.
func transfer(s *core.Searcher) *core.Query {
	return s.Prepare()
}

type holder struct{ q *core.Query }

// Escapes into longer-lived state whose owner releases it.
func stored(s *core.Searcher, h *holder) {
	h.q = s.Prepare()
}

// Handing the query to another function passes ownership along.
func handedOff(s *core.Searcher) *core.Cursor {
	q := s.Prepare()
	return s.NewCursorQ(q)
}

// A fluent chain that ends in Release acquires nothing at statement level.
func chained(s *core.Searcher, q *core.Query) {
	s.NewCursorQ(q).Release()
}

func annotated(s *core.Searcher) bool {
	//finemoe:release-ok fixture: the pool is torn down wholesale after this
	q := s.Prepare()
	return q.Used()
}
