// Package hotcaller exercises callalloc's whole-program side: hotpath
// roots whose allocations hide behind local helpers, cross-package calls
// (facts imported from finemoe/callee), interface dispatch, and indirect
// calls.
package hotcaller

import "finemoe/callee"

//finemoe:hotpath
func Step(xs []int) int {
	xs = callee.Grow(xs, 1) // want "call to callee.Grow eventually allocates"
	return callee.Sum(xs)   // clean callee: no diagnostic
}

//finemoe:hotpath
func DeepStep(n int) int {
	return callee.Deep(n) // want "call to callee.Deep eventually allocates"
}

//finemoe:hotpath
func PooledStep(n int) int {
	return len(callee.Pooled(n)) // sanctioned leaf: no diagnostic
}

//finemoe:hotpath
func SanctionedSite(xs []int) []int {
	//finemoe:allocok fixture: trace buffer amortized across the run
	return callee.Grow(xs, 2)
}

//finemoe:hotpath
func Local(n int) int {
	return helper(n) // want "call to hotcaller.helper eventually allocates"
}

func helper(n int) int { return helper2(n) }

func helper2(n int) int {
	s := make([]int, n)
	return len(s)
}

// Policy is dispatch target for the interface-resolution fixture: heavy
// allocates, light does not; the call site must be flagged because SOME
// in-module implementer allocates.
type Policy interface{ Pick(n int) int }

type heavy struct{}

func (heavy) Pick(n int) int {
	s := make([]int, n)
	return len(s)
}

type light struct{}

func (light) Pick(n int) int { return n }

//finemoe:hotpath
func Route(p Policy, n int) int {
	return p.Pick(n) // want "eventually allocates"
}

//finemoe:hotpath
func Apply(f func(int) int, x int) int {
	return f(x) // want "indirect call"
}
