// Package purity exercises puritycheck against a fixture Scorer
// interface (the test points puritycheck.Targets here): implementers
// must not write globals — directly, via a local helper, or via a
// cross-package call whose GlobalWriteFact flows in from
// finemoe/purestate — and must not write through parameters.
package purity

import "finemoe/purestate"

type Scorer interface {
	Score(xs []float64) float64
}

var hits int

type direct struct{}

func (direct) Score(xs []float64) float64 { // want "writes package-level state"
	hits++
	return 0
}

type chained struct{}

func (chained) Score(xs []float64) float64 { // want "writes package-level state"
	bump()
	return 0
}

func bump() { hits++ }

type imported struct{}

func (imported) Score(xs []float64) float64 { // want "writes package-level state: purestate.Bump writes purestate.counter"
	purestate.Bump()
	return 0
}

type mutator struct{}

func (mutator) Score(xs []float64) float64 {
	xs[0] = 1 // want "writes through parameter xs"
	return xs[0]
}

type clean struct{ cursor int }

func (c *clean) Score(xs []float64) float64 {
	c.cursor++ // receiver state is the policy's own
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total + float64(purestate.Read())
}

type rebind struct{}

func (rebind) Score(xs []float64) float64 {
	xs = nil // rebinding the local copy is harmless
	_ = xs
	return 0
}

type sanctioned struct{}

//finemoe:impure-ok fixture: the global tally is the experiment's own subject
func (sanctioned) Score(xs []float64) float64 {
	hits++
	return 0
}

// Helper is an exported non-method global writer: it must export a fact
// but not be reported (it is not an interface method).
func Helper() { hits++ }
