// Package callee is the dependency side of the callalloc cross-package
// fixtures: finemoe/hotcaller imports it, so its AllocFacts must flow
// through the shared fact store for the hotcaller wants to fire.
package callee

// Grow allocates (the fresh-slice clone idiom) and therefore exports an
// AllocFact.
func Grow(xs []int, v int) []int {
	out := append([]int(nil), xs...)
	return append(out, v)
}

// Sum is allocation-free; no fact, callers stay clean.
func Sum(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// Pooled allocates but is sanctioned at the function level, so it exports
// no fact and hot callers may use it freely.
//
//finemoe:allocok fixture: pool growth amortized across the run
func Pooled(n int) []int {
	return make([]int, n)
}

// Deep reaches an allocation two hops down; the chain in the importing
// package's diagnostic must walk through both.
func Deep(n int) int {
	return deeper(n)
}

func deeper(n int) int {
	s := make([]int, n)
	return len(s)
}
