// Package staledir exercises the staleness sweep: a suppression whose
// diagnostic no longer fires, a directive outside the vocabulary, and a
// live suppression that must NOT be flagged.
package staledir

func Clean(x int) int {
	y := x + x /* want "is stale" */ //finemoe:allocok nothing on this line allocates
	return y
}

func Typo(x int) int {
	/* want "not a known directive" */ //finemoe:allockok misspelled directive name
	return x + 1
}

//finemoe:hotpath
func Live(n int) int {
	//finemoe:allocok fixture: scratch growth amortized — suppresses a real diagnostic, stays fresh
	return alloc(n)
}

func alloc(n int) int {
	s := make([]int, n)
	return len(s)
}
