// Package purestate is the dependency side of the puritycheck
// cross-package fixtures: its Bump writes a package-level counter, so it
// exports a GlobalWriteFact that finemoe/purity's implementers pick up.
package purestate

var counter int

// Bump writes package state; the exported fact carries the chain.
func Bump() { counter++ }

// Read is pure: no fact.
func Read() int { return counter }
