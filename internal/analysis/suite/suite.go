// Package suite is the one list of every finemoe-lint analyzer, shared
// by the cmd/finemoe-lint drivers (standalone and vet-tool) and the
// repo-clean regression test, so a newly added analyzer cannot be wired
// into one consumer and forgotten in another.
package suite

import (
	"finemoe/internal/analysis"
	"finemoe/internal/analysis/callalloc"
	"finemoe/internal/analysis/detrange"
	"finemoe/internal/analysis/floatorder"
	"finemoe/internal/analysis/hotalloc"
	"finemoe/internal/analysis/mustrelease"
	"finemoe/internal/analysis/noclock"
	"finemoe/internal/analysis/puritycheck"
	"finemoe/internal/analysis/sharedstate"
	"finemoe/internal/analysis/unitmix"
)

// All lists the full analyzer suite: the five intraprocedural checks
// first, then the four interprocedural, fact-carrying ones.
var All = []*analysis.Analyzer{
	detrange.Analyzer,
	noclock.Analyzer,
	hotalloc.Analyzer,
	unitmix.Analyzer,
	mustrelease.Analyzer,
	callalloc.Analyzer,
	sharedstate.Analyzer,
	floatorder.Analyzer,
	puritycheck.Analyzer,
}
