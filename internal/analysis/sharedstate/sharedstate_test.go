package sharedstate_test

import (
	"testing"

	"finemoe/internal/analysis/analysistest"
	"finemoe/internal/analysis/sharedstate"
)

func TestSharedstate(t *testing.T) {
	analysistest.Run(t, "../testdata", sharedstate.Analyzer, "internal/serve")
}
