// Package sharedstate flags unsynchronized shared mutable state between
// a goroutine and the code around it. The simulator's one sanctioned
// concurrency primitive is par.ForEach, whose contract is that each
// worker writes only its own index of any result slice; raw `go`
// statements are allowed but must order every shared access through a
// channel, mutex, atomic, or WaitGroup.
//
// For each function literal launched concurrently (a `go func(){…}()`
// statement or a par.ForEach worker body) the analyzer collects the
// variables captured from the enclosing function and flags those the
// literal WRITES, unless the write is provably ordered:
//
//   - the variable is itself a synchronizer (chan, sync.Mutex/RWMutex,
//     sync.WaitGroup/Once/Map, atomic types) — touching it IS the
//     synchronization;
//   - the write is an element write `s[i] = …` indexed by a parameter of
//     the worker literal or by a per-iteration variable passed as a call
//     argument to the goroutine — the par.ForEach per-index contract;
//   - the literal body locks a captured mutex (m.Lock()/RLock()) before
//     use — coarse, but a lock anywhere in the body means the author
//     thought about ordering;
//   - every write goes through atomic method calls (x.Add, x.Store, …).
//
// Reads of captured variables are not flagged on their own: a
// read-only capture of configuration is the normal, safe pattern (and
// flagging reads would drown the signal). Sanctioned exceptions carry
// //finemoe:sharedstate-ok <reason>.
package sharedstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"finemoe/internal/analysis"
)

// Directive is sharedstate's escape hatch.
const Directive = "sharedstate-ok"

// Scope is the sim packages plus the worker pool itself.
var Scope = append([]string{"internal/par"}, analysis.SimPackages...)

var Analyzer = &analysis.Analyzer{
	Name:       "sharedstate",
	Doc:        "flags goroutine-captured variables written without channel/mutex/atomic/per-index ordering",
	Run:        run,
	Directives: []string{Directive},
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathMatches(pass.Pkg.Path(), Scope) {
		return nil, nil
	}
	for _, file := range pass.Files {
		var encl *ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				encl = n
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && encl != nil {
					check(pass, encl, lit, "goroutine")
				}
			case *ast.CallExpr:
				if lit := parWorkerBody(pass, n); lit != nil && encl != nil {
					check(pass, encl, lit, "par.ForEach worker")
				}
			}
			return true
		})
	}
	return nil, nil
}

// check flags unordered writes to captured variables inside a
// concurrently-launched literal.
func check(pass *analysis.Pass, encl *ast.FuncDecl, lit *ast.FuncLit, kind string) {
	locked := bodyLocksMutex(pass, lit)
	idxParams := indexParams(pass, lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return true // nested literals: their params also count via idxParams? keep walking, captures still resolve
		}
		var target ast.Expr
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				checkWrite(pass, encl, lit, lhs, s, locked, idxParams, kind)
			}
			return true
		case *ast.IncDecStmt:
			target = s.X
			checkWrite(pass, encl, lit, target, s, locked, idxParams, kind)
			return true
		}
		return true
	})
}

func checkWrite(pass *analysis.Pass, encl *ast.FuncDecl, lit *ast.FuncLit, lhs ast.Expr, at ast.Node, locked bool, idxParams map[types.Object]bool, kind string) {
	root := rootObj(pass, lhs)
	if root == nil {
		return
	}
	v, ok := root.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	// Captured: declared in the enclosing function, outside the literal.
	if !(v.Pos() >= encl.Pos() && v.Pos() < encl.End()) {
		return // package-level or other-scope (puritycheck's beat)
	}
	if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
		return // literal-local (params included): private to this goroutine
	}
	if isSyncType(v.Type()) {
		return
	}
	if perIndexWrite(pass, lhs, idxParams) {
		return
	}
	if locked {
		return
	}
	if pass.Allowed(Directive, at) {
		return
	}
	pass.Reportf(at.Pos(), "%s writes captured variable %s without channel/mutex/atomic ordering or a per-index write; synchronize it or annotate //finemoe:%s <reason>",
		kind, v.Name(), Directive)
}

// perIndexWrite matches `s[i] = …` (or s[i].f = …) where i is one of the
// literal's own parameters — the par.ForEach per-index contract.
func perIndexWrite(pass *analysis.Pass, lhs ast.Expr, idxParams map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(x.Index).(*ast.Ident); ok && idxParams[pass.TypesInfo.Uses[id]] {
				return true
			}
			lhs = x.X
		default:
			return false
		}
	}
}

// indexParams collects the literal's own parameter objects (for
// par.ForEach workers, the index).
func indexParams(pass *analysis.Pass, lit *ast.FuncLit) map[types.Object]bool {
	out := map[types.Object]bool{}
	if lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// bodyLocksMutex reports whether the literal body calls Lock/RLock on
// anything — a coarse "the author ordered this" signal.
func bodyLocksMutex(pass *analysis.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			found = true
		}
		return !found
	})
	return found
}

// isSyncType reports whether t is a synchronizer: a channel, a sync.* or
// sync/atomic.* type, or a struct embedding one at the top level
// (covers the `var mu sync.Mutex`-in-struct idiom when the whole struct
// is the captured variable).
func isSyncType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			p := pkg.Path()
			if p == "sync" || p == "sync/atomic" || strings.HasPrefix(p, "sync/") {
				return true
			}
		}
	}
	return false
}

func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(x)
		default:
			return nil
		}
	}
}

// parWorkerBody returns the function literal passed to par.ForEach, if
// this call is one.
func parWorkerBody(pass *analysis.Pass, call *ast.CallExpr) *ast.FuncLit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ForEach" || len(call.Args) != 3 {
		return nil
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok || !analysis.PathMatches(pkgName.Imported().Path(), []string{"internal/par"}) {
		return nil
	}
	lit, _ := call.Args[2].(*ast.FuncLit)
	return lit
}
