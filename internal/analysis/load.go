package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage mirrors the subset of `go list -json` finemoe-lint reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// Load type-checks the packages matched by patterns inside the module
// rooted at (or above) dir, without any network access: `go list -deps
// -export -json` compiles dependency export data into the local build
// cache, and a gc-importer lookup resolves every import from those files.
// Only packages belonging to the main module are returned; test files are
// not analyzed (goldens pin their own ordering).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export",
		"-json=Dir,ImportPath,Export,GoFiles,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	mainModule, err := modulePath(dir)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Path == mainModule {
			listed = append(listed, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}

	var pkgs []*Package
	for _, p := range listed {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}

func modulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v", err)
	}
	return string(bytes.TrimSpace(out)), nil
}
