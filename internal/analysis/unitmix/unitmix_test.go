package unitmix_test

import (
	"testing"

	"finemoe/internal/analysis/analysistest"
	"finemoe/internal/analysis/unitmix"
)

func TestUnitmix(t *testing.T) {
	analysistest.Run(t, "../testdata", unitmix.Analyzer, "internal/policy")
}
