// Package unitmix flags additive arithmetic, comparisons, and assignments
// that mix identifiers carrying conflicting unit suffixes — the classic
// simulator timing-model bug (adding a milliseconds latency to a bytes
// counter, comparing a GB budget against a bytes watermark). The repo's
// naming convention makes units machine-checkable: quantities end in MS,
// Sec, Bytes, GB/MB/KB, GBps/MBps or Tokens. Multiplication and division
// are exempt (they legitimately derive new units: bytes / GBps = time);
// only unit-preserving operators are checked. Scale mixes within one
// dimension (GB vs Bytes, MS vs Sec) are deliberately conflicts — those
// are exactly the silent ×1e9 bugs this analyzer exists for.
//
// Intentional mixes carry a //finemoe:unit-ok <reason> directive.
package unitmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"finemoe/internal/analysis"
)

// Directive is the escape-hatch vocabulary entry unitmix honors.
const Directive = "unit-ok"

// Scope limits the analyzer to the simulator packages.
var Scope = analysis.SimPackages

var Analyzer = &analysis.Analyzer{
	Name:       "unitmix",
	Doc:        "flags arithmetic and comparisons mixing conflicting unit suffixes",
	Run:        run,
	Directives: []string{Directive},
}

// suffixUnits maps identifier suffixes to unit classes, longest suffix
// first so GBps wins over GB.
var suffixUnits = []struct{ suffix, unit string }{
	{"GBps", "GB/s"},
	{"MBps", "MB/s"},
	{"Bytes", "bytes"},
	{"Tokens", "tokens"},
	{"Secs", "s"},
	{"Sec", "s"},
	{"MS", "ms"},
	{"GB", "GB"},
	{"MB", "MB"},
	{"KB", "KB"},
}

// exactUnits classifies whole (lowercase) identifier names.
var exactUnits = map[string]string{
	"ms":     "ms",
	"sec":    "s",
	"secs":   "s",
	"bytes":  "bytes",
	"tokens": "tokens",
}

// unitOfName extracts a unit class from an identifier name, or "".
func unitOfName(name string) string {
	if u, ok := exactUnits[name]; ok {
		return u
	}
	for _, su := range suffixUnits {
		if !strings.HasSuffix(name, su.suffix) || len(name) == len(su.suffix) {
			continue
		}
		// The rune before the suffix must be lowercase or a digit, so
		// RMS, TTFT etc. don't read as units.
		r := rune(name[len(name)-len(su.suffix)-1])
		if unicode.IsLower(r) || unicode.IsDigit(r) {
			return su.unit
		}
	}
	return ""
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathMatches(pass.Pkg.Path(), Scope) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkBinary(pass *analysis.Pass, e *ast.BinaryExpr) {
	switch e.Op {
	case token.ADD, token.SUB,
		token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return // *, / and friends derive units legitimately
	}
	ux, uy := unitOf(e.X), unitOf(e.Y)
	if ux == "" || uy == "" || ux == uy {
		return
	}
	if pass.Allowed(Directive, e) {
		return
	}
	pass.Reportf(e.Pos(), "%s mixes units %s and %s (%s %s %s); convert one side or annotate //finemoe:%s <reason>",
		opVerb(e.Op), ux, uy, types.ExprString(e.X), e.Op, types.ExprString(e.Y), Directive)
}

func checkAssign(pass *analysis.Pass, s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN, token.SUB_ASSIGN:
	default:
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		ul, ur := unitOf(lhs), unitOf(s.Rhs[i])
		if ul == "" || ur == "" || ul == ur {
			continue
		}
		if pass.Allowed(Directive, s) {
			continue
		}
		pass.Reportf(s.Pos(), "assignment mixes units %s and %s (%s %s %s); convert or annotate //finemoe:%s <reason>",
			ul, ur, types.ExprString(lhs), s.Tok, types.ExprString(s.Rhs[i]), Directive)
	}
}

// unitOf derives the unit class of an expression from identifier naming:
// unknown ("") for literals, calls and derived (*, /) expressions.
func unitOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return unitOfName(e.Name)
	case *ast.SelectorExpr:
		return unitOfName(e.Sel.Name)
	case *ast.IndexExpr:
		return unitOf(e.X) // latenciesMS[i] is still milliseconds
	case *ast.ParenExpr:
		return unitOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return unitOf(e.X)
		}
	case *ast.BinaryExpr:
		// Additive chains preserve a common unit; anything else derives.
		if e.Op == token.ADD || e.Op == token.SUB {
			ux, uy := unitOf(e.X), unitOf(e.Y)
			if ux == uy {
				return ux
			}
		}
	}
	return ""
}

func opVerb(op token.Token) string {
	switch op {
	case token.ADD, token.SUB:
		return "arithmetic"
	default:
		return "comparison"
	}
}
