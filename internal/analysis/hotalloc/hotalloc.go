// Package hotalloc enforces the zero-allocation discipline on functions
// annotated //finemoe:hotpath — the per-event code the serving loop runs
// millions of times per experiment (engine stepping, residency
// transitions, index scans, the cluster event heap). Inside an annotated
// function it flags the allocation shapes that PR 4/5 eliminated and a
// regression would silently reintroduce:
//
//   - &T{…}, new(T): pointer-producing allocations
//   - []T{…}, map literals, make(…): fresh backing stores — EXCEPT inside
//     an `if cap(…) < n`-style guard, the sanctioned amortized-grow idiom
//   - append to a slice declared in the same function without capacity
//   - boxing a non-pointer concrete value into an interface
//   - closures capturing local variables (the capture forces a heap
//     allocation of both closure and captured slot)
//
// Intentional allocations (cold grow paths, error exits) carry a
// //finemoe:alloc-ok <reason> directive.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"finemoe/internal/analysis"
)

// Directive is the escape-hatch vocabulary entry hotalloc honors.
const Directive = "alloc-ok"

// Marker annotates a hot-path function (in its doc comment block).
const Marker = "//finemoe:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags heap allocations inside //finemoe:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
			return true
		}
	}
	return false
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	// guards are body ranges of `if cap(…)`/`if len(…)` statements — the
	// amortized-grow idiom where make/append are sanctioned.
	guards [][2]token.Pos
	// reported de-duplicates nodes flagged through more than one rule
	// (e.g. &T{…} visits both the unary expr and the composite literal).
	reported map[ast.Node]bool
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	c := &checker{pass: pass, fn: fn, reported: map[ast.Node]bool{}}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condUsesCapOrLen(pass, ifs.Cond) {
			c.guards = append(c.guards, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	ast.Inspect(fn.Body, c.visit)
}

func condUsesCapOrLen(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") &&
			pass.TypesInfo.Uses[id] == types.Universe.Lookup(id.Name) {
			found = true
		}
		return !found
	})
	return found
}

func (c *checker) guarded(pos token.Pos) bool {
	for _, g := range c.guards {
		if pos >= g[0] && pos < g[1] {
			return true
		}
	}
	return false
}

func (c *checker) report(n ast.Node, format string, args ...any) {
	if c.reported[n] || c.pass.Allowed(Directive, n) {
		return
	}
	c.reported[n] = true
	c.pass.Reportf(n.Pos(), "hotpath %s: "+format, append([]any{c.fn.Name.Name}, args...)...)
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if lit, ok := n.X.(*ast.CompositeLit); ok {
				c.reported[lit] = true // don't double-report the literal
				c.report(n, "&%s allocates on every call; pool or reuse it", typeLabel(c.pass, lit))
			}
		}
	case *ast.CompositeLit:
		t := c.pass.TypesInfo.TypeOf(n)
		if t == nil || c.reported[n] || c.guarded(n.Pos()) {
			return true
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			c.report(n, "%s literal allocates a fresh backing store; preallocate and reuse", typeLabel(c.pass, n))
		}
	case *ast.CallExpr:
		c.visitCall(n)
	case *ast.AssignStmt:
		c.visitAssign(n)
	case *ast.FuncLit:
		c.visitFuncLit(n)
		return false // captures inside nested literals report once, at the outermost
	}
	return true
}

func (c *checker) visitCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == types.Universe.Lookup(id.Name) {
		switch id.Name {
		case "new":
			c.report(call, "new(…) allocates on every call; pool or reuse it")
			return
		case "make":
			if !c.guarded(call.Pos()) {
				c.report(call, "make outside a cap/len grow guard allocates on every call")
			}
			return
		case "append":
			c.visitAppend(call)
			return
		case "panic":
			// A taken panic aborts the run; boxing its argument is free on
			// the happy path.
			return
		}
	}
	// Interface boxing through call arguments.
	sig, ok := typeOf(c.pass, call.Fun).(*types.Signature)
	if !ok {
		// Conversion to an interface type boxes too.
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			if types.IsInterface(tv.Type) && boxes(typeOf(c.pass, call.Args[0])) {
				c.report(call, "converting %s to interface %s allocates", typeOf(c.pass, call.Args[0]), tv.Type)
			}
		}
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			pt = sig.Params().At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := typeOf(c.pass, arg)
		if boxes(at) {
			c.report(arg, "passing %s as interface %s boxes the value (allocates)", at, pt)
		}
	}
}

func (c *checker) visitAssign(s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN {
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		lt, rt := typeOf(c.pass, lhs), typeOf(c.pass, s.Rhs[i])
		if lt != nil && types.IsInterface(lt) && boxes(rt) {
			c.report(s.Rhs[i], "assigning %s to interface %s boxes the value (allocates)", rt, lt)
		}
	}
}

func (c *checker) visitAppend(call *ast.CallExpr) {
	if c.guarded(call.Pos()) || len(call.Args) == 0 {
		return
	}
	base, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // fields and selectors are assumed pooled/preallocated
	}
	obj := c.pass.TypesInfo.ObjectOf(base)
	if obj == nil || obj.Pos() < c.fn.Body.Pos() {
		return // parameter or outer-scope slice: caller owns capacity
	}
	if declaredWithoutCapacity(c.pass, c.fn.Body, obj) {
		c.report(call, "append to %s, declared without preallocated capacity; make it with cap or reuse a pooled buffer", base.Name)
	}
}

// declaredWithoutCapacity reports whether the local slice variable is
// declared with no visible backing store: `var x []T`, `x := []T{}` or
// `x := nil`-shaped declarations. Declarations via make, slicing an
// existing array/slice, or a function call (pools) are treated as
// preallocated.
func declaredWithoutCapacity(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	bad := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.Defs[id] != obj {
					continue
				}
				if i < len(n.Rhs) {
					if lit, ok := n.Rhs[i].(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
						bad = true
					}
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if pass.TypesInfo.Defs[name] == obj && len(vs.Values) == 0 {
						bad = true
					}
				}
			}
		}
		return true
	})
	return bad
}

func (c *checker) visitFuncLit(lit *ast.FuncLit) {
	captured := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Free variable: declared inside the hot function but outside the
		// closure literal. Package-level vars don't force a capture.
		if v.Pos() >= c.fn.Pos() && v.Pos() < c.fn.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captured[v.Name()] = true
		}
		return true
	})
	if len(captured) == 0 {
		return
	}
	names := make([]string, 0, len(captured))
	for n := range captured {
		names = append(names, n)
	}
	sort.Strings(names)
	c.report(lit, "closure captures %s; captures force heap allocation — hoist the closure or pass state explicitly", strings.Join(names, ", "))
}

// boxes reports whether storing a value of type t in an interface
// allocates: true for non-pointer concrete shapes (basics, structs,
// arrays, slices), false for pointers, maps, chans, funcs, interfaces and
// untyped nil, which fit the interface data word.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.UnsafePointer
	case *types.Struct, *types.Array, *types.Slice:
		return true
	}
	return false
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	return pass.TypesInfo.TypeOf(e)
}

func typeLabel(pass *analysis.Pass, lit *ast.CompositeLit) string {
	if t := pass.TypesInfo.TypeOf(lit); t != nil {
		return t.String()
	}
	return "composite"
}
